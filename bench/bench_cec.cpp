// bench_cec: head-to-head of the two equivalence-checking backends on
// fraig-friendly miters — the monolithic SAT check (cec/cec.hpp) against the
// SAT-sweeping engine (cec/sweep.hpp, docs/SWEEPING.md).
//
// Workload: for each (unit, scale) size class, the unit's implementation
// netlist is elaborated to an AIG A, and a functionally identical copy B is
// built by re-expressing every AND as the equivalent but structurally
// disjoint decomposition a&b = (a|b)&(a XNOR b). Strashing shares nothing
// between the copies, so the monolithic check faces one opaque miter while
// the sweeper can rediscover the node-for-node equivalences bottom-up —
// exactly the structural similarity ECO verification exhibits (patched
// implementation vs. specification differ in a small region).
//
// Two cases per size class:
//   equivalent:   the plain A-vs-B miter (UNSAT; proof effort dominates),
//   inequivalent: copy B carries a single buried polarity bug — one internal
//                 node's fanin is complemented during the re-decomposition.
//                 That is the shape of a wrong ECO patch: a local functional
//                 error whose observation requires sensitizing a path to an
//                 output. The monolithic backend must hunt for the witness
//                 through the full double-cone miter; the sweeper refutes the
//                 buggy class locally, merges everything outside the bug's
//                 fanout, and hunts on the collapsed remainder.
// Both backends must agree on every verdict; `verified` records that the
// verdict matched the constructed ground truth.
//
// Usage: bench_cec [--seed N] [--unit K] [--scale N] [--jobs N]
//                  [--json FILE] [--ledger FILE]
//
// Runs are independent and `--jobs` sweeps them over a util::Executor; each
// run's sweep executes single-threaded so `seconds` measures the algorithm,
// not the machine. With --json FILE the records are written under schema
// `ecopatch-bench-cec-v1` — field-compatible with `ecoprof diff` (keyed by
// unit/weights/algorithm; weights carries the case name). BENCH_cec.json at
// the repo root is the committed baseline; the perf-smoke CI job diffs a
// regenerated subset against it.

#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/ops.hpp"
#include "benchgen/suite.hpp"
#include "cec/cec.hpp"
#include "cec/sweep.hpp"
#include "net/elaborate.hpp"
#include "util/buildinfo.hpp"
#include "util/executor.hpp"
#include "util/jsonw.hpp"
#include "util/ledger.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

namespace aig = eco::aig;

/// Appends src into dst like aig::append, but re-expresses every AND node
/// through the equivalent decomposition a&b = (a|b)&(a XNOR b). The result
/// computes the same functions while sharing no internal structure with a
/// plain append of the same source (strashing cannot unify the copies), so
/// a miter between the two is the sweeper's home turf.
///
/// With \p mutate set to an internal src node, that node's translated fanin0
/// is complemented — a single buried polarity bug, the shape of a wrong ECO
/// patch.
std::vector<aig::Lit> append_redecomposed(const aig::Aig& src, aig::Aig& dst,
                                          std::span<const aig::Lit> pi_map,
                                          aig::Node mutate = 0) {
  std::vector<aig::Lit> map(src.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < src.num_pis(); ++i) map[src.pi_node(i)] = pi_map[i];
  const auto xlate = [&map](aig::Lit l) {
    return aig::lit_notif(map[aig::lit_node(l)], aig::lit_compl(l));
  };
  for (aig::Node n = src.num_pis() + 1; n < src.num_nodes(); ++n) {
    aig::Lit a = xlate(src.fanin0(n));
    const aig::Lit b = xlate(src.fanin1(n));
    if (n == mutate) a = aig::lit_notif(a, true);
    map[n] = dst.add_and(dst.add_or(a, b), dst.add_xnor(a, b));
  }
  std::vector<aig::Lit> outs;
  outs.reserve(src.num_pos());
  for (uint32_t i = 0; i < src.num_pos(); ++i) outs.push_back(xlate(src.po_lit(i)));
  return outs;
}

struct Miter {
  aig::Aig g;
  aig::Lit out = aig::kLitFalse;
};

/// A-vs-redecomposed-A miter; with \p mutated, copy B carries a buried
/// polarity bug on one internal node (deterministically chosen at 3/5 of the
/// internal node range, deep enough that its observation needs path
/// sensitization rather than luck).
Miter build_workload(const aig::Aig& a, bool mutated) {
  Miter m;
  std::vector<aig::Lit> pis;
  pis.reserve(a.num_pis());
  for (uint32_t i = 0; i < a.num_pis(); ++i) pis.push_back(m.g.add_pi(a.pi_name(i)));
  const std::vector<aig::Lit> outs_a = aig::append(a, m.g, pis);
  aig::Node mutate = 0;
  if (mutated) {
    const aig::Node first = a.num_pis() + 1;
    mutate = first + (a.num_nodes() - first) * 3 / 5;
  }
  const std::vector<aig::Lit> outs_b = append_redecomposed(a, m.g, pis, mutate);
  std::vector<aig::Lit> diffs;
  diffs.reserve(outs_a.size());
  for (size_t i = 0; i < outs_a.size(); ++i)
    diffs.push_back(m.g.add_xor(outs_a[i], outs_b[i]));
  m.out = m.g.add_or_multi(diffs);
  m.g.add_po(m.out, "miter");
  return m;
}

struct RunRow {
  eco::cec::Status status = eco::cec::Status::kUnknown;
  bool verified = false;  ///< verdict matches the constructed ground truth
  uint32_t pis = 0;
  uint32_t gates = 0;  ///< miter AND count (deterministic per case)
  double seconds = 0;
  double cpu_seconds = 0;
  eco::telemetry::SolverTotals sat;
  eco::cec::SweepStats sweep;  ///< zero for the monolithic backend
};

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

RunRow run_case(const aig::Aig& unit_aig, bool mutated, bool sweeping) {
  const Miter m = build_workload(unit_aig, mutated);
  RunRow row;
  row.pis = unit_aig.num_pis();
  row.gates = m.g.num_ands();
  eco::telemetry::SolverTotalsAccumulator acc;
  eco::Timer timer;
  const double cpu_before = thread_cpu_seconds();
  {
    const eco::telemetry::ScopedSolverCapture capture(acc);
    if (sweeping) {
      const eco::cec::SweepResult r = eco::cec::sweep_check(m.g, m.out);
      row.status = r.cec.status;
      row.sweep = r.stats;
    } else {
      row.status = eco::cec::check_const0(m.g, m.out).status;
    }
  }
  row.cpu_seconds = thread_cpu_seconds() - cpu_before;
  row.seconds = timer.seconds();
  row.sat = acc.totals();
  row.verified = row.status == (mutated ? eco::cec::Status::kNotEquivalent
                                       : eco::cec::Status::kEquivalent);
  return row;
}

const char* status_name(eco::cec::Status s) {
  switch (s) {
    case eco::cec::Status::kEquivalent: return "equivalent";
    case eco::cec::Status::kNotEquivalent: return "not_equivalent";
    case eco::cec::Status::kUnknown: return "unknown";
  }
  return "unknown";
}

void append_record(eco::JsonWriter& w, const std::string& unit_name, const char* case_name,
                   const char* algorithm, const RunRow& row) {
  w.begin_object();
  w.kv("unit", unit_name);
  w.kv("weights", case_name);  // diff key slot; the case plays the role
  w.kv("algorithm", algorithm);
  w.kv("pis", row.pis);
  w.kv("ok", row.status != eco::cec::Status::kUnknown);
  w.kv("verified", row.verified);
  w.kv("method", status_name(row.status));
  w.kv("cost", static_cast<int64_t>(0));  // exact-compare slot: always 0
  w.kv("gates", row.gates);
  w.kv("seconds", row.seconds);
  w.kv("cpu_seconds", row.cpu_seconds);
  w.key("sat");
  w.begin_object();
  w.kv("solvers", row.sat.solvers);
  w.kv("solves", row.sat.solves);
  w.kv("decisions", row.sat.decisions);
  w.kv("propagations", row.sat.propagations);
  w.kv("conflicts", row.sat.conflicts);
  w.kv("restarts", row.sat.restarts);
  w.end_object();
  w.key("sweep");
  w.begin_object();
  w.kv("classes", row.sweep.classes);
  w.kv("proofs", row.sweep.proofs);
  w.kv("refutes", row.sweep.refutes);
  w.kv("merges", row.sweep.merges);
  w.kv("cex_splits", row.sweep.cex_splits);
  w.kv("undefs", row.sweep.undefs);
  w.kv("rounds", row.sweep.rounds);
  w.kv("nodes_before", row.sweep.nodes_before);
  w.kv("nodes_after", row.sweep.nodes_after);
  w.end_object();
  w.end_object();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--unit K] [--scale N] [--jobs N] [--json FILE]\n"
               "          [--ledger FILE]\n"
               "  --seed N    benchmark-suite generator seed (default 20170912)\n"
               "  --unit K    run only size classes of unit K (0..%d)\n"
               "  --scale N   run only size classes at scale N (>= 1)\n"
               "  --jobs N    parallel runs; 0 = all hardware threads\n"
               "              (default: ECO_JOBS, else 1)\n"
               "  --json FILE write machine-readable records (ecopatch-bench-cec-v1)\n"
               "  --ledger FILE write the per-query JSONL ledger\n",
               argv0, eco::benchgen::kNumUnits - 1);
  return 2;
}

bool parse_u64(const char* s, uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

/// The committed size-class matrix (BENCH_cec.json): one linear-cost family
/// scaled through three sizes plus two structurally distinct mid units, so
/// the sweep-vs-mono gap is shown growing with size rather than at a point.
struct SizeClass {
  int unit;
  int scale;
};
constexpr SizeClass kMatrix[] = {
    {1, 1}, {1, 4}, {1, 16},  // unit2 comparator bank: the scaling spine
    {3, 4},                   // unit4 random logic, mid size
    {14, 4},                  // unit15 comparator lanes, mid size
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20170912;
  int only_unit = -1, only_scale = -1;
  int jobs = eco::util::default_jobs();
  std::string json_path, ledger_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* operand = i + 1 < argc ? argv[i + 1] : nullptr;
    if (!std::strcmp(arg, "--seed")) {
      if (!parse_u64(operand, seed)) {
        std::fprintf(stderr, "%s: --seed needs a non-negative integer\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--unit")) {
      if (!parse_int(operand, only_unit) || only_unit < 0 ||
          only_unit >= eco::benchgen::kNumUnits) {
        std::fprintf(stderr, "%s: --unit needs an integer in [0, %d]\n", argv[0],
                     eco::benchgen::kNumUnits - 1);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--scale")) {
      if (!parse_int(operand, only_scale) || only_scale < 1) {
        std::fprintf(stderr, "%s: --scale needs an integer >= 1\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--jobs")) {
      if (!parse_int(operand, jobs) || jobs < 0) {
        std::fprintf(stderr, "%s: --jobs needs a non-negative integer\n", argv[0]);
        return usage(argv[0]);
      }
      if (jobs == 0) jobs = eco::util::hardware_jobs();
      ++i;
    } else if (!std::strcmp(arg, "--json")) {
      if (operand == nullptr || operand[0] == '\0') {
        std::fprintf(stderr, "%s: --json needs a file path\n", argv[0]);
        return usage(argv[0]);
      }
      json_path = operand;
      ++i;
    } else if (!std::strcmp(arg, "--ledger")) {
      if (operand == nullptr || operand[0] == '\0') {
        std::fprintf(stderr, "%s: --ledger needs a file path\n", argv[0]);
        return usage(argv[0]);
      }
      ledger_path = operand;
      ++i;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      return usage(argv[0]);
    }
  }

  std::vector<SizeClass> classes;
  for (const SizeClass& sc : kMatrix) {
    if (only_unit >= 0 && sc.unit != only_unit) continue;
    if (only_scale >= 1 && sc.scale != only_scale) continue;
    classes.push_back(sc);
  }
  if (classes.empty() && only_unit >= 0 && only_scale >= 1)
    classes.push_back(SizeClass{only_unit, only_scale});
  if (classes.empty()) {
    std::fprintf(stderr, "%s: no size classes selected\n", argv[0]);
    return 2;
  }

  if (!ledger_path.empty() && !eco::ledger::set_sink(ledger_path)) {
    std::fprintf(stderr, "bench_cec: cannot write %s: %s\n", ledger_path.c_str(),
                 std::strerror(errno));
    return 2;
  }

  // One task per (size class, case, backend). Each regenerates its unit and
  // miter from the seed, so tasks share nothing; the sweep inside each task
  // runs single-threaded (no executor) so seconds measures the algorithm.
  struct Task {
    size_t cls;
    bool mutated;
    bool sweeping;
  };
  std::vector<Task> tasks;
  tasks.reserve(classes.size() * 4);
  for (size_t c = 0; c < classes.size(); ++c)
    for (const bool mutated : {false, true})
      for (const bool sweeping : {false, true}) tasks.push_back(Task{c, mutated, sweeping});
  std::vector<RunRow> results(tasks.size());

  eco::util::Executor executor(jobs);
  eco::Timer sweep_timer;
  executor.parallel_for(tasks.size(), [&](size_t t) {
    const Task& task = tasks[t];
    const SizeClass& sc = classes[task.cls];
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(sc.unit, seed, sc.scale);
    const eco::net::ElaboratedAig ea = eco::net::elaborate(unit.impl);
    results[t] = run_case(ea.aig, task.mutated, task.sweeping);
  });
  const double sweep_wall = sweep_timer.seconds();

  eco::JsonWriter json;
  json.begin_object();
  json.kv("schema", "ecopatch-bench-cec-v1");
  json.kv("git_commit", eco::build::git_commit());
  json.kv("git_dirty", eco::build::git_dirty());
  json.kv("seed", seed);
  json.kv("jobs", executor.jobs());
  json.kv("sweep_wall_seconds", sweep_wall);
  json.key("runs");
  json.begin_array();

  std::printf("CEC backends: monolithic SAT vs. SAT sweeping (docs/SWEEPING.md)\n");
  std::printf("(seed %" PRIu64 ", %d job%s; per-run times are single-threaded)\n\n", seed,
              executor.jobs(), executor.jobs() == 1 ? "" : "s");
  std::printf("%-12s %-12s %8s | %10s %14s | %10s %14s | %7s\n", "unit", "case", "gates",
              "mono_s", "mono_verdict", "sweep_s", "sweep_verdict", "speedup");

  int failures = 0;
  for (size_t c = 0; c < classes.size(); ++c) {
    const SizeClass& sc = classes[c];
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(sc.unit, seed, sc.scale);
    for (const bool mutated : {false, true}) {
      const char* case_name = mutated ? "inequivalent" : "equivalent";
      const RunRow& mono = results[c * 4 + (mutated ? 2 : 0)];
      const RunRow& swp = results[c * 4 + (mutated ? 2 : 0) + 1];
      append_record(json, unit.name, case_name, "mono", mono);
      append_record(json, unit.name, case_name, "sweep", swp);
      std::printf("%-12s %-12s %8u | %10.3f %14s | %10.3f %14s | %6.2fx\n", unit.name.c_str(),
                  case_name, mono.gates, mono.seconds, status_name(mono.status), swp.seconds,
                  status_name(swp.status), swp.seconds > 0 ? mono.seconds / swp.seconds : 0.0);
      if (mono.status != swp.status || !mono.verified || !swp.verified) {
        ++failures;
        std::printf("        ^ ERROR: verdicts disagree or miss the constructed ground truth\n");
      }
    }
  }

  json.end_array();
  json.end_object();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_cec: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nJSON records written to %s\n", json_path.c_str());
  }
  if (!ledger_path.empty()) {
    if (!eco::ledger::close_sink()) {
      std::fprintf(stderr, "bench_cec: cannot write %s\n", ledger_path.c_str());
      return 2;
    }
    std::printf("ledger written to %s\n", ledger_path.c_str());
  }

  if (failures) std::printf("\n%d case(s) FAILED verdict agreement.\n", failures);
  return failures == 0 ? 0 : 1;
}
