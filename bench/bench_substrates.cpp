// bench_substrates: microbenchmarks of the library substrates — CDCL SAT
// solving, AIG construction/strashing, Tseitin encoding + equivalence
// checking, max-flow, and SOP factoring. These calibrate the absolute
// runtimes reported by bench_table1 on this machine.

#include <benchmark/benchmark.h>

#include "aig/aig.hpp"
#include "cec/cec.hpp"
#include "flow/maxflow.hpp"
#include "sat/solver.hpp"
#include "sop/factor.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace {

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    eco::sat::Solver solver;
    const int pigeons = holes + 1;
    std::vector<eco::sat::Var> vars;
    for (int i = 0; i < pigeons * holes; ++i) vars.push_back(solver.new_var());
    auto var_of = [&](int p, int h) { return vars[static_cast<size_t>(p * holes + h)]; };
    for (int p = 0; p < pigeons; ++p) {
      eco::sat::LitVec clause;
      for (int h = 0; h < holes; ++h) clause.push_back(eco::sat::mk_lit(var_of(p, h)));
      solver.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
      for (int p1 = 0; p1 < pigeons; ++p1)
        for (int p2 = p1 + 1; p2 < pigeons; ++p2)
          solver.add_binary(eco::sat::mk_lit(var_of(p1, h), true),
                            eco::sat::mk_lit(var_of(p2, h), true));
    const auto verdict = solver.solve();
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SatRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  eco::Rng rng(5);
  for (auto _ : state) {
    eco::sat::Solver solver;
    for (int i = 0; i < n; ++i) solver.new_var();
    for (int c = 0; c < static_cast<int>(4.1 * n); ++c) {
      eco::sat::LitVec clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(eco::sat::mk_lit(
            static_cast<eco::sat::Var>(rng.below(static_cast<uint64_t>(n))), rng.chance(1, 2)));
      solver.add_clause(clause);
    }
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// A sweep of independent random-3SAT instances over a util::Executor pool:
// the job-level parallelism pattern of bench_table1 in microbenchmark form.
// Arg is the job count (1 = the executor's exact serial mode), so comparing
// rows isolates the pool's scheduling overhead and the machine's scaling.
void BM_SatSweepJobs(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  constexpr int kInstances = 16;
  constexpr int kVars = 120;
  eco::util::Executor executor(jobs);
  for (auto _ : state) {
    executor.parallel_for(kInstances, [&](size_t inst) {
      eco::Rng rng(0xabcdULL + inst);  // per-instance stream, schedule-free
      eco::sat::Solver solver;
      for (int i = 0; i < kVars; ++i) solver.new_var();
      for (int c = 0; c < static_cast<int>(4.1 * kVars); ++c) {
        eco::sat::LitVec clause;
        for (int k = 0; k < 3; ++k)
          clause.push_back(eco::sat::mk_lit(
              static_cast<eco::sat::Var>(rng.below(static_cast<uint64_t>(kVars))),
              rng.chance(1, 2)));
        solver.add_clause(clause);
      }
      benchmark::DoNotOptimize(solver.solve());
    });
  }
  state.SetItemsProcessed(state.iterations() * kInstances);
}
BENCHMARK(BM_SatSweepJobs)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AigStrash(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  eco::Rng rng(11);
  for (auto _ : state) {
    eco::aig::Aig g;
    std::vector<eco::aig::Lit> pool;
    for (int i = 0; i < 32; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < n; ++i) {
      const eco::aig::Lit a = pool[rng.below(pool.size())];
      const eco::aig::Lit b = pool[rng.below(pool.size())];
      pool.push_back(g.add_and(eco::aig::lit_notif(a, rng.chance(1, 2)),
                               eco::aig::lit_notif(b, rng.chance(1, 2))));
    }
    benchmark::DoNotOptimize(g.num_ands());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AigStrash)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_CecEquivalentAdders(benchmark::State& state) {
  // Two structurally different but equivalent mux trees.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    eco::aig::Aig a, b;
    std::vector<eco::aig::Lit> pa, pb;
    for (int i = 0; i < depth + 2; ++i) {
      pa.push_back(a.add_pi());
      pb.push_back(b.add_pi());
    }
    eco::aig::Lit ra = pa[0], rb = pb[0];
    for (int i = 0; i < depth; ++i) {
      ra = a.add_mux(pa[static_cast<size_t>(i + 1)], ra, pa[static_cast<size_t>(i + 2) % pa.size()]);
      rb = b.add_or(b.add_and(pb[static_cast<size_t>(i + 1)], rb),
                    b.add_and(eco::aig::lit_not(pb[static_cast<size_t>(i + 1)]),
                              pb[static_cast<size_t>(i + 2) % pb.size()]));
    }
    a.add_po(ra);
    b.add_po(rb);
    benchmark::DoNotOptimize(eco::cec::check_equivalence(a, b).status);
  }
}
BENCHMARK(BM_CecEquivalentAdders)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MaxFlowGrid(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  eco::Rng rng(13);
  for (auto _ : state) {
    const int n = side * side;
    eco::flow::MaxFlow mf(n);
    for (int r = 0; r < side; ++r)
      for (int c = 0; c < side; ++c) {
        const int v = r * side + c;
        if (c + 1 < side) mf.add_edge(v, v + 1, static_cast<int64_t>(1 + rng.below(9)));
        if (r + 1 < side) mf.add_edge(v, v + side, static_cast<int64_t>(1 + rng.below(9)));
      }
    benchmark::DoNotOptimize(mf.run(0, n - 1));
  }
}
BENCHMARK(BM_MaxFlowGrid)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SopFactor(benchmark::State& state) {
  const int cubes = static_cast<int>(state.range(0));
  eco::Rng rng(17);
  eco::sop::Cover cover;
  cover.num_vars = 24;
  for (int c = 0; c < cubes; ++c) {
    std::vector<eco::sop::Lit> lits;
    for (uint32_t v = 0; v < cover.num_vars; ++v) {
      const uint64_t r = rng.below(4);
      if (r == 0) lits.push_back(eco::sop::lit_pos(v));
      if (r == 1) lits.push_back(eco::sop::lit_neg(v));
    }
    cover.cubes.push_back(eco::sop::Cube(std::move(lits)));
  }
  for (auto _ : state) {
    const auto tree = eco::sop::factor(cover);
    benchmark::DoNotOptimize(tree->num_leaves());
  }
}
BENCHMARK(BM_SopFactor)->Arg(32)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
