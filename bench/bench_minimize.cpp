// bench_minimize: Ablation A (DESIGN.md) — SAT-call complexity of
// minimize_assumptions (paper Algorithm 1, O(max{log N, M})) versus the
// naive one-at-a-time deletion loop (O(N)).
//
// Instances: N selector variables, M of which form the only minimal core
// (clause structure forces exactly those M). Counters report SAT calls.

#include <benchmark/benchmark.h>

#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using eco::sat::Lit;
using eco::sat::LitVec;
using eco::sat::MinimizeStats;
using eco::sat::Solver;
using eco::sat::mk_lit;

/// Builds a solver with n selectors of which the `core` (given indices) is
/// the unique minimal UNSAT subset: one clause (OR of their negations).
void build_selector_problem(Solver& solver, LitVec& selectors, int n,
                            const std::vector<int>& core) {
  for (int i = 0; i < n; ++i) selectors.push_back(mk_lit(solver.new_var()));
  LitVec clause;
  for (const int c : core) clause.push_back(~selectors[static_cast<size_t>(c)]);
  solver.add_clause(clause);
}

std::vector<int> spread_core(int n, int m, eco::Rng& rng) {
  std::vector<int> core;
  while (static_cast<int>(core.size()) < m) {
    const int c = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    if (std::find(core.begin(), core.end(), c) == core.end()) core.push_back(c);
  }
  return core;
}

void BM_MinimizeAssumptions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  eco::Rng rng(42);
  int64_t total_calls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    LitVec selectors;
    build_selector_problem(solver, selectors, n, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);  // establish UNSAT (precondition)
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}

void BM_MinimizeNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  eco::Rng rng(42);
  int64_t total_calls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    LitVec selectors;
    build_selector_problem(solver, selectors, n, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions_naive(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}

}  // namespace

// Sweep N with a small core (paper's log(N) regime) and growing cores.
BENCHMARK(BM_MinimizeAssumptions)
    ->Args({64, 2})->Args({256, 2})->Args({1024, 2})->Args({4096, 2})
    ->Args({1024, 8})->Args({1024, 32})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinimizeNaive)
    ->Args({64, 2})->Args({256, 2})->Args({1024, 2})->Args({4096, 2})
    ->Args({1024, 8})->Args({1024, 32})
    ->Unit(benchmark::kMicrosecond);
