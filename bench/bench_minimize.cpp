// bench_minimize: Ablation A (DESIGN.md) — SAT-call complexity of
// minimize_assumptions (paper Algorithm 1, O(max{log N, M})) versus the
// naive one-at-a-time deletion loop (O(N)).
//
// Instances: N selector variables, M of which form the only minimal core
// (clause structure forces exactly those M). Counters report SAT calls.

#include <benchmark/benchmark.h>

#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using eco::sat::Lit;
using eco::sat::LitVec;
using eco::sat::MinimizeStats;
using eco::sat::Solver;
using eco::sat::mk_lit;

/// Builds a solver with n selectors of which the `core` (given indices) is
/// the unique minimal UNSAT subset: one clause (OR of their negations).
void build_selector_problem(Solver& solver, LitVec& selectors, int n,
                            const std::vector<int>& core) {
  for (int i = 0; i < n; ++i) selectors.push_back(mk_lit(solver.new_var()));
  LitVec clause;
  for (const int c : core) clause.push_back(~selectors[static_cast<size_t>(c)]);
  solver.add_clause(clause);
}

std::vector<int> spread_core(int n, int m, eco::Rng& rng) {
  std::vector<int> core;
  while (static_cast<int>(core.size()) < m) {
    const int c = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    if (std::find(core.begin(), core.end(), c) == core.end()) core.push_back(c);
  }
  return core;
}

void BM_MinimizeAssumptions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  eco::Rng rng(42);
  int64_t total_calls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    LitVec selectors;
    build_selector_problem(solver, selectors, n, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);  // establish UNSAT (precondition)
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}

// Same instance family, trail reuse disabled — isolates the incremental
// fast path's contribution (every query restarts propagation from scratch).
void BM_MinimizeAssumptionsNoReuse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  eco::Rng rng(42);
  int64_t total_calls = 0;
  eco::sat::SolverOptions opts;
  opts.trail_reuse = false;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver(opts);
    LitVec selectors;
    build_selector_problem(solver, selectors, n, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}

/// Propagation-heavy variant: every selector s_i drives an implication chain
/// s_i -> a_1 -> ... -> a_L, and the unique minimal core is a clause over
/// the chain *ends* of the core selectors. Each query therefore propagates
/// O(N * L) literals; shared assumption prefixes let trail reuse retain
/// almost all of that work between the recursion's queries.
void build_chained_problem(Solver& solver, LitVec& selectors, int n, int chain_len,
                           const std::vector<int>& core) {
  std::vector<Lit> chain_end;
  chain_end.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Lit s = mk_lit(solver.new_var());
    selectors.push_back(s);
    Lit prev = s;
    for (int j = 0; j < chain_len; ++j) {
      const Lit next = mk_lit(solver.new_var());
      solver.add_binary(~prev, next);
      prev = next;
    }
    chain_end.push_back(prev);
  }
  LitVec clause;
  for (const int c : core) clause.push_back(~chain_end[static_cast<size_t>(c)]);
  solver.add_clause(clause);
}

void BM_MinimizeChained(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int chain_len = static_cast<int>(state.range(2));
  const bool reuse = state.range(3) != 0;
  eco::Rng rng(42);
  int64_t total_calls = 0;
  uint64_t saved = 0;
  eco::sat::SolverOptions opts;
  opts.trail_reuse = reuse;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver(opts);
    LitVec selectors;
    build_chained_problem(solver, selectors, n, chain_len, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
    saved += solver.stats().propagations_saved;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
  state.counters["props_saved"] =
      benchmark::Counter(static_cast<double>(saved), benchmark::Counter::kAvgIterations);
}

void BM_MinimizeNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  eco::Rng rng(42);
  int64_t total_calls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    LitVec selectors;
    build_selector_problem(solver, selectors, n, spread_core(n, m, rng));
    LitVec assumps = selectors;
    LitVec ctx;
    (void)solver.solve(assumps);
    state.ResumeTiming();
    MinimizeStats stats;
    const int kept = eco::sat::minimize_assumptions_naive(solver, assumps, ctx, &stats);
    benchmark::DoNotOptimize(kept);
    total_calls += stats.sat_calls;
  }
  state.counters["sat_calls"] =
      benchmark::Counter(static_cast<double>(total_calls), benchmark::Counter::kAvgIterations);
}

}  // namespace

// Sweep N with a small core (paper's log(N) regime) and growing cores.
BENCHMARK(BM_MinimizeAssumptions)
    ->Args({64, 2})->Args({256, 2})->Args({1024, 2})->Args({4096, 2})
    ->Args({1024, 8})->Args({1024, 32})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinimizeAssumptionsNoReuse)
    ->Args({64, 2})->Args({256, 2})->Args({1024, 2})->Args({4096, 2})
    ->Args({1024, 8})->Args({1024, 32})
    ->Unit(benchmark::kMicrosecond);
// {N, M, chain length, trail reuse on/off} — adjacent pairs are the A/B.
BENCHMARK(BM_MinimizeChained)
    ->Args({256, 4, 64, 1})->Args({256, 4, 64, 0})
    ->Args({1024, 4, 64, 1})->Args({1024, 4, 64, 0})
    ->Args({1024, 16, 16, 1})->Args({1024, 16, 16, 0})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinimizeNaive)
    ->Args({64, 2})->Args({256, 2})->Args({1024, 2})->Args({4096, 2})
    ->Args({1024, 8})->Args({1024, 32})
    ->Unit(benchmark::kMicrosecond);
