// bench_service: cold-process vs warm-daemon replay through the patch
// service (src/service/, docs/SERVICE.md).
//
// Workload: K sessions (distinct benchmark-suite units materialized as
// impl.v/spec.v/weights.txt) receive M solve jobs each, submitted
// round-robin — the repeated-session job mix an ECO daemon actually sees
// (iterating on the same netlist pair while other sessions interleave).
// Both modes drive the *identical* Daemon::submit_line path:
//
//   cold: session cache disabled (budget 0) and no warm patterns — every
//         job parses both netlists, re-elaborates the problem, and starts
//         verification from scratch, exactly like one CLI process per job.
//         (Conservative baseline: real cold starts also pay process exec
//         and library init, which this harness does not charge.)
//   warm: the daemon as deployed — content-hash session cache plus
//         harvested-pattern reuse.
//
// Every job must produce the identical patch either way: the harness
// compares ok/verified/method/cost/gates per job across modes and fails
// (exit 1) on any divergence, so the speedup is proven not to change
// results. With --json FILE a two-row `ecopatch-bench-service-v1` document
// is written (runs keyed unit/weights/algorithm like the other bench
// schemas; weights carries the mode): throughput, p50/p95/p99 latency, and
// cache hit rates per mode. BENCH_service.json at the repo root is the
// committed baseline; `ecoprof diff` understands the schema (throughput
// regresses downward, latency upward).
//
// Usage: bench_service [--sessions K] [--per-session M] [--scale N]
//                      [--jobs N] [--isolate N] [--seed N] [--budget S]
//                      [--json FILE] [--dir PATH] [--keep]
//
// --isolate N runs both modes with the process-isolated worker pool
// (service/worker.hpp): the identity check then proves isolation does not
// change outcomes either, and comparing two --json files (with and without
// the flag) proves it across processes.

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"
#include "service/daemon.hpp"
#include "util/buildinfo.hpp"
#include "util/jsonr.hpp"
#include "util/jsonw.hpp"
#include "util/timer.hpp"

namespace {

struct JobResult {
  bool responded = false;
  bool ok = false;        // service envelope "ok" (an outcome was produced)
  bool verified = false;
  std::string status;
  std::string method;
  double cost = 0;
  double gates = 0;
  double latency_ms = 0;  // submit-to-response, the client-visible latency
  bool problem_hit = false;
};

struct ModeResult {
  std::vector<JobResult> jobs;
  double wall_seconds = 0;
  double throughput_jps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  eco::service::CacheStats cache;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

/// Runs the whole job mix through one daemon instance. \p warm selects the
/// deployed configuration; cold zeroes the cache and pattern reuse. The
/// submission loop is serial (client-side), the daemon spreads execution
/// over its workers; latency includes queue wait by design.
ModeResult run_mode(bool warm, int daemon_jobs, int isolate, double budget_seconds,
                    const std::vector<std::array<std::string, 3>>& session_files,
                    int per_session) {
  eco::service::ServiceOptions opts;
  opts.jobs = daemon_jobs;
  opts.queue_depth = session_files.size() * static_cast<size_t>(per_session) + 8;
  opts.default_budget_seconds = budget_seconds;
  opts.cache_budget_bytes = warm ? (256ull << 20) : 0;
  opts.warm_patterns = warm;
  opts.worker.workers = isolate;
  eco::service::Daemon daemon(opts);

  const size_t total = session_files.size() * static_cast<size_t>(per_session);
  ModeResult mode;
  mode.jobs.resize(total);
  std::mutex mu;
  std::vector<eco::Timer> submitted(total);

  const eco::Timer wall;
  for (int m = 0; m < per_session; ++m) {
    for (size_t s = 0; s < session_files.size(); ++s) {
      const size_t index = static_cast<size_t>(m) * session_files.size() + s;
      eco::JsonWriter req;
      req.begin_object();
      req.kv("op", "solve");
      req.kv("id", std::to_string(index));
      req.kv("impl", session_files[s][0]);
      req.kv("spec", session_files[s][1]);
      req.kv("weights", session_files[s][2]);
      req.kv("budget", budget_seconds);
      req.end_object();
      submitted[index].reset();
      daemon.submit_line(req.str(), [&, index](std::string line) {
        const double ms = submitted[index].seconds() * 1e3;
        const auto doc = eco::json_parse(line);
        std::lock_guard<std::mutex> lock(mu);
        JobResult& r = mode.jobs[index];
        r.responded = true;
        r.latency_ms = ms;
        if (!doc) return;
        r.ok = (*doc)["ok"].as_bool();
        const eco::JsonValue& outcome = (*doc)["outcome"];
        r.status = outcome["status"].as_string();
        r.verified = outcome["verification"].as_string() == "verified";
        r.method = outcome["method"].as_string();
        r.cost = outcome["total_cost"].as_number();
        r.gates = outcome["patch_gates"].as_number();
        r.problem_hit = (*doc)["service"]["cache"]["problem_hit"].as_bool();
      });
    }
  }
  daemon.drain();  // blocks until every admitted job has responded
  mode.wall_seconds = wall.seconds();
  mode.cache = daemon.cache().stats();
  mode.throughput_jps = mode.wall_seconds > 0 ? total / mode.wall_seconds : 0;
  std::vector<double> lat;
  lat.reserve(total);
  for (const JobResult& r : mode.jobs) lat.push_back(r.latency_ms);
  mode.p50_ms = percentile(lat, 0.50);
  mode.p95_ms = percentile(lat, 0.95);
  mode.p99_ms = percentile(lat, 0.99);
  return mode;
}

void append_row(eco::JsonWriter& w, const std::string& mix, const char* mode_name,
                const ModeResult& m) {
  bool all_ok = !m.jobs.empty(), all_verified = !m.jobs.empty();
  double cost = 0, gates = 0;
  std::string method = m.jobs.empty() ? "" : m.jobs.front().method;
  for (const JobResult& r : m.jobs) {
    all_ok = all_ok && r.responded && r.ok && r.status == "patched";
    all_verified = all_verified && r.verified;
    cost += r.cost;
    gates += r.gates;
    if (r.method != method) method = "mixed";
  }
  const uint64_t hits = m.cache.netlist_hits + m.cache.weights_hits + m.cache.problem_hits;
  const uint64_t misses =
      m.cache.netlist_misses + m.cache.weights_misses + m.cache.problem_misses;
  w.begin_object();
  w.kv("unit", mix);
  w.kv("weights", mode_name);  // the ecoprof diff key slot for the mode
  w.kv("algorithm", "minimize");
  w.kv("ok", all_ok);
  w.kv("verified", all_verified);
  w.kv("method", method);
  w.kv("cost", cost);    // summed across the mix: exact, mode-invariant
  w.kv("gates", gates);
  w.kv("jobs_completed", static_cast<uint64_t>(m.jobs.size()));
  w.kv("seconds", m.wall_seconds);
  w.kv("throughput_jps", m.throughput_jps);
  w.kv("p50_ms", m.p50_ms);
  w.kv("p95_ms", m.p95_ms);
  w.kv("p99_ms", m.p99_ms);
  w.kv("cache_hit_rate",
       hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0);
  w.kv("problem_hits", m.cache.problem_hits);
  w.kv("problem_misses", m.cache.problem_misses);
  w.kv("evictions", m.cache.evictions);
  w.end_object();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sessions K] [--per-session M] [--scale N] [--jobs N]\n"
               "          [--isolate N] [--seed N] [--budget S] [--json FILE]\n"
               "          [--dir PATH] [--keep]\n"
               "  --sessions K     distinct (impl, spec, weights) sessions (default 3)\n"
               "  --per-session M  jobs per session, round-robin (default 20)\n"
               "  --scale N        benchmark-suite unit scale (default 16)\n"
               "  --jobs N         daemon worker threads (default 2)\n"
               "  --isolate N      process-isolated worker pool of N (default 0 = off)\n"
               "  --seed N         suite generator seed (default 20170912)\n"
               "  --budget S       per-job wall budget (default 30)\n"
               "  --json FILE      write ecopatch-bench-service-v1 records\n"
               "  --dir PATH       input-file directory (default: a temp dir)\n"
               "  --keep           keep the input files\n",
               argv0);
  return 2;
}

bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 3, per_session = 20, scale = 16, jobs = 2, isolate = 0;
  uint64_t seed = 20170912;
  double budget = 30;
  std::string json_path, dir;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* operand = i + 1 < argc ? argv[i + 1] : nullptr;
    int parsed = 0;
    if (!std::strcmp(arg, "--sessions") && parse_int(operand, parsed) && parsed > 0) {
      sessions = parsed;
      ++i;
    } else if (!std::strcmp(arg, "--per-session") && parse_int(operand, parsed) &&
               parsed > 0) {
      per_session = parsed;
      ++i;
    } else if (!std::strcmp(arg, "--scale") && parse_int(operand, parsed) && parsed > 0) {
      scale = parsed;
      ++i;
    } else if (!std::strcmp(arg, "--jobs") && parse_int(operand, parsed) && parsed > 0) {
      jobs = parsed;
      ++i;
    } else if (!std::strcmp(arg, "--isolate") && parse_int(operand, parsed) &&
               parsed >= 0) {
      isolate = parsed;
      ++i;
    } else if (!std::strcmp(arg, "--seed") && operand != nullptr) {
      seed = std::strtoull(operand, nullptr, 10);
      ++i;
    } else if (!std::strcmp(arg, "--budget") && operand != nullptr) {
      budget = std::strtod(operand, nullptr);
      ++i;
    } else if (!std::strcmp(arg, "--json") && operand != nullptr) {
      json_path = operand;
      ++i;
    } else if (!std::strcmp(arg, "--dir") && operand != nullptr) {
      dir = operand;
      ++i;
    } else if (!std::strcmp(arg, "--keep")) {
      keep = true;
    } else {
      std::fprintf(stderr, "%s: bad argument '%s'\n", argv[0], arg);
      return usage(argv[0]);
    }
  }

  namespace fs = std::filesystem;
  if (dir.empty())
    dir = (fs::temp_directory_path() / "ecopatch_bench_service").string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "bench_service: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }

  // Materialize the session inputs once; both modes read the same bytes.
  // Fixed unit table: suite units whose patches resolve on the SAT path
  // well inside any sane budget, so the bench measures service overhead —
  // parse, elaborate, verify startup — not one unit's structural-fallback
  // tail burning its whole budget and flattening both modes equally.
  static constexpr int kSessionUnits[] = {1, 14, 3, 15, 2, 0};
  constexpr int kNumSessionUnits = static_cast<int>(std::size(kSessionUnits));
  std::vector<std::array<std::string, 3>> session_files;
  for (int s = 0; s < sessions; ++s) {
    const int unit_index = kSessionUnits[s % kNumSessionUnits];
    const eco::benchgen::EcoUnit unit =
        eco::benchgen::make_unit(unit_index, seed, scale);
    const std::string base = dir + "/" + unit.name;
    std::array<std::string, 3> files = {base + "_impl.v", base + "_spec.v",
                                        base + "_weights.txt"};
    eco::net::write_verilog_file(files[0], unit.impl);
    eco::net::write_verilog_file(files[1], unit.spec);
    eco::net::write_weights_file(files[2], unit.weights);
    session_files.push_back(std::move(files));
  }

  const int total = sessions * per_session;
  std::printf("patch service: cold process-per-job vs warm daemon (docs/SERVICE.md)\n");
  std::printf("(%d session(s) x %d job(s), scale %d, seed %" PRIu64
              ", %d worker(s), isolate %d)\n\n",
              sessions, per_session, scale, seed, jobs, isolate);

  const ModeResult cold =
      run_mode(false, jobs, isolate, budget, session_files, per_session);
  const ModeResult warm =
      run_mode(true, jobs, isolate, budget, session_files, per_session);

  // Identity: the warm path must change performance only. Any verdict or
  // patch-quality drift between modes is a correctness failure.
  int mismatches = 0;
  for (int i = 0; i < total; ++i) {
    const JobResult& c = cold.jobs[static_cast<size_t>(i)];
    const JobResult& w = warm.jobs[static_cast<size_t>(i)];
    if (!c.responded || !w.responded || c.ok != w.ok || c.status != w.status ||
        c.verified != w.verified || c.method != w.method || c.cost != w.cost ||
        c.gates != w.gates) {
      ++mismatches;
      std::printf("MISMATCH job %d: cold %s/%s/%s cost %.0f gates %.0f | "
                  "warm %s/%s/%s cost %.0f gates %.0f\n",
                  i, c.status.c_str(), c.verified ? "verified" : "unverified",
                  c.method.c_str(), c.cost, c.gates, w.status.c_str(),
                  w.verified ? "verified" : "unverified", w.method.c_str(), w.cost,
                  w.gates);
    }
  }

  const auto print_mode = [total](const char* name, const ModeResult& m) {
    std::printf("%-5s %4d jobs in %7.3fs | %8.1f jobs/s | p50 %7.2fms p95 %7.2fms "
                "p99 %7.2fms | problem hits %" PRIu64 "/%" PRIu64 "\n",
                name, total, m.wall_seconds, m.throughput_jps, m.p50_ms, m.p95_ms,
                m.p99_ms, m.cache.problem_hits,
                m.cache.problem_hits + m.cache.problem_misses);
  };
  print_mode("cold", cold);
  print_mode("warm", warm);
  const double ratio =
      cold.throughput_jps > 0 ? warm.throughput_jps / cold.throughput_jps : 0;
  std::printf("\nwarm/cold throughput: %.2fx\n", ratio);
  if (mismatches > 0)
    std::printf("%d job(s) DIVERGED between modes.\n", mismatches);

  if (!json_path.empty()) {
    const std::string mix = "mix_s" + std::to_string(sessions) + "x" +
                            std::to_string(per_session) + "@" + std::to_string(scale);
    eco::JsonWriter w;
    w.begin_object();
    w.kv("schema", "ecopatch-bench-service-v1");
    w.kv("git_commit", eco::build::git_commit());
    w.kv("git_dirty", eco::build::git_dirty());
    w.kv("seed", seed);
    w.kv("sessions", sessions);
    w.kv("per_session", per_session);
    w.kv("scale", scale);
    w.kv("daemon_jobs", jobs);
    w.kv("isolate", isolate);
    w.kv("warm_over_cold_throughput", ratio);
    w.key("runs");
    w.begin_array();
    append_row(w, mix, "cold", cold);
    append_row(w, mix, "warm", warm);
    w.end_array();
    w.end_object();
    std::ofstream out(json_path);
    out << w.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_service: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("JSON records written to %s\n", json_path.c_str());
  }

  if (!keep) fs::remove_all(dir, ec);
  return mismatches == 0 ? 0 : 1;
}
