// bench_table1: regenerates Table 1 of "Efficient Computation of ECO Patch
// Functions" (DAC'18) on the synthetic contest-suite substitute.
//
// For each of the 20 units, three configurations are run:
//   A: w/o minimize_assumptions (supports/cubes from analyze_final cores),
//   B: w/ minimize_assumptions (the contest-winning configuration),
//   C: SAT_prune + CEGAR_min.
// Columns mirror the paper: resource cost, patch size (gates), runtime.
// The final row reports geometric means of the per-unit ratios vs. config A.
//
// Usage: bench_table1 [--seed N] [--unit K] [--budget SECONDS] [--json FILE]
//
// With --json FILE, one machine-readable record per (unit, configuration)
// run is written as a JSON array (schema `ecopatch-bench-table1-v1`,
// docs/OBSERVABILITY.md): unit shape, algorithm, outcome, phase breakdown,
// SAT conflict/propagation totals, cost, gates, seconds. This is the stable
// perf-trajectory format future PRs compare against (BENCH_table1.json).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "benchgen/weightgen.hpp"
#include "eco/engine.hpp"
#include "eco/problem.hpp"
#include "util/jsonw.hpp"

namespace {

struct RunRow {
  bool ok = false;
  bool verified = false;
  int64_t cost = 0;
  uint32_t gates = 0;
  double seconds = 0;
  std::string method;
  eco::core::EngineStats stats;
};

RunRow run_config(const eco::core::EcoProblem& problem, eco::core::Algorithm algorithm,
                  double budget) {
  eco::core::EngineOptions options;
  options.algorithm = algorithm;
  options.time_budget = budget;
  options.conflict_budget = 300000;
  // Moderate expansion cap: large multi-target units fall back to the
  // structural path, as the hard units do in the paper.
  options.max_expansion_nodes = 1500000;
  options.qbf.max_iterations = 3000;
  options.verify_time_budget = 60;
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
  RunRow row;
  row.ok = outcome.status == eco::core::EcoOutcome::Status::kPatched;
  row.verified = outcome.verified;
  row.cost = outcome.total_cost;
  row.gates = outcome.patch_gates;
  row.seconds = outcome.seconds;
  row.method = outcome.method;
  row.stats = outcome.stats;
  if (outcome.verification == eco::core::EcoOutcome::Verification::kInconclusive)
    row.method += " (verify?)";
  return row;
}

void append_record(eco::JsonWriter& w, const eco::benchgen::EcoUnit& unit,
                   const eco::core::EcoProblem& problem, const char* algorithm,
                   const RunRow& row) {
  w.begin_object();
  w.kv("unit", unit.name);
  w.kv("algorithm", algorithm);
  w.kv("pis", problem.num_shared_pis());
  w.kv("pos", problem.spec.num_pos());
  w.kv("gates_impl", static_cast<uint64_t>(unit.impl.num_gates()));
  w.kv("gates_spec", static_cast<uint64_t>(unit.spec.num_gates()));
  w.kv("targets", unit.num_targets);
  w.kv("weights", eco::benchgen::weight_type_name(unit.weight_type));
  w.kv("ok", row.ok);
  w.kv("verified", row.verified);
  w.kv("method", row.method);
  w.kv("cost", row.cost);
  w.kv("gates", row.gates);
  w.kv("seconds", row.seconds);
  w.key("phases");
  w.begin_object();
  w.kv("window", row.stats.window_seconds);
  w.kv("qbf_feasibility", row.stats.qbf_seconds);
  w.kv("sat_path", row.stats.sat_path_seconds);
  w.kv("structural", row.stats.structural_seconds);
  w.kv("assemble", row.stats.assemble_seconds);
  w.kv("verify", row.stats.verify_seconds);
  w.end_object();
  w.kv("qbf_iterations", row.stats.qbf_iterations);
  w.kv("support_sat_calls", row.stats.support_sat_calls);
  w.kv("satprune_iterations", row.stats.satprune_iterations);
  w.key("sat");
  w.begin_object();
  w.kv("solvers", row.stats.sat_solvers);
  w.kv("solves", row.stats.sat_solves);
  w.kv("decisions", row.stats.sat_decisions);
  w.kv("propagations", row.stats.sat_propagations);
  w.kv("conflicts", row.stats.sat_conflicts);
  w.end_object();
  w.end_object();
}

double ratio_or_one(double num, double den) {
  const double a = std::max(num, 1.0);
  const double b = std::max(den, 1.0);
  return a / b;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20170912;
  int only_unit = -1;
  double budget = 15.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--unit") && i + 1 < argc) only_unit = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) budget = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--seed N] [--unit K] [--budget SECONDS] [--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  eco::JsonWriter json;
  json.begin_object();
  json.kv("schema", "ecopatch-bench-table1-v1");
  json.kv("seed", seed);
  json.kv("budget_seconds", budget);
  json.key("runs");
  json.begin_array();

  std::printf("Table 1 reproduction: comparison of the three algorithm configurations\n");
  std::printf("(synthetic ICCAD'17-suite substitute, seed %" PRIu64 ")\n\n", seed);
  std::printf("%-7s %5s %5s %7s %7s %4s %3s | %8s %7s %8s | %8s %7s %8s | %8s %7s %8s %-12s\n",
              "unit", "#PI", "#PO", "#gateF", "#gateS", "#tgt", "wt",
              "A:cost", "A:gate", "A:time",
              "B:cost", "B:gate", "B:time",
              "C:cost", "C:gate", "C:time", "C:method");

  double log_cost_b = 0, log_gate_b = 0, log_time_b = 0;
  double log_cost_c = 0, log_gate_c = 0, log_time_c = 0;
  int counted = 0;
  int failures = 0;

  for (int u = 0; u < eco::benchgen::kNumUnits; ++u) {
    if (only_unit >= 0 && u != only_unit) continue;
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(u, seed);
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);

    const RunRow a = run_config(problem, eco::core::Algorithm::kBaseline, budget);
    const RunRow b = run_config(problem, eco::core::Algorithm::kMinimize, budget);
    const RunRow c = run_config(problem, eco::core::Algorithm::kSatPruneCegarMin, budget);
    append_record(json, unit, problem, "baseline", a);
    append_record(json, unit, problem, "minimize", b);
    append_record(json, unit, problem, "satprune_cegarmin", c);

    std::printf("%-7s %5u %5u %7zu %7zu %4d %3s | %8" PRId64 " %7u %8.2f | %8" PRId64
                " %7u %8.2f | %8" PRId64 " %7u %8.2f %-12s\n",
                unit.name.c_str(), problem.num_shared_pis(), problem.spec.num_pos(),
                unit.impl.num_gates(), unit.spec.num_gates(), unit.num_targets,
                eco::benchgen::weight_type_name(unit.weight_type),
                a.cost, a.gates, a.seconds, b.cost, b.gates, b.seconds,
                c.cost, c.gates, c.seconds, c.method.c_str());

    if (!a.ok || !b.ok || !c.ok) {
      ++failures;
      std::printf("        ^ WARNING: not all configurations produced a verified patch "
                  "(A:%d B:%d C:%d)\n", a.ok, b.ok, c.ok);
      continue;
    }
    log_cost_b += std::log(ratio_or_one(static_cast<double>(b.cost), static_cast<double>(a.cost)));
    log_gate_b += std::log(ratio_or_one(b.gates, a.gates));
    log_time_b += std::log(ratio_or_one(b.seconds * 1000, a.seconds * 1000));
    log_cost_c += std::log(ratio_or_one(static_cast<double>(c.cost), static_cast<double>(a.cost)));
    log_gate_c += std::log(ratio_or_one(c.gates, a.gates));
    log_time_c += std::log(ratio_or_one(c.seconds * 1000, a.seconds * 1000));
    ++counted;
  }

  if (counted > 0) {
    std::printf("\nGeomean ratios vs. config A (paper: B = 0.26 cost / 0.47 gates / 2.12x time;"
                "\n                             C = 0.24 cost / 0.43 gates / 19.31x time)\n");
    std::printf("  B (minimize_assumptions): cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_b / counted), std::exp(log_gate_b / counted),
                std::exp(log_time_b / counted));
    std::printf("  C (SAT_prune+CEGAR_min) : cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_c / counted), std::exp(log_gate_c / counted),
                std::exp(log_time_c / counted));
  }
  json.end_array();
  json.end_object();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nJSON records written to %s\n", json_path.c_str());
  }

  if (failures) std::printf("\n%d unit(s) had unverified configurations.\n", failures);
  return failures == 0 ? 0 : 1;
}
