// bench_table1: regenerates Table 1 of "Efficient Computation of ECO Patch
// Functions" (DAC'18) on the synthetic contest-suite substitute.
//
// For each of the 20 units, three configurations are run:
//   A: w/o minimize_assumptions (supports/cubes from analyze_final cores),
//   B: w/ minimize_assumptions (the contest-winning configuration),
//   C: SAT_prune + CEGAR_min.
// Columns mirror the paper: resource cost, patch size (gates), runtime.
// The final row reports geometric means of the per-unit ratios vs. config A.
//
// Usage: bench_table1 [--seed N] [--unit K] [--budget SECONDS]

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "benchgen/weightgen.hpp"
#include "eco/engine.hpp"
#include "eco/problem.hpp"

namespace {

struct RunRow {
  bool ok = false;
  int64_t cost = 0;
  uint32_t gates = 0;
  double seconds = 0;
  std::string method;
};

RunRow run_config(const eco::core::EcoProblem& problem, eco::core::Algorithm algorithm,
                  double budget) {
  eco::core::EngineOptions options;
  options.algorithm = algorithm;
  options.time_budget = budget;
  options.conflict_budget = 300000;
  // Moderate expansion cap: large multi-target units fall back to the
  // structural path, as the hard units do in the paper.
  options.max_expansion_nodes = 1500000;
  options.qbf.max_iterations = 3000;
  options.verify_time_budget = 60;
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
  RunRow row;
  row.ok = outcome.status == eco::core::EcoOutcome::Status::kPatched;
  row.cost = outcome.total_cost;
  row.gates = outcome.patch_gates;
  row.seconds = outcome.seconds;
  row.method = outcome.method;
  if (outcome.verification == eco::core::EcoOutcome::Verification::kInconclusive)
    row.method += " (verify?)";
  return row;
}

double ratio_or_one(double num, double den) {
  const double a = std::max(num, 1.0);
  const double b = std::max(den, 1.0);
  return a / b;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20170912;
  int only_unit = -1;
  double budget = 15.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) seed = std::strtoull(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--unit") && i + 1 < argc) only_unit = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) budget = std::atof(argv[++i]);
    else {
      std::fprintf(stderr, "usage: %s [--seed N] [--unit K] [--budget SECONDS]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Table 1 reproduction: comparison of the three algorithm configurations\n");
  std::printf("(synthetic ICCAD'17-suite substitute, seed %" PRIu64 ")\n\n", seed);
  std::printf("%-7s %5s %5s %7s %7s %4s %3s | %8s %7s %8s | %8s %7s %8s | %8s %7s %8s %-12s\n",
              "unit", "#PI", "#PO", "#gateF", "#gateS", "#tgt", "wt",
              "A:cost", "A:gate", "A:time",
              "B:cost", "B:gate", "B:time",
              "C:cost", "C:gate", "C:time", "C:method");

  double log_cost_b = 0, log_gate_b = 0, log_time_b = 0;
  double log_cost_c = 0, log_gate_c = 0, log_time_c = 0;
  int counted = 0;
  int failures = 0;

  for (int u = 0; u < eco::benchgen::kNumUnits; ++u) {
    if (only_unit >= 0 && u != only_unit) continue;
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(u, seed);
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);

    const RunRow a = run_config(problem, eco::core::Algorithm::kBaseline, budget);
    const RunRow b = run_config(problem, eco::core::Algorithm::kMinimize, budget);
    const RunRow c = run_config(problem, eco::core::Algorithm::kSatPruneCegarMin, budget);

    std::printf("%-7s %5u %5u %7zu %7zu %4d %3s | %8" PRId64 " %7u %8.2f | %8" PRId64
                " %7u %8.2f | %8" PRId64 " %7u %8.2f %-12s\n",
                unit.name.c_str(), problem.num_shared_pis(), problem.spec.num_pos(),
                unit.impl.num_gates(), unit.spec.num_gates(), unit.num_targets,
                eco::benchgen::weight_type_name(unit.weight_type),
                a.cost, a.gates, a.seconds, b.cost, b.gates, b.seconds,
                c.cost, c.gates, c.seconds, c.method.c_str());

    if (!a.ok || !b.ok || !c.ok) {
      ++failures;
      std::printf("        ^ WARNING: not all configurations produced a verified patch "
                  "(A:%d B:%d C:%d)\n", a.ok, b.ok, c.ok);
      continue;
    }
    log_cost_b += std::log(ratio_or_one(static_cast<double>(b.cost), static_cast<double>(a.cost)));
    log_gate_b += std::log(ratio_or_one(b.gates, a.gates));
    log_time_b += std::log(ratio_or_one(b.seconds * 1000, a.seconds * 1000));
    log_cost_c += std::log(ratio_or_one(static_cast<double>(c.cost), static_cast<double>(a.cost)));
    log_gate_c += std::log(ratio_or_one(c.gates, a.gates));
    log_time_c += std::log(ratio_or_one(c.seconds * 1000, a.seconds * 1000));
    ++counted;
  }

  if (counted > 0) {
    std::printf("\nGeomean ratios vs. config A (paper: B = 0.26 cost / 0.47 gates / 2.12x time;"
                "\n                             C = 0.24 cost / 0.43 gates / 19.31x time)\n");
    std::printf("  B (minimize_assumptions): cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_b / counted), std::exp(log_gate_b / counted),
                std::exp(log_time_b / counted));
    std::printf("  C (SAT_prune+CEGAR_min) : cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_c / counted), std::exp(log_gate_c / counted),
                std::exp(log_time_c / counted));
  }
  if (failures) std::printf("\n%d unit(s) had unverified configurations.\n", failures);
  return failures == 0 ? 0 : 1;
}
