// bench_table1: regenerates Table 1 of "Efficient Computation of ECO Patch
// Functions" (DAC'18) on the synthetic contest-suite substitute.
//
// For each of the 20 units, three configurations are run:
//   A: w/o minimize_assumptions (supports/cubes from analyze_final cores),
//   B: w/ minimize_assumptions (the contest-winning configuration),
//   C: SAT_prune + CEGAR_min.
// Columns mirror the paper: resource cost, patch size (gates), runtime.
// The final row reports geometric means of the per-unit ratios vs. config A.
//
// Usage: bench_table1 [--seed N] [--unit K] [--budget SECONDS] [--jobs N]
//                     [--json FILE] [--ledger FILE] [--ladder 0|1]
//                     [--par-sat off|on|racy] [--cec mono|sweep]
//
// --cec selects the equivalence-checking backend for every engine run
// (verification and window divisor discovery): `mono` (default, bit-identical
// with previous releases) or `sweep`, the SAT-sweeping engine of
// docs/SWEEPING.md. The JSON header records the mode and each record carries
// a `sweep` stats block (all zero under mono).
//
// The strategy ladder is OFF by default here (unlike the engine default):
// Table 1 compares the three configurations as-is, so escalation to other
// strategies would blur the comparison and break run-to-run bit-identity.
//
// --par-sat enables intra-query parallel SAT (sat/parsolve.hpp): a solve
// stuck past the conflict trigger fans out over the same Executor the sweep
// runs on. `on` keeps outcome fields deterministic (see the contract in
// docs/PARALLEL_SAT.md); `racy` trades reproducibility for wall-clock.
//
// The 60 (unit, configuration) runs are independent; `--jobs N` (or the
// ECO_JOBS environment variable; 0 = all hardware threads) sweeps them over
// a util::Executor thread pool. Each run regenerates its unit from the seed
// and executes single-threaded, so results are identical for every jobs
// value; only the schedule changes. Per-run `seconds` is wall-clock and
// `cpu_seconds` is the run's thread CPU time (CLOCK_THREAD_CPUTIME_ID), so
// oversubscribed sweeps stay interpretable.
//
// With --json FILE, one machine-readable record per (unit, configuration)
// run is written as a JSON array (schema `ecopatch-bench-table1-v1`,
// docs/OBSERVABILITY.md): unit shape, algorithm, outcome, phase breakdown,
// SAT conflict/propagation totals, cost, gates, seconds, cpu_seconds. This
// is the stable perf-trajectory format future PRs compare against
// (BENCH_table1.json).

#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "benchgen/weightgen.hpp"
#include "cec/sweep.hpp"
#include "eco/engine.hpp"
#include "eco/problem.hpp"
#include "sat/parsolve.hpp"
#include "util/buildinfo.hpp"
#include "util/executor.hpp"
#include "util/jsonw.hpp"
#include "util/ledger.hpp"
#include "util/timer.hpp"

namespace {

struct RunRow {
  bool ok = false;
  bool verified = false;
  int64_t cost = 0;
  uint32_t gates = 0;
  double seconds = 0;
  double cpu_seconds = 0;
  std::string method;
  std::string fail_reason;
  eco::core::EngineStats stats;
};

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

RunRow run_config(const eco::core::EcoProblem& problem, eco::core::Algorithm algorithm,
                  double budget, bool ladder, eco::cec::CecMode cec_mode) {
  eco::core::EngineOptions options;
  options.algorithm = algorithm;
  options.time_budget = budget;
  options.ladder = ladder;
  options.cec_mode = cec_mode;
  options.conflict_budget = 300000;
  // Moderate expansion cap: large multi-target units fall back to the
  // structural path, as the hard units do in the paper.
  options.max_expansion_nodes = 1500000;
  options.qbf.max_iterations = 3000;
  options.verify_time_budget = 60;
  const double cpu_before = thread_cpu_seconds();
  const eco::core::EcoOutcome outcome = eco::core::run_eco(problem, options);
  RunRow row;
  row.cpu_seconds = thread_cpu_seconds() - cpu_before;
  row.ok = outcome.status == eco::core::EcoOutcome::Status::kPatched;
  row.verified = outcome.verified;
  row.cost = outcome.total_cost;
  row.gates = outcome.patch_gates;
  row.seconds = outcome.seconds;
  row.method = outcome.method;
  row.fail_reason = eco::core::fail_reason_name(outcome.fail_reason);
  row.stats = outcome.stats;
  if (outcome.verification == eco::core::EcoOutcome::Verification::kInconclusive)
    row.method += " (verify?)";
  return row;
}

void append_record(eco::JsonWriter& w, const eco::benchgen::EcoUnit& unit,
                   const eco::core::EcoProblem& problem, const char* algorithm,
                   const RunRow& row) {
  w.begin_object();
  w.kv("unit", unit.name);
  w.kv("algorithm", algorithm);
  w.kv("pis", problem.num_shared_pis());
  w.kv("pos", problem.spec.num_pos());
  w.kv("gates_impl", static_cast<uint64_t>(unit.impl.num_gates()));
  w.kv("gates_spec", static_cast<uint64_t>(unit.spec.num_gates()));
  w.kv("targets", unit.num_targets);
  w.kv("weights", eco::benchgen::weight_type_name(unit.weight_type));
  w.kv("ok", row.ok);
  w.kv("verified", row.verified);
  w.kv("method", row.method);
  w.kv("fail_reason", row.fail_reason);
  w.kv("ladder_attempts", static_cast<uint64_t>(row.stats.ladder.size()));
  w.kv("cost", row.cost);
  w.kv("gates", row.gates);
  w.kv("seconds", row.seconds);
  w.kv("cpu_seconds", row.cpu_seconds);
  w.key("phases");
  w.begin_object();
  w.kv("window", row.stats.window_seconds);
  w.kv("qbf_feasibility", row.stats.qbf_seconds);
  w.kv("sat_path", row.stats.sat_path_seconds);
  w.kv("structural", row.stats.structural_seconds);
  w.kv("assemble", row.stats.assemble_seconds);
  w.kv("verify", row.stats.verify_seconds);
  w.end_object();
  w.kv("qbf_iterations", row.stats.qbf_iterations);
  w.kv("support_sat_calls", row.stats.support_sat_calls);
  w.kv("satprune_iterations", row.stats.satprune_iterations);
  w.key("sat");
  w.begin_object();
  w.kv("solvers", row.stats.sat_solvers);
  w.kv("solves", row.stats.sat_solves);
  w.kv("decisions", row.stats.sat_decisions);
  w.kv("propagations", row.stats.sat_propagations);
  w.kv("conflicts", row.stats.sat_conflicts);
  w.kv("restarts", row.stats.sat_restarts);
  w.kv("prefix_reused_levels", row.stats.sat_prefix_reused_levels);
  w.kv("propagations_saved", row.stats.sat_propagations_saved);
  w.kv("restarts_blocked", row.stats.sat_restarts_blocked);
  w.kv("learnts_core", row.stats.sat_learnts_core);
  w.kv("learnts_tier2", row.stats.sat_learnts_tier2);
  w.kv("learnts_local", row.stats.sat_learnts_local);
  w.kv("par_escalations", row.stats.sat_par_escalations);
  w.kv("par_portfolio", row.stats.sat_par_portfolio);
  w.kv("par_cube", row.stats.sat_par_cube);
  w.kv("par_wins", row.stats.sat_par_wins);
  w.kv("par_clauses_imported", row.stats.sat_par_clauses_imported);
  w.end_object();
  w.key("sim");
  w.begin_object();
  w.kv("refuted_support", row.stats.sim_refuted_support);
  w.kv("filtered_resub", row.stats.sim_filtered_resub);
  w.kv("irredundant_hits", row.stats.sim_irredundant_hits);
  w.kv("bank_patterns", row.stats.sim_bank_patterns);
  w.kv("resim_nodes", row.stats.sim_resim_nodes);
  w.end_object();
  // Schema-additive (all zero under --cec mono, the default).
  w.key("sweep");
  w.begin_object();
  w.kv("classes", row.stats.sweep_classes);
  w.kv("proofs", row.stats.sweep_proofs);
  w.kv("refutes", row.stats.sweep_refutes);
  w.kv("merges", row.stats.sweep_merges);
  w.kv("cex_splits", row.stats.sweep_cex_splits);
  w.kv("equiv_divisors", row.stats.sweep_equiv_divisors);
  w.end_object();
  w.end_object();
}

double ratio_or_one(double num, double den) {
  const double a = std::max(num, 1.0);
  const double b = std::max(den, 1.0);
  return a / b;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--unit K] [--budget SECONDS] [--jobs N] [--json FILE]\n"
               "          [--ledger FILE] [--ladder 0|1] [--par-sat off|on|racy]\n"
               "          [--cec mono|sweep]\n"
               "  --seed N          benchmark-suite generator seed (default 20170912)\n"
               "  --unit K          run only unit K (0..%d)\n"
               "  --budget SECONDS  per-run engine time budget > 0 (default 15)\n"
               "  --jobs N          parallel runs; 0 = all hardware threads\n"
               "                    (default: ECO_JOBS, else 1)\n"
               "  --json FILE       write machine-readable records to FILE\n"
               "  --ledger FILE     write the per-query JSONL ledger to FILE\n"
               "                    (ecopatch-ledger-v1; analyze with ecoprof)\n"
               "  --ladder 0|1      strategy-ladder fallback (default 0: compare\n"
               "                    the configurations as-is)\n"
               "  --par-sat MODE    intra-query parallel SAT: off | on | racy\n"
               "                    (default: ECO_PAR_SAT, else off; 'on' keeps\n"
               "                    outcome fields deterministic)\n"
               "  --cec MODE        equivalence-checking backend: mono | sweep\n"
               "                    (default: ECO_CEC, else mono; see\n"
               "                    docs/SWEEPING.md)\n",
               argv0, eco::benchgen::kNumUnits - 1);
  return 2;
}

// Strict numeric operand parsers: the whole operand must parse, in range.
bool parse_u64(const char* s, uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_double(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20170912;
  int only_unit = -1;
  double budget = 15.0;
  int jobs = eco::util::default_jobs();
  bool ladder = false;
  eco::cec::CecMode cec_mode = eco::cec::CecOptions::defaults().mode;
  eco::sat::ParSolveOptions par_opts = eco::sat::ParSolveOptions::defaults();
  std::string json_path, ledger_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* operand = i + 1 < argc ? argv[i + 1] : nullptr;
    if (!std::strcmp(arg, "--seed")) {
      if (!parse_u64(operand, seed)) {
        std::fprintf(stderr, "%s: --seed needs a non-negative integer\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--unit")) {
      if (!parse_int(operand, only_unit) || only_unit < 0 ||
          only_unit >= eco::benchgen::kNumUnits) {
        std::fprintf(stderr, "%s: --unit needs an integer in [0, %d]\n", argv[0],
                     eco::benchgen::kNumUnits - 1);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--budget")) {
      if (!parse_double(operand, budget) || !(budget > 0)) {
        std::fprintf(stderr, "%s: --budget needs a positive number of seconds\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--jobs")) {
      if (!parse_int(operand, jobs) || jobs < 0) {
        std::fprintf(stderr, "%s: --jobs needs a non-negative integer\n", argv[0]);
        return usage(argv[0]);
      }
      if (jobs == 0) jobs = eco::util::hardware_jobs();
      ++i;
    } else if (!std::strcmp(arg, "--ladder")) {
      if (operand == nullptr || (std::strcmp(operand, "0") && std::strcmp(operand, "1"))) {
        std::fprintf(stderr, "%s: --ladder needs 0 or 1\n", argv[0]);
        return usage(argv[0]);
      }
      ladder = operand[0] == '1';
      ++i;
    } else if (!std::strcmp(arg, "--par-sat")) {
      if (operand == nullptr || !eco::sat::parse_par_mode(operand, par_opts.mode)) {
        std::fprintf(stderr, "%s: --par-sat needs off, on, or racy\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--cec")) {
      if (operand == nullptr || !eco::cec::parse_cec_mode(operand, cec_mode)) {
        std::fprintf(stderr, "%s: --cec needs mono or sweep\n", argv[0]);
        return usage(argv[0]);
      }
      ++i;
    } else if (!std::strcmp(arg, "--json")) {
      if (operand == nullptr || operand[0] == '\0') {
        std::fprintf(stderr, "%s: --json needs a file path\n", argv[0]);
        return usage(argv[0]);
      }
      json_path = operand;
      ++i;
    } else if (!std::strcmp(arg, "--ledger")) {
      if (operand == nullptr || operand[0] == '\0') {
        std::fprintf(stderr, "%s: --ledger needs a file path\n", argv[0]);
        return usage(argv[0]);
      }
      ledger_path = operand;
      ++i;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      return usage(argv[0]);
    }
  }

  std::vector<int> units;
  for (int u = 0; u < eco::benchgen::kNumUnits; ++u)
    if (only_unit < 0 || u == only_unit) units.push_back(u);

  static constexpr const char* kAlgoNames[3] = {"baseline", "minimize", "satprune_cegarmin"};
  static constexpr eco::core::Algorithm kAlgos[3] = {
      eco::core::Algorithm::kBaseline, eco::core::Algorithm::kMinimize,
      eco::core::Algorithm::kSatPruneCegarMin};

  // One task per (unit, configuration): each regenerates its unit from the
  // seed, so tasks share nothing and any schedule gives identical results.
  struct Task {
    int unit;
    int cfg;
  };
  std::vector<Task> tasks;
  tasks.reserve(units.size() * 3);
  for (const int u : units)
    for (int cfg = 0; cfg < 3; ++cfg) tasks.push_back(Task{u, cfg});
  std::vector<RunRow> results(tasks.size());

  // Fail fast on an unwritable ledger path — the sink writes its header line
  // on open, well before the sweep burns hundreds of seconds.
  if (!ledger_path.empty() && !eco::ledger::set_sink(ledger_path)) {
    std::fprintf(stderr, "bench_table1: cannot write %s: %s\n", ledger_path.c_str(),
                 std::strerror(errno));
    return 2;
  }

  eco::util::Executor executor(jobs);
  eco::sat::ParSolveOptions::set_defaults(par_opts);
  if (par_opts.mode != eco::sat::ParMode::kOff) eco::sat::set_par_executor(&executor);
  eco::Timer sweep_timer;
  executor.parallel_for(tasks.size(), [&](size_t t) {
    const Task& task = tasks[t];
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(task.unit, seed);
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);
    results[t] = run_config(problem, kAlgos[task.cfg], budget, ladder, cec_mode);
  });
  const double sweep_wall = sweep_timer.seconds();

  eco::JsonWriter json;
  json.begin_object();
  json.kv("schema", "ecopatch-bench-table1-v1");
  // Provenance stamp (schema-additive): which build produced these numbers.
  json.kv("git_commit", eco::build::git_commit());
  json.kv("git_dirty", eco::build::git_dirty());
  json.kv("seed", seed);
  json.kv("budget_seconds", budget);
  json.kv("ladder", ladder);
  json.kv("par_sat", eco::sat::par_mode_name(par_opts.mode));
  json.kv("cec", eco::cec::cec_mode_name(cec_mode));
  json.kv("jobs", executor.jobs());
  json.kv("sweep_wall_seconds", sweep_wall);
  json.key("runs");
  json.begin_array();

  std::printf("Table 1 reproduction: comparison of the three algorithm configurations\n");
  std::printf("(synthetic ICCAD'17-suite substitute, seed %" PRIu64 ", %d job%s)\n\n", seed,
              executor.jobs(), executor.jobs() == 1 ? "" : "s");
  std::printf("%-7s %5s %5s %7s %7s %4s %3s | %8s %7s %8s | %8s %7s %8s | %8s %7s %8s %-12s\n",
              "unit", "#PI", "#PO", "#gateF", "#gateS", "#tgt", "wt",
              "A:cost", "A:gate", "A:time",
              "B:cost", "B:gate", "B:time",
              "C:cost", "C:gate", "C:time", "C:method");

  double log_cost_b = 0, log_gate_b = 0, log_time_b = 0;
  double log_cost_c = 0, log_gate_c = 0, log_time_c = 0;
  int counted = 0;
  int failures = 0;

  for (size_t ui = 0; ui < units.size(); ++ui) {
    const int u = units[ui];
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(u, seed);
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);

    const RunRow& a = results[ui * 3 + 0];
    const RunRow& b = results[ui * 3 + 1];
    const RunRow& c = results[ui * 3 + 2];
    append_record(json, unit, problem, kAlgoNames[0], a);
    append_record(json, unit, problem, kAlgoNames[1], b);
    append_record(json, unit, problem, kAlgoNames[2], c);

    std::printf("%-7s %5u %5u %7zu %7zu %4d %3s | %8" PRId64 " %7u %8.2f | %8" PRId64
                " %7u %8.2f | %8" PRId64 " %7u %8.2f %-12s\n",
                unit.name.c_str(), problem.num_shared_pis(), problem.spec.num_pos(),
                unit.impl.num_gates(), unit.spec.num_gates(), unit.num_targets,
                eco::benchgen::weight_type_name(unit.weight_type),
                a.cost, a.gates, a.seconds, b.cost, b.gates, b.seconds,
                c.cost, c.gates, c.seconds, c.method.c_str());

    if (!a.ok || !b.ok || !c.ok) {
      ++failures;
      std::printf("        ^ WARNING: not all configurations produced a verified patch "
                  "(A:%d B:%d C:%d)\n", a.ok, b.ok, c.ok);
      continue;
    }
    log_cost_b += std::log(ratio_or_one(static_cast<double>(b.cost), static_cast<double>(a.cost)));
    log_gate_b += std::log(ratio_or_one(b.gates, a.gates));
    log_time_b += std::log(ratio_or_one(b.seconds * 1000, a.seconds * 1000));
    log_cost_c += std::log(ratio_or_one(static_cast<double>(c.cost), static_cast<double>(a.cost)));
    log_gate_c += std::log(ratio_or_one(c.gates, a.gates));
    log_time_c += std::log(ratio_or_one(c.seconds * 1000, a.seconds * 1000));
    ++counted;
  }

  if (counted > 0) {
    std::printf("\nGeomean ratios vs. config A (paper: B = 0.26 cost / 0.47 gates / 2.12x time;"
                "\n                             C = 0.24 cost / 0.43 gates / 19.31x time)\n");
    std::printf("  B (minimize_assumptions): cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_b / counted), std::exp(log_gate_b / counted),
                std::exp(log_time_b / counted));
    std::printf("  C (SAT_prune+CEGAR_min) : cost %.2f  gates %.2f  time %.2fx\n",
                std::exp(log_cost_c / counted), std::exp(log_gate_c / counted),
                std::exp(log_time_c / counted));
  }
  double cpu_total = 0;
  for (const RunRow& r : results) cpu_total += r.cpu_seconds;
  std::printf("\nSweep: %.2fs wall, %.2fs total run CPU, %d job%s\n", sweep_wall, cpu_total,
              executor.jobs(), executor.jobs() == 1 ? "" : "s");

  json.end_array();
  json.end_object();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("JSON records written to %s\n", json_path.c_str());
  }
  if (!ledger_path.empty()) {
    if (!eco::ledger::close_sink()) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n", ledger_path.c_str());
      return 2;
    }
    std::printf("ledger written to %s\n", ledger_path.c_str());
  }

  if (failures) std::printf("\n%d unit(s) had unverified configurations.\n", failures);
  return failures == 0 ? 0 : 1;
}
