// bench_qbf_copies: Ablation C (DESIGN.md) — number of ECO-miter copies
// needed for a multi-target structural patch: the QBF-certificate route of
// paper §3.6.2 (one copy per CEGAR round) versus the naive cofactor
// expansion (2^k - 1 copies for k targets; "255 -> 40 for 8 targets").

#include <cstdio>
#include <cstring>

#include "benchgen/circuits.hpp"
#include "benchgen/mutate.hpp"
#include "eco/miter.hpp"
#include "eco/problem.hpp"
#include "eco/structural.hpp"
#include "qbf/qbf2.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);

  std::printf("Ablation C: miter copies for multi-target structural patches\n");
  std::printf("(QBF-certificate construction vs. naive 2^k - 1 expansion)\n\n");
  std::printf("%3s | %10s %10s | %10s | %8s\n", "k", "naive", "qbf-cert", "patch ok",
              "time(s)");

  eco::Rng rng(seed);
  for (int k = 1; k <= 8; ++k) {
    // A circuit with enough observable gates for k targets.
    const eco::net::Network base =
        eco::benchgen::make_random_logic(16, 12, 300 + 40 * k, rng);
    eco::benchgen::EcoInstance instance;
    try {
      instance = eco::benchgen::make_eco_instance(base, k, rng);
    } catch (const std::runtime_error&) {
      std::printf("%3d | instance generation failed\n", k);
      continue;
    }
    const eco::core::EcoProblem problem =
        eco::core::make_problem(instance.impl, instance.spec, eco::net::WeightMap{});
    const eco::core::EcoMiter miter =
        eco::core::build_eco_miter(problem.impl, problem.spec, problem.divisors);

    eco::Timer timer;
    eco::qbf::Qbf2Options qopt;
    qopt.max_iterations = 5000;
    const auto cert =
        eco::qbf::solve_exists_forall(miter.aig, miter.out, miter.num_x, qopt);
    bool patch_ok = false;
    size_t copies = 0;
    if (cert.status == eco::qbf::Qbf2Status::kFalse) {
      copies = cert.moves.size();
      const auto patches = k == 1 ? eco::core::structural_patch_single(miter, 0)
                                  : eco::core::structural_patch_multi(miter, cert);
      patch_ok = patches.ok;
    }
    const long naive = (1L << k) - 1;
    std::printf("%3d | %10ld %10zu | %10s | %8.2f\n", k, naive, copies,
                patch_ok ? "yes" : "no", timer.seconds());
  }
  std::printf("\nThe qbf-cert column should grow far slower than 2^k - 1, reproducing\n"
              "the paper's copy-count reduction for many-target instances.\n");
  return 0;
}
