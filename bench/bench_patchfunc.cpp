// bench_patchfunc: Ablation B (DESIGN.md) — patch function computation by
// cube enumeration + factoring (paper §3.5) versus the interpolant-style
// monolithic patch (the structural cofactor of §3.6.1 serves as the stand-in
// for a general interpolant, as both return one unminimized circuit).
//
// For each single-target suite unit both methods run on the same support
// question; reported are patch sizes (AIG AND nodes) and runtimes.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cmath>
#include <cstring>

#include "benchgen/suite.hpp"
#include "eco/engine.hpp"
#include "eco/miter.hpp"
#include "eco/patchfunc.hpp"
#include "eco/problem.hpp"
#include "eco/structural.hpp"
#include "eco/support.hpp"
#include "eco/window.hpp"
#include "sop/synth.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  uint64_t seed = 20170912;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);

  std::printf("Ablation B: cube enumeration + factoring vs. monolithic cofactor patch\n");
  std::printf("(single-target units of the synthetic suite)\n\n");
  std::printf("%-7s | %6s %8s %9s | %9s %9s | %7s\n", "unit", "#cubes", "enum(g)", "enum(s)",
              "cof(g)", "cof(s)", "ratio");

  double log_ratio = 0;
  int counted = 0;
  for (int u = 0; u < eco::benchgen::kNumUnits; ++u) {
    const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(u, seed);
    if (unit.num_targets != 1) continue;
    const eco::core::EcoProblem problem =
        eco::core::make_problem(unit.impl, unit.spec, unit.weights);
    const eco::core::Window window = eco::core::compute_window(problem);
    if (!window.outside_equal) continue;
    const eco::core::EcoMiter miter = eco::core::build_eco_miter(
        problem.impl, problem.spec, problem.divisors, window.affected_pos);

    // Shared support for the cube-enumeration method (per-unit budget so a
    // hard unit cannot stall the ablation).
    const eco::Deadline unit_deadline(30.0);
    eco::core::SupportInstance inst(miter, 0, problem.divisors, window.divisor_indices);
    inst.solver().set_deadline(unit_deadline);
    eco::core::SupportOptions sopt;
    sopt.conflict_budget = 200000;
    const eco::core::SupportResult support =
        eco::core::compute_support(inst, problem.divisors, sopt);
    if (!support.feasible) {
      std::printf("%-7s | support unavailable within budget\n", unit.name.c_str());
      continue;
    }
    std::vector<size_t> chosen = support.chosen;
    std::sort(chosen.begin(), chosen.end());

    eco::Timer t_enum;
    eco::core::PatchFuncOptions pf_opt;
    pf_opt.conflict_budget = 200000;
    pf_opt.cancel = eco::CancelToken(30.0);
    const eco::core::PatchFuncResult pf = eco::core::compute_patch_cover(
        miter, 0, problem.divisors, chosen, pf_opt);
    if (!pf.ok) {
      std::printf("%-7s | enumeration exceeded its budget\n", unit.name.c_str());
      continue;
    }
    eco::aig::Aig scratch;
    std::vector<eco::aig::Lit> vars;
    for (size_t i = 0; i < chosen.size(); ++i) vars.push_back(scratch.add_pi());
    const eco::aig::Lit enum_root = eco::sop::synthesize_cover(scratch, pf.cover, vars);
    const eco::aig::Lit enum_roots[] = {enum_root};
    const uint32_t enum_gates = scratch.cone_size(enum_roots);
    const double enum_secs = t_enum.seconds();

    eco::Timer t_cof;
    const eco::core::StructuralPatches sp = eco::core::structural_patch_single(miter, 0);
    const double cof_secs = t_cof.seconds();
    const uint32_t cof_gates = sp.patch.num_ands();

    const double ratio = static_cast<double>(std::max(enum_gates, 1u)) /
                         static_cast<double>(std::max(cof_gates, 1u));
    log_ratio += std::log(ratio);
    ++counted;
    std::printf("%-7s | %6" PRIu64 " %8u %9.3f | %9u %9.3f | %7.3f\n", unit.name.c_str(),
                pf.cubes_enumerated, enum_gates, enum_secs, cof_gates, cof_secs, ratio);
  }
  if (counted)
    std::printf("\nGeomean patch-size ratio (enumeration / cofactor): %.3f "
                "(< 1 means enumeration wins, matching the paper's choice)\n",
                std::exp(log_ratio / counted));
  return 0;
}
