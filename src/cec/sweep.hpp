/// \file sweep.hpp
/// \brief SAT sweeping (fraiging): equivalence checking and equivalent-node
/// discovery by simulation-signature classes refined with small incremental
/// SAT proofs.
///
/// The monolithic CEC path (cec/cec.hpp) poses one SAT query for the whole
/// miter; past contest size that single query is the scaling wall. The
/// sweeping engine instead works from the inside out, in the style of
/// *Datapath CEC With Hybrid Sweeping Engines and Parallelization*
/// (PAPERS.md):
///
///  1. **Signature classes.** A `SimBank` over the miter packs random
///     patterns (plus any caller seeds and harvested counterexamples) into
///     per-node 64-bit word rows; nodes whose rows match *up to complement*
///     form a candidate equivalence class. Classes are keyed on the
///     complement-canonical row (row XOR'd to make pattern 0 read 0), so a
///     node and its negation land in one class with a recorded phase.
///  2. **Class proving on shared encodings.** Classes are sorted
///     topologically and grouped into fixed-size *chunks*. Each chunk owns
///     one solver and one shared Tseitin encoding of the *reduced* AIG:
///     members are proved front-to-back against their class representative
///     with a small conflict-budgeted incremental query per pair, and every
///     proven equality is asserted back into the chunk's solver as a fact,
///     so later proofs in the chunk ride on earlier ones instead of
///     re-deriving them (the classic fraig cascade). UNSAT merges the member
///     into the representative; SAT harvests the model back into the bank,
///     splitting every class the new pattern distinguishes.
///  3. **Speculative reduction across chunks.** A chunk past the first
///     *speculates* the unproven equalities of every lower class before
///     proving its own (as in SAT sweeping with speculated equivalences).
///     Every such equality — speculated or proven-and-fed-forward — enters
///     the chunk's solver guarded by a selector assumed at each query, so an
///     UNSAT proof's assumption core names exactly the equalities it leaned
///     on. The serial apply step walks pairs in ascending order and accepts
///     a proof iff all of its core dependencies were themselves accepted —
///     by induction the facts under an accepted proof are genuine, so the
///     proof is sound; proofs resting on a refuted or budget-exhausted
///     speculation are downgraded to undef and retried next round against
///     the (now further reduced) miter. Refutations are accepted
///     unconditionally — a model is a real input vector and simulation is
///     ground truth — and enter a refuted-pair memo, so signature classes
///     are re-anchored around known-inequivalent pairs instead of re-proving
///     them, even when the bank has no room left for the counterexample.
///  4. **Merge as you go.** Between rounds the miter is rebuilt through the
///     union-find of proven merges, so downstream cones — and every later
///     SAT query, including the final root query — shrink. Rounds repeat
///     until no class changes or the round cap is hit.
///
/// Chunks are proved concurrently on a caller-provided Executor: each chunk
/// task owns its solver (on a `CancelToken::child` slice of the caller's
/// token, the parsolve discipline) and results are applied serially in class
/// order afterwards.
///
/// **Determinism contract.** Without a deadline or cancellation, a sweep is
/// a pure function of the AIG, the options, and the process-wide
/// SolverOptions: chunk boundaries depend only on the class list (fixed
/// chunk size, never the executor width), chunk tasks are independent (no
/// shared solver state, fixed conflict budgets), task results are merged in
/// class index order, and counterexamples enter the bank in (class, member)
/// order — so the verdict, the proven-pair list, and the stats are identical
/// run-to-run and for any executor width, including serial. Deadlines and
/// cancellation trade that for responsiveness, exactly like every other
/// budgeted path.
///
/// Phase seeding (`SolverOptions::phase_seed`, default on, `ECO_SAT_PHASE_SEED=0`
/// to disable): sweep queries initialize each Tseitin variable's saved phase
/// to the node's majority simulated value (per-node popcount over the bank's
/// packed patterns), so the search starts in the region simulation says is
/// typical (*Circuit-Aware SAT Solving*, PAPERS.md).
///
/// Observability: `sweep.*` telemetry counters, ledger purpose `sweep` for
/// the class-proving solves, and a `sweep` block in the engine outcome JSON
/// (docs/OBSERVABILITY.md). Algorithm details and tuning: docs/SWEEPING.md.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "aig/aig.hpp"
#include "cec/cec.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco::util {
class Executor;
}

namespace eco::cec {

/// The --cec flag: monolithic single-query CEC or SAT sweeping.
enum class CecMode : uint8_t {
  kMono = 0,  ///< miter + random sim + one SAT query (the default)
  kSweep,     ///< signature classes + incremental proofs + merge
};
const char* cec_mode_name(CecMode m) noexcept;

/// Parses a --cec flag value ("mono" | "sweep"). Returns false (and leaves
/// \p out untouched) on anything else.
bool parse_cec_mode(std::string_view text, CecMode& out) noexcept;

/// Sweeping engine knobs.
struct SweepOptions {
  /// Random seed words (64 patterns each) for the signature bank.
  uint32_t sim_words = 16;
  /// Extra bank capacity reserved for harvested counterexamples (words).
  /// Generous on purpose: every banked counterexample purifies the signature
  /// classes, and refuting a false pair by SAT costs far more than the
  /// 8 bytes/node a pattern word takes.
  uint32_t cex_words = 40;
  /// Conflict budget per class-member proof (<= 0: a tiny default floor).
  int64_t proof_conflict_budget = 20000;
  /// Maximum refine/prove/merge rounds before the final root query. Rounds
  /// stop early once a round makes no progress, so the cap only bites on
  /// slowly-converging class structures (deep speculation chains).
  uint32_t max_rounds = 16;
  /// Classes per prove chunk (one shared solver + encoding each; the
  /// parallel grain). Fixed by option, never by executor width, so results
  /// are width-invariant. <= 0: the default.
  int64_t chunk_classes = 128;
  /// Adaptive chunk sizing (env `ECO_SWEEP_ADAPTIVE=1`, default off): after
  /// each round the chunk size for the *next* round is steered by this
  /// round's mean SAT conflicts per chunk — halved when chunks run hot
  /// (past the per-pair proof budget: encodings outlive their usefulness
  /// and slice deadlines cut proofs short), doubled when they run nearly
  /// cold (cheap chunks waste their shared encoding on too few queries).
  /// The signal is deterministic solver conflicts, never wall time, and
  /// the size is still never derived from executor width, so results stay
  /// width-invariant and reproducible. Per-chunk costs are recorded in the
  /// ledger as `sweep_chunk` records either way.
  bool adaptive_chunk = false;
  /// Clamp bounds for the adapted chunk size.
  uint32_t adaptive_min_chunk = 16;
  uint32_t adaptive_max_chunk = 1024;
  /// Root-probe budget for sweep_check: before any sweeping, the root is
  /// queried once with this many conflicts (unseeded — a counterexample
  /// hunt). A definitive answer ends the check at monolithic price; on
  /// budget exhaustion the sweep proceeds, re-checking only the free
  /// bank-hit screen between rounds. <= 0 (the default) disables probing:
  /// probe conflicts on the unreduced miter cost full monolithic price, so
  /// the hunt only pays off against differences too rare for the signature
  /// bank yet easy for the solver — the adversarial corner, not the common
  /// one. sweep_discover never probes.
  int64_t probe_conflict_budget = 0;
  /// Wall-clock slice for one chunk task when the caller's CancelToken is
  /// stoppable (CancelToken::child discipline).
  double class_slice_seconds = 5.0;
  /// Random seed for the signature bank fill.
  uint64_t seed = 0x51bba9c5eedULL;
};

/// Process-wide CEC engine selection, mirroring ParSolveOptions: `defaults()`
/// is env-seeded on first use (`ECO_CEC=mono|sweep`, `ECO_CEC_MIN_NODES=N`)
/// and replaceable via `set_defaults` (bench/CLI `--cec`). The default mode
/// is kMono, so every existing outcome is bit-identical unless sweeping is
/// requested.
struct CecOptions {
  CecMode mode = CecMode::kMono;
  /// check_equivalence escalates to sweeping only when the miter has at
  /// least this many AND nodes; smaller miters stay on the monolithic path
  /// whose single query beats the sweep's setup cost.
  uint32_t min_nodes = 1000;
  SweepOptions sweep{};

  static const CecOptions& defaults() noexcept;
  static void set_defaults(const CecOptions& opts) noexcept;
};

/// Counters of one sweep (also exported as `sweep.*` telemetry).
struct SweepStats {
  uint64_t classes = 0;     ///< multi-member candidate classes examined
  uint64_t proofs = 0;      ///< pairs proven equivalent by SAT
  uint64_t refutes = 0;     ///< pairs refuted (SAT model found)
  uint64_t merges = 0;      ///< nodes merged (SAT-proven + structural)
  uint64_t cex_splits = 0;  ///< counterexamples harvested into the bank
  uint64_t undefs = 0;      ///< pair proofs abandoned on budget/deadline
  uint64_t rounds = 0;      ///< refine/prove/merge rounds run
  uint64_t phase_seeded = 0;  ///< Tseitin variables phase-seeded from the bank
  uint32_t nodes_before = 0;  ///< AND nodes in the input AIG
  uint32_t nodes_after = 0;   ///< AND nodes in the final reduced AIG

  void accumulate(const SweepStats& other) noexcept;
};

/// A proven equivalence `a == b` between two literals of the *input* AIG
/// (complement encoded in the literals; `lit_node(a) < lit_node(b)`).
struct EquivPair {
  aig::Lit a = aig::kLitInvalid;
  aig::Lit b = aig::kLitInvalid;
};

/// Outcome of a sweep: the CEC verdict (for sweep_check), the proven
/// equivalent pairs over the input AIG, and the stats.
struct SweepResult {
  CecResult cec;
  SweepStats stats;
  std::vector<EquivPair> proven;
};

/// Decides whether \p root is constant 0 on \p g by SAT sweeping — the
/// drop-in sweeping counterpart of `check_const0`, same verdict semantics
/// (counterexamples are genuine PI witnesses, kUnknown only on exhausted
/// budget/deadline/cancellation). \p conflict_budget bounds the *final*
/// root query (per-pair proofs use SweepOptions::proof_conflict_budget);
/// \p seed_patterns are screened and folded into the signature bank.
SweepResult sweep_check(const aig::Aig& g, aig::Lit root, int64_t conflict_budget = -1,
                        const eco::Deadline& deadline = {},
                        std::span<const std::vector<bool>> seed_patterns = {},
                        const eco::CancelToken& cancel = {},
                        util::Executor* executor = nullptr,
                        const SweepOptions& options = CecOptions::defaults().sweep);

/// Runs the class/prove/merge loop over the cones of \p roots without
/// deciding anything: the product is `SweepResult::proven`, the equivalent
/// literal pairs among the cones' nodes. This is the divisor-discovery entry
/// (ROADMAP item 2 payoff): proven-equivalent divisors are zero-cost
/// structural duplicates the window stage can collapse. `cec.status` is
/// always kUnknown.
SweepResult sweep_discover(const aig::Aig& g, std::span<const aig::Lit> roots,
                           const eco::Deadline& deadline = {},
                           const eco::CancelToken& cancel = {},
                           util::Executor* executor = nullptr,
                           const SweepOptions& options = CecOptions::defaults().sweep);

}  // namespace eco::cec
