/// \file cec.hpp
/// \brief Combinational equivalence checking (paper §3.2, ref. [12]).
///
/// Used twice by the ECO engine: to verify that the target set is sufficient
/// (on the universally-quantified miter) and to verify the final patched
/// implementation against the specification before a result is reported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco::util {
class Executor;
}

namespace eco::cec {

enum class Status {
  kEquivalent,
  kNotEquivalent,
  kUnknown,  ///< resource budget exhausted
};

struct CecResult {
  Status status = Status::kUnknown;
  /// For kNotEquivalent: a distinguishing input pattern (one value per PI).
  std::vector<bool> counterexample;
};

/// Builds the standard single-output miter: OR over pairwise XORs of the POs
/// of \p a and \p b (which must have matching interfaces). PIs are shared.
aig::Aig build_miter(const aig::Aig& a, const aig::Aig& b);

/// Checks functional equivalence of \p a and \p b.
///
/// Random simulation screens for cheap counterexamples first; the residue is
/// decided by SAT. \p conflict_budget < 0 means unlimited.
///
/// Each simulation round draws from its own seed derived from the round
/// index, so the screening is deterministic regardless of how rounds are
/// scheduled. When \p executor is non-null with more than one job, the
/// rounds sweep across its threads; the reported counterexample is always
/// the one from the lowest-numbered failing round, identical to the serial
/// result.
///
/// \p seed_patterns are extra directed stimuli (e.g. the engine's SAT
/// counterexample bank) simulated before the random rounds; any pattern
/// that excites the miter is returned as the counterexample. A pattern
/// shorter than the PI count is completed with 0.
///
/// \p cancel is a cooperative cancellation token threaded into the SAT
/// check; cancellation yields kUnknown. An invalid token is ignored.
CecResult check_equivalence(const aig::Aig& a, const aig::Aig& b,
                            int64_t conflict_budget = -1, uint64_t sim_rounds = 8,
                            const eco::Deadline& deadline = {},
                            eco::util::Executor* executor = nullptr,
                            std::span<const std::vector<bool>> seed_patterns = {},
                            const eco::CancelToken& cancel = {});

/// Decides whether the single-output function rooted in \p g is constant
/// false. Returns kEquivalent when it is, kNotEquivalent (with a satisfying
/// pattern) when it is not. \p seed_patterns as in check_equivalence: they
/// are simulated first and can decide kNotEquivalent without the solver;
/// when none fires, the SAT check proceeds exactly as without seeds.
CecResult check_const0(const aig::Aig& g, aig::Lit root, int64_t conflict_budget = -1,
                       const eco::Deadline& deadline = {},
                       std::span<const std::vector<bool>> seed_patterns = {},
                       const eco::CancelToken& cancel = {});

}  // namespace eco::cec
