#include "cec/cec.hpp"

#include <cassert>
#include <stdexcept>

#include "aig/ops.hpp"
#include "aig/sim.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace eco::cec {

aig::Aig build_miter(const aig::Aig& a, const aig::Aig& b) {
  if (!aig::interfaces_match(a, b))
    throw std::invalid_argument("build_miter: PI/PO interfaces differ");
  aig::Aig m;
  std::vector<aig::Lit> pis;
  pis.reserve(a.num_pis());
  for (uint32_t i = 0; i < a.num_pis(); ++i) pis.push_back(m.add_pi(a.pi_name(i)));
  const std::vector<aig::Lit> outs_a = aig::append(a, m, pis);
  const std::vector<aig::Lit> outs_b = aig::append(b, m, pis);
  std::vector<aig::Lit> diffs;
  diffs.reserve(outs_a.size());
  for (size_t i = 0; i < outs_a.size(); ++i)
    diffs.push_back(m.add_xor(outs_a[i], outs_b[i]));
  m.add_po(m.add_or_multi(diffs), "miter");
  return m;
}

namespace {

std::vector<bool> extract_pattern(const aig::Aig& g, cnf::Encoder& enc,
                                  const sat::Solver& solver) {
  std::vector<bool> pattern(g.num_pis(), false);
  for (uint32_t i = 0; i < g.num_pis(); ++i) {
    const aig::Node n = g.pi_node(i);
    if (enc.encoded(n)) pattern[i] = solver.model_value(sat::mk_lit(enc.var(n)));
  }
  return pattern;
}

}  // namespace

CecResult check_const0(const aig::Aig& g, aig::Lit root, int64_t conflict_budget,
                       const eco::Deadline& deadline) {
  ECO_TELEMETRY_PHASE("cec");
  ECO_TELEMETRY_COUNT("cec.checks");
  CecResult result;
  if (root == aig::kLitFalse) {
    result.status = Status::kEquivalent;
    return result;
  }
  if (root == aig::kLitTrue) {
    result.status = Status::kNotEquivalent;
    result.counterexample.assign(g.num_pis(), false);
    return result;
  }
  sat::Solver solver;
  solver.set_deadline(deadline);
  cnf::Encoder enc(g, solver);
  const sat::Lit out = enc.lit(root);
  solver.add_unit(out);
  if (conflict_budget >= 0) solver.set_conflict_budget(conflict_budget);
  const sat::LBool verdict = solver.solve();
  if (verdict.is_false()) {
    result.status = Status::kEquivalent;
  } else if (verdict.is_true()) {
    result.status = Status::kNotEquivalent;
    result.counterexample = extract_pattern(g, enc, solver);
  }
  return result;
}

CecResult check_equivalence(const aig::Aig& a, const aig::Aig& b,
                            int64_t conflict_budget, uint64_t sim_rounds,
                            const eco::Deadline& deadline) {
  const aig::Aig miter = build_miter(a, b);
  const aig::Lit out = miter.po_lit(0);

  // Cheap screening by random simulation.
  {
    ECO_TELEMETRY_PHASE("cec_sim");
    Rng rng(0x5eedULL);
    for (uint64_t round = 0; round < sim_rounds; ++round) {
      ECO_TELEMETRY_COUNT("cec.sim_rounds");
      const std::vector<uint64_t> pi_words = aig::random_pi_words(miter, rng);
      const std::vector<uint64_t> words = aig::simulate(miter, pi_words);
      const uint64_t diff = aig::sim_value(words, out);
      if (diff != 0) {
        ECO_TELEMETRY_COUNT("cec.sim_counterexamples");
        const int bit = __builtin_ctzll(diff);
        CecResult result;
        result.status = Status::kNotEquivalent;
        result.counterexample.resize(miter.num_pis());
        for (uint32_t i = 0; i < miter.num_pis(); ++i)
          result.counterexample[i] = ((pi_words[i] >> bit) & 1ULL) != 0;
        return result;
      }
    }
  }
  return check_const0(miter, out, conflict_budget, deadline);
}

}  // namespace eco::cec
