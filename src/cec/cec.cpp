#include "cec/cec.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <stdexcept>

#include "aig/ops.hpp"
#include "aig/sim.hpp"
#include "cec/sweep.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/ledger.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::cec {

aig::Aig build_miter(const aig::Aig& a, const aig::Aig& b) {
  if (!aig::interfaces_match(a, b))
    throw std::invalid_argument("build_miter: PI/PO interfaces differ");
  aig::Aig m;
  std::vector<aig::Lit> pis;
  pis.reserve(a.num_pis());
  for (uint32_t i = 0; i < a.num_pis(); ++i) pis.push_back(m.add_pi(a.pi_name(i)));
  const std::vector<aig::Lit> outs_a = aig::append(a, m, pis);
  const std::vector<aig::Lit> outs_b = aig::append(b, m, pis);
  std::vector<aig::Lit> diffs;
  diffs.reserve(outs_a.size());
  for (size_t i = 0; i < outs_a.size(); ++i)
    diffs.push_back(m.add_xor(outs_a[i], outs_b[i]));
  m.add_po(m.add_or_multi(diffs), "miter");
  return m;
}

namespace {

std::vector<bool> extract_pattern(const aig::Aig& g, cnf::Encoder& enc,
                                  const sat::Solver& solver) {
  std::vector<bool> pattern(g.num_pis(), false);
  for (uint32_t i = 0; i < g.num_pis(); ++i) {
    const aig::Node n = g.pi_node(i);
    if (enc.encoded(n)) pattern[i] = solver.model_value(sat::mk_lit(enc.var(n)));
  }
  return pattern;
}

/// Seed for simulation round \p round: each round owns an independent
/// SplitMix64-expanded stream, so rounds can run in any order (or on any
/// thread) and still produce the exact patterns of the serial sweep.
uint64_t round_seed(uint64_t round) noexcept {
  return 0x5eedULL + (round + 1) * 0x9e3779b97f4a7c15ULL;
}

/// Simulates one round of the miter. Returns true (with the failing pattern
/// in \p out_pattern) when a counterexample was found.
bool simulate_round(const aig::Aig& miter, aig::Lit out, uint64_t round,
                    std::vector<bool>& out_pattern) {
  ECO_TELEMETRY_COUNT("cec.sim_rounds");
  // One SplitMix64 stream per round fills every PI word (see
  // aig::random_pi_words): no per-PI reseeding, and the seed is mixed so the
  // golden-ratio-spaced round seeds cannot alias the stream's own increment.
  const std::vector<uint64_t> pi_words = aig::random_pi_words(miter, round_seed(round));
  const std::vector<uint64_t> words = aig::simulate(miter, pi_words);
  const uint64_t diff = aig::sim_value(words, out);
  if (diff == 0) return false;
  ECO_TELEMETRY_COUNT("cec.sim_counterexamples");
  const int bit = __builtin_ctzll(diff);
  out_pattern.resize(miter.num_pis());
  for (uint32_t i = 0; i < miter.num_pis(); ++i)
    out_pattern[i] = ((pi_words[i] >> bit) & 1ULL) != 0;
  return true;
}

/// Simulates \p seed_patterns (64 per word) against \p root. Returns true
/// and fills \p result when some pattern sets the root to 1.
bool screen_seed_patterns(const aig::Aig& g, aig::Lit root,
                          std::span<const std::vector<bool>> seeds, CecResult& result) {
  if (seeds.empty()) return false;
  ECO_TELEMETRY_COUNT("cec.seed_patterns", seeds.size());
  const size_t words = (seeds.size() + 63) / 64;
  std::vector<uint64_t> pi_words(static_cast<size_t>(g.num_pis()) * words, 0);
  for (size_t p = 0; p < seeds.size(); ++p) {
    const size_t n = std::min<size_t>(seeds[p].size(), g.num_pis());
    for (uint32_t i = 0; i < n; ++i)
      if (seeds[p][i]) pi_words[i * words + p / 64] |= 1ULL << (p % 64);
  }
  const aig::SimWords sim = aig::simulate_words(g, pi_words, words);
  const auto row = sim.row(aig::lit_node(root));
  const uint64_t cm = aig::lit_compl(root) ? ~0ULL : 0ULL;
  for (size_t w = 0; w < words; ++w) {
    uint64_t valid = ~0ULL;
    if (w == words - 1 && seeds.size() % 64 != 0) valid = (1ULL << (seeds.size() % 64)) - 1;
    const uint64_t hit = (row[w] ^ cm) & valid;
    if (hit == 0) continue;
    ECO_TELEMETRY_COUNT("cec.seed_counterexamples");
    const std::vector<bool>& seed = seeds[w * 64 + __builtin_ctzll(hit)];
    result.status = Status::kNotEquivalent;
    result.counterexample.assign(g.num_pis(), false);
    for (uint32_t i = 0; i < std::min<size_t>(seed.size(), g.num_pis()); ++i)
      result.counterexample[i] = seed[i];
    return true;
  }
  return false;
}

}  // namespace

CecResult check_const0(const aig::Aig& g, aig::Lit root, int64_t conflict_budget,
                       const eco::Deadline& deadline,
                       std::span<const std::vector<bool>> seed_patterns,
                       const eco::CancelToken& cancel) {
  ECO_TELEMETRY_PHASE("cec");
  ECO_TELEMETRY_COUNT("cec.checks");
  // Weak: the engine's verification opens kVerify above this entry point.
  auto ledger_scope = ledger::ScopedPurpose::weak(ledger::Purpose::kCec);
  const bool ledger_on = ledger::enabled();
  const Timer check_wall;
  const double check_cpu0 = ledger_on ? ledger::thread_cpu_seconds() : 0;
  auto append_check = [&](const CecResult& res, bool sim_hit) {
    if (!ledger_on) return;
    ledger::Record r;
    r.kind = ledger::Kind::kCecCheck;
    r.wall_seconds = check_wall.seconds();
    r.cpu_seconds = ledger::thread_cpu_seconds() - check_cpu0;
    r.vars = g.num_pis();
    r.sim_hit = sim_hit ? 1 : 0;
    r.result = res.status == Status::kEquivalent      ? ledger::QueryResult::kUnsat
               : res.status == Status::kNotEquivalent ? ledger::QueryResult::kSat
                                                      : ledger::QueryResult::kUndef;
    ledger::append(r);
  };
  CecResult result;
  if (root == aig::kLitFalse) {
    result.status = Status::kEquivalent;
    append_check(result, false);
    return result;
  }
  if (root == aig::kLitTrue) {
    result.status = Status::kNotEquivalent;
    result.counterexample.assign(g.num_pis(), false);
    append_check(result, false);
    return result;
  }
  // Directed screening: a seed that excites the root decides the check with
  // zero solver work; when none fires, the SAT path below is untouched.
  if (screen_seed_patterns(g, root, seed_patterns, result)) {
    append_check(result, true);
    return result;
  }
  sat::Solver solver;
  solver.set_deadline(deadline);
  solver.set_cancel(cancel);
  cnf::Encoder enc(g, solver);
  const sat::Lit out = enc.lit(root);
  solver.add_unit(out);
  if (conflict_budget >= 0) solver.set_conflict_budget(conflict_budget);
  const sat::LBool verdict = solver.solve();
  if (verdict.is_false()) {
    result.status = Status::kEquivalent;
  } else if (verdict.is_true()) {
    result.status = Status::kNotEquivalent;
    result.counterexample = extract_pattern(g, enc, solver);
  }
  append_check(result, false);
  return result;
}

CecResult check_equivalence(const aig::Aig& a, const aig::Aig& b,
                            int64_t conflict_budget, uint64_t sim_rounds,
                            const eco::Deadline& deadline, eco::util::Executor* executor,
                            std::span<const std::vector<bool>> seed_patterns,
                            const eco::CancelToken& cancel) {
  const aig::Aig miter = build_miter(a, b);
  const aig::Lit out = miter.po_lit(0);

  {
    CecResult seeded;
    if (screen_seed_patterns(miter, out, seed_patterns, seeded)) return seeded;
  }

  // Cheap screening by random simulation. Rounds are independent (each has
  // its own seed), so they sweep across the executor's threads when one is
  // available. To keep the answer identical to the serial sweep, the
  // counterexample of the lowest-numbered failing round wins.
  if (executor != nullptr && executor->jobs() > 1 && sim_rounds > 1) {
    ECO_TELEMETRY_PHASE("cec_sim");
    std::mutex mu;
    uint64_t best_round = sim_rounds;
    std::vector<bool> best_pattern;
    std::atomic<uint64_t> found_floor{sim_rounds};
    executor->parallel_for(sim_rounds, [&](size_t round) {
      // A counterexample in an earlier round makes this one irrelevant.
      if (round >= found_floor.load(std::memory_order_relaxed)) return;
      std::vector<bool> pattern;
      if (!simulate_round(miter, out, round, pattern)) return;
      std::lock_guard<std::mutex> lock(mu);
      if (round < best_round) {
        best_round = round;
        best_pattern = std::move(pattern);
        found_floor.store(round, std::memory_order_relaxed);
      }
    });
    if (best_round < sim_rounds) {
      CecResult result;
      result.status = Status::kNotEquivalent;
      result.counterexample = std::move(best_pattern);
      return result;
    }
  } else {
    ECO_TELEMETRY_PHASE("cec_sim");
    for (uint64_t round = 0; round < sim_rounds; ++round) {
      std::vector<bool> pattern;
      if (simulate_round(miter, out, round, pattern)) {
        CecResult result;
        result.status = Status::kNotEquivalent;
        result.counterexample = std::move(pattern);
        return result;
      }
    }
  }
  // Past the size threshold the sweeping engine amortizes the single big
  // SAT query into many small class proofs (--cec sweep, default off).
  const CecOptions& copts = CecOptions::defaults();
  if (copts.mode == CecMode::kSweep && miter.num_ands() >= copts.min_nodes)
    return sweep_check(miter, out, conflict_budget, deadline, {}, cancel, executor, copts.sweep)
        .cec;
  return check_const0(miter, out, conflict_budget, deadline, {}, cancel);
}

}  // namespace eco::cec
