#include "cec/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "aig/simbank.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/ledger.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace eco::cec {

const char* cec_mode_name(CecMode m) noexcept {
  switch (m) {
    case CecMode::kMono: return "mono";
    case CecMode::kSweep: return "sweep";
  }
  return "?";
}

bool parse_cec_mode(std::string_view text, CecMode& out) noexcept {
  if (text == "mono" || text == "off") {
    out = CecMode::kMono;
    return true;
  }
  if (text == "sweep" || text == "on") {
    out = CecMode::kSweep;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CecOptions: process-wide, env-seeded defaults (the ParSolveOptions idiom)
// ---------------------------------------------------------------------------

namespace {

CecOptions env_seeded_cec_defaults() {
  CecOptions o;
  if (const char* v = std::getenv("ECO_CEC")) {
    CecMode mode;
    if (parse_cec_mode(v, mode)) o.mode = mode;
  }
  if (const char* v = std::getenv("ECO_CEC_MIN_NODES")) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0') o.min_nodes = static_cast<uint32_t>(n);
  }
  if (const char* v = std::getenv("ECO_SWEEP_ADAPTIVE"))
    o.sweep.adaptive_chunk = v[0] != '0';
  return o;
}

CecOptions& mutable_cec_defaults() {
  static CecOptions o = env_seeded_cec_defaults();
  return o;
}

}  // namespace

const CecOptions& CecOptions::defaults() noexcept { return mutable_cec_defaults(); }

void CecOptions::set_defaults(const CecOptions& opts) noexcept {
  mutable_cec_defaults() = opts;
}

void SweepStats::accumulate(const SweepStats& other) noexcept {
  classes += other.classes;
  proofs += other.proofs;
  refutes += other.refutes;
  merges += other.merges;
  cex_splits += other.cex_splits;
  undefs += other.undefs;
  rounds += other.rounds;
  phase_seeded += other.phase_seeded;
  nodes_before += other.nodes_before;
  nodes_after += other.nodes_after;
}

// ---------------------------------------------------------------------------
// The sweeper
// ---------------------------------------------------------------------------

namespace {

constexpr aig::Node kNoOwner = UINT32_MAX;

/// Outcome of one class-member proof attempt (filled by a chunk task, read
/// by the serial apply step).
struct PairOutcome {
  int8_t verdict = 0;  ///< 1 proven, -1 refuted, 0 undef/skipped
  std::vector<bool> pattern;
  /// For verdict 1: global pair ids of the (possibly speculated) equalities
  /// the UNSAT proof used (the assumption core). The proof is genuine iff
  /// every dependency is itself accepted.
  std::vector<uint32_t> deps;
};

/// One candidate class: union roots with identical canonical signatures.
/// Members are in ascending node order; members[0] is the representative.
/// phases[i] is the complement of member i relative to the canonical
/// signature, so member i matches the representative up to
/// `phases[i] ^ phases[0]`.
struct ClassTask {
  std::vector<aig::Node> members;
  std::vector<uint8_t> phases;
  /// Canonical signature is all-zero: the members looked constant under
  /// every pattern so far. Such classes are the usual home of false
  /// candidates (rarely-exercised comparison chains), so their equalities
  /// are never speculated into other chunks — proofs leaning on them would
  /// mostly be downgraded anyway.
  bool near_const = false;
};

struct TaskResult {
  std::vector<PairOutcome> outcomes;  ///< one per member beyond the first
  uint64_t phase_seeded = 0;
  /// Whole-chunk solver cost, stored at the chunk's first class (the
  /// results[lo] convention phase_seeded already uses). Conflicts are the
  /// deterministic adaptation signal of SweepOptions::adaptive_chunk.
  uint64_t chunk_conflicts = 0;
  uint64_t chunk_solves = 0;
};

class Sweeper {
 public:
  Sweeper(const aig::Aig& g, std::span<const aig::Lit> roots, const SweepOptions& opts,
          const eco::Deadline& deadline, const eco::CancelToken& cancel,
          util::Executor* executor)
      : g_(g),
        opts_(opts),
        deadline_(deadline),
        cancel_(cancel),
        executor_(executor),
        bank_(g, bank_options(g, opts)) {
    mark_cones(roots);
    parent_.resize(g_.num_nodes());
    pphase_.assign(g_.num_nodes(), 0);
    for (aig::Node n = 0; n < g_.num_nodes(); ++n) parent_[n] = n;
    stats_.nodes_before = g_.num_ands();
  }

  /// Folds caller seed patterns (prior counterexamples) into the bank.
  void add_seed_patterns(std::span<const std::vector<bool>> seeds) {
    for (const auto& seed : seeds) {
      if (bank_.full()) break;
      std::vector<bool> pattern(seed);
      pattern.resize(g_.num_pis(), false);
      bank_.add_pattern(pattern);
    }
  }

  /// True (with the witness in \p out) when some bank pattern sets \p root
  /// to 1 — a concrete counterexample, no solver work needed.
  bool bank_hit(aig::Lit root, std::vector<bool>& out) {
    if (root == aig::kLitTrue) {
      out.assign(g_.num_pis(), false);
      return true;
    }
    if (root == aig::kLitFalse) return false;
    const auto row = bank_.row(aig::lit_node(root));
    const uint64_t cm = aig::lit_compl(root) ? ~0ULL : 0ULL;
    uint32_t index = UINT32_MAX;
    for (size_t w = 0; w < row.size(); ++w) {
      const uint64_t hit = (row[w] ^ cm) & bank_.valid_mask(w);
      if (hit == 0) continue;
      index = static_cast<uint32_t>(w * 64 + __builtin_ctzll(hit));
      break;
    }
    if (index == UINT32_MAX) return false;
    out = bank_.pattern(index);
    return true;
  }

  /// sweep_check sets the root before run(): each round then opens with a
  /// budgeted root query on the current reduced miter (see
  /// SweepOptions::probe_conflict_budget), and a definitive answer ends the
  /// sweep early with the verdict in probe_status()/probe_cex().
  void set_probe_root(aig::Lit root) noexcept { probe_root_ = root; }
  Status probe_status() const noexcept { return probe_status_; }
  std::vector<bool> take_probe_cex() { return std::move(probe_cex_); }

  /// Runs the refine/prove/merge rounds. Returns early (without error) on
  /// deadline/cancellation; the reduced AIG is valid either way.
  void run() {
    size_t chunk =
        opts_.chunk_classes > 0 ? static_cast<size_t>(opts_.chunk_classes) : 32;
    const size_t min_chunk = std::max<size_t>(1, opts_.adaptive_min_chunk);
    const size_t max_chunk = std::max(min_chunk, static_cast<size_t>(
                                                     opts_.adaptive_max_chunk));
    for (uint32_t round = 0; round < opts_.max_rounds; ++round) {
      if (interrupted()) break;
      build_reduced();
      if (probe(round)) break;
      std::vector<ClassTask> tasks = build_classes();
      if (tasks.empty()) break;
      stats_.rounds += 1;
      stats_.classes += tasks.size();
      // Global pair ids: class ci's pairs are [off[ci], off[ci + 1]). Chunks
      // name their proof dependencies by these ids; apply resolves them.
      std::vector<uint32_t> off(tasks.size() + 1, 0);
      for (size_t ci = 0; ci < tasks.size(); ++ci)
        off[ci + 1] = off[ci] + static_cast<uint32_t>(tasks[ci].members.size() - 1);
      std::vector<TaskResult> results(tasks.size());
      const size_t num_chunks = (tasks.size() + chunk - 1) / chunk;
      const auto prove_one = [&](size_t k) {
        const size_t lo = k * chunk;
        prove_chunk(tasks, off, lo, std::min(tasks.size(), lo + chunk), results);
      };
      if (executor_ != nullptr && executor_->jobs() > 1 && num_chunks > 1)
        executor_->parallel_for(num_chunks, prove_one);
      else
        for (size_t k = 0; k < num_chunks; ++k) prove_one(k);
      if (opts_.adaptive_chunk && num_chunks > 0) {
        // Steer next round's chunk size by this round's mean conflicts per
        // chunk (deterministic — independent of executor width and wall
        // time, so sweeps stay reproducible). Hot chunks (mean past the
        // per-pair proof budget) amortized their encoding long ago and now
        // risk the slice deadline: halve. Nearly-cold chunks (under 1/8 of
        // the budget) pay encoding setup for trivial query runs: double.
        const int64_t budget =
            opts_.proof_conflict_budget > 0 ? opts_.proof_conflict_budget : 20000;
        uint64_t conflicts = 0;
        for (size_t k = 0; k < num_chunks; ++k)
          conflicts += results[std::min(tasks.size() - 1, k * chunk)].chunk_conflicts;
        const uint64_t mean = conflicts / num_chunks;
        if (mean > static_cast<uint64_t>(budget)) chunk = chunk / 2;
        else if (mean < static_cast<uint64_t>(budget) / 8) chunk = chunk * 2;
        chunk = std::min(max_chunk, std::max(min_chunk, chunk));
      }
      if (!apply(tasks, off, results)) break;  // no progress: classes settled
    }
    build_reduced();  // fold the last round's merges
    stats_.nodes_after = reduced_.num_ands();
  }

  /// Image of a g literal in the reduced AIG (valid after run()).
  aig::Lit image(aig::Lit l) const {
    const aig::Lit base = rmap_[aig::lit_node(l)];
    return aig::lit_notif(base, aig::lit_compl(l));
  }

  const aig::Aig& reduced() const noexcept { return reduced_; }
  const SweepStats& stats() const noexcept { return stats_; }
  std::vector<EquivPair> take_proven() { return std::move(proven_); }
  aig::SimBank& bank() noexcept { return bank_; }

  /// Seeds the saved phase of every newly encoded variable from the bank's
  /// per-node signal probability (majority simulated value). Returns the
  /// number of variables seeded. \p done tracks nodes already seeded on
  /// this solver.
  uint64_t seed_phases(sat::Solver& solver, cnf::Encoder& enc, std::vector<uint8_t>& done) {
    if (!solver.options().phase_seed) return 0;
    done.resize(reduced_.num_nodes(), 0);
    uint64_t seeded = 0;
    for (aig::Node n = 1; n < reduced_.num_nodes(); ++n) {
      if (done[n] != 0 || !enc.encoded(n)) continue;
      done[n] = 1;
      // Majority value 0 => prefer assigning false first.
      solver.set_polarity(enc.var(n), prob1_[n] < 0.5f);
      ++seeded;
    }
    return seeded;
  }

 private:
  static aig::SimBankOptions bank_options(const aig::Aig& g, const SweepOptions& opts) {
    aig::SimBankOptions bo;
    bo.seed_words = opts.sim_words > 0 ? opts.sim_words : 1;
    bo.capacity_words = bo.seed_words + opts.cex_words;
    bo.seed = opts.seed;
    (void)g;
    return bo;
  }

  bool interrupted() const {
    return deadline_.expired() || (cancel_.valid() && cancel_.cancelled());
  }

  void mark_cones(std::span<const aig::Lit> roots) {
    in_cone_.assign(g_.num_nodes(), 0);
    in_cone_[0] = 1;
    std::vector<aig::Node> stack;
    for (const aig::Lit l : roots) stack.push_back(aig::lit_node(l));
    while (!stack.empty()) {
      const aig::Node n = stack.back();
      stack.pop_back();
      if (in_cone_[n] != 0) continue;
      in_cone_[n] = 1;
      if (g_.is_and(n)) {
        stack.push_back(aig::lit_node(g_.fanin0(n)));
        stack.push_back(aig::lit_node(g_.fanin1(n)));
      }
    }
  }

  /// Union-find root of \p n and the phase of n relative to it.
  std::pair<aig::Node, bool> find(aig::Node n) {
    bool phase = false;
    aig::Node root = n;
    while (parent_[root] != root) {
      phase ^= pphase_[root] != 0;
      root = parent_[root];
    }
    // Path compression, re-rooting every node on the walk directly at root.
    aig::Node cur = n;
    bool cur_phase = false;  // phase of n relative to cur
    while (parent_[cur] != cur) {
      const aig::Node next = parent_[cur];
      const bool next_edge = pphase_[cur] != 0;
      parent_[cur] = root;
      pphase_[cur] = static_cast<uint8_t>(phase ^ cur_phase);
      cur_phase ^= next_edge;
      cur = next;
    }
    return {root, phase};
  }

  /// Records `value(child) == value(root) ^ phase`. \pre both are union
  /// roots and root < child (so the reduced image of root always exists by
  /// the time child's cone is rebuilt).
  void merge(aig::Node root, aig::Node child, bool phase) {
    parent_[child] = root;
    pphase_[child] = static_cast<uint8_t>(phase);
    stats_.merges += 1;
    proven_.push_back(EquivPair{aig::lit_make(root, false), aig::lit_make(child, phase)});
  }

  /// Rebuilds the reduced AIG through the current union-find. Structural
  /// hashing in the reduced graph exposes merges the unions imply (two
  /// roots collapsing onto one node), which are unioned on the spot — an
  /// equivalence proof by construction, no SAT needed.
  void build_reduced() {
    const bool want_probs = sat::SolverOptions::defaults().phase_seed;
    reduced_ = aig::Aig();
    rmap_.assign(g_.num_nodes(), aig::kLitInvalid);
    rmap_[0] = aig::kLitFalse;
    rowner_.assign(1, kNoOwner);
    prob1_.assign(1, 0.0f);
    for (uint32_t i = 0; i < g_.num_pis(); ++i) {
      const aig::Lit pl = g_.pi_lit(i);
      const aig::Lit rl = reduced_.add_pi(g_.pi_name(i));
      rmap_[aig::lit_node(pl)] = rl;
      note_reduced_node(rl, aig::lit_node(pl), want_probs);
    }
    for (aig::Node n = g_.num_pis() + 1; n < g_.num_nodes(); ++n) {
      if (in_cone_[n] == 0) continue;
      const auto [root, phase] = find(n);
      if (root != n) {
        rmap_[n] = aig::lit_notif(rmap_[root], phase);
        continue;
      }
      const aig::Lit f0 = image(g_.fanin0(n));
      const aig::Lit f1 = image(g_.fanin1(n));
      const aig::Lit rl = reduced_.add_and(f0, f1);
      rmap_[n] = rl;
      if (rl == aig::kLitFalse || rl == aig::kLitTrue) {
        // Simplified to a constant: n is provably const (0 is node 0's lit).
        merge(0, n, rl == aig::kLitTrue);
        continue;
      }
      const aig::Node rn = aig::lit_node(rl);
      if (rn < rowner_.size() && rowner_[rn] != kNoOwner && rowner_[rn] != n) {
        // Another root already produced this reduced node: structurally
        // identical under the current merges, so union the two.
        const aig::Node owner = rowner_[rn];
        const bool rel = aig::lit_compl(rl) != aig::lit_compl(rmap_[owner]);
        merge(owner, n, rel);
        continue;
      }
      note_reduced_node(rl, n, want_probs);
    }
  }

  /// Registers a freshly created reduced node: its owning g root (for
  /// structural-union detection) and its signal probability (for phase
  /// seeding).
  void note_reduced_node(aig::Lit rl, aig::Node g_node, bool want_probs) {
    const aig::Node rn = aig::lit_node(rl);
    if (rn >= rowner_.size()) {
      rowner_.resize(reduced_.num_nodes(), kNoOwner);
      prob1_.resize(reduced_.num_nodes(), 0.5f);
    }
    if (rowner_[rn] != kNoOwner) return;
    rowner_[rn] = g_node;
    if (!want_probs || bank_.num_patterns() == 0) return;
    const auto row = bank_.row(g_node);
    uint64_t ones = 0;
    for (size_t w = 0; w < row.size(); ++w)
      ones += static_cast<uint64_t>(__builtin_popcountll(row[w] & bank_.valid_mask(w)));
    float p = static_cast<float>(ones) / static_cast<float>(bank_.num_patterns());
    if (aig::lit_compl(rl)) p = 1.0f - p;
    prob1_[rn] = p;
  }

  /// Partitions the current union roots (in the cone, plus the constant) by
  /// complement-canonical signature. Only multi-member classes are
  /// returned; members come out in ascending node order.
  std::vector<ClassTask> build_classes() {
    std::unordered_map<uint64_t, size_t> index;
    std::vector<ClassTask> classes;
    const size_t words = bank_.num_words();
    for (aig::Node n = 0; n < g_.num_nodes(); ++n) {
      if (n != 0 && in_cone_[n] == 0) continue;
      if (find(n).first != n) continue;
      const auto row = bank_.row(n);
      const bool phase = (row[0] & 1ULL) != 0;  // canonicalize pattern 0 to 0
      const uint64_t flip = phase ? ~0ULL : 0ULL;
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      uint64_t any = 0;
      for (size_t w = 0; w < words; ++w) {
        const uint64_t canon = (row[w] ^ flip) & bank_.valid_mask(w);
        any |= canon;
        h = SplitMix64::mix(h ^ canon);
      }
      const auto [it, fresh] = index.emplace(h, classes.size());
      if (fresh) classes.emplace_back();
      ClassTask& cls = classes[it->second];
      if (cls.members.empty()) cls.near_const = any == 0;
      cls.members.push_back(n);
      cls.phases.push_back(static_cast<uint8_t>(phase));
    }
    std::vector<ClassTask> tasks;
    std::vector<ClassTask> subs;
    for (auto& cls : classes) {
      if (cls.members.size() < 2) continue;
      // Split each signature group along the refuted-pair memo: a member
      // joins the first subgroup whose representative it has not already
      // been refuted against, else it anchors a new subgroup. Refuted pairs
      // the bank could not split (capacity) never get re-proved, and every
      // member still gets a chance against a fresh representative.
      subs.clear();
      for (size_t j = 0; j < cls.members.size(); ++j) {
        bool placed = false;
        for (ClassTask& sub : subs) {
          const bool rel = cls.phases[j] != sub.phases[0];
          if (refuted_.count(pair_key(sub.members[0], cls.members[j], rel)) != 0) continue;
          sub.members.push_back(cls.members[j]);
          sub.phases.push_back(cls.phases[j]);
          placed = true;
          break;
        }
        if (!placed) {
          subs.emplace_back();
          subs.back().near_const = cls.near_const;
          subs.back().members.push_back(cls.members[j]);
          subs.back().phases.push_back(cls.phases[j]);
        }
      }
      for (auto& sub : subs)
        if (sub.members.size() >= 2) tasks.push_back(std::move(sub));
    }
    // Topological order by topmost member: by the time a class is proved,
    // everything in its members' cones sits in earlier classes, so their
    // (asserted or speculated) equalities carry the proof. Members are
    // distinct nodes, so the order is total and deterministic.
    std::sort(tasks.begin(), tasks.end(), [](const ClassTask& a, const ClassTask& b) {
      return a.members.back() < b.members.back();
    });
    return tasks;
  }

  /// Proves the classes [lo, hi) on one shared solver + Tseitin encoding.
  /// Runs on an executor worker; owns its solver and writes only into
  /// results[lo..hi).
  ///
  /// Every equality the chunk relies on — the *unproven* equalities of the
  /// classes below it (speculative reduction) and its own proofs fed forward
  /// — enters the solver guarded by a fresh selector, and each proof query
  /// assumes every selector created so far. On UNSAT the solver's assumption
  /// core names exactly the equalities the proof used; those pair ids go
  /// into PairOutcome::deps, and the serial apply step accepts the proof iff
  /// all of its dependencies were themselves accepted (induction: accepted
  /// deps are genuine facts, so a proof resting only on them is genuine).
  /// Refutations need no such screen: a model assigns the PIs and the
  /// Tseitin clauses force every node, so it is a real simulation vector
  /// regardless of what was speculated.
  ///
  /// The assumption vector grows in global pair-id order with the fresh
  /// miter selector last, so consecutive queries share a long assumption
  /// prefix and trail reuse (SolverOptions::trail_reuse) makes the
  /// re-assumption nearly free.
  void prove_chunk(const std::vector<ClassTask>& tasks, const std::vector<uint32_t>& off,
                   size_t lo, size_t hi, std::vector<TaskResult>& results) {
    auto ledger_scope = ledger::ScopedPurpose::weak(ledger::Purpose::kSweep);
    const bool ledger_on = ledger::enabled();
    const Timer chunk_wall;
    const double chunk_cpu0 = ledger_on ? ledger::thread_cpu_seconds() : 0;
    sat::Solver solver;
    solver.set_deadline(deadline_);
    eco::CancelToken slice;
    if (cancel_.valid()) {
      slice = cancel_.child(opts_.class_slice_seconds);
      solver.set_cancel(slice);
    }
    cnf::Encoder enc(reduced_, solver);
    std::vector<uint8_t> seeded;
    uint64_t phase_seeded = 0;
    const int64_t budget =
        opts_.proof_conflict_budget > 0 ? opts_.proof_conflict_budget : 20000;
    const auto member_lit = [this](const ClassTask& t, size_t j) {
      const bool rel = t.phases[j] != t.phases[0];
      return aig::lit_notif(rmap_[t.members[j]], rel);
    };
    std::vector<sat::Lit> assumps;  // selectors, pair-id order, miter last
    std::unordered_map<sat::Var, uint32_t> sel_pair;  // selector var -> pair id
    // Guarded fact `s -> (a == b)`; assumed (not asserted) so UNSAT cores can
    // report whether a proof leaned on it.
    const auto make_equal_sel = [&](uint32_t pair_id, sat::Lit a, sat::Lit b) {
      const sat::Lit s = sat::mk_lit(solver.new_var());
      solver.add_ternary(~s, ~a, b);
      solver.add_ternary(~s, a, ~b);
      sel_pair.emplace(s.var(), pair_id);
      return s;
    };

    // Build the whole chunk CNF up front — Tseitin cones, own equality
    // guards, own miter selectors, then speculated equality guards — so no
    // clause lands after the first solve. add_clause cancels the trail to
    // level 0, so interleaving clauses with queries would re-propagate the
    // entire assumption stack on every pair; front-loading keeps the shared
    // prefix hot across the whole query sequence.
    struct OwnPair {
      sat::Lit rep;  ///< representative, phase-adjusted, encoded
      sat::Lit mem;  ///< member, phase-adjusted, encoded
      sat::Lit t;    ///< miter selector: t -> rep != member
      sat::Lit s;    ///< equality selector: s -> rep == member
    };
    std::vector<std::vector<OwnPair>> own(hi - lo);
    for (size_t ci = lo; ci < hi; ++ci) {
      const ClassTask& task = tasks[ci];
      results[ci].outcomes.resize(task.members.size() - 1);
      if (interrupted() || !solver.okay()) continue;
      const sat::Lit rep_lit = enc.lit(rmap_[task.members[0]]);
      auto& pairs = own[ci - lo];
      pairs.reserve(task.members.size() - 1);
      for (size_t j = 1; j < task.members.size(); ++j) {
        const sat::Lit mem_lit = enc.lit(member_lit(task, j));
        OwnPair p;
        p.rep = rep_lit;
        p.mem = mem_lit;
        p.t = sat::mk_lit(solver.new_var());
        solver.add_ternary(~p.t, rep_lit, mem_lit);
        solver.add_ternary(~p.t, ~rep_lit, ~mem_lit);
        p.s = make_equal_sel(off[ci] + static_cast<uint32_t>(j - 1), rep_lit, mem_lit);
        pairs.push_back(p);
      }
    }
    // Speculate a lower class's equality only when both sides already sit
    // inside this chunk's encoded cones: those are the only equalities that
    // can prune this chunk's queries, and encoding anything more would make
    // every chunk encode every cone below it — quadratic total work instead
    // of work proportional to the chunk's own cones.
    for (size_t ci = 0; ci < lo; ++ci) {
      if (!solver.okay()) break;
      const ClassTask& below = tasks[ci];
      if (below.near_const) continue;  // the usual home of false candidates
      const aig::Lit rep_rl = rmap_[below.members[0]];
      if (!enc.encoded(aig::lit_node(rep_rl))) continue;
      const sat::Lit rep_lit = enc.lit(rep_rl);
      for (size_t j = 1; j < below.members.size(); ++j) {
        const aig::Lit mem_rl = member_lit(below, j);
        if (!enc.encoded(aig::lit_node(mem_rl))) continue;
        assumps.push_back(make_equal_sel(off[ci] + static_cast<uint32_t>(j - 1), rep_lit,
                                         enc.lit(mem_rl)));
      }
    }
    phase_seeded += seed_phases(solver, enc, seeded);

    // Query sequence: each pair assumes every selector so far plus its own
    // miter selector t. Afterwards the pair is retired by appending its
    // equality selector (proven: feeds the fact forward under its pair id)
    // or ~t (otherwise: keeps the search out of that miter subspace), so
    // consecutive assumption vectors differ only in their tail and trail
    // reuse re-propagates just the last level or two.
    //
    // Every SAT model doubles as a simulation vector over the chunk's
    // encoded cones (the Tseitin clauses force each node to its value under
    // the model's PIs), so it is replayed over every pair not yet decided:
    // any pair the model distinguishes is refuted on the spot, no solve
    // needed. Chains of pairwise-inequivalent nodes with identical bank
    // signatures collapse in a couple of queries instead of one SAT model
    // per member (the counterexample-resimulation step of classic fraig).
    for (size_t ci = lo; ci < hi; ++ci) {
      const ClassTask& task = tasks[ci];
      TaskResult& result = results[ci];
      const auto& pairs = own[ci - lo];
      for (size_t j = 1; j < task.members.size() && j - 1 < pairs.size(); ++j) {
        PairOutcome& out = result.outcomes[j - 1];
        const OwnPair& p = pairs[j - 1];
        if (out.verdict != 0) {  // refuted by an earlier model replay
          assumps.push_back(~p.t);
          continue;
        }
        if (deadline_.expired() || (slice.valid() && slice.cancelled()) ||
            !solver.okay()) {  // verdict 0: abandoned
          assumps.push_back(~p.t);
          continue;
        }
        solver.set_conflict_budget(budget);
        assumps.push_back(p.t);
        const sat::LBool res = solver.solve(assumps);
        assumps.pop_back();
        if (res.is_false()) {
          out.verdict = 1;
          for (const sat::Lit c : solver.core()) {
            const auto it = sel_pair.find(c.var());
            if (it != sel_pair.end()) out.deps.push_back(it->second);
          }
          // Feed the proof forward: later pairs may lean on this equality
          // and will pick up its pair id as a dependency via the core.
          assumps.push_back(p.s);
        } else {
          if (res.is_true()) {
            out.verdict = -1;
            out.pattern.assign(g_.num_pis(), false);
            for (uint32_t i = 0; i < reduced_.num_pis(); ++i) {
              const aig::Node pn = reduced_.pi_node(i);
              if (enc.encoded(pn)) out.pattern[i] = solver.model_value(enc.var(pn));
            }
            // Replay the model over everything still pending in this chunk.
            // Only the solved pair keeps the pattern (replayed refutes would
            // bank duplicates); the memo still retires every one of them.
            for (size_t ck = ci; ck < hi; ++ck) {
              const auto& kpairs = own[ck - lo];
              auto& kout = results[ck].outcomes;
              for (size_t q = ck == ci ? j : 1;
                   q - 1 < kpairs.size() && q < tasks[ck].members.size(); ++q) {
                if (kout[q - 1].verdict != 0) continue;
                const OwnPair& kp = kpairs[q - 1];
                if (solver.model_value(kp.rep) != solver.model_value(kp.mem))
                  kout[q - 1].verdict = -1;  // pattern left empty: not banked
              }
            }
          }
          assumps.push_back(~p.t);
        }
      }
    }
    if (lo < results.size()) {
      results[lo].phase_seeded = phase_seeded;
      // Whole-chunk cost: one solver serves the chunk, so its final totals
      // are exactly this chunk's bill. Feeds the adaptive sizing in run()
      // and the per-chunk `sweep_chunk` ledger record.
      results[lo].chunk_conflicts = solver.stats().conflicts;
      results[lo].chunk_solves = solver.stats().solves;
    }
    if (ledger_on) {
      ledger::Record r;
      r.kind = ledger::Kind::kSweepChunk;
      r.wall_seconds = chunk_wall.seconds();
      r.cpu_seconds = ledger::thread_cpu_seconds() - chunk_cpu0;
      r.conflicts = solver.stats().conflicts;
      r.decisions = solver.stats().decisions;
      r.propagations = solver.stats().propagations;
      r.vars = static_cast<uint32_t>(hi - lo);  // classes in the chunk
      r.result = ledger::QueryResult::kUndef;   // a batch, not one verdict
      if (deadline_.expired()) r.cancel = ledger::CancelCause::kDeadline;
      ledger::append(r);
    }
  }

  /// Applies task results serially in (class, member) order: unions the
  /// proven pairs and harvests refutation counterexamples into the bank.
  ///
  /// A proof is accepted iff every dependency in its assumption core is an
  /// accepted *proof* (induction over ascending pair ids: accepted deps are
  /// genuine equalities, so the proof is genuine); proofs resting on a
  /// refuted or budget-exhausted speculation are downgraded to undef and
  /// retried next round. Refutations are unconditionally genuine — the
  /// model is a real input vector and simulation is ground truth — so they
  /// always count, feed the bank, and enter the refuted-pair memo that
  /// keeps build_classes from re-pairing them. Returns true when the round
  /// made progress.
  bool apply(const std::vector<ClassTask>& tasks, const std::vector<uint32_t>& off,
             std::vector<TaskResult>& results) {
    uint64_t proofs = 0;
    uint64_t added = 0;
    uint64_t memo_new = 0;
    std::vector<uint8_t> valid(off.back(), 0);  // pair id -> accepted proof
    for (size_t ci = 0; ci < tasks.size(); ++ci) {
      const ClassTask& task = tasks[ci];
      TaskResult& result = results[ci];
      stats_.phase_seeded += result.phase_seeded;
      for (size_t j = 1; j < task.members.size(); ++j) {
        const PairOutcome& out = result.outcomes[j - 1];
        const uint32_t pair_id = off[ci] + static_cast<uint32_t>(j - 1);
        if (out.verdict == 1) {
          bool deps_ok = true;
          for (const uint32_t d : out.deps) {
            if (d >= pair_id || valid[d] == 0) {
              deps_ok = false;
              break;
            }
          }
          if (deps_ok) {
            valid[pair_id] = 1;
            const bool rel = task.phases[j] != task.phases[0];
            merge(task.members[0], task.members[j], rel);
            stats_.proofs += 1;
            ++proofs;
          } else {
            stats_.undefs += 1;
          }
        } else if (out.verdict == -1) {
          stats_.refutes += 1;
          const bool rel = task.phases[j] != task.phases[0];
          if (refuted_.insert(pair_key(task.members[0], task.members[j], rel)).second)
            ++memo_new;
          // Model-replay refutes carry no pattern (the solved pair banked it).
          if (!out.pattern.empty() && !bank_.full() && bank_.add_pattern(out.pattern)) {
            stats_.cex_splits += 1;
            ++added;
          }
        } else {
          stats_.undefs += 1;
        }
      }
    }
    // Refuted-pair memo entries alone are not progress: once a round neither
    // proves anything nor banks a splitting pattern, further rounds would
    // only churn through pairwise refutations of re-anchored subclasses
    // (each round one model per subclass) without ever shrinking the miter.
    (void)memo_new;
    return proofs > 0 || added > 0;
  }

  /// Memo key for a refuted (root, child, relative-phase) pair; root < child
  /// (class members ascend and the representative is the smallest).
  static uint64_t pair_key(aig::Node root, aig::Node child, bool rel) noexcept {
    return (static_cast<uint64_t>(root) << 33) | (static_cast<uint64_t>(child) << 1) |
           static_cast<uint64_t>(rel);
  }

  /// Budgeted root query on the current reduced miter (sweep_check only).
  /// Both answers are definitive — the reduction applies only accepted
  /// merges, so UNSAT transfers to the original miter, and a model's PI
  /// assignment is a genuine counterexample. Returns true when decided.
  bool probe(uint32_t round) {
    if (probe_root_ == aig::kLitInvalid || opts_.probe_conflict_budget <= 0) return false;
    const aig::Lit rl = image(probe_root_);
    if (rl == aig::kLitFalse) {
      probe_status_ = Status::kEquivalent;
      return true;
    }
    std::vector<bool> witness;
    if (rl == aig::kLitTrue) {
      probe_status_ = Status::kNotEquivalent;
      probe_cex_.assign(g_.num_pis(), false);
      return true;
    }
    // Counterexamples harvested in earlier rounds may already witness it.
    if (bank_hit(probe_root_, witness)) {
      probe_status_ = Status::kNotEquivalent;
      probe_cex_ = std::move(witness);
      return true;
    }
    // The SAT hunt runs once, before any sweeping: it is the monolithic
    // engine's shot at an easy counterexample, so an easy-SAT miter costs
    // monolithic price instead of a full sweep. It is not repeated on later
    // rounds — conflicts on the still-large miter are expensive and for an
    // equivalent miter every repeat is pure waste; the free bank check above
    // still runs each round, and the final root query settles the residue.
    if (round > 0) return false;
    // No phase seeding here, deliberately: seeding steers the search toward
    // the typical simulated values, which is exactly where a rare
    // counterexample is NOT (the class proofs want typical, the probe wants
    // atypical).
    sat::Solver solver;
    solver.set_deadline(deadline_);
    solver.set_cancel(cancel_);
    cnf::Encoder enc(reduced_, solver);
    const sat::Lit out = enc.lit(rl);
    solver.add_unit(out);
    solver.set_conflict_budget(opts_.probe_conflict_budget);
    const sat::LBool res = solver.solve();
    if (res.is_false()) {
      probe_status_ = Status::kEquivalent;
      return true;
    }
    if (res.is_true()) {
      probe_status_ = Status::kNotEquivalent;
      probe_cex_.assign(g_.num_pis(), false);
      for (uint32_t i = 0; i < reduced_.num_pis(); ++i) {
        const aig::Node pn = reduced_.pi_node(i);
        if (enc.encoded(pn)) probe_cex_[i] = solver.model_value(enc.var(pn));
      }
      return true;
    }
    return false;  // budget exhausted: keep sweeping
  }

  const aig::Aig& g_;
  const SweepOptions opts_;
  const eco::Deadline& deadline_;
  const eco::CancelToken& cancel_;
  util::Executor* executor_;

  aig::SimBank bank_;
  std::vector<uint8_t> in_cone_;
  std::vector<aig::Node> parent_;   ///< union-find parent (parent < child)
  std::vector<uint8_t> pphase_;     ///< phase relative to parent
  aig::Aig reduced_;
  std::vector<aig::Lit> rmap_;      ///< g node -> reduced literal
  std::vector<aig::Node> rowner_;   ///< reduced node -> first producing g root
  std::vector<float> prob1_;        ///< reduced node -> P(value == 1)
  std::vector<EquivPair> proven_;
  /// SAT-refuted (root, child, rel) pairs — see pair_key. Consulted by
  /// build_classes so a refutation is final even when the bank is too full
  /// to absorb its counterexample pattern.
  std::unordered_set<uint64_t> refuted_;
  aig::Lit probe_root_ = aig::kLitInvalid;
  Status probe_status_ = Status::kUnknown;
  std::vector<bool> probe_cex_;
  SweepStats stats_;
};

void publish_telemetry(const SweepStats& stats) {
  ECO_TELEMETRY_COUNT("sweep.classes", stats.classes);
  ECO_TELEMETRY_COUNT("sweep.proofs", stats.proofs);
  ECO_TELEMETRY_COUNT("sweep.refutes", stats.refutes);
  ECO_TELEMETRY_COUNT("sweep.merges", stats.merges);
  ECO_TELEMETRY_COUNT("sweep.cex_splits", stats.cex_splits);
  if (stats.undefs > 0) ECO_TELEMETRY_COUNT("sweep.undefs", stats.undefs);
  if (stats.phase_seeded > 0) ECO_TELEMETRY_COUNT("sweep.phase_seeded", stats.phase_seeded);
}

}  // namespace

SweepResult sweep_check(const aig::Aig& g, aig::Lit root, int64_t conflict_budget,
                        const eco::Deadline& deadline,
                        std::span<const std::vector<bool>> seed_patterns,
                        const eco::CancelToken& cancel, util::Executor* executor,
                        const SweepOptions& options) {
  ECO_TELEMETRY_PHASE("sweep");
  ECO_TELEMETRY_COUNT("sweep.checks");
  // Weak: the engine's verification opens kVerify above this entry point.
  auto ledger_scope = ledger::ScopedPurpose::weak(ledger::Purpose::kSweep);
  const bool ledger_on = ledger::enabled();
  const Timer check_wall;
  const double check_cpu0 = ledger_on ? ledger::thread_cpu_seconds() : 0;
  auto append_check = [&](const SweepResult& res, bool sim_hit) {
    publish_telemetry(res.stats);
    if (!ledger_on) return;
    ledger::Record r;
    r.kind = ledger::Kind::kCecCheck;
    r.wall_seconds = check_wall.seconds();
    r.cpu_seconds = ledger::thread_cpu_seconds() - check_cpu0;
    r.vars = g.num_pis();
    r.sim_hit = sim_hit ? 1 : 0;
    r.result = res.cec.status == Status::kEquivalent      ? ledger::QueryResult::kUnsat
               : res.cec.status == Status::kNotEquivalent ? ledger::QueryResult::kSat
                                                          : ledger::QueryResult::kUndef;
    ledger::append(r);
  };

  SweepResult result;
  if (root == aig::kLitFalse) {
    result.cec.status = Status::kEquivalent;
    append_check(result, false);
    return result;
  }
  if (root == aig::kLitTrue) {
    result.cec.status = Status::kNotEquivalent;
    result.cec.counterexample.assign(g.num_pis(), false);
    append_check(result, false);
    return result;
  }

  const aig::Lit roots[1] = {root};
  Sweeper sweeper(g, roots, options, deadline, cancel, executor);
  sweeper.add_seed_patterns(seed_patterns);

  // The bank's random patterns (plus the caller's seeds) double as the
  // simulation screen: any pattern exciting the root decides the check.
  std::vector<bool> witness;
  if (sweeper.bank_hit(root, witness)) {
    result.cec.status = Status::kNotEquivalent;
    result.cec.counterexample = std::move(witness);
    result.stats = sweeper.stats();
    append_check(result, true);
    return result;
  }

  sweeper.set_probe_root(root);
  sweeper.run();
  result.proven = sweeper.take_proven();

  // A definitive between-rounds root probe ends the check (see probe()).
  if (sweeper.probe_status() != Status::kUnknown) {
    result.cec.status = sweeper.probe_status();
    if (result.cec.status == Status::kNotEquivalent)
      result.cec.counterexample = sweeper.take_probe_cex();
    result.stats = sweeper.stats();
    append_check(result, false);
    return result;
  }

  // Counterexamples harvested during the sweep may already excite the root.
  if (sweeper.bank_hit(root, witness)) {
    result.cec.status = Status::kNotEquivalent;
    result.cec.counterexample = std::move(witness);
    result.stats = sweeper.stats();
    append_check(result, true);
    return result;
  }

  const aig::Lit rl = sweeper.image(root);
  if (rl == aig::kLitFalse) {
    // The sweep merged the root to constant 0: equivalent by construction.
    result.cec.status = Status::kEquivalent;
    result.stats = sweeper.stats();
    append_check(result, false);
    return result;
  }
  if (rl == aig::kLitTrue) {
    result.cec.status = Status::kNotEquivalent;
    result.cec.counterexample.assign(g.num_pis(), false);
    result.stats = sweeper.stats();
    append_check(result, false);
    return result;
  }

  // Final root query on the reduced miter (every proven merge already
  // applied, so this is the small residue the sweep could not settle).
  const aig::Aig& reduced = sweeper.reduced();
  sat::Solver solver;
  solver.set_deadline(deadline);
  solver.set_cancel(cancel);
  cnf::Encoder enc(reduced, solver);
  const sat::Lit out = enc.lit(rl);
  std::vector<uint8_t> seeded;
  SweepStats stats = sweeper.stats();
  stats.phase_seeded += sweeper.seed_phases(solver, enc, seeded);
  solver.add_unit(out);
  if (conflict_budget >= 0) solver.set_conflict_budget(conflict_budget);
  const sat::LBool verdict = solver.solve();
  if (verdict.is_false()) {
    result.cec.status = Status::kEquivalent;
  } else if (verdict.is_true()) {
    result.cec.status = Status::kNotEquivalent;
    result.cec.counterexample.assign(g.num_pis(), false);
    for (uint32_t i = 0; i < reduced.num_pis(); ++i) {
      const aig::Node pn = reduced.pi_node(i);
      if (enc.encoded(pn)) result.cec.counterexample[i] = solver.model_value(enc.var(pn));
    }
  }
  result.stats = stats;
  append_check(result, false);
  return result;
}

SweepResult sweep_discover(const aig::Aig& g, std::span<const aig::Lit> roots,
                           const eco::Deadline& deadline, const eco::CancelToken& cancel,
                           util::Executor* executor, const SweepOptions& options) {
  ECO_TELEMETRY_PHASE("sweep");
  ECO_TELEMETRY_COUNT("sweep.discoveries");
  auto ledger_scope = ledger::ScopedPurpose::weak(ledger::Purpose::kSweep);
  SweepResult result;
  if (roots.empty()) return result;
  Sweeper sweeper(g, roots, options, deadline, cancel, executor);
  sweeper.run();
  result.proven = sweeper.take_proven();
  result.stats = sweeper.stats();
  publish_telemetry(result.stats);
  return result;
}

}  // namespace eco::cec
