/// \file qbf2.hpp
/// \brief CEGAR solver for 2QBF instances  ∃x ∀n. M(n, x)  given as an AIG
/// (paper §3.2 "command qbf in ABC", §3.6.2, refs [1, 2]).
///
/// The ECO feasibility question is exactly this formula on the ECO miter:
/// it is TRUE iff some input x mismatches under every assignment of the
/// targets (ECO impossible), FALSE iff the ECO has a solution.
///
/// The CEGAR loop alternates two solvers:
///  - the A-solver proposes a candidate x* satisfying all constraints
///    collected so far (conjunction of cofactors M(n*_j, x));
///  - the B-solver checks ∃n. ¬M(n, x*). If UNSAT, x* is a witness and the
///    formula is TRUE. If SAT, the countermove n* refines A.
///
/// When A becomes UNSAT the formula is FALSE and the collected countermoves
/// n*_1..n*_m are a *Herbrand-style certificate*: for every x some move j
/// has ¬M(n*_j, x). The structural multi-target patch (paper §3.6.2) is
/// built directly from these m moves — m miter copies instead of the naive
/// 2^k - 1 cofactor expansion.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/cancel.hpp"

namespace eco::qbf {

enum class Qbf2Status {
  kTrue,     ///< ∃x ∀n M — witness_x is the witness (ECO infeasible)
  kFalse,    ///< formula false — moves are the certificate (ECO feasible)
  kUnknown,  ///< budget exhausted
};

struct Qbf2Options {
  int max_iterations = 10000;
  int64_t conflict_budget = -1;  ///< per SAT query (< 0 unlimited)
  double time_budget = 0;        ///< seconds (<= 0 unlimited)
  /// Cooperative cancellation: checked each CEGAR iteration and threaded
  /// into both solvers. Cancellation yields kUnknown. An invalid token is
  /// ignored (time_budget alone governs).
  CancelToken cancel{};
};

struct Qbf2Result {
  Qbf2Status status = Qbf2Status::kUnknown;
  /// For kTrue: values of the x variables.
  std::vector<bool> witness_x;
  /// For kFalse: the countermoves, each a full assignment of the n vars.
  std::vector<std::vector<bool>> moves;
  int iterations = 0;
};

/// Solves ∃x ∀n root(x, n) where x are the PIs of \p g with indices in
/// [0, num_x) and n the PIs with indices in [num_x, num_pis).
Qbf2Result solve_exists_forall(const aig::Aig& g, aig::Lit root, uint32_t num_x,
                               const Qbf2Options& options = {});

}  // namespace eco::qbf
