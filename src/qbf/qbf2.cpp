#include "qbf/qbf2.hpp"

#include <algorithm>
#include <utility>

#include "aig/ops.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/faultpoint.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::qbf {

Qbf2Result solve_exists_forall(const aig::Aig& g, aig::Lit root, uint32_t num_x,
                               const Qbf2Options& options) {
  ECO_TELEMETRY_PHASE("qbf");
  // Weak: a library entry point must not shadow an engine-level tag.
  auto ledger_scope = ledger::ScopedPurpose::weak(ledger::Purpose::kQbf);
  Qbf2Result result;
  // Fault site: the CEGAR loop hits its iteration cap before converging.
  if (ECO_FAULT_POINT(fault::Site::kQbfIterCap)) {
    result.iterations = options.max_iterations;
    return result;
  }
  Deadline deadline(options.time_budget);
  const uint32_t num_n = g.num_pis() - num_x;

  // A-side: an accumulator AIG over the x variables; each refinement appends
  // the cofactor root(x, n*) and asserts it in the A-solver.
  aig::Aig acc;
  std::vector<aig::Lit> acc_x;
  acc_x.reserve(num_x);
  for (uint32_t i = 0; i < num_x; ++i) acc_x.push_back(acc.add_pi(g.pi_name(i)));
  sat::Solver a_solver;
  a_solver.set_deadline(deadline);
  a_solver.set_cancel(options.cancel);
  cnf::Encoder a_enc(acc, a_solver);
  // Make sure every x variable exists in the A-solver so models cover them.
  for (uint32_t i = 0; i < num_x; ++i) a_enc.lit(acc_x[i]);

  // B-side: one persistent solver holding ¬root(n, x*), queried under
  // assumptions fixing x*.
  sat::Solver b_solver;
  b_solver.set_deadline(deadline);
  b_solver.set_cancel(options.cancel);
  cnf::Encoder b_enc(g, b_solver);
  const sat::Lit b_root = b_enc.lit(root);
  b_solver.add_unit(~b_root);
  std::vector<sat::Lit> b_x, b_n;
  for (uint32_t i = 0; i < num_x; ++i) b_x.push_back(b_enc.lit(g.pi_lit(i)));
  for (uint32_t i = 0; i < num_n; ++i) b_n.push_back(b_enc.lit(g.pi_lit(num_x + i)));

  auto budgeted = [&](sat::Solver& s) {
    if (options.conflict_budget >= 0) {
      s.set_conflict_budget(options.conflict_budget);
      // Escalate to the parallel layer (sat/parsolve.hpp) once a CEGAR
      // iteration has burned a quarter of its slice: the remaining budget is
      // then spent by the portfolio by proxy instead of one stuck core.
      s.set_par_trigger(std::max<int64_t>(options.conflict_budget / 4, 1000));
    }
  };

  // One kQbfIteration ledger record per CEGAR iteration: kUnsat when the
  // iteration settled the formula, kSat when it refined and looped, kUndef
  // when a budget cut it short. Work counters are the deltas of both
  // solvers, so an iteration record aggregates its (up to two) solves.
  const bool ledger_on = ledger::enabled();
  auto iteration_work = [&] {
    return a_solver.stats().conflicts + b_solver.stats().conflicts;
  };
  auto append_iteration = [&](const Timer& wall, double cpu0, uint64_t conflicts0,
                              ledger::QueryResult qr) {
    if (!ledger_on) return;
    ledger::Record r;
    r.kind = ledger::Kind::kQbfIteration;
    r.purpose = ledger::Purpose::kQbf;
    r.wall_seconds = wall.seconds();
    r.cpu_seconds = ledger::thread_cpu_seconds() - cpu0;
    r.conflicts = iteration_work() - conflicts0;
    r.vars = static_cast<uint32_t>(b_solver.num_vars());
    r.result = qr;
    ledger::append(r);
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    ECO_TELEMETRY_COUNT("qbf.iterations");
    if (deadline.expired() || options.cancel.cancelled()) return result;
    const Timer iter_wall;
    const double iter_cpu0 = ledger_on ? ledger::thread_cpu_seconds() : 0;
    const uint64_t iter_conflicts0 = ledger_on ? iteration_work() : 0;

    // Propose x*.
    budgeted(a_solver);
    const sat::LBool a_verdict = a_solver.solve();
    if (a_verdict.is_undef()) {
      append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kUndef);
      return result;
    }
    if (a_verdict.is_false()) {
      result.status = Qbf2Status::kFalse;
      append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kUnsat);
      return result;
    }
    std::vector<bool> x_star(num_x);
    for (uint32_t i = 0; i < num_x; ++i) x_star[i] = a_solver.model_value(a_enc.lit(acc_x[i]));

    // Check ∃n ¬root(n, x*).
    sat::LitVec assumps;
    assumps.reserve(num_x);
    for (uint32_t i = 0; i < num_x; ++i) assumps.push_back(b_x[i] ^ !x_star[i]);
    budgeted(b_solver);
    const sat::LBool b_verdict = b_solver.solve(assumps);
    if (b_verdict.is_undef()) {
      append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kUndef);
      return result;
    }
    if (b_verdict.is_false()) {
      result.status = Qbf2Status::kTrue;
      result.witness_x = std::move(x_star);
      append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kUnsat);
      return result;
    }
    std::vector<bool> n_star(num_n);
    for (uint32_t i = 0; i < num_n; ++i) n_star[i] = b_solver.model_value(b_n[i]);

    // Refine A with the cofactor root(x, n*).
    std::vector<aig::Lit> pi_map(g.num_pis());
    for (uint32_t i = 0; i < num_x; ++i) pi_map[i] = acc_x[i];
    for (uint32_t i = 0; i < num_n; ++i)
      pi_map[num_x + i] = n_star[i] ? aig::kLitTrue : aig::kLitFalse;
    std::vector<aig::Lit> map(g.num_nodes(), aig::kLitInvalid);
    map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < g.num_pis(); ++i) map[g.pi_node(i)] = pi_map[i];
    const aig::Lit roots[] = {root};
    const aig::Lit cof = aig::transfer(g, acc, roots, map)[0];
    ECO_TELEMETRY_COUNT("qbf.refinements");
    a_solver.add_unit(a_enc.lit(cof));
    if (!a_solver.okay()) {
      result.status = Qbf2Status::kFalse;
      result.moves.push_back(std::move(n_star));
      append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kUnsat);
      return result;
    }
    result.moves.push_back(std::move(n_star));
    append_iteration(iter_wall, iter_cpu0, iter_conflicts0, ledger::QueryResult::kSat);
  }
  return result;
}

}  // namespace eco::qbf
