#include "benchgen/circuits.hpp"

#include <string>

namespace eco::benchgen {

using net::Gate;
using net::GateType;
using net::Network;

namespace {

std::string sig(const std::string& base, int i) { return base + std::to_string(i); }

void gate(Network& net, GateType type, std::string out, std::vector<std::string> ins) {
  net.gates.push_back(Gate{type, std::move(out), std::move(ins), ""});
}

/// Adds a full adder producing sum/carry signals with the given names.
void full_adder(Network& net, const std::string& a, const std::string& b,
                const std::string& cin, const std::string& sum, const std::string& cout,
                const std::string& prefix) {
  const std::string t1 = prefix + "_p";
  const std::string t2 = prefix + "_g";
  const std::string t3 = prefix + "_h";
  gate(net, GateType::kXor, t1, {a, b});
  gate(net, GateType::kXor, sum, {t1, cin});
  gate(net, GateType::kAnd, t2, {a, b});
  gate(net, GateType::kAnd, t3, {t1, cin});
  gate(net, GateType::kOr, cout, {t2, t3});
}

}  // namespace

Network make_adder(int width) {
  Network net;
  net.name = "adder" + std::to_string(width);
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("a", i));
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("b", i));
  net.inputs.push_back("cin");
  std::string carry = "cin";
  for (int i = 0; i < width; ++i) {
    const std::string cout = i + 1 == width ? "cout" : sig("c", i);
    full_adder(net, sig("a", i), sig("b", i), carry, sig("s", i), cout,
               "fa" + std::to_string(i));
    carry = cout;
  }
  for (int i = 0; i < width; ++i) net.outputs.push_back(sig("s", i));
  net.outputs.push_back("cout");
  return net;
}

Network make_multiplier(int width) {
  Network net;
  net.name = "mult" + std::to_string(width);
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("a", i));
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("b", i));
  // Partial products.
  for (int i = 0; i < width; ++i)
    for (int j = 0; j < width; ++j)
      gate(net, GateType::kAnd, "pp" + std::to_string(i) + "_" + std::to_string(j),
           {sig("a", i), sig("b", j)});
  // Row-by-row carry-save style accumulation with ripple rows.
  // acc row 0 = pp0_*.
  std::vector<std::string> acc(static_cast<size_t>(2 * width), "");
  gate(net, GateType::kConst0, "mzero", {});
  for (int k = 0; k < 2 * width; ++k) acc[static_cast<size_t>(k)] = "mzero";
  for (int j = 0; j < width; ++j) acc[static_cast<size_t>(j)] = "pp0_" + std::to_string(j);
  for (int i = 1; i < width; ++i) {
    std::string carry = "mzero";
    for (int j = 0; j < width; ++j) {
      const int k = i + j;
      const std::string prefix = "m" + std::to_string(i) + "_" + std::to_string(j);
      const std::string sum = prefix + "_s";
      const std::string cout = prefix + "_c";
      full_adder(net, acc[static_cast<size_t>(k)],
                 "pp" + std::to_string(i) + "_" + std::to_string(j), carry, sum, cout, prefix);
      acc[static_cast<size_t>(k)] = sum;
      carry = cout;
    }
    // Propagate the final carry into the next accumulator column.
    const int k = i + width;
    const std::string prefix = "mc" + std::to_string(i);
    gate(net, GateType::kXor, prefix + "_s", {acc[static_cast<size_t>(k)], carry});
    gate(net, GateType::kAnd, prefix + "_c", {acc[static_cast<size_t>(k)], carry});
    acc[static_cast<size_t>(k)] = prefix + "_s";
    if (k + 1 < 2 * width) {
      gate(net, GateType::kOr, prefix + "_p",
           {acc[static_cast<size_t>(k + 1)], prefix + "_c"});
      acc[static_cast<size_t>(k + 1)] = prefix + "_p";
    }
  }
  for (int k = 0; k < 2 * width; ++k) {
    const std::string po = sig("p", k);
    gate(net, GateType::kBuf, po, {acc[static_cast<size_t>(k)]});
    net.outputs.push_back(po);
  }
  return net;
}

Network make_alu(int width) {
  Network net;
  net.name = "alu" + std::to_string(width);
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("a", i));
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("b", i));
  net.inputs.push_back("op0");
  net.inputs.push_back("op1");
  gate(net, GateType::kConst0, "azero", {});
  // Ops: 00 add, 01 and, 10 or, 11 xor.
  std::string carry = "azero";
  for (int i = 0; i < width; ++i) {
    const std::string pre = "au" + std::to_string(i);
    full_adder(net, sig("a", i), sig("b", i), carry, pre + "_sum", pre + "_cout", pre);
    carry = pre + "_cout";
    gate(net, GateType::kAnd, pre + "_and", {sig("a", i), sig("b", i)});
    gate(net, GateType::kOr, pre + "_or", {sig("a", i), sig("b", i)});
    gate(net, GateType::kXor, pre + "_xor", {sig("a", i), sig("b", i)});
    // Result mux by (op1, op0).
    gate(net, GateType::kNot, pre + "_nop0", {"op0"});
    gate(net, GateType::kNot, pre + "_nop1", {"op1"});
    gate(net, GateType::kAnd, pre + "_m0", {pre + "_sum", pre + "_nop1", pre + "_nop0"});
    gate(net, GateType::kAnd, pre + "_m1", {pre + "_and", pre + "_nop1", "op0"});
    gate(net, GateType::kAnd, pre + "_m2", {pre + "_or", "op1", pre + "_nop0"});
    gate(net, GateType::kAnd, pre + "_m3", {pre + "_xor", "op1", "op0"});
    gate(net, GateType::kOr, sig("r", i), {pre + "_m0", pre + "_m1", pre + "_m2", pre + "_m3"});
    net.outputs.push_back(sig("r", i));
  }
  gate(net, GateType::kBuf, "carry_out", {carry});
  net.outputs.push_back("carry_out");
  return net;
}

Network make_comparator(int width, int lanes) {
  Network net;
  net.name = "cmp" + std::to_string(width) + "x" + std::to_string(lanes);
  for (int l = 0; l < lanes; ++l)
    for (int i = 0; i < width; ++i) {
      net.inputs.push_back("x" + std::to_string(l) + "_" + std::to_string(i));
      net.inputs.push_back("y" + std::to_string(l) + "_" + std::to_string(i));
    }
  for (int l = 0; l < lanes; ++l) {
    const std::string lp = "lane" + std::to_string(l);
    // Bitwise equality, then AND tree; greater-than prefix chain.
    std::string eq_acc;
    std::string gt_acc;
    for (int i = width - 1; i >= 0; --i) {
      const std::string x = "x" + std::to_string(l) + "_" + std::to_string(i);
      const std::string y = "y" + std::to_string(l) + "_" + std::to_string(i);
      const std::string e = lp + "_eq" + std::to_string(i);
      const std::string g = lp + "_gt" + std::to_string(i);
      gate(net, GateType::kXnor, e, {x, y});
      const std::string ny = lp + "_ny" + std::to_string(i);
      gate(net, GateType::kNot, ny, {y});
      gate(net, GateType::kAnd, g, {x, ny});
      if (eq_acc.empty()) {
        eq_acc = e;
        gt_acc = g;
      } else {
        const std::string ne = lp + "_ea" + std::to_string(i);
        gate(net, GateType::kAnd, ne, {eq_acc, e});
        const std::string t = lp + "_gm" + std::to_string(i);
        gate(net, GateType::kAnd, t, {eq_acc, g});
        const std::string ng = lp + "_ga" + std::to_string(i);
        gate(net, GateType::kOr, ng, {gt_acc, t});
        eq_acc = ne;
        gt_acc = ng;
      }
    }
    gate(net, GateType::kBuf, lp + "_equal", {eq_acc});
    gate(net, GateType::kBuf, lp + "_greater", {gt_acc});
    net.outputs.push_back(lp + "_equal");
    net.outputs.push_back(lp + "_greater");
  }
  return net;
}

Network make_random_logic(int num_inputs, int num_outputs, int num_gates, Rng& rng) {
  Network net;
  net.name = "rand" + std::to_string(num_gates);
  std::vector<std::string> pool;
  for (int i = 0; i < num_inputs; ++i) {
    net.inputs.push_back(sig("i", i));
    pool.push_back(net.inputs.back());
  }
  static constexpr GateType kTypes[] = {GateType::kAnd, GateType::kOr,  GateType::kNand,
                                        GateType::kNor, GateType::kXor, GateType::kXnor,
                                        GateType::kNot};
  for (int g = 0; g < num_gates; ++g) {
    const GateType type = kTypes[rng.below(std::size(kTypes))];
    const int arity = type == GateType::kNot ? 1 : 2 + static_cast<int>(rng.below(2));
    std::vector<std::string> ins;
    for (int a = 0; a < arity; ++a) {
      // Bias toward recent signals to get depth.
      const size_t lo = pool.size() > 24 && rng.chance(2, 3) ? pool.size() - 24 : 0;
      ins.push_back(pool[lo + rng.below(pool.size() - lo)]);
    }
    const std::string out = sig("w", g);
    gate(net, type, out, std::move(ins));
    pool.push_back(out);
  }
  for (int o = 0; o < num_outputs; ++o) {
    const std::string po = sig("z", o);
    gate(net, GateType::kBuf, po,
         {pool[pool.size() - 1 - rng.below(std::min<uint64_t>(pool.size(), 4 * static_cast<uint64_t>(num_outputs)))]});
    net.outputs.push_back(po);
  }
  return net;
}

Network make_parity_masks(int width, int masks, Rng& rng) {
  Network net;
  net.name = "parity" + std::to_string(width) + "x" + std::to_string(masks);
  for (int i = 0; i < width; ++i) net.inputs.push_back(sig("d", i));
  for (int m = 0; m < masks; ++m) {
    const std::string mp = "mask" + std::to_string(m);
    std::string acc;
    int used = 0;
    for (int i = 0; i < width; ++i) {
      if (!rng.chance(1, 2)) continue;
      const std::string masked = mp + "_m" + std::to_string(i);
      // AND with a neighbour to add non-linearity.
      gate(net, GateType::kAnd, masked, {sig("d", i), sig("d", (i + 1) % width)});
      if (acc.empty()) {
        acc = masked;
      } else {
        const std::string nx = mp + "_x" + std::to_string(i);
        gate(net, GateType::kXor, nx, {acc, masked});
        acc = nx;
      }
      ++used;
    }
    const std::string po = mp + "_p";
    if (used == 0) {
      gate(net, GateType::kConst0, po, {});
    } else {
      gate(net, GateType::kBuf, po, {acc});
    }
    net.outputs.push_back(po);
  }
  return net;
}

}  // namespace eco::benchgen
