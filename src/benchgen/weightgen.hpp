/// \file weightgen.hpp
/// \brief The eight contest weight distributions T1–T8 (paper §4.1).
#pragma once

#include "net/network.hpp"
#include "util/rng.hpp"

namespace eco::benchgen {

enum class WeightType {
  kT1,  ///< distance-aware A: larger closer to PIs, in parts of the circuit
  kT2,  ///< distance-aware B: larger farther from PIs, in parts
  kT3,  ///< path-aware: nodes on some PI->PO paths weigh more
  kT4,  ///< locality-aware: some regions weigh more
  kT5,  ///< T1 + T3
  kT6,  ///< T2 + T3
  kT7,  ///< T1 + T4
  kT8,  ///< highly mixed, undulating
};

const char* weight_type_name(WeightType type) noexcept;

/// Assigns a weight to every signal of \p impl following distribution
/// \p type.
net::WeightMap make_weights(const net::Network& impl, WeightType type, Rng& rng);

}  // namespace eco::benchgen
