#include "benchgen/suite.hpp"

#include <stdexcept>

#include "benchgen/circuits.hpp"

namespace eco::benchgen {

namespace {

/// Per-unit recipe mirroring the spread of Table 1 (circuit family, size,
/// target count, weight type).
struct UnitRecipe {
  enum class Family { kAdder, kMult, kAlu, kCmp, kRandom, kParity };
  Family family;
  int p0 = 0, p1 = 0, p2 = 0;  ///< family-specific size parameters
  int targets = 1;
  WeightType wtype = WeightType::kT1;
};

const UnitRecipe kRecipes[kNumUnits] = {
    // unit 1: tiny sanity instance (Table 1 row 1 is 6 gates).
    {UnitRecipe::Family::kAdder, 1, 0, 0, 1, WeightType::kT1},
    // unit 2: mid-size control logic, single target.
    {UnitRecipe::Family::kCmp, 8, 10, 0, 1, WeightType::kT2},
    // unit 3: wide comparator bank, single target.
    {UnitRecipe::Family::kCmp, 16, 14, 0, 1, WeightType::kT3},
    // unit 4: small random logic.
    {UnitRecipe::Family::kRandom, 11, 6, 60, 1, WeightType::kT4},
    // unit 5: large multiplier, two targets.
    {UnitRecipe::Family::kMult, 12, 0, 0, 2, WeightType::kT5},
    // unit 6: large multiplier, two targets (structurally hard in Table 1).
    {UnitRecipe::Family::kMult, 16, 0, 0, 2, WeightType::kT6},
    // unit 7: ALU, single target.
    {UnitRecipe::Family::kAlu, 24, 0, 0, 1, WeightType::kT7},
    // unit 8: random logic, single target.
    {UnitRecipe::Family::kRandom, 64, 32, 2400, 1, WeightType::kT8},
    // unit 9: parity masks, four targets.
    {UnitRecipe::Family::kParity, 48, 40, 0, 4, WeightType::kT1},
    // unit 10: small but deep random logic, two targets.
    {UnitRecipe::Family::kRandom, 32, 24, 1500, 2, WeightType::kT2},
    // unit 11: eight targets (structural in Table 1).
    {UnitRecipe::Family::kRandom, 48, 50, 2000, 8, WeightType::kT3},
    // unit 12: big cone feeding few outputs.
    {UnitRecipe::Family::kRandom, 46, 27, 3000, 1, WeightType::kT4},
    // unit 13: small dense logic, single target.
    {UnitRecipe::Family::kRandom, 25, 16, 350, 1, WeightType::kT5},
    // unit 14: twelve targets on a small circuit (Table 1 row 14).
    {UnitRecipe::Family::kRandom, 17, 15, 450, 12, WeightType::kT6},
    // unit 15: comparator lanes, single target.
    {UnitRecipe::Family::kCmp, 12, 8, 0, 1, WeightType::kT7},
    // unit 16: adder with wide interface, two targets.
    {UnitRecipe::Family::kAdder, 100, 0, 0, 2, WeightType::kT8},
    // unit 17: ALU, eight targets.
    {UnitRecipe::Family::kAlu, 16, 0, 0, 8, WeightType::kT1},
    // unit 18: random logic, single target.
    {UnitRecipe::Family::kRandom, 96, 40, 3200, 1, WeightType::kT2},
    // unit 19: large multiplier, four targets (structural in Table 1).
    {UnitRecipe::Family::kMult, 14, 0, 0, 4, WeightType::kT3},
    // unit 20: widest interface, four targets.
    {UnitRecipe::Family::kParity, 512, 96, 0, 4, WeightType::kT4},
};

/// Multiplies the recipe's size parameters so the unit's gate count grows
/// roughly linearly in \p scale. Widths scale directly for the linear-cost
/// families; the array multiplier is quadratic in its width, so it takes
/// ceil(sqrt(scale)); random logic scales its gate target linearly and its
/// interface by ~sqrt so the DAG gets deeper as well as wider.
UnitRecipe scale_recipe(UnitRecipe r, int scale) {
  if (scale <= 1) return r;
  int root = 1;
  while (root * root < scale) ++root;  // ceil(sqrt(scale))
  using Family = UnitRecipe::Family;
  switch (r.family) {
    case Family::kAdder:
    case Family::kAlu:
      r.p0 *= scale;
      break;
    case Family::kMult:
      r.p0 *= root;
      break;
    case Family::kCmp:
      r.p0 *= root;
      r.p1 *= root;
      break;
    case Family::kRandom:
      r.p0 *= root;
      r.p1 *= root;
      r.p2 *= scale;
      break;
    case Family::kParity:
      r.p0 *= root;
      r.p1 *= root;
      break;
  }
  return r;
}

net::Network build_base(const UnitRecipe& recipe, Rng& rng) {
  using Family = UnitRecipe::Family;
  switch (recipe.family) {
    case Family::kAdder: return make_adder(recipe.p0);
    case Family::kMult: return make_multiplier(recipe.p0);
    case Family::kAlu: return make_alu(recipe.p0);
    case Family::kCmp: return make_comparator(recipe.p0, recipe.p1);
    case Family::kRandom: return make_random_logic(recipe.p0, recipe.p1, recipe.p2, rng);
    case Family::kParity: return make_parity_masks(recipe.p0, recipe.p1, rng);
  }
  throw std::logic_error("unknown family");
}

}  // namespace

EcoUnit make_unit(int index, uint64_t seed, int scale) {
  if (index < 0 || index >= kNumUnits)
    throw std::out_of_range("make_unit: index must be in [0, 20)");
  if (scale < 1) throw std::out_of_range("make_unit: scale must be >= 1");
  const UnitRecipe recipe = scale_recipe(kRecipes[index], scale);
  Rng rng(seed * 1000003ULL + static_cast<uint64_t>(index) * 7919ULL + 1);

  EcoUnit unit;
  unit.name = "unit" + std::to_string(index + 1);
  if (scale > 1) unit.name += "@x" + std::to_string(scale);
  unit.num_targets = recipe.targets;
  unit.weight_type = recipe.wtype;

  const net::Network base = build_base(recipe, rng);
  EcoInstance instance = make_eco_instance(base, recipe.targets, rng);
  unit.weights = make_weights(instance.impl, recipe.wtype, rng);
  unit.impl = std::move(instance.impl);
  unit.spec = std::move(instance.spec);
  return unit;
}

std::vector<EcoUnit> make_contest_suite(uint64_t seed, int scale) {
  std::vector<EcoUnit> suite;
  suite.reserve(kNumUnits);
  for (int i = 0; i < kNumUnits; ++i) suite.push_back(make_unit(i, seed, scale));
  return suite;
}

}  // namespace eco::benchgen
