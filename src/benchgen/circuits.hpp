/// \file circuits.hpp
/// \brief Parameterized gate-level circuit generators.
///
/// These stand in for the ISCAS-85/89, ITC-99, IWLS-2005, OpenCore and
/// LGSynth-93 designs underlying the ICCAD'17 contest suite (paper §4.1, see
/// DESIGN.md §3 for the substitution rationale). Each generator produces a
/// well-formed combinational Network with deterministic structure from its
/// parameters, covering arithmetic, control, and unstructured random logic.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace eco::benchgen {

/// Ripple-carry adder: 2*width inputs + cin, width+1 outputs.
net::Network make_adder(int width);

/// Array multiplier: 2*width inputs, 2*width outputs.
net::Network make_multiplier(int width);

/// Small ALU: two operands, 2 op-select bits; ops = add, and, or, xor.
net::Network make_alu(int width);

/// Priority-encoded comparator bank: equality/greater trees with shared
/// prefixes (control-flavoured logic).
net::Network make_comparator(int width, int lanes);

/// Random DAG of mixed primitives; roughly \p num_gates gates over
/// \p num_inputs inputs with \p num_outputs outputs.
net::Network make_random_logic(int num_inputs, int num_outputs, int num_gates, Rng& rng);

/// Parity/ECC-style network: XOR trees with AND-mask layers.
net::Network make_parity_masks(int width, int masks, Rng& rng);

}  // namespace eco::benchgen
