/// \file mutate.hpp
/// \brief ECO instance creation by specification mutation.
///
/// An instance is derived from a base netlist B the way the contest
/// instances were derived from real designs:
///  - the *specification* is B with the local functions of k chosen signals
///    changed (gate retyped and/or rewired) and its internal wires renamed —
///    no structural correspondence with the implementation is kept;
///  - the *implementation* is B with those k signals cut loose: their
///    driving gates are removed and the signals become primary inputs (the
///    contest's rectification-point convention).
///
/// By construction the instance is feasible: driving each cut signal with
/// its new specification function rectifies the implementation.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace eco::benchgen {

struct EcoInstance {
  net::Network impl;  ///< old implementation; targets are extra inputs
  net::Network spec;  ///< new specification
  std::vector<std::string> target_names;
};

/// Creates an instance with \p num_targets rectification points.
/// Throws std::runtime_error if the base netlist has too few eligible gates.
EcoInstance make_eco_instance(const net::Network& base, int num_targets, Rng& rng);

}  // namespace eco::benchgen
