#include "benchgen/mutate.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "aig/sim.hpp"
#include "net/elaborate.hpp"

namespace eco::benchgen {

using net::Gate;
using net::GateType;
using net::Network;

namespace {

/// Signals (transitively) reaching a primary output.
std::unordered_set<std::string> observable_signals(const Network& net) {
  std::unordered_map<std::string, const Gate*> driver;
  for (const auto& g : net.gates) driver.emplace(g.output, &g);
  std::unordered_set<std::string> seen;
  std::vector<std::string> stack(net.outputs.begin(), net.outputs.end());
  while (!stack.empty()) {
    const std::string s = std::move(stack.back());
    stack.pop_back();
    if (!seen.insert(s).second) continue;
    const auto it = driver.find(s);
    if (it == driver.end()) continue;
    for (const auto& in : it->second->inputs) stack.push_back(in);
  }
  return seen;
}

/// Signals in the transitive fanout of \p seed (including itself).
std::unordered_set<std::string> fanout_signals(const Network& net, const std::string& seed) {
  std::unordered_set<std::string> tfo{seed};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& g : net.gates) {
      if (tfo.count(g.output)) continue;
      for (const auto& in : g.inputs)
        if (tfo.count(in)) {
          tfo.insert(g.output);
          changed = true;
          break;
        }
    }
  }
  return tfo;
}

GateType mutate_type(GateType type, Rng& rng) {
  static constexpr GateType kBinary[] = {GateType::kAnd, GateType::kOr,  GateType::kNand,
                                         GateType::kNor, GateType::kXor, GateType::kXnor};
  if (type == GateType::kBuf) return GateType::kNot;
  if (type == GateType::kNot) return GateType::kBuf;
  if (type == GateType::kConst0) return GateType::kConst1;
  if (type == GateType::kConst1) return GateType::kConst0;
  for (;;) {
    const GateType next = kBinary[rng.below(std::size(kBinary))];
    if (next != type) return next;
  }
}

/// Applies one random local mutation to each chosen gate of a copy of
/// \p base (the "specification change").
Network mutate_gates(const Network& base, const std::vector<size_t>& chosen, Rng& rng) {
  Network spec = base;
  for (const size_t gi : chosen) {
    Gate& g = spec.gates[gi];
    const uint64_t kind = rng.below(3);
    if (kind == 0 || g.inputs.size() < 2) {
      g.type = mutate_type(g.type, rng);
    } else if (kind == 1) {
      // Rewire one input to a random signal outside this gate's fanout.
      // The fanout is computed on the *current* spec so that successive
      // rewires can never close a combinational cycle: the edge that would
      // complete a cycle is exactly the one this check rejects.
      const auto tfo = fanout_signals(spec, g.output);
      std::vector<std::string> candidates;
      for (const auto& in : spec.inputs)
        if (!tfo.count(in)) candidates.push_back(in);
      for (const auto& other : spec.gates)
        if (!tfo.count(other.output)) candidates.push_back(other.output);
      if (!candidates.empty())
        g.inputs[rng.below(g.inputs.size())] = candidates[rng.below(candidates.size())];
      else
        g.type = mutate_type(g.type, rng);
    } else {
      // Both: retype and swap two inputs (swap matters for none of the
      // symmetric primitives, so retype carries the change).
      g.type = mutate_type(g.type, rng);
      std::swap(g.inputs[0], g.inputs[g.inputs.size() - 1]);
    }
  }
  return spec;
}

}  // namespace

EcoInstance make_eco_instance(const Network& base, int num_targets, Rng& rng) {
  base.validate();
  const auto observable = observable_signals(base);

  // Eligible rectification points: observable internal gates. Real ECOs are
  // local changes, so prefer gates whose fanout cone is small — this also
  // keeps the final verification miter mostly shared between the netlists.
  std::vector<size_t> eligible;
  {
    // The cap shrinks with the target count: many-point ECOs whose fanout
    // cones overlap would make the universal-quantification expansion of
    // the miter (paper §3.1) blow up exponentially, which real multi-point
    // rectifications do not do. Computing exact fanout cones for every gate
    // is quadratic, so only a random sample of observable gates is
    // examined — far more than the handful of targets ever needed.
    const size_t tfo_cap = std::max<size_t>(
        8, base.gates.size() / (8 * static_cast<size_t>(std::max(1, num_targets))));
    std::vector<size_t> observable_gates;
    for (size_t i = 0; i < base.gates.size(); ++i)
      if (observable.count(base.gates[i].output)) observable_gates.push_back(i);
    std::vector<size_t> sample = observable_gates;
    const size_t kSampleCap = 192;
    if (sample.size() > kSampleCap) {
      for (size_t i = 0; i < kSampleCap; ++i)
        std::swap(sample[i], sample[i + rng.below(sample.size() - i)]);
      sample.resize(kSampleCap);
    }
    for (const size_t i : sample)
      if (fanout_signals(base, base.gates[i].output).size() <= tfo_cap)
        eligible.push_back(i);
    if (static_cast<int>(eligible.size()) < num_targets) eligible = observable_gates;
  }
  if (static_cast<int>(eligible.size()) < num_targets)
    throw std::runtime_error("make_eco_instance: not enough observable gates");

  EcoInstance out;
  std::vector<size_t> chosen;
  Network spec;

  // Draw target sets until the mutated spec is observably different from
  // the base netlist (checked by random simulation); an unobservable
  // mutation would yield a degenerate instance whose patches are constants.
  const auto base_elab = net::elaborate(base);
  for (int attempt = 0; attempt < 8; ++attempt) {
    chosen.clear();
    while (static_cast<int>(chosen.size()) < num_targets) {
      const size_t pick = eligible[rng.below(eligible.size())];
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) chosen.push_back(pick);
    }
    std::sort(chosen.begin(), chosen.end());
    spec = mutate_gates(base, chosen, rng);
    const auto spec_elab = net::elaborate(spec);
    Rng sim_rng(0xB0B0 + static_cast<uint64_t>(attempt));
    bool differs = false;
    for (int round = 0; round < 4 && !differs; ++round) {
      const auto pi_words = aig::random_pi_words(base_elab.aig, sim_rng);
      const auto base_words = aig::simulate(base_elab.aig, pi_words);
      const auto spec_words = aig::simulate(spec_elab.aig, pi_words);
      for (uint32_t po = 0; po < base_elab.aig.num_pos() && !differs; ++po)
        differs = aig::sim_value(base_words, base_elab.aig.po_lit(po)) !=
                  aig::sim_value(spec_words, spec_elab.aig.po_lit(po));
    }
    if (differs) break;
  }

  // Rename internal wires so the spec shares no internal names with the
  // implementation (the paper stresses no structural similarity is assumed).
  {
    std::unordered_set<std::string> keep(spec.inputs.begin(), spec.inputs.end());
    keep.insert(spec.outputs.begin(), spec.outputs.end());
    std::unordered_map<std::string, std::string> rename;
    int counter = 0;
    for (const auto& g : spec.gates)
      if (!keep.count(g.output))
        rename.emplace(g.output, "sp_" + std::to_string(counter++));
    for (auto& g : spec.gates) {
      if (const auto it = rename.find(g.output); it != rename.end()) g.output = it->second;
      for (auto& in : g.inputs)
        if (const auto it = rename.find(in); it != rename.end()) in = it->second;
    }
  }
  spec.name = base.name + "_spec";
  spec.validate();

  // ---- Implementation: cut the chosen signals into inputs. --------------
  Network impl = base;
  impl.name = base.name + "_impl";
  std::vector<size_t> reversed(chosen.rbegin(), chosen.rend());
  for (const size_t gi : reversed) {
    out.target_names.push_back(impl.gates[gi].output);
    impl.inputs.push_back(impl.gates[gi].output);
    impl.gates.erase(impl.gates.begin() + static_cast<long>(gi));
  }
  std::reverse(out.target_names.begin(), out.target_names.end());
  impl.validate();

  out.impl = std::move(impl);
  out.spec = std::move(spec);
  return out;
}

}  // namespace eco::benchgen
