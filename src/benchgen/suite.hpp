/// \file suite.hpp
/// \brief The 20-unit benchmark suite standing in for the ICCAD'17 contest
/// benchmarks (paper §4.1, Table 1; substitution documented in DESIGN.md).
///
/// Units span the suite's shape: sizes from a handful of gates to tens of
/// thousands, 1–12 rectification targets, and the eight weight
/// distributions T1–T8. Everything is deterministic from the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchgen/mutate.hpp"
#include "benchgen/weightgen.hpp"
#include "net/network.hpp"

namespace eco::benchgen {

struct EcoUnit {
  std::string name;
  net::Network impl;
  net::Network spec;
  net::WeightMap weights;
  int num_targets = 0;
  WeightType weight_type = WeightType::kT1;
};

/// Builds unit \p index (0-based, 0..19). \p scale multiplies the recipe's
/// size parameters (gate counts grow roughly linearly in \p scale, ~10× at
/// scale 10): datapath widths for the arithmetic families, gate/input counts
/// for random logic. Scaled units carry an "@xN" name suffix; scale 1 is
/// bit-identical to the historical suite. Targets are cut from the larger
/// netlist, so fanout cones widen and rewires reach proportionally farther.
EcoUnit make_unit(int index, uint64_t seed = 20170912, int scale = 1);

/// Builds all 20 units.
std::vector<EcoUnit> make_contest_suite(uint64_t seed = 20170912, int scale = 1);

/// Number of units in the suite.
constexpr int kNumUnits = 20;

}  // namespace eco::benchgen
