#include "benchgen/weightgen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace eco::benchgen {

using net::Network;
using net::WeightMap;

const char* weight_type_name(WeightType type) noexcept {
  switch (type) {
    case WeightType::kT1: return "T1";
    case WeightType::kT2: return "T2";
    case WeightType::kT3: return "T3";
    case WeightType::kT4: return "T4";
    case WeightType::kT5: return "T5";
    case WeightType::kT6: return "T6";
    case WeightType::kT7: return "T7";
    case WeightType::kT8: return "T8";
  }
  return "?";
}

namespace {

/// Logic depth of each signal (inputs at 0), computed by fixpoint since the
/// gate list is not necessarily topological.
std::unordered_map<std::string, int> signal_depths(const Network& net) {
  std::unordered_map<std::string, int> depth;
  for (const auto& in : net.inputs) depth.emplace(in, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& g : net.gates) {
      int d = 0;
      bool ready = true;
      for (const auto& in : g.inputs) {
        const auto it = depth.find(in);
        if (it == depth.end()) {
          ready = false;
          break;
        }
        d = std::max(d, it->second);
      }
      if (!ready) continue;
      const int nd = d + 1;
      const auto it = depth.find(g.output);
      if (it == depth.end() || it->second != nd) {
        depth[g.output] = nd;
        changed = true;
      }
    }
  }
  return depth;
}

/// Chooses "parts of the circuit": a random subset of signals grown from a
/// few seeds through the fanout relation.
std::unordered_set<std::string> pick_parts(const Network& net, Rng& rng, double fraction) {
  const auto signals = net.all_signals();
  std::unordered_set<std::string> region;
  if (signals.empty()) return region;
  const size_t want = std::max<size_t>(1, static_cast<size_t>(fraction * signals.size()));
  // Fanout adjacency.
  std::unordered_map<std::string, std::vector<std::string>> fanout;
  for (const auto& g : net.gates)
    for (const auto& in : g.inputs) fanout[in].push_back(g.output);
  std::vector<std::string> frontier;
  while (region.size() < want) {
    if (frontier.empty()) frontier.push_back(signals[rng.below(signals.size())]);
    const std::string s = std::move(frontier.back());
    frontier.pop_back();
    if (!region.insert(s).second) continue;
    const auto it = fanout.find(s);
    if (it != fanout.end())
      for (const auto& next : it->second)
        if (rng.chance(2, 3)) frontier.push_back(next);
  }
  return region;
}

/// Random PI -> PO paths (as signal sets), walking drivers backwards.
std::unordered_set<std::string> pick_paths(const Network& net, Rng& rng, int num_paths) {
  std::unordered_map<std::string, const net::Gate*> driver;
  for (const auto& g : net.gates) driver.emplace(g.output, &g);
  std::unordered_set<std::string> on_path;
  for (int p = 0; p < num_paths; ++p) {
    if (net.outputs.empty()) break;
    std::string cur = net.outputs[rng.below(net.outputs.size())];
    while (true) {
      on_path.insert(cur);
      const auto it = driver.find(cur);
      if (it == driver.end() || it->second->inputs.empty()) break;
      cur = it->second->inputs[rng.below(it->second->inputs.size())];
    }
  }
  return on_path;
}

int64_t jitter(Rng& rng, int64_t base, int64_t spread) {
  return std::max<int64_t>(0, base + rng.range(-spread, spread));
}

}  // namespace

WeightMap make_weights(const Network& impl, WeightType type, Rng& rng) {
  WeightMap wm;
  const auto depth = signal_depths(impl);
  int max_depth = 1;
  for (const auto& [name, d] : depth) max_depth = std::max(max_depth, d);

  const auto parts = pick_parts(impl, rng, 0.4);
  const auto paths = pick_paths(impl, rng, std::max<int>(2, static_cast<int>(impl.outputs.size() / 4)));
  const auto region = pick_parts(impl, rng, 0.25);
  const double freq = 0.5 + rng.uniform() * 2.0;
  const double phase = rng.uniform() * 6.28318;

  for (const auto& name : impl.all_signals()) {
    const int d = depth.count(name) ? depth.at(name) : 0;
    const double rel = static_cast<double>(d) / max_depth;
    int64_t w = 1 + static_cast<int64_t>(rng.below(3));  // background 1..3
    auto add_t1 = [&] {
      if (parts.count(name)) w += jitter(rng, static_cast<int64_t>(40 * (1.0 - rel)), 4);
    };
    auto add_t2 = [&] {
      if (parts.count(name)) w += jitter(rng, static_cast<int64_t>(40 * rel), 4);
    };
    auto add_t3 = [&] {
      if (paths.count(name)) w += jitter(rng, 30, 6);
    };
    auto add_t4 = [&] {
      if (region.count(name)) w += jitter(rng, 35, 8);
    };
    switch (type) {
      case WeightType::kT1: add_t1(); break;
      case WeightType::kT2: add_t2(); break;
      case WeightType::kT3: add_t3(); break;
      case WeightType::kT4: add_t4(); break;
      case WeightType::kT5: add_t1(); add_t3(); break;
      case WeightType::kT6: add_t2(); add_t3(); break;
      case WeightType::kT7: add_t1(); add_t4(); break;
      case WeightType::kT8: {
        const double wave = (1.0 + std::sin(d * freq + phase)) / 2.0;
        w += jitter(rng, static_cast<int64_t>(50 * wave), 10);
        if (paths.count(name)) w += static_cast<int64_t>(rng.below(20));
        break;
      }
    }
    wm.weights.emplace(name, w);
  }
  return wm;
}

}  // namespace eco::benchgen
