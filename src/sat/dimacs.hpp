/// \file dimacs.hpp
/// \brief DIMACS CNF reading/writing, used by tests and debugging tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace eco::sat {

/// A CNF held as a plain clause list (variables are 0-based internally).
struct Cnf {
  int num_vars = 0;
  std::vector<LitVec> clauses;
};

/// Parses DIMACS text. Throws std::runtime_error on malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);

/// Writes DIMACS text.
void write_dimacs(std::ostream& out, const Cnf& cnf);

/// Loads all clauses of \p cnf into \p solver, creating variables as needed.
/// Returns false if the solver became UNSAT while loading.
bool load_into(Solver& solver, const Cnf& cnf);

}  // namespace eco::sat
