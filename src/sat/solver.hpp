/// \file solver.hpp
/// \brief A from-scratch CDCL SAT solver in the MiniSat tradition.
///
/// The solver implements the features the ECO engine depends on:
///  - incremental clause addition across solve calls,
///  - solving under assumptions,
///  - extraction of the final conflict over assumptions (``analyze_final``),
///    which the paper's baseline configuration uses for support computation,
///  - conflict and propagation budgets so the engine can fall back to the
///    structural patch path on timeout (paper §3.2, §3.6).
///
/// Algorithmically it is a standard CDCL solver: two-watched-literal
/// propagation, VSIDS decision heuristic with an indexed heap, phase saving,
/// Luby restarts, first-UIP conflict analysis with recursive clause
/// minimization, and activity/LBD-driven learnt-database reduction.
///
/// Propagation uses a two-tier watcher scheme (the MiniSat -> Glucose
/// refinement): **binary clauses** live in dedicated watch lists whose
/// entries store the implied literal inline, so propagating a binary chain
/// touches no clause-arena memory at all — one contiguous scan enqueues or
/// conflicts directly. **Longer clauses** use the classic blocker-checked
/// watcher pair with arena access only when the blocker is unsatisfied.
/// Tseitin-encoded circuit CNF is mostly binary/ternary, so every SAT call
/// in support/satprune/patchfunc/cegarmin/qbf/cec benefits. The one
/// consequence visible elsewhere: a binary reason clause may have its
/// implied literal at index 1, so conflict analysis normalizes lazily
/// (see `reason_view`).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "util/timer.hpp"

namespace eco::sat {

/// Aggregate solver statistics, readable at any time.
struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnts_literals = 0;
  uint64_t db_reductions = 0;
  uint64_t solves = 0;
};

/// CDCL SAT solver.
class Solver {
 public:
  Solver();
  /// Rolls this solver's statistics into the process-wide telemetry totals
  /// (util/telemetry.hpp), so snapshots cover every solver ever created.
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- Problem construction -------------------------------------------

  /// Creates a fresh variable and returns its index.
  Var new_var(bool decision = true, bool default_polarity = false);

  /// Number of variables created so far.
  int num_vars() const noexcept { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the solver became provably UNSAT
  /// (empty clause or top-level conflict). Duplicate/true literals handled.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// True while the clause database is not known to be contradictory.
  bool okay() const noexcept { return ok_; }

  // ---- Solving ---------------------------------------------------------

  /// Solves under the given assumptions.
  /// \returns kTrue (SAT), kFalse (UNSAT), or kUndef if a budget ran out.
  LBool solve(std::span<const Lit> assumptions = {});
  LBool solve(std::initializer_list<Lit> assumptions) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model value of a literal after a kTrue result. Unassigned model
  /// variables (eliminated by simplification) default to false.
  bool model_value(Lit l) const;
  bool model_value(Var v) const { return model_value(mk_lit(v)); }

  /// After a kFalse result under assumptions: the subset of the assumption
  /// literals that the proof actually used (the "final conflict" core).
  /// Literals appear in their assumed polarity.
  const LitVec& core() const noexcept { return core_; }

  /// True if the assumption literal \p l is in the last core.
  bool in_core(Lit l) const;

  // ---- Budgets ---------------------------------------------------------

  /// Limits the number of conflicts for subsequent solve() calls.
  /// Zero or negative clears the budget.
  void set_conflict_budget(int64_t conflicts) noexcept { conflict_budget_ = conflicts; }

  /// Limits the number of propagations for subsequent solve() calls.
  void set_propagation_budget(int64_t props) noexcept { propagation_budget_ = props; }

  /// Sets an absolute wall-clock deadline checked during search; solve()
  /// returns kUndef once it expires. Persists across solve() calls until
  /// replaced. An unlimited Deadline{} clears it.
  void set_deadline(const Deadline& deadline) noexcept {
    deadline_ = deadline;
    deadline_expired_ = false;
    deadline_check_countdown_ = 0;
  }

  /// Clears the conflict/propagation budgets (not the deadline).
  void clear_budgets() noexcept {
    conflict_budget_ = -1;
    propagation_budget_ = -1;
  }

  const SolverStats& stats() const noexcept { return stats_; }

  /// Sets the preferred phase used when the variable is picked as decision.
  void set_polarity(Var v, bool negated_first);

  /// Top-level (decision level 0) value of a variable, kUndef if free.
  LBool fixed_value(Var v) const;

 private:
  // -- clause arena -----------------------------------------------------
  // Layout per clause: [header][lit0][lit1]...
  // header: bits 0..1 flags (learnt), bits 2..31 size. Learnt clauses carry
  // an extra trailing word with activity (float) and one with LBD.
  struct Header {
    uint32_t learnt : 1;
    uint32_t reloced : 1;
    uint32_t size : 30;
  };

  class ClauseRefView {
   public:
    ClauseRefView(std::vector<uint32_t>& mem, CRef ref) noexcept : mem_(&mem), ref_(ref) {}
    Header& header() noexcept { return *reinterpret_cast<Header*>(&(*mem_)[ref_]); }
    uint32_t size() noexcept { return header().size; }
    bool learnt() noexcept { return header().learnt != 0; }
    Lit& operator[](uint32_t i) noexcept {
      return *reinterpret_cast<Lit*>(&(*mem_)[ref_ + 1 + i]);
    }
    float& activity() noexcept {
      return *reinterpret_cast<float*>(&(*mem_)[ref_ + 1 + size()]);
    }
    uint32_t& lbd() noexcept { return (*mem_)[ref_ + 2 + size()]; }

   private:
    std::vector<uint32_t>* mem_;
    CRef ref_;
  };

  ClauseRefView clause(CRef ref) noexcept { return ClauseRefView(arena_, ref); }

  CRef alloc_clause(std::span<const Lit> lits, bool learnt);

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  /// Watcher for a binary clause: the implied literal is stored inline, so
  /// propagation never dereferences the arena. \c cref is kept only as the
  /// reason / conflict handle for analysis.
  struct BinWatcher {
    Lit other;
    CRef cref;
  };

  struct VarData {
    CRef reason = kCRefUndef;
    int level = 0;
  };

  // -- VSIDS heap --------------------------------------------------------
  class VarHeap {
   public:
    void grow(int n) { index_.resize(static_cast<size_t>(n), -1); }
    bool contains(Var v) const { return index_[static_cast<size_t>(v)] >= 0; }
    bool empty() const { return heap_.empty(); }
    void insert(Var v, const std::vector<double>& act);
    void update(Var v, const std::vector<double>& act);
    Var pop(const std::vector<double>& act);

   private:
    void sift_up(size_t i, const std::vector<double>& act);
    void sift_down(size_t i, const std::vector<double>& act);
    std::vector<Var> heap_;
    std::vector<int32_t> index_;
  };

  // -- core CDCL ---------------------------------------------------------
  LBool value(Lit l) const noexcept {
    return LBool(static_cast<uint8_t>(assigns_[static_cast<size_t>(l.var())].raw())) ^ l.sign();
  }
  LBool value(Var v) const noexcept { return assigns_[static_cast<size_t>(v)]; }
  int level(Var v) const noexcept { return vardata_[static_cast<size_t>(v)].level; }
  CRef reason(Var v) const noexcept { return vardata_[static_cast<size_t>(v)].reason; }
  int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(CRef ref);
  void detach_clause(CRef ref);
  void remove_clause(CRef ref);
  bool satisfied(CRef ref) noexcept;

  /// The reason clause of \p v with the invariant "implied literal first"
  /// restored. Long-clause propagation maintains it eagerly; binary
  /// propagation skips the arena write on the hot path, so the swap happens
  /// lazily here, only when analysis actually reads the reason.
  ClauseRefView reason_view(Var v) noexcept;

  void unchecked_enqueue(Lit l, CRef from = kCRefUndef);
  CRef propagate();
  void cancel_until(int target_level);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  void analyze(CRef confl, LitVec& out_learnt, int& out_btlevel, uint32_t& out_lbd);
  bool lit_redundant(Lit l, uint32_t abstract_levels);
  void analyze_final(Lit p, LitVec& out_core);

  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ /= kVarDecay; }
  void cla_bump_activity(ClauseRefView c);
  void cla_decay_activity() { cla_inc_ /= kClaDecay; }

  void reduce_db();
  void maybe_garbage_collect();
  LBool search(int64_t conflicts_before_restart);
  bool within_budget() const noexcept;

  uint32_t compute_lbd(std::span<const Lit> lits);

  static double luby(double y, int i);

  // -- data ---------------------------------------------------------------
  static constexpr double kVarDecay = 0.95;
  static constexpr double kClaDecay = 0.999;

  std::vector<uint32_t> arena_;
  std::vector<CRef> clauses_;
  std::vector<CRef> learnts_;

  std::vector<std::vector<Watcher>> watches_;        // size > 2 clauses, by lit raw
  std::vector<std::vector<BinWatcher>> watches_bin_;  // binary clauses, by lit raw
  std::vector<LBool> assigns_;
  std::vector<uint8_t> polarity_;  // saved phase: 1 == assign false first
  std::vector<uint8_t> decision_;
  std::vector<VarData> vardata_;
  std::vector<double> activity_;
  VarHeap order_heap_;

  LitVec trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  LitVec assumptions_;
  LitVec core_;
  std::vector<uint8_t> in_core_mark_;  // by var
  std::vector<LBool> model_;
  size_t wasted_ = 0;

  std::vector<uint8_t> seen_;
  LitVec analyze_toclear_;
  LitVec analyze_stack_;
  std::vector<int> lbd_seen_;
  int lbd_stamp_ = 0;

  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  bool ok_ = true;
  int64_t conflict_budget_ = -1;
  int64_t propagation_budget_ = -1;
  Deadline deadline_{};
  mutable bool deadline_expired_ = false;
  mutable uint32_t deadline_check_countdown_ = 0;
  uint64_t conflicts_at_solve_start_ = 0;
  uint64_t propagations_at_solve_start_ = 0;

  double max_learnts_ = 0;
  double learnt_size_adjust_confl_ = 100;
  int learnt_size_adjust_cnt_ = 100;

  SolverStats stats_;
};

}  // namespace eco::sat
