/// \file solver.hpp
/// \brief A from-scratch CDCL SAT solver in the MiniSat tradition.
///
/// The solver implements the features the ECO engine depends on:
///  - incremental clause addition across solve calls,
///  - solving under assumptions,
///  - extraction of the final conflict over assumptions (``analyze_final``),
///    which the paper's baseline configuration uses for support computation,
///  - conflict and propagation budgets so the engine can fall back to the
///    structural patch path on timeout (paper §3.2, §3.6).
///
/// Algorithmically it is a standard CDCL solver: two-watched-literal
/// propagation, VSIDS decision heuristic with an indexed heap, phase saving,
/// restarts (Luby or glucose-style EMA, see SolverOptions), first-UIP
/// conflict analysis with recursive clause minimization, and a three-tier
/// learnt-clause database (Chanseok-Oh style).
///
/// Propagation uses a two-tier watcher scheme (the MiniSat -> Glucose
/// refinement): **binary clauses** live in dedicated watch lists whose
/// entries store the implied literal inline, so propagating a binary chain
/// touches no clause-arena memory at all — one contiguous scan enqueues or
/// conflicts directly. **Longer clauses** use the classic blocker-checked
/// watcher pair with arena access only when the blocker is unsatisfied.
/// Tseitin-encoded circuit CNF is mostly binary/ternary, so every SAT call
/// in support/satprune/patchfunc/cegarmin/qbf/cec benefits. The one
/// consequence visible elsewhere: a binary reason clause may have its
/// implied literal at index 1, so conflict analysis normalizes lazily
/// (see `reason_view`).
///
/// **Incremental fast path (assumption-prefix trail reuse).** The engine's
/// dominant workload is many `solve()` calls on one solver whose assumption
/// vectors share a long common prefix (`minimize_assumptions` alone issues
/// O(k log k) such calls per support/cube computation). With
/// `SolverOptions::trail_reuse` (the default), `solve()` does not cancel to
/// decision level 0 on exit; the next call computes the longest common
/// prefix between the previous and current assumption vectors and backtracks
/// only to that level, so the retained trail segment — assumption decisions
/// plus everything unit propagation derived from them — is never re-decided
/// or re-propagated. This is sound because every retained trail literal at
/// level i is a consequence of the clause database and the first i
/// assumptions, both unchanged for the matched prefix; `add_clause` cancels
/// to level 0 first (invalidating the retained trail) whenever the database
/// grows between calls. Consumers maximize the win by keeping assumption
/// order stable: context literals first, then the query-specific suffix
/// (see sat/minimize.hpp and docs/OBSERVABILITY.md "assumption-ordering
/// invariant"). `stats().prefix_reused_levels` / `propagations_saved`
/// report the effect.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco::sat {

/// Restart policy selector (SolverOptions::restart).
enum class RestartPolicy : uint8_t {
  kLuby,  ///< Luby sequence × 100 conflicts (the MiniSat classic)
  kEma,   ///< glucose-style fast/slow LBD EMAs with trail-size blocking
};

/// Tunable solver behavior, fixed at construction.
///
/// Process-wide defaults come from `defaults()` and can be overridden
/// programmatically (`set_defaults`) or via the environment:
/// `ECO_SAT_TRAIL_REUSE=0` disables assumption-prefix trail reuse and
/// `ECO_SAT_RESTART=ema|luby` selects the restart policy. The env hooks
/// exist so benchmarks and CI can A/B the fast path without recompiling.
struct SolverOptions {
  /// Keep the trail across solve() calls and re-use the decision levels of
  /// the longest common assumption prefix (see file comment).
  bool trail_reuse = true;

  /// Let consumers that hold simulation statistics (the sweeping engine,
  /// cec/sweep.hpp) seed each Tseitin variable's saved phase from the
  /// node's signal probability before solving. This flag only gates those
  /// call sites' use of `set_polarity`; the solver itself never reads it.
  /// `ECO_SAT_PHASE_SEED=0` disables it for A/B runs.
  bool phase_seed = true;

  /// Restart policy for the search loop.
  RestartPolicy restart = RestartPolicy::kLuby;

  // -- learnt-clause tiering (Chanseok-Oh three-tier scheme) --------------
  /// Learnts with LBD <= core_lbd_cut are kept forever ("core").
  uint32_t core_lbd_cut = 2;
  /// Learnts with core < LBD <= tier2_lbd_cut sit on a touched-timer
  /// ("tier2"); the rest are aggressively reduced ("local").
  uint32_t tier2_lbd_cut = 6;
  /// Scan tier2 every this many conflicts...
  uint64_t tier2_shrink_interval = 10000;
  /// ...demoting clauses not touched for this many conflicts to local.
  uint64_t tier2_unused_demote = 30000;
  /// Halve the local tier (by activity) every this many conflicts — the
  /// schedule backstop for workloads whose local tier grows slowly.
  uint64_t local_reduce_interval = 15000;
  /// Also halve the local tier whenever it holds this many live clauses.
  /// Local clauses are the high-LBD tail (the valuable ones live in core /
  /// tier2), so a hard cap keeps per-conflict propagation cheap: on
  /// pigeonhole php(11,10) a fixed 2000-clause cap is 1.3–1.9x faster
  /// end-to-end than letting the tier grow between interval reductions.
  /// Set local_cap_increment > 0 to grow the cap per size-triggered
  /// reduction (glucose-style) instead; the cap also self-raises if locked
  /// clauses ever pin a reduction above it (no thrashing).
  uint32_t local_cap_base = 2000;
  uint32_t local_cap_increment = 0;

  // -- EMA restart parameters (RestartPolicy::kEma) -----------------------
  double ema_lbd_fast_alpha = 1.0 / 32.0;
  double ema_lbd_slow_alpha = 1.0 / 4096.0;
  double ema_trail_alpha = 1.0 / 4096.0;
  /// Restart when fast LBD EMA > restart_margin × slow LBD EMA.
  double restart_margin = 1.25;
  /// Block (postpone) the restart when the trail is this much larger than
  /// its EMA — the search is likely closing in on a model.
  double blocking_margin = 1.4;
  /// Minimum conflicts within a restart segment before EMA may fire.
  uint32_t restart_min_conflicts = 50;

  /// Process-wide defaults (env-seeded on first use, see above).
  static const SolverOptions& defaults() noexcept;
  /// Replaces the process-wide defaults (call before creating solvers).
  static void set_defaults(const SolverOptions& opts) noexcept;
};

/// Aggregate solver statistics, readable at any time.
struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnts_literals = 0;
  uint64_t db_reductions = 0;
  uint64_t solves = 0;
  // Incremental fast path (see file comment).
  uint64_t prefix_reused_levels = 0;   ///< assumption levels kept across solves
  uint64_t propagations_saved = 0;     ///< trail literals retained, not re-propagated
  uint64_t restarts_blocked = 0;       ///< EMA restarts postponed by trail blocking
  // Learnt-clause tier admissions (cumulative, incl. promotions/demotions).
  uint64_t learnts_core = 0;
  uint64_t learnts_tier2 = 0;
  uint64_t learnts_local = 0;
  // Intra-query parallel SAT (sat/parsolve.hpp). Counted on the solver whose
  // solve escalated; the worker clones' search stats stay on the clones.
  uint64_t par_escalations = 0;       ///< solves that crossed the trigger
  uint64_t par_portfolio = 0;         ///< escalations run as a portfolio race
  uint64_t par_cube = 0;              ///< escalations run as a cube split
  uint64_t par_wins = 0;              ///< escalations that returned definitive
  uint64_t par_clauses_imported = 0;  ///< clauses imported via the exchange
};

/// CDCL SAT solver.
class Solver {
 public:
  explicit Solver(const SolverOptions& options = SolverOptions::defaults());
  /// Rolls this solver's statistics into the process-wide telemetry totals
  /// (util/telemetry.hpp), so snapshots cover every solver ever created.
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  const SolverOptions& options() const noexcept { return opts_; }

  // ---- Problem construction -------------------------------------------

  /// Creates a fresh variable and returns its index.
  Var new_var(bool decision = true, bool default_polarity = false);

  /// Number of variables created so far.
  int num_vars() const noexcept { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the solver became provably UNSAT
  /// (empty clause or top-level conflict). Duplicate/true literals handled.
  /// Cancels any retained trail first (growing the database invalidates
  /// assumption-prefix reuse).
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// True while the clause database is not known to be contradictory.
  bool okay() const noexcept { return ok_; }

  // ---- Solving ---------------------------------------------------------

  /// Solves under the given assumptions.
  /// \returns kTrue (SAT), kFalse (UNSAT), or kUndef if a budget ran out.
  LBool solve(std::span<const Lit> assumptions = {});
  LBool solve(std::initializer_list<Lit> assumptions) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model value of a literal after a kTrue result. Unassigned model
  /// variables (eliminated by simplification) default to false.
  bool model_value(Lit l) const;
  bool model_value(Var v) const { return model_value(mk_lit(v)); }

  /// After a kFalse result under assumptions: the subset of the assumption
  /// literals that the proof actually used (the "final conflict" core).
  /// Literals appear in their assumed polarity.
  const LitVec& core() const noexcept { return core_; }

  /// True if the assumption literal \p l is in the last core.
  bool in_core(Lit l) const;

  // ---- Budgets ---------------------------------------------------------

  /// Limits the number of conflicts for subsequent solve() calls.
  /// Zero or negative clears the budget.
  void set_conflict_budget(int64_t conflicts) noexcept { conflict_budget_ = conflicts; }

  /// Limits the number of propagations for subsequent solve() calls.
  void set_propagation_budget(int64_t props) noexcept { propagation_budget_ = props; }

  /// Sets an absolute wall-clock deadline checked during search; solve()
  /// returns kUndef once it expires. Persists across solve() calls until
  /// replaced. An unlimited Deadline{} clears it.
  void set_deadline(const Deadline& deadline) noexcept {
    deadline_ = deadline;
    deadline_expired_ = false;
    deadline_check_countdown_ = 0;
  }

  /// Attaches a cooperative cancellation token checked during search (same
  /// throttled cadence as the deadline); solve() returns kUndef once it
  /// cancels. A default-constructed (invalid) token clears it. Unlike the
  /// deadline this also reacts to external stop requests and memory-budget
  /// exhaustion, so a CLI signal handler or executor shutdown can abort a
  /// long solve mid-search.
  void set_cancel(const CancelToken& token) noexcept {
    cancel_ = token;
    cancel_hit_ = false;
    deadline_check_countdown_ = 0;
  }

  /// Clears the conflict/propagation budgets (not the deadline).
  void clear_budgets() noexcept {
    conflict_budget_ = -1;
    propagation_budget_ = -1;
  }

  const SolverStats& stats() const noexcept { return stats_; }

  /// Sets the preferred phase used when the variable is picked as decision.
  void set_polarity(Var v, bool negated_first);

  /// Top-level (decision level 0) value of a variable, kUndef if free.
  LBool fixed_value(Var v) const;

  // ---- Intra-query parallel solving (sat/parsolve.hpp) ------------------

  /// Allows or forbids escalating this solver's long solves to the parallel
  /// layer (default allowed; parsolve forbids it on its worker clones so an
  /// escalation never recurses). The layer itself is off unless
  /// ParSolveOptions enables it and an executor is registered.
  void set_par_escalation(bool allowed) noexcept { par_allowed_ = allowed; }

  /// Per-solver override of the escalation trigger (conflicts inside one
  /// solve before the parallel layer may take over): 0 defers to the
  /// process-wide ParSolveOptions default, > 0 replaces it, < 0 disables
  /// escalation for this solver. Consumers running on sliced budgets (QBF
  /// CEGAR) lower it so escalation still has budget left to spend.
  void set_par_trigger(int64_t conflicts) noexcept { par_trigger_override_ = conflicts; }

 private:
  // -- clause arena -----------------------------------------------------
  // Layout per clause: [header][lit0][lit1]...
  // header: learnt flag, reloced/dead flag, learnt tier, 28-bit size.
  // Learnt clauses carry three extra trailing words: activity (float),
  // LBD, and the conflict count at which the clause was last used
  // ("touched", drives tier2 demotion).
  struct Header {
    uint32_t learnt : 1;
    uint32_t reloced : 1;
    uint32_t tier : 2;
    uint32_t size : 28;
  };

  // Learnt tiers (Header::tier). Originals carry kTierCore (ignored).
  static constexpr uint32_t kTierCore = 0;   ///< LBD <= core cut: kept forever
  static constexpr uint32_t kTierTier2 = 1;  ///< mid LBD: touched-timer
  static constexpr uint32_t kTierLocal = 2;  ///< high LBD: aggressively reduced

  class ClauseRefView {
   public:
    ClauseRefView(std::vector<uint32_t>& mem, CRef ref) noexcept : mem_(&mem), ref_(ref) {}
    Header& header() noexcept { return *reinterpret_cast<Header*>(&(*mem_)[ref_]); }
    uint32_t size() noexcept { return header().size; }
    bool learnt() noexcept { return header().learnt != 0; }
    Lit& operator[](uint32_t i) noexcept {
      return *reinterpret_cast<Lit*>(&(*mem_)[ref_ + 1 + i]);
    }
    float& activity() noexcept {
      return *reinterpret_cast<float*>(&(*mem_)[ref_ + 1 + size()]);
    }
    uint32_t& lbd() noexcept { return (*mem_)[ref_ + 2 + size()]; }
    uint32_t& touched() noexcept { return (*mem_)[ref_ + 3 + size()]; }
    std::span<const Lit> lits() noexcept {
      return {reinterpret_cast<const Lit*>(&(*mem_)[ref_ + 1]), size()};
    }

   private:
    std::vector<uint32_t>* mem_;
    CRef ref_;
  };

  ClauseRefView clause(CRef ref) noexcept { return ClauseRefView(arena_, ref); }

  CRef alloc_clause(std::span<const Lit> lits, bool learnt);

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  /// Watcher for a binary clause: the implied literal is stored inline, so
  /// propagation never dereferences the arena. \c cref is kept only as the
  /// reason / conflict handle for analysis.
  struct BinWatcher {
    Lit other;
    CRef cref;
  };

  struct VarData {
    CRef reason = kCRefUndef;
    int level = 0;
  };

  /// Exponential moving average for the EMA restart policy.
  struct Ema {
    double value = 0;
    bool primed = false;
    void update(double x, double alpha) noexcept {
      if (!primed) {
        value = x;
        primed = true;
      } else {
        value += alpha * (x - value);
      }
    }
  };

  // -- VSIDS heap --------------------------------------------------------
  class VarHeap {
   public:
    void grow(int n) { index_.resize(static_cast<size_t>(n), -1); }
    bool contains(Var v) const { return index_[static_cast<size_t>(v)] >= 0; }
    bool empty() const { return heap_.empty(); }
    void insert(Var v, const std::vector<double>& act);
    void update(Var v, const std::vector<double>& act);
    Var pop(const std::vector<double>& act);

   private:
    void sift_up(size_t i, const std::vector<double>& act);
    void sift_down(size_t i, const std::vector<double>& act);
    std::vector<Var> heap_;
    std::vector<int32_t> index_;
  };

  // -- core CDCL ---------------------------------------------------------
  LBool value(Lit l) const noexcept {
    return LBool(static_cast<uint8_t>(assigns_[static_cast<size_t>(l.var())].raw())) ^ l.sign();
  }
  LBool value(Var v) const noexcept { return assigns_[static_cast<size_t>(v)]; }
  int level(Var v) const noexcept { return vardata_[static_cast<size_t>(v)].level; }
  CRef reason(Var v) const noexcept { return vardata_[static_cast<size_t>(v)].reason; }
  int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(CRef ref);
  void detach_clause(CRef ref);
  void remove_clause(CRef ref);

  /// The reason clause of \p v with the invariant "implied literal first"
  /// restored. Long-clause propagation maintains it eagerly; binary
  /// propagation skips the arena write on the hot path, so the swap happens
  /// lazily here, only when analysis actually reads the reason.
  ClauseRefView reason_view(Var v) noexcept;

  void unchecked_enqueue(Lit l, CRef from = kCRefUndef);
  CRef propagate();
  void cancel_until(int target_level);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  void analyze(CRef confl, LitVec& out_learnt, int& out_btlevel, uint32_t& out_lbd);
  bool lit_redundant(Lit l, uint32_t abstract_levels);
  void analyze_final(Lit p, LitVec& out_core);

  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ /= kVarDecay; }
  void cla_bump_activity(ClauseRefView c);
  void cla_decay_activity() { cla_inc_ /= kClaDecay; }

  /// Records one learnt clause in its tier (by LBD) and attaches it.
  void admit_learnt(CRef ref, uint32_t lbd);
  /// LBD-improved-on-use promotion (local -> tier2 -> core).
  void maybe_promote(CRef ref, ClauseRefView c, uint32_t new_lbd);
  /// Demotes tier2 clauses untouched for tier2_unused_demote conflicts.
  void shrink_tier2();
  /// Sorts the local tier by activity and drops the weaker half.
  void reduce_local();
  void maybe_garbage_collect();
  LBool search(int64_t conflicts_before_restart);
  bool within_budget() const noexcept;
  /// The actual solve; the public solve() wraps it with one query-ledger
  /// record (util/ledger.hpp) when the ledger is enabled.
  LBool solve_impl(std::span<const Lit> assumptions);

  uint32_t compute_lbd(std::span<const Lit> lits);

  static double luby(double y, int i);

  // -- data ---------------------------------------------------------------
  static constexpr double kVarDecay = 0.95;
  static constexpr double kClaDecay = 0.999;

  SolverOptions opts_;

  std::vector<uint32_t> arena_;
  std::vector<CRef> clauses_;
  // Learnt tiers. An entry is current iff the clause's Header::tier matches
  // the list; promotions push into the new list and the stale entry is
  // dropped lazily at the old list's next scan (shrink/reduce/rescale/GC).
  std::vector<CRef> learnts_core_;
  std::vector<CRef> learnts_tier2_;
  std::vector<CRef> learnts_local_;

  std::vector<std::vector<Watcher>> watches_;        // size > 2 clauses, by lit raw
  std::vector<std::vector<BinWatcher>> watches_bin_;  // binary clauses, by lit raw
  std::vector<LBool> assigns_;
  std::vector<uint8_t> polarity_;  // saved phase: 1 == assign false first
  std::vector<uint8_t> decision_;
  std::vector<VarData> vardata_;
  std::vector<double> activity_;
  VarHeap order_heap_;

  LitVec trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  /// Assumptions of the current solve; retained afterwards as the previous
  /// vector for the next call's common-prefix computation (trail reuse).
  LitVec assumptions_;
  LitVec core_;
  std::vector<uint8_t> in_core_mark_;  // by var
  std::vector<LBool> model_;
  size_t wasted_ = 0;

  std::vector<uint8_t> seen_;
  LitVec analyze_toclear_;
  LitVec analyze_stack_;
  std::vector<int> lbd_seen_;
  int lbd_stamp_ = 0;

  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  bool ok_ = true;
  int64_t conflict_budget_ = -1;
  int64_t propagation_budget_ = -1;
  Deadline deadline_{};
  CancelToken cancel_{};
  mutable bool deadline_expired_ = false;
  mutable bool cancel_hit_ = false;
  mutable uint32_t deadline_check_countdown_ = 0;
  uint64_t conflicts_at_solve_start_ = 0;
  uint64_t propagations_at_solve_start_ = 0;

  // Learnt-DB maintenance schedule (conflict counts), plus the live-clause
  // count and current size cap of the local tier (the lists themselves may
  // hold stale or duplicate entries, so they cannot be sized directly).
  uint64_t next_tier2_shrink_ = 0;
  uint64_t next_local_reduce_ = 0;
  size_t locals_live_ = 0;
  size_t local_cap_ = 0;

  // EMA restart state (RestartPolicy::kEma).
  Ema ema_lbd_fast_;
  Ema ema_lbd_slow_;
  Ema ema_trail_;

  // Intra-query parallel solving. sat/parsolve.cpp drives the private state
  // through ParSolveAccess; solve_impl only checks par_allowed_ /
  // par_attempted_ at restart boundaries (docs/PARALLEL_SAT.md).
  friend struct ParSolveAccess;
  bool par_allowed_ = true;
  bool par_attempted_ = false;  ///< terminal: no further escalation this solve()
  int par_failed_rounds_ = 0;   ///< inconclusive races this solve (slice growth)
  int64_t par_retry_at_ = 0;    ///< conflicts_since_start gate for the next race
  int64_t par_trigger_override_ = 0;  ///< 0 = ParSolveOptions default, < 0 = off
  /// Learnt-clause export for the racy clause exchange (0 = off). Filled by
  /// admit_learnt and unit learnts, drained by the clone's restart hook.
  uint32_t export_lbd_cut_ = 0;
  uint32_t export_max_ = 0;
  std::vector<LitVec> export_pending_;
  /// Invoked at every restart boundary of solve_impl (the clause
  /// publish/import point for worker clones; may add clauses).
  void (*restart_hook_)(void*, Solver&) = nullptr;
  void* restart_hook_ctx_ = nullptr;
  Timer solve_timer_;  ///< restarted per solve (racy wall-clock trigger)

  SolverStats stats_;
};

}  // namespace eco::sat
