/// \file types.hpp
/// \brief Core SAT types: variables, literals, ternary values.
///
/// Conventions follow MiniSat: a literal packs a variable index and a sign
/// into one word (lit = 2*var + sign, sign 1 == negated), and ternary logic
/// values use an encoding where negation is a single XOR.
#pragma once

#include <cstdint>
#include <vector>

namespace eco::sat {

/// Variable index. Variables are dense, starting at 0.
using Var = int32_t;

constexpr Var kVarUndef = -1;

/// A literal: a variable with a polarity.
class Lit {
 public:
  constexpr Lit() noexcept : x_(-2) {}
  constexpr Lit(Var v, bool negated) noexcept : x_(2 * v + static_cast<int32_t>(negated)) {}

  /// Builds a literal from the raw packed encoding (2*var + sign).
  static constexpr Lit from_raw(int32_t raw) noexcept {
    Lit l;
    l.x_ = raw;
    return l;
  }

  constexpr Var var() const noexcept { return x_ >> 1; }
  constexpr bool sign() const noexcept { return (x_ & 1) != 0; }
  constexpr int32_t raw() const noexcept { return x_; }

  constexpr Lit operator~() const noexcept { return from_raw(x_ ^ 1); }
  /// XOR with a boolean: conditional complement.
  constexpr Lit operator^(bool b) const noexcept { return from_raw(x_ ^ static_cast<int32_t>(b)); }

  constexpr bool operator==(const Lit&) const noexcept = default;
  constexpr bool operator<(const Lit& o) const noexcept { return x_ < o.x_; }

 private:
  int32_t x_;
};

constexpr Lit kLitUndef = Lit::from_raw(-2);

/// Positive literal of \p v.
constexpr Lit mk_lit(Var v, bool negated = false) noexcept { return Lit(v, negated); }

/// Ternary logic value with XOR-negation encoding.
class LBool {
 public:
  constexpr LBool() noexcept : v_(2) {}
  explicit constexpr LBool(uint8_t v) noexcept : v_(v) {}
  explicit constexpr LBool(bool b) noexcept : v_(b ? 0 : 1) {}

  constexpr bool operator==(const LBool&) const noexcept = default;

  /// Complement; undefined stays undefined.
  constexpr LBool operator^(bool b) const noexcept {
    return LBool(static_cast<uint8_t>(v_ ^ (static_cast<uint8_t>(b) & static_cast<uint8_t>(v_ < 2 ? 1 : 0))));
  }

  constexpr bool is_true() const noexcept { return v_ == 0; }
  constexpr bool is_false() const noexcept { return v_ == 1; }
  constexpr bool is_undef() const noexcept { return v_ >= 2; }

  constexpr uint8_t raw() const noexcept { return v_; }

 private:
  uint8_t v_;
};

constexpr LBool kTrue{static_cast<uint8_t>(0)};
constexpr LBool kFalse{static_cast<uint8_t>(1)};
constexpr LBool kUndef{static_cast<uint8_t>(2)};

/// A clause reference: offset into the clause arena.
using CRef = uint32_t;
constexpr CRef kCRefUndef = UINT32_MAX;

/// Convenience alias for clause/assumption containers.
using LitVec = std::vector<Lit>;

}  // namespace eco::sat
