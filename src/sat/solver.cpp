#include "sat/solver.hpp"

#include <algorithm>

#include "sat/parsolve.hpp"
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/faultpoint.hpp"
#include "util/ledger.hpp"
#include "util/telemetry.hpp"

namespace eco::sat {

// ---------------------------------------------------------------------------
// SolverOptions: process-wide, env-seeded defaults
// ---------------------------------------------------------------------------

namespace {

SolverOptions env_seeded_defaults() {
  SolverOptions o;
  if (const char* v = std::getenv("ECO_SAT_TRAIL_REUSE"))
    o.trail_reuse = !(v[0] == '0' && v[1] == '\0');
  if (const char* v = std::getenv("ECO_SAT_PHASE_SEED"))
    o.phase_seed = !(v[0] == '0' && v[1] == '\0');
  if (const char* v = std::getenv("ECO_SAT_RESTART")) {
    const std::string_view s(v);
    if (s == "ema")
      o.restart = RestartPolicy::kEma;
    else if (s == "luby")
      o.restart = RestartPolicy::kLuby;
  }
  return o;
}

SolverOptions& mutable_defaults() {
  static SolverOptions o = env_seeded_defaults();
  return o;
}

}  // namespace

const SolverOptions& SolverOptions::defaults() noexcept { return mutable_defaults(); }

void SolverOptions::set_defaults(const SolverOptions& opts) noexcept {
  mutable_defaults() = opts;
}

// ---------------------------------------------------------------------------
// VarHeap: indexed binary max-heap ordered by activity.
// ---------------------------------------------------------------------------

void Solver::VarHeap::insert(Var v, const std::vector<double>& act) {
  if (contains(v)) return;
  index_[static_cast<size_t>(v)] = static_cast<int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1, act);
}

void Solver::VarHeap::update(Var v, const std::vector<double>& act) {
  if (!contains(v)) return;
  const auto i = static_cast<size_t>(index_[static_cast<size_t>(v)]);
  sift_up(i, act);
  sift_down(static_cast<size_t>(index_[static_cast<size_t>(v)]), act);
}

Var Solver::VarHeap::pop(const std::vector<double>& act) {
  const Var top = heap_[0];
  index_[static_cast<size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    index_[static_cast<size_t>(heap_[0])] = 0;
    sift_down(0, act);
  }
  return top;
}

void Solver::VarHeap::sift_up(size_t i, const std::vector<double>& act) {
  const Var v = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (act[static_cast<size_t>(heap_[parent])] >= act[static_cast<size_t>(v)]) break;
    heap_[i] = heap_[parent];
    index_[static_cast<size_t>(heap_[i])] = static_cast<int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  index_[static_cast<size_t>(v)] = static_cast<int32_t>(i);
}

void Solver::VarHeap::sift_down(size_t i, const std::vector<double>& act) {
  const Var v = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) break;
    const size_t right = left + 1;
    size_t best = left;
    if (right < n &&
        act[static_cast<size_t>(heap_[right])] > act[static_cast<size_t>(heap_[left])])
      best = right;
    if (act[static_cast<size_t>(heap_[best])] <= act[static_cast<size_t>(v)]) break;
    heap_[i] = heap_[best];
    index_[static_cast<size_t>(heap_[i])] = static_cast<int32_t>(i);
    i = best;
  }
  heap_[i] = v;
  index_[static_cast<size_t>(v)] = static_cast<int32_t>(i);
}

// ---------------------------------------------------------------------------
// Construction / problem building
// ---------------------------------------------------------------------------

Solver::Solver(const SolverOptions& options) : opts_(options) {
  arena_.reserve(1024 * 64);
  next_tier2_shrink_ = opts_.tier2_shrink_interval;
  next_local_reduce_ = opts_.local_reduce_interval;
  local_cap_ = opts_.local_cap_base;
}

Solver::~Solver() {
  telemetry::SolverTotals t;
  t.solvers = 1;
  t.solves = stats_.solves;
  t.decisions = stats_.decisions;
  t.propagations = stats_.propagations;
  t.conflicts = stats_.conflicts;
  t.restarts = stats_.restarts;
  t.learnt_literals = stats_.learnts_literals;
  t.db_reductions = stats_.db_reductions;
  t.prefix_reused_levels = stats_.prefix_reused_levels;
  t.propagations_saved = stats_.propagations_saved;
  t.restarts_blocked = stats_.restarts_blocked;
  t.learnts_core = stats_.learnts_core;
  t.learnts_tier2 = stats_.learnts_tier2;
  t.learnts_local = stats_.learnts_local;
  t.par_escalations = stats_.par_escalations;
  t.par_portfolio = stats_.par_portfolio;
  t.par_cube = stats_.par_cube;
  t.par_wins = stats_.par_wins;
  t.par_clauses_imported = stats_.par_clauses_imported;
  telemetry::add_solver_totals(t);
}

Var Solver::new_var(bool decision, bool default_polarity) {
  const Var v = num_vars();
  watches_.emplace_back();
  watches_.emplace_back();
  watches_bin_.emplace_back();
  watches_bin_.emplace_back();
  assigns_.push_back(kUndef);
  polarity_.push_back(default_polarity ? 1 : 0);
  decision_.push_back(decision ? 1 : 0);
  vardata_.push_back(VarData{});
  activity_.push_back(0.0);
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  in_core_mark_.push_back(0);
  order_heap_.grow(v + 1);
  if (decision) order_heap_.insert(v, activity_);
  return v;
}

CRef Solver::alloc_clause(std::span<const Lit> lits, bool learnt) {
  const CRef ref = static_cast<CRef>(arena_.size());
  Header h{};
  h.learnt = learnt ? 1u : 0u;
  h.reloced = 0;
  h.tier = kTierCore;
  h.size = static_cast<uint32_t>(lits.size());
  arena_.push_back(std::bit_cast<uint32_t>(h));
  for (const Lit l : lits) arena_.push_back(static_cast<uint32_t>(l.raw()));
  if (learnt) {
    arena_.push_back(std::bit_cast<uint32_t>(0.0f));
    arena_.push_back(0);  // LBD
    arena_.push_back(0);  // touched (conflict count of last use)
  }
  return ref;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  // Growing the clause database invalidates the trail retained for
  // assumption-prefix reuse: literals implied so far were derived without
  // this clause, and unit enqueues must land at level 0 anyway.
  if (decision_level() > 0) cancel_until(0);
  if (!ok_) return false;

  LitVec ps(lits.begin(), lits.end());
  std::sort(ps.begin(), ps.end());
  // Remove duplicates, satisfied clauses, and false literals.
  LitVec out;
  Lit prev = kLitUndef;
  for (const Lit l : ps) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (value(l).is_true() || l == ~prev) return true;  // clause satisfied / tautology
    if (!value(l).is_false() && l != prev) {
      out.push_back(l);
      prev = l;
    }
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0]);
    ok_ = (propagate() == kCRefUndef);
    return ok_;
  }
  const CRef ref = alloc_clause(out, /*learnt=*/false);
  clauses_.push_back(ref);
  attach_clause(ref);
  return true;
}

void Solver::attach_clause(CRef ref) {
  auto c = clause(ref);
  assert(c.size() > 1);
  if (c.size() == 2) {
    watches_bin_[static_cast<size_t>((~c[0]).raw())].push_back(BinWatcher{c[1], ref});
    watches_bin_[static_cast<size_t>((~c[1]).raw())].push_back(BinWatcher{c[0], ref});
    return;
  }
  watches_[static_cast<size_t>((~c[0]).raw())].push_back(Watcher{ref, c[1]});
  watches_[static_cast<size_t>((~c[1]).raw())].push_back(Watcher{ref, c[0]});
}

void Solver::detach_clause(CRef ref) {
  auto c = clause(ref);
  if (c.size() == 2) {
    for (const Lit w : {~c[0], ~c[1]}) {
      auto& ws = watches_bin_[static_cast<size_t>(w.raw())];
      for (size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].cref == ref) {
          ws[i] = ws.back();
          ws.pop_back();
          break;
        }
      }
    }
    return;
  }
  for (const Lit w : {~c[0], ~c[1]}) {
    auto& ws = watches_[static_cast<size_t>(w.raw())];
    for (size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == ref) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::remove_clause(CRef ref) {
  detach_clause(ref);
  auto c = clause(ref);
  // Unlock if the clause is the reason of its first literal.
  const Var v0 = c[0].var();
  if (reason(v0) == ref) vardata_[static_cast<size_t>(v0)].reason = kCRefUndef;
  c.header().reloced = 1;  // mark dead; storage reclaimed on next rebuild
  wasted_ += c.size() + 1 + (c.learnt() ? 3 : 0);
}

// ---------------------------------------------------------------------------
// Assignment / propagation
// ---------------------------------------------------------------------------

void Solver::unchecked_enqueue(Lit l, CRef from) {
  assert(value(l).is_undef());
  assigns_[static_cast<size_t>(l.var())] = LBool(!l.sign());
  vardata_[static_cast<size_t>(l.var())] = VarData{from, decision_level()};
  trail_.push_back(l);
}

Solver::ClauseRefView Solver::reason_view(Var v) noexcept {
  auto c = clause(reason(v));
  // Binary propagation leaves the arena untouched, so the implied literal
  // may sit at index 1; analysis expects it first.
  if (c.size() == 2 && c[0].var() != v) {
    const Lit tmp = c[0];
    c[0] = c[1];
    c[1] = tmp;
  }
  return c;
}

CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // Tier 1: binary clauses — the implied literal is inline in the
    // watcher, so this loop runs on one contiguous array with no arena
    // dereference and never needs to move a watch.
    for (const BinWatcher bw : watches_bin_[static_cast<size_t>(p.raw())]) {
      const LBool v = value(bw.other);
      if (v.is_true()) continue;
      if (v.is_false()) {
        qhead_ = trail_.size();
        return bw.cref;
      }
      unchecked_enqueue(bw.other, bw.cref);
    }

    // Tier 2: longer clauses with blocker-checked watcher pairs.
    auto& ws = watches_[static_cast<size_t>(p.raw())];
    size_t i = 0, j = 0;
    const size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i];
      if (value(w.blocker).is_true()) {
        ws[j++] = ws[i++];
        continue;
      }
      auto c = clause(w.cref);
      // Ensure the false literal is at position 1.
      const Lit false_lit = ~p;
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      ++i;
      const Lit first = c[0];
      if (first != w.blocker && value(first).is_true()) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (uint32_t k = 2; k < c.size(); ++k) {
        if (!value(c[k]).is_false()) {
          c[1] = c[k];
          c[k] = false_lit;
          watches_[static_cast<size_t>((~c[1]).raw())].push_back(Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.cref, first};
      if (value(first).is_false()) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
      } else {
        unchecked_enqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const int bound = trail_lim_[static_cast<size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = trail_[static_cast<size_t>(i)].var();
    polarity_[static_cast<size_t>(v)] = trail_[static_cast<size_t>(i)].sign() ? 1 : 0;
    assigns_[static_cast<size_t>(v)] = kUndef;
    if (decision_[static_cast<size_t>(v)] && !order_heap_.contains(v))
      order_heap_.insert(v, activity_);
  }
  qhead_ = static_cast<size_t>(bound);
  trail_.resize(static_cast<size_t>(bound));
  trail_lim_.resize(static_cast<size_t>(target_level));
}

Lit Solver::pick_branch_lit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.pop(activity_);
    if (value(v).is_undef() && decision_[static_cast<size_t>(v)])
      return mk_lit(v, polarity_[static_cast<size_t>(v)] != 0);
  }
  return kLitUndef;
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

void Solver::var_bump_activity(Var v) {
  auto& a = activity_[static_cast<size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    for (auto& act : activity_) act *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.update(v, activity_);
}

void Solver::cla_bump_activity(ClauseRefView c) {
  float& a = c.activity();
  a += static_cast<float>(cla_inc_);
  if (a > 1e20f) {
    // Scale each clause exactly once: an entry is authoritative only when
    // the clause's tier matches the list it sits in (promotions leave stale
    // entries behind). A rare duplicate local entry may scale twice, which
    // only lowers that clause's heuristic standing — harmless.
    const auto rescale = [this](std::vector<CRef>& list, uint32_t tag) {
      for (const CRef ref : list) {
        auto cl = clause(ref);
        if (cl.header().tier == tag) cl.activity() *= 1e-20f;
      }
    };
    rescale(learnts_core_, kTierCore);
    rescale(learnts_tier2_, kTierTier2);
    rescale(learnts_local_, kTierLocal);
    cla_inc_ *= 1e-20;
  }
}

uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  ++lbd_stamp_;
  uint32_t count = 0;
  for (const Lit l : lits) {
    const int lv = level(l.var());
    if (lv > 0 && lbd_seen_[static_cast<size_t>(lv % lbd_seen_.size())] != lbd_stamp_) {
      lbd_seen_[static_cast<size_t>(lv % lbd_seen_.size())] = lbd_stamp_;
      ++count;
    }
  }
  return count;
}

void Solver::analyze(CRef confl, LitVec& out_learnt, int& out_btlevel, uint32_t& out_lbd) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // placeholder for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    assert(confl != kCRefUndef);
    // For reasons (p != undef) the implied literal must be first; binary
    // reasons restore that invariant lazily.
    auto c = p == kLitUndef ? clause(confl) : reason_view(p.var());
    if (c.learnt()) {
      cla_bump_activity(c);
      c.touched() = static_cast<uint32_t>(stats_.conflicts);
      // Glucose-style LBD-update-on-use with tier promotion: a clause whose
      // glue improved since it was learnt earns a longer-lived tier.
      if (c.header().tier != kTierCore) {
        const uint32_t new_lbd = compute_lbd(c.lits());
        if (new_lbd < c.lbd()) {
          c.lbd() = new_lbd;
          maybe_promote(confl, c, new_lbd);
        }
      }
    }
    for (uint32_t k = (p == kLitUndef) ? 0 : 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const Var v = q.var();
      if (!seen_[static_cast<size_t>(v)] && level(v) > 0) {
        var_bump_activity(v);
        seen_[static_cast<size_t>(v)] = 1;
        if (level(v) >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    // Select the next literal on the trail to expand.
    while (!seen_[static_cast<size_t>(trail_[static_cast<size_t>(index)].var())]) --index;
    p = trail_[static_cast<size_t>(index--)];
    confl = reason(p.var());
    seen_[static_cast<size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimize with self-subsumption over reason clauses (recursive check).
  analyze_toclear_ = out_learnt;
  uint32_t abstract_level = 0;
  for (size_t i = 1; i < out_learnt.size(); ++i)
    abstract_level |= 1u << (static_cast<uint32_t>(level(out_learnt[i].var())) & 31u);
  size_t keep = 1;
  for (size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason(out_learnt[i].var()) == kCRefUndef || !lit_redundant(out_learnt[i], abstract_level))
      out_learnt[keep++] = out_learnt[i];
  }
  stats_.learnts_literals += out_learnt.size();
  out_learnt.resize(keep);

  // Find the backtrack level: the second-highest level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < out_learnt.size(); ++i)
      if (level(out_learnt[i].var()) > level(out_learnt[max_i].var())) max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }
  out_lbd = compute_lbd(out_learnt);

  for (const Lit l : analyze_toclear_) seen_[static_cast<size_t>(l.var())] = 0;
}

bool Solver::lit_redundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason(cur.var()) != kCRefUndef);
    auto c = reason_view(cur.var());
    for (uint32_t i = 1; i < c.size(); ++i) {
      const Lit q = c[i];
      const Var v = q.var();
      if (seen_[static_cast<size_t>(v)] || level(v) == 0) continue;
      if (reason(v) != kCRefUndef &&
          ((1u << (static_cast<uint32_t>(level(v)) & 31u)) & abstract_levels) != 0) {
        seen_[static_cast<size_t>(v)] = 1;
        analyze_stack_.push_back(q);
        analyze_toclear_.push_back(q);
      } else {
        // Not removable: undo the marks added during this check.
        for (size_t j = top; j < analyze_toclear_.size(); ++j)
          seen_[static_cast<size_t>(analyze_toclear_[j].var())] = 0;
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::analyze_final(Lit p, LitVec& out_core) {
  // Computes the subset of assumptions sufficient for the conflict, as the
  // set of *negations* of trail decisions reachable from ~p's implication.
  out_core.clear();
  out_core.push_back(p);
  if (decision_level() == 0) return;
  seen_[static_cast<size_t>(p.var())] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[0]; --i) {
    const Var x = trail_[static_cast<size_t>(i)].var();
    if (!seen_[static_cast<size_t>(x)]) continue;
    if (reason(x) == kCRefUndef) {
      assert(level(x) > 0);
      out_core.push_back(~trail_[static_cast<size_t>(i)]);
    } else {
      auto c = reason_view(x);
      for (uint32_t j = 1; j < c.size(); ++j)
        if (level(c[j].var()) > 0) seen_[static_cast<size_t>(c[j].var())] = 1;
    }
    seen_[static_cast<size_t>(x)] = 0;
  }
  seen_[static_cast<size_t>(p.var())] = 0;
}

// ---------------------------------------------------------------------------
// Learnt database: three-tier maintenance & garbage collection
// ---------------------------------------------------------------------------

void Solver::admit_learnt(CRef ref, uint32_t lbd) {
  auto c = clause(ref);
  c.lbd() = lbd;
  c.touched() = static_cast<uint32_t>(stats_.conflicts);
  // Clause exchange export (racy parallel mode only; export_lbd_cut_ == 0
  // otherwise). Short low-LBD learnts are worth shipping to sibling clones.
  if (export_lbd_cut_ != 0 && lbd <= export_lbd_cut_ && c.size() <= 8 &&
      export_pending_.size() < export_max_) {
    const auto lits = c.lits();
    export_pending_.emplace_back(lits.begin(), lits.end());
  }
  uint32_t tier;
  // Size-2 learnts always join core: a binary reason may have its implied
  // literal at index 1 (lazy normalization), so the locked-clause check in
  // reduce_local would not protect it — core clauses are never removed.
  if (lbd <= opts_.core_lbd_cut || c.size() <= 2) {
    tier = kTierCore;
    learnts_core_.push_back(ref);
    ++stats_.learnts_core;
  } else if (lbd <= opts_.tier2_lbd_cut) {
    tier = kTierTier2;
    learnts_tier2_.push_back(ref);
    ++stats_.learnts_tier2;
  } else {
    tier = kTierLocal;
    learnts_local_.push_back(ref);
    ++stats_.learnts_local;
    ++locals_live_;
  }
  c.header().tier = tier;
}

void Solver::maybe_promote(CRef ref, ClauseRefView c, uint32_t new_lbd) {
  const uint32_t tier = c.header().tier;
  if (new_lbd <= opts_.core_lbd_cut) {
    if (tier == kTierCore) return;
    if (tier == kTierLocal) --locals_live_;
    c.header().tier = kTierCore;
    learnts_core_.push_back(ref);
    ++stats_.learnts_core;
  } else if (new_lbd <= opts_.tier2_lbd_cut && tier == kTierLocal) {
    --locals_live_;
    c.header().tier = kTierTier2;
    learnts_tier2_.push_back(ref);
    ++stats_.learnts_tier2;
  }
}

void Solver::shrink_tier2() {
  const auto now = static_cast<uint32_t>(stats_.conflicts);
  const auto demote_age = static_cast<uint32_t>(opts_.tier2_unused_demote);
  size_t keep = 0;
  for (const CRef ref : learnts_tier2_) {
    auto c = clause(ref);
    if (c.header().tier != kTierTier2) continue;  // promoted away: drop stale entry
    if (now - c.touched() >= demote_age) {
      c.header().tier = kTierLocal;
      learnts_local_.push_back(ref);
      ++stats_.learnts_local;
      ++locals_live_;
    } else {
      learnts_tier2_[keep++] = ref;
    }
  }
  learnts_tier2_.resize(keep);
}

void Solver::reduce_local() {
  ++stats_.db_reductions;
  auto& local = learnts_local_;
  // Promotions leave stale entries behind, and a demote/re-promote cycle can
  // leave duplicates: dedupe, then keep only entries whose tier is still
  // local. Everything surviving this pass is live, unique, and local.
  std::sort(local.begin(), local.end());
  local.erase(std::unique(local.begin(), local.end()), local.end());
  size_t cur = 0;
  for (const CRef ref : local)
    if (clause(ref).header().tier == kTierLocal) local[cur++] = ref;
  local.resize(cur);
  // Lowest activity first: those are removed.
  std::sort(local.begin(), local.end(),
            [this](CRef a, CRef b) { return clause(a).activity() < clause(b).activity(); });
  const size_t target_remove = local.size() / 2;
  size_t removed = 0;
  size_t keep = 0;
  for (size_t i = 0; i < local.size(); ++i) {
    auto c = clause(local[i]);
    const bool locked = reason(c[0].var()) == local[i] && value(c[0]).is_true();
    if (removed < target_remove && !locked) {
      remove_clause(local[i]);
      ++removed;
    } else {
      local[keep++] = local[i];
    }
  }
  local.resize(keep);
  locals_live_ = keep;  // exact resync: the list is now live, unique, local
  maybe_garbage_collect();
}

void Solver::maybe_garbage_collect() {
  if (wasted_ * 2 < arena_.size() || arena_.size() < (1u << 16)) return;
  std::vector<uint32_t> fresh;
  fresh.reserve(arena_.size() - wasted_);
  auto reloc = [&](CRef& ref) {
    auto c = clause(ref);
    if (c.header().reloced) {
      ref = static_cast<CRef>(static_cast<uint32_t>(c[0].raw()));
      return;
    }
    const CRef nref = static_cast<CRef>(fresh.size());
    const uint32_t total = 1 + c.size() + (c.learnt() ? 3u : 0u);
    for (uint32_t i = 0; i < total; ++i) fresh.push_back(arena_[ref + i]);
    c.header().reloced = 1;
    c[0] = Lit::from_raw(static_cast<int32_t>(nref));
    ref = nref;
  };
  for (auto& ws : watches_)
    for (auto& w : ws) reloc(w.cref);
  for (auto& ws : watches_bin_)
    for (auto& w : ws) reloc(w.cref);
  for (const Lit l : trail_) {
    auto& r = vardata_[static_cast<size_t>(l.var())].reason;
    if (r != kCRefUndef) {
      // Only relocate reasons that are still live (watched clauses are live;
      // a locked reason is never removed, so it is watched and already moved
      // or will be moved here).
      reloc(r);
    }
  }
  for (auto& ref : clauses_) reloc(ref);
  // Stale/duplicate learnt-list entries reference live clauses only
  // (reduce_local drops every entry for a clause it kills), and reloc is
  // idempotent via the forwarding pointer, so relocating them is safe.
  for (auto& ref : learnts_core_) reloc(ref);
  for (auto& ref : learnts_tier2_) reloc(ref);
  for (auto& ref : learnts_local_) reloc(ref);
  arena_.swap(fresh);
  wasted_ = 0;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

bool Solver::within_budget() const noexcept {
  // Throttle the clock read: once every 64 checks is ~ once per 64 decisions.
  // Expiration latches so callers polling after kUndef see a stable verdict.
  if (deadline_check_countdown_ == 0) {
    deadline_check_countdown_ = 64;
    if (deadline_.expired()) deadline_expired_ = true;
    if (cancel_.valid() && cancel_.cancelled()) cancel_hit_ = true;
  }
  --deadline_check_countdown_;
  if (deadline_expired_ || cancel_hit_) return false;
  if (conflict_budget_ >= 0 &&
      stats_.conflicts - conflicts_at_solve_start_ >= static_cast<uint64_t>(conflict_budget_))
    return false;
  if (propagation_budget_ >= 0 &&
      stats_.propagations - propagations_at_solve_start_ >=
          static_cast<uint64_t>(propagation_budget_))
    return false;
  return true;
}

/// One restart segment. \p conflicts_before_restart >= 0 caps the segment
/// (Luby policy); a negative value means the EMA policy decides internally.
LBool Solver::search(int64_t conflicts_before_restart) {
  int64_t conflict_count = 0;
  LitVec learnt;
  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflict_count;
      if (decision_level() == 0) {
        // Contradiction independent of assumptions: F itself is UNSAT.
        // Latch it — the falsified clause is behind the propagation queue by
        // now, so a later search would not rediscover it through watchers.
        core_.clear();
        ok_ = false;
        return kFalse;
      }
      int bt_level = 0;
      uint32_t lbd = 0;
      analyze(confl, learnt, bt_level, lbd);
      ema_lbd_fast_.update(lbd, opts_.ema_lbd_fast_alpha);
      ema_lbd_slow_.update(lbd, opts_.ema_lbd_slow_alpha);
      ema_trail_.update(static_cast<double>(trail_.size()), opts_.ema_trail_alpha);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0]);
        if (export_lbd_cut_ != 0 && export_pending_.size() < export_max_)
          export_pending_.push_back(LitVec{learnt[0]});
      } else {
        const CRef ref = alloc_clause(learnt, /*learnt=*/true);
        admit_learnt(ref, lbd);
        attach_clause(ref);
        cla_bump_activity(clause(ref));
        unchecked_enqueue(learnt[0], ref);
      }
      var_decay_activity();
      cla_decay_activity();
      continue;
    }

    // No conflict.
    const bool budget_ok = within_budget();
    bool restart_now = false;
    if (budget_ok) {
      if (conflicts_before_restart >= 0) {
        restart_now = conflict_count >= conflicts_before_restart;
      } else if (conflict_count >= opts_.restart_min_conflicts &&
                 ema_lbd_fast_.value > opts_.restart_margin * ema_lbd_slow_.value) {
        // Glucose-style block: an unusually deep trail suggests the search
        // is closing in on a model — postpone and let the pressure rebuild.
        if (ema_trail_.primed &&
            static_cast<double>(trail_.size()) > opts_.blocking_margin * ema_trail_.value) {
          ++stats_.restarts_blocked;
          conflict_count = 0;
        } else {
          restart_now = true;
        }
      }
    }
    if (restart_now || !budget_ok) {
      // Back off only to the assumption boundary: the assumption levels stay
      // valid across restarts (and across solve() calls — trail reuse).
      cancel_until(std::min(static_cast<int>(assumptions_.size()), decision_level()));
      return kUndef;
    }

    if (locals_live_ >= local_cap_ || stats_.conflicts >= next_local_reduce_) {
      if (locals_live_ >= local_cap_) local_cap_ += opts_.local_cap_increment;
      next_local_reduce_ = stats_.conflicts + opts_.local_reduce_interval;
      reduce_local();
      // Locked clauses survive reduction; if they alone exceed the cap,
      // raise it past them so the size trigger cannot fire every conflict.
      if (locals_live_ >= local_cap_) local_cap_ = locals_live_ + 64;
    }
    if (stats_.conflicts >= next_tier2_shrink_) {
      next_tier2_shrink_ = stats_.conflicts + opts_.tier2_shrink_interval;
      shrink_tier2();
    }

    Lit next = kLitUndef;
    while (decision_level() < static_cast<int>(assumptions_.size())) {
      const Lit p = assumptions_[static_cast<size_t>(decision_level())];
      if (value(p).is_true()) {
        new_decision_level();  // dummy level: assumption already implied
      } else if (value(p).is_false()) {
        analyze_final(~p, core_);
        return kFalse;
      } else {
        next = p;
        break;
      }
    }
    if (next == kLitUndef) {
      ++stats_.decisions;
      next = pick_branch_lit();
      if (next == kLitUndef) return kTrue;  // all variables assigned: model
    }
    new_decision_level();
    unchecked_enqueue(next);
  }
}

double Solver::luby(double y, int i) {
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

LBool Solver::solve(std::span<const Lit> assumptions) {
  if (!ledger::enabled()) return solve_impl(assumptions);
  // Ledger path: time the solve and append one record with the stat deltas.
  const Timer wall;
  const double cpu0 = ledger::thread_cpu_seconds();
  const uint64_t conflicts0 = stats_.conflicts;
  const uint64_t decisions0 = stats_.decisions;
  const uint64_t propagations0 = stats_.propagations;
  const LBool status = solve_impl(assumptions);
  ledger::Record r;
  r.kind = ledger::Kind::kSolve;
  r.wall_seconds = wall.seconds();
  r.cpu_seconds = ledger::thread_cpu_seconds() - cpu0;
  r.conflicts = stats_.conflicts - conflicts0;
  r.decisions = stats_.decisions - decisions0;
  r.propagations = stats_.propagations - propagations0;
  r.vars = static_cast<uint32_t>(num_vars());
  r.clauses = static_cast<uint32_t>(clauses_.size());
  r.result = status.is_true()    ? ledger::QueryResult::kSat
             : status.is_false() ? ledger::QueryResult::kUnsat
                                 : ledger::QueryResult::kUndef;
  if (status.is_undef()) {
    if (cancel_hit_) {
      switch (cancel_.reason()) {
        case CancelReason::kStopped: r.cancel = ledger::CancelCause::kStopped; break;
        case CancelReason::kMemory: r.cancel = ledger::CancelCause::kMemory; break;
        default: r.cancel = ledger::CancelCause::kDeadline; break;
      }
    } else if (deadline_expired_) {
      r.cancel = ledger::CancelCause::kDeadline;
    } else {
      r.cancel = ledger::CancelCause::kBudget;
    }
  }
  ledger::append(r);
  return status;
}

LBool Solver::solve_impl(std::span<const Lit> assumptions) {
  ++stats_.solves;
  model_.clear();
  core_.clear();
  std::fill(in_core_mark_.begin(), in_core_mark_.end(), 0);
  par_attempted_ = false;
  par_failed_rounds_ = 0;
  par_retry_at_ = 0;
  solve_timer_.reset();
  if (!ok_) return kFalse;
  // Fault site: pretend the budget was exhausted before any search ran.
  if (ECO_FAULT_POINT(fault::Site::kSatBudget)) return kUndef;

  // Assumption-prefix trail reuse: decision level i (1-based) was opened for
  // assumption i-1 (as a real decision or a dummy level), so the trail below
  // the longest common prefix of the previous and current assumption vectors
  // — those decisions plus everything propagation derived from them — is
  // still exactly what this call would recompute. Keep it. add_clause
  // cancels to level 0, so a retained level is never stale w.r.t. the
  // clause database.
  int keep = 0;
  if (opts_.trail_reuse) {
    const size_t max_keep = std::min({static_cast<size_t>(decision_level()),
                                      assumptions_.size(), assumptions.size()});
    while (static_cast<size_t>(keep) < max_keep &&
           assumptions_[static_cast<size_t>(keep)] == assumptions[static_cast<size_t>(keep)])
      ++keep;
  }
  cancel_until(keep);
  if (keep > 0) {
    stats_.prefix_reused_levels += static_cast<uint64_t>(keep);
    stats_.propagations_saved +=
        trail_.size() - static_cast<size_t>(trail_lim_[0]);
  }

  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_at_solve_start_ = stats_.conflicts;
  propagations_at_solve_start_ = stats_.propagations;

  LBool status = kUndef;
  for (int restarts = 0; status.is_undef(); ++restarts) {
    if (restarts > 0 && restart_hook_ != nullptr) {
      // Clause publish/import point for parallel worker clones. Imports go
      // through add_clause, which may discover top-level UNSAT.
      restart_hook_(restart_hook_ctx_, *this);
      if (!ok_) {
        core_.clear();
        status = kFalse;
        break;
      }
    }
    if (par_allowed_ && !par_attempted_) {
      // Hand a long-running solve to the parallel layer (no-op unless it is
      // enabled, an executor is registered, and the trigger was crossed).
      // On escalation the layer installs model_/core_ itself, so the normal
      // conversion tail below must be skipped.
      if (auto par = maybe_escalate_par(*this)) {
        if (!opts_.trail_reuse) {
          cancel_until(0);
          assumptions_.clear();
        }
        return *par;
      }
    }
    int64_t segment = -1;  // EMA: search() decides internally
    if (opts_.restart == RestartPolicy::kLuby)
      segment = static_cast<int64_t>(luby(2.0, restarts) * 100.0);
    status = search(segment);
    if (status.is_undef() && !within_budget()) break;
    if (status.is_undef()) ++stats_.restarts;
  }

  if (status.is_true()) {
    model_.assign(assigns_.begin(), assigns_.end());
  } else if (status.is_false()) {
    // Convert the final conflict (negated assumptions) into core literals in
    // their assumed polarity.
    LitVec as_assumed;
    as_assumed.reserve(core_.size());
    for (const Lit l : core_) {
      as_assumed.push_back(~l);
      in_core_mark_[static_cast<size_t>(l.var())] = 1;
    }
    core_ = std::move(as_assumed);
  }
  if (!opts_.trail_reuse) {
    cancel_until(0);
    assumptions_.clear();
  }
  // With trail reuse the trail and assumptions_ are retained: the next
  // solve() computes its reusable prefix from them.
  return status;
}

bool Solver::model_value(Lit l) const {
  const auto v = static_cast<size_t>(l.var());
  if (v >= model_.size() || model_[v].is_undef()) return l.sign();
  return model_[v].is_true() != l.sign();
}

bool Solver::in_core(Lit l) const {
  const auto v = static_cast<size_t>(l.var());
  if (v >= in_core_mark_.size() || !in_core_mark_[v]) return false;
  for (const Lit c : core_)
    if (c == l) return true;
  return false;
}

void Solver::set_polarity(Var v, bool negated_first) {
  polarity_[static_cast<size_t>(v)] = negated_first ? 1 : 0;
}

LBool Solver::fixed_value(Var v) const {
  if (value(v).is_undef()) return kUndef;
  if (level(v) != 0) return kUndef;
  return value(v);
}

}  // namespace eco::sat
