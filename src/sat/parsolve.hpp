/// \file parsolve.hpp
/// \brief Intra-query parallel SAT: diversified portfolio racing and
/// cube-and-conquer for solves that cross a "stuck" threshold.
///
/// The bench sweep parallelizes *across* queries, but one hard QBF-expansion
/// or SAT_prune query still burns a single core while the rest of the
/// Executor idles. This layer hooks `Solver::solve_impl` at restart
/// boundaries: once a solve has spent more than a trigger's worth of
/// conflicts (or, in racy mode, wall time), the solve escalates —
///
///  - **portfolio**: K diversified clones of the instance (seed, restart
///    policy, phase init, local-cap base) race on the registered Executor;
///    the winner's model / UNSAT core is installed on the parent solver and
///    the siblings are cancelled through per-clone `CancelToken::child`
///    tokens.
///  - **cube-and-conquer**: a small cube set is picked by occurrence-based
///    lookahead scoring over the instance's variables (branches ordered by
///    the saved phases, which circuit-aware phase seeding biases once it
///    lands); the 2^k sub-instances are solved as Executor tasks and their
///    results combined — any SAT branch yields a model, all-UNSAT yields the
///    union of the branch cores restricted to the original assumptions.
///
/// Because the hook sits inside the `Solver::solve` chokepoint, every
/// consumer (support, resub, irredundancy, QBF-CEGAR, CEC) benefits without
/// call-site changes.
///
/// Clones are *warm*: they inherit the parent's saved phases, VSIDS
/// activities, and core- + tier2-tier learnts (learnts are derived by
/// resolution over the clause database alone, never from assumptions, so
/// they transfer soundly as originals). A cold clone would have to
/// re-derive the parent's lemmas from scratch and reliably loses the race
/// it is meant to win.
///
/// **Determinism contract.** The default mode (`--par-sat=on`,
/// `ParMode::kDeterministic`) is a pure function of the instance and the
/// options: reproducible run-to-run and for any `--jobs >= 2`. The
/// escalation decision depends only on solver state (conflict counts,
/// never pool occupancy), worker budgets are fixed conflict slices, clause
/// sharing is disabled, and the winner is picked by a fixed tie-break —
/// the lowest clone rank with a definitive result, considered only once
/// every lower rank has completed. Escalated verdicts are always *valid*
/// but not necessarily *identical* to what a `--jobs 1` / `--par-sat off`
/// run would produce: an adopted model (or budget verdict, below) can
/// steer downstream heuristics onto a different — equally correct and
/// verified — patch. Unbudgeted solves are *never worse* than serial in
/// outcome: if no worker is definitive the parent resumes its own search,
/// re-arming the trigger with a geometrically growing slice (4x per failed
/// round, capped) so a genuinely stuck solve ends up racing most of its
/// wall time while a solve that finishes anyway wastes at most a constant
/// factor in speculation. Budgeted solves let the workers spend the
/// remaining conflict budget by proxy (combined worker slices equal the
/// remainder) — the budget is burned K-ways in parallel, so a
/// budget-saturated query reaches its verdict in roughly 1/K the wall
/// time — and an all-undef race is adopted as the budget verdict.
/// `--par-sat=racy` (`ParMode::kRacy`) drops the contract for speed:
/// first definitive finisher wins, a wall-clock trigger is honored, workers
/// are admitted only when `Executor::try_reserve` grants slots, and core
/// learnt clauses (LBD <= share_lbd_cut) flow between clones through a
/// bounded exchange drained at restart boundaries.
///
/// Observability: `parsat.*` telemetry counters, `par_*` fields in the
/// solver rollup, and per-worker `portfolio_attempt` / `cube_solve` ledger
/// records (docs/OBSERVABILITY.md). Tuning and the full contract:
/// docs/PARALLEL_SAT.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "sat/types.hpp"

namespace eco::util {
class Executor;
}

namespace eco::sat {

class Solver;

/// The --par-sat flag: off | on (deterministic) | racy.
enum class ParMode : uint8_t {
  kOff = 0,
  kDeterministic,  ///< fixed tie-break winner, reproducible for any --jobs
  kRacy,           ///< first finisher wins, clause sharing, wall trigger
};
const char* par_mode_name(ParMode m) noexcept;

/// Escalation strategy. kAuto currently resolves to the portfolio (safe for
/// both SAT and UNSAT outcomes); cube-and-conquer is opt-in per workload.
enum class ParStrategy : uint8_t {
  kAuto = 0,
  kPortfolio,
  kCube,
};
const char* par_strategy_name(ParStrategy s) noexcept;

/// Tuning knobs for the parallel layer. Process-wide, like SolverOptions:
/// `defaults()` is env-seeded on first use (`ECO_PAR_SAT=off|on|racy`,
/// `ECO_PAR_SAT_STRATEGY=auto|portfolio|cube`, `ECO_PAR_SAT_CLONES`,
/// `ECO_PAR_SAT_TRIGGER`, `ECO_PAR_SAT_CUBE_VARS`) and replaceable via
/// `set_defaults` (bench/CLI `--par-sat`).
struct ParSolveOptions {
  ParMode mode = ParMode::kOff;
  ParStrategy strategy = ParStrategy::kAuto;

  /// Portfolio width / cube worker fan-out (clamped to [2, 32]).
  int clones = 4;

  /// Conflicts inside one solve before it escalates. <= 0 escalates at the
  /// first restart boundary (test use). A budgeted solve clamps this to
  /// half its conflict budget so the workers still have budget to spend.
  /// The default is deliberately high: a solve this deep is in the hard
  /// tail (typical ECO queries finish orders of magnitude earlier), and
  /// escalating solves that would finish anyway only burns speculative CPU.
  int64_t trigger_conflicts = 100000;

  /// Racy mode only: also escalate once a solve has run this long
  /// (seconds; <= 0 disables the wall trigger).
  double trigger_wall_seconds = 0;

  /// Cube-and-conquer splits on 2^cube_vars branches (clamped to [1, 6]).
  int cube_vars = 3;

  /// Racy clause exchange: share learnt clauses with LBD <= this cut
  /// (and <= 8 literals). 0 disables sharing. Deterministic mode never
  /// shares (imports would make worker slice outcomes timing-dependent).
  uint32_t share_lbd_cut = 2;

  /// Total clauses the per-escalation exchange accepts (bounded memory).
  size_t exchange_capacity = 256;

  /// Base seed for clone diversification (decorrelated per rank).
  uint64_t seed = 0x9e3779b97f4a7c15ULL;

  static const ParSolveOptions& defaults() noexcept;
  static void set_defaults(const ParSolveOptions& opts) noexcept;
};

/// Parses a --par-sat flag value ("off" | "on" | "racy"). Returns false
/// (and leaves \p out untouched) on anything else.
bool parse_par_mode(std::string_view text, ParMode& out) noexcept;

/// Registers the executor escalations run on (nullptr unregisters). The
/// executor must outlive every solve issued while it is registered; front
/// ends register their pool right after constructing it. Without a
/// registered executor (or with jobs() <= 1) the layer is inert.
void set_par_executor(util::Executor* executor) noexcept;
util::Executor* par_executor() noexcept;

/// Called by Solver::solve_impl at restart boundaries. Returns nullopt to
/// continue the serial search (not triggered, disabled, saturated, or the
/// never-worse resume after an inconclusive race); otherwise the escalated
/// verdict, with model_/core_ already installed on \p solver.
std::optional<LBool> maybe_escalate_par(Solver& solver);

}  // namespace eco::sat
