#include "sat/parsolve.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "sat/solver.hpp"
#include "util/executor.hpp"
#include "util/ledger.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::sat {

// ---------------------------------------------------------------------------
// Options: process-wide, env-seeded defaults (the SolverOptions pattern)
// ---------------------------------------------------------------------------

const char* par_mode_name(ParMode m) noexcept {
  switch (m) {
    case ParMode::kOff: return "off";
    case ParMode::kDeterministic: return "on";
    case ParMode::kRacy: return "racy";
  }
  return "off";
}

const char* par_strategy_name(ParStrategy s) noexcept {
  switch (s) {
    case ParStrategy::kAuto: return "auto";
    case ParStrategy::kPortfolio: return "portfolio";
    case ParStrategy::kCube: return "cube";
  }
  return "auto";
}

bool parse_par_mode(std::string_view text, ParMode& out) noexcept {
  if (text == "off") {
    out = ParMode::kOff;
  } else if (text == "on") {
    out = ParMode::kDeterministic;
  } else if (text == "racy") {
    out = ParMode::kRacy;
  } else {
    return false;
  }
  return true;
}

namespace {

long env_long(const char* name, long lo, long hi, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < lo || n > hi) return fallback;
  return n;
}

ParSolveOptions env_seeded_par_defaults() {
  ParSolveOptions o;
  if (const char* v = std::getenv("ECO_PAR_SAT")) {
    ParMode m;
    if (parse_par_mode(v, m)) o.mode = m;
  }
  if (const char* v = std::getenv("ECO_PAR_SAT_STRATEGY")) {
    const std::string_view s(v);
    if (s == "portfolio")
      o.strategy = ParStrategy::kPortfolio;
    else if (s == "cube")
      o.strategy = ParStrategy::kCube;
    else if (s == "auto")
      o.strategy = ParStrategy::kAuto;
  }
  o.clones = static_cast<int>(env_long("ECO_PAR_SAT_CLONES", 2, 32, o.clones));
  o.trigger_conflicts = env_long("ECO_PAR_SAT_TRIGGER", 0, 1L << 40,
                                 static_cast<long>(o.trigger_conflicts));
  o.cube_vars = static_cast<int>(env_long("ECO_PAR_SAT_CUBE_VARS", 1, 6, o.cube_vars));
  return o;
}

ParSolveOptions& mutable_par_defaults() {
  static ParSolveOptions o = env_seeded_par_defaults();
  return o;
}

std::atomic<util::Executor*> g_par_executor{nullptr};

}  // namespace

const ParSolveOptions& ParSolveOptions::defaults() noexcept { return mutable_par_defaults(); }

void ParSolveOptions::set_defaults(const ParSolveOptions& opts) noexcept {
  mutable_par_defaults() = opts;
}

void set_par_executor(util::Executor* executor) noexcept {
  g_par_executor.store(executor, std::memory_order_release);
}

util::Executor* par_executor() noexcept {
  return g_par_executor.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// ParSolveAccess: the only code with friend access to Solver internals
// ---------------------------------------------------------------------------

struct ParSolveAccess {
  static int64_t conflicts_since_start(const Solver& s) noexcept {
    return static_cast<int64_t>(s.stats_.conflicts - s.conflicts_at_solve_start_);
  }
  static int64_t conflict_budget(const Solver& s) noexcept { return s.conflict_budget_; }
  /// Remaining conflict budget of the running solve; -1 when unbudgeted.
  static int64_t remaining_conflicts(const Solver& s) noexcept {
    if (s.conflict_budget_ < 0) return -1;
    return std::max<int64_t>(0, s.conflict_budget_ - conflicts_since_start(s));
  }
  static int64_t trigger_override(const Solver& s) noexcept { return s.par_trigger_override_; }
  static double solve_elapsed(const Solver& s) noexcept { return s.solve_timer_.seconds(); }
  static const LitVec& assumptions(const Solver& s) noexcept { return s.assumptions_; }
  static const CancelToken& cancel(const Solver& s) noexcept { return s.cancel_; }
  static const Deadline& deadline(const Solver& s) noexcept { return s.deadline_; }
  static void mark_attempted(Solver& s) noexcept { s.par_attempted_ = true; }
  static int failed_rounds(const Solver& s) noexcept { return s.par_failed_rounds_; }
  static int64_t retry_at(const Solver& s) noexcept { return s.par_retry_at_; }
  /// Books an inconclusive unbudgeted race: the parent searches serially
  /// until \p retry_at conflicts, then races again with a bigger slice.
  static void note_failed_round(Solver& s, int64_t retry_at) noexcept {
    ++s.par_failed_rounds_;
    s.par_retry_at_ = retry_at;
  }
  static SolverStats& stats(Solver& s) noexcept { return s.stats_; }
  static uint32_t num_clauses(const Solver& s) noexcept {
    return static_cast<uint32_t>(s.clauses_.size());
  }

  /// Runs the private solve (no ledger kSolve record — the escalation emits
  /// its own portfolio_attempt / cube_solve records instead).
  static LBool solve_quiet(Solver& s, std::span<const Lit> a) { return s.solve_impl(a); }

  static std::vector<LBool> take_model(Solver& s) { return std::move(s.model_); }

  static void set_export(Solver& s, uint32_t lbd_cut, uint32_t max_pending) {
    s.export_lbd_cut_ = lbd_cut;
    s.export_max_ = max_pending;
  }
  static std::vector<LitVec> take_exports(Solver& s) {
    std::vector<LitVec> out = std::move(s.export_pending_);
    s.export_pending_.clear();
    return out;
  }
  static void set_restart_hook(Solver& s, void (*fn)(void*, Solver&), void* ctx) noexcept {
    s.restart_hook_ = fn;
    s.restart_hook_ctx_ = ctx;
  }

  static void install_sat(Solver& parent, std::vector<LBool> model) {
    parent.model_ = std::move(model);
    parent.model_.resize(static_cast<size_t>(parent.num_vars()), kUndef);
  }
  static void install_unsat(Solver& parent, LitVec core_assumed) {
    parent.core_ = std::move(core_assumed);
    for (const Lit l : parent.core_)
      parent.in_core_mark_[static_cast<size_t>(l.var())] = 1;
  }
  static void note_cancelled(Solver& parent, bool cancel_hit, bool deadline_expired) noexcept {
    if (cancel_hit) parent.cancel_hit_ = true;
    if (deadline_expired) parent.deadline_expired_ = true;
  }
  static bool cancel_hit(const Solver& s) noexcept { return s.cancel_hit_; }
  static bool deadline_expired(const Solver& s) noexcept { return s.deadline_expired_; }

  /// A fresh solver holding the same instance: variables (with decision
  /// flags and saved phases), level-0 facts, problem clauses, and — as a
  /// warm start — the parent's VSIDS activities plus its core- and
  /// tier2-tier learnts. Learnts are derived by resolution over the clause
  /// database alone (never from assumptions), so they transfer as
  /// originals; without them a clone re-derives ~trigger's worth of lemmas
  /// from scratch and loses the race to the warm parent it is meant to
  /// beat. Tier2 transfer is capped so a long-running parent's database
  /// cannot make clone setup quadratic.
  static std::unique_ptr<Solver> clone(Solver& src, const SolverOptions& opts) {
    auto dst = std::make_unique<Solver>(opts);
    dst->par_allowed_ = false;  // escalation never recurses
    const int n = src.num_vars();
    for (Var v = 0; v < n; ++v)
      dst->new_var(src.decision_[static_cast<size_t>(v)] != 0,
                   src.polarity_[static_cast<size_t>(v)] != 0);
    for (Var v = 0; v < n; ++v) {
      dst->activity_[static_cast<size_t>(v)] = src.activity_[static_cast<size_t>(v)];
      dst->order_heap_.update(v, dst->activity_);
    }
    // Unit clauses never enter the arena (add_clause enqueues them
    // directly), so the level-0 trail segment is replayed as units.
    const size_t lvl0 = src.trail_lim_.empty() ? src.trail_.size()
                                               : static_cast<size_t>(src.trail_lim_[0]);
    for (size_t i = 0; i < lvl0 && dst->okay(); ++i) dst->add_unit(src.trail_[i]);
    for (const CRef ref : src.clauses_) {
      if (!dst->okay()) break;
      dst->add_clause(src.clause(ref).lits());
    }
    for (const CRef ref : src.learnts_core_) {
      if (!dst->okay()) break;
      auto c = src.clause(ref);
      if (c.header().tier != Solver::kTierCore) continue;  // stale list entry
      dst->add_clause(c.lits());
    }
    size_t tier2_left = 30000;
    for (const CRef ref : src.learnts_tier2_) {
      if (!dst->okay() || tier2_left == 0) break;
      auto c = src.clause(ref);
      if (c.header().tier != Solver::kTierTier2) continue;  // stale list entry
      dst->add_clause(c.lits());
      --tier2_left;
    }
    return dst;
  }

  /// Rank-seeded search perturbation: flip a fraction of the saved phases
  /// and jitter the VSIDS tie-break order. Deterministic per (seed, rank).
  static void diversify(Solver& s, uint64_t seed) {
    Rng rng(SplitMix64::mix(seed));
    const int n = s.num_vars();
    for (Var v = 0; v < n; ++v) {
      if (rng.chance(1, 5)) s.polarity_[static_cast<size_t>(v)] ^= 1;
      s.activity_[static_cast<size_t>(v)] = rng.uniform() * 1e-3;
      s.order_heap_.update(v, s.activity_);  // no-op for non-decision vars
    }
  }

  /// Occurrence-based lookahead scoring: split on decision variables that
  /// are frequent and polarity-balanced (score pos*neg), skipping fixed and
  /// assumed variables. Ties break toward the lowest index (determinism).
  static std::vector<Var> pick_cube_vars(Solver& s, int k, const LitVec& assumed) {
    const auto n = static_cast<size_t>(s.num_vars());
    std::vector<uint32_t> pos(n, 0), neg(n, 0);
    for (const CRef ref : s.clauses_) {
      auto c = s.clause(ref);
      for (const Lit l : c.lits())
        ++(l.sign() ? neg : pos)[static_cast<size_t>(l.var())];
    }
    std::vector<uint8_t> blocked(n, 0);
    for (const Lit l : assumed) blocked[static_cast<size_t>(l.var())] = 1;
    std::vector<std::pair<uint64_t, Var>> scored;
    for (Var v = 0; v < static_cast<Var>(n); ++v) {
      const auto i = static_cast<size_t>(v);
      if (blocked[i] || s.decision_[i] == 0 || !s.fixed_value(v).is_undef()) continue;
      const uint64_t score = static_cast<uint64_t>(pos[i]) * neg[i];
      if (score > 0) scored.emplace_back(score, v);
    }
    const size_t want = std::min(scored.size(), static_cast<size_t>(k));
    std::partial_sort(scored.begin(), scored.begin() + static_cast<ptrdiff_t>(want),
                      scored.end(), [](const auto& a, const auto& b) {
                        return a.first != b.first ? a.first > b.first : a.second < b.second;
                      });
    std::vector<Var> out;
    out.reserve(want);
    for (size_t i = 0; i < want; ++i) out.push_back(scored[i].second);
    return out;
  }

  /// The preferred literal of \p v per the saved phase (polarity 1 ==
  /// "assign false first"). Branch 0 of a cube follows all preferences.
  static Lit preferred_lit(const Solver& s, Var v) noexcept {
    return mk_lit(v, s.polarity_[static_cast<size_t>(v)] != 0);
  }
};

// ---------------------------------------------------------------------------
// Clause exchange (racy mode): bounded, lock-light, best-effort
// ---------------------------------------------------------------------------

namespace {

/// One escalation's shared clause store. Publishers and importers go through
/// a single try-lock round per restart: on contention the round is simply
/// skipped (sharing is best-effort), so no clone ever blocks on a sibling.
/// Entries are append-only and capped; per-clone cursors make every accepted
/// clause reach each sibling exactly once (a publisher's cursor skips its
/// own batch).
class ClauseExchange {
 public:
  explicit ClauseExchange(size_t capacity) : capacity_(capacity) {}

  /// Imports everything published since \p cursor into \p incoming, then
  /// publishes \p outgoing (up to capacity) and advances \p cursor past it.
  void round(size_t& cursor, std::vector<LitVec>& outgoing,
             std::vector<LitVec>& incoming) {
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) return;  // contended: retry next restart
    for (; cursor < clauses_.size(); ++cursor) incoming.push_back(clauses_[cursor]);
    for (auto& c : outgoing)
      if (clauses_.size() < capacity_) clauses_.push_back(std::move(c));
    cursor = clauses_.size();
    outgoing.clear();
  }

 private:
  std::mutex mu_;
  std::vector<LitVec> clauses_;
  size_t capacity_;
};

// ---------------------------------------------------------------------------
// The race
// ---------------------------------------------------------------------------

struct CloneResult {
  LBool status = kUndef;
  std::vector<LBool> model;  // status kTrue
  LitVec core;               // status kFalse, literals in assumed polarity
  CancelReason cancel = CancelReason::kNone;
  bool deadline_expired = false;
  uint64_t conflicts = 0, decisions = 0, propagations = 0;
  uint32_t vars = 0, clauses = 0, imported = 0;
  double wall = 0, cpu = 0;
  bool done = false;
};

/// Per-clone restart-hook context (racy clause exchange).
struct HookCtx {
  ClauseExchange* exchange = nullptr;
  size_t cursor = 0;
  uint32_t imported = 0;
  std::vector<LitVec> outgoing_spill;  // kept across contended rounds
  std::vector<LitVec> incoming;
};

struct Race {
  // Fixed after setup (coordinator), read-only during the race.
  int num = 0;       ///< ranks: portfolio clones or cube branches
  bool racy = false;
  bool cube = false;
  LitVec base_assumptions;
  std::vector<LitVec> extra_assumptions;  ///< per-rank cube suffix
  std::vector<CancelToken> tokens;
  telemetry::SolverTotalsAccumulator* capture = nullptr;
  std::unique_ptr<ClauseExchange> exchange;
  std::vector<HookCtx> hooks;

  // Claimed through the atomic; each solver is touched by exactly one
  // thread (its claimer), which also destroys it — no cross-thread reads.
  std::atomic<int> next{0};
  std::vector<std::unique_ptr<Solver>> solvers;

  // Guarded by mu.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<CloneResult> results;
  int done_count = 0;
  int winner = -1;  ///< fixed once decided; -1 while (or forever) undecided

  /// True when \p status settles the race for rank \p r: any definitive
  /// result for a portfolio, a model for a cube split (an UNSAT branch only
  /// contributes to the all-UNSAT union).
  bool qualifies(const LBool& status) const noexcept {
    return status.is_true() || (!cube && status.is_false());
  }

  /// Called under mu when rank \p r completes. Deterministic mode fixes the
  /// winner as the lowest qualifying rank once every lower rank is done —
  /// a timing-independent tie-break; racy mode takes the first qualifier.
  void on_done_locked() {
    if (winner >= 0) return;
    if (racy) {
      for (int r = 0; r < num; ++r)
        if (results[static_cast<size_t>(r)].done &&
            qualifies(results[static_cast<size_t>(r)].status)) {
          winner = r;
          break;
        }
    } else {
      for (int r = 0; r < num; ++r) {
        const auto& res = results[static_cast<size_t>(r)];
        if (!res.done) return;  // a lower rank is pending: undecided
        if (qualifies(res.status)) {
          winner = r;
          break;
        }
      }
    }
    if (winner >= 0) {
      // The outcome is fixed: stop every other worker. Stopping a child
      // token never propagates to the parent solve's token.
      for (int r = 0; r < num; ++r)
        if (r != winner) tokens[static_cast<size_t>(r)].request_stop();
    }
  }
};

void exchange_restart_hook(void* ctx, Solver& s) {
  auto* h = static_cast<HookCtx*>(ctx);
  auto exported = ParSolveAccess::take_exports(s);
  for (auto& c : exported) h->outgoing_spill.push_back(std::move(c));
  h->incoming.clear();
  h->exchange->round(h->cursor, h->outgoing_spill, h->incoming);
  for (const auto& c : h->incoming) {
    if (!s.okay()) break;  // imported clause exposed top-level UNSAT
    s.add_clause(c);
    ++h->imported;
  }
}

/// Runs one rank on the calling thread: solve, snapshot the result, destroy
/// the clone (inside the claimer's telemetry capture), then publish under
/// the race mutex.
void run_rank(Race& race, int r) {
  const auto idx = static_cast<size_t>(r);
  CloneResult out;
  bool skip;
  {
    std::lock_guard<std::mutex> lock(race.mu);
    skip = race.winner >= 0;  // outcome already fixed: don't even start
  }
  {
    Solver& s = *race.solvers[idx];
    out.vars = static_cast<uint32_t>(s.num_vars());
    out.clauses = ParSolveAccess::num_clauses(s);
    const Timer wall;
    const double cpu0 = ledger::thread_cpu_seconds();
    if (!skip) {
      LitVec a = race.base_assumptions;
      const LitVec& extra = race.extra_assumptions[idx];
      a.insert(a.end(), extra.begin(), extra.end());
      out.status = ParSolveAccess::solve_quiet(s, a);
    }
    out.wall = wall.seconds();
    out.cpu = ledger::thread_cpu_seconds() - cpu0;
    const SolverStats& st = s.stats();
    out.conflicts = st.conflicts;
    out.decisions = st.decisions;
    out.propagations = st.propagations;
    if (out.status.is_true()) out.model = ParSolveAccess::take_model(s);
    if (out.status.is_false()) out.core = s.core();
    if (out.status.is_undef()) {
      out.cancel = race.tokens[idx].reason();
      if (!skip) out.deadline_expired = ParSolveAccess::deadline_expired(s);
    }
    if (!race.hooks.empty()) out.imported = race.hooks[idx].imported;
  }
  race.solvers[idx].reset();
  {
    std::lock_guard<std::mutex> lock(race.mu);
    race.results[idx] = std::move(out);
    race.results[idx].done = true;
    race.on_done_locked();
    ++race.done_count;
  }
  race.cv.notify_all();
}

/// Claim loop: pulls unclaimed ranks until the race is exhausted. Runs on
/// helper tasks and on the coordinator itself — the coordinator never waits
/// on work nobody is executing, and helpers never touch foreign queue items
/// (unlike a helping wait, which could pull an unrelated sweep task and run
/// it inline under the solve).
void claim_ranks(const std::shared_ptr<Race>& race) {
  std::optional<telemetry::ScopedSolverCapture> capture;
  if (race->capture != nullptr) capture.emplace(*race->capture);
  for (;;) {
    const int r = race->next.fetch_add(1, std::memory_order_relaxed);
    if (r >= race->num) break;
    run_rank(*race, r);
  }
}

/// Map a worker result into a ledger record and append it (coordinator
/// thread: the parent solve's ScopedPurpose tags it).
void append_worker_record(const Race& race, int rank, bool is_winner) {
  const auto& res = race.results[static_cast<size_t>(rank)];
  ledger::Record r;
  r.kind = race.cube ? ledger::Kind::kCubeSolve : ledger::Kind::kPortfolioAttempt;
  r.wall_seconds = res.wall;
  r.cpu_seconds = res.cpu;
  r.conflicts = res.conflicts;
  r.decisions = res.decisions;
  r.propagations = res.propagations;
  r.vars = res.vars;
  r.clauses = res.clauses;
  r.par_rank = static_cast<uint16_t>(rank);
  r.par_winner = is_winner ? 1 : 0;
  r.par_imported = res.imported;
  r.result = res.status.is_true()    ? ledger::QueryResult::kSat
             : res.status.is_false() ? ledger::QueryResult::kUnsat
                                     : ledger::QueryResult::kUndef;
  if (res.status.is_undef()) {
    switch (res.cancel) {
      case CancelReason::kStopped: r.cancel = ledger::CancelCause::kStopped; break;
      case CancelReason::kMemory: r.cancel = ledger::CancelCause::kMemory; break;
      case CancelReason::kDeadline: r.cancel = ledger::CancelCause::kDeadline; break;
      case CancelReason::kNone:
        r.cancel = res.deadline_expired ? ledger::CancelCause::kDeadline
                                        : ledger::CancelCause::kBudget;
        break;
    }
  }
  ledger::append(r);
}

/// Diversified per-rank solver configuration (rank 0 keeps the parent's).
SolverOptions diversified_options(const SolverOptions& base, int rank) {
  SolverOptions o = base;
  if (rank == 0) return o;
  if (rank % 2 == 1)
    o.restart = base.restart == RestartPolicy::kLuby ? RestartPolicy::kEma
                                                     : RestartPolicy::kLuby;
  static constexpr uint32_t kCaps[3] = {1000, 2000, 4000};
  o.local_cap_base = kCaps[rank % 3];
  if (rank % 4 == 3) o.tier2_lbd_cut = base.tier2_lbd_cut + 2;
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// Escalation entry point
// ---------------------------------------------------------------------------

std::optional<LBool> maybe_escalate_par(Solver& parent) {
  const ParSolveOptions& o = ParSolveOptions::defaults();
  if (o.mode == ParMode::kOff) return std::nullopt;
  util::Executor* ex = par_executor();
  if (ex == nullptr || ex->jobs() <= 1) return std::nullopt;

  // Trigger: per-solver override beats the process default; a budgeted
  // solve escalates by half its budget at the latest, so the workers still
  // have budget to spend by proxy.
  const int64_t override_trigger = ParSolveAccess::trigger_override(parent);
  if (override_trigger < 0) return std::nullopt;
  int64_t trigger = override_trigger > 0 ? override_trigger : o.trigger_conflicts;
  const int64_t total_budget = ParSolveAccess::conflict_budget(parent);
  if (total_budget >= 0)
    trigger = std::min(trigger, std::max<int64_t>(total_budget / 2, 2000));

  const bool racy = o.mode == ParMode::kRacy;
  const int64_t gate = std::max(trigger, ParSolveAccess::retry_at(parent));
  bool crossed = ParSolveAccess::conflicts_since_start(parent) >= gate;
  if (!crossed && racy && o.trigger_wall_seconds > 0 &&
      ParSolveAccess::failed_rounds(parent) == 0)
    crossed = ParSolveAccess::solve_elapsed(parent) >= o.trigger_wall_seconds;
  if (!crossed) return std::nullopt;

  const int64_t remaining = ParSolveAccess::remaining_conflicts(parent);
  if (remaining >= 0 && remaining < 4000) {
    // Nearly exhausted: clone setup would cost more than the leftover
    // budget could buy. Let the serial search spend the remainder.
    ParSolveAccess::mark_attempted(parent);
    return std::nullopt;
  }

  int width = std::clamp(o.clones, 2, 32);
  int reserved = 0;
  if (racy) {
    // Racy mode is polite: it only fans out into slots the sweep is not
    // using. Deterministic mode must not consult occupancy (the verdict
    // would depend on sweep timing) — its helpers just queue behind the
    // sweep and the coordinator claims every rank itself if need be.
    reserved = ex->try_reserve(width - 1);
    if (reserved == 0) {
      ECO_TELEMETRY_COUNT("parsat.saturated");
      return std::nullopt;  // not marked attempted: retry at a later restart
    }
    width = reserved + 1;
  }

  ParStrategy strategy = o.strategy;
  if (strategy == ParStrategy::kAuto) strategy = ParStrategy::kPortfolio;

  auto race = std::make_shared<Race>();
  race->racy = racy;
  race->base_assumptions = ParSolveAccess::assumptions(parent);

  std::vector<Var> cube_vars;
  if (strategy == ParStrategy::kCube) {
    const int k = std::clamp(o.cube_vars, 1, 6);
    cube_vars = ParSolveAccess::pick_cube_vars(parent, k, race->base_assumptions);
    if (cube_vars.empty()) strategy = ParStrategy::kPortfolio;  // nothing to split on
  }
  race->cube = strategy == ParStrategy::kCube;
  race->num = race->cube ? (1 << cube_vars.size()) : width;

  // Per-worker conflict slices. Budgeted: split the remainder (spent by
  // proxy — an all-undef race is adopted as the budget verdict). Unbudgeted:
  // a probe slice starting at 2x the trigger and growing 4x per failed
  // round — a failed race costs about as much as the parent had already
  // spent, and the geometric growth means the total speculative work of a
  // never-winning solve stays within a constant factor of its serial work
  // while a genuinely stuck solve ends up racing most of its wall time. If
  // nobody is definitive the parent resumes its own search, so escalation
  // is never worse than serial in outcome.
  int64_t slice;
  if (remaining >= 0) {
    slice = std::max<int64_t>(remaining / race->num, 1000);
  } else {
    const int shift = std::min(2 * ParSolveAccess::failed_rounds(parent), 12);
    slice = std::min<int64_t>(
        std::max<int64_t>(2 * std::max<int64_t>(trigger, 1), 10000) << shift,
        2'000'000);
  }

  // A race must be worth its setup: every clone replays the whole clause
  // database, so on a large instance a thin per-worker slice costs more in
  // construction than the conflicts it buys (measured: 400k-clause resub
  // queries racing 6k-conflict slices decided nothing and regressed the
  // sweep). Clause count and budget state are solver state, so the gate is
  // deterministic; it is terminal because a budgeted remainder only
  // shrinks and an unbudgeted round-0 slice is a constant.
  if (slice < static_cast<int64_t>(ParSolveAccess::num_clauses(parent)) / 16) {
    ParSolveAccess::mark_attempted(parent);
    if (reserved > 0) ex->release(reserved);
    ECO_TELEMETRY_COUNT("parsat.declined_thin");
    return std::nullopt;
  }

  const CancelToken& parent_cancel = ParSolveAccess::cancel(parent);
  race->solvers.resize(static_cast<size_t>(race->num));
  race->tokens.resize(static_cast<size_t>(race->num));
  race->extra_assumptions.resize(static_cast<size_t>(race->num));
  race->results.resize(static_cast<size_t>(race->num));
  race->capture = telemetry::current_solver_capture();
  const bool share = racy && o.share_lbd_cut > 0;
  if (share) {
    race->exchange = std::make_unique<ClauseExchange>(o.exchange_capacity);
    race->hooks.resize(static_cast<size_t>(race->num));
  }

  for (int r = 0; r < race->num; ++r) {
    const auto idx = static_cast<size_t>(r);
    const SolverOptions opts = race->cube
                                   ? parent.options()
                                   : diversified_options(parent.options(), r);
    auto clone = ParSolveAccess::clone(parent, opts);
    if (!race->cube && r > 0)
      ParSolveAccess::diversify(*clone, o.seed ^ (static_cast<uint64_t>(r) << 17));
    if (race->cube) {
      // Branch r assigns cube var i its preferred phase iff bit i of r is
      // clear — branch 0 follows every saved phase (the simulation-biased
      // ordering once circuit-aware phase seeding feeds polarities).
      LitVec& extra = race->extra_assumptions[idx];
      for (size_t i = 0; i < cube_vars.size(); ++i)
        extra.push_back(ParSolveAccess::preferred_lit(parent, cube_vars[i]) ^
                        (((r >> i) & 1) != 0));
    }
    race->tokens[idx] =
        parent_cancel.valid() ? parent_cancel.child(0) : CancelToken::stoppable();
    clone->set_cancel(race->tokens[idx]);
    clone->set_deadline(ParSolveAccess::deadline(parent));
    clone->set_conflict_budget(slice);
    if (share) {
      race->hooks[idx].exchange = race->exchange.get();
      ParSolveAccess::set_export(*clone, o.share_lbd_cut,
                                 static_cast<uint32_t>(o.exchange_capacity));
      ParSolveAccess::set_restart_hook(*clone, &exchange_restart_hook,
                                       &race->hooks[idx]);
    }
    race->solvers[idx] = std::move(clone);
  }

  // Fan out: bounded helper tasks plus the coordinator, all claiming ranks
  // from the shared counter. Every claimed rank is executed by a live
  // thread and every rank gets claimed (the coordinator drains leftovers),
  // so the completion wait below is finite.
  const int helpers = std::min(width - 1, race->num - 1);
  for (int h = 0; h < helpers; ++h) ex->submit([race] { claim_ranks(race); });
  claim_ranks(race);
  {
    std::unique_lock<std::mutex> lock(race->mu);
    race->cv.wait(lock, [&] { return race->done_count == race->num; });
  }
  if (reserved > 0) ex->release(reserved);

  // ---- Aggregate --------------------------------------------------------
  const int winner = race->winner;
  uint64_t imported_total = 0;
  for (const auto& res : race->results) imported_total += res.imported;
  if (ledger::enabled())
    for (int r = 0; r < race->num; ++r) append_worker_record(*race, r, r == winner);

  SolverStats& pstats = ParSolveAccess::stats(parent);
  ++pstats.par_escalations;
  race->cube ? ++pstats.par_cube : ++pstats.par_portfolio;
  pstats.par_clauses_imported += imported_total;
  ECO_TELEMETRY_COUNT("parsat.escalations");
  ECO_TELEMETRY_COUNT(race->cube ? "parsat.cube" : "parsat.portfolio");
  if (imported_total > 0) ECO_TELEMETRY_COUNT("parsat.clauses_imported", imported_total);

  if (winner >= 0) {
    auto& res = race->results[static_cast<size_t>(winner)];
    ++pstats.par_wins;
    ECO_TELEMETRY_COUNT("parsat.wins");
    if (res.status.is_true()) {
      ParSolveAccess::install_sat(parent, std::move(res.model));
      return kTrue;
    }
    ParSolveAccess::install_unsat(parent, std::move(res.core));
    return kFalse;
  }

  if (race->cube) {
    // All branches done, none SAT. All-UNSAT composes: any assignment
    // matches exactly one cube branch, whose core (restricted to the
    // original assumptions; its cube literals are covered by the match)
    // blocks it — so the union of the restricted cores is a parent core.
    bool all_unsat = true;
    for (const auto& res : race->results) all_unsat &= res.status.is_false();
    if (all_unsat) {
      std::vector<uint8_t> in_base(static_cast<size_t>(parent.num_vars()), 0);
      for (const Lit l : race->base_assumptions) in_base[static_cast<size_t>(l.var())] = 1;
      LitVec core_union;
      std::vector<uint8_t> seen(static_cast<size_t>(parent.num_vars()), 0);
      for (const auto& res : race->results)
        for (const Lit l : res.core) {
          const auto v = static_cast<size_t>(l.var());
          if (in_base[v] && !seen[v]) {
            seen[v] = 1;
            core_union.push_back(l);
          }
        }
      ++pstats.par_wins;
      ECO_TELEMETRY_COUNT("parsat.wins");
      ParSolveAccess::install_unsat(parent, std::move(core_union));
      return kFalse;
    }
  }

  // Inconclusive race. Budgeted: the workers spent the remaining budget by
  // proxy — adopt the undef (propagating external-cancel causes so the
  // ledger wrapper reports them). Unbudgeted: resume the serial search and
  // book the next, bigger round once the parent has searched half a slice
  // further (conflict-count state only: deterministic).
  if (remaining >= 0) {
    bool cancel_hit = false, deadline_expired = false;
    for (const auto& res : race->results) {
      cancel_hit |= res.cancel != CancelReason::kNone;
      deadline_expired |= res.deadline_expired;
    }
    ParSolveAccess::note_cancelled(parent, cancel_hit, deadline_expired);
    return kUndef;
  }
  ParSolveAccess::note_failed_round(
      parent, ParSolveAccess::conflicts_since_start(parent) + slice / 2);
  ECO_TELEMETRY_COUNT("parsat.resumed");
  return std::nullopt;
}

}  // namespace eco::sat
