#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace eco::sat {

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string tok;
  bool have_header = false;
  int declared_clauses = 0;
  LitVec current;
  while (in >> tok) {
    if (tok == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      if (!(in >> fmt >> cnf.num_vars >> declared_clauses) || fmt != "cnf")
        throw std::runtime_error("dimacs: malformed problem line");
      have_header = true;
      continue;
    }
    int value = 0;
    try {
      value = std::stoi(tok);
    } catch (const std::exception&) {
      throw std::runtime_error("dimacs: unexpected token '" + tok + "'");
    }
    if (!have_header) throw std::runtime_error("dimacs: clause before problem line");
    if (value == 0) {
      cnf.clauses.push_back(current);
      current.clear();
    } else {
      const int v = std::abs(value) - 1;
      if (v >= cnf.num_vars) throw std::runtime_error("dimacs: variable out of range");
      current.push_back(mk_lit(v, value < 0));
    }
  }
  if (!current.empty()) throw std::runtime_error("dimacs: unterminated clause");
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& out, const Cnf& cnf) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    out << "0\n";
  }
}

bool load_into(Solver& solver, const Cnf& cnf) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  bool ok = true;
  for (const auto& clause : cnf.clauses) ok = solver.add_clause(clause) && ok;
  return ok && solver.okay();
}

}  // namespace eco::sat
