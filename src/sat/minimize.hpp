/// \file minimize.hpp
/// \brief Procedure ``minimize_assumptions`` (paper Algorithm 1) and the
/// naive linear reference implementation used as its baseline.
///
/// Given a solver whose clause set F is UNSAT under a set of assumption
/// literals A, ``minimize_assumptions`` computes a *minimal* subset of A
/// that keeps F UNSAT, using a divide-and-conquer recursion whose SAT-call
/// complexity is O(max{log N, M}) for N assumptions of which M are kept —
/// compared to O(N) for the naive one-at-a-time loop. The routine is closely
/// related to LEXUNSAT: when A is ordered by increasing cost, the low-cost
/// half is preferred, which is exactly how the ECO engine obtains cost-aware
/// supports (paper §3.4.1) and cost-aware prime cubes (paper §3.5).
#pragma once

#include "sat/solver.hpp"

namespace eco::sat {

/// Statistics of one minimization run.
struct MinimizeStats {
  int sat_calls = 0;
};

/// Minimizes the assumption set \p assumps in place (paper Algorithm 1).
///
/// \pre solve(context + assumps) is UNSAT on \p solver.
/// \param context  extra assumption literals that are always assumed and not
///                 subject to minimization (may be empty). Restored on exit.
///
/// **Assumption-ordering invariant.** Every SAT call issued by the recursion
/// assumes `context` first, then a contiguous slice of `assumps`, and the
/// context only grows/shrinks at its tail. Consecutive queries therefore
/// share long common assumption prefixes, which the solver's trail reuse
/// (`SolverOptions::trail_reuse`) converts into retained propagation work.
/// Callers that interleave their own `solve()` calls on the same solver get
/// the same benefit by keeping *their* assumption order stable — put the
/// long-lived context literals first and the per-query literals last (see
/// docs/OBSERVABILITY.md, "Incremental fast path").
/// \returns number S of kept assumptions; after the call the first S entries
///          of \p assumps form the minimal subset (remaining entries are the
///          discarded ones, in unspecified order).
///
/// If a solver budget expires during a query, the affected assumptions are
/// conservatively kept, so the returned prefix is always sufficient for
/// unsatisfiability.
int minimize_assumptions(Solver& solver, LitVec& assumps, LitVec& context,
                         MinimizeStats* stats = nullptr);

/// Convenience overload with an empty context.
int minimize_assumptions(Solver& solver, LitVec& assumps, MinimizeStats* stats = nullptr);

/// Naive deletion-based minimization: tries to drop assumptions one at a
/// time starting from the *last* entry (so with cost-ascending order the
/// expensive ones are dropped first). Same contract as
/// ``minimize_assumptions``; used by the ablation benchmark.
int minimize_assumptions_naive(Solver& solver, LitVec& assumps, LitVec& context,
                               MinimizeStats* stats = nullptr);

}  // namespace eco::sat
