#include "sat/minimize.hpp"

#include <algorithm>
#include <cassert>

namespace eco::sat {

namespace {

/// Solves under the current context plus the assumptions in
/// [\p lo, \p hi) of \p a. Returns the solver verdict.
///
/// Assumption-ordering invariant: the vector handed to the solver is always
/// `ctx` followed by the `[lo, hi)` suffix, and `ctx` itself only grows and
/// shrinks at its tail during the recursion. Consecutive queries therefore
/// share a long common assumption prefix, which is exactly what the solver's
/// trail reuse (SolverOptions::trail_reuse) exploits — see
/// docs/OBSERVABILITY.md. `scratch` is a caller-owned buffer reused across
/// all queries of one minimization to avoid a heap allocation per SAT call.
LBool query(Solver& solver, const LitVec& ctx, const LitVec& a, size_t lo, size_t hi,
            LitVec& scratch, MinimizeStats* stats) {
  scratch.assign(ctx.begin(), ctx.end());
  scratch.insert(scratch.end(), a.begin() + static_cast<long>(lo),
                 a.begin() + static_cast<long>(hi));
  if (stats) ++stats->sat_calls;
  return solver.solve(scratch);
}

/// Recursive core of Algorithm 1 operating on a[lo, hi).
/// Kept assumptions are moved to the front of the range; the count is
/// returned. `ctx` carries the incrementally-assumed outer literals.
int minimize_rec(Solver& solver, LitVec& a, size_t lo, size_t hi, LitVec& ctx,
                 LitVec& scratch, MinimizeStats* stats) {
  const size_t n = hi - lo;
  if (n == 0) return 0;
  if (n == 1) {
    // If there is only one assumption, check whether it is needed.
    const LBool res = query(solver, ctx, a, lo, lo, scratch, stats);
    if (res.is_false()) return 0;  // UNSAT without it: not needed
    return 1;                      // needed (or budget expired: keep, stay safe)
  }

  // Divide assumptions into a lower and a higher part. The lower part holds
  // the cheaper entries when the caller ordered A by increasing cost.
  const size_t n_low = (n + 1) / 2;
  const size_t mid = lo + n_low;

  // Try the lower part without the higher part.
  if (query(solver, ctx, a, lo, mid, scratch, stats).is_false())
    return minimize_rec(solver, a, lo, mid, ctx, scratch, stats);

  // Find a solution for A_high while assuming all of A_low.
  ctx.insert(ctx.end(), a.begin() + static_cast<long>(lo), a.begin() + static_cast<long>(mid));
  const int s_high = minimize_rec(solver, a, mid, hi, ctx, scratch, stats);
  ctx.resize(ctx.size() - n_low);

  // Reorder: place the kept entries of A_high before all entries of A_low.
  std::rotate(a.begin() + static_cast<long>(lo), a.begin() + static_cast<long>(mid),
              a.begin() + static_cast<long>(mid) + s_high);

  // Minimize A_low while assuming the kept part of A_high.
  ctx.insert(ctx.end(), a.begin() + static_cast<long>(lo),
             a.begin() + static_cast<long>(lo) + s_high);
  const int s_low = minimize_rec(solver, a, lo + static_cast<size_t>(s_high),
                                 lo + static_cast<size_t>(s_high) + n_low, ctx, scratch, stats);
  ctx.resize(ctx.size() - static_cast<size_t>(s_high));

  return s_high + s_low;
}

}  // namespace

int minimize_assumptions(Solver& solver, LitVec& assumps, LitVec& context,
                         MinimizeStats* stats) {
  LitVec scratch;
  scratch.reserve(context.size() + assumps.size());
  return minimize_rec(solver, assumps, 0, assumps.size(), context, scratch, stats);
}

int minimize_assumptions(Solver& solver, LitVec& assumps, MinimizeStats* stats) {
  LitVec ctx;
  return minimize_assumptions(solver, assumps, ctx, stats);
}

int minimize_assumptions_naive(Solver& solver, LitVec& assumps, LitVec& context,
                               MinimizeStats* stats) {
  // Deletion loop: walk from the most expensive (last) entry down, dropping
  // each assumption whose removal keeps the formula UNSAT.
  LitVec kept(assumps);
  LitVec trial;
  trial.reserve(context.size() + assumps.size());
  for (size_t i = kept.size(); i-- > 0;) {
    trial.assign(context.begin(), context.end());
    for (size_t j = 0; j < kept.size(); ++j)
      if (j != i) trial.push_back(kept[j]);
    if (stats) ++stats->sat_calls;
    if (solver.solve(trial).is_false()) kept.erase(kept.begin() + static_cast<long>(i));
  }
  // Write back: kept prefix, then the discarded entries.
  LitVec out(kept);
  for (const Lit l : assumps)
    if (std::find(kept.begin(), kept.end(), l) == kept.end()) out.push_back(l);
  assumps = std::move(out);
  return static_cast<int>(kept.size());
}

}  // namespace eco::sat
