#include "eco/problem.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "aig/window.hpp"

namespace eco::core {

EcoProblem make_problem(const net::Network& impl, const net::Network& spec,
                        const net::WeightMap& weights) {
  // Output interfaces must match by name (order taken from the spec).
  if (impl.outputs.size() != spec.outputs.size())
    throw net::InputError("make_problem: output counts differ");
  {
    const std::unordered_set<std::string> impl_outs(impl.outputs.begin(), impl.outputs.end());
    for (const auto& o : spec.outputs)
      if (!impl_outs.count(o))
        throw net::InputError("make_problem: spec output '" + o +
                                 "' missing from implementation");
  }

  // Inputs: spec inputs must all exist in impl; the surplus are targets.
  const std::unordered_set<std::string> spec_ins(spec.inputs.begin(), spec.inputs.end());
  std::vector<std::string> targets;
  for (const auto& in : impl.inputs) {
    if (!spec_ins.count(in)) targets.push_back(in);
  }
  {
    const std::unordered_set<std::string> impl_ins(impl.inputs.begin(), impl.inputs.end());
    for (const auto& in : spec.inputs)
      if (!impl_ins.count(in))
        throw net::InputError("make_problem: spec input '" + in +
                                 "' missing from implementation");
  }
  if (targets.empty())
    throw net::InputError("make_problem: no target inputs found in implementation");

  // Re-order implementation inputs: shared first (spec order), targets last.
  net::Network impl_ordered = impl;
  impl_ordered.inputs = spec.inputs;
  impl_ordered.inputs.insert(impl_ordered.inputs.end(), targets.begin(), targets.end());

  EcoProblem problem;
  net::ElaboratedAig impl_elab = elaborate(impl_ordered);
  net::ElaboratedAig spec_elab = elaborate(spec);

  // Align the implementation PO order to the spec's output list.
  problem.impl = std::move(impl_elab.aig);
  for (uint32_t i = 0; i < static_cast<uint32_t>(spec.outputs.size()); ++i) {
    problem.impl.set_po(i, impl_elab.signal_lits.at(spec.outputs[i]));
    problem.impl.set_po_name(i, spec.outputs[i]);
  }
  problem.spec = std::move(spec_elab.aig);
  problem.target_names = targets;

  // Divisors: shared inputs + gate outputs outside TFO(targets).
  std::vector<aig::Node> target_nodes;
  for (uint32_t t = 0; t < problem.num_targets(); ++t)
    target_nodes.push_back(problem.impl.pi_node(problem.target_pi(t)));
  const std::vector<uint8_t> tfo = aig::tfo_mark(problem.impl, target_nodes);

  std::unordered_map<aig::Lit, size_t> best_for_lit;  // canonical lit -> divisor index
  auto consider = [&](const std::string& name, aig::Lit lit) {
    if (lit == aig::kLitFalse || lit == aig::kLitTrue) return;
    if (tfo[aig::lit_node(lit)]) return;
    const int64_t cost = weights.weight_of(name);
    const aig::Lit canonical = lit & ~1u;  // node, ignore polarity
    const auto it = best_for_lit.find(canonical);
    if (it == best_for_lit.end()) {
      best_for_lit.emplace(canonical, problem.divisors.size());
      problem.divisors.push_back(Divisor{lit, name, cost});
    } else if (cost < problem.divisors[it->second].cost) {
      problem.divisors[it->second] = Divisor{lit, name, cost};
    }
  };
  const std::unordered_set<std::string> target_set(targets.begin(), targets.end());
  for (const auto& in : impl_ordered.inputs)
    if (!target_set.count(in)) consider(in, impl_elab.signal_lits.at(in));
  for (const auto& gate : impl_ordered.gates)
    consider(gate.output, impl_elab.signal_lits.at(gate.output));

  // Deterministic order: by cost, then name.
  std::sort(problem.divisors.begin(), problem.divisors.end(),
            [](const Divisor& a, const Divisor& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.name < b.name;
            });
  return problem;
}

}  // namespace eco::core
