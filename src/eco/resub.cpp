#include "eco/resub.hpp"

#include <algorithm>

#include "cnf/tseitin.hpp"
#include "eco/simfilter.hpp"
#include "eco/support.hpp"
#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"

namespace eco::core {

namespace {

/// (pi index, solver var) of every impl PI the encoder has reached (var()
/// on an unencoded node would allocate and perturb the search).
std::vector<std::pair<uint32_t, sat::Var>> encoded_pi_vars(const aig::Aig& g,
                                                           cnf::Encoder& enc) {
  std::vector<std::pair<uint32_t, sat::Var>> out;
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    if (enc.encoded(g.pi_node(i))) out.emplace_back(i, enc.var(g.pi_node(i)));
  return out;
}

void harvest(ResubFilter* sim, uint32_t num_pis, sat::Solver& s,
             const std::vector<std::pair<uint32_t, sat::Var>>& pis) {
  std::vector<bool> pattern(num_pis, false);
  for (const auto& [pi, v] : pis) pattern[pi] = s.model_value(v);
  sim->add_counterexample(pattern);
}

}  // namespace

ResubResult functional_resub(const aig::Aig& impl, aig::Lit func,
                             const std::vector<Divisor>& divisors,
                             std::span<const size_t> candidates,
                             const ResubOptions& options) {
  ledger::ScopedPurpose ledger_scope(ledger::Purpose::kResub);
  ResubResult result;

  // Collapse sweeping-proven duplicate divisors onto their representative.
  // Sound because an equivalent-up-to-complement divisor carries the same
  // information: agreement on the representative implies agreement on every
  // member, so the dependency verdict over the deduped set is unchanged.
  std::vector<size_t> deduped;
  if (!options.divisor_alias.empty()) {
    deduped = dedupe_equivalent_divisors(candidates, options.divisor_alias);
    candidates = deduped;
  }

  // A bank pattern pair agreeing on every candidate but differing on `func`
  // refutes the dependency exactly — same !ok return, no solver built. (The
  // SAT path below treats kTrue and kUndef identically, so the answer is
  // verdict-equivalent even under conflict budgets.)
  if (options.sim != nullptr &&
      options.sim->refutes_dependency(func, divisors, candidates)) {
    ledger::append_sim_hit(ledger::Purpose::kResub, ledger::QueryResult::kSat);
    return result;
  }

  // --- Support selection on the two-copy dependency instance. ------------
  sat::Solver dep;
  dep.set_cancel(options.cancel);
  cnf::Encoder copy1(impl, dep), copy2(impl, dep);
  dep.add_unit(copy1.lit(func));    // p(x1) = 1
  dep.add_unit(~copy2.lit(func));   // p(x2) = 0
  sat::LitVec activations;
  for (const size_t g : candidates) {
    const sat::Lit d1 = copy1.lit(divisors[g].lit);
    const sat::Lit d2 = copy2.lit(divisors[g].lit);
    const sat::Lit a = sat::mk_lit(dep.new_var());
    dep.add_ternary(~a, ~d1, d2);
    dep.add_ternary(~a, d1, ~d2);
    activations.push_back(a);
  }
  std::vector<std::pair<uint32_t, sat::Var>> dep_pis1, dep_pis2;
  if (options.sim != nullptr) {
    dep_pis1 = encoded_pi_vars(impl, copy1);
    dep_pis2 = encoded_pi_vars(impl, copy2);
  }
  if (options.conflict_budget >= 0) dep.set_conflict_budget(options.conflict_budget);
  const sat::LBool verdict = dep.solve(activations);
  if (!verdict.is_false()) {
    if (verdict.is_true() && options.sim != nullptr) {
      // The model's two copies are exactly such a witness pair: remember
      // them so the next dependency check over a similar candidate set is
      // answered by simulation.
      harvest(options.sim, impl.num_pis(), dep, dep_pis1);
      harvest(options.sim, impl.num_pis(), dep, dep_pis2);
    }
    return result;  // not a function of the candidates / budget
  }

  // Keep the final-conflict core, then minimize (cost-ascending order is
  // inherited from the candidate list). The core keeps the activations in
  // their original relative order, so the minimize recursion's first query
  // shares its assumption prefix with the dependency solve above and the
  // solver's trail reuse retains the propagation work (see minimize.hpp).
  sat::LitVec core;
  std::vector<size_t> core_globals;
  for (size_t i = 0; i < activations.size(); ++i)
    if (dep.in_core(activations[i])) {
      core.push_back(activations[i]);
      core_globals.push_back(candidates[i]);
    }
  sat::LitVec ctx;
  const int kept = sat::minimize_assumptions(dep, core, ctx);
  std::vector<size_t> support;
  for (int i = 0; i < kept; ++i) {
    const auto it = std::find(activations.begin(), activations.end(),
                              core[static_cast<size_t>(i)]);
    support.push_back(candidates[static_cast<size_t>(it - activations.begin())]);
  }
  std::sort(support.begin(), support.end());

  // --- Cube enumeration of p over the chosen support. --------------------
  sat::Solver on_solver, off_solver;
  on_solver.set_cancel(options.cancel);
  off_solver.set_cancel(options.cancel);
  cnf::Encoder on_enc(impl, on_solver), off_enc(impl, off_solver);
  on_solver.add_unit(on_enc.lit(func));
  off_solver.add_unit(~off_enc.lit(func));
  std::vector<sat::Lit> d_on, d_off;
  for (const size_t g : support) {
    d_on.push_back(on_enc.lit(divisors[g].lit));
    d_off.push_back(off_enc.lit(divisors[g].lit));
  }

  std::vector<std::pair<uint32_t, sat::Var>> on_pis;
  if (options.sim != nullptr) on_pis = encoded_pi_vars(impl, on_enc);

  sop::Cover cover;
  cover.num_vars = static_cast<uint32_t>(support.size());
  for (uint64_t round = 0; round < options.max_cubes; ++round) {
    if (options.conflict_budget >= 0) on_solver.set_conflict_budget(options.conflict_budget);
    const sat::LBool on = on_solver.okay() ? on_solver.solve() : sat::kFalse;
    if (on.is_undef()) return result;
    if (on.is_false()) break;
    if (options.sim != nullptr) harvest(options.sim, impl.num_pis(), on_solver, on_pis);
    sat::LitVec cube_lits;
    for (size_t i = 0; i < support.size(); ++i) {
      const bool value = on_solver.model_value(d_on[i]);
      cube_lits.push_back(value ? d_off[i] : ~d_off[i]);
    }
    if (options.conflict_budget >= 0) off_solver.set_conflict_budget(options.conflict_budget);
    if (!off_solver.solve(cube_lits).is_false()) {
      log_warn("functional_resub: support does not separate on/off sets");
      return result;
    }
    // `cube_lits` is in fixed support order: the expansion solve above and
    // the minimize recursion's first query assume identical vectors, so
    // consecutive queries on off_solver share long prefixes for trail reuse.
    sat::LitVec work = cube_lits;
    sat::LitVec ctx2;
    const int cube_kept = sat::minimize_assumptions(off_solver, work, ctx2);
    std::vector<sop::Lit> sop_lits;
    sat::LitVec blocking;
    for (int i = 0; i < cube_kept; ++i) {
      const sat::Lit l = work[static_cast<size_t>(i)];
      const auto it = std::find(cube_lits.begin(), cube_lits.end(), l);
      const size_t var = static_cast<size_t>(it - cube_lits.begin());
      const bool positive = l.sign() == d_off[var].sign();
      sop_lits.push_back(positive ? sop::lit_pos(static_cast<uint32_t>(var))
                                  : sop::lit_neg(static_cast<uint32_t>(var)));
      blocking.push_back(~(d_on[var] ^ !positive));
    }
    cover.cubes.push_back(sop::Cube(std::move(sop_lits)));
    on_solver.add_clause(blocking);
    if (!on_solver.okay()) break;
  }
  cover.remove_contained_cubes();

  // Drop support entries unused by the cover.
  std::vector<uint8_t> used(support.size(), 0);
  for (const auto& cube : cover.cubes)
    for (const sop::Lit l : cube.lits()) used[sop::lit_var(l)] = 1;
  std::vector<uint32_t> remap(support.size(), 0);
  std::vector<size_t> final_support;
  for (size_t i = 0; i < support.size(); ++i)
    if (used[i]) {
      remap[i] = static_cast<uint32_t>(final_support.size());
      final_support.push_back(support[i]);
    }
  sop::Cover final_cover;
  final_cover.num_vars = static_cast<uint32_t>(final_support.size());
  for (const auto& cube : cover.cubes) {
    std::vector<sop::Lit> lits;
    for (const sop::Lit l : cube.lits())
      lits.push_back(sop::lit_negated(l) ? sop::lit_neg(remap[sop::lit_var(l)])
                                         : sop::lit_pos(remap[sop::lit_var(l)]));
    final_cover.cubes.push_back(sop::Cube(std::move(lits)));
  }

  result.ok = true;
  result.support = std::move(final_support);
  result.cover = std::move(final_cover);
  for (const size_t g : result.support) result.cost += divisors[g].cost;
  return result;
}

}  // namespace eco::core
