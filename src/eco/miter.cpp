#include "eco/miter.hpp"

#include <stdexcept>

#include "aig/ops.hpp"

namespace eco::core {

EcoMiter build_eco_miter(const aig::Aig& impl, const aig::Aig& spec,
                         const std::vector<Divisor>& divisors,
                         const std::vector<uint32_t>& po_subset) {
  EcoMiter m;
  m.num_x = spec.num_pis();
  m.num_targets = impl.num_pis() - spec.num_pis();

  std::vector<aig::Lit> pi_map;  // for the implementation (x + targets)
  pi_map.reserve(impl.num_pis());
  for (uint32_t i = 0; i < impl.num_pis(); ++i) pi_map.push_back(m.aig.add_pi(impl.pi_name(i)));

  // Implementation copy: transfer the selected POs plus all divisors.
  std::vector<aig::Lit> impl_roots;
  std::vector<uint32_t> pos;
  if (po_subset.empty()) {
    for (uint32_t i = 0; i < impl.num_pos(); ++i) pos.push_back(i);
  } else {
    pos = po_subset;
  }
  for (const uint32_t po : pos) impl_roots.push_back(impl.po_lit(po));
  for (const auto& d : divisors) impl_roots.push_back(d.lit);

  std::vector<aig::Lit> impl_map(impl.num_nodes(), aig::kLitInvalid);
  impl_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < impl.num_pis(); ++i) impl_map[impl.pi_node(i)] = pi_map[i];
  const std::vector<aig::Lit> impl_lits = aig::transfer(impl, m.aig, impl_roots, impl_map);

  // Specification copy over the shared inputs.
  std::vector<aig::Lit> spec_roots;
  for (const uint32_t po : pos) spec_roots.push_back(spec.po_lit(po));
  std::vector<aig::Lit> spec_map(spec.num_nodes(), aig::kLitInvalid);
  spec_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < spec.num_pis(); ++i) spec_map[spec.pi_node(i)] = pi_map[i];
  const std::vector<aig::Lit> spec_lits = aig::transfer(spec, m.aig, spec_roots, spec_map);

  std::vector<aig::Lit> diffs;
  diffs.reserve(pos.size());
  for (size_t i = 0; i < pos.size(); ++i)
    diffs.push_back(m.aig.add_xor(impl_lits[i], spec_lits[i]));
  m.out = m.aig.add_or_multi(diffs);
  m.aig.add_po(m.out, "miter");

  m.divisor_lits.assign(impl_lits.begin() + static_cast<long>(pos.size()), impl_lits.end());
  return m;
}

namespace {

/// Rebuilds \p m with the given per-PI substitution (kLitInvalid = keep PI).
EcoMiter rebuild_with(const EcoMiter& m, const std::vector<aig::Lit>& pi_subst) {
  EcoMiter out;
  out.num_x = m.num_x;
  out.num_targets = m.num_targets;

  std::vector<aig::Lit> pi_map;
  pi_map.reserve(m.aig.num_pis());
  for (uint32_t i = 0; i < m.aig.num_pis(); ++i) pi_map.push_back(out.aig.add_pi(m.aig.pi_name(i)));
  for (uint32_t i = 0; i < m.aig.num_pis(); ++i)
    if (pi_subst[i] != aig::kLitInvalid) pi_map[i] = pi_subst[i];

  std::vector<aig::Lit> roots;
  roots.push_back(m.out);
  for (const aig::Lit d : m.divisor_lits) roots.push_back(d);
  std::vector<aig::Lit> map(m.aig.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < m.aig.num_pis(); ++i) map[m.aig.pi_node(i)] = pi_map[i];
  const std::vector<aig::Lit> lits = aig::transfer(m.aig, out.aig, roots, map);
  out.out = lits[0];
  out.divisor_lits.assign(lits.begin() + 1, lits.end());
  out.aig.add_po(out.out, "miter");
  return out;
}

}  // namespace

EcoMiter cofactor_target(const EcoMiter& m, uint32_t t, bool value) {
  std::vector<aig::Lit> subst(m.aig.num_pis(), aig::kLitInvalid);
  subst[m.target_pi(t)] = value ? aig::kLitTrue : aig::kLitFalse;
  return rebuild_with(m, subst);
}

EcoMiter substitute_target_in_miter(const EcoMiter& m, uint32_t t, aig::Lit func_root) {
  EcoMiter out;
  out.num_x = m.num_x;
  out.num_targets = m.num_targets;
  std::vector<aig::Lit> pi_map;
  pi_map.reserve(m.aig.num_pis());
  for (uint32_t i = 0; i < m.aig.num_pis(); ++i) pi_map.push_back(out.aig.add_pi(m.aig.pi_name(i)));

  std::vector<aig::Lit> map(m.aig.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < m.aig.num_pis(); ++i)
    if (i != m.target_pi(t)) map[m.aig.pi_node(i)] = pi_map[i];
  const aig::Lit func_roots[] = {func_root};
  const aig::Lit replacement = aig::transfer(m.aig, out.aig, func_roots, map)[0];
  map[m.aig.pi_node(m.target_pi(t))] = replacement;

  std::vector<aig::Lit> roots;
  roots.push_back(m.out);
  for (const aig::Lit d : m.divisor_lits) roots.push_back(d);
  const std::vector<aig::Lit> lits = aig::transfer(m.aig, out.aig, roots, map);
  out.out = lits[0];
  out.divisor_lits.assign(lits.begin() + 1, lits.end());
  out.aig.add_po(out.out, "miter");
  return out;
}

EcoMiter quantify_targets(const EcoMiter& m, const std::vector<uint32_t>& quantify,
                          uint32_t max_nodes) {
  EcoMiter cur = rebuild_with(m, std::vector<aig::Lit>(m.aig.num_pis(), aig::kLitInvalid));
  for (const uint32_t t : quantify) {
    // cur.out := cur.out[t=0] & cur.out[t=1], divisors preserved.
    EcoMiter next;
    next.num_x = cur.num_x;
    next.num_targets = cur.num_targets;
    std::vector<aig::Lit> pi_map;
    pi_map.reserve(cur.aig.num_pis());
    for (uint32_t i = 0; i < cur.aig.num_pis(); ++i)
      pi_map.push_back(next.aig.add_pi(cur.aig.pi_name(i)));

    std::vector<aig::Lit> roots;
    roots.push_back(cur.out);
    for (const aig::Lit d : cur.divisor_lits) roots.push_back(d);

    std::vector<aig::Lit> lits_by_value[2];
    for (const bool value : {false, true}) {
      std::vector<aig::Lit> map(cur.aig.num_nodes(), aig::kLitInvalid);
      map[0] = aig::kLitFalse;
      for (uint32_t i = 0; i < cur.aig.num_pis(); ++i) map[cur.aig.pi_node(i)] = pi_map[i];
      map[cur.aig.pi_node(cur.target_pi(t))] = value ? aig::kLitTrue : aig::kLitFalse;
      lits_by_value[value] = aig::transfer(cur.aig, next.aig, roots, map);
    }
    next.out = next.aig.add_and(lits_by_value[0][0], lits_by_value[1][0]);
    // Divisors do not depend on targets, so both cofactors strash to the
    // same literals; keep the first copy.
    next.divisor_lits.assign(lits_by_value[0].begin() + 1, lits_by_value[0].end());
    next.aig.add_po(next.out, "miter");
    if (next.aig.num_ands() > max_nodes)
      throw std::runtime_error("quantify_targets: expansion exceeds node budget");
    cur = std::move(next);
  }
  return cur;
}

}  // namespace eco::core
