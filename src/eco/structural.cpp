#include "eco/structural.hpp"

#include <stdexcept>

#include "aig/ops.hpp"
#include "util/log.hpp"

namespace eco::core {

StructuralPatches structural_patch_single(const EcoMiter& m, uint32_t target) {
  StructuralPatches result;
  aig::Aig patch;
  std::vector<aig::Lit> x;
  x.reserve(m.num_x);
  for (uint32_t i = 0; i < m.num_x; ++i) x.push_back(patch.add_pi(m.aig.pi_name(i)));

  std::vector<aig::Lit> map(m.aig.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < m.num_x; ++i) map[m.aig.pi_node(i)] = x[i];
  for (uint32_t t = 0; t < m.num_targets; ++t)
    map[m.aig.pi_node(m.target_pi(t))] = aig::kLitFalse;  // only `target` matters
  map[m.aig.pi_node(m.target_pi(target))] = aig::kLitFalse;
  const aig::Lit roots[] = {m.out};
  const aig::Lit cofactor = aig::transfer(m.aig, patch, roots, map)[0];
  patch.add_po(cofactor, "patch_" + std::to_string(target));
  result.patch = patch.cleanup();
  result.ok = true;
  return result;
}

StructuralPatches structural_patch_multi(const EcoMiter& m, const qbf::Qbf2Result& cert) {
  StructuralPatches result;
  if (cert.status != qbf::Qbf2Status::kFalse || cert.moves.empty()) {
    log_warn("structural_patch_multi: certificate unavailable");
    return result;
  }
  const size_t num_moves = cert.moves.size();
  aig::Aig patch;
  std::vector<aig::Lit> x;
  x.reserve(m.num_x);
  for (uint32_t i = 0; i < m.num_x; ++i) x.push_back(patch.add_pi(m.aig.pi_name(i)));

  // Selector j: ¬M(n*_j, x) — one miter copy per certificate move.
  std::vector<aig::Lit> selectors;
  selectors.reserve(num_moves);
  for (const auto& move : cert.moves) {
    std::vector<aig::Lit> map(m.aig.num_nodes(), aig::kLitInvalid);
    map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < m.num_x; ++i) map[m.aig.pi_node(i)] = x[i];
    for (uint32_t t = 0; t < m.num_targets; ++t)
      map[m.aig.pi_node(m.target_pi(t))] = move[t] ? aig::kLitTrue : aig::kLitFalse;
    const aig::Lit roots[] = {m.out};
    selectors.push_back(aig::lit_not(aig::transfer(m.aig, patch, roots, map)[0]));
  }

  // Patch t: the t-component of the first applicable move, as a MUX chain
  // over constants (heavily simplified by strashing).
  for (uint32_t t = 0; t < m.num_targets; ++t) {
    aig::Lit out = cert.moves[num_moves - 1][t] ? aig::kLitTrue : aig::kLitFalse;
    for (size_t j = num_moves - 1; j-- > 0;) {
      const aig::Lit c = cert.moves[j][t] ? aig::kLitTrue : aig::kLitFalse;
      out = patch.add_mux(selectors[j], c, out);
    }
    patch.add_po(out, "patch_" + std::to_string(t));
  }
  result.patch = patch.cleanup();
  result.ok = true;
  return result;
}

StructuralPatches structural_patch_multi_expansion(const EcoMiter& m, uint32_t max_nodes) {
  StructuralPatches result;
  aig::Aig patch;
  std::vector<aig::Lit> x;
  x.reserve(m.num_x);
  for (uint32_t i = 0; i < m.num_x; ++i) x.push_back(patch.add_pi(m.aig.pi_name(i)));

  EcoMiter cur = m;
  try {
    for (uint32_t t = 0; t < m.num_targets; ++t) {
      std::vector<uint32_t> remaining;
      for (uint32_t u = t + 1; u < m.num_targets; ++u) remaining.push_back(u);
      const EcoMiter mq = quantify_targets(cur, remaining, max_nodes);

      // Patch t = M_q(0, x): the negative cofactor, a valid interpolant.
      std::vector<aig::Lit> map(mq.aig.num_nodes(), aig::kLitInvalid);
      map[0] = aig::kLitFalse;
      for (uint32_t i = 0; i < m.num_x; ++i) map[mq.aig.pi_node(i)] = x[i];
      for (uint32_t u = 0; u < m.num_targets; ++u)
        map[mq.aig.pi_node(mq.target_pi(u))] = aig::kLitFalse;
      const aig::Lit roots[] = {mq.out};
      const aig::Lit patch_t = aig::transfer(mq.aig, patch, roots, map)[0];
      patch.add_po(patch_t, "patch_" + std::to_string(t));

      // Substitute the patch into the (unquantified) running miter.
      if (t + 1 < m.num_targets) {
        std::vector<aig::Lit> back(patch.num_nodes(), aig::kLitInvalid);
        back[0] = aig::kLitFalse;
        for (uint32_t i = 0; i < m.num_x; ++i) back[patch.pi_node(i)] = cur.aig.pi_lit(i);
        const aig::Lit patch_roots[] = {patch_t};
        const aig::Lit in_cur = aig::transfer(patch, cur.aig, patch_roots, back)[0];
        cur = substitute_target_in_miter(cur, t, in_cur);
        if (cur.aig.num_ands() > max_nodes)
          throw std::runtime_error("structural expansion exceeds node budget");
      }
    }
  } catch (const std::runtime_error&) {
    log_info("structural_patch_multi_expansion: node budget exceeded");
    return result;
  }
  result.patch = patch.cleanup();
  result.ok = true;
  return result;
}

}  // namespace eco::core
