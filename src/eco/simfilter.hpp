/// \file simfilter.hpp
/// \brief Counterexample-driven simulation filtering of ECO SAT queries.
///
/// A SimFilter wraps a simulation pattern bank (aig/simbank.hpp) over one
/// target's ECO miter and classifies every pattern as an on-set point
/// (miter = 1, target = 0) or an off-set point (miter = 1, target = 1).
/// Because a support subset S is insufficient exactly when some on/off
/// pattern pair is indistinguishable by S's divisor signatures, the bank
/// *exactly refutes* subset checks without a SAT call — the witness pair is
/// a concrete SAT model, so answers are bit-identical with filtering on or
/// off. The bank starts from random patterns and grows with every SAT
/// counterexample the engine produces (failed support checks, satprune
/// witnesses, enumerated on-set points, resub dependency models), which is
/// what makes the filter sharp on precisely the subsets the engine probes.
///
/// A ResubFilter applies the same idea to the functional-resubstitution
/// dependency question over the implementation AIG: a pattern pair agreeing
/// on every candidate divisor but disagreeing on the patch function refutes
/// "the patch is a function of the candidates" exactly.
///
/// Gating follows the ECO_SAT_* convention: the process default is seeded
/// from `ECO_SIM_BANK` (unset/non-"0" = enabled, "0" = disabled) and can be
/// overridden per run (`--sim-bank`, EngineOptions::simfilter).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "aig/simbank.hpp"
#include "eco/miter.hpp"
#include "sop/cover.hpp"

namespace eco::core {

struct SimFilterOptions {
  /// Master switch (ECO_SIM_BANK): when false the engine attaches no filter.
  bool enabled = true;
  /// Random seed patterns = 64 * seed_words.
  uint32_t seed_words = 4;
  /// Bank capacity = 64 * capacity_words (counterexamples stop being
  /// recorded once full; all answers stay exact).
  uint32_t capacity_words = 16;
  /// Per-bank storage budget; lowers the capacity on huge miters.
  uint64_t memory_budget_bytes = 64ull << 20;
  /// Seed for the random prefix of every bank.
  uint64_t seed = 0x51bba9c5eedULL;

  /// Process-wide defaults, seeded once from the environment
  /// (ECO_SIM_BANK=0 disables), mirroring sat::SolverOptions.
  static const SimFilterOptions& defaults() noexcept;
  static void set_defaults(const SimFilterOptions& opts) noexcept;
};

/// Counters of SAT work avoided; aggregated into EngineStats / telemetry.
struct SimFilterStats {
  uint64_t refuted_support = 0;    ///< support subset checks answered by the bank
  uint64_t filtered_resub = 0;     ///< resub dependency checks answered by the bank
  uint64_t irredundant_hits = 0;   ///< irredundancy SAT calls skipped (witness found)
  uint64_t bank_patterns = 0;      ///< counterexamples inserted into banks
  uint64_t resim_nodes = 0;        ///< incremental re-simulation node-words
};

/// Simulation filter for one target's (quantified) ECO miter.
class SimFilter {
 public:
  /// Keeps references to \p m (and its AIG); they must outlive the filter.
  SimFilter(const EcoMiter& m, uint32_t target,
            const SimFilterOptions& options = SimFilterOptions::defaults());

  // -- Bank growth ---------------------------------------------------------

  /// Records a SAT counterexample: a full miter-PI assignment. \p off_set
  /// is the class claimed by the SAT model (false = on-set copy M(0,x),
  /// true = off-set copy M(1,x)); the filter itself classifies by
  /// simulation, so the claim is checkable (see recorded_off()).
  void add_counterexample(const std::vector<bool>& pi_values, bool off_set);

  // -- Support subset refutation (paper §3.4) ------------------------------

  /// True when the bank holds an on/off pattern pair no divisor of
  /// \p subset (global divisor indices) distinguishes — an exact witness
  /// that the subset is insufficient. Remembers the pair for separator().
  bool refutes_subset(std::span<const size_t> subset);

  /// After refutes_subset() returned true: the divisors among
  /// \p candidates that distinguish the witness pair (the satprune
  /// separator clause of that concrete model pair).
  std::vector<size_t> separator(std::span<const size_t> candidates);

  // -- Irredundancy witnesses (paper §3.5) ---------------------------------

  /// Prepares cube-membership masks for witnesses_cube_necessity().
  /// \p support maps SOP variables to global divisor indices.
  void begin_irredundancy(const sop::Cover& cover, const std::vector<size_t>& support);

  /// True when a bank on-set pattern lies inside cube \p index and outside
  /// every other cube j with kept[j] — the exact SAT witness that the cube
  /// is necessary, making the irredundancy query for it skippable.
  bool witnesses_cube_necessity(size_t index, const std::vector<uint8_t>& kept);

  // -- CEC seeding ---------------------------------------------------------

  /// The first \p prefix_pis values of up to \p max recorded
  /// counterexamples (skipping the random seed prefix), for seeding the
  /// final verification's simulation screen.
  std::vector<std::vector<bool>> counterexample_prefixes(uint32_t prefix_pis,
                                                         size_t max);

  // -- Introspection -------------------------------------------------------

  aig::SimBank& bank() noexcept { return bank_; }
  const EcoMiter& miter() const noexcept { return *m_; }
  /// Counterexamples recorded (excludes the random seed prefix).
  uint32_t num_counterexamples() const noexcept;
  /// The class recorded at insertion for counterexample \p i (0-based).
  bool recorded_off(uint32_t i) const noexcept { return recorded_off_[i] != 0; }
  /// Full PI pattern of counterexample \p i.
  std::vector<bool> counterexample_pattern(uint32_t i);
  /// Cumulative counters (resim_nodes/bank sizes sampled at call time).
  SimFilterStats stats() const noexcept;

 private:
  void classify(std::vector<uint64_t>& on, std::vector<uint64_t>& off);

  const EcoMiter* m_;
  uint32_t target_;
  aig::SimBank bank_;
  std::vector<uint8_t> recorded_off_;  ///< per counterexample, insertion order
  uint64_t dropped_full_ = 0;          ///< counterexamples not recorded (bank full)
  SimFilterStats stats_;
  // Witness pair of the last successful refutes_subset().
  std::optional<std::pair<uint32_t, uint32_t>> witness_;
  // Irredundancy state: per-cube membership masks + the on-set mask.
  std::vector<std::vector<uint64_t>> cube_inside_;
  std::vector<uint64_t> ir_on_mask_;
};

/// Simulation filter for functional resubstitution over the implementation
/// AIG (shared by every target of the structural path; the AIG may grow).
class ResubFilter {
 public:
  explicit ResubFilter(const aig::Aig& impl,
                       const SimFilterOptions& options = SimFilterOptions::defaults());

  /// True when two bank patterns agree on every candidate divisor but
  /// disagree on \p func — the exact witness that \p func is not a function
  /// of the candidates, making the dependency SAT check skippable.
  bool refutes_dependency(aig::Lit func, const std::vector<Divisor>& divisors,
                          std::span<const size_t> candidates);

  /// Records a dependency-model pattern (full implementation-PI assignment).
  void add_counterexample(const std::vector<bool>& pi_values);

  aig::SimBank& bank() noexcept { return bank_; }
  SimFilterStats stats() const noexcept;

 private:
  aig::SimBank bank_;
  SimFilterStats stats_;
};

}  // namespace eco::core
