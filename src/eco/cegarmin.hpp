/// \file cegarmin.hpp
/// \brief CEGAR_min (paper §3.6.3): structural patch improvement by
/// max-flow/min-cut resubstitution.
///
/// A structural patch is a circuit over primary inputs. Many of its internal
/// signals are functionally equivalent (possibly up to complement) to cheap
/// implementation signals; any set of such signals that *cuts* every path
/// from the patch inputs to the patch output can serve as the new patch
/// support. Equivalences are found by random simulation (signature
/// matching) and confirmed by SAT; the cheapest cut is a minimum node cut
/// computed with max-flow (see flow/maxflow.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "eco/problem.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco::core {

struct CegarMinOptions {
  int sim_words = 4;                ///< 64-pattern words for signatures
  int max_checks_per_node = 4;      ///< SAT confirmations tried per node
  int64_t conflict_budget = 10000;  ///< per equivalence query
  uint64_t rng_seed = 0xEC0ULL;
  /// Bound for the whole analysis (deadline + external stop); once
  /// cancelled no further SAT equivalences are confirmed (simulation-only
  /// matches are discarded, so the result stays sound, just less
  /// effective). An invalid token means unlimited.
  eco::CancelToken cancel{};
};

/// Outcome for one target's patch cone.
struct TargetRewrite {
  /// True when a finite min cut was found and the patch can be re-expressed
  /// over implementation divisors; false keeps the PI-based patch.
  bool used_cut = false;
  /// For each cut node of the patch AIG: the replacing divisor and whether
  /// the divisor appears complemented.
  std::vector<std::pair<aig::Node, std::pair<size_t, bool>>> node_assignment;
  int64_t cut_cost = 0;

  /// Divisor indices on the cut (the new patch support).
  std::vector<size_t> support() const {
    std::vector<size_t> out;
    out.reserve(node_assignment.size());
    for (const auto& [node, div] : node_assignment) out.push_back(div.first);
    return out;
  }
};

/// Analyses the patch bundle (\p patches: PIs = shared inputs, PO t = patch
/// of target t) against the implementation and returns, per target, the
/// cheapest equivalent-signal cut.
std::vector<TargetRewrite> cegar_min(const EcoProblem& problem, const aig::Aig& patches,
                                     const CegarMinOptions& options = {});

/// Rebuilds patch \p target of \p patches inside \p impl (which must use the
/// problem's PI conventions), replacing the cut nodes by their equivalent
/// divisor signals. \pre rewrite.used_cut.
aig::Lit rebuild_patch_on_cut(aig::Aig& impl, const std::vector<Divisor>& divisors,
                              const aig::Aig& patches, uint32_t target,
                              const TargetRewrite& rewrite);

}  // namespace eco::core
