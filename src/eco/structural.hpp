/// \file structural.hpp
/// \brief Structural patch computation in terms of primary inputs
/// (paper §3.6.1–§3.6.2), used when the SAT-based flow runs out of budget.
#pragma once

#include "eco/miter.hpp"
#include "qbf/qbf2.hpp"

namespace eco::core {

/// A bundle of patch functions in terms of the shared primary inputs.
struct StructuralPatches {
  bool ok = false;
  /// PIs = the shared inputs (problem order); one PO per target, in target
  /// order. Dangling logic already removed.
  aig::Aig patch;
};

/// Single-target structural patch (paper §3.6.1): the negative cofactor
/// M(0, x) of the ECO miter, which is an interpolant of
/// M(0,x) & M(1,x) whenever the ECO is feasible.
StructuralPatches structural_patch_single(const EcoMiter& m, uint32_t target);

/// Multi-target structural patch from a 2QBF certificate (paper §3.6.2).
/// \p cert must be a kFalse result of solve_exists_forall on the miter
/// (x = shared PIs, n = targets). Target t's patch selects the t-component
/// of the first countermove n*_j whose cofactor ¬M(n*_j, x) holds — one
/// miter copy per CEGAR round instead of the naive 2^k - 1 expansion.
StructuralPatches structural_patch_multi(const EcoMiter& m, const qbf::Qbf2Result& cert);

/// Multi-target structural patch by naive cofactor expansion (the
/// 2^k - 1-copy construction the paper contrasts §3.6.2 against). Targets
/// are processed sequentially: target t's patch is the t=0 cofactor of the
/// miter with all later targets universally quantified, and is substituted
/// into the miter before the next target. Used when no QBF certificate is
/// available. Returns ok = false when \p max_nodes is exceeded.
StructuralPatches structural_patch_multi_expansion(const EcoMiter& m, uint32_t max_nodes);

}  // namespace eco::core
