/// \file engine.hpp
/// \brief The full ECO engine: orchestration of Figure 2 of the paper.
///
/// Pipeline: structural pruning (window) -> target-sufficiency check via
/// 2QBF CEGAR -> per-target loop {universal quantification of the remaining
/// targets, cost-aware support computation, cube-enumeration patch
/// function, substitution} -> verification. On resource exhaustion the
/// engine falls back to structural patches in terms of primary inputs
/// (single-target cofactor / multi-target QBF certificate), optionally
/// improved with CEGAR_min.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "eco/cegarmin.hpp"
#include "eco/problem.hpp"
#include "eco/satprune.hpp"
#include "eco/support.hpp"
#include "net/network.hpp"
#include "qbf/qbf2.hpp"

namespace eco::core {

/// The three configurations compared in Table 1 of the paper.
enum class Algorithm {
  kBaseline,           ///< analyze_final only ("w/o minimize_assumptions")
  kMinimize,           ///< "w/ minimize_assumptions" (contest-winning config)
  kSatPruneCegarMin,   ///< "SAT_prune + CEGAR_min"
};

struct EngineOptions {
  Algorithm algorithm = Algorithm::kMinimize;
  /// Conflict budget per SAT query in the SAT-based path (< 0 unlimited).
  int64_t conflict_budget = 500000;
  /// Overall wall-clock budget in seconds (<= 0 unlimited). When exceeded
  /// the engine switches to the structural path.
  double time_budget = 0;
  /// Node cap for the universal-quantification expansion (paper §3.1);
  /// exceeding it triggers the structural fallback.
  uint32_t max_expansion_nodes = 4'000'000;
  /// Wall-clock budget for the final verification (0 = auto: at least 30s).
  double verify_time_budget = 0;
  /// Cap on enumerated patch cubes per target.
  uint64_t max_cubes = 100000;
  /// Force the structural path (used by tests and the ablation bench).
  bool force_structural = false;
  qbf::Qbf2Options qbf{};
  SatPruneOptions satprune{};
  CegarMinOptions cegarmin{};
  /// Last-gasp support improvement (paper §3.4.1), on for non-baseline.
  bool last_gasp = true;
};

/// Per-target report.
struct TargetPatchInfo {
  std::string target_name;
  std::vector<std::string> support;  ///< names of the patch inputs
  int64_t support_cost = 0;          ///< sum of their weights
  bool structural = false;           ///< produced by the structural path
  std::string sop;                   ///< printable SOP (SAT path only)
};

/// Result of a full ECO run.
struct EcoOutcome {
  enum class Status {
    kPatched,     ///< patch computed and verified
    kInfeasible,  ///< the target set cannot rectify the implementation
    kUnknown,     ///< budgets exhausted before an answer
  };
  /// Outcome of the final equivalence check.
  enum class Verification {
    kVerified,      ///< patched implementation proven equivalent to the spec
    kInconclusive,  ///< the check ran out of budget (patch shipped as-is,
                    ///< like the paper's timeout path in §3.2)
    kRefuted,       ///< the check found a mismatch — the patch is wrong
  };
  Status status = Status::kUnknown;
  bool verified = false;  ///< verification == kVerified
  Verification verification = Verification::kInconclusive;
  std::string method;  ///< "sat", "structural", "structural+cegar_min"
  /// Total resource cost: each distinct patch input weighted once.
  int64_t total_cost = 0;
  /// AND-node count of the combined patch module.
  uint32_t patch_gates = 0;
  double seconds = 0;
  std::vector<TargetPatchInfo> targets;
  /// The patch as a standalone module: PIs = patch inputs (named after the
  /// implementation signals), PO t = the function for target t.
  aig::Aig patch_module;
  /// The implementation with all patches substituted (target PIs unused).
  aig::Aig patched_impl;
};

/// Runs the complete flow on \p problem.
EcoOutcome run_eco(const EcoProblem& problem, const EngineOptions& options = {});

/// Convenience: parse-netlists front end (contest-style files already merged
/// into Networks + weights).
EcoOutcome run_eco(const net::Network& impl, const net::Network& spec,
                   const net::WeightMap& weights, const EngineOptions& options = {});

}  // namespace eco::core
