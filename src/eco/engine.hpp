/// \file engine.hpp
/// \brief The full ECO engine: orchestration of Figure 2 of the paper.
///
/// Pipeline: structural pruning (window) -> target-sufficiency check via
/// 2QBF CEGAR -> per-target loop {universal quantification of the remaining
/// targets, cost-aware support computation, cube-enumeration patch
/// function, substitution} -> verification. On resource exhaustion the
/// engine falls back to structural patches in terms of primary inputs
/// (single-target cofactor / multi-target QBF certificate), optionally
/// improved with CEGAR_min.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "cec/sweep.hpp"
#include "eco/cegarmin.hpp"
#include "eco/problem.hpp"
#include "eco/satprune.hpp"
#include "eco/simfilter.hpp"
#include "eco/support.hpp"
#include "net/network.hpp"
#include "qbf/qbf2.hpp"
#include "util/cancel.hpp"
#include "util/ledger.hpp"

namespace eco::util {
class Executor;
}

namespace eco::core {

/// The three configurations compared in Table 1 of the paper.
enum class Algorithm {
  kBaseline,           ///< analyze_final only ("w/o minimize_assumptions")
  kMinimize,           ///< "w/ minimize_assumptions" (contest-winning config)
  kSatPruneCegarMin,   ///< "SAT_prune + CEGAR_min"
};

/// Why a run failed or stopped early (EcoOutcome::fail_reason). The error
/// taxonomy of docs/ROBUSTNESS.md: every exception or budget event inside
/// run_eco maps to exactly one of these; none escapes as a C++ exception.
enum class FailReason {
  kNone,               ///< clean kPatched / kInfeasible result
  kParse,              ///< an input file failed to parse (net::ParseError)
  kInconsistentInput,  ///< inputs parse but are not a valid problem
  kBudget,             ///< a time/conflict/iteration budget expired
  kMemory,             ///< memory budget exceeded or allocation failure
  kCancelled,          ///< external stop (signal, executor shutdown)
  kInternal,           ///< unexpected internal error — a bug; see fail_detail
};

/// Stable lower_snake_case name ("parse", "budget", ...) used in JSON.
const char* fail_reason_name(FailReason r) noexcept;

struct EngineOptions {
  Algorithm algorithm = Algorithm::kMinimize;
  /// Conflict budget per SAT query in the SAT-based path (< 0 unlimited).
  int64_t conflict_budget = 500000;
  /// Overall wall-clock budget in seconds (<= 0 unlimited). When exceeded
  /// the engine switches to the structural path.
  double time_budget = 0;
  /// Node cap for the universal-quantification expansion (paper §3.1);
  /// exceeding it triggers the structural fallback.
  uint32_t max_expansion_nodes = 4'000'000;
  /// Wall-clock budget for the final verification (0 = auto: at least 30s).
  double verify_time_budget = 0;
  /// Cap on enumerated patch cubes per target.
  uint64_t max_cubes = 100000;
  /// Force the structural path (used by tests and the ablation bench).
  bool force_structural = false;
  qbf::Qbf2Options qbf{};
  SatPruneOptions satprune{};
  CegarMinOptions cegarmin{};
  /// Counterexample-driven simulation bank (simfilter.hpp). Defaults come
  /// from the environment (`ECO_SIM_BANK=0` disables); `--sim-bank`
  /// overrides per run. Disabled -> no filter objects are created at all.
  SimFilterOptions simfilter = SimFilterOptions::defaults();
  /// Last-gasp support improvement (paper §3.4.1), on for non-baseline.
  bool last_gasp = true;
  /// Optional thread pool (util/executor.hpp). When set with more than one
  /// job, the final verification runs concurrently with patch-module /
  /// stats assembly. The engine never creates threads on its own; per-run
  /// SAT stat attribution stays exact either way (the worker thread is
  /// captured into this run's solver-totals accumulator).
  util::Executor* executor = nullptr;
  /// Cooperative cancellation observed by every phase: solver search loops,
  /// QBF iterations, the per-target loop, and verification all poll this
  /// token. Combined with time_budget (whichever cancels first wins);
  /// request_stop() — from a CLI signal handler or Executor::shutdown_token
  /// — aborts the run with FailReason::kCancelled. An invalid token means
  /// only time_budget governs.
  CancelToken cancel{};
  /// Strategy ladder (docs/ROBUSTNESS.md): when the primary attempt ends
  /// kUnknown (budget expiry, quantify overflow, internal error) with
  /// budget left, the driver escalates through fallback rungs — structural
  /// resub, bigger SAT budget, wider window, relaxed cost — each under its
  /// own budget slice with exponential backoff. Attempts are recorded in
  /// EngineStats::ladder. Off = single attempt, bit-identical to the
  /// pre-ladder engine.
  bool ladder = true;
  /// CEC engine for the window's outside-PO screen and the final
  /// verification (cec/sweep.hpp). kSweep additionally runs divisor
  /// discovery: proven-equivalent divisors collapse to their cheapest
  /// representative before the support/resub stages. Defaults come from
  /// `CecOptions::defaults()` (env `ECO_CEC`), i.e. kMono — outcomes are
  /// bit-identical unless sweeping is requested.
  cec::CecMode cec_mode = cec::CecOptions::defaults().mode;
  /// Warm-start stimuli (the patch service, src/service/): shared-PI
  /// pattern prefixes harvested from earlier runs on the same problem
  /// (EcoOutcome::harvested_patterns). They join the run's own sim-bank
  /// harvest as directed seeds for the final verification — stimuli to
  /// screen, never assumed counterexamples — so a verdict can only be
  /// reached faster, not changed. Not owned; may be null.
  const std::vector<std::vector<bool>>* warm_patterns = nullptr;
};

/// Per-target report.
struct TargetPatchInfo {
  std::string target_name;
  std::vector<std::string> support;  ///< names of the patch inputs
  int64_t support_cost = 0;          ///< sum of their weights
  bool structural = false;           ///< produced by the structural path
  std::string sop;                   ///< printable SOP (SAT path only)
  double support_seconds = 0;        ///< support computation time (SAT path)
  int support_sat_calls = 0;         ///< SAT queries for this target's support
};

/// One strategy-ladder attempt (EngineStats::ladder): which rung ran, how
/// it ended, and how long it took. The first entry is always "primary".
struct LadderAttempt {
  std::string rung;         ///< "primary", "resub", "sat_patchfunc", ...
  std::string result;       ///< outcome status name ("patched", "unknown", ...)
  std::string fail_reason;  ///< FailReason name ("none" when it succeeded)
  double seconds = 0;
};

/// Structured engine statistics, filled on every run (independent of the
/// telemetry runtime flag): phase wall-clock breakdown, loop/iteration
/// counts, and the SAT totals aggregated over every solver the run created.
struct EngineStats {
  // Phase breakdown; the phases partition outcome.seconds (up to glue code).
  double window_seconds = 0;      ///< structural pruning (§3.3)
  double qbf_seconds = 0;         ///< 2QBF target-sufficiency check (§3.2)
  double sat_path_seconds = 0;    ///< per-target SAT loop (§3.1/3.4/3.5)
  double structural_seconds = 0;  ///< structural fallback (§3.6)
  double assemble_seconds = 0;    ///< patch module build + substitution
  double verify_seconds = 0;      ///< final equivalence check

  int qbf_iterations = 0;        ///< CEGAR refinements in the feasibility check
  int support_sat_calls = 0;     ///< summed over targets (SAT path)
  int satprune_sat_calls = 0;    ///< SAT_prune feasibility queries
  int satprune_iterations = 0;   ///< implicit-hitting-set refinements
  int targets_attempted = 0;     ///< targets entered in the SAT loop

  // SAT totals of this run, collected by a per-run accumulator
  // (telemetry::SolverTotalsAccumulator): every solver destroyed on the
  // run's threads is credited here, so the values are identical whether the
  // run executes alone or concurrently with other runs in the process.
  uint64_t sat_solvers = 0;
  uint64_t sat_solves = 0;
  uint64_t sat_decisions = 0;
  uint64_t sat_propagations = 0;
  uint64_t sat_conflicts = 0;
  uint64_t sat_restarts = 0;
  // Incremental fast path + learnt tiering (sat/solver.hpp SolverStats).
  uint64_t sat_prefix_reused_levels = 0;
  uint64_t sat_propagations_saved = 0;
  uint64_t sat_restarts_blocked = 0;
  uint64_t sat_learnts_core = 0;
  uint64_t sat_learnts_tier2 = 0;
  uint64_t sat_learnts_local = 0;
  // Intra-query parallel SAT (sat/parsolve.hpp); all zero with --par-sat=off.
  uint64_t sat_par_escalations = 0;
  uint64_t sat_par_portfolio = 0;
  uint64_t sat_par_cube = 0;
  uint64_t sat_par_wins = 0;
  uint64_t sat_par_clauses_imported = 0;

  // Simulation-bank filtering (eco/simfilter.hpp), summed over the run's
  // filters; all zero when the bank is disabled.
  uint64_t sim_refuted_support = 0;   ///< support checks answered by the bank
  uint64_t sim_filtered_resub = 0;    ///< resub dependency checks answered
  uint64_t sim_irredundant_hits = 0;  ///< irredundancy SAT calls skipped
  uint64_t sim_bank_patterns = 0;     ///< counterexamples recorded into banks
  uint64_t sim_resim_nodes = 0;       ///< incremental re-simulation node-words

  // SAT sweeping (cec/sweep.hpp), summed over the run's window divisor
  // discovery and sweeping verification; all zero with cec_mode == kMono.
  uint64_t sweep_classes = 0;         ///< multi-member candidate classes
  uint64_t sweep_proofs = 0;          ///< pairs proven equivalent by SAT
  uint64_t sweep_refutes = 0;         ///< pairs refuted (model harvested)
  uint64_t sweep_merges = 0;          ///< nodes merged (SAT + structural)
  uint64_t sweep_cex_splits = 0;      ///< counterexamples folded into the bank
  uint64_t sweep_equiv_divisors = 0;  ///< divisors collapsed onto a cheaper twin

  /// Strategy-ladder log: one entry per attempt ("primary" first, then any
  /// escalation rungs). A single entry means no escalation happened.
  std::vector<LadderAttempt> ladder;
};

/// Result of a full ECO run.
struct EcoOutcome {
  enum class Status {
    kPatched,     ///< patch computed and verified
    kInfeasible,  ///< the target set cannot rectify the implementation
    kUnknown,     ///< budgets exhausted before an answer
    kError,       ///< the run failed — see fail_reason / fail_detail
  };
  /// Outcome of the final equivalence check.
  enum class Verification {
    kVerified,      ///< patched implementation proven equivalent to the spec
    kInconclusive,  ///< the check ran out of budget (patch shipped as-is,
                    ///< like the paper's timeout path in §3.2)
    kRefuted,       ///< the check found a mismatch — the patch is wrong
  };
  Status status = Status::kUnknown;
  /// Why the run failed or stopped early; kNone on clean results. Filled
  /// for kError always, and for kUnknown when a budget / stop / refuted
  /// verification ended the run.
  FailReason fail_reason = FailReason::kNone;
  /// One-line diagnostic for kError (the mapped exception message) or for
  /// notable early exits; empty otherwise.
  std::string fail_detail;
  bool verified = false;  ///< verification == kVerified
  Verification verification = Verification::kInconclusive;
  std::string method;  ///< "sat", "structural", "structural+cegar_min"
  /// Total resource cost: each distinct patch input weighted once.
  int64_t total_cost = 0;
  /// AND-node count of the combined patch module.
  uint32_t patch_gates = 0;
  double seconds = 0;
  /// Phase/counter/SAT breakdown of this run (always filled).
  EngineStats stats;
  std::vector<TargetPatchInfo> targets;
  /// The patch as a standalone module: PIs = patch inputs (named after the
  /// implementation signals), PO t = the function for target t.
  aig::Aig patch_module;
  /// The implementation with all patches substituted (target PIs unused).
  aig::Aig patched_impl;
  /// Flight-recorder dump: the last ledger records before a kError outcome
  /// or an injected fault (util/ledger.hpp). Empty on clean runs or with
  /// the ledger disabled; serialized into the outcome JSON.
  std::vector<ledger::Record> flight_recorder;
  /// Shared-PI counterexample prefixes this run harvested from its
  /// simulation banks plus any warm seeds it was given (bounded; the union
  /// fed to the final verification). A serving layer stores these per
  /// session and feeds them back via EngineOptions::warm_patterns. Not
  /// serialized into the outcome JSON.
  std::vector<std::vector<bool>> harvested_patterns;
};

/// Runs the complete flow on \p problem.
///
/// Crash-proof contract: never throws. Every exception raised inside —
/// parser errors, allocation failures, internal logic errors — is mapped to
/// an EcoOutcome with Status::kError and the matching FailReason; budget
/// expiry and external stops surface as kUnknown with fail_reason
/// kBudget/kCancelled. With EngineOptions::ladder the driver retries
/// fallback strategies before giving up (see docs/ROBUSTNESS.md).
EcoOutcome run_eco(const EcoProblem& problem, const EngineOptions& options = {});

/// Convenience: parse-netlists front end (contest-style files already merged
/// into Networks + weights).
EcoOutcome run_eco(const net::Network& impl, const net::Network& spec,
                   const net::WeightMap& weights, const EngineOptions& options = {});

/// Serializes an outcome — status, method, cost, per-target supports, and
/// the EngineStats block — as a JSON object (schema `ecopatch-outcome-v1`,
/// docs/OBSERVABILITY.md). Circuit payloads are summarized, not embedded.
std::string outcome_to_json(const EcoOutcome& outcome);

}  // namespace eco::core
