#include "eco/window.hpp"

#include <algorithm>
#include <stdexcept>

#include "aig/ops.hpp"
#include "aig/window.hpp"
#include "cec/cec.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/faultpoint.hpp"
#include "util/log.hpp"

namespace eco::core {

Window compute_window(const EcoProblem& problem, int64_t conflict_budget) {
  // Fault site: window extraction blows up (e.g. a pathological TFI/TFO
  // traversal) before any window exists.
  if (ECO_FAULT_POINT(fault::Site::kWindowExtract))
    throw std::runtime_error("window: injected fault (window.extract)");
  Window w;
  const aig::Aig& impl = problem.impl;
  const aig::Aig& spec = problem.spec;

  // 1. POs reachable from the targets.
  std::vector<aig::Node> target_nodes;
  for (uint32_t t = 0; t < problem.num_targets(); ++t)
    target_nodes.push_back(impl.pi_node(problem.target_pi(t)));
  w.affected_pos = aig::tfo_pos(impl, target_nodes);

  // 2. Window PIs: shared PIs in the TFI of the window POs, in either netlist.
  std::vector<uint8_t> pi_in_window(problem.num_shared_pis(), 0);
  {
    std::vector<aig::Lit> impl_roots, spec_roots;
    for (const uint32_t po : w.affected_pos) {
      impl_roots.push_back(impl.po_lit(po));
      spec_roots.push_back(spec.po_lit(po));
    }
    for (const uint32_t pi : aig::support_pis(impl, impl_roots))
      if (pi < problem.num_shared_pis()) pi_in_window[pi] = 1;
    for (const uint32_t pi : aig::support_pis(spec, spec_roots)) pi_in_window[pi] = 1;
  }
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    if (pi_in_window[i]) w.window_pis.push_back(i);

  // 3. Divisor candidates with support inside the window PIs.
  //    (Divisors outside the target TFO were selected in make_problem.)
  {
    const std::vector<uint8_t>* pi_ok = &pi_in_window;
    for (size_t i = 0; i < problem.divisors.size(); ++i) {
      const aig::Lit roots[] = {problem.divisors[i].lit};
      const auto support = aig::support_pis(impl, roots);
      const bool inside = std::all_of(support.begin(), support.end(), [&](uint32_t pi) {
        return pi < problem.num_shared_pis() && (*pi_ok)[pi];
      });
      if (inside) w.divisor_indices.push_back(i);
    }
  }

  // 4. POs outside the window must already match.
  std::vector<uint32_t> outside;
  {
    std::vector<uint8_t> affected(impl.num_pos(), 0);
    for (const uint32_t po : w.affected_pos) affected[po] = 1;
    for (uint32_t po = 0; po < impl.num_pos(); ++po)
      if (!affected[po]) outside.push_back(po);
  }
  if (!outside.empty()) {
    aig::Aig check;
    std::vector<aig::Lit> pis;
    for (uint32_t i = 0; i < impl.num_pis(); ++i) pis.push_back(check.add_pi());
    std::vector<aig::Lit> impl_map(impl.num_nodes(), aig::kLitInvalid);
    impl_map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < impl.num_pis(); ++i) impl_map[impl.pi_node(i)] = pis[i];
    std::vector<aig::Lit> spec_map(spec.num_nodes(), aig::kLitInvalid);
    spec_map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < spec.num_pis(); ++i) spec_map[spec.pi_node(i)] = pis[i];
    for (const uint32_t po : outside) {
      const aig::Lit impl_roots[] = {impl.po_lit(po)};
      const aig::Lit spec_roots[] = {spec.po_lit(po)};
      const aig::Lit a = aig::transfer(impl, check, impl_roots, impl_map)[0];
      const aig::Lit b = aig::transfer(spec, check, spec_roots, spec_map)[0];
      const aig::Lit diff = check.add_xor(a, b);
      const auto result = cec::check_const0(check, diff, conflict_budget);
      if (result.status == cec::Status::kNotEquivalent) {
        w.outside_equal = false;
        w.mismatch_po = po;
        log_info("window: PO %u differs outside the target cone: ECO infeasible", po);
        return w;
      }
      // kUnknown is treated as equal; the final verification will catch it.
    }
  }
  return w;
}

}  // namespace eco::core
