#include "eco/window.hpp"

#include <algorithm>
#include <functional>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "aig/ops.hpp"
#include "aig/window.hpp"
#include "cec/cec.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/faultpoint.hpp"
#include "util/log.hpp"

namespace eco::core {

namespace {

/// Collapses proven-equivalent divisors (up to complement) onto their
/// cheapest member. Builds a node-level union-find from the sweep's proven
/// pairs, groups divisors by equivalence class, and returns one alias entry
/// per divisor (identity when a divisor has no proven twin).
std::vector<size_t> alias_from_equivalences(const EcoProblem& problem,
                                            std::span<const cec::EquivPair> proven) {
  std::unordered_map<aig::Node, aig::Node> parent;
  std::function<aig::Node(aig::Node)> find = [&](aig::Node n) -> aig::Node {
    auto it = parent.find(n);
    if (it == parent.end() || it->second == n) return n;
    const aig::Node root = find(it->second);
    it->second = root;
    return root;
  };
  for (const cec::EquivPair& pair : proven) {
    const aig::Node ra = find(aig::lit_node(pair.a));
    const aig::Node rb = find(aig::lit_node(pair.b));
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::vector<size_t> alias(problem.divisors.size());
  std::unordered_map<aig::Node, size_t> representative;
  // First pass: cheapest divisor per class (ties break to the lower index
  // because the scan is in index order and comparisons are strict).
  for (size_t i = 0; i < problem.divisors.size(); ++i) {
    const aig::Node root = find(aig::lit_node(problem.divisors[i].lit));
    const auto [it, fresh] = representative.emplace(root, i);
    if (!fresh && problem.divisors[i].cost < problem.divisors[it->second].cost)
      it->second = i;
  }
  for (size_t i = 0; i < problem.divisors.size(); ++i)
    alias[i] = representative.at(find(aig::lit_node(problem.divisors[i].lit)));
  return alias;
}

}  // namespace

Window compute_window(const EcoProblem& problem, int64_t conflict_budget,
                      cec::CecMode cec_mode, util::Executor* executor,
                      cec::SweepStats* sweep_stats) {
  // Fault site: window extraction blows up (e.g. a pathological TFI/TFO
  // traversal) before any window exists.
  if (ECO_FAULT_POINT(fault::Site::kWindowExtract))
    throw std::runtime_error("window: injected fault (window.extract)");
  Window w;
  const aig::Aig& impl = problem.impl;
  const aig::Aig& spec = problem.spec;

  // 1. POs reachable from the targets.
  std::vector<aig::Node> target_nodes;
  for (uint32_t t = 0; t < problem.num_targets(); ++t)
    target_nodes.push_back(impl.pi_node(problem.target_pi(t)));
  w.affected_pos = aig::tfo_pos(impl, target_nodes);

  // 2. Window PIs: shared PIs in the TFI of the window POs, in either netlist.
  std::vector<uint8_t> pi_in_window(problem.num_shared_pis(), 0);
  {
    std::vector<aig::Lit> impl_roots, spec_roots;
    for (const uint32_t po : w.affected_pos) {
      impl_roots.push_back(impl.po_lit(po));
      spec_roots.push_back(spec.po_lit(po));
    }
    for (const uint32_t pi : aig::support_pis(impl, impl_roots))
      if (pi < problem.num_shared_pis()) pi_in_window[pi] = 1;
    for (const uint32_t pi : aig::support_pis(spec, spec_roots)) pi_in_window[pi] = 1;
  }
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    if (pi_in_window[i]) w.window_pis.push_back(i);

  // 3. Divisor candidates with support inside the window PIs.
  //    (Divisors outside the target TFO were selected in make_problem.)
  {
    const std::vector<uint8_t>* pi_ok = &pi_in_window;
    for (size_t i = 0; i < problem.divisors.size(); ++i) {
      const aig::Lit roots[] = {problem.divisors[i].lit};
      const auto support = aig::support_pis(impl, roots);
      const bool inside = std::all_of(support.begin(), support.end(), [&](uint32_t pi) {
        return pi < problem.num_shared_pis() && (*pi_ok)[pi];
      });
      if (inside) w.divisor_indices.push_back(i);
    }
  }

  // 3b. Sweep-mode divisor discovery (ROADMAP item 2 payoff): proven-
  //     equivalent divisors are zero-cost structural duplicates; collapsing
  //     them onto their cheapest representative shrinks every downstream
  //     support/resub query without losing any expressible patch function.
  if (cec_mode == cec::CecMode::kSweep && w.divisor_indices.size() >= 2) {
    std::vector<aig::Lit> roots;
    roots.reserve(w.divisor_indices.size());
    for (const size_t i : w.divisor_indices) roots.push_back(problem.divisors[i].lit);
    const cec::SweepResult discovered = cec::sweep_discover(impl, roots, {}, {}, executor);
    if (sweep_stats != nullptr) sweep_stats->accumulate(discovered.stats);
    if (!discovered.proven.empty())
      w.divisor_alias = alias_from_equivalences(problem, discovered.proven);
  }

  // 4. POs outside the window must already match.
  std::vector<uint32_t> outside;
  {
    std::vector<uint8_t> affected(impl.num_pos(), 0);
    for (const uint32_t po : w.affected_pos) affected[po] = 1;
    for (uint32_t po = 0; po < impl.num_pos(); ++po)
      if (!affected[po]) outside.push_back(po);
  }
  if (!outside.empty()) {
    aig::Aig check;
    std::vector<aig::Lit> pis;
    for (uint32_t i = 0; i < impl.num_pis(); ++i) pis.push_back(check.add_pi());
    std::vector<aig::Lit> impl_map(impl.num_nodes(), aig::kLitInvalid);
    impl_map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < impl.num_pis(); ++i) impl_map[impl.pi_node(i)] = pis[i];
    std::vector<aig::Lit> spec_map(spec.num_nodes(), aig::kLitInvalid);
    spec_map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < spec.num_pis(); ++i) spec_map[spec.pi_node(i)] = pis[i];
    for (const uint32_t po : outside) {
      const aig::Lit impl_roots[] = {impl.po_lit(po)};
      const aig::Lit spec_roots[] = {spec.po_lit(po)};
      const aig::Lit a = aig::transfer(impl, check, impl_roots, impl_map)[0];
      const aig::Lit b = aig::transfer(spec, check, spec_roots, spec_map)[0];
      const aig::Lit diff = check.add_xor(a, b);
      cec::CecResult result;
      const aig::Lit cone_roots[] = {diff};
      if (cec_mode == cec::CecMode::kSweep &&
          check.cone_size(cone_roots) >= cec::CecOptions::defaults().min_nodes) {
        cec::SweepResult sr =
            cec::sweep_check(check, diff, conflict_budget, {}, {}, {}, executor);
        if (sweep_stats != nullptr) sweep_stats->accumulate(sr.stats);
        result = std::move(sr.cec);
      } else {
        result = cec::check_const0(check, diff, conflict_budget);
      }
      if (result.status == cec::Status::kNotEquivalent) {
        w.outside_equal = false;
        w.mismatch_po = po;
        log_info("window: PO %u differs outside the target cone: ECO infeasible", po);
        return w;
      }
      // kUnknown is treated as equal; the final verification will catch it.
    }
  }
  return w;
}

}  // namespace eco::core
