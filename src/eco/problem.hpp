/// \file problem.hpp
/// \brief The ECO problem instance (paper §2.5).
///
/// An instance consists of:
///  - the old *implementation* netlist, in which every target signal appears
///    as an extra primary input (the ICCAD'17 contest convention: the
///    original logic of a target has been cut away and the patch must drive
///    the freed input),
///  - the new *specification* netlist over the original inputs,
///  - a list of *divisor candidates*: named implementation signals allowed
///    as patch inputs, each with a resource cost (weight).
///
/// Conventions inside \ref EcoProblem:
///  - impl PIs are ordered: first the shared inputs in spec PI order, then
///    the target inputs;
///  - spec PIs are exactly the shared inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "net/elaborate.hpp"
#include "net/network.hpp"

namespace eco::core {

/// A candidate patch input.
struct Divisor {
  aig::Lit lit = aig::kLitFalse;  ///< signal in the implementation AIG
  std::string name;
  int64_t cost = 1;
};

/// A ready-to-solve ECO instance.
struct EcoProblem {
  aig::Aig impl;  ///< PIs: shared inputs (spec order) then targets
  aig::Aig spec;
  std::vector<std::string> target_names;  ///< one per target PI, in PI order
  std::vector<Divisor> divisors;

  uint32_t num_shared_pis() const noexcept { return spec.num_pis(); }
  uint32_t num_targets() const noexcept { return impl.num_pis() - spec.num_pis(); }
  /// impl PI index of target \p t.
  uint32_t target_pi(uint32_t t) const noexcept { return spec.num_pis() + t; }
};

/// Builds an EcoProblem from contest-style netlists.
///
/// Target inputs are the implementation inputs that are not specification
/// inputs (contest convention). Divisor candidates are all shared inputs and
/// all gate-output signals outside the targets' transitive fanout, weighted
/// by \p weights; duplicates (names mapping to the same AIG node) keep the
/// cheapest name. Throws std::runtime_error when the interfaces are
/// inconsistent.
EcoProblem make_problem(const net::Network& impl, const net::Network& spec,
                        const net::WeightMap& weights);

}  // namespace eco::core
