/// \file support.hpp
/// \brief Cost-aware patch support computation (paper §3.4.1).
///
/// The two-copy instance of expression (2)/(3) is built in one incremental
/// solver: copy 1 asserts M(0, x1), copy 2 asserts M(1, x2), and each
/// candidate divisor j contributes an auxiliary activation variable a_j with
/// the constraint a_j -> (d1_j == d2_j). Assuming every a_j makes the
/// instance UNSAT exactly when the divisor set suffices to express a patch;
/// a minimal low-cost subset of the a_j is then found with
/// ``minimize_assumptions`` (assumptions ordered by increasing cost), or —
/// in the paper's baseline configuration — read off the solver's final
/// conflict (``analyze_final``) without minimization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eco/miter.hpp"
#include "sat/solver.hpp"

namespace eco::core {

/// How the support subset is extracted from the UNSAT two-copy instance.
enum class SupportMode {
  kAnalyzeFinal,          ///< paper Table 1 "w/o minimize_assumptions"
  kMinimizeAssumptions,   ///< paper Table 1 "w/ minimize_assumptions"
};

struct SupportOptions {
  SupportMode mode = SupportMode::kMinimizeAssumptions;
  /// Enable the last-gasp pairwise replacement improvement (paper §3.4.1).
  bool last_gasp = true;
  /// Cap on last-gasp replacement SAT queries.
  int max_last_gasp_queries = 256;
  /// Conflict budget per SAT query (< 0 unlimited).
  int64_t conflict_budget = -1;
};

struct SupportResult {
  /// False when the candidate divisors cannot express any patch (the
  /// two-copy instance is satisfiable) or a budget expired.
  bool feasible = false;
  bool budget_expired = false;
  /// Chosen divisors, as indices into the problem's divisor list.
  std::vector<size_t> chosen;
  int64_t cost = 0;
  int sat_calls = 0;
};

/// A reusable encoding of the two-copy instance for one target.
class SupportInstance {
 public:
  /// \p m must have every target other than \p target already quantified or
  /// substituted away. \p candidates are indices into \p divisors.
  SupportInstance(const EcoMiter& m, uint32_t target, const std::vector<Divisor>& divisors,
                  std::span<const size_t> candidates);

  /// Checks whether the subset \p subset (indices into the global divisor
  /// list; must be among the candidates) suffices.
  /// Returns kFalse = sufficient (UNSAT), kTrue = insufficient, kUndef = budget.
  sat::LBool check_subset(std::span<const size_t> subset, int64_t conflict_budget = -1);

  /// After an insufficient (kTrue) check: the divisors whose two copies
  /// differ in the found model — at least one of them must join any valid
  /// support (the separator clause of SAT_prune, paper §3.4.2).
  std::vector<size_t> separator() const;

  /// Assumption literal of candidate divisor \p global_index.
  sat::Lit activation(size_t global_index) const;

  sat::Solver& solver() noexcept { return solver_; }
  const std::vector<size_t>& candidates() const noexcept { return candidates_; }

 private:
  sat::Solver solver_;
  std::vector<size_t> candidates_;
  std::vector<sat::Lit> activation_;  // parallel to candidates_
  std::vector<sat::Lit> d1_, d2_;     // divisor literals in the two copies
  std::vector<int32_t> act_index_of_global_;
};

/// Computes a patch support for \p target (paper §3.4.1).
SupportResult compute_support(SupportInstance& inst, const std::vector<Divisor>& divisors,
                              const SupportOptions& options);

}  // namespace eco::core
