/// \file support.hpp
/// \brief Cost-aware patch support computation (paper §3.4.1).
///
/// The two-copy instance of expression (2)/(3) is built in one incremental
/// solver: copy 1 asserts M(0, x1), copy 2 asserts M(1, x2), and each
/// candidate divisor j contributes an auxiliary activation variable a_j with
/// the constraint a_j -> (d1_j == d2_j). Assuming every a_j makes the
/// instance UNSAT exactly when the divisor set suffices to express a patch;
/// a minimal low-cost subset of the a_j is then found with
/// ``minimize_assumptions`` (assumptions ordered by increasing cost), or —
/// in the paper's baseline configuration — read off the solver's final
/// conflict (``analyze_final``) without minimization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eco/miter.hpp"
#include "sat/solver.hpp"

namespace eco::core {

class SimFilter;

/// How the support subset is extracted from the UNSAT two-copy instance.
enum class SupportMode {
  kAnalyzeFinal,          ///< paper Table 1 "w/o minimize_assumptions"
  kMinimizeAssumptions,   ///< paper Table 1 "w/ minimize_assumptions"
};

struct SupportOptions {
  SupportMode mode = SupportMode::kMinimizeAssumptions;
  /// Enable the last-gasp pairwise replacement improvement (paper §3.4.1).
  bool last_gasp = true;
  /// Cap on last-gasp replacement SAT queries.
  int max_last_gasp_queries = 256;
  /// Conflict budget per SAT query (< 0 unlimited).
  int64_t conflict_budget = -1;
  /// Let an attached SimFilter answer last-gasp trial checks without the
  /// solver. Must be false when a model-consuming pass (sat_prune) will run
  /// on the same instance afterwards: skipping solves changes the solver's
  /// learnt state and therefore the models that pass would read.
  bool sim_refute_last_gasp = true;
};

struct SupportResult {
  /// False when the candidate divisors cannot express any patch (the
  /// two-copy instance is satisfiable) or a budget expired.
  bool feasible = false;
  bool budget_expired = false;
  /// Chosen divisors, as indices into the problem's divisor list.
  std::vector<size_t> chosen;
  int64_t cost = 0;
  int sat_calls = 0;
};

/// A reusable encoding of the two-copy instance for one target.
class SupportInstance {
 public:
  /// \p m must have every target other than \p target already quantified or
  /// substituted away. \p candidates are indices into \p divisors.
  SupportInstance(const EcoMiter& m, uint32_t target, const std::vector<Divisor>& divisors,
                  std::span<const size_t> candidates);

  /// Attaches a simulation filter (may be null to detach). Every kTrue
  /// solve's model is harvested into the filter's bank; queries are answered
  /// by the bank only when check_subset is called with use_sim_filter.
  void attach_sim_filter(SimFilter* filter) noexcept { sim_ = filter; }
  SimFilter* sim_filter() const noexcept { return sim_; }

  /// Checks whether the subset \p subset (indices into the global divisor
  /// list; must be among the candidates) suffices.
  /// Returns kFalse = sufficient (UNSAT), kTrue = insufficient, kUndef = budget.
  /// With \p use_sim_filter and an attached filter, an insufficiency witness
  /// in the simulation bank answers kTrue without touching the solver (the
  /// witness is a concrete model, so the verdict is exact).
  sat::LBool check_subset(std::span<const size_t> subset, int64_t conflict_budget = -1,
                          bool use_sim_filter = false);

  /// After an insufficient (kTrue) check: the divisors whose two copies
  /// differ in the found model — at least one of them must join any valid
  /// support (the separator clause of SAT_prune, paper §3.4.2). Reads the
  /// simulation witness pair instead when the last check was sim-refuted.
  std::vector<size_t> separator() const;

  /// Assumption literal of candidate divisor \p global_index.
  sat::Lit activation(size_t global_index) const;

  /// Records the solver's current model (one pattern per copy) into the
  /// attached filter's bank; no-op without a filter. check_subset calls this
  /// on every kTrue verdict; it is public for callers that solve directly.
  void harvest_model();

  sat::Solver& solver() noexcept { return solver_; }
  const std::vector<size_t>& candidates() const noexcept { return candidates_; }

 private:
  sat::Solver solver_;
  std::vector<size_t> candidates_;
  std::vector<sat::Lit> activation_;  // parallel to candidates_
  std::vector<sat::Lit> d1_, d2_;     // divisor literals in the two copies
  std::vector<int32_t> act_index_of_global_;
  // Simulation-filter attachment: per-copy (pi index, solver var) pairs of
  // the miter PIs that ended up encoded, for turning models into patterns.
  SimFilter* sim_ = nullptr;
  bool last_sim_refuted_ = false;
  uint32_t num_pis_ = 0;
  std::vector<std::pair<uint32_t, sat::Var>> pi_vars1_, pi_vars2_;
};

/// Computes a patch support for \p target (paper §3.4.1).
SupportResult compute_support(SupportInstance& inst, const std::vector<Divisor>& divisors,
                              const SupportOptions& options);

/// Drops every candidate whose SAT-sweeping alias (Window::divisor_alias —
/// the cheapest divisor proven equivalent up to complement) is itself among
/// the candidates: the representative expresses the same functions at no
/// higher cost, so the duplicate only inflates the two-copy instance. A
/// candidate whose representative is *not* a candidate (e.g. filtered out
/// by the window-PI containment) is kept. Returns \p candidates unchanged
/// when \p alias is empty (mono mode). Order is preserved.
std::vector<size_t> dedupe_equivalent_divisors(std::span<const size_t> candidates,
                                               std::span<const size_t> alias);

}  // namespace eco::core
