#include "eco/cegarmin.hpp"

#include <algorithm>
#include <unordered_map>

#include "aig/ops.hpp"
#include "aig/sim.hpp"
#include "cnf/tseitin.hpp"
#include "flow/maxflow.hpp"
#include "sat/solver.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace eco::core {

namespace {

/// Canonical simulation signature: complement-normalized so a node and its
/// inverse collide (the complement flag is recovered separately).
struct Signature {
  std::vector<uint64_t> words;
  bool complemented = false;  ///< true when words were inverted to normalize

  bool operator==(const Signature& o) const { return words == o.words; }
};

Signature normalize(const std::vector<uint64_t>& words) {
  Signature s;
  s.words = words;
  if (!words.empty() && (words[0] & 1ULL)) {
    s.complemented = true;
    for (auto& w : s.words) w = ~w;
  }
  return s;
}

struct SigHash {
  size_t operator()(const std::vector<uint64_t>& words) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const uint64_t w : words) h = (h ^ w) * 0x100000001b3ULL;
    return h;
  }
};

}  // namespace

std::vector<TargetRewrite> cegar_min(const EcoProblem& problem, const aig::Aig& patches,
                                     const CegarMinOptions& options) {
  ECO_TELEMETRY_PHASE("cegar_min");
  ledger::ScopedPurpose ledger_scope(ledger::Purpose::kCegarMin);
  const uint32_t num_targets = patches.num_pos();
  std::vector<TargetRewrite> result(num_targets);

  // Combined AIG: shared inputs, implementation divisors, patch cones.
  aig::Aig combined;
  std::vector<aig::Lit> x;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    x.push_back(combined.add_pi(problem.spec.pi_name(i)));

  // Implementation divisors (target PIs mapped to constant 0 — divisors do
  // not depend on targets, so the value is irrelevant).
  std::vector<aig::Lit> div_in_combined;
  {
    std::vector<aig::Lit> map(problem.impl.num_nodes(), aig::kLitInvalid);
    map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
      map[problem.impl.pi_node(i)] = x[i];
    for (uint32_t t = 0; t < problem.num_targets(); ++t)
      map[problem.impl.pi_node(problem.target_pi(t))] = aig::kLitFalse;
    std::vector<aig::Lit> roots;
    roots.reserve(problem.divisors.size());
    for (const auto& d : problem.divisors) roots.push_back(d.lit);
    div_in_combined = aig::transfer(problem.impl, combined, roots, map);
  }

  // Patch cones; keep the full node map to relate patch nodes to `combined`.
  std::vector<aig::Lit> patch_map(patches.num_nodes(), aig::kLitInvalid);
  {
    patch_map[0] = aig::kLitFalse;
    for (uint32_t i = 0; i < patches.num_pis(); ++i)
      patch_map[patches.pi_node(i)] = x[i];
    std::vector<aig::Lit> roots;
    for (uint32_t t = 0; t < num_targets; ++t) roots.push_back(patches.po_lit(t));
    aig::transfer(patches, combined, roots, patch_map);
  }

  // Random-simulation signatures over `combined` (flat [pi * words + w]).
  Rng rng(options.rng_seed);
  const size_t sim_words = static_cast<size_t>(options.sim_words);
  std::vector<uint64_t> pi_words(static_cast<size_t>(combined.num_pis()) * sim_words);
  for (auto& w : pi_words) w = rng.next();
  const aig::SimWords sim = aig::simulate_words(combined, pi_words, sim_words);

  // Divisor lookup: normalized signature -> divisor indices (cost-sorted,
  // since problem.divisors is cost-sorted).
  std::unordered_map<std::vector<uint64_t>, std::vector<size_t>, SigHash> sig_to_div;
  std::vector<Signature> div_sig(problem.divisors.size());
  for (size_t i = 0; i < problem.divisors.size(); ++i) {
    const aig::Lit dl = div_in_combined[i];
    const auto row = sim.row(aig::lit_node(dl));
    std::vector<uint64_t> words(row.begin(), row.end());
    if (aig::lit_compl(dl))
      for (auto& w : words) w = ~w;
    div_sig[i] = normalize(words);
    sig_to_div[div_sig[i].words].push_back(i);
  }

  // One incremental solver over `combined` answers all equivalence queries.
  sat::Solver solver;
  solver.set_cancel(options.cancel);
  cnf::Encoder enc(combined, solver);
  // Equivalence cache shared between targets: patch node -> match or miss.
  struct Match {
    bool tried = false;
    bool found = false;
    size_t divisor = 0;
    bool complemented = false;
  };
  std::unordered_map<aig::Node, Match> cache;

  auto find_equivalent = [&](aig::Node patch_node) -> Match& {
    Match& m = cache[patch_node];
    if (m.tried) return m;
    m.tried = true;
    if (options.cancel.cancelled()) return m;  // no time to confirm: no match
    const aig::Lit cl = patch_map[patch_node];  // uncomplemented node lit image
    const auto row = sim.row(aig::lit_node(cl));
    std::vector<uint64_t> words(row.begin(), row.end());
    if (aig::lit_compl(cl))
      for (auto& w : words) w = ~w;
    const Signature sig = normalize(words);
    const auto it = sig_to_div.find(sig.words);
    if (it == sig_to_div.end()) return m;
    int checks = 0;
    for (const size_t di : it->second) {
      if (checks++ >= options.max_checks_per_node) break;
      // Candidate polarity: equal normalized signatures; the real relation
      // is (node == div) xor (sig flips differ).
      const bool complemented = sig.complemented != div_sig[di].complemented;
      const aig::Lit diff =
          combined.add_xor(cl, aig::lit_notif(div_in_combined[di], complemented));
      if (diff == aig::kLitFalse) {  // structurally identical
        m.found = true;
        m.divisor = di;
        m.complemented = complemented;
        return m;
      }
      if (diff == aig::kLitTrue) continue;
      solver.set_conflict_budget(options.conflict_budget);
      ECO_TELEMETRY_COUNT("cegarmin.equiv_sat_calls");
      // Single-assumption query; the encoder lazily adds clauses for `diff`
      // right before this call, which cancels the solver to level 0 and so
      // correctly invalidates any trail kept by assumption-prefix reuse.
      const sat::LBool verdict = solver.solve({enc.lit(diff)});
      solver.clear_budgets();
      if (verdict.is_false()) {
        m.found = true;
        m.divisor = di;
        m.complemented = complemented;
        return m;
      }
    }
    return m;
  };

  // Per-target min cut.
  for (uint32_t t = 0; t < num_targets; ++t) {
    const aig::Lit root = patches.po_lit(t);
    const aig::Node root_node = aig::lit_node(root);
    if (patches.is_const0(root_node)) {
      result[t].used_cut = true;  // constant patch: empty support
      result[t].cut_cost = 0;
      continue;
    }

    // Collect the cone of `root` in the patch AIG.
    std::vector<aig::Node> cone;
    {
      std::vector<uint8_t> mark(patches.num_nodes(), 0);
      std::vector<aig::Node> stack{root_node};
      while (!stack.empty()) {
        const aig::Node n = stack.back();
        stack.pop_back();
        if (mark[n] || patches.is_const0(n)) continue;
        mark[n] = 1;
        cone.push_back(n);
        if (patches.is_and(n)) {
          stack.push_back(aig::lit_node(patches.fanin0(n)));
          stack.push_back(aig::lit_node(patches.fanin1(n)));
        }
      }
    }

    std::unordered_map<aig::Node, int> index_of;
    for (size_t i = 0; i < cone.size(); ++i) index_of[cone[i]] = static_cast<int>(i);

    flow::NodeCutGraph graph(static_cast<int>(cone.size()));
    std::vector<Match> node_match(cone.size());
    for (size_t i = 0; i < cone.size(); ++i) {
      const aig::Node n = cone[i];
      const Match& m = find_equivalent(n);
      node_match[i] = m;
      graph.set_node_capacity(static_cast<int>(i),
                              m.found ? problem.divisors[m.divisor].cost : flow::kInfinite);
      if (patches.is_pi(n)) graph.mark_source(static_cast<int>(i));
      if (patches.is_and(n)) {
        for (const aig::Lit f : {patches.fanin0(n), patches.fanin1(n)}) {
          const aig::Node fn = aig::lit_node(f);
          if (!patches.is_const0(fn)) graph.add_edge(index_of.at(fn), static_cast<int>(i));
        }
      }
    }
    graph.mark_sink(index_of.at(root_node));

    const auto cut = graph.solve();
    if (cut.cut_value >= flow::kInfinite) continue;  // keep PI-based patch
    ECO_TELEMETRY_COUNT("cegarmin.cuts_used");
    result[t].used_cut = true;
    result[t].cut_cost = cut.cut_value;
    for (const int ci : cut.cut_nodes) {
      const Match& m = node_match[static_cast<size_t>(ci)];
      result[t].node_assignment.emplace_back(cone[static_cast<size_t>(ci)],
                                             std::make_pair(m.divisor, m.complemented));
    }
  }
  return result;
}

aig::Lit rebuild_patch_on_cut(aig::Aig& impl, const std::vector<Divisor>& divisors,
                              const aig::Aig& patches, uint32_t target,
                              const TargetRewrite& rewrite) {
  std::vector<aig::Lit> map(patches.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (const auto& [node, assignment] : rewrite.node_assignment)
    map[node] = aig::lit_notif(divisors[assignment.first].lit, assignment.second);
  const aig::Lit roots[] = {patches.po_lit(target)};
  return aig::transfer(patches, impl, roots, map)[0];
}

}  // namespace eco::core
