/// \file window.hpp
/// \brief Structural pruning (paper §3.3): compute the logic window the ECO
/// is solved in and the divisor candidates inside it.
#pragma once

#include <cstdint>
#include <vector>

#include "cec/sweep.hpp"
#include "eco/problem.hpp"

namespace eco::util {
class Executor;
}

namespace eco::core {

struct Window {
  /// Implementation PO indices reachable from the targets (window POs).
  std::vector<uint32_t> affected_pos;
  /// Shared-PI indices in the TFI of the window POs (in impl or spec).
  std::vector<uint32_t> window_pis;
  /// Indices into EcoProblem::divisors that qualify (outside target TFO by
  /// construction; support contained in the window PIs).
  std::vector<size_t> divisor_indices;
  /// Divisor-equivalence aliasing from SAT-sweeping discovery (cec_mode ==
  /// kSweep only; empty otherwise). When non-empty it has one entry per
  /// EcoProblem divisor: `divisor_alias[i]` is the index of the cheapest
  /// divisor proven equivalent (up to complement) to divisor i, or i itself
  /// when it has no proven twin. Candidate lists collapse equivalent
  /// divisors onto their representative — same expressible patch functions,
  /// fewer SAT variables, never a costlier support.
  std::vector<size_t> divisor_alias;
  /// True when every PO outside the window is already equivalent between
  /// implementation and specification. When false the ECO is infeasible at
  /// the given targets and \ref mismatch_po names a failing output.
  bool outside_equal = true;
  uint32_t mismatch_po = 0;
};

/// Computes the window. \p conflict_budget bounds the SAT effort of the
/// outside-PO equivalence check (< 0 = unlimited; on timeout the pair is
/// conservatively treated as equal and final verification catches lies).
/// With \p cec_mode == kSweep, large outside-PO checks escalate to the
/// sweeping engine and divisor discovery fills Window::divisor_alias;
/// \p sweep_stats (optional) accumulates the sweep counters.
Window compute_window(const EcoProblem& problem, int64_t conflict_budget = -1,
                      cec::CecMode cec_mode = cec::CecMode::kMono,
                      util::Executor* executor = nullptr,
                      cec::SweepStats* sweep_stats = nullptr);

}  // namespace eco::core
