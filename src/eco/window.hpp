/// \file window.hpp
/// \brief Structural pruning (paper §3.3): compute the logic window the ECO
/// is solved in and the divisor candidates inside it.
#pragma once

#include <cstdint>
#include <vector>

#include "eco/problem.hpp"

namespace eco::core {

struct Window {
  /// Implementation PO indices reachable from the targets (window POs).
  std::vector<uint32_t> affected_pos;
  /// Shared-PI indices in the TFI of the window POs (in impl or spec).
  std::vector<uint32_t> window_pis;
  /// Indices into EcoProblem::divisors that qualify (outside target TFO by
  /// construction; support contained in the window PIs).
  std::vector<size_t> divisor_indices;
  /// True when every PO outside the window is already equivalent between
  /// implementation and specification. When false the ECO is infeasible at
  /// the given targets and \ref mismatch_po names a failing output.
  bool outside_equal = true;
  uint32_t mismatch_po = 0;
};

/// Computes the window. \p conflict_budget bounds the SAT effort of the
/// outside-PO equivalence check (< 0 = unlimited; on timeout the pair is
/// conservatively treated as equal and final verification catches lies).
Window compute_window(const EcoProblem& problem, int64_t conflict_budget = -1);

}  // namespace eco::core
