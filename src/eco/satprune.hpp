/// \file satprune.hpp
/// \brief SAT-based exact pruning (paper §3.4.2): minimum-cost patch support.
///
/// The search space is pruned by iteratively adding clauses of two kinds, as
/// in the paper: clauses blocking infeasible divisor subsets, and bounds
/// blocking subsets that cannot beat the incumbent cost. Concretely this is
/// the implicit-hitting-set scheme:
///
///  - A SAT witness of infeasibility of a candidate subset D is a pair
///    (x1, x2) with M(0,x1) ∧ M(1,x2) ∧ (d == d over D). Every divisor whose
///    value differs between x1 and x2 *separates* the pair; any valid
///    support must contain at least one separator. That is a new clause.
///  - A minimum-cost hitting set H of the collected separator clauses is a
///    lower bound on every valid support. If H itself is feasible it is
///    optimal; otherwise it yields a new separator clause.
///
/// The hitting sets are computed exactly by branch-and-bound (cost-based
/// pruning = the paper's "block divisors whose cost cannot be smaller than
/// the current minimum"). Exactness holds for a single target; for multiple
/// targets the per-target optimum can be a global local optimum, exactly as
/// the paper observes on unit9/unit17.
#pragma once

#include <cstdint>

#include "eco/support.hpp"
#include "util/cancel.hpp"

namespace eco::core {

struct SatPruneOptions {
  /// Upper bound on IHS refinement iterations.
  int max_iterations = 2000;
  /// Upper bound on branch-and-bound nodes per hitting-set computation.
  int64_t max_bb_nodes = 2'000'000;
  /// Conflict budget per feasibility query (< 0 unlimited).
  int64_t conflict_budget = -1;
  /// Overall wall-clock budget in seconds (<= 0 unlimited).
  double time_budget = 0;
  /// Cooperative cancellation, checked each IHS iteration and inside the
  /// branch-and-bound search. An invalid token is ignored.
  CancelToken cancel{};
};

struct SatPruneResult {
  bool feasible = false;
  /// True when the result is proven minimum-cost (no budget interfered).
  bool optimal = false;
  std::vector<size_t> chosen;  ///< indices into the problem divisor list
  int64_t cost = 0;
  int sat_calls = 0;
  int iterations = 0;
};

/// Computes a minimum-cost support for the instance's target.
/// \p warm_start optionally seeds the incumbent (e.g. the
/// minimize_assumptions result); it must be a feasible subset.
SatPruneResult sat_prune(SupportInstance& inst, const std::vector<Divisor>& divisors,
                         const SatPruneOptions& options,
                         const std::vector<size_t>* warm_start = nullptr);

}  // namespace eco::core
