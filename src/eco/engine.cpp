#include "eco/engine.hpp"

#include <algorithm>
#include <future>
#include <new>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "aig/ops.hpp"
#include "aig/window.hpp"
#include "cec/cec.hpp"
#include "eco/miter.hpp"
#include "eco/patchfunc.hpp"
#include "eco/resub.hpp"
#include "eco/structural.hpp"
#include "eco/window.hpp"
#include "sat/parsolve.hpp"
#include "sop/synth.hpp"
#include "util/buildinfo.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"
#include "util/faultpoint.hpp"
#include "util/jsonw.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::core {

namespace {

/// One computed patch, expressed inside an implementation-space AIG.
struct BuiltPatch {
  aig::Lit lit = aig::kLitFalse;   ///< in the work AIG (kept up to date)
  std::vector<size_t> support;     ///< global divisor indices
  bool structural = false;
  std::string sop;
  double support_seconds = 0;
  int support_sat_calls = 0;
};

/// Replaces PI \p pi_index of \p impl by \p patch_lit (a literal of \p impl
/// whose cone must not contain that PI) and remaps every literal in
/// \p tracked into the new AIG.
aig::Aig substitute_target(const aig::Aig& impl, uint32_t pi_index, aig::Lit patch_lit,
                           std::vector<aig::Lit>& tracked) {
  aig::Aig out;
  std::vector<aig::Lit> pi_map;
  pi_map.reserve(impl.num_pis());
  for (uint32_t i = 0; i < impl.num_pis(); ++i) pi_map.push_back(out.add_pi(impl.pi_name(i)));

  std::vector<aig::Lit> map(impl.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < impl.num_pis(); ++i)
    if (i != pi_index) map[impl.pi_node(i)] = pi_map[i];
  const aig::Lit patch_roots[] = {patch_lit};
  const aig::Lit replacement = aig::transfer(impl, out, patch_roots, map)[0];
  map[impl.pi_node(pi_index)] = replacement;

  std::vector<aig::Lit> roots;
  roots.reserve(impl.num_pos() + tracked.size());
  for (uint32_t i = 0; i < impl.num_pos(); ++i) roots.push_back(impl.po_lit(i));
  for (const aig::Lit l : tracked) roots.push_back(l);
  const std::vector<aig::Lit> images = aig::transfer(impl, out, roots, map);
  for (uint32_t i = 0; i < impl.num_pos(); ++i) out.add_po(images[i], impl.po_name(i));
  for (size_t i = 0; i < tracked.size(); ++i) tracked[i] = images[impl.num_pos() + i];
  return out;
}

/// Extracts the standalone patch module: PIs = the union of the supports,
/// PO t = patch t. Patch cones are cut at the support divisor nodes.
aig::Aig build_patch_module(const aig::Aig& work, const std::vector<aig::Lit>& div_lits,
                            const EcoProblem& problem, const std::vector<BuiltPatch>& built) {
  aig::Aig module;
  std::vector<size_t> input_divisors;  // union, in first-use order
  std::unordered_map<size_t, aig::Lit> module_pi_of_divisor;
  for (const auto& bp : built) {
    for (const size_t g : bp.support) {
      if (module_pi_of_divisor.count(g)) continue;
      module_pi_of_divisor.emplace(g, module.add_pi(problem.divisors[g].name));
      input_divisors.push_back(g);
    }
  }
  std::vector<aig::Lit> map(work.num_nodes(), aig::kLitInvalid);
  map[0] = aig::kLitFalse;
  for (const size_t g : input_divisors) {
    const aig::Lit dl = div_lits[g];
    map[aig::lit_node(dl)] = aig::lit_notif(module_pi_of_divisor.at(g), aig::lit_compl(dl));
  }
  for (size_t t = 0; t < built.size(); ++t) {
    const aig::Lit roots[] = {built[t].lit};
    const aig::Lit image = aig::transfer(work, module, roots, map)[0];
    module.add_po(image, "t_" + std::to_string(t));
  }
  return module.cleanup();
}

/// Cap on bank counterexamples carried into the final verification.
constexpr size_t kMaxCecSeeds = 256;

/// Verifies the patched implementation against the spec over the shared PIs.
/// \p cec_seeds are bank counterexample prefixes used as directed stimuli.
cec::Status verify_patched(const EcoProblem& problem, const aig::Aig& patched,
                           int64_t conflict_budget, const Deadline& deadline,
                           std::span<const std::vector<bool>> cec_seeds,
                           const CancelToken& cancel,
                           cec::CecMode cec_mode = cec::CecMode::kMono,
                           util::Executor* executor = nullptr,
                           cec::SweepStats* sweep_stats = nullptr) {
  aig::Aig check;
  std::vector<aig::Lit> x;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    x.push_back(check.add_pi(problem.spec.pi_name(i)));

  std::vector<aig::Lit> impl_map(patched.num_nodes(), aig::kLitInvalid);
  impl_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    impl_map[patched.pi_node(i)] = x[i];
  for (uint32_t t = 0; t < problem.num_targets(); ++t)
    impl_map[patched.pi_node(problem.target_pi(t))] = aig::kLitFalse;  // unused
  std::vector<aig::Lit> impl_roots;
  for (uint32_t i = 0; i < patched.num_pos(); ++i) impl_roots.push_back(patched.po_lit(i));
  const auto impl_pos = aig::transfer(patched, check, impl_roots, impl_map);

  std::vector<aig::Lit> spec_map(problem.spec.num_nodes(), aig::kLitInvalid);
  spec_map[0] = aig::kLitFalse;
  for (uint32_t i = 0; i < problem.num_shared_pis(); ++i)
    spec_map[problem.spec.pi_node(i)] = x[i];
  std::vector<aig::Lit> spec_roots;
  for (uint32_t i = 0; i < problem.spec.num_pos(); ++i)
    spec_roots.push_back(problem.spec.po_lit(i));
  const auto spec_pos = aig::transfer(problem.spec, check, spec_roots, spec_map);

  std::vector<aig::Lit> diffs;
  for (size_t i = 0; i < impl_pos.size(); ++i)
    diffs.push_back(check.add_xor(impl_pos[i], spec_pos[i]));
  const aig::Lit out = check.add_or_multi(diffs);
  if (cec_mode == cec::CecMode::kSweep &&
      check.num_ands() >= cec::CecOptions::defaults().min_nodes) {
    cec::SweepResult sr = cec::sweep_check(check, out, conflict_budget, deadline, cec_seeds,
                                           cancel, executor);
    if (sweep_stats != nullptr) sweep_stats->accumulate(sr.stats);
    return sr.cec.status;
  }
  return cec::check_const0(check, out, conflict_budget, deadline, cec_seeds, cancel).status;
}

std::string cover_to_named_sop(const sop::Cover& cover, const std::vector<size_t>& support,
                               const EcoProblem& problem) {
  if (cover.cubes.empty()) return "0";
  std::string out;
  for (const auto& cube : cover.cubes) {
    if (!out.empty()) out += " + ";
    if (cube.empty()) {
      out += "1";
      continue;
    }
    bool first = true;
    for (const sop::Lit l : cube.lits()) {
      if (!first) out += " & ";
      first = false;
      if (sop::lit_negated(l)) out += '!';
      out += problem.divisors[support[sop::lit_var(l)]].name;
    }
  }
  return out;
}

int64_t union_cost(const std::vector<BuiltPatch>& built, const EcoProblem& problem) {
  std::vector<uint8_t> seen(problem.divisors.size(), 0);
  int64_t total = 0;
  for (const auto& bp : built)
    for (const size_t g : bp.support)
      if (!seen[g]) {
        seen[g] = 1;
        total += problem.divisors[g].cost;
      }
  return total;
}

void fill_target_info(EcoOutcome& outcome, const std::vector<BuiltPatch>& built,
                      const EcoProblem& problem) {
  for (size_t t = 0; t < built.size(); ++t) {
    TargetPatchInfo info;
    info.target_name = problem.target_names[t];
    info.structural = built[t].structural;
    info.sop = built[t].sop;
    info.support_seconds = built[t].support_seconds;
    info.support_sat_calls = built[t].support_sat_calls;
    for (const size_t g : built[t].support) {
      info.support.push_back(problem.divisors[g].name);
      info.support_cost += problem.divisors[g].cost;
    }
    outcome.targets.push_back(std::move(info));
  }
}

/// The SAT-based per-target loop (paper §3.1, §3.4, §3.5). Returns true on
/// success; false means "fall back to the structural path".
bool run_sat_path(const EcoProblem& problem, const Window& window,
                  const EngineOptions& options, const CancelToken& cancel,
                  std::vector<BuiltPatch>& built, aig::Aig& work,
                  std::vector<aig::Lit>& div_lits, bool& proven_infeasible,
                  EngineStats& stats, std::vector<std::vector<bool>>& cec_seeds) {
  const uint32_t k = problem.num_targets();
  std::vector<aig::Lit> patch_lits;

  // Sweeping-proven duplicate divisors collapse onto their cheapest
  // representative: same expressible patch functions, fewer activation
  // variables per two-copy instance.
  const std::vector<size_t> candidates =
      dedupe_equivalent_divisors(window.divisor_indices, window.divisor_alias);

  for (uint32_t t = 0; t < k; ++t) {
    if (cancel.cancelled()) return false;
    ECO_TELEMETRY_PHASE("target");
    ECO_TELEMETRY_COUNT("engine.targets_attempted");
    ++stats.targets_attempted;

    std::vector<Divisor> cur_div = problem.divisors;
    for (size_t i = 0; i < cur_div.size(); ++i) cur_div[i].lit = div_lits[i];
    const EcoMiter m = build_eco_miter(work, problem.spec, cur_div, window.affected_pos);

    std::vector<uint32_t> remaining;
    for (uint32_t u = t + 1; u < k; ++u) remaining.push_back(u);
    EcoMiter mq;
    try {
      ECO_TELEMETRY_PHASE("quantify");
      // Fault site: the expansion's allocation guard trips.
      if (ECO_FAULT_POINT(fault::Site::kAllocGuard)) throw std::bad_alloc();
      mq = quantify_targets(m, remaining, options.max_expansion_nodes);
    } catch (const std::runtime_error&) {
      log_info("engine: quantification expansion too large; structural fallback");
      ECO_TELEMETRY_COUNT("engine.quantify_overflows");
      return false;
    }
    // Cooperative memory accounting: the quantified miter dominates the SAT
    // path's footprint; charge its node count (~16 bytes each) against the
    // token so a memory budget can stop the run before the allocator does.
    cancel.charge_memory(static_cast<uint64_t>(mq.aig.num_nodes()) * 16);

    SupportInstance inst(mq, t, problem.divisors, candidates);
    inst.solver().set_cancel(cancel);

    // Per-target simulation bank over the quantified miter: refutes support
    // checks, skips irredundancy queries, and collects every SAT model this
    // target produces. Accumulated into the run's stats on every exit.
    std::optional<SimFilter> simf;
    if (options.simfilter.enabled) {
      simf.emplace(mq, t, options.simfilter);
      inst.attach_sim_filter(&*simf);
    }
    const auto accumulate_sim = [&]() {
      if (!simf.has_value()) return;
      const SimFilterStats s = simf->stats();
      stats.sim_refuted_support += s.refuted_support;
      stats.sim_filtered_resub += s.filtered_resub;
      stats.sim_irredundant_hits += s.irredundant_hits;
      stats.sim_bank_patterns += s.bank_patterns;
      stats.sim_resim_nodes += s.resim_nodes;
      if (cec_seeds.size() < kMaxCecSeeds)
        for (auto& p : simf->counterexample_prefixes(problem.num_shared_pis(),
                                                     kMaxCecSeeds - cec_seeds.size()))
          cec_seeds.push_back(std::move(p));
    };

    SupportOptions sopt;
    sopt.mode = options.algorithm == Algorithm::kBaseline ? SupportMode::kAnalyzeFinal
                                                          : SupportMode::kMinimizeAssumptions;
    sopt.last_gasp = options.last_gasp && options.algorithm != Algorithm::kBaseline;
    sopt.conflict_budget = options.conflict_budget;
    // Not when sat_prune follows: it reads models off the same solver, and
    // sim-skipped solves would change the learnt state those models come
    // from (see SupportOptions::sim_refute_last_gasp).
    sopt.sim_refute_last_gasp = options.algorithm != Algorithm::kSatPruneCegarMin;
    Timer support_timer;
    SupportResult support = compute_support(inst, problem.divisors, sopt);
    const double support_seconds = support_timer.seconds();
    int target_sat_calls = support.sat_calls;
    stats.support_sat_calls += support.sat_calls;
    log_info("engine: target %u support: feasible=%d |S|=%zu cost=%lld in %.2fs (%d calls)",
             t, support.feasible, support.chosen.size(),
             static_cast<long long>(support.cost), support_seconds,
             support.sat_calls);
    if (support.budget_expired) {
      accumulate_sim();
      return false;
    }
    if (!support.feasible) {
      accumulate_sim();
      proven_infeasible = true;
      return false;
    }

    if (options.algorithm == Algorithm::kSatPruneCegarMin) {
      SatPruneOptions po = options.satprune;
      if (po.conflict_budget < 0) po.conflict_budget = options.conflict_budget;
      if (po.time_budget <= 0 && cancel.remaining() < 1e17)
        po.time_budget = std::max(0.1, cancel.remaining() * 0.5);
      po.cancel = cancel;
      const SatPruneResult pruned = sat_prune(inst, problem.divisors, po, &support.chosen);
      stats.satprune_sat_calls += pruned.sat_calls;
      stats.satprune_iterations += pruned.iterations;
      target_sat_calls += pruned.sat_calls;
      if (pruned.feasible && pruned.cost <= support.cost) {
        support.chosen = pruned.chosen;
        support.cost = pruned.cost;
      }
    }

    // Cost-ascending order makes cube expansion drop expensive literals.
    std::sort(support.chosen.begin(), support.chosen.end(), [&](size_t a, size_t b) {
      if (problem.divisors[a].cost != problem.divisors[b].cost)
        return problem.divisors[a].cost < problem.divisors[b].cost;
      return a < b;
    });

    PatchFuncOptions pf_opt;
    pf_opt.use_minimize = options.algorithm != Algorithm::kBaseline;
    pf_opt.max_cubes = options.max_cubes;
    pf_opt.conflict_budget = options.conflict_budget;
    pf_opt.cancel = cancel;
    pf_opt.sim_filter = simf.has_value() ? &*simf : nullptr;
    const PatchFuncResult pf = compute_patch_cover(mq, t, problem.divisors,
                                                   support.chosen, pf_opt);
    target_sat_calls += pf.sat_calls;
    accumulate_sim();
    if (!pf.ok) return false;

    // Keep only the divisors the SOP actually uses.
    std::vector<uint8_t> used(support.chosen.size(), 0);
    for (const auto& cube : pf.cover.cubes)
      for (const sop::Lit l : cube.lits()) used[sop::lit_var(l)] = 1;
    std::vector<size_t> final_support;
    std::vector<uint32_t> var_remap(support.chosen.size(), 0);
    for (size_t i = 0; i < support.chosen.size(); ++i)
      if (used[i]) {
        var_remap[i] = static_cast<uint32_t>(final_support.size());
        final_support.push_back(support.chosen[i]);
      }
    sop::Cover cover;
    cover.num_vars = static_cast<uint32_t>(final_support.size());
    for (const auto& cube : pf.cover.cubes) {
      std::vector<sop::Lit> lits;
      for (const sop::Lit l : cube.lits())
        lits.push_back(sop::lit_negated(l) ? sop::lit_neg(var_remap[sop::lit_var(l)])
                                           : sop::lit_pos(var_remap[sop::lit_var(l)]));
      cover.cubes.push_back(sop::Cube(std::move(lits)));
    }

    // Realize the patch inside the work AIG over the current divisor lits.
    std::vector<aig::Lit> var_lits;
    var_lits.reserve(final_support.size());
    for (const size_t g : final_support) var_lits.push_back(div_lits[g]);
    const aig::Lit patch_lit = sop::synthesize_cover(work, cover, var_lits);

    BuiltPatch bp;
    bp.support = final_support;
    bp.sop = cover_to_named_sop(cover, final_support, problem);
    bp.support_seconds = support_seconds;
    bp.support_sat_calls = target_sat_calls;
    built.push_back(bp);

    // Substitute and remap every tracked literal.
    ECO_TELEMETRY_PHASE("substitute");
    std::vector<aig::Lit> tracked = div_lits;
    tracked.insert(tracked.end(), patch_lits.begin(), patch_lits.end());
    tracked.push_back(patch_lit);
    work = substitute_target(work, problem.target_pi(t), patch_lit, tracked);
    std::copy(tracked.begin(), tracked.begin() + static_cast<long>(div_lits.size()),
              div_lits.begin());
    patch_lits.assign(tracked.begin() + static_cast<long>(div_lits.size()), tracked.end());
  }

  for (size_t t = 0; t < built.size(); ++t) built[t].lit = patch_lits[t];
  return true;
}

/// Structural path (paper §3.6): PI-based patches, optionally CEGAR_min.
bool run_structural_path(const EcoProblem& problem, const Window& window,
                         const qbf::Qbf2Result& qbf_result, const EngineOptions& options,
                         const CancelToken& cancel, std::vector<BuiltPatch>& built,
                         aig::Aig& work, std::vector<aig::Lit>& div_lits,
                         std::string& method, EngineStats& stats) {
  const uint32_t k = problem.num_targets();
  const EcoMiter m =
      build_eco_miter(problem.impl, problem.spec, problem.divisors, window.affected_pos);

  StructuralPatches patches;
  if (k == 1) {
    patches = structural_patch_single(m, 0);
  } else {
    patches = structural_patch_multi(m, qbf_result);
    if (!patches.ok) {
      // No usable QBF certificate: fall back to the naive 2^k - 1 cofactor
      // expansion the paper contrasts the certificate route against.
      patches = structural_patch_multi_expansion(
          m, std::max<uint32_t>(4 * options.max_expansion_nodes, 1u));
    }
  }
  if (!patches.ok) return false;
  method = "structural";

  // The structural path often runs after the main deadline: grant a bounded
  // grace window instead of unbounded work. grace() keeps the external stop
  // flag live while detaching from the (likely expired) main deadline.
  const double grace_seconds =
      options.time_budget > 0 ? std::max(options.time_budget, 20.0) : 120.0;

  std::vector<TargetRewrite> rewrites(k);
  if (options.algorithm == Algorithm::kSatPruneCegarMin) {
    CegarMinOptions copt = options.cegarmin;
    copt.cancel = cancel.grace(grace_seconds);
    rewrites = cegar_min(problem, patches.patch, copt);
    method = "structural+cegar_min";
  }

  // Impl node -> divisor index, for the PI-based supports. (Lookup is by
  // node, not by name: a PI can share its node with a buffered alias, and
  // the divisor list keeps only the cheapest name per node.)
  std::unordered_map<aig::Node, size_t> divisor_of_node;
  for (size_t i = 0; i < problem.divisors.size(); ++i)
    divisor_of_node.emplace(aig::lit_node(problem.divisors[i].lit), i);

  work = problem.impl;
  div_lits.clear();
  for (const auto& d : problem.divisors) div_lits.push_back(d.lit);

  // One resubstitution bank over `work`, shared by every target: dependency
  // models from target t routinely refute candidate sets of target t+1.
  // `work` only grows (transfer appends AND nodes), which the bank tracks.
  std::optional<ResubFilter> rfilter;
  if (options.simfilter.enabled && options.algorithm == Algorithm::kSatPruneCegarMin)
    rfilter.emplace(work, options.simfilter);

  std::vector<aig::Lit> patch_lits(k);
  for (uint32_t t = 0; t < k; ++t) {
    BuiltPatch bp;
    bp.structural = true;

    // Variant 1 (always available): the PI-based patch as-is.
    aig::Lit pi_lit;
    std::vector<size_t> pi_support;
    int64_t best_cost = 0;
    {
      std::vector<aig::Lit> map(patches.patch.num_nodes(), aig::kLitInvalid);
      map[0] = aig::kLitFalse;
      for (uint32_t i = 0; i < patches.patch.num_pis(); ++i)
        map[patches.patch.pi_node(i)] = work.pi_lit(i);
      const aig::Lit roots[] = {patches.patch.po_lit(t)};
      pi_lit = aig::transfer(patches.patch, work, roots, map)[0];
      for (const uint32_t pi : aig::support_pis(patches.patch, roots)) {
        const auto it = divisor_of_node.find(problem.impl.pi_node(pi));
        if (it == divisor_of_node.end())
          throw std::logic_error("structural patch uses a PI with no divisor entry");
        pi_support.push_back(it->second);
        best_cost += problem.divisors[it->second].cost;
      }
    }
    patch_lits[t] = pi_lit;
    bp.support = pi_support;

    // Variant 2: the CEGAR_min max-flow cut (paper §3.6.3, structural).
    if (rewrites[t].used_cut && rewrites[t].cut_cost <= best_cost) {
      patch_lits[t] = rebuild_patch_on_cut(work, problem.divisors, patches.patch, t,
                                           rewrites[t]);
      bp.support = rewrites[t].support();
      std::sort(bp.support.begin(), bp.support.end());
      bp.support.erase(std::unique(bp.support.begin(), bp.support.end()), bp.support.end());
      best_cost = rewrites[t].cut_cost;
    }

    // Variant 3: functional resubstitution (paper §3.6.3, SAT-based),
    // attempted in the SAT_prune+CEGAR_min configuration only.
    if (options.algorithm == Algorithm::kSatPruneCegarMin) {
      ResubOptions ropt;
      ropt.conflict_budget = options.conflict_budget < 0
                                 ? 50000
                                 : std::min<int64_t>(options.conflict_budget, 50000);
      ropt.cancel = cancel.grace(grace_seconds);
      ropt.sim = rfilter.has_value() ? &*rfilter : nullptr;
      ropt.divisor_alias = window.divisor_alias;
      const ResubResult resub =
          functional_resub(work, pi_lit, problem.divisors, window.divisor_indices, ropt);
      if (resub.ok && resub.cost < best_cost) {
        std::vector<aig::Lit> var_lits;
        var_lits.reserve(resub.support.size());
        for (const size_t g : resub.support) var_lits.push_back(problem.divisors[g].lit);
        patch_lits[t] = sop::synthesize_cover(work, resub.cover, var_lits);
        bp.support = resub.support;
        bp.sop = cover_to_named_sop(resub.cover, resub.support, problem);
        best_cost = resub.cost;
      }
    }

    bp.lit = patch_lits[t];
    built.push_back(std::move(bp));
  }
  if (rfilter.has_value()) {
    const SimFilterStats s = rfilter->stats();
    stats.sim_filtered_resub += s.filtered_resub;
    stats.sim_bank_patterns += s.bank_patterns;
    stats.sim_resim_nodes += s.resim_nodes;
  }
  return true;
}

const char* status_name(EcoOutcome::Status s) noexcept {
  switch (s) {
    case EcoOutcome::Status::kPatched: return "patched";
    case EcoOutcome::Status::kInfeasible: return "infeasible";
    case EcoOutcome::Status::kUnknown: return "unknown";
    case EcoOutcome::Status::kError: return "error";
  }
  return "unknown";
}

/// One full pipeline pass under \p cancel. May throw — the run_eco driver
/// below owns the catch boundary, error taxonomy, and strategy ladder.
EcoOutcome run_eco_attempt(const EcoProblem& problem, const EngineOptions& options,
                           const CancelToken& cancel) {
  Timer timer;
  EcoOutcome outcome;
  const uint32_t k = problem.num_targets();
  ECO_TELEMETRY_PHASE("engine");
  // Per-run SAT accounting: a run-local accumulator captured on this thread
  // (and on any worker thread doing solver work for this run) instead of
  // differencing the process-wide totals, which would silently blend in the
  // solver work of concurrently executing runs.
  telemetry::SolverTotalsAccumulator sat_acc;
  telemetry::ScopedSolverCapture sat_capture(sat_acc);
  // SAT-sweeping counters (cec_mode == kSweep only; zero otherwise),
  // accumulated across window escalation, divisor discovery and the final
  // verification, then copied into the outcome by finish().
  cec::SweepStats sweep_stats;
  const auto finish = [&](EcoOutcome& out) {
    out.seconds = timer.seconds();
    out.stats.sweep_classes = sweep_stats.classes;
    out.stats.sweep_proofs = sweep_stats.proofs;
    out.stats.sweep_refutes = sweep_stats.refutes;
    out.stats.sweep_merges = sweep_stats.merges;
    out.stats.sweep_cex_splits = sweep_stats.cex_splits;
    const telemetry::SolverTotals sat = sat_acc.totals();
    out.stats.sat_solvers = sat.solvers;
    out.stats.sat_solves = sat.solves;
    out.stats.sat_decisions = sat.decisions;
    out.stats.sat_propagations = sat.propagations;
    out.stats.sat_conflicts = sat.conflicts;
    out.stats.sat_restarts = sat.restarts;
    out.stats.sat_prefix_reused_levels = sat.prefix_reused_levels;
    out.stats.sat_propagations_saved = sat.propagations_saved;
    out.stats.sat_restarts_blocked = sat.restarts_blocked;
    out.stats.sat_learnts_core = sat.learnts_core;
    out.stats.sat_learnts_tier2 = sat.learnts_tier2;
    out.stats.sat_learnts_local = sat.learnts_local;
    out.stats.sat_par_escalations = sat.par_escalations;
    out.stats.sat_par_portfolio = sat.par_portfolio;
    out.stats.sat_par_cube = sat.par_cube;
    out.stats.sat_par_wins = sat.par_wins;
    out.stats.sat_par_clauses_imported = sat.par_clauses_imported;
  };

  // 1. Structural pruning (paper §3.3).
  Timer phase_timer;
  Window window;
  {
    ECO_TELEMETRY_PHASE("window");
    window = compute_window(problem, options.conflict_budget, options.cec_mode,
                            options.executor, &sweep_stats);
  }
  if (!window.divisor_alias.empty()) {
    const size_t kept =
        dedupe_equivalent_divisors(window.divisor_indices, window.divisor_alias).size();
    outcome.stats.sweep_equiv_divisors = window.divisor_indices.size() - kept;
    ECO_TELEMETRY_COUNT("engine.sweep_equiv_divisors",
                        outcome.stats.sweep_equiv_divisors);
  }
  outcome.stats.window_seconds = phase_timer.seconds();
  log_info("engine: window computed in %.2fs (%zu affected POs, %zu divisors)",
           outcome.stats.window_seconds, window.affected_pos.size(),
           window.divisor_indices.size());
  ECO_TELEMETRY_GAUGE_MAX("engine.window.affected_pos",
                          static_cast<int64_t>(window.affected_pos.size()));
  ECO_TELEMETRY_GAUGE_MAX("engine.window.divisors",
                          static_cast<int64_t>(window.divisor_indices.size()));
  phase_timer.reset();
  if (!window.outside_equal) {
    outcome.status = EcoOutcome::Status::kInfeasible;
    outcome.method = "window";
    finish(outcome);
    log_info("engine: infeasible — PO %u outside the target cone differs", window.mismatch_po);
    return outcome;
  }

  // 2. Target-sufficiency check via 2QBF CEGAR (paper §3.2).
  const EcoMiter feas_miter =
      build_eco_miter(problem.impl, problem.spec, {}, window.affected_pos);
  // The QBF check gets a bounded slice of the effort: if it cannot decide
  // quickly, the SAT path both solves the problem and detects infeasibility
  // itself (an insufficient full divisor set is exactly step infeasibility).
  qbf::Qbf2Options qopt = options.qbf;
  if (qopt.conflict_budget < 0)
    qopt.conflict_budget =
        options.conflict_budget < 0 ? 20000 : std::min<int64_t>(options.conflict_budget, 20000);
  if (qopt.time_budget <= 0)
    qopt.time_budget = options.time_budget > 0 ? options.time_budget * 0.25 : 30.0;
  qopt.cancel = cancel;
  qbf::Qbf2Result qbf_result;
  {
    ECO_TELEMETRY_PHASE("qbf_feasibility");
    qbf_result = qbf::solve_exists_forall(feas_miter.aig, feas_miter.out, feas_miter.num_x, qopt);
  }
  outcome.stats.qbf_seconds = phase_timer.seconds();
  outcome.stats.qbf_iterations = qbf_result.iterations;
  log_info("engine: qbf feasibility finished in %.2fs (status %d, %d iterations)",
           outcome.stats.qbf_seconds, static_cast<int>(qbf_result.status),
           qbf_result.iterations);
  phase_timer.reset();
  if (qbf_result.status == qbf::Qbf2Status::kTrue) {
    outcome.status = EcoOutcome::Status::kInfeasible;
    outcome.method = "qbf";
    finish(outcome);
    return outcome;
  }

  // 3. SAT-based per-target loop, falling back to the structural path.
  std::vector<BuiltPatch> built;
  aig::Aig work = problem.impl;
  std::vector<aig::Lit> div_lits;
  for (const auto& d : problem.divisors) div_lits.push_back(d.lit);
  bool ok = false;
  bool proven_infeasible = false;
  std::vector<std::vector<bool>> cec_seeds;
  outcome.method = "sat";
  if (!options.force_structural) {
    ECO_TELEMETRY_PHASE("sat_path");
    ok = run_sat_path(problem, window, options, cancel, built, work, div_lits,
                      proven_infeasible, outcome.stats, cec_seeds);
    outcome.stats.sat_path_seconds = phase_timer.seconds();
    log_info("engine: sat path %s in %.2fs", ok ? "succeeded" : "failed",
             outcome.stats.sat_path_seconds);
    phase_timer.reset();
  }
  if (proven_infeasible) {
    outcome.status = EcoOutcome::Status::kInfeasible;
    finish(outcome);
    return outcome;
  }
  if (!ok) {
    ECO_TELEMETRY_PHASE("structural");
    ECO_TELEMETRY_COUNT("engine.structural_fallbacks");
    built.clear();
    work = problem.impl;
    const bool structural_ok = run_structural_path(problem, window, qbf_result, options,
                                                   cancel, built, work, div_lits,
                                                   outcome.method, outcome.stats);
    outcome.stats.structural_seconds = phase_timer.seconds();
    phase_timer.reset();
    if (!structural_ok) {
      outcome.status = EcoOutcome::Status::kUnknown;
      finish(outcome);
      return outcome;
    }
  }

  // 4. Assemble. The patched implementation is produced first so that the
  // final verification — usually the dominant phase — can overlap the
  // remaining patch-module/stats assembly on an executor thread.
  {
    ECO_TELEMETRY_PHASE("assemble");
    // Substitute all targets at once (patches never depend on target PIs).
    std::vector<aig::Lit> plits(k);
    for (uint32_t t = 0; t < k; ++t) plits[t] = built[t].lit;
    std::vector<aig::Lit> tracked;
    aig::Aig patched = work;
    for (uint32_t t = 0; t < k; ++t) {
      tracked.assign(plits.begin() + t + 1, plits.end());
      patched = substitute_target(patched, problem.target_pi(t), plits[t], tracked);
      std::copy(tracked.begin(), tracked.end(), plits.begin() + t + 1);
    }
    outcome.patched_impl = patched.cleanup();
  }

  // Warm seeds (service mode) join the run's own harvest after it, so fresh
  // counterexamples keep priority under the seed cap; the union is both the
  // verification stimulus set and the harvest handed back to the caller.
  if (options.warm_patterns != nullptr) {
    for (const auto& p : *options.warm_patterns) {
      if (cec_seeds.size() >= kMaxCecSeeds) break;
      if (!p.empty()) cec_seeds.push_back(p);
    }
  }
  outcome.harvested_patterns = cec_seeds;

  // 5. Verification (paper Fig. 2 final check).
  // Verification gets its own grace window so a hard CEC cannot hang the
  // engine. An inconclusive check ships the patch but flags it, matching
  // the paper's behaviour when the prover times out (§3.2); a refutation is
  // reported as failure.
  double verify_budget = options.verify_time_budget;
  if (verify_budget <= 0)
    verify_budget = options.time_budget > 0 ? std::max(options.time_budget, 30.0) : 0;
  double verify_seconds = 0;
  const auto verify_job = [&](bool capture_totals) {
    // The solver-capture stack is per thread: when verification runs on an
    // executor thread, this run's accumulator must be re-attached there so
    // the verification solvers are credited to the right run.
    std::optional<telemetry::ScopedSolverCapture> capture;
    if (capture_totals) capture.emplace(sat_acc);
    ECO_TELEMETRY_PHASE("verify");
    // Strong scope: the final verification keeps its tag even through the
    // cec library's own (weak) kCec scope.
    ledger::ScopedPurpose ledger_scope(ledger::Purpose::kVerify);
    Timer verify_timer;
    // Fault site: the verification prover gives up (times out).
    if (ECO_FAULT_POINT(fault::Site::kVerifyTimeout)) {
      verify_seconds = verify_timer.seconds();
      return cec::Status::kUnknown;
    }
    // Verification runs under a grace token: its own window, detached from
    // the (often already expired) main deadline, but still abortable.
    const cec::Status s = verify_patched(problem, outcome.patched_impl,
                                         /*conflict_budget=*/-1, Deadline(verify_budget),
                                         cec_seeds, cancel.grace(verify_budget),
                                         options.cec_mode, options.executor, &sweep_stats);
    verify_seconds = verify_timer.seconds();
    return s;
  };
  std::future<cec::Status> verify_future;
  if (options.executor != nullptr && options.executor->jobs() > 1)
    verify_future = options.executor->submit([&verify_job] { return verify_job(true); });

  {
    // Independent of verification: runs concurrently with it when possible.
    ECO_TELEMETRY_PHASE("assemble");
    outcome.patch_module = build_patch_module(work, div_lits, problem, built);
    outcome.patch_gates = outcome.patch_module.num_ands();
    outcome.total_cost = union_cost(built, problem);
    fill_target_info(outcome, built, problem);
  }
  outcome.stats.assemble_seconds = phase_timer.seconds();

  // wait_helping, not get(): if this run itself executes on a pool task and
  // every worker is busy, the wait drains queued work (possibly the verify
  // job itself) instead of deadlocking.
  const cec::Status check = verify_future.valid()
                                ? options.executor->wait_helping(verify_future)
                                : verify_job(false);
  outcome.stats.verify_seconds = verify_seconds;
  switch (check) {
    case cec::Status::kEquivalent:
      outcome.verification = EcoOutcome::Verification::kVerified;
      outcome.verified = true;
      outcome.status = EcoOutcome::Status::kPatched;
      break;
    case cec::Status::kUnknown:
      outcome.verification = EcoOutcome::Verification::kInconclusive;
      outcome.status = EcoOutcome::Status::kPatched;
      break;
    case cec::Status::kNotEquivalent:
      outcome.verification = EcoOutcome::Verification::kRefuted;
      outcome.status = EcoOutcome::Status::kUnknown;
      // A refuted patch is an engine bug, not a resource problem.
      outcome.fail_reason = FailReason::kInternal;
      outcome.fail_detail = "verification refuted the computed patch";
      break;
  }
  log_info("engine: verification finished in %.2fs (%s)", outcome.stats.verify_seconds,
           outcome.verified ? "equivalent"
                            : (check == cec::Status::kUnknown ? "inconclusive" : "REFUTED"));
  finish(outcome);
  return outcome;
}

/// Flight-recorder depth: the last N ledger records dumped into a failing
/// outcome. Enough to cover the queries leading up to the failure without
/// bloating the JSON.
constexpr size_t kFlightRecorderTail = 32;

/// An EcoOutcome carrying only an error classification.
EcoOutcome error_outcome(FailReason reason, std::string detail) {
  EcoOutcome out;
  out.status = EcoOutcome::Status::kError;
  out.fail_reason = reason;
  out.fail_detail = std::move(detail);
  return out;
}

/// One strategy-ladder rung: a name plus the option tweaks it applies on
/// top of the caller's options (docs/ROBUSTNESS.md, "The strategy ladder").
struct LadderRung {
  const char* name;
  void (*tweak)(EngineOptions&);
};

constexpr LadderRung kLadderRungs[] = {
    // Cheapest first: the structural/resubstitution path skips the
    // quantification that most commonly blew the primary attempt up.
    {"resub",
     [](EngineOptions& o) {
       o.force_structural = true;
       o.algorithm = Algorithm::kSatPruneCegarMin;
     }},
    // Retry the SAT path with a bigger conflict budget.
    {"sat_patchfunc",
     [](EngineOptions& o) {
       o.force_structural = false;
       o.algorithm = Algorithm::kMinimize;
       if (o.conflict_budget > 0) o.conflict_budget *= 4;
     }},
    // Allow a much larger quantification expansion before falling back.
    {"wider_window",
     [](EngineOptions& o) {
       o.force_structural = false;
       o.max_expansion_nodes *= 4;
       if (o.conflict_budget > 0) o.conflict_budget *= 4;
     }},
    // Last resort: drop cost minimization, accept any correct patch.
    {"relaxed_cost",
     [](EngineOptions& o) {
       o.force_structural = false;
       o.algorithm = Algorithm::kBaseline;
       o.last_gasp = false;
       o.max_cubes *= 2;
     }},
};

/// Definitive results beat inconclusive ones beat errors; ties keep the
/// earlier (cheaper) attempt.
int outcome_rank(const EcoOutcome& o) noexcept {
  switch (o.status) {
    case EcoOutcome::Status::kPatched:
    case EcoOutcome::Status::kInfeasible: return 2;
    case EcoOutcome::Status::kUnknown: return 1;
    case EcoOutcome::Status::kError: return 0;
  }
  return 0;
}

}  // namespace

const char* fail_reason_name(FailReason r) noexcept {
  switch (r) {
    case FailReason::kNone: return "none";
    case FailReason::kParse: return "parse";
    case FailReason::kInconsistentInput: return "inconsistent_input";
    case FailReason::kBudget: return "budget";
    case FailReason::kMemory: return "memory";
    case FailReason::kCancelled: return "cancelled";
    case FailReason::kInternal: return "internal";
  }
  return "none";
}

EcoOutcome run_eco(const EcoProblem& problem, const EngineOptions& options) {
  Timer total_timer;

  // Register the run's pool for intra-query parallel SAT (sat/parsolve.hpp)
  // so a stuck solve anywhere in the pipeline can fan out. Harmless when the
  // layer is off; front ends running sweeps register their pool up front.
  if (options.executor != nullptr) sat::set_par_executor(options.executor);

  // The run token: the caller's token capped to time_budget, a fresh
  // deadline token, or the unlimited token when neither limit is set.
  CancelToken run_token = options.cancel;
  if (options.cancel.valid()) {
    if (options.time_budget > 0) run_token = options.cancel.child(options.time_budget);
  } else if (options.time_budget > 0) {
    run_token = CancelToken(options.time_budget);
  }

  // Crash-proof boundary: every exception an attempt raises becomes a
  // kError outcome; an unexplained kUnknown is classified from the token.
  std::vector<LadderAttempt> ladder_log;
  const auto attempt_guarded = [&](const EngineOptions& opts, const CancelToken& token,
                                   const char* rung) {
    Timer attempt_timer;
    const bool ledger_on = ledger::enabled();
    const double attempt_cpu0 = ledger_on ? ledger::thread_cpu_seconds() : 0;
    const uint64_t faults_fired0 = ledger_on ? fault::total_fired() : 0;
    EcoOutcome out;
    try {
      out = run_eco_attempt(problem, opts, token);
    } catch (const net::ParseError& e) {
      out = error_outcome(FailReason::kParse, e.what());
    } catch (const net::InputError& e) {
      out = error_outcome(FailReason::kInconsistentInput, e.what());
    } catch (const std::bad_alloc&) {
      out = error_outcome(FailReason::kMemory, "allocation failed");
    } catch (const std::exception& e) {
      out = error_outcome(FailReason::kInternal, e.what());
    } catch (...) {
      out = error_outcome(FailReason::kInternal, "unknown exception");
    }
    if (out.status == EcoOutcome::Status::kUnknown &&
        out.fail_reason == FailReason::kNone) {
      switch (token.reason()) {
        case CancelReason::kStopped: out.fail_reason = FailReason::kCancelled; break;
        case CancelReason::kMemory: out.fail_reason = FailReason::kMemory; break;
        // Deadline expiry, or a conflict/iteration budget inside a phase.
        default: out.fail_reason = FailReason::kBudget; break;
      }
    }
    LadderAttempt rec;
    rec.rung = rung;
    rec.result = status_name(out.status);
    rec.fail_reason = fail_reason_name(out.fail_reason);
    rec.seconds = attempt_timer.seconds();
    ladder_log.push_back(std::move(rec));
    ECO_TELEMETRY_COUNT("ladder.attempts");
    if (ledger_on) {
      ledger::Record lr;
      lr.kind = ledger::Kind::kLadderAttempt;
      lr.purpose = ledger::Purpose::kLadder;
      lr.wall_seconds = rec.seconds;
      lr.cpu_seconds = ledger::thread_cpu_seconds() - attempt_cpu0;
      lr.result = out.status == EcoOutcome::Status::kPatched ||
                          out.status == EcoOutcome::Status::kInfeasible
                      ? ledger::QueryResult::kSat
                  : out.status == EcoOutcome::Status::kUnknown
                      ? ledger::QueryResult::kUndef
                      : ledger::QueryResult::kUnsat;
      if (out.status == EcoOutcome::Status::kUnknown) {
        switch (out.fail_reason) {
          case FailReason::kCancelled: lr.cancel = ledger::CancelCause::kStopped; break;
          case FailReason::kMemory: lr.cancel = ledger::CancelCause::kMemory; break;
          default: lr.cancel = ledger::CancelCause::kBudget; break;
        }
      }
      ledger::append(lr);
      // Flight recorder: a kError outcome or a fault that fired inside this
      // attempt freezes the ledger tail into the outcome, so the crash is
      // diagnosable from the JSON alone. The attempt record just appended is
      // part of the dump — an attempt that dies before its first query still
      // leaves evidence.
      if (out.status == EcoOutcome::Status::kError ||
          fault::total_fired() > faults_fired0)
        out.flight_recorder = ledger::tail(kFlightRecorderTail);
    }
    return out;
  };

  // Escalation policy: retry on budget expiry or internal failure (a
  // different strategy may succeed where this one broke), never on an
  // external stop, bad input, or a tripped memory account (the account is
  // shared — a retry would cancel instantly).
  const auto should_escalate = [&](const EcoOutcome& out) {
    if (run_token.stop_requested()) return false;
    if (out.status == EcoOutcome::Status::kUnknown)
      return out.fail_reason == FailReason::kBudget ||
             out.fail_reason == FailReason::kInternal;
    if (out.status == EcoOutcome::Status::kError)
      return out.fail_reason == FailReason::kInternal;
    return false;
  };

  EcoOutcome best = attempt_guarded(options, run_token, "primary");
  if (options.ladder && should_escalate(best)) {
    // Per-rung budget slices with exponential backoff, never exceeding the
    // run's remaining wall clock.
    constexpr double kBaseSlice = 15.0;
    double slice = kBaseSlice;
    for (const LadderRung& rung : kLadderRungs) {
      if (!should_escalate(best)) break;
      double rung_budget = slice;
      slice *= 2;
      const double rem = run_token.valid() ? run_token.remaining() : 0;
      if (run_token.valid() && rem < 1e17) {
        if (rem < 1.0) break;  // out of wall clock: not worth another attempt
        rung_budget = std::min(rung_budget, rem);
      }
      EngineOptions ropts = options;
      ropts.time_budget = rung_budget;
      rung.tweak(ropts);
      const CancelToken token =
          run_token.valid() ? run_token.child(rung_budget) : CancelToken(rung_budget);
      ECO_TELEMETRY_COUNT("ladder.escalations");
      log_info("engine: ladder escalates to rung '%s' (%.0fs slice)", rung.name,
               rung_budget);
      EcoOutcome attempt = attempt_guarded(ropts, token, rung.name);
      if (outcome_rank(attempt) > outcome_rank(best)) best = std::move(attempt);
    }
  }
  best.stats.ladder = std::move(ladder_log);
  best.seconds = total_timer.seconds();
  return best;
}

EcoOutcome run_eco(const net::Network& impl, const net::Network& spec,
                   const net::WeightMap& weights, const EngineOptions& options) {
  // The same crash-proof contract covers problem construction: malformed or
  // inconsistent networks become kError outcomes, not exceptions.
  EcoProblem problem;
  try {
    problem = make_problem(impl, spec, weights);
  } catch (const net::ParseError& e) {
    return error_outcome(FailReason::kParse, e.what());
  } catch (const net::InputError& e) {
    return error_outcome(FailReason::kInconsistentInput, e.what());
  } catch (const std::bad_alloc&) {
    return error_outcome(FailReason::kMemory, "allocation failed");
  } catch (const std::exception& e) {
    return error_outcome(FailReason::kInternal, e.what());
  }
  return run_eco(problem, options);
}

std::string outcome_to_json(const EcoOutcome& outcome) {
  const auto verification_name = [](EcoOutcome::Verification v) {
    switch (v) {
      case EcoOutcome::Verification::kVerified: return "verified";
      case EcoOutcome::Verification::kInconclusive: return "inconclusive";
      case EcoOutcome::Verification::kRefuted: return "refuted";
    }
    return "inconclusive";
  };

  JsonWriter w;
  w.begin_object();
  w.kv("schema", "ecopatch-outcome-v1");
  w.kv("git_commit", build::git_commit());
  w.kv("git_dirty", build::git_dirty());
  w.kv("status", status_name(outcome.status));
  w.kv("fail_reason", fail_reason_name(outcome.fail_reason));
  if (!outcome.fail_detail.empty()) w.kv("fail_detail", outcome.fail_detail);
  w.kv("verification", verification_name(outcome.verification));
  w.kv("method", outcome.method);
  w.kv("total_cost", outcome.total_cost);
  w.kv("patch_gates", outcome.patch_gates);
  w.kv("seconds", outcome.seconds);

  w.key("phases");
  w.begin_object();
  w.kv("window", outcome.stats.window_seconds);
  w.kv("qbf_feasibility", outcome.stats.qbf_seconds);
  w.kv("sat_path", outcome.stats.sat_path_seconds);
  w.kv("structural", outcome.stats.structural_seconds);
  w.kv("assemble", outcome.stats.assemble_seconds);
  w.kv("verify", outcome.stats.verify_seconds);
  w.end_object();

  w.key("counts");
  w.begin_object();
  w.kv("qbf_iterations", outcome.stats.qbf_iterations);
  w.kv("support_sat_calls", outcome.stats.support_sat_calls);
  w.kv("satprune_sat_calls", outcome.stats.satprune_sat_calls);
  w.kv("satprune_iterations", outcome.stats.satprune_iterations);
  w.kv("targets_attempted", outcome.stats.targets_attempted);
  w.end_object();

  w.key("sat");
  w.begin_object();
  w.kv("solvers", outcome.stats.sat_solvers);
  w.kv("solves", outcome.stats.sat_solves);
  w.kv("decisions", outcome.stats.sat_decisions);
  w.kv("propagations", outcome.stats.sat_propagations);
  w.kv("conflicts", outcome.stats.sat_conflicts);
  w.kv("restarts", outcome.stats.sat_restarts);
  w.kv("prefix_reused_levels", outcome.stats.sat_prefix_reused_levels);
  w.kv("propagations_saved", outcome.stats.sat_propagations_saved);
  w.kv("restarts_blocked", outcome.stats.sat_restarts_blocked);
  w.kv("learnts_core", outcome.stats.sat_learnts_core);
  w.kv("learnts_tier2", outcome.stats.sat_learnts_tier2);
  w.kv("learnts_local", outcome.stats.sat_learnts_local);
  w.kv("par_escalations", outcome.stats.sat_par_escalations);
  w.kv("par_portfolio", outcome.stats.sat_par_portfolio);
  w.kv("par_cube", outcome.stats.sat_par_cube);
  w.kv("par_wins", outcome.stats.sat_par_wins);
  w.kv("par_clauses_imported", outcome.stats.sat_par_clauses_imported);
  w.end_object();

  w.key("sweep");
  w.begin_object();
  w.kv("classes", outcome.stats.sweep_classes);
  w.kv("proofs", outcome.stats.sweep_proofs);
  w.kv("refutes", outcome.stats.sweep_refutes);
  w.kv("merges", outcome.stats.sweep_merges);
  w.kv("cex_splits", outcome.stats.sweep_cex_splits);
  w.kv("equiv_divisors", outcome.stats.sweep_equiv_divisors);
  w.end_object();

  w.key("sim");
  w.begin_object();
  w.kv("refuted_support", outcome.stats.sim_refuted_support);
  w.kv("filtered_resub", outcome.stats.sim_filtered_resub);
  w.kv("irredundant_hits", outcome.stats.sim_irredundant_hits);
  w.kv("bank_patterns", outcome.stats.sim_bank_patterns);
  w.kv("resim_nodes", outcome.stats.sim_resim_nodes);
  w.end_object();

  w.key("ladder");
  w.begin_array();
  for (const auto& a : outcome.stats.ladder) {
    w.begin_object();
    w.kv("rung", a.rung);
    w.kv("result", a.result);
    w.kv("fail_reason", a.fail_reason);
    w.kv("seconds", a.seconds);
    w.end_object();
  }
  w.end_array();

  if (!outcome.flight_recorder.empty()) {
    w.key("flight_recorder");
    w.begin_array();
    for (const auto& r : outcome.flight_recorder) ledger::write_record(w, r);
    w.end_array();
  }

  w.key("targets");
  w.begin_array();
  for (const auto& t : outcome.targets) {
    w.begin_object();
    w.kv("name", t.target_name);
    w.kv("structural", t.structural);
    w.kv("support_cost", t.support_cost);
    w.kv("support_seconds", t.support_seconds);
    w.kv("support_sat_calls", t.support_sat_calls);
    if (!t.sop.empty()) w.kv("sop", t.sop);
    w.key("support");
    w.begin_array();
    for (const auto& name : t.support) w.value(name);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace eco::core
