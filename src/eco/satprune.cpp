#include "eco/satprune.hpp"

#include <algorithm>
#include <limits>

#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::core {

namespace {

/// Exact minimum-cost hitting set by branch and bound.
///
/// Clauses are sets of divisor indices; the goal is the cheapest set of
/// divisors intersecting every clause. Branching picks an unhit clause and
/// tries each of its elements; the incumbent cost prunes branches.
class HittingSetSolver {
 public:
  HittingSetSolver(const std::vector<std::vector<size_t>>& clauses,
                   const std::vector<Divisor>& divisors, int64_t node_budget,
                   const Deadline& deadline, const CancelToken& cancel)
      : clauses_(clauses), divisors_(divisors), nodes_left_(node_budget),
        deadline_(deadline), cancel_(cancel) {}

  /// Returns true on success (exact optimum); false when the node budget
  /// ran out (best found so far is still reported).
  bool solve(std::vector<size_t>& out, int64_t& out_cost, int64_t upper_bound) {
    best_cost_ = upper_bound;
    best_.clear();
    have_best_ = false;
    std::vector<size_t> current;
    exhausted_ = true;
    branch(current, 0);
    out = best_;
    out_cost = have_best_ ? best_cost_ : std::numeric_limits<int64_t>::max();
    return exhausted_;
  }

 private:
  void branch(std::vector<size_t>& current, int64_t cost) {
    if (nodes_left_-- <= 0) {
      exhausted_ = false;
      return;
    }
    if ((nodes_left_ & 0xFFF) == 0 && (deadline_.expired() || cancel_.cancelled())) {
      nodes_left_ = 0;
      exhausted_ = false;
      return;
    }
    if (cost >= best_cost_) return;  // cannot beat incumbent / internal best
    // Find the first clause not hit by `current`; prefer small clauses.
    const std::vector<size_t>* open = nullptr;
    for (const auto& clause : clauses_) {
      bool hit = false;
      for (const size_t d : clause)
        if (std::find(current.begin(), current.end(), d) != current.end()) {
          hit = true;
          break;
        }
      if (!hit && (open == nullptr || clause.size() < open->size())) {
        open = &clause;
        if (clause.size() <= 1) break;
      }
    }
    if (open == nullptr) {
      best_cost_ = cost;  // guarded above: strictly better
      best_ = current;
      have_best_ = true;
      return;
    }
    // Branch on the clause elements, cheapest first.
    std::vector<size_t> elems = *open;
    std::sort(elems.begin(), elems.end(), [&](size_t a, size_t b) {
      return divisors_[a].cost < divisors_[b].cost;
    });
    for (const size_t d : elems) {
      const int64_t next_cost = cost + divisors_[d].cost;
      if (next_cost >= best_cost_) continue;  // cost pruning
      current.push_back(d);
      branch(current, next_cost);
      current.pop_back();
    }
  }

  const std::vector<std::vector<size_t>>& clauses_;
  const std::vector<Divisor>& divisors_;
  int64_t nodes_left_;
  Deadline deadline_;
  CancelToken cancel_;
  int64_t best_cost_ = 0;
  std::vector<size_t> best_;
  bool have_best_ = false;
  bool exhausted_ = true;
};

int64_t cost_of(const std::vector<size_t>& subset, const std::vector<Divisor>& divisors) {
  int64_t total = 0;
  for (const size_t d : subset) total += divisors[d].cost;
  return total;
}

}  // namespace

SatPruneResult sat_prune(SupportInstance& inst, const std::vector<Divisor>& divisors,
                         const SatPruneOptions& options,
                         const std::vector<size_t>* warm_start) {
  ECO_TELEMETRY_PHASE("sat_prune");
  ledger::ScopedPurpose ledger_scope(ledger::Purpose::kSatPrune);
  SatPruneResult result;
  Deadline deadline(options.time_budget);

  // Incumbent: warm start if provided, else the full candidate set (checked).
  std::vector<size_t> incumbent;
  bool have_incumbent = false;
  if (warm_start != nullptr) {
    incumbent = *warm_start;
    have_incumbent = true;
  } else {
    ++result.sat_calls;
    const sat::LBool verdict = inst.check_subset(inst.candidates(), options.conflict_budget);
    if (!verdict.is_false()) return result;  // infeasible or budget
    incumbent = inst.candidates();
    have_incumbent = true;
  }
  int64_t incumbent_cost = cost_of(incumbent, divisors);

  std::vector<std::vector<size_t>> separator_clauses;
  bool proven_optimal = false;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    ECO_TELEMETRY_COUNT("satprune.iterations");
    if (deadline.expired() || options.cancel.cancelled()) break;

    // Minimum-cost hitting set of the separators found so far = lower bound.
    std::vector<size_t> hs;
    int64_t hs_cost = 0;
    HittingSetSolver hss(separator_clauses, divisors, options.max_bb_nodes, deadline,
                         options.cancel);
    const bool exact = hss.solve(hs, hs_cost, incumbent_cost);
    if (!exact) break;  // budget: incumbent stays, optimality unproven
    if (hs_cost >= incumbent_cost && have_incumbent) {
      // The lower bound meets the incumbent: the incumbent is optimal.
      proven_optimal = true;
      break;
    }

    // Deliberately no sim-filter refutation here: this loop consumes the
    // model (separator below), and a bank witness pair yields a different —
    // if equally valid — separator clause than the solver's model would,
    // which would steer the hitting sets (and the final support's content)
    // away from the filter-off run. The solve still *feeds* the bank.
    ++result.sat_calls;
    const sat::LBool verdict = inst.check_subset(hs, options.conflict_budget);
    if (verdict.is_undef()) break;
    if (verdict.is_false()) {
      // Feasible at the lower bound: optimal.
      incumbent = hs;
      incumbent_cost = hs_cost;
      have_incumbent = true;
      proven_optimal = true;
      break;
    }
    // Infeasible: learn the separator clause ("block infeasible divisors").
    ECO_TELEMETRY_COUNT("satprune.separators");
    std::vector<size_t> sep = inst.separator();
    if (sep.empty()) {
      // No divisor can distinguish the witness pair: the whole candidate
      // set is insufficient.
      return result;
    }
    separator_clauses.push_back(std::move(sep));
  }

  result.feasible = have_incumbent;
  result.optimal = proven_optimal;
  result.chosen = std::move(incumbent);
  result.cost = incumbent_cost;
  ECO_TELEMETRY_COUNT("satprune.sat_calls", static_cast<uint64_t>(result.sat_calls));
  if (result.optimal) ECO_TELEMETRY_COUNT("satprune.proven_optimal");
  return result;
}

}  // namespace eco::core
