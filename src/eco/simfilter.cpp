#include "eco/simfilter.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <unordered_map>

#include "util/telemetry.hpp"

namespace eco::core {

// ---------------------------------------------------------------------------
// SimFilterOptions: process-wide, env-seeded defaults (ECO_SAT_* convention)
// ---------------------------------------------------------------------------

namespace {

SimFilterOptions env_seeded_defaults() {
  SimFilterOptions o;
  if (const char* v = std::getenv("ECO_SIM_BANK"))
    o.enabled = !(v[0] == '0' && v[1] == '\0');
  return o;
}

SimFilterOptions& mutable_defaults() {
  static SimFilterOptions o = env_seeded_defaults();
  return o;
}

aig::SimBankOptions bank_options(const SimFilterOptions& o) {
  aig::SimBankOptions b;
  b.seed_words = o.seed_words;
  b.capacity_words = o.capacity_words;
  b.memory_budget_bytes = o.memory_budget_bytes;
  b.seed = o.seed;
  return b;
}

struct SigHash {
  size_t operator()(const std::vector<uint64_t>& v) const noexcept {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const uint64_t w : v) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// Searches for a pattern pair — one index with its bit set in \p on, one in
/// \p off — whose signatures over \p lits (bank literals) are equal. Such a
/// pair is exactly a model of the corresponding two-copy SAT instance.
std::optional<std::pair<uint32_t, uint32_t>> indistinguishable_pair(
    aig::SimBank& bank, const std::vector<uint64_t>& on,
    const std::vector<uint64_t>& off, std::span<const aig::Lit> lits) {
  const size_t words = bank.num_words();
  // Row pointers + complement masks, resolved once (spans are stable: the
  // bank is synced and not grown inside this function).
  std::vector<std::span<const uint64_t>> rows;
  std::vector<uint64_t> compl_mask;
  rows.reserve(lits.size());
  compl_mask.reserve(lits.size());
  for (const aig::Lit l : lits) {
    rows.push_back(bank.row(aig::lit_node(l)));
    compl_mask.push_back(aig::lit_compl(l) ? ~0ULL : 0ULL);
  }
  const size_t sig_words = lits.size() / 64 + 1;
  std::vector<uint64_t> sig(sig_words);
  const auto signature_of = [&](uint32_t p) {
    std::fill(sig.begin(), sig.end(), 0);
    const size_t w = p / 64;
    const uint32_t b = p % 64;
    for (size_t j = 0; j < rows.size(); ++j)
      sig[j / 64] |= (((rows[j][w] ^ compl_mask[j]) >> b) & 1ULL) << (j % 64);
    return sig;
  };

  std::unordered_map<std::vector<uint64_t>, uint32_t, SigHash> on_sigs;
  for (size_t w = 0; w < words; ++w)
    for (uint64_t bits = on[w]; bits != 0; bits &= bits - 1) {
      const uint32_t p = static_cast<uint32_t>(w * 64 + __builtin_ctzll(bits));
      on_sigs.emplace(signature_of(p), p);
    }
  if (on_sigs.empty()) return std::nullopt;
  for (size_t w = 0; w < words; ++w)
    for (uint64_t bits = off[w]; bits != 0; bits &= bits - 1) {
      const uint32_t p = static_cast<uint32_t>(w * 64 + __builtin_ctzll(bits));
      const auto it = on_sigs.find(signature_of(p));
      if (it != on_sigs.end()) return std::make_pair(it->second, p);
    }
  return std::nullopt;
}

}  // namespace

const SimFilterOptions& SimFilterOptions::defaults() noexcept { return mutable_defaults(); }

void SimFilterOptions::set_defaults(const SimFilterOptions& opts) noexcept {
  mutable_defaults() = opts;
}

// ---------------------------------------------------------------------------
// SimFilter
// ---------------------------------------------------------------------------

SimFilter::SimFilter(const EcoMiter& m, uint32_t target, const SimFilterOptions& options)
    : m_(&m), target_(target), bank_(m.aig, bank_options(options)) {}

void SimFilter::add_counterexample(const std::vector<bool>& pi_values, bool off_set) {
  if (!bank_.add_pattern(pi_values)) {
    ++dropped_full_;
    return;
  }
  recorded_off_.push_back(off_set ? 1 : 0);
  ++stats_.bank_patterns;
  ECO_TELEMETRY_COUNT("sim.bank_patterns");
}

uint32_t SimFilter::num_counterexamples() const noexcept {
  return static_cast<uint32_t>(recorded_off_.size());
}

std::vector<bool> SimFilter::counterexample_pattern(uint32_t i) {
  return bank_.pattern(bank_.num_seed_patterns() + i);
}

void SimFilter::classify(std::vector<uint64_t>& on, std::vector<uint64_t>& off) {
  const size_t words = bank_.num_words();
  const auto out_row = bank_.row(aig::lit_node(m_->out));
  const auto tgt_row = bank_.row(aig::lit_node(m_->target_lit(target_)));
  const uint64_t out_c = aig::lit_compl(m_->out) ? ~0ULL : 0ULL;
  const uint64_t tgt_c = aig::lit_compl(m_->target_lit(target_)) ? ~0ULL : 0ULL;
  on.resize(words);
  off.resize(words);
  for (size_t w = 0; w < words; ++w) {
    const uint64_t o = (out_row[w] ^ out_c) & bank_.valid_mask(w);
    const uint64_t t = tgt_row[w] ^ tgt_c;
    on[w] = o & ~t;
    off[w] = o & t;
  }
}

bool SimFilter::refutes_subset(std::span<const size_t> subset) {
  witness_.reset();
  if (bank_.num_patterns() == 0) return false;
  std::vector<uint64_t> on, off;
  classify(on, off);
  std::vector<aig::Lit> lits;
  lits.reserve(subset.size());
  for (const size_t g : subset) lits.push_back(m_->divisor_lits[g]);
  witness_ = indistinguishable_pair(bank_, on, off, lits);
  if (!witness_) return false;
  ++stats_.refuted_support;
  ECO_TELEMETRY_COUNT("sim.refuted_support");
  return true;
}

std::vector<size_t> SimFilter::separator(std::span<const size_t> candidates) {
  assert(witness_ && "separator() without a preceding successful refutes_subset()");
  std::vector<size_t> out;
  for (const size_t g : candidates) {
    const aig::Lit dl = m_->divisor_lits[g];
    if (bank_.value(dl, witness_->first) != bank_.value(dl, witness_->second))
      out.push_back(g);
  }
  return out;
}

void SimFilter::begin_irredundancy(const sop::Cover& cover,
                                   const std::vector<size_t>& support) {
  const size_t words = bank_.num_words();
  std::vector<uint64_t> off;
  classify(ir_on_mask_, off);
  cube_inside_.assign(cover.cubes.size(), std::vector<uint64_t>(words, ~0ULL));
  for (size_t c = 0; c < cover.cubes.size(); ++c) {
    for (const sop::Lit l : cover.cubes[c].lits()) {
      const aig::Lit dl = m_->divisor_lits[support[sop::lit_var(l)]];
      const auto row = bank_.row(aig::lit_node(dl));
      const uint64_t cm =
          (aig::lit_compl(dl) != sop::lit_negated(l)) ? ~0ULL : 0ULL;
      for (size_t w = 0; w < words; ++w) cube_inside_[c][w] &= row[w] ^ cm;
    }
  }
}

bool SimFilter::witnesses_cube_necessity(size_t index, const std::vector<uint8_t>& kept) {
  if (ir_on_mask_.empty()) return false;
  const size_t words = ir_on_mask_.size();
  std::vector<uint64_t> acc(words);
  bool any = false;
  for (size_t w = 0; w < words; ++w) {
    acc[w] = ir_on_mask_[w] & cube_inside_[index][w];
    any |= acc[w] != 0;
  }
  if (!any) return false;
  for (size_t j = 0; j < cube_inside_.size(); ++j) {
    if (j == index || !kept[j]) continue;
    any = false;
    for (size_t w = 0; w < words; ++w) {
      acc[w] &= ~cube_inside_[j][w];
      any |= acc[w] != 0;
    }
    if (!any) return false;
  }
  ++stats_.irredundant_hits;
  ECO_TELEMETRY_COUNT("sim.irredundant_hits");
  return true;
}

std::vector<std::vector<bool>> SimFilter::counterexample_prefixes(uint32_t prefix_pis,
                                                                  size_t max) {
  std::vector<std::vector<bool>> out;
  const uint32_t n = num_counterexamples();
  for (uint32_t i = 0; i < n && out.size() < max; ++i) {
    std::vector<bool> full = counterexample_pattern(i);
    full.resize(prefix_pis);
    out.push_back(std::move(full));
  }
  return out;
}

SimFilterStats SimFilter::stats() const noexcept {
  SimFilterStats s = stats_;
  s.resim_nodes = bank_.resim_node_words();
  return s;
}

// ---------------------------------------------------------------------------
// ResubFilter
// ---------------------------------------------------------------------------

ResubFilter::ResubFilter(const aig::Aig& impl, const SimFilterOptions& options)
    : bank_(impl, bank_options(options)) {}

bool ResubFilter::refutes_dependency(aig::Lit func, const std::vector<Divisor>& divisors,
                                     std::span<const size_t> candidates) {
  if (bank_.num_patterns() == 0) return false;
  const size_t words = bank_.num_words();
  const auto frow = bank_.row(aig::lit_node(func));
  const uint64_t fc = aig::lit_compl(func) ? ~0ULL : 0ULL;
  std::vector<uint64_t> on(words), off(words);
  for (size_t w = 0; w < words; ++w) {
    const uint64_t f = (frow[w] ^ fc);
    on[w] = f & bank_.valid_mask(w);
    off[w] = ~f & bank_.valid_mask(w);
  }
  std::vector<aig::Lit> lits;
  lits.reserve(candidates.size());
  for (const size_t g : candidates) lits.push_back(divisors[g].lit);
  if (!indistinguishable_pair(bank_, on, off, lits)) return false;
  ++stats_.filtered_resub;
  ECO_TELEMETRY_COUNT("sim.filtered_resub");
  return true;
}

void ResubFilter::add_counterexample(const std::vector<bool>& pi_values) {
  if (!bank_.add_pattern(pi_values)) return;
  ++stats_.bank_patterns;
  ECO_TELEMETRY_COUNT("sim.bank_patterns");
}

SimFilterStats ResubFilter::stats() const noexcept {
  SimFilterStats s = stats_;
  s.resim_nodes = bank_.resim_node_words();
  return s;
}

}  // namespace eco::core
