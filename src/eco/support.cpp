#include "eco/support.hpp"

#include <algorithm>
#include <cassert>

#include "cnf/tseitin.hpp"
#include "eco/simfilter.hpp"
#include "sat/minimize.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace eco::core {

SupportInstance::SupportInstance(const EcoMiter& m, uint32_t target,
                                 const std::vector<Divisor>& divisors,
                                 std::span<const size_t> candidates)
    : candidates_(candidates.begin(), candidates.end()) {
  // Two independent encoders over the same miter AIG create the two copies
  // (fresh solver variables each).
  cnf::Encoder copy1(m.aig, solver_);
  cnf::Encoder copy2(m.aig, solver_);
  const aig::Lit target_lit = m.target_lit(target);

  // Copy 1: M(0, x1) — miter asserted, target at 0.
  solver_.add_unit(copy1.lit(m.out));
  solver_.add_unit(~copy1.lit(target_lit));
  // Copy 2: M(1, x2).
  solver_.add_unit(copy2.lit(m.out));
  solver_.add_unit(copy2.lit(target_lit));

  act_index_of_global_.assign(divisors.size(), -1);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const aig::Lit dl = m.divisor_lits[candidates_[i]];
    const sat::Lit d1 = copy1.lit(dl);
    const sat::Lit d2 = copy2.lit(dl);
    const sat::Lit a = sat::mk_lit(solver_.new_var());
    // a -> (d1 == d2)
    solver_.add_ternary(~a, ~d1, d2);
    solver_.add_ternary(~a, d1, ~d2);
    activation_.push_back(a);
    d1_.push_back(d1);
    d2_.push_back(d2);
    act_index_of_global_[candidates_[i]] = static_cast<int32_t>(i);
  }

  // For model harvesting into a SimFilter: remember the solver variable of
  // every miter PI that the encoding above reached, per copy. Only the
  // already-encoded PIs may be queried — var() on an unencoded node would
  // allocate fresh solver variables and perturb the search. PIs outside the
  // encoded cones cannot influence it, so patterns complete them with 0.
  num_pis_ = m.aig.num_pis();
  for (uint32_t i = 0; i < num_pis_; ++i) {
    const aig::Node n = m.aig.pi_node(i);
    if (copy1.encoded(n)) pi_vars1_.emplace_back(i, copy1.var(n));
    if (copy2.encoded(n)) pi_vars2_.emplace_back(i, copy2.var(n));
  }
}

void SupportInstance::harvest_model() {
  if (sim_ == nullptr) return;
  std::vector<bool> pattern(num_pis_, false);
  for (const auto& [pi, v] : pi_vars1_) pattern[pi] = solver_.model_value(v);
  sim_->add_counterexample(pattern, /*off_set=*/false);
  std::fill(pattern.begin(), pattern.end(), false);
  for (const auto& [pi, v] : pi_vars2_) pattern[pi] = solver_.model_value(v);
  sim_->add_counterexample(pattern, /*off_set=*/true);
}

sat::Lit SupportInstance::activation(size_t global_index) const {
  const int32_t i = act_index_of_global_[global_index];
  assert(i >= 0 && "divisor is not a candidate of this instance");
  return activation_[static_cast<size_t>(i)];
}

sat::LBool SupportInstance::check_subset(std::span<const size_t> subset,
                                         int64_t conflict_budget, bool use_sim_filter) {
  if (use_sim_filter && sim_ != nullptr && sim_->refutes_subset(subset)) {
    last_sim_refuted_ = true;
    // A refuted subset is a SAT answer (a separating witness exists).
    ledger::append_sim_hit(ledger::current_purpose(), ledger::QueryResult::kSat);
    return sat::LBool(true);
  }
  last_sim_refuted_ = false;
  sat::LitVec assumps;
  assumps.reserve(subset.size());
  for (const size_t g : subset) assumps.push_back(activation(g));
  // Canonical (candidate-index) order: activation variables were created in
  // candidate order, so sorting by literal puts every query's assumptions in
  // one global order. Consecutive subset checks (hitting-set loops,
  // last-gasp swaps) then share long assumption prefixes, which the solver's
  // trail reuse turns into retained propagation work. Verdicts and cores do
  // not depend on assumption order.
  std::sort(assumps.begin(), assumps.end());
  if (conflict_budget >= 0)
    solver_.set_conflict_budget(conflict_budget);
  else
    solver_.clear_budgets();
  const sat::LBool verdict = solver_.solve(assumps);
  solver_.clear_budgets();
  if (verdict.is_true()) harvest_model();
  return verdict;
}

std::vector<size_t> SupportInstance::separator() const {
  if (last_sim_refuted_) return sim_->separator(candidates_);
  std::vector<size_t> out;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const bool v1 = solver_.model_value(d1_[i]);
    const bool v2 = solver_.model_value(d2_[i]);
    if (v1 != v2) out.push_back(candidates_[i]);
  }
  return out;
}

SupportResult compute_support(SupportInstance& inst, const std::vector<Divisor>& divisors,
                              const SupportOptions& options) {
  ECO_TELEMETRY_PHASE("support");
  ledger::ScopedPurpose ledger_scope(ledger::Purpose::kSupport);
  SupportResult result;
  sat::Solver& solver = inst.solver();
  const std::vector<size_t>& candidates = inst.candidates();

  // A bank witness for the full candidate set proves infeasibility without
  // any solver work; the instance is abandoned either way, so skipping the
  // solve cannot change anything downstream.
  if (inst.sim_filter() != nullptr && inst.sim_filter()->refutes_subset(candidates)) {
    ledger::append_sim_hit(ledger::Purpose::kSupport, ledger::QueryResult::kSat);
    return result;  // divisors insufficient
  }

  // Assumptions in increasing cost order (candidates come from the problem's
  // cost-sorted divisor list; keep that order).
  sat::LitVec assumps;
  assumps.reserve(candidates.size());
  for (const size_t g : candidates) assumps.push_back(inst.activation(g));

  if (options.conflict_budget >= 0) solver.set_conflict_budget(options.conflict_budget);
  const sat::LBool verdict = solver.solve(assumps);
  ++result.sat_calls;
  if (verdict.is_true()) {
    inst.harvest_model();
    solver.clear_budgets();
    return result;  // divisors insufficient
  }
  if (verdict.is_undef()) {
    solver.clear_budgets();
    result.budget_expired = true;
    return result;
  }

  // Start from the final-conflict core (this *is* the result in the
  // baseline mode, and a sound starting point for minimization).
  sat::LitVec core_lits;
  std::vector<size_t> core_globals;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (solver.in_core(assumps[i])) {
      core_lits.push_back(assumps[i]);
      core_globals.push_back(candidates[i]);
    }
  }

  std::vector<size_t> chosen;
  if (options.mode == SupportMode::kAnalyzeFinal) {
    chosen = core_globals;
  } else {
    sat::MinimizeStats stats;
    sat::LitVec ctx;
    const int kept = sat::minimize_assumptions(solver, core_lits, ctx, &stats);
    result.sat_calls += stats.sat_calls;
    // Map kept literals back to divisor indices.
    for (int i = 0; i < kept; ++i) {
      const auto it = std::find(assumps.begin(), assumps.end(), core_lits[static_cast<size_t>(i)]);
      chosen.push_back(candidates[static_cast<size_t>(it - assumps.begin())]);
    }
    // Last-gasp improvement: try replacing expensive chosen divisors with
    // cheaper unchosen ones (paper §3.4.1).
    if (options.last_gasp && !chosen.empty()) {
      int budget = options.max_last_gasp_queries;
      std::sort(chosen.begin(), chosen.end(), [&](size_t a, size_t b) {
        return divisors[a].cost > divisors[b].cost;  // most expensive first
      });
      for (size_t pos = 0; pos < chosen.size() && budget > 0; ++pos) {
        const size_t current = chosen[pos];
        for (const size_t candidate : candidates) {
          if (budget <= 0) break;
          if (divisors[candidate].cost >= divisors[current].cost) break;  // cost-sorted
          if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) continue;
          std::vector<size_t> trial = chosen;
          trial[pos] = candidate;
          --budget;
          ++result.sat_calls;
          ECO_TELEMETRY_COUNT("support.last_gasp_queries");
          if (inst.check_subset(trial, options.conflict_budget,
                                options.sim_refute_last_gasp).is_false()) {
            ECO_TELEMETRY_COUNT("support.last_gasp_improvements");
            chosen = std::move(trial);
            break;
          }
        }
      }
    }
  }

  solver.clear_budgets();
  result.feasible = true;
  result.chosen = std::move(chosen);
  for (const size_t g : result.chosen) result.cost += divisors[g].cost;
  ECO_TELEMETRY_COUNT("support.sat_calls", static_cast<uint64_t>(result.sat_calls));
  return result;
}

std::vector<size_t> dedupe_equivalent_divisors(std::span<const size_t> candidates,
                                               std::span<const size_t> alias) {
  std::vector<size_t> kept;
  kept.reserve(candidates.size());
  if (alias.empty()) {
    kept.assign(candidates.begin(), candidates.end());
    return kept;
  }
  std::vector<uint8_t> is_candidate(alias.size(), 0);
  for (const size_t i : candidates)
    if (i < alias.size()) is_candidate[i] = 1;
  for (const size_t i : candidates) {
    // Keep i unless its representative is a distinct candidate. A class
    // representative always has alias[rep] == rep, so it is never dropped.
    const bool duplicate =
        i < alias.size() && alias[i] != i && alias[i] < alias.size() && is_candidate[alias[i]];
    if (!duplicate) kept.push_back(i);
  }
  return kept;
}

}  // namespace eco::core
