#include "eco/patchfunc.hpp"

#include <algorithm>

#include "cnf/tseitin.hpp"
#include "eco/simfilter.hpp"
#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace eco::core {

namespace {

/// (pi index, solver var) of every miter PI the encoder has reached. Only
/// encoded PIs may be queried — var() on an unencoded node would allocate a
/// solver variable and perturb the search.
std::vector<std::pair<uint32_t, sat::Var>> encoded_pi_vars(const aig::Aig& g,
                                                           cnf::Encoder& enc) {
  std::vector<std::pair<uint32_t, sat::Var>> out;
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    if (enc.encoded(g.pi_node(i))) out.emplace_back(i, enc.var(g.pi_node(i)));
  return out;
}

}  // namespace

PatchFuncResult compute_patch_cover(const EcoMiter& m, uint32_t target,
                                    const std::vector<Divisor>& divisors,
                                    const std::vector<size_t>& support,
                                    const PatchFuncOptions& options) {
  (void)divisors;
  ECO_TELEMETRY_PHASE("patch_func");
  ledger::ScopedPurpose ledger_scope(ledger::Purpose::kPatchFunc);
  PatchFuncResult result;
  result.cover.num_vars = static_cast<uint32_t>(support.size());
  const aig::Lit target_lit = m.target_lit(target);

  // On-set solver: M(0, x). Off-set solver: M(1, x).
  sat::Solver on_solver, off_solver;
  on_solver.set_cancel(options.cancel);
  off_solver.set_cancel(options.cancel);
  cnf::Encoder on_enc(m.aig, on_solver), off_enc(m.aig, off_solver);
  on_solver.add_unit(on_enc.lit(m.out));
  on_solver.add_unit(~on_enc.lit(target_lit));
  off_solver.add_unit(off_enc.lit(m.out));
  off_solver.add_unit(off_enc.lit(target_lit));

  std::vector<sat::Lit> d_on, d_off;
  d_on.reserve(support.size());
  d_off.reserve(support.size());
  for (const size_t g : support) {
    const aig::Lit dl = m.divisor_lits[g];
    d_on.push_back(on_enc.lit(dl));
    d_off.push_back(off_enc.lit(dl));
  }

  auto set_budget = [&](sat::Solver& s) {
    if (options.conflict_budget >= 0)
      s.set_conflict_budget(options.conflict_budget);
    else
      s.clear_budgets();
  };

  // Bank harvesting: every enumerated on-set model is a counterexample the
  // later phases (irredundancy here, CEC seeding downstream) can reuse.
  std::vector<std::pair<uint32_t, sat::Var>> on_pis;
  if (options.sim_filter != nullptr) on_pis = encoded_pi_vars(m.aig, on_enc);
  const auto harvest = [&](sat::Solver& s,
                           const std::vector<std::pair<uint32_t, sat::Var>>& pis) {
    std::vector<bool> pattern(m.aig.num_pis(), false);
    for (const auto& [pi, v] : pis) pattern[pi] = s.model_value(v);
    options.sim_filter->add_counterexample(pattern, /*off_set=*/false);
  };

  while (result.cubes_enumerated < options.max_cubes) {
    // Next uncovered on-set point.
    set_budget(on_solver);
    ++result.sat_calls;
    const sat::LBool verdict = on_solver.okay() ? on_solver.solve() : sat::kFalse;
    if (verdict.is_undef()) return result;  // budget: incomplete cover
    if (verdict.is_false()) break;          // on-set exhausted: done
    if (options.sim_filter != nullptr) harvest(on_solver, on_pis);

    // Cube literals in the off-copy, asserting d == model value. Ordered by
    // increasing divisor cost (support inherits the cost order from the
    // candidate list), so expansion drops expensive literals first.
    sat::LitVec cube_lits;
    std::vector<uint32_t> cube_vars;  // SOP variable index per literal
    for (size_t i = 0; i < support.size(); ++i) {
      const bool value = on_solver.model_value(d_on[i]);
      cube_lits.push_back(value ? d_off[i] : ~d_off[i]);
      cube_vars.push_back(static_cast<uint32_t>(i));
    }

    // Expand to a prime cube against the off-set.
    set_budget(off_solver);
    ++result.sat_calls;
    const sat::LBool off_verdict = off_solver.solve(cube_lits);
    if (off_verdict.is_true()) {
      // The support does not separate on-set from off-set: invalid support.
      log_warn("patchfunc: support does not separate on/off sets");
      return result;
    }
    if (off_verdict.is_undef()) return result;

    sat::LitVec kept_lits;
    // `cube_lits` is in fixed support order, so the expansion solve above and
    // the first minimize query assume the identical vector — the recursion
    // then only shrinks/permutes the tail (see minimize.hpp's
    // assumption-ordering invariant), keeping prefixes shared for trail reuse.
    if (options.use_minimize) {
      sat::MinimizeStats stats;
      sat::LitVec work = cube_lits;
      sat::LitVec ctx;
      const int kept = sat::minimize_assumptions(off_solver, work, ctx, &stats);
      result.sat_calls += stats.sat_calls;
      kept_lits.assign(work.begin(), work.begin() + kept);
    } else {
      // Baseline: the final-conflict core is the (non-minimal) cube.
      for (const sat::Lit l : cube_lits)
        if (off_solver.in_core(l)) kept_lits.push_back(l);
    }

    // Convert kept off-copy literals into an SOP cube and block it in the
    // on-copy.
    std::vector<sop::Lit> sop_lits;
    sat::LitVec blocking;
    for (const sat::Lit l : kept_lits) {
      const auto it = std::find_if(cube_lits.begin(), cube_lits.end(),
                                   [&](sat::Lit cl) { return cl == l; });
      const size_t var = cube_vars[static_cast<size_t>(it - cube_lits.begin())];
      const bool positive = !l.sign() == !d_off[var].sign();  // value asserted
      sop_lits.push_back(positive ? sop::lit_pos(static_cast<uint32_t>(var))
                                  : sop::lit_neg(static_cast<uint32_t>(var)));
      // Blocking literal in the on-copy: the complement of the cube literal.
      const sat::Lit on_lit = sat::mk_lit(d_on[var].var(), positive == d_on[var].sign());
      blocking.push_back(~on_lit);
    }
    result.cover.cubes.push_back(sop::Cube(std::move(sop_lits)));
    ++result.cubes_enumerated;
    ECO_TELEMETRY_COUNT("patchfunc.cubes");
    on_solver.add_clause(blocking);  // empty cube -> empty clause -> done
    if (!on_solver.okay()) break;
  }

  result.cover.remove_contained_cubes();

  if (options.make_irredundant && result.cover.cubes.size() > 1) {
    // Exact irredundancy: cube i is redundant iff no on-set point lies in
    // cube i and outside every other kept cube. One fresh solver holds the
    // on-set copy plus, per cube j, an activation variable out_j with
    // out_j -> (some literal of cube j is false).
    ledger::ScopedPurpose ir_ledger_scope(ledger::Purpose::kIrredundancy);
    sat::Solver ir_solver;
    ir_solver.set_cancel(options.cancel);
    cnf::Encoder ir_enc(m.aig, ir_solver);
    ir_solver.add_unit(ir_enc.lit(m.out));
    ir_solver.add_unit(~ir_enc.lit(target_lit));
    std::vector<sat::Lit> d_ir;
    d_ir.reserve(support.size());
    for (const size_t g : support) d_ir.push_back(ir_enc.lit(m.divisor_lits[g]));
    auto lit_of = [&](sop::Lit l) {
      return d_ir[sop::lit_var(l)] ^ sop::lit_negated(l);
    };
    std::vector<sat::Lit> outside;  // activation: "point not in cube j"
    for (const auto& cube : result.cover.cubes) {
      const sat::Lit a = sat::mk_lit(ir_solver.new_var());
      sat::LitVec clause{~a};
      for (const sop::Lit l : cube.lits()) clause.push_back(~lit_of(l));
      ir_solver.add_clause(clause);
      outside.push_back(a);
    }
    std::vector<std::pair<uint32_t, sat::Var>> ir_pis;
    if (options.sim_filter != nullptr) {
      ir_pis = encoded_pi_vars(m.aig, ir_enc);
      options.sim_filter->begin_irredundancy(result.cover, support);
    }
    std::vector<uint8_t> kept(result.cover.cubes.size(), 1);
    for (size_t i = 0; i < result.cover.cubes.size(); ++i) {
      // A bank pattern inside cube i and outside every other kept cube is a
      // model of the query below: the cube is necessary, skip the solve.
      if (options.sim_filter != nullptr &&
          options.sim_filter->witnesses_cube_necessity(i, kept)) {
        // A necessity witness is a model of the query: a SAT answer.
        ledger::append_sim_hit(ledger::Purpose::kIrredundancy, ledger::QueryResult::kSat);
        continue;
      }
      // Assumption order: shared "outside cube j" activations first (in cube
      // index order), this cube's literals last. Iterations i and i+1 then
      // agree on the activations out_0..out_{i-1}, so the common prefix grows
      // as the loop advances and the solver's trail reuse keeps the
      // corresponding propagations. The verdict is order-independent.
      sat::LitVec assumps;
      for (size_t j = 0; j < result.cover.cubes.size(); ++j)
        if (j != i && kept[j]) assumps.push_back(outside[j]);
      for (const sop::Lit l : result.cover.cubes[i].lits()) assumps.push_back(lit_of(l));
      if (options.conflict_budget >= 0) ir_solver.set_conflict_budget(options.conflict_budget);
      ++result.sat_calls;
      const sat::LBool verdict = ir_solver.solve(assumps);
      if (verdict.is_false()) kept[i] = 0;  // covered by the others: drop
      // kTrue or kUndef: keep the cube (keeping is always sound).
      if (verdict.is_true() && options.sim_filter != nullptr) harvest(ir_solver, ir_pis);
    }
    std::vector<sop::Cube> pruned;
    for (size_t i = 0; i < result.cover.cubes.size(); ++i)
      if (kept[i]) pruned.push_back(std::move(result.cover.cubes[i]));
    result.cover.cubes = std::move(pruned);
  }

  result.ok = true;
  on_solver.clear_budgets();
  off_solver.clear_budgets();
  ECO_TELEMETRY_COUNT("patchfunc.sat_calls", static_cast<uint64_t>(result.sat_calls));
  return result;
}

}  // namespace eco::core
