/// \file miter.hpp
/// \brief Construction and manipulation of the ECO miter (paper Fig. 1,
/// §2.5.1, §3.1).
///
/// The miter M(n, x) compares the implementation (whose targets are the free
/// variables n) against the specification over shared inputs x; it outputs 1
/// iff some primary-output pair differs. Divisor signals of the
/// implementation are carried through every transformation so the support
/// and patch computations can refer to them inside the miter.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "eco/problem.hpp"

namespace eco::core {

/// An ECO miter with tracked divisors.
///
/// PIs: the shared inputs x (indices 0..num_x-1) followed by one PI per
/// *unsubstituted* target (indices num_x + t). Substituted targets keep
/// their PI slot (unused) so target indexing stays stable.
struct EcoMiter {
  aig::Aig aig;
  uint32_t num_x = 0;
  uint32_t num_targets = 0;
  aig::Lit out = aig::kLitFalse;        ///< mismatch literal
  std::vector<aig::Lit> divisor_lits;   ///< miter literal of each problem divisor

  /// PI index of target \p t inside the miter.
  uint32_t target_pi(uint32_t t) const noexcept { return num_x + t; }
  aig::Lit target_lit(uint32_t t) const { return aig.pi_lit(target_pi(t)); }
};

/// Builds M(n, x) from an implementation AIG (problem PI conventions) and
/// the spec, restricted to the PO indices in \p po_subset (empty = all POs).
EcoMiter build_eco_miter(const aig::Aig& impl, const aig::Aig& spec,
                         const std::vector<Divisor>& divisors,
                         const std::vector<uint32_t>& po_subset = {});

/// Universally quantifies the targets in \p quantify out of \p m:
/// out := AND over all assignments of those target PIs of M (paper §3.1).
/// Divisors (never in a target TFO) are preserved. Throws std::runtime_error
/// if the expansion exceeds \p max_nodes AND nodes.
EcoMiter quantify_targets(const EcoMiter& m, const std::vector<uint32_t>& quantify,
                          uint32_t max_nodes);

/// Cofactors target \p t of \p m to a constant \p value (in place rebuild).
EcoMiter cofactor_target(const EcoMiter& m, uint32_t t, bool value);

/// Substitutes target \p t of \p m by \p func_root, a literal of m.aig whose
/// cone must not contain any target PI.
EcoMiter substitute_target_in_miter(const EcoMiter& m, uint32_t t, aig::Lit func_root);

}  // namespace eco::core
