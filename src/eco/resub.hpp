/// \file resub.hpp
/// \brief Functional (SAT-based) resubstitution of a patch onto internal
/// divisors — the first alternative of paper §3.6.3.
///
/// Given a function p realized inside the implementation AIG (e.g. a
/// structural patch transferred onto the primary inputs), decide whether p
/// can be re-expressed over a subset of divisor signals and synthesize that
/// expression. The dependency question is the classic two-copy instance —
/// ∃ x1, x2 with d(x1) = d(x2) but p(x1) ≠ p(x2) — posed on the
/// *implementation only*, which is why the paper notes these SAT queries are
/// simpler than the ones over the whole ECO miter. Support selection and
/// cube expansion reuse ``minimize_assumptions`` exactly as in §3.4/§3.5.
#pragma once

#include <span>

#include "eco/problem.hpp"
#include "sop/cover.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco::core {

class ResubFilter;

struct ResubOptions {
  int64_t conflict_budget = -1;
  /// Cancellation token (deadline + external stop) enforced inside every
  /// SAT query. An invalid token means unlimited.
  eco::CancelToken cancel{};
  uint64_t max_cubes = 50000;
  /// Optional simulation filter over the same implementation AIG: refutes
  /// the dependency check without SAT when its bank already witnesses the
  /// dependency's failure, and harvests dependency/on-set models.
  ResubFilter* sim = nullptr;
  /// Optional SAT-sweeping divisor aliasing (Window::divisor_alias). When
  /// non-empty, candidates whose proven-equivalent representative is also a
  /// candidate are dropped before the dependency check — same expressible
  /// functions, smaller two-copy instance.
  std::span<const size_t> divisor_alias{};
};

struct ResubResult {
  bool ok = false;                ///< a dependency-respecting expression was found
  std::vector<size_t> support;    ///< divisor indices actually used
  sop::Cover cover;               ///< p as an SOP over `support`
  int64_t cost = 0;
};

/// Re-expresses \p func (a literal of \p impl) over the divisor candidates.
/// Unlike the support computation on the ECO miter, there are no don't
/// cares: the expression must equal \p func exactly.
ResubResult functional_resub(const aig::Aig& impl, aig::Lit func,
                             const std::vector<Divisor>& divisors,
                             std::span<const size_t> candidates,
                             const ResubOptions& options = {});

}  // namespace eco::core
