/// \file patchfunc.hpp
/// \brief Patch function computation by cube enumeration (paper §3.5).
///
/// With the support fixed, the patch's on-set is enumerated from the n=0
/// copy of the extended miter, one satisfying assignment at a time. Each
/// assignment's divisor values form a cube that is expanded into a *prime*
/// implicant against the n=1 copy using ``minimize_assumptions`` (a minimal
/// subset of cube literals keeping the off-set copy UNSAT is exactly a
/// prime cube), then blocked and collected. The result is an irredundant
/// prime SOP over the divisors, which is subsequently factored and realized
/// as AIG logic (see sop/).
#pragma once

#include <cstdint>
#include <vector>

#include "eco/miter.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"
#include "sop/cover.hpp"

namespace eco::core {

class SimFilter;

struct PatchFuncOptions {
  /// Expand cubes with minimize_assumptions (true) or take the solver's
  /// final-conflict core as the expanded cube (the baseline configuration).
  bool use_minimize = true;
  /// Safety cap on enumerated cubes.
  uint64_t max_cubes = 200000;
  /// Conflict budget per SAT query (< 0 unlimited).
  int64_t conflict_budget = -1;
  /// Cancellation token (deadline + external stop) enforced inside every
  /// SAT query. An invalid token means unlimited.
  eco::CancelToken cancel{};
  /// Run the exact SAT-based irredundancy pass after enumeration: a cube is
  /// dropped when every on-set point it covers is covered by another cube.
  /// Enumeration already yields a near-irredundant cover (each cube was
  /// grown from a then-uncovered point); the pass removes the residue.
  bool make_irredundant = true;
  /// Optional simulation filter: enumerated on-set models are harvested into
  /// its bank, and irredundancy queries are skipped when a bank pattern
  /// already witnesses a cube's necessity (exact, see simfilter.hpp).
  SimFilter* sim_filter = nullptr;
};

struct PatchFuncResult {
  bool ok = false;          ///< false when a budget expired mid-enumeration
  sop::Cover cover;         ///< SOP over support (variable i = support[i])
  uint64_t cubes_enumerated = 0;
  int sat_calls = 0;
};

/// Computes the patch SOP for \p target over the chosen \p support
/// (indices into \p divisors). \p m must have all other targets quantified
/// or substituted. The support must be valid (see compute_support).
PatchFuncResult compute_patch_cover(const EcoMiter& m, uint32_t target,
                                    const std::vector<Divisor>& divisors,
                                    const std::vector<size_t>& support,
                                    const PatchFuncOptions& options);

}  // namespace eco::core
