#include "aig/ops.hpp"

#include <cassert>
#include <stdexcept>

namespace eco::aig {

std::vector<Lit> transfer(const Aig& src, Aig& dst, std::span<const Lit> roots,
                          std::vector<Lit>& map) {
  map.resize(src.num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  // Mark the needed cone.
  std::vector<uint8_t> need(src.num_nodes(), 0);
  std::vector<Node> stack;
  for (const Lit r : roots) stack.push_back(lit_node(r));
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    if (need[n] || map[n] != kLitInvalid) continue;
    need[n] = 1;
    if (src.is_and(n)) {
      stack.push_back(lit_node(src.fanin0(n)));
      stack.push_back(lit_node(src.fanin1(n)));
    } else if (src.is_pi(n)) {
      throw std::invalid_argument("transfer: PI node " + std::to_string(n) +
                                  " has no preset mapping");
    }
  }
  // Build in topological (index) order.
  for (Node n = 1; n < src.num_nodes(); ++n) {
    if (!need[n] || !src.is_and(n)) continue;
    const Lit a = src.fanin0(n);
    const Lit b = src.fanin1(n);
    map[n] = dst.add_and(lit_notif(map[lit_node(a)], lit_compl(a)),
                         lit_notif(map[lit_node(b)], lit_compl(b)));
  }
  std::vector<Lit> out;
  out.reserve(roots.size());
  for (const Lit r : roots) out.push_back(lit_notif(map[lit_node(r)], lit_compl(r)));
  return out;
}

std::vector<Lit> append(const Aig& src, Aig& dst, std::span<const Lit> pi_map) {
  assert(pi_map.size() == src.num_pis());
  std::vector<Lit> map(src.num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  for (uint32_t i = 0; i < src.num_pis(); ++i) map[src.pi_node(i)] = pi_map[i];
  std::vector<Lit> roots;
  roots.reserve(src.num_pos());
  for (uint32_t i = 0; i < src.num_pos(); ++i) roots.push_back(src.po_lit(i));
  return transfer(src, dst, roots, map);
}

Aig cofactor_pis(const Aig& src, std::span<const std::pair<uint32_t, bool>> fixed) {
  Aig out;
  std::vector<Lit> pi_map;
  pi_map.reserve(src.num_pis());
  for (uint32_t i = 0; i < src.num_pis(); ++i) pi_map.push_back(out.add_pi(src.pi_name(i)));
  for (const auto& [pi, value] : fixed) {
    assert(pi < pi_map.size());
    pi_map[pi] = value ? kLitTrue : kLitFalse;
  }
  const std::vector<Lit> pos = append(src, out, pi_map);
  for (uint32_t i = 0; i < src.num_pos(); ++i) out.add_po(pos[i], src.po_name(i));
  return out;
}

Aig compose_pi(const Aig& src, uint32_t pi_index, Lit func_root) {
  Aig out;
  std::vector<Lit> pi_map;
  pi_map.reserve(src.num_pis());
  for (uint32_t i = 0; i < src.num_pis(); ++i) pi_map.push_back(out.add_pi(src.pi_name(i)));
  // First place the replacement function (it may not depend on pi_index).
  std::vector<Lit> map(src.num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  for (uint32_t i = 0; i < src.num_pis(); ++i)
    if (i != pi_index) map[src.pi_node(i)] = pi_map[i];
  const Lit root[] = {func_root};
  const Lit replacement = transfer(src, out, root, map)[0];
  // Now map the substituted PI and transfer the POs.
  map[src.pi_node(pi_index)] = replacement;
  std::vector<Lit> roots;
  roots.reserve(src.num_pos());
  for (uint32_t i = 0; i < src.num_pos(); ++i) roots.push_back(src.po_lit(i));
  const std::vector<Lit> pos = transfer(src, out, roots, map);
  for (uint32_t i = 0; i < src.num_pos(); ++i) out.add_po(pos[i], src.po_name(i));
  return out;
}

Aig extract_cone(const Aig& src, Lit root) {
  Aig out;
  std::vector<Lit> pi_map;
  pi_map.reserve(src.num_pis());
  for (uint32_t i = 0; i < src.num_pis(); ++i) pi_map.push_back(out.add_pi(src.pi_name(i)));
  std::vector<Lit> map(src.num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  for (uint32_t i = 0; i < src.num_pis(); ++i) map[src.pi_node(i)] = pi_map[i];
  const Lit roots[] = {root};
  out.add_po(transfer(src, out, roots, map)[0], "f");
  return out;
}

bool interfaces_match(const Aig& a, const Aig& b) {
  return a.num_pis() == b.num_pis() && a.num_pos() == b.num_pos();
}

}  // namespace eco::aig
