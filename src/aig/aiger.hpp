/// \file aiger.hpp
/// \brief AIGER reader/writer (combinational subset).
///
/// AIGER is the interchange format of the AIG ecosystem the paper's tooling
/// (ABC, MiniSat-based flows) lives in. Both the ASCII ("aag") and binary
/// ("aig") variants are supported for purely combinational circuits;
/// latches are rejected. Symbol tables for inputs/outputs are read and
/// written.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace eco::aig {

/// Parses an AIGER file (auto-detects "aag" vs "aig" from the header).
/// Throws std::runtime_error on malformed input or sequential content.
Aig read_aiger(std::istream& in);
Aig read_aiger_string(const std::string& text);
Aig read_aiger_file(const std::string& path);

/// Writes in ASCII ("aag") or binary ("aig") format. Binary requires the
/// AIG to be in topological order with PIs first, which this library's Aig
/// guarantees by construction.
void write_aiger(std::ostream& out, const Aig& g, bool binary = false);
void write_aiger_file(const std::string& path, const Aig& g, bool binary = false);

}  // namespace eco::aig
