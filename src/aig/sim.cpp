#include "aig/sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace eco::aig {

std::vector<uint64_t> simulate(const Aig& g, std::span<const uint64_t> pi_words) {
  assert(pi_words.size() == g.num_pis());
  std::vector<uint64_t> words(g.num_nodes(), 0);
  for (uint32_t i = 0; i < g.num_pis(); ++i) words[g.pi_node(i)] = pi_words[i];
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n)
    words[n] = sim_value(words, g.fanin0(n)) & sim_value(words, g.fanin1(n));
  return words;
}

SimWords simulate_words(const Aig& g, std::span<const uint64_t> pi_words, size_t words) {
  assert(pi_words.size() == static_cast<size_t>(g.num_pis()) * words);
  SimWords sim;
  sim.words = words;
  sim.data.assign(static_cast<size_t>(g.num_nodes()) * words, 0);
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    std::copy(pi_words.begin() + static_cast<long>(i * words),
              pi_words.begin() + static_cast<long>((i + 1) * words),
              sim.data.begin() + static_cast<long>(static_cast<size_t>(g.pi_node(i)) * words));
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    const Lit a = g.fanin0(n);
    const Lit b = g.fanin1(n);
    const uint64_t* wa = sim.data.data() + static_cast<size_t>(lit_node(a)) * words;
    const uint64_t* wb = sim.data.data() + static_cast<size_t>(lit_node(b)) * words;
    uint64_t* wn = sim.data.data() + static_cast<size_t>(n) * words;
    const uint64_t ma = lit_compl(a) ? ~0ULL : 0ULL;
    const uint64_t mb = lit_compl(b) ? ~0ULL : 0ULL;
    for (size_t w = 0; w < words; ++w) wn[w] = (wa[w] ^ ma) & (wb[w] ^ mb);
  }
  return sim;
}

std::vector<bool> eval(const Aig& g, const std::vector<bool>& pi_values) {
  assert(pi_values.size() == g.num_pis());
  std::vector<uint64_t> pi_words(g.num_pis());
  for (uint32_t i = 0; i < g.num_pis(); ++i) pi_words[i] = pi_values[i] ? ~0ULL : 0ULL;
  const std::vector<uint64_t> words = simulate(g, pi_words);
  std::vector<bool> out(g.num_pos());
  for (uint32_t i = 0; i < g.num_pos(); ++i)
    out[i] = (sim_value(words, g.po_lit(i)) & 1ULL) != 0;
  return out;
}

namespace {
/// Flat [pi * words + w] exhaustive minterm patterns (see simulate_words).
std::vector<uint64_t> exhaustive_pi_words(const Aig& g, size_t& num_words) {
  if (g.num_pis() > 16)
    throw std::invalid_argument("truth_table: too many PIs (max 16)");
  const uint32_t n = g.num_pis();
  const size_t num_minterms = 1ULL << n;
  num_words = std::max<size_t>(1, num_minterms / 64);
  std::vector<uint64_t> pi_words(n * num_words, 0);
  for (size_t m = 0; m < num_minterms; ++m)
    for (uint32_t i = 0; i < n; ++i)
      if ((m >> i) & 1ULL) pi_words[i * num_words + m / 64] |= 1ULL << (m % 64);
  return pi_words;
}

std::vector<uint64_t> masked_row(const Aig& g, const SimWords& sim, Lit l) {
  const auto row = sim.row(lit_node(l));
  std::vector<uint64_t> tt(row.begin(), row.end());
  if (lit_compl(l))
    for (auto& w : tt) w = ~w;
  // Mask the unused upper bits for < 6 inputs.
  if (g.num_pis() < 6) {
    const uint64_t mask = (1ULL << (1u << g.num_pis())) - 1;
    tt[0] &= mask;
  }
  return tt;
}
}  // namespace

std::vector<uint64_t> truth_table(const Aig& g, Lit l) {
  size_t num_words = 0;
  const std::vector<uint64_t> pi_words = exhaustive_pi_words(g, num_words);
  const SimWords sim = simulate_words(g, pi_words, num_words);
  return masked_row(g, sim, l);
}

std::vector<std::vector<uint64_t>> po_truth_tables(const Aig& g) {
  size_t num_words = 0;
  const std::vector<uint64_t> pi_words = exhaustive_pi_words(g, num_words);
  const SimWords sim = simulate_words(g, pi_words, num_words);
  std::vector<std::vector<uint64_t>> out;
  out.reserve(g.num_pos());
  for (uint32_t i = 0; i < g.num_pos(); ++i) out.push_back(masked_row(g, sim, g.po_lit(i)));
  return out;
}

std::vector<uint64_t> random_pi_words(const Aig& g, eco::Rng& rng) {
  std::vector<uint64_t> out(g.num_pis());
  for (auto& w : out) w = rng.next();
  return out;
}

std::vector<uint64_t> random_pi_words(const Aig& g, uint64_t seed, size_t words) {
  // One stream for the whole call: every PI word is the stream's next output,
  // so there is no per-PI reseeding to correlate. mix() decorrelates the
  // caller's seed lattice (consecutive round seeds) from the stream's own
  // golden-ratio state increment.
  SplitMix64 stream(SplitMix64::mix(seed));
  std::vector<uint64_t> out(static_cast<size_t>(g.num_pis()) * words);
  for (auto& w : out) w = stream.next();
  return out;
}

}  // namespace eco::aig
