#include "aig/sim.hpp"

#include <cassert>
#include <stdexcept>

namespace eco::aig {

std::vector<uint64_t> simulate(const Aig& g, std::span<const uint64_t> pi_words) {
  assert(pi_words.size() == g.num_pis());
  std::vector<uint64_t> words(g.num_nodes(), 0);
  for (uint32_t i = 0; i < g.num_pis(); ++i) words[g.pi_node(i)] = pi_words[i];
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n)
    words[n] = sim_value(words, g.fanin0(n)) & sim_value(words, g.fanin1(n));
  return words;
}

std::vector<std::vector<uint64_t>> simulate_words(
    const Aig& g, const std::vector<std::vector<uint64_t>>& pi_words) {
  assert(pi_words.size() == g.num_pis());
  const size_t width = pi_words.empty() ? 0 : pi_words[0].size();
  std::vector<std::vector<uint64_t>> words(g.num_nodes(),
                                           std::vector<uint64_t>(width, 0));
  for (uint32_t i = 0; i < g.num_pis(); ++i) {
    assert(pi_words[i].size() == width);
    words[g.pi_node(i)] = pi_words[i];
  }
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    const Lit a = g.fanin0(n);
    const Lit b = g.fanin1(n);
    const auto& wa = words[lit_node(a)];
    const auto& wb = words[lit_node(b)];
    auto& wn = words[n];
    const uint64_t ma = lit_compl(a) ? ~0ULL : 0ULL;
    const uint64_t mb = lit_compl(b) ? ~0ULL : 0ULL;
    for (size_t w = 0; w < width; ++w) wn[w] = (wa[w] ^ ma) & (wb[w] ^ mb);
  }
  return words;
}

std::vector<bool> eval(const Aig& g, const std::vector<bool>& pi_values) {
  assert(pi_values.size() == g.num_pis());
  std::vector<uint64_t> pi_words(g.num_pis());
  for (uint32_t i = 0; i < g.num_pis(); ++i) pi_words[i] = pi_values[i] ? ~0ULL : 0ULL;
  const std::vector<uint64_t> words = simulate(g, pi_words);
  std::vector<bool> out(g.num_pos());
  for (uint32_t i = 0; i < g.num_pos(); ++i)
    out[i] = (sim_value(words, g.po_lit(i)) & 1ULL) != 0;
  return out;
}

namespace {
std::vector<std::vector<uint64_t>> exhaustive_pi_words(const Aig& g) {
  if (g.num_pis() > 16)
    throw std::invalid_argument("truth_table: too many PIs (max 16)");
  const uint32_t n = g.num_pis();
  const size_t num_minterms = 1ULL << n;
  const size_t num_words = std::max<size_t>(1, num_minterms / 64);
  std::vector<std::vector<uint64_t>> pi_words(n, std::vector<uint64_t>(num_words, 0));
  for (size_t m = 0; m < num_minterms; ++m)
    for (uint32_t i = 0; i < n; ++i)
      if ((m >> i) & 1ULL) pi_words[i][m / 64] |= 1ULL << (m % 64);
  return pi_words;
}
}  // namespace

std::vector<uint64_t> truth_table(const Aig& g, Lit l) {
  const auto words = simulate_words(g, exhaustive_pi_words(g));
  std::vector<uint64_t> tt = words[lit_node(l)];
  if (lit_compl(l))
    for (auto& w : tt) w = ~w;
  // Mask the unused upper bits for < 6 inputs.
  if (g.num_pis() < 6) {
    const uint64_t mask = (1ULL << (1u << g.num_pis())) - 1;
    tt[0] &= mask;
  }
  return tt;
}

std::vector<std::vector<uint64_t>> po_truth_tables(const Aig& g) {
  const auto words = simulate_words(g, exhaustive_pi_words(g));
  std::vector<std::vector<uint64_t>> out;
  out.reserve(g.num_pos());
  for (uint32_t i = 0; i < g.num_pos(); ++i) {
    const Lit l = g.po_lit(i);
    std::vector<uint64_t> tt = words[lit_node(l)];
    if (lit_compl(l))
      for (auto& w : tt) w = ~w;
    if (g.num_pis() < 6) {
      const uint64_t mask = (1ULL << (1u << g.num_pis())) - 1;
      tt[0] &= mask;
    }
    out.push_back(std::move(tt));
  }
  return out;
}

std::vector<uint64_t> random_pi_words(const Aig& g, eco::Rng& rng) {
  std::vector<uint64_t> out(g.num_pis());
  for (auto& w : out) w = rng.next();
  return out;
}

}  // namespace eco::aig
