#include "aig/aig.hpp"

#include <cassert>
#include <functional>

namespace eco::aig {

Aig::Aig() {
  // Node 0: constant false.
  fanin0_.push_back(kLitInvalid);
  fanin1_.push_back(kLitInvalid);
}

Lit Aig::add_pi(std::string name) {
  assert(num_ands() == 0 && "PIs must be created before AND nodes");
  const Node n = num_nodes();
  fanin0_.push_back(kLitInvalid);
  fanin1_.push_back(kLitInvalid);
  ++num_pis_;
  pi_names_.push_back(std::move(name));
  return lit_make(n);
}

Lit Aig::add_and(Lit a, Lit b) {
  assert(lit_node(a) < num_nodes() && lit_node(b) < num_nodes());
  // Local simplification.
  if (a == kLitFalse || b == kLitFalse || a == lit_not(b)) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const uint64_t k = key(a, b);
  if (const auto it = strash_.find(k); it != strash_.end()) return lit_make(it->second);
  const Node n = num_nodes();
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  strash_.emplace(k, n);
  return lit_make(n);
}

Lit Aig::add_and_multi(std::span<const Lit> lits) {
  if (lits.empty()) return kLitTrue;
  std::vector<Lit> layer(lits.begin(), lits.end());
  while (layer.size() > 1) {
    std::vector<Lit> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(add_and(layer[i], layer[i + 1]));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

Lit Aig::add_or_multi(std::span<const Lit> lits) {
  std::vector<Lit> inv;
  inv.reserve(lits.size());
  for (const Lit l : lits) inv.push_back(lit_not(l));
  return lit_not(add_and_multi(inv));
}

Lit Aig::add_xor_multi(std::span<const Lit> lits) {
  Lit acc = kLitFalse;
  for (const Lit l : lits) acc = add_xor(acc, l);
  return acc;
}

uint32_t Aig::add_po(Lit l, std::string name) {
  assert(lit_node(l) < num_nodes());
  pos_.push_back(l);
  po_names_.push_back(std::move(name));
  return static_cast<uint32_t>(pos_.size()) - 1;
}

void Aig::set_po(uint32_t po_index, Lit l) {
  assert(po_index < pos_.size() && lit_node(l) < num_nodes());
  pos_[po_index] = l;
}

std::vector<uint32_t> Aig::levels() const {
  std::vector<uint32_t> level(num_nodes(), 0);
  for (Node n = num_pis_ + 1; n < num_nodes(); ++n)
    level[n] = 1 + std::max(level[lit_node(fanin0_[n])], level[lit_node(fanin1_[n])]);
  return level;
}

uint32_t Aig::cone_size(std::span<const Lit> roots) const {
  std::vector<uint8_t> mark(num_nodes(), 0);
  std::vector<Node> stack;
  for (const Lit r : roots) stack.push_back(lit_node(r));
  uint32_t count = 0;
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    if (mark[n]) continue;
    mark[n] = 1;
    if (!is_and(n)) continue;
    ++count;
    stack.push_back(lit_node(fanin0_[n]));
    stack.push_back(lit_node(fanin1_[n]));
  }
  return count;
}

Aig Aig::cleanup() const {
  Aig out;
  std::vector<Lit> map(num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  for (uint32_t i = 0; i < num_pis_; ++i) {
    const Lit l = out.add_pi(pi_names_[i]);
    map[pi_node(i)] = l;
  }
  // Mark reachable nodes from POs.
  std::vector<uint8_t> reach(num_nodes(), 0);
  std::vector<Node> stack;
  for (const Lit po : pos_) stack.push_back(lit_node(po));
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    if (reach[n]) continue;
    reach[n] = 1;
    if (is_and(n)) {
      stack.push_back(lit_node(fanin0_[n]));
      stack.push_back(lit_node(fanin1_[n]));
    }
  }
  // Rebuild reachable AND nodes in topological (index) order.
  for (Node n = num_pis_ + 1; n < num_nodes(); ++n) {
    if (!reach[n]) continue;
    const Lit a = fanin0_[n];
    const Lit b = fanin1_[n];
    map[n] = out.add_and(lit_notif(map[lit_node(a)], lit_compl(a)),
                         lit_notif(map[lit_node(b)], lit_compl(b)));
  }
  for (uint32_t i = 0; i < num_pos(); ++i) {
    const Lit po = pos_[i];
    out.add_po(lit_notif(map[lit_node(po)], lit_compl(po)), po_names_[i]);
  }
  return out;
}

}  // namespace eco::aig
