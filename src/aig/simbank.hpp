/// \file simbank.hpp
/// \brief A growing bank of 64-bit-packed simulation patterns over one AIG.
///
/// The bank stores input patterns column-wise: every node owns a row of
/// 64-pattern words in ONE flat contiguous buffer (`[node][word]` layout,
/// indexed node * capacity + w), so a node's signature over all patterns is
/// a cache-friendly span. The bank is seeded with random patterns and grows
/// with counterexamples (SAT models) appended by the engine; re-simulation
/// is incremental and lazy — only the word columns dirtied since the last
/// query are recomputed, and only when a row is actually read.
///
/// The underlying AIG may GROW after the bank is created (nodes appended in
/// topological order, e.g. by aig::transfer); the bank extends its storage
/// and simulates the new nodes on the next query. Adding PIs after
/// construction is not supported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace eco::aig {

struct SimBankOptions {
  /// Random seed words (64 patterns each) filled at construction.
  uint32_t seed_words = 4;
  /// Hard cap on total words (counterexample capacity = 64 * words).
  uint32_t capacity_words = 16;
  /// The capacity is lowered so that storage (8 bytes * nodes * words)
  /// stays under this budget on large AIGs.
  uint64_t memory_budget_bytes = 64ull << 20;
  /// Seed of the random fill (decorrelated through SplitMix64::mix).
  uint64_t seed = 0x51bba9c5eedULL;
};

/// See file comment.
class SimBank {
 public:
  /// Keeps a reference to \p g; it must outlive the bank.
  SimBank(const Aig& g, const SimBankOptions& options);

  const Aig& aig() const noexcept { return *g_; }

  /// Patterns currently in the bank (seed + appended).
  uint32_t num_patterns() const noexcept { return num_patterns_; }
  /// How many of them are the random seed patterns (always the prefix).
  uint32_t num_seed_patterns() const noexcept { return num_seed_patterns_; }
  /// Words spanned by the current patterns (ceil(num_patterns / 64)).
  size_t num_words() const noexcept { return (num_patterns_ + 63) / 64; }
  /// Mask of the pattern bits valid in word \p w.
  uint64_t valid_mask(size_t w) const noexcept;
  bool full() const noexcept { return num_patterns_ >= capacity_words_ * 64; }

  /// Appends one pattern (one value per PI). Returns false when full.
  bool add_pattern(const std::vector<bool>& pi_values);

  /// Word row of node \p n over the current patterns (length num_words()).
  /// Triggers incremental re-simulation of dirty words / new nodes; the
  /// span is valid until the next add_pattern() or row() call.
  std::span<const uint64_t> row(Node n);

  /// Value of literal \p l under pattern \p index.
  bool value(Lit l, uint32_t index);

  /// PI values of pattern \p index (the inverse of add_pattern).
  std::vector<bool> pattern(uint32_t index);

  /// Node-word recomputation units spent on incremental re-simulation.
  uint64_t resim_node_words() const noexcept { return resim_node_words_; }

 private:
  void sync();

  const Aig* g_;
  size_t capacity_words_ = 0;
  uint32_t num_patterns_ = 0;
  uint32_t num_seed_patterns_ = 0;
  uint32_t known_nodes_ = 0;  ///< rows allocated+simulated for nodes [0, known)
  size_t clean_words_ = 0;    ///< word columns up to date for all known nodes
  std::vector<uint64_t> words_;  ///< flat [node * capacity_words_ + w]
  uint64_t resim_node_words_ = 0;
};

}  // namespace eco::aig
