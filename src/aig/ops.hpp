/// \file ops.hpp
/// \brief Whole-graph AIG operations: cone transfer, composition, cofactors.
///
/// These are the building blocks for miter construction (paper Fig. 1),
/// target-variable cofactoring (paper §3.1, §3.6) and patch substitution.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "aig/aig.hpp"

namespace eco::aig {

/// Copies the cones of \p roots from \p src into \p dst.
///
/// \param map  dst literal for each src node; entries may be preset (the
///             constant node 0 must map to kLitFalse, PIs to their images).
///             Unset entries are kLitInvalid and get filled for AND nodes.
///             Every PI in the cones must be preset.
/// \returns the dst literals corresponding to \p roots.
std::vector<Lit> transfer(const Aig& src, Aig& dst, std::span<const Lit> roots,
                          std::vector<Lit>& map);

/// Appends all of \p src into \p dst, mapping src PI \c i to \p pi_map[i].
/// \returns the dst literals of src's POs.
std::vector<Lit> append(const Aig& src, Aig& dst, std::span<const Lit> pi_map);

/// Builds a new AIG computing the same POs with the listed PIs fixed to
/// constants. The PI/PO interface is preserved (fixed PIs remain as unused
/// inputs).
Aig cofactor_pis(const Aig& src, std::span<const std::pair<uint32_t, bool>> fixed);

/// Builds a new AIG where PI \p pi_index is replaced by the function rooted
/// at \p func_root (a literal of \p src itself, whose cone must not contain
/// that PI). Interface is preserved.
Aig compose_pi(const Aig& src, uint32_t pi_index, Lit func_root);

/// Builds a single-output AIG for the function of \p root inside \p src,
/// with the same PI interface.
Aig extract_cone(const Aig& src, Lit root);

/// Structural equality of interfaces (PI/PO counts), used for miters.
bool interfaces_match(const Aig& a, const Aig& b);

}  // namespace eco::aig
