/// \file sim.hpp
/// \brief Bit-parallel simulation of AIGs.
///
/// Simulation serves four roles in the library: functional validation in
/// tests (truth tables for small cones), candidate-equivalence detection for
/// CEGAR_min resubstitution (paper §3.6.3), counterexample screening in the
/// equivalence checker, and the counterexample-driven pattern bank
/// (simbank.hpp) that prunes SAT queries across the engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace eco::aig {

/// Simulates one 64-pattern word per PI; returns one word per node
/// (indexed by node, bit i = value under pattern i).
std::vector<uint64_t> simulate(const Aig& g, std::span<const uint64_t> pi_words);

/// A flat multi-word simulation image: one contiguous buffer holding
/// `words` 64-pattern words per node, indexed `[node * words + w]`.
struct SimWords {
  size_t words = 0;            ///< words per node
  std::vector<uint64_t> data;  ///< num_nodes * words values

  /// The word row of node \p n.
  std::span<const uint64_t> row(Node n) const noexcept {
    return {data.data() + static_cast<size_t>(n) * words, words};
  }
};

/// Multi-word simulation. \p pi_words is flat `[pi * words + w]` (size
/// num_pis * words); the result holds `[node * words + w]`.
SimWords simulate_words(const Aig& g, std::span<const uint64_t> pi_words, size_t words);

/// Evaluates all POs under a single input pattern.
std::vector<bool> eval(const Aig& g, const std::vector<bool>& pi_values);

/// Value of literal \p l in a node-indexed simulation vector.
inline uint64_t sim_value(std::span<const uint64_t> words, Lit l) {
  const uint64_t w = words[lit_node(l)];
  return lit_compl(l) ? ~w : w;
}

/// Truth table of literal \p l as a function of all PIs (\pre num_pis <= 16).
/// Bit m of the result's word m/64 is the value under minterm m.
std::vector<uint64_t> truth_table(const Aig& g, Lit l);

/// Truth tables of all POs (\pre num_pis <= 16).
std::vector<std::vector<uint64_t>> po_truth_tables(const Aig& g);

/// Fills one random 64-pattern word per PI from \p rng.
std::vector<uint64_t> random_pi_words(const Aig& g, eco::Rng& rng);

/// Fills \p words random 64-pattern words per PI — flat `[pi * words + w]`
/// layout — all drawn from ONE SplitMix64 stream derived from \p seed (the
/// seed is decorrelated through SplitMix64::mix first, so callers may use
/// consecutive or arithmetically-spaced seeds, e.g. one per CEC round,
/// without the streams overlapping).
std::vector<uint64_t> random_pi_words(const Aig& g, uint64_t seed, size_t words = 1);

}  // namespace eco::aig
