/// \file sim.hpp
/// \brief Bit-parallel simulation of AIGs.
///
/// Simulation serves three roles in the library: functional validation in
/// tests (truth tables for small cones), candidate-equivalence detection for
/// CEGAR_min resubstitution (paper §3.6.3), and counterexample screening in
/// the equivalence checker.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace eco::aig {

/// Simulates one 64-pattern word per PI; returns one word per node
/// (indexed by node, bit i = value under pattern i).
std::vector<uint64_t> simulate(const Aig& g, std::span<const uint64_t> pi_words);

/// Multi-word simulation: \p pi_words is [pi][word]; the result is
/// [node][word].
std::vector<std::vector<uint64_t>> simulate_words(
    const Aig& g, const std::vector<std::vector<uint64_t>>& pi_words);

/// Evaluates all POs under a single input pattern.
std::vector<bool> eval(const Aig& g, const std::vector<bool>& pi_values);

/// Value of literal \p l in a node-indexed simulation vector.
inline uint64_t sim_value(std::span<const uint64_t> words, Lit l) {
  const uint64_t w = words[lit_node(l)];
  return lit_compl(l) ? ~w : w;
}

/// Truth table of literal \p l as a function of all PIs (\pre num_pis <= 16).
/// Bit m of the result's word m/64 is the value under minterm m.
std::vector<uint64_t> truth_table(const Aig& g, Lit l);

/// Truth tables of all POs (\pre num_pis <= 16).
std::vector<std::vector<uint64_t>> po_truth_tables(const Aig& g);

/// Fills one random 64-pattern word per PI.
std::vector<uint64_t> random_pi_words(const Aig& g, eco::Rng& rng);

}  // namespace eco::aig
