#include "aig/simbank.hpp"

#include <algorithm>
#include <cassert>

#include "aig/sim.hpp"
#include "util/telemetry.hpp"

namespace eco::aig {

SimBank::SimBank(const Aig& g, const SimBankOptions& options) : g_(&g) {
  // Scale the word capacity down so the flat storage respects the memory
  // budget on large (e.g. quantified-miter) AIGs; always keep one word.
  const uint64_t nodes = std::max<uint64_t>(1, g.num_nodes());
  const uint64_t budget_words = options.memory_budget_bytes / (8 * nodes);
  capacity_words_ =
      std::max<uint64_t>(1, std::min<uint64_t>(options.capacity_words, budget_words));
  const size_t seed_words = std::min<size_t>(options.seed_words, capacity_words_);

  known_nodes_ = g.num_nodes();
  words_.assign(static_cast<size_t>(known_nodes_) * capacity_words_, 0);

  // Random seed patterns: one SplitMix64 stream fills every PI word.
  const std::vector<uint64_t> pi_words = random_pi_words(g, options.seed, seed_words);
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    for (size_t w = 0; w < seed_words; ++w)
      words_[static_cast<size_t>(g.pi_node(i)) * capacity_words_ + w] =
          pi_words[i * seed_words + w];
  num_patterns_ = static_cast<uint32_t>(seed_words * 64);
  num_seed_patterns_ = num_patterns_;
  clean_words_ = 0;  // AND rows simulated lazily on the first query
}

uint64_t SimBank::valid_mask(size_t w) const noexcept {
  const size_t full = num_patterns_ / 64;
  if (w < full) return ~0ULL;
  const uint32_t rem = num_patterns_ % 64;
  return (w == full && rem != 0) ? (1ULL << rem) - 1 : 0ULL;
}

bool SimBank::add_pattern(const std::vector<bool>& pi_values) {
  assert(pi_values.size() == g_->num_pis());
  if (full()) return false;
  const uint32_t pos = num_patterns_;
  const size_t w = pos / 64;
  const uint64_t bit = 1ULL << (pos % 64);
  for (uint32_t i = 0; i < g_->num_pis(); ++i)
    if (pi_values[i])
      words_[static_cast<size_t>(g_->pi_node(i)) * capacity_words_ + w] |= bit;
  ++num_patterns_;
  clean_words_ = std::min(clean_words_, w);
  return true;
}

void SimBank::sync() {
  const size_t target_words = num_words();
  // New nodes appended to the AIG since the last sync: allocate their rows
  // (constant/AND only — adding PIs post-construction is unsupported) and
  // simulate them over every already-clean word so only the dirty-word pass
  // below remains.
  if (g_->num_nodes() > known_nodes_) {
    assert(g_->num_pis() + 1 <= known_nodes_ && "PIs added after SimBank creation");
    words_.resize(static_cast<size_t>(g_->num_nodes()) * capacity_words_, 0);
    for (Node n = known_nodes_; n < g_->num_nodes(); ++n) {
      const Lit a = g_->fanin0(n);
      const Lit b = g_->fanin1(n);
      const uint64_t* wa = words_.data() + static_cast<size_t>(lit_node(a)) * capacity_words_;
      const uint64_t* wb = words_.data() + static_cast<size_t>(lit_node(b)) * capacity_words_;
      uint64_t* wn = words_.data() + static_cast<size_t>(n) * capacity_words_;
      const uint64_t ma = lit_compl(a) ? ~0ULL : 0ULL;
      const uint64_t mb = lit_compl(b) ? ~0ULL : 0ULL;
      for (size_t w = 0; w < clean_words_; ++w) wn[w] = (wa[w] ^ ma) & (wb[w] ^ mb);
    }
    const uint64_t grown =
        static_cast<uint64_t>(g_->num_nodes() - known_nodes_) * clean_words_;
    resim_node_words_ += grown;
    ECO_TELEMETRY_COUNT("sim.resim_nodes", grown);
    known_nodes_ = g_->num_nodes();
  }
  if (clean_words_ >= target_words) return;
  // Incremental pass: recompute only the dirty word columns
  // [clean_words_, target_words) of every AND node, in topological order.
  for (Node n = g_->num_pis() + 1; n < known_nodes_; ++n) {
    const Lit a = g_->fanin0(n);
    const Lit b = g_->fanin1(n);
    const uint64_t* wa = words_.data() + static_cast<size_t>(lit_node(a)) * capacity_words_;
    const uint64_t* wb = words_.data() + static_cast<size_t>(lit_node(b)) * capacity_words_;
    uint64_t* wn = words_.data() + static_cast<size_t>(n) * capacity_words_;
    const uint64_t ma = lit_compl(a) ? ~0ULL : 0ULL;
    const uint64_t mb = lit_compl(b) ? ~0ULL : 0ULL;
    for (size_t w = clean_words_; w < target_words; ++w)
      wn[w] = (wa[w] ^ ma) & (wb[w] ^ mb);
  }
  const uint64_t resimmed = static_cast<uint64_t>(g_->num_ands()) *
                            static_cast<uint64_t>(target_words - clean_words_);
  resim_node_words_ += resimmed;
  ECO_TELEMETRY_COUNT("sim.resim_nodes", resimmed);
  clean_words_ = target_words;
}

std::span<const uint64_t> SimBank::row(Node n) {
  sync();
  assert(n < known_nodes_);
  return {words_.data() + static_cast<size_t>(n) * capacity_words_, num_words()};
}

bool SimBank::value(Lit l, uint32_t index) {
  assert(index < num_patterns_);
  const uint64_t w = row(lit_node(l))[index / 64];
  const bool v = ((w >> (index % 64)) & 1ULL) != 0;
  return v != lit_compl(l);
}

std::vector<bool> SimBank::pattern(uint32_t index) {
  std::vector<bool> out(g_->num_pis());
  for (uint32_t i = 0; i < g_->num_pis(); ++i) out[i] = value(g_->pi_lit(i), index);
  return out;
}

}  // namespace eco::aig
