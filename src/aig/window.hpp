/// \file window.hpp
/// \brief Structural traversal utilities: TFI/TFO cones and supports
/// (paper §2.2 and the structural-pruning step of §3.3).
#pragma once

#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace eco::aig {

/// Marks (by node) the transitive fanin cone of \p roots, including the
/// roots themselves.
std::vector<uint8_t> tfi_mark(const Aig& g, std::span<const Node> roots);

/// Marks (by node) the transitive fanout cone of \p seeds, including the
/// seeds themselves.
std::vector<uint8_t> tfo_mark(const Aig& g, std::span<const Node> seeds);

/// PI indices in the support (TFI) of \p root literals.
std::vector<uint32_t> support_pis(const Aig& g, std::span<const Lit> roots);

/// PO indices whose cone intersects the TFO of \p seeds (the "TFO support",
/// paper §2.2).
std::vector<uint32_t> tfo_pos(const Aig& g, std::span<const Node> seeds);

}  // namespace eco::aig
