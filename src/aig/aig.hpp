/// \file aig.hpp
/// \brief And-Inverter Graph (AIG): the circuit representation used by the
/// whole library (paper §2.2).
///
/// Conventions mirror the AIGER/ABC world:
///  - a *node* is an index; node 0 is the constant-FALSE node, followed by
///    the primary inputs, followed by AND nodes in topological order;
///  - a *literal* packs a node index and a complement bit
///    (lit = 2*node + complemented); literal 0 is constant false, literal 1
///    constant true;
///  - AND nodes are structurally hashed and locally simplified at creation,
///    so sharing is maximal by construction and trivial ANDs never exist.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace eco::aig {

/// AIG literal: 2*node + complement.
using Lit = uint32_t;
/// AIG node index.
using Node = uint32_t;

constexpr Lit kLitFalse = 0;
constexpr Lit kLitTrue = 1;
constexpr Lit kLitInvalid = UINT32_MAX;

constexpr Node lit_node(Lit l) noexcept { return l >> 1; }
constexpr bool lit_compl(Lit l) noexcept { return (l & 1u) != 0; }
constexpr Lit lit_not(Lit l) noexcept { return l ^ 1u; }
constexpr Lit lit_make(Node n, bool complemented = false) noexcept {
  return 2 * n + static_cast<Lit>(complemented);
}
/// Conditional complement.
constexpr Lit lit_notif(Lit l, bool c) noexcept { return l ^ static_cast<Lit>(c); }

/// And-Inverter Graph.
class Aig {
 public:
  Aig();

  // ---- construction ----------------------------------------------------

  /// Appends a primary input; returns its (positive) literal.
  Lit add_pi(std::string name = {});

  /// Appends a structurally hashed AND node (with local simplification);
  /// returns its literal, possibly an existing node or a constant.
  Lit add_and(Lit a, Lit b);

  // Derived connectives, all built on add_and.
  Lit add_or(Lit a, Lit b) { return lit_not(add_and(lit_not(a), lit_not(b))); }
  Lit add_nand(Lit a, Lit b) { return lit_not(add_and(a, b)); }
  Lit add_nor(Lit a, Lit b) { return add_and(lit_not(a), lit_not(b)); }
  Lit add_xor(Lit a, Lit b) {
    return add_or(add_and(a, lit_not(b)), add_and(lit_not(a), b));
  }
  Lit add_xnor(Lit a, Lit b) { return lit_not(add_xor(a, b)); }
  /// MUX: sel ? t : e.
  Lit add_mux(Lit sel, Lit t, Lit e) {
    return add_or(add_and(sel, t), add_and(lit_not(sel), e));
  }
  /// Balanced AND/OR over a span of literals (empty AND = true, empty OR = false).
  Lit add_and_multi(std::span<const Lit> lits);
  Lit add_or_multi(std::span<const Lit> lits);
  Lit add_xor_multi(std::span<const Lit> lits);

  /// Appends a primary output driven by \p l. Returns the PO index.
  uint32_t add_po(Lit l, std::string name = {});

  /// Redirects an existing PO to a new driver (used when substituting
  /// patches).
  void set_po(uint32_t po_index, Lit l);

  // ---- inspection --------------------------------------------------------

  uint32_t num_nodes() const noexcept { return static_cast<uint32_t>(fanin0_.size()); }
  uint32_t num_pis() const noexcept { return num_pis_; }
  uint32_t num_pos() const noexcept { return static_cast<uint32_t>(pos_.size()); }
  uint32_t num_ands() const noexcept { return num_nodes() - 1 - num_pis_; }

  bool is_const0(Node n) const noexcept { return n == 0; }
  bool is_pi(Node n) const noexcept { return n >= 1 && n <= num_pis_; }
  bool is_and(Node n) const noexcept { return n > num_pis_; }

  /// Fanins of an AND node.
  Lit fanin0(Node n) const noexcept { return fanin0_[n]; }
  Lit fanin1(Node n) const noexcept { return fanin1_[n]; }

  /// PI accessors. PI indices run 0..num_pis()-1; node = index+1.
  Lit pi_lit(uint32_t pi_index) const noexcept { return lit_make(pi_index + 1); }
  Node pi_node(uint32_t pi_index) const noexcept { return pi_index + 1; }
  /// Index of a PI node (inverse of pi_node). \pre is_pi(n).
  uint32_t pi_index(Node n) const noexcept { return n - 1; }
  const std::string& pi_name(uint32_t pi_index) const { return pi_names_[pi_index]; }
  void set_pi_name(uint32_t pi_index, std::string name) { pi_names_[pi_index] = std::move(name); }

  Lit po_lit(uint32_t po_index) const noexcept { return pos_[po_index]; }
  const std::string& po_name(uint32_t po_index) const { return po_names_[po_index]; }
  void set_po_name(uint32_t po_index, std::string name) {
    po_names_[po_index] = std::move(name);
  }

  /// Logic level of each node (PIs/const at level 0).
  std::vector<uint32_t> levels() const;

  /// Number of AND nodes in the transitive fanin cones of \p roots.
  uint32_t cone_size(std::span<const Lit> roots) const;

  // ---- whole-graph operations -------------------------------------------

  /// Returns a copy with dangling AND nodes (not reaching any PO) removed.
  /// PI/PO order and names are preserved.
  Aig cleanup() const;

 private:
  uint64_t key(Lit a, Lit b) const noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  uint32_t num_pis_ = 0;
  std::vector<Lit> fanin0_;  // per node; kLitInvalid for PIs
  std::vector<Lit> fanin1_;
  std::vector<Lit> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<uint64_t, Node> strash_;
};

}  // namespace eco::aig
