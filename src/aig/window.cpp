#include "aig/window.hpp"

namespace eco::aig {

std::vector<uint8_t> tfi_mark(const Aig& g, std::span<const Node> roots) {
  std::vector<uint8_t> mark(g.num_nodes(), 0);
  std::vector<Node> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    if (mark[n]) continue;
    mark[n] = 1;
    if (g.is_and(n)) {
      stack.push_back(lit_node(g.fanin0(n)));
      stack.push_back(lit_node(g.fanin1(n)));
    }
  }
  return mark;
}

std::vector<uint8_t> tfo_mark(const Aig& g, std::span<const Node> seeds) {
  std::vector<uint8_t> mark(g.num_nodes(), 0);
  for (const Node s : seeds) mark[s] = 1;
  // One forward pass suffices: nodes are in topological order.
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    if (mark[n]) continue;
    if (mark[lit_node(g.fanin0(n))] || mark[lit_node(g.fanin1(n))]) mark[n] = 1;
  }
  return mark;
}

std::vector<uint32_t> support_pis(const Aig& g, std::span<const Lit> roots) {
  std::vector<Node> nodes;
  nodes.reserve(roots.size());
  for (const Lit l : roots) nodes.push_back(lit_node(l));
  const std::vector<uint8_t> mark = tfi_mark(g, nodes);
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    if (mark[g.pi_node(i)]) out.push_back(i);
  return out;
}

std::vector<uint32_t> tfo_pos(const Aig& g, std::span<const Node> seeds) {
  const std::vector<uint8_t> mark = tfo_mark(g, seeds);
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < g.num_pos(); ++i)
    if (mark[lit_node(g.po_lit(i))]) out.push_back(i);
  return out;
}

}  // namespace eco::aig
