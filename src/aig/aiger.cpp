#include "aig/aiger.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace eco::aig {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("aiger: " + msg);
}

uint32_t read_binary_delta(std::istream& in) {
  uint32_t value = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == EOF) fail("truncated binary delta");
    value |= static_cast<uint32_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return value;
    shift += 7;
    if (shift > 28) fail("binary delta too large");
  }
}

void write_binary_delta(std::ostream& out, uint32_t delta) {
  while (delta >= 0x80) {
    out.put(static_cast<char>((delta & 0x7f) | 0x80));
    delta >>= 7;
  }
  out.put(static_cast<char>(delta));
}

struct AndDef {
  uint32_t lhs, rhs0, rhs1;
};

Aig build(uint32_t max_var, uint32_t num_inputs, const std::vector<uint32_t>& outputs,
          const std::vector<AndDef>& ands) {
  Aig g;
  // node index -> our literal (AIGER var k maps to node k when in order,
  // but ands may appear in any order in ASCII files).
  std::vector<Lit> lit_of(max_var + 1, kLitInvalid);
  lit_of[0] = kLitFalse;
  for (uint32_t i = 0; i < num_inputs; ++i) lit_of[i + 1] = g.add_pi("i" + std::to_string(i));

  std::vector<int32_t> def_of(max_var + 1, -1);
  for (size_t i = 0; i < ands.size(); ++i) {
    const uint32_t v = ands[i].lhs / 2;
    if ((ands[i].lhs & 1u) != 0 || v > max_var) fail("invalid AND lhs");
    if (def_of[v] != -1 || lit_of[v] != kLitInvalid) fail("redefined variable");
    def_of[v] = static_cast<int32_t>(i);
  }

  // Iterative topological construction (ASCII allows any order).
  std::vector<uint32_t> stack;
  auto ensure = [&](uint32_t var) {
    if (lit_of[var] != kLitInvalid) return;
    stack.push_back(var);
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      if (lit_of[v] != kLitInvalid) {
        stack.pop_back();
        continue;
      }
      if (def_of[v] < 0) fail("variable " + std::to_string(v) + " is never defined");
      const AndDef& def = ands[static_cast<size_t>(def_of[v])];
      const uint32_t v0 = def.rhs0 / 2;
      const uint32_t v1 = def.rhs1 / 2;
      if (v0 > max_var || v1 > max_var) fail("AND input out of range");
      bool ready = true;
      if (lit_of[v0] == kLitInvalid) {
        if (v0 == v) fail("self-referential AND");
        stack.push_back(v0);
        ready = false;
      }
      if (lit_of[v1] == kLitInvalid) {
        if (v1 == v) fail("self-referential AND");
        stack.push_back(v1);
        ready = false;
      }
      if (!ready) {
        if (stack.size() > static_cast<size_t>(max_var) + 2) fail("cyclic AND definitions");
        continue;
      }
      lit_of[v] = g.add_and(lit_notif(lit_of[v0], (def.rhs0 & 1u) != 0),
                            lit_notif(lit_of[v1], (def.rhs1 & 1u) != 0));
      stack.pop_back();
    }
  };
  for (const auto& def : ands) ensure(def.lhs / 2);
  for (size_t o = 0; o < outputs.size(); ++o) {
    const uint32_t v = outputs[o] / 2;
    if (v > max_var) fail("output literal out of range");
    if (lit_of[v] == kLitInvalid) ensure(v);
    g.add_po(lit_notif(lit_of[v], (outputs[o] & 1u) != 0), "o" + std::to_string(o));
  }
  return g;
}

void read_symbols(std::istream& in, Aig& g) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'c') break;  // comment section
    std::istringstream ls(line);
    std::string tag, name;
    if (!(ls >> tag)) continue;
    std::getline(ls, name);
    const size_t first = name.find_first_not_of(' ');
    if (first != std::string::npos) name = name.substr(first);
    if (tag.size() < 2) continue;
    const uint32_t index = static_cast<uint32_t>(std::strtoul(tag.c_str() + 1, nullptr, 10));
    if (tag[0] == 'i' && index < g.num_pis()) g.set_pi_name(index, name);
    if (tag[0] == 'o' && index < g.num_pos()) g.set_po_name(index, name);
  }
}

}  // namespace

Aig read_aiger(std::istream& in) {
  std::string magic;
  uint32_t max_var = 0, num_in = 0, num_latch = 0, num_out = 0, num_and = 0;
  if (!(in >> magic >> max_var >> num_in >> num_latch >> num_out >> num_and))
    fail("malformed header");
  if (magic != "aag" && magic != "aig") fail("unknown magic '" + magic + "'");
  if (num_latch != 0) fail("sequential AIGER files are not supported");
  if (static_cast<uint64_t>(num_in) + num_and > max_var) fail("inconsistent header counts");

  std::vector<uint32_t> outputs;
  std::vector<AndDef> ands;
  if (magic == "aag") {
    for (uint32_t i = 0; i < num_in; ++i) {
      uint32_t lit = 0;
      if (!(in >> lit)) fail("missing input literal");
      if (lit != 2 * (i + 1)) fail("non-canonical input literal");
    }
    for (uint32_t o = 0; o < num_out; ++o) {
      uint32_t lit = 0;
      if (!(in >> lit)) fail("missing output literal");
      outputs.push_back(lit);
    }
    for (uint32_t a = 0; a < num_and; ++a) {
      AndDef def{};
      if (!(in >> def.lhs >> def.rhs0 >> def.rhs1)) fail("missing AND definition");
      ands.push_back(def);
    }
  } else {
    for (uint32_t o = 0; o < num_out; ++o) {
      uint32_t lit = 0;
      if (!(in >> lit)) fail("missing output literal");
      outputs.push_back(lit);
    }
    in.get();  // consume the newline before the binary section
    for (uint32_t a = 0; a < num_and; ++a) {
      const uint32_t lhs = 2 * (num_in + a + 1);
      const uint32_t delta0 = read_binary_delta(in);
      const uint32_t delta1 = read_binary_delta(in);
      if (delta0 > lhs) fail("invalid binary delta");
      const uint32_t rhs0 = lhs - delta0;
      if (delta1 > rhs0) fail("invalid binary delta");
      ands.push_back(AndDef{lhs, rhs0, rhs0 - delta1});
    }
  }
  Aig g = build(max_var, num_in, outputs, ands);
  in.ignore(1, '\n');
  read_symbols(in, g);
  return g;
}

Aig read_aiger_string(const std::string& text) {
  std::istringstream in(text);
  return read_aiger(in);
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open file: " + path);
  return read_aiger(in);
}

void write_aiger(std::ostream& out, const Aig& g, bool binary) {
  const uint32_t max_var = g.num_nodes() - 1;
  out << (binary ? "aig " : "aag ") << max_var << ' ' << g.num_pis() << " 0 "
      << g.num_pos() << ' ' << g.num_ands() << '\n';
  if (!binary)
    for (uint32_t i = 0; i < g.num_pis(); ++i) out << 2 * g.pi_node(i) << '\n';
  for (uint32_t o = 0; o < g.num_pos(); ++o) out << g.po_lit(o) << '\n';
  for (Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    // AIGER wants rhs0 >= rhs1; our fanins are sorted ascending.
    const uint32_t rhs0 = std::max(g.fanin0(n), g.fanin1(n));
    const uint32_t rhs1 = std::min(g.fanin0(n), g.fanin1(n));
    if (binary) {
      write_binary_delta(out, 2 * n - rhs0);
      write_binary_delta(out, rhs0 - rhs1);
    } else {
      out << 2 * n << ' ' << rhs0 << ' ' << rhs1 << '\n';
    }
  }
  for (uint32_t i = 0; i < g.num_pis(); ++i)
    if (!g.pi_name(i).empty()) out << 'i' << i << ' ' << g.pi_name(i) << '\n';
  for (uint32_t o = 0; o < g.num_pos(); ++o)
    if (!g.po_name(o).empty()) out << 'o' << o << ' ' << g.po_name(o) << '\n';
  out << "c\necopatch\n";
}

void write_aiger_file(const std::string& path, const Aig& g, bool binary) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open file for writing: " + path);
  write_aiger(out, g, binary);
}

}  // namespace eco::aig
