#include "flow/maxflow.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace eco::flow {

MaxFlow::MaxFlow(int num_nodes) : head_(static_cast<size_t>(num_nodes), -1) {}

int MaxFlow::add_edge(int from, int to, Capacity capacity) {
  assert(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
  assert(capacity >= 0);
  const int index = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, head_[static_cast<size_t>(from)]});
  head_[static_cast<size_t>(from)] = index;
  edges_.push_back(Edge{from, 0, head_[static_cast<size_t>(to)]});  // reverse edge
  head_[static_cast<size_t>(to)] = index + 1;
  original_cap_.push_back(capacity);
  original_cap_.push_back(0);
  return index;
}

bool MaxFlow::bfs(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::queue<int> q;
  q.push(source);
  level_[static_cast<size_t>(source)] = 0;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e = head_[static_cast<size_t>(u)]; e != -1; e = edges_[static_cast<size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<size_t>(e)];
      if (edge.cap > 0 && level_[static_cast<size_t>(edge.to)] < 0) {
        level_[static_cast<size_t>(edge.to)] = level_[static_cast<size_t>(u)] + 1;
        q.push(edge.to);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] >= 0;
}

Capacity MaxFlow::dfs(int node, int sink, Capacity limit) {
  if (node == sink) return limit;
  for (int& e = iter_[static_cast<size_t>(node)]; e != -1;
       e = edges_[static_cast<size_t>(e)].next) {
    Edge& edge = edges_[static_cast<size_t>(e)];
    if (edge.cap <= 0 ||
        level_[static_cast<size_t>(edge.to)] != level_[static_cast<size_t>(node)] + 1)
      continue;
    const Capacity pushed = dfs(edge.to, sink, std::min(limit, edge.cap));
    if (pushed > 0) {
      edge.cap -= pushed;
      edges_[static_cast<size_t>(e ^ 1)].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

Capacity MaxFlow::run(int source, int sink) {
  assert(source != sink);
  source_ = source;
  Capacity total = 0;
  while (bfs(source, sink)) {
    iter_ = head_;
    for (;;) {
      const Capacity pushed = dfs(source, sink, kInfinite);
      if (pushed == 0) break;
      total += pushed;
      if (total >= kInfinite) return kInfinite;
    }
  }
  return total;
}

Capacity MaxFlow::flow_on(int edge_index) const {
  return original_cap_[static_cast<size_t>(edge_index)] -
         edges_[static_cast<size_t>(edge_index)].cap;
}

std::vector<uint8_t> MaxFlow::min_cut_source_side() const {
  assert(source_ >= 0 && "run() must be called first");
  std::vector<uint8_t> reachable(head_.size(), 0);
  std::queue<int> q;
  q.push(source_);
  reachable[static_cast<size_t>(source_)] = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e = head_[static_cast<size_t>(u)]; e != -1; e = edges_[static_cast<size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<size_t>(e)];
      if (edge.cap > 0 && !reachable[static_cast<size_t>(edge.to)]) {
        reachable[static_cast<size_t>(edge.to)] = 1;
        q.push(edge.to);
      }
    }
  }
  return reachable;
}

NodeCutGraph::NodeCutGraph(int num_nodes)
    : num_nodes_(num_nodes), node_cap_(static_cast<size_t>(num_nodes), kInfinite) {}

void NodeCutGraph::set_node_capacity(int node, Capacity capacity) {
  node_cap_[static_cast<size_t>(node)] = capacity;
}

void NodeCutGraph::add_edge(int from, int to) { edges_.emplace_back(from, to); }

void NodeCutGraph::mark_source(int node) { sources_.push_back(node); }

void NodeCutGraph::mark_sink(int node) { sinks_.push_back(node); }

NodeCutGraph::Result NodeCutGraph::solve() {
  // Layout: node v -> v_in = 2v, v_out = 2v+1; super source/sink at the end.
  const int super_source = 2 * num_nodes_;
  const int super_sink = 2 * num_nodes_ + 1;
  MaxFlow mf(2 * num_nodes_ + 2);
  std::vector<int> internal_edge(static_cast<size_t>(num_nodes_), -1);
  for (int v = 0; v < num_nodes_; ++v)
    internal_edge[static_cast<size_t>(v)] =
        mf.add_edge(2 * v, 2 * v + 1, node_cap_[static_cast<size_t>(v)]);
  for (const auto& [from, to] : edges_) mf.add_edge(2 * from + 1, 2 * to, kInfinite);
  for (const int s : sources_) mf.add_edge(super_source, 2 * s, kInfinite);
  for (const int t : sinks_) mf.add_edge(2 * t + 1, super_sink, kInfinite);

  Result result;
  result.cut_value = mf.run(super_source, super_sink);
  if (result.cut_value >= kInfinite) {
    result.cut_value = kInfinite;
    return result;
  }
  const std::vector<uint8_t> source_side = mf.min_cut_source_side();
  for (int v = 0; v < num_nodes_; ++v) {
    // The node is cut iff its internal edge crosses the cut: in-side
    // reachable, out-side not.
    if (source_side[static_cast<size_t>(2 * v)] && !source_side[static_cast<size_t>(2 * v + 1)])
      result.cut_nodes.push_back(v);
  }
  return result;
}

}  // namespace eco::flow
