/// \file maxflow.hpp
/// \brief Maximum flow / minimum cut (Dinic's algorithm), the substrate for
/// the CEGAR_min structural patch improvement (paper §3.6.3).
///
/// The ECO use case is a *node-capacitated* min-cut: signals of the patch
/// cone that have equivalent counterparts in the implementation are cuttable
/// at the cost of the cheapest counterpart, everything else is infinite.
/// Node capacities are reduced to edge capacities by node splitting
/// (see \ref NodeCutGraph).
#pragma once

#include <cstdint>
#include <vector>

namespace eco::flow {

using Capacity = int64_t;
constexpr Capacity kInfinite = INT64_MAX / 4;

/// Edge-capacitated max-flow network (Dinic).
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge; returns its index (for flow inspection).
  int add_edge(int from, int to, Capacity capacity);

  /// Computes the max flow from \p source to \p sink. Callable once.
  Capacity run(int source, int sink);

  /// After run(): flow through edge \p edge_index.
  Capacity flow_on(int edge_index) const;

  /// After run(): nodes reachable from the source in the residual graph
  /// (the source side of a minimum cut).
  std::vector<uint8_t> min_cut_source_side() const;

  int num_nodes() const noexcept { return static_cast<int>(head_.size()); }

 private:
  struct Edge {
    int to;
    Capacity cap;  ///< residual capacity
    int next;      ///< next edge index in adjacency list
  };
  bool bfs(int source, int sink);
  Capacity dfs(int node, int sink, Capacity limit);

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
  std::vector<Capacity> original_cap_;
  int source_ = -1;
};

/// Node-capacitated s-t min-cut via node splitting.
///
/// Each node v becomes (v_in, v_out) with an internal edge of capacity
/// cap(v); each original edge (u, v) becomes (u_out -> v_in) with infinite
/// capacity. The minimum node cut separating the sources from the sinks is
/// then the set of nodes whose internal edge crosses the edge min-cut.
class NodeCutGraph {
 public:
  explicit NodeCutGraph(int num_nodes);

  void set_node_capacity(int node, Capacity capacity);
  void add_edge(int from, int to);
  void mark_source(int node);
  void mark_sink(int node);

  struct Result {
    Capacity cut_value = 0;
    std::vector<int> cut_nodes;  ///< the minimum-weight node cut
  };

  /// Computes the minimum node cut. Returns cut_value == kInfinite when no
  /// finite cut exists (some source-sink path has only infinite nodes).
  Result solve();

 private:
  int num_nodes_;
  std::vector<Capacity> node_cap_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<int> sources_;
  std::vector<int> sinks_;
};

}  // namespace eco::flow
