#include "cnf/tseitin.hpp"

#include <new>
#include <vector>

#include "util/faultpoint.hpp"

namespace eco::cnf {

sat::Var Encoder::var(aig::Node n) {
  // Fault site: clause loading runs out of memory mid-cone.
  if (ECO_FAULT_POINT(fault::Site::kCnfLoad)) throw std::bad_alloc();
  if (vars_.size() < g_->num_nodes()) vars_.resize(g_->num_nodes(), sat::kVarUndef);
  if (vars_[n] != sat::kVarUndef) return vars_[n];

  // Iterative DFS so deep cones do not overflow the call stack.
  std::vector<aig::Node> stack{n};
  while (!stack.empty()) {
    const aig::Node cur = stack.back();
    if (vars_[cur] != sat::kVarUndef) {
      stack.pop_back();
      continue;
    }
    if (g_->is_const0(cur)) {
      vars_[cur] = solver_->new_var();
      solver_->add_unit(sat::mk_lit(vars_[cur], true));
      stack.pop_back();
      continue;
    }
    if (g_->is_pi(cur)) {
      vars_[cur] = solver_->new_var();
      stack.pop_back();
      continue;
    }
    const aig::Node n0 = aig::lit_node(g_->fanin0(cur));
    const aig::Node n1 = aig::lit_node(g_->fanin1(cur));
    const bool ready0 = vars_[n0] != sat::kVarUndef;
    const bool ready1 = vars_[n1] != sat::kVarUndef;
    if (!ready0) stack.push_back(n0);
    if (!ready1) stack.push_back(n1);
    if (!ready0 || !ready1) continue;

    const sat::Var v = solver_->new_var();
    vars_[cur] = v;
    const sat::Lit o = sat::mk_lit(v);
    const sat::Lit a = sat::mk_lit(vars_[n0], aig::lit_compl(g_->fanin0(cur)));
    const sat::Lit b = sat::mk_lit(vars_[n1], aig::lit_compl(g_->fanin1(cur)));
    // o <-> a & b
    solver_->add_binary(~o, a);
    solver_->add_binary(~o, b);
    solver_->add_ternary(o, ~a, ~b);
    stack.pop_back();
  }
  return vars_[n];
}

sat::Lit Encoder::lit(aig::Lit l) {
  return sat::mk_lit(var(aig::lit_node(l)), aig::lit_compl(l));
}

}  // namespace eco::cnf
