/// \file tseitin.hpp
/// \brief Tseitin encoding of AIG cones into a live SAT solver (paper §2.4).
///
/// The encoder loads clauses lazily: only the cones of the literals actually
/// requested are translated, and each AIG node is translated at most once
/// per solver. This is what lets the ECO engine keep one incremental solver
/// per miter copy and keep adding blocking clauses and divisor constraints.
#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace eco::cnf {

/// Incrementally encodes cones of one AIG into one solver.
class Encoder {
 public:
  /// The encoder keeps references to both; they must outlive it.
  Encoder(const aig::Aig& g, sat::Solver& solver) : g_(&g), solver_(&solver) {}

  /// Returns the solver literal equivalent to AIG literal \p l, loading the
  /// clauses of its cone on first use.
  sat::Lit lit(aig::Lit l);

  /// Returns the solver variable of AIG node \p n (loading its cone).
  sat::Var var(aig::Node n);

  /// True if node \p n has already been encoded.
  bool encoded(aig::Node n) const {
    return n < vars_.size() && vars_[n] != sat::kVarUndef;
  }

  const aig::Aig& aig() const noexcept { return *g_; }
  sat::Solver& solver() noexcept { return *solver_; }

 private:
  const aig::Aig* g_;
  sat::Solver* solver_;
  std::vector<sat::Var> vars_;
};

}  // namespace eco::cnf
