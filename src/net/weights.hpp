/// \file weights.hpp
/// \brief Reader/writer for contest-style weight files: one
/// ``<signal> <weight>`` pair per line (paper §4.1).
#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace eco::net {

/// Parses a weight file. Lines starting with '#' and blank lines are
/// ignored. Throws std::runtime_error on malformed lines or duplicate
/// signals.
WeightMap parse_weights(std::istream& in);
WeightMap parse_weights_string(const std::string& text);
WeightMap parse_weights_file(const std::string& path);

void write_weights(std::ostream& out, const WeightMap& weights);
void write_weights_file(const std::string& path, const WeightMap& weights);

}  // namespace eco::net
