#include "net/network.hpp"

#include <stdexcept>

namespace eco::net {

const char* gate_type_name(GateType type) noexcept {
  switch (type) {
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
  }
  return "?";
}

std::vector<std::string> Network::all_signals() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto push = [&](const std::string& s) {
    if (seen.insert(s).second) out.push_back(s);
  };
  for (const auto& s : inputs) push(s);
  for (const auto& g : gates) push(g.output);
  return out;
}

void Network::validate() const {
  std::unordered_set<std::string> driven;
  for (const auto& s : inputs)
    if (!driven.insert(s).second)
      throw InputError("network '" + name + "': duplicate input '" + s + "'");
  for (const auto& g : gates) {
    if (!driven.insert(g.output).second)
      throw InputError("network '" + name + "': signal '" + g.output +
                               "' has multiple drivers");
    const size_t n = g.inputs.size();
    switch (g.type) {
      case GateType::kBuf:
      case GateType::kNot:
        if (n != 1)
          throw InputError("network '" + name + "': gate '" + g.output +
                                   "' needs exactly 1 input");
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        if (n != 0)
          throw InputError("network '" + name + "': constant gate '" + g.output +
                                   "' takes no inputs");
        break;
      default:
        if (n < 1)
          throw InputError("network '" + name + "': gate '" + g.output +
                                   "' needs at least 1 input");
        break;
    }
  }
  std::unordered_set<std::string> outs;
  for (const auto& s : outputs) {
    if (!outs.insert(s).second)
      throw InputError("network '" + name + "': duplicate output '" + s + "'");
    if (!driven.count(s))
      throw InputError("network '" + name + "': output '" + s + "' is never driven");
  }
  for (const auto& g : gates)
    for (const auto& in : g.inputs)
      if (!driven.count(in))
        throw InputError("network '" + name + "': signal '" + in +
                                 "' is used but never driven");
}

}  // namespace eco::net
