/// \file blif.hpp
/// \brief BLIF reader/writer (combinational subset).
///
/// The ISCAS-85/89 and LGSynth-93 suites underlying the contest benchmarks
/// (paper §4.1) circulate as BLIF. Supported constructs:
///  - ``.model``, ``.inputs``, ``.outputs`` (with ``\`` line continuation),
///  - ``.names`` with PLA-style single-output cover rows (0/1/- inputs,
///    on-set or off-set output column),
///  - constant ``.names`` (no rows = constant 0; a lone ``1`` row =
///    constant 1),
///  - ``.end``, ``#`` comments.
/// Latches and subcircuits are rejected.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"
#include "net/network.hpp"

namespace eco::net {

/// Parses BLIF directly into an AIG (covers are synthesized through the
/// sop factoring machinery). PI/PO names are preserved.
/// Throws std::runtime_error on malformed or sequential content.
aig::Aig parse_blif(std::istream& in);
aig::Aig parse_blif_string(const std::string& text);
aig::Aig parse_blif_file(const std::string& path);

/// Writes an AIG as BLIF: one two-input ``.names`` per AND node plus
/// inverter/buffer covers for complemented edges and outputs.
void write_blif(std::ostream& out, const aig::Aig& g, const std::string& model = "top");
void write_blif_file(const std::string& path, const aig::Aig& g,
                     const std::string& model = "top");

}  // namespace eco::net
