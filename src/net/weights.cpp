#include "net/weights.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/faultpoint.hpp"

namespace eco::net {

WeightMap parse_weights(std::istream& in) {
  if (ECO_FAULT_POINT(fault::Site::kNetParse))
    throw ParseError("weights:0: injected fault (net.parse)");
  WeightMap wm;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string signal;
    int64_t weight = 0;
    if (!(ls >> signal >> weight))
      throw ParseError("weights:" + std::to_string(line_no) + ": malformed line");
    std::string rest;
    if (ls >> rest)
      throw ParseError("weights:" + std::to_string(line_no) + ": trailing tokens");
    if (!wm.weights.emplace(signal, weight).second)
      throw ParseError("weights:" + std::to_string(line_no) + ": duplicate signal '" +
                               signal + "'");
  }
  return wm;
}

WeightMap parse_weights_string(const std::string& text) {
  std::istringstream in(text);
  return parse_weights(in);
}

WeightMap parse_weights_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("weights: cannot open file: " + path);
  return parse_weights(in);
}

void write_weights(std::ostream& out, const WeightMap& weights) {
  // Deterministic output: sort by name.
  std::vector<std::pair<std::string, int64_t>> sorted(weights.weights.begin(),
                                                      weights.weights.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [name, weight] : sorted) out << name << ' ' << weight << '\n';
}

void write_weights_file(const std::string& path, const WeightMap& weights) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_weights(out, weights);
}

}  // namespace eco::net
