/// \file aignet.hpp
/// \brief Conversion from AIG back to a gate-level Network (used to export
/// computed patches as contest-style Verilog).
#pragma once

#include <string>

#include "aig/aig.hpp"
#include "net/network.hpp"

namespace eco::net {

/// Converts \p g to a netlist of and/not/buf gates (one AND2 per AIG node,
/// inverters materialized on demand). PI/PO names are taken from the AIG;
/// unnamed signals get generated names.
Network aig_to_network(const aig::Aig& g, std::string module_name = "patch");

}  // namespace eco::net
