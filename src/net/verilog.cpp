#include "net/verilog.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/faultpoint.hpp"

namespace eco::net {

namespace {

struct Token {
  enum class Kind { kIdent, kPunct, kConst0, kConst1, kEnd } kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("verilog:" + std::to_string(tok_.line) + ": " + msg);
  }

 private:
  void advance() {
    skip_space_and_comments();
    tok_.line = line_;
    const int c = in_.peek();
    if (c == EOF) {
      tok_ = Token{Token::Kind::kEnd, "", line_};
      return;
    }
    if (std::isalpha(c) || c == '_' || c == '\\') {
      std::string ident;
      if (c == '\\') {
        // Escaped identifier: up to whitespace.
        in_.get();
        while (in_.peek() != EOF && !std::isspace(in_.peek()))
          ident.push_back(static_cast<char>(in_.get()));
      } else {
        while (in_.peek() != EOF &&
               (std::isalnum(in_.peek()) || in_.peek() == '_' || in_.peek() == '$' ||
                in_.peek() == '.'))
          ident.push_back(static_cast<char>(in_.get()));
      }
      tok_ = Token{Token::Kind::kIdent, ident, line_};
      return;
    }
    if (std::isdigit(c)) {
      std::string lit;
      while (in_.peek() != EOF &&
             (std::isalnum(in_.peek()) || in_.peek() == '\''))
        lit.push_back(static_cast<char>(in_.get()));
      if (lit == "1'b0" || lit == "1'h0" || lit == "0")
        tok_ = Token{Token::Kind::kConst0, lit, line_};
      else if (lit == "1'b1" || lit == "1'h1" || lit == "1")
        tok_ = Token{Token::Kind::kConst1, lit, line_};
      else
        throw ParseError("verilog:" + std::to_string(line_) +
                                 ": unsupported literal '" + lit + "'");
      return;
    }
    in_.get();
    tok_ = Token{Token::Kind::kPunct, std::string(1, static_cast<char>(c)), line_};
  }

  void skip_space_and_comments() {
    for (;;) {
      int c = in_.peek();
      while (c != EOF && std::isspace(c)) {
        if (c == '\n') ++line_;
        in_.get();
        c = in_.peek();
      }
      if (c != '/') return;
      in_.get();
      const int c2 = in_.peek();
      if (c2 == '/') {
        while (in_.peek() != EOF && in_.get() != '\n') {
        }
        ++line_;
      } else if (c2 == '*') {
        in_.get();
        int prev = 0;
        for (;;) {
          const int cur = in_.get();
          if (cur == EOF)
            throw ParseError("verilog:" + std::to_string(line_) +
                                     ": unterminated block comment");
          if (cur == '\n') ++line_;
          if (prev == '*' && cur == '/') break;
          prev = cur;
        }
      } else {
        in_.unget();  // restore the '/'
        return;
      }
    }
  }

  std::istream& in_;
  Token tok_;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::istream& in) : lex_(in) {}

  Network parse() {
    expect_ident("module");
    net_.name = expect_any_ident("module name");
    if (peek_punct("(")) skip_port_list();
    expect_punct(";");
    while (lex_.peek().kind != Token::Kind::kEnd) {
      const Token t = lex_.peek();
      if (t.kind != Token::Kind::kIdent) lex_.fail("expected a statement");
      if (t.text == "endmodule") {
        lex_.take();
        net_.validate();
        return net_;
      }
      if (t.text == "input") {
        parse_decl(net_.inputs);
      } else if (t.text == "output") {
        parse_decl(net_.outputs);
      } else if (t.text == "wire") {
        std::vector<std::string> ignored;
        parse_decl(ignored);
      } else if (t.text == "assign") {
        parse_assign();
      } else {
        parse_gate();
      }
    }
    lex_.fail("missing endmodule");
  }

 private:
  void skip_port_list() {
    expect_punct("(");
    int depth = 1;
    while (depth > 0) {
      const Token t = lex_.take();
      if (t.kind == Token::Kind::kEnd) lex_.fail("unterminated port list");
      if (t.kind == Token::Kind::kPunct && t.text == "(") ++depth;
      if (t.kind == Token::Kind::kPunct && t.text == ")") --depth;
    }
  }

  void parse_decl(std::vector<std::string>& into) {
    lex_.take();  // keyword
    for (;;) {
      into.push_back(expect_any_ident("signal name"));
      const Token t = lex_.take();
      if (t.kind == Token::Kind::kPunct && t.text == ";") return;
      if (!(t.kind == Token::Kind::kPunct && t.text == ","))
        lex_.fail("expected ',' or ';' in declaration");
    }
  }

  void parse_gate() {
    const std::string prim = expect_any_ident("gate type");
    GateType type;
    if (prim == "and") type = GateType::kAnd;
    else if (prim == "or") type = GateType::kOr;
    else if (prim == "nand") type = GateType::kNand;
    else if (prim == "nor") type = GateType::kNor;
    else if (prim == "xor") type = GateType::kXor;
    else if (prim == "xnor") type = GateType::kXnor;
    else if (prim == "buf") type = GateType::kBuf;
    else if (prim == "not") type = GateType::kNot;
    else lex_.fail("unknown gate primitive '" + prim + "'");

    Gate gate;
    gate.type = type;
    if (lex_.peek().kind == Token::Kind::kIdent) gate.instance_name = lex_.take().text;
    expect_punct("(");
    gate.output = parse_terminal();
    while (peek_punct(",")) {
      lex_.take();
      gate.inputs.push_back(parse_terminal());
    }
    expect_punct(")");
    expect_punct(";");
    net_.gates.push_back(std::move(gate));
  }

  /// A gate terminal: a signal name or a constant (materialized as a
  /// constant-driver signal).
  std::string parse_terminal() {
    const Token t = lex_.take();
    if (t.kind == Token::Kind::kIdent) return t.text;
    if (t.kind == Token::Kind::kConst0) return const_signal(false);
    if (t.kind == Token::Kind::kConst1) return const_signal(true);
    lex_.fail("expected signal or constant");
  }

  std::string const_signal(bool value) {
    const std::string name = value ? "_vlog_const1" : "_vlog_const0";
    if (!const_made_[value]) {
      Gate g;
      g.type = value ? GateType::kConst1 : GateType::kConst0;
      g.output = name;
      net_.gates.push_back(g);
      const_made_[value] = true;
    }
    return name;
  }

  // assign lhs = expr;  with precedence ~ > & > ^ > |.
  void parse_assign() {
    lex_.take();  // 'assign'
    const std::string lhs = expect_any_ident("assign target");
    expect_punct("=");
    const std::string rhs = parse_or(lhs);
    if (rhs != lhs) {
      Gate g;
      g.type = GateType::kBuf;
      g.output = lhs;
      g.inputs = {rhs};
      net_.gates.push_back(std::move(g));
    }
    expect_punct(";");
  }

  std::string parse_or(const std::string& hint) {
    std::string acc = parse_xor(hint);
    while (peek_punct("|")) {
      lex_.take();
      acc = emit(GateType::kOr, {acc, parse_xor(hint)}, hint);
    }
    return acc;
  }

  std::string parse_xor(const std::string& hint) {
    std::string acc = parse_and(hint);
    while (peek_punct("^")) {
      lex_.take();
      acc = emit(GateType::kXor, {acc, parse_and(hint)}, hint);
    }
    return acc;
  }

  std::string parse_and(const std::string& hint) {
    std::string acc = parse_unary(hint);
    while (peek_punct("&")) {
      lex_.take();
      acc = emit(GateType::kAnd, {acc, parse_unary(hint)}, hint);
    }
    return acc;
  }

  std::string parse_unary(const std::string& hint) {
    if (peek_punct("~")) {
      lex_.take();
      return emit(GateType::kNot, {parse_unary(hint)}, hint);
    }
    if (peek_punct("(")) {
      lex_.take();
      const std::string inner = parse_or(hint);
      expect_punct(")");
      return inner;
    }
    return parse_terminal();
  }

  std::string emit(GateType type, std::vector<std::string> ins, const std::string& hint) {
    Gate g;
    g.type = type;
    g.output = hint + "$e" + std::to_string(temp_counter_++);
    g.inputs = std::move(ins);
    net_.gates.push_back(g);
    return net_.gates.back().output;
  }

  bool peek_punct(const std::string& p) const {
    return lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == p;
  }

  void expect_punct(const std::string& p) {
    const Token t = lex_.take();
    if (!(t.kind == Token::Kind::kPunct && t.text == p))
      lex_.fail("expected '" + p + "', found '" + t.text + "'");
  }

  void expect_ident(const std::string& kw) {
    const Token t = lex_.take();
    if (!(t.kind == Token::Kind::kIdent && t.text == kw))
      lex_.fail("expected '" + kw + "', found '" + t.text + "'");
  }

  std::string expect_any_ident(const std::string& what) {
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kIdent) lex_.fail("expected " + what);
    return t.text;
  }

  Lexer lex_;
  Network net_;
  int temp_counter_ = 0;
  bool const_made_[2] = {false, false};
};

}  // namespace

Network parse_verilog(std::istream& in) {
  if (ECO_FAULT_POINT(fault::Site::kNetParse))
    throw ParseError("verilog:0: injected fault (net.parse)");
  return Parser(in).parse();
}

Network parse_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return parse_verilog(in);
}

Network parse_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("verilog: cannot open file: " + path);
  return parse_verilog(in);
}

void write_verilog(std::ostream& out, const Network& net) {
  out << "module " << net.name << " (";
  bool first = true;
  for (const auto& s : net.inputs) {
    out << (first ? "" : ", ") << s;
    first = false;
  }
  for (const auto& s : net.outputs) {
    out << (first ? "" : ", ") << s;
    first = false;
  }
  out << ");\n";
  auto write_decl = [&](const char* kw, const std::vector<std::string>& names) {
    for (const auto& s : names) out << "  " << kw << ' ' << s << ";\n";
  };
  write_decl("input", net.inputs);
  write_decl("output", net.outputs);
  // Wires: driven signals that are neither inputs nor outputs.
  {
    std::unordered_set<std::string> io(net.inputs.begin(), net.inputs.end());
    io.insert(net.outputs.begin(), net.outputs.end());
    for (const auto& g : net.gates)
      if (!io.count(g.output)) out << "  wire " << g.output << ";\n";
  }
  for (const auto& g : net.gates) {
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      out << "  assign " << g.output << " = 1'b" << (g.type == GateType::kConst1 ? 1 : 0)
          << ";\n";
      continue;
    }
    out << "  " << gate_type_name(g.type) << ' ';
    if (!g.instance_name.empty()) out << g.instance_name << ' ';
    out << '(' << g.output;
    for (const auto& in : g.inputs) out << ", " << in;
    out << ");\n";
  }
  out << "endmodule\n";
}

void write_verilog_file(const std::string& path, const Network& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  write_verilog(out, net);
}

}  // namespace eco::net
