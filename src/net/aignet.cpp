#include "net/aignet.hpp"

#include <unordered_map>
#include <unordered_set>

namespace eco::net {

Network aig_to_network(const aig::Aig& g, std::string module_name) {
  Network out;
  out.name = std::move(module_name);

  std::vector<std::string> node_name(g.num_nodes());
  std::unordered_set<std::string> used;
  auto fresh = [&](const std::string& base) {
    std::string name = base;
    int suffix = 0;
    while (used.count(name) || name.empty()) name = base + "_" + std::to_string(suffix++);
    used.insert(name);
    return name;
  };

  for (uint32_t i = 0; i < g.num_pis(); ++i) {
    const std::string base = g.pi_name(i).empty() ? "i" + std::to_string(i) : g.pi_name(i);
    node_name[g.pi_node(i)] = fresh(base);
    out.inputs.push_back(node_name[g.pi_node(i)]);
  }

  bool const_emitted = false;
  auto const_name = [&]() {
    if (!const_emitted) {
      node_name[0] = fresh("const0");
      out.gates.push_back({GateType::kConst0, node_name[0], {}, ""});
      const_emitted = true;
    }
    return node_name[0];
  };

  // Inverters are created on demand and cached per node.
  std::unordered_map<aig::Node, std::string> inverted;
  auto lit_name = [&](aig::Lit l) -> std::string {
    const aig::Node n = aig::lit_node(l);
    const std::string& base = g.is_const0(n) ? const_name() : node_name[n];
    if (!aig::lit_compl(l)) return base;
    const auto it = inverted.find(n);
    if (it != inverted.end()) return it->second;
    const std::string inv = fresh(base + "_n");
    out.gates.push_back({GateType::kNot, inv, {base}, ""});
    inverted.emplace(n, inv);
    return inv;
  };

  for (aig::Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    node_name[n] = fresh("n" + std::to_string(n));
    // Resolve fanin names before pushing the gate (lit_name may add gates).
    const std::string in0 = lit_name(g.fanin0(n));
    const std::string in1 = lit_name(g.fanin1(n));
    out.gates.push_back({GateType::kAnd, node_name[n], {in0, in1}, ""});
  }

  for (uint32_t i = 0; i < g.num_pos(); ++i) {
    const std::string base = g.po_name(i).empty() ? "o" + std::to_string(i) : g.po_name(i);
    const std::string po = fresh(base);
    out.outputs.push_back(po);
    out.gates.push_back({GateType::kBuf, po, {lit_name(g.po_lit(i))}, ""});
  }
  return out;
}

}  // namespace eco::net
