/// \file network.hpp
/// \brief Gate-level netlist with named signals, mirroring the ICCAD'17
/// contest benchmark format (paper §4.1).
///
/// The ECO problem is posed on named netlists: an old implementation whose
/// *target* signals appear as extra primary inputs (the contest convention),
/// a new specification, and a weight per named implementation signal. This
/// module holds the netlist; \ref verilog.hpp parses/writes the files and
/// \ref elaborate.hpp turns a Network into an AIG plus a name map.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eco::net {

/// Lexical/syntactic failure in an input file (Verilog, BLIF, weights,
/// AIGER). The message is a single line of the form
/// `<format>:<line>: <what>`; front ends print it verbatim and exit
/// nonzero, the engine maps it to FailReason::kParse.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Semantically inconsistent input: files that parse but do not form a
/// valid problem (duplicate drivers, undriven outputs, mismatched
/// impl/spec interfaces, combinational cycles). Maps to
/// FailReason::kInconsistentInput.
class InputError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Primitive gate types of the structural-Verilog subset.
enum class GateType {
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kBuf,
  kNot,
  kConst0,  ///< output tied to 1'b0
  kConst1,  ///< output tied to 1'b1
};

/// Returns the Verilog primitive name ("and", "nor", ...).
const char* gate_type_name(GateType type) noexcept;

/// One gate instance: output signal plus input signals.
struct Gate {
  GateType type = GateType::kBuf;
  std::string output;
  std::vector<std::string> inputs;
  std::string instance_name;  ///< optional
};

/// A combinational gate-level netlist.
struct Network {
  std::string name = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Gate> gates;  ///< in arbitrary order; elaboration sorts

  /// All signal names: inputs, gate outputs (deduplicated, insertion order).
  std::vector<std::string> all_signals() const;

  /// Validates structural sanity; throws InputError describing the first
  /// problem found:
  ///  - duplicated input/output/driver names,
  ///  - gates with the wrong arity for their type,
  ///  - signals used but never driven and not inputs,
  ///  - outputs never driven and not inputs.
  void validate() const;

  /// Number of gates (the "#gate" columns of Table 1).
  size_t num_gates() const noexcept { return gates.size(); }
};

/// Signal weights for resource-aware ECO (contest weight files).
/// Signals missing from the map take \ref default_weight.
struct WeightMap {
  std::unordered_map<std::string, int64_t> weights;
  int64_t default_weight = 1;

  int64_t weight_of(const std::string& signal) const {
    const auto it = weights.find(signal);
    return it == weights.end() ? default_weight : it->second;
  }
};

}  // namespace eco::net
