/// \file elaborate.hpp
/// \brief Elaboration of a gate-level Network into an AIG plus a name map.
///
/// Every named signal of the netlist (inputs and gate outputs) gets an AIG
/// literal; the map is what connects the ECO engine's divisor selection and
/// weight lookup back to netlist names. Gates that do not reach any output
/// are elaborated too — they are exactly the redundant logic the paper mines
/// for cheap divisors.
#pragma once

#include <string>
#include <unordered_map>

#include "aig/aig.hpp"
#include "net/network.hpp"

namespace eco::net {

struct ElaboratedAig {
  aig::Aig aig;
  /// AIG literal of every named signal (inputs and gate outputs).
  std::unordered_map<std::string, aig::Lit> signal_lits;
};

/// Elaborates \p net. Throws std::runtime_error on combinational cycles or
/// undriven signals (validate() is called first).
ElaboratedAig elaborate(const Network& net);

}  // namespace eco::net
