/// \file verilog.hpp
/// \brief Reader/writer for the structural-Verilog subset used by the
/// ICCAD'17 contest benchmarks (paper §4.1).
///
/// Supported constructs:
///  - ``module name (ports); ... endmodule`` (one module per file),
///  - ``input``/``output``/``wire`` declarations (comma lists),
///  - primitive instantiations ``and g1 (out, in1, in2, ...);`` for
///    and/or/nand/nor/xor/xnor/buf/not (instance name optional),
///  - ``assign lhs = expr;`` with operators ``~ & ^ |``, parentheses and the
///    constants ``1'b0``/``1'b1``,
///  - ``//`` line comments and ``/* */`` block comments.
#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace eco::net {

/// Parses one module. Throws std::runtime_error with a line number on
/// malformed input. The resulting network is validated.
Network parse_verilog(std::istream& in);
Network parse_verilog_string(const std::string& text);
Network parse_verilog_file(const std::string& path);

/// Writes \p net as structural Verilog (primitives + constant assigns).
void write_verilog(std::ostream& out, const Network& net);
void write_verilog_file(const std::string& path, const Network& net);

}  // namespace eco::net
