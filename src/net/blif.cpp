#include "net/blif.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sop/cover.hpp"
#include "sop/synth.hpp"
#include "util/faultpoint.hpp"

namespace eco::net {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError("blif:" + std::to_string(line) + ": " + msg);
}

struct NamesDef {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::pair<std::string, char>> rows;  // pattern, output bit
  int line = 0;
};

/// Logical lines: '#' comments stripped, '\' continuations joined.
std::vector<std::pair<int, std::vector<std::string>>> logical_lines(std::istream& in) {
  std::vector<std::pair<int, std::vector<std::string>>> out;
  std::string raw;
  int line_no = 0;
  std::string pending;
  int pending_line = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const size_t hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    bool continued = false;
    if (const size_t bs = raw.find_last_not_of(" \t\r");
        bs != std::string::npos && raw[bs] == '\\') {
      raw.resize(bs);
      continued = true;
    }
    if (pending.empty()) pending_line = line_no;
    pending += raw + " ";
    if (continued) continue;
    std::istringstream ls(pending);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (!tokens.empty()) out.emplace_back(pending_line, tokens);
    pending.clear();
  }
  return out;
}

}  // namespace

aig::Aig parse_blif(std::istream& in) {
  if (ECO_FAULT_POINT(fault::Site::kNetParse))
    throw ParseError("blif:0: injected fault (net.parse)");
  const auto lines = logical_lines(in);

  std::vector<std::string> inputs, outputs;
  std::unordered_map<std::string, NamesDef> defs;
  NamesDef* current = nullptr;

  for (const auto& [line_no, tokens] : lines) {
    const std::string& head = tokens[0];
    if (head == ".model") {
      current = nullptr;
      continue;
    }
    if (head == ".inputs" || head == ".outputs") {
      current = nullptr;
      auto& into = head == ".inputs" ? inputs : outputs;
      into.insert(into.end(), tokens.begin() + 1, tokens.end());
      continue;
    }
    if (head == ".names") {
      if (tokens.size() < 2) fail(line_no, ".names needs at least an output");
      NamesDef def;
      def.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      def.output = tokens.back();
      def.line = line_no;
      auto [it, fresh] = defs.emplace(def.output, std::move(def));
      if (!fresh) fail(line_no, "signal '" + it->first + "' defined twice");
      current = &it->second;
      continue;
    }
    if (head == ".end") break;
    if (head == ".latch" || head == ".subckt" || head == ".gate")
      fail(line_no, "unsupported construct '" + head + "'");
    if (head[0] == '.') fail(line_no, "unknown directive '" + head + "'");
    // A cover row.
    if (current == nullptr) fail(line_no, "cover row outside .names");
    if (current->inputs.empty()) {
      if (tokens.size() != 1 || (tokens[0] != "1" && tokens[0] != "0"))
        fail(line_no, "bad constant row");
      current->rows.emplace_back("", tokens[0][0]);
    } else {
      if (tokens.size() != 2) fail(line_no, "bad cover row");
      if (tokens[0].size() != current->inputs.size())
        fail(line_no, "pattern width mismatch");
      if (tokens[1] != "0" && tokens[1] != "1") fail(line_no, "bad output column");
      current->rows.emplace_back(tokens[0], tokens[1][0]);
    }
  }

  aig::Aig g;
  std::unordered_map<std::string, aig::Lit> lit_of;
  for (const auto& name : inputs) {
    if (!lit_of.emplace(name, g.add_pi(name)).second)
      fail(0, "duplicate input '" + name + "'");
  }

  // Recursive construction over the .names dependency graph.
  enum class State : uint8_t { kFresh, kOnStack, kDone };
  std::unordered_map<std::string, State> state;
  auto build = [&](auto&& self, const std::string& name) -> aig::Lit {
    if (const auto it = lit_of.find(name); it != lit_of.end()) return it->second;
    const auto def_it = defs.find(name);
    if (def_it == defs.end()) fail(0, "signal '" + name + "' is never defined");
    const NamesDef& def = def_it->second;
    if (state[name] == State::kOnStack) fail(def.line, "combinational cycle at '" + name + "'");
    state[name] = State::kOnStack;

    std::vector<aig::Lit> var_lits;
    var_lits.reserve(def.inputs.size());
    for (const auto& input : def.inputs) var_lits.push_back(self(self, input));

    // Build the cover. All rows must agree on the output column.
    char out_bit = '1';
    sop::Cover cover;
    cover.num_vars = static_cast<uint32_t>(def.inputs.size());
    for (size_t r = 0; r < def.rows.size(); ++r) {
      const auto& [pattern, bit] = def.rows[r];
      if (r == 0) out_bit = bit;
      if (bit != out_bit) fail(def.line, "mixed on-set/off-set rows for '" + name + "'");
      std::vector<sop::Lit> lits;
      for (size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i] == '1') lits.push_back(sop::lit_pos(static_cast<uint32_t>(i)));
        else if (pattern[i] == '0') lits.push_back(sop::lit_neg(static_cast<uint32_t>(i)));
        else if (pattern[i] != '-') fail(def.line, "bad pattern character");
      }
      cover.cubes.push_back(sop::Cube(std::move(lits)));
    }
    aig::Lit lit = def.rows.empty() ? aig::kLitFalse
                                    : sop::synthesize_cover(g, cover, var_lits);
    if (out_bit == '0') lit = aig::lit_not(lit);  // off-set rows: complement
    state[name] = State::kDone;
    lit_of.emplace(name, lit);
    return lit;
  };

  for (const auto& name : outputs) g.add_po(build(build, name), name);
  return g;
}

aig::Aig parse_blif_string(const std::string& text) {
  std::istringstream in(text);
  return parse_blif(in);
}

aig::Aig parse_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("blif: cannot open file: " + path);
  return parse_blif(in);
}

void write_blif(std::ostream& out, const aig::Aig& g, const std::string& model) {
  out << ".model " << model << '\n';
  std::vector<std::string> node_name(g.num_nodes());
  out << ".inputs";
  for (uint32_t i = 0; i < g.num_pis(); ++i) {
    node_name[g.pi_node(i)] =
        g.pi_name(i).empty() ? "i" + std::to_string(i) : g.pi_name(i);
    out << ' ' << node_name[g.pi_node(i)];
  }
  out << '\n' << ".outputs";
  std::vector<std::string> po_names(g.num_pos());
  for (uint32_t o = 0; o < g.num_pos(); ++o) {
    po_names[o] = g.po_name(o).empty() ? "o" + std::to_string(o) : g.po_name(o);
    out << ' ' << po_names[o];
  }
  out << '\n';
  // AND fanins never reference the constant node (creation-time
  // simplification removes them), so only POs can be constants.
  for (aig::Node n = g.num_pis() + 1; n < g.num_nodes(); ++n) {
    node_name[n] = "n" + std::to_string(n);
    const aig::Lit f0 = g.fanin0(n);
    const aig::Lit f1 = g.fanin1(n);
    out << ".names " << node_name[aig::lit_node(f0)] << ' ' << node_name[aig::lit_node(f1)]
        << ' ' << node_name[n] << '\n'
        << (aig::lit_compl(f0) ? '0' : '1') << (aig::lit_compl(f1) ? '0' : '1') << " 1\n";
  }
  for (uint32_t o = 0; o < g.num_pos(); ++o) {
    const aig::Lit po = g.po_lit(o);
    if (aig::lit_node(po) == 0) {
      // Constant output.
      out << ".names " << po_names[o] << '\n';
      if (aig::lit_compl(po)) out << "1\n";
      continue;
    }
    out << ".names " << node_name[aig::lit_node(po)] << ' ' << po_names[o] << '\n'
        << (aig::lit_compl(po) ? "0 1\n" : "1 1\n");
  }
  out << ".end\n";
}

void write_blif_file(const std::string& path, const aig::Aig& g, const std::string& model) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("blif: cannot open file for writing: " + path);
  write_blif(out, g, model);
}

}  // namespace eco::net
