#include "net/elaborate.hpp"

#include <stdexcept>
#include <vector>

namespace eco::net {

namespace {

aig::Lit build_gate(aig::Aig& g, const Gate& gate, const std::vector<aig::Lit>& fanins) {
  using aig::Lit;
  switch (gate.type) {
    case GateType::kConst0: return aig::kLitFalse;
    case GateType::kConst1: return aig::kLitTrue;
    case GateType::kBuf: return fanins[0];
    case GateType::kNot: return aig::lit_not(fanins[0]);
    case GateType::kAnd: return g.add_and_multi(fanins);
    case GateType::kNand: return aig::lit_not(g.add_and_multi(fanins));
    case GateType::kOr: return g.add_or_multi(fanins);
    case GateType::kNor: return aig::lit_not(g.add_or_multi(fanins));
    case GateType::kXor: return g.add_xor_multi(fanins);
    case GateType::kXnor: return aig::lit_not(g.add_xor_multi(fanins));
  }
  throw std::logic_error("elaborate: unknown gate type");
}

}  // namespace

ElaboratedAig elaborate(const Network& net) {
  net.validate();
  ElaboratedAig out;

  for (const auto& name : net.inputs) out.signal_lits.emplace(name, out.aig.add_pi(name));

  // Map each driven signal to the index of its driving gate.
  std::unordered_map<std::string, size_t> driver;
  for (size_t i = 0; i < net.gates.size(); ++i) driver.emplace(net.gates[i].output, i);

  // Iterative post-order DFS with cycle detection over all gates.
  enum class State : uint8_t { kUnvisited, kOnStack, kDone };
  std::vector<State> state(net.gates.size(), State::kUnvisited);
  std::vector<size_t> stack;
  for (size_t root = 0; root < net.gates.size(); ++root) {
    if (state[root] == State::kDone) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const size_t gi = stack.back();
      const Gate& gate = net.gates[gi];
      if (state[gi] == State::kDone) {
        stack.pop_back();
        continue;
      }
      if (state[gi] == State::kUnvisited) {
        state[gi] = State::kOnStack;
        bool ready = true;
        for (const auto& in : gate.inputs) {
          if (out.signal_lits.count(in)) continue;
          const size_t dep = driver.at(in);
          if (state[dep] == State::kOnStack)
            throw InputError("elaborate: combinational cycle through '" + in + "'");
          stack.push_back(dep);
          ready = false;
        }
        if (!ready) continue;
      }
      // All fanins available: build.
      std::vector<aig::Lit> fanins;
      fanins.reserve(gate.inputs.size());
      for (const auto& in : gate.inputs) fanins.push_back(out.signal_lits.at(in));
      out.signal_lits.emplace(gate.output, build_gate(out.aig, gate, fanins));
      state[gi] = State::kDone;
      stack.pop_back();
    }
  }

  for (const auto& name : net.outputs) out.aig.add_po(out.signal_lits.at(name), name);
  return out;
}

}  // namespace eco::net
