/// \file synth.hpp
/// \brief Realization of covers / factored forms as AIG logic.
#pragma once

#include <span>

#include "aig/aig.hpp"
#include "sop/factor.hpp"

namespace eco::sop {

/// Builds AIG logic for a factored tree. \p var_lits maps SOP variable i to
/// an AIG literal (the divisor signals in the ECO flow).
aig::Lit synthesize_tree(aig::Aig& g, const FactorTree& tree,
                         std::span<const aig::Lit> var_lits);

/// Factors \p cover and builds AIG logic for it in one step.
aig::Lit synthesize_cover(aig::Aig& g, const Cover& cover,
                          std::span<const aig::Lit> var_lits);

/// Builds flat two-level AIG logic for \p cover (no factoring); used by the
/// ablation benchmark to quantify the benefit of factoring.
aig::Lit synthesize_cover_flat(aig::Aig& g, const Cover& cover,
                               std::span<const aig::Lit> var_lits);

}  // namespace eco::sop
