#include "sop/isop.hpp"

#include <cassert>
#include <stdexcept>

namespace eco::sop {

namespace {
size_t words_for(uint32_t num_vars) {
  return num_vars >= 6 ? (1ULL << (num_vars - 6)) : 1;
}
uint64_t mask_for(uint32_t num_vars) {
  return num_vars >= 6 ? ~0ULL : (1ULL << (1u << num_vars)) - 1;
}
}  // namespace

TruthTable TruthTable::zeros(uint32_t num_vars) {
  if (num_vars > 16) throw std::invalid_argument("TruthTable: max 16 variables");
  TruthTable t;
  t.num_vars = num_vars;
  t.words.assign(words_for(num_vars), 0);
  return t;
}

TruthTable TruthTable::ones(uint32_t num_vars) {
  TruthTable t = zeros(num_vars);
  for (auto& w : t.words) w = ~0ULL;
  t.words[0] &= mask_for(num_vars);
  if (num_vars >= 6) t.words.back() = ~0ULL;
  return t;
}

TruthTable TruthTable::variable(uint32_t num_vars, uint32_t var) {
  TruthTable t = zeros(num_vars);
  for (uint32_t m = 0; m < (1u << num_vars); ++m)
    if ((m >> var) & 1u) t.set(m, true);
  return t;
}

void TruthTable::set(uint32_t minterm, bool value) {
  if (value)
    words[minterm / 64] |= 1ULL << (minterm % 64);
  else
    words[minterm / 64] &= ~(1ULL << (minterm % 64));
}

bool TruthTable::is_zero() const {
  for (const uint64_t w : words)
    if (w != 0) return false;
  return true;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  assert(num_vars == o.num_vars);
  TruthTable t = *this;
  for (size_t i = 0; i < words.size(); ++i) t.words[i] &= o.words[i];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  assert(num_vars == o.num_vars);
  TruthTable t = *this;
  for (size_t i = 0; i < words.size(); ++i) t.words[i] |= o.words[i];
  return t;
}

TruthTable TruthTable::operator~() const {
  TruthTable t = *this;
  for (auto& w : t.words) w = ~w;
  t.words[0] &= mask_for(num_vars);
  if (num_vars >= 6)
    for (size_t i = 0; i < t.words.size(); ++i) t.words[i] = ~words[i];
  return t;
}

TruthTable TruthTable::cofactor(uint32_t var, bool value) const {
  TruthTable t = *this;
  for (uint32_t m = 0; m < (1u << num_vars); ++m) {
    const bool bit = ((m >> var) & 1u) != 0;
    if (bit != value) {
      const uint32_t partner = m ^ (1u << var);
      t.set(m, get(partner));
    }
  }
  return t;
}

namespace {

/// Core Minato–Morreale recursion: returns a cover of some F with
/// on ⊆ F ⊆ upper, using variables < num_active.
Cover isop_rec(const TruthTable& on, const TruthTable& upper, uint32_t num_active) {
  Cover cover;
  cover.num_vars = on.num_vars;
  if (on.is_zero()) return cover;
  if ((~upper).is_zero() || num_active == 0) {
    // Tautology (or no variables left, in which case on != 0 forces it).
    cover.cubes.push_back(Cube(std::vector<Lit>{}));
    return cover;
  }
  const uint32_t var = num_active - 1;

  const TruthTable on0 = on.cofactor(var, false);
  const TruthTable on1 = on.cofactor(var, true);
  const TruthTable up0 = upper.cofactor(var, false);
  const TruthTable up1 = upper.cofactor(var, true);

  // Minterms needing the literal !var / var respectively.
  const TruthTable need0 = on0 & ~up1;
  const TruthTable need1 = on1 & ~up0;

  Cover cover0 = isop_rec(need0, up0, var);
  Cover cover1 = isop_rec(need1, up1, var);

  const TruthTable tt0 = cover_to_truth_table(cover0, on.num_vars);
  const TruthTable tt1 = cover_to_truth_table(cover1, on.num_vars);

  // The residue is covered without a literal of `var`.
  const TruthTable rest = (on0 & ~tt0) | (on1 & ~tt1);
  Cover cover_rest = isop_rec(rest, up0 & up1, var);

  for (auto& cube : cover0.cubes) {
    std::vector<Lit> lits = cube.lits();
    lits.push_back(lit_neg(var));
    cover.cubes.push_back(Cube(std::move(lits)));
  }
  for (auto& cube : cover1.cubes) {
    std::vector<Lit> lits = cube.lits();
    lits.push_back(lit_pos(var));
    cover.cubes.push_back(Cube(std::move(lits)));
  }
  for (auto& cube : cover_rest.cubes) cover.cubes.push_back(std::move(cube));
  return cover;
}

}  // namespace

Cover isop(const TruthTable& on, const TruthTable& dc) {
  const TruthTable upper = on | dc;
  return isop_rec(on, upper, on.num_vars);
}

Cover isop(const TruthTable& on) { return isop(on, TruthTable::zeros(on.num_vars)); }

TruthTable cover_to_truth_table(const Cover& cover, uint32_t num_vars) {
  TruthTable t = TruthTable::zeros(num_vars);
  for (uint32_t m = 0; m < (1u << num_vars); ++m) {
    std::vector<bool> assignment(num_vars);
    for (uint32_t i = 0; i < num_vars; ++i) assignment[i] = ((m >> i) & 1u) != 0;
    if (cover.eval(assignment)) t.set(m, true);
  }
  return t;
}

}  // namespace eco::sop
