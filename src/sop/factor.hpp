/// \file factor.hpp
/// \brief Algebraic factoring of SOP covers into multi-level factored forms
/// (the "factored and synthesized" step of paper §3.5).
///
/// The algorithm is the classic literal/common-cube factoring recursion used
/// by SIS/ABC quick_factor:
///  1. empty cover -> constant 0; single cube -> product of literals;
///  2. extract the largest common cube and factor the quotient;
///  3. otherwise divide by the most frequent literal L:
///     F = L * (F/L) + R, recursing on both parts.
///
/// The output is a factored tree whose AIG realization (see synth.hpp) is
/// the reported patch circuit.
#pragma once

#include <memory>
#include <vector>

#include "sop/cover.hpp"

namespace eco::sop {

/// A node of a factored form.
struct FactorTree {
  enum class Kind { kConst0, kConst1, kLit, kAnd, kOr };
  Kind kind = Kind::kConst0;
  Lit lit = 0;  ///< for kLit
  std::vector<std::unique_ptr<FactorTree>> children;

  static std::unique_ptr<FactorTree> make(Kind k) {
    auto t = std::make_unique<FactorTree>();
    t->kind = k;
    return t;
  }
  static std::unique_ptr<FactorTree> make_lit(Lit l) {
    auto t = make(Kind::kLit);
    t->lit = l;
    return t;
  }

  /// Number of literal leaves (factored-form cost).
  size_t num_leaves() const;

  /// Evaluates under a variable assignment.
  bool eval(const std::vector<bool>& assignment) const;

  /// Text form, e.g. "(x0 (!x1 + x2))".
  std::string to_string() const;
};

/// Factors a cover. The tautology cube produces kConst1; an empty cover
/// kConst0. Contradictory cubes are dropped first.
std::unique_ptr<FactorTree> factor(const Cover& cover);

}  // namespace eco::sop
