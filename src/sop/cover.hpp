/// \file cover.hpp
/// \brief Cubes and sum-of-products covers over an abstract variable space.
///
/// The patch-function computation (paper §3.5) produces an irredundant prime
/// SOP over the selected divisors by SAT enumeration; this module is the
/// container for that SOP plus the classic cover operations (containment,
/// evaluation, single-cube containment reduction) needed before factoring.
///
/// A cube is a set of literals; literal encoding follows the AIG convention:
/// ``2*var`` is the positive literal, ``2*var + 1`` the negative one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eco::sop {

/// SOP literal: 2*var + negated.
using Lit = uint32_t;

constexpr Lit lit_pos(uint32_t var) noexcept { return 2 * var; }
constexpr Lit lit_neg(uint32_t var) noexcept { return 2 * var + 1; }
constexpr uint32_t lit_var(Lit l) noexcept { return l / 2; }
constexpr bool lit_negated(Lit l) noexcept { return (l & 1) != 0; }

/// A product term: sorted, duplicate-free set of literals.
/// The empty cube is the constant-1 tautology cube.
class Cube {
 public:
  Cube() = default;
  explicit Cube(std::vector<Lit> lits);

  const std::vector<Lit>& lits() const noexcept { return lits_; }
  size_t num_lits() const noexcept { return lits_.size(); }
  bool empty() const noexcept { return lits_.empty(); }

  /// True if this cube's literal set is a subset of \p other's — i.e. this
  /// cube *contains* other as a set of minterms.
  bool contains(const Cube& other) const;

  /// True if the cube has both polarities of some variable (empty cube set).
  bool contradictory() const;

  /// Evaluates the cube under an assignment (indexed by variable).
  bool eval(const std::vector<bool>& assignment) const;

  /// Removes the literal of \p var if present.
  Cube without_var(uint32_t var) const;

  bool operator==(const Cube&) const = default;

  /// Human-readable form like "x0 !x2 x5".
  std::string to_string() const;

 private:
  std::vector<Lit> lits_;
};

/// A sum of products.
struct Cover {
  uint32_t num_vars = 0;
  std::vector<Cube> cubes;

  bool eval(const std::vector<bool>& assignment) const;

  /// Total literal count (classic SOP cost measure).
  size_t num_literals() const;

  /// Removes cubes contained in other cubes (single-cube containment).
  void remove_contained_cubes();

  std::string to_string() const;
};

}  // namespace eco::sop
