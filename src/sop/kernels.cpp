#include "sop/kernels.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace eco::sop {

namespace {

/// cube a \ cube b (set difference of literals); valid when b ⊆ a.
Cube cube_minus(const Cube& a, const Cube& b) {
  std::vector<Lit> out;
  std::set_difference(a.lits().begin(), a.lits().end(), b.lits().begin(), b.lits().end(),
                      std::back_inserter(out));
  return Cube(std::move(out));
}

/// cube a ∪ cube b (product).
Cube cube_times(const Cube& a, const Cube& b) {
  std::vector<Lit> out(a.lits());
  out.insert(out.end(), b.lits().begin(), b.lits().end());
  return Cube(std::move(out));
}

bool cube_divides(const Cube& d, const Cube& c) {
  return std::includes(c.lits().begin(), c.lits().end(), d.lits().begin(), d.lits().end());
}

std::vector<Cube> sorted_cubes(std::vector<Cube> cubes) {
  std::sort(cubes.begin(), cubes.end(),
            [](const Cube& a, const Cube& b) { return a.lits() < b.lits(); });
  cubes.erase(std::unique(cubes.begin(), cubes.end()), cubes.end());
  return cubes;
}

}  // namespace

DivisionResult divide_by_cube(const Cover& f, const Cube& d) {
  DivisionResult result;
  result.quotient.num_vars = f.num_vars;
  result.remainder.num_vars = f.num_vars;
  for (const auto& cube : f.cubes) {
    if (cube_divides(d, cube))
      result.quotient.cubes.push_back(cube_minus(cube, d));
    else
      result.remainder.cubes.push_back(cube);
  }
  return result;
}

DivisionResult algebraic_divide(const Cover& f, const Cover& divisor) {
  DivisionResult result;
  result.quotient.num_vars = f.num_vars;
  result.remainder.num_vars = f.num_vars;
  if (divisor.cubes.empty()) {
    result.remainder = f;
    return result;
  }
  // Quotient = intersection over divisor cubes of the per-cube quotients.
  std::vector<Cube> quotient;
  for (size_t i = 0; i < divisor.cubes.size(); ++i) {
    std::vector<Cube> q = sorted_cubes(divide_by_cube(f, divisor.cubes[i]).quotient.cubes);
    if (i == 0) {
      quotient = std::move(q);
    } else {
      std::vector<Cube> inter;
      std::set_intersection(quotient.begin(), quotient.end(), q.begin(), q.end(),
                            std::back_inserter(inter),
                            [](const Cube& a, const Cube& b) { return a.lits() < b.lits(); });
      quotient = std::move(inter);
    }
    if (quotient.empty()) break;
  }
  result.quotient.cubes = quotient;
  // Remainder = f minus quotient * divisor.
  std::set<std::vector<Lit>> produced;
  for (const auto& q : quotient)
    for (const auto& d : divisor.cubes) produced.insert(cube_times(q, d).lits());
  for (const auto& cube : f.cubes)
    if (!produced.count(cube.lits())) result.remainder.cubes.push_back(cube);
  return result;
}

Cube common_cube_of(const Cover& f) {
  if (f.cubes.empty()) return Cube();
  std::vector<Lit> common = f.cubes[0].lits();
  for (size_t i = 1; i < f.cubes.size() && !common.empty(); ++i) {
    std::vector<Lit> next;
    std::set_intersection(common.begin(), common.end(), f.cubes[i].lits().begin(),
                          f.cubes[i].lits().end(), std::back_inserter(next));
    common = std::move(next);
  }
  return Cube(std::move(common));
}

Cover make_cube_free(const Cover& f) {
  const Cube common = common_cube_of(f);
  if (common.empty()) return f;
  Cover out;
  out.num_vars = f.num_vars;
  for (const auto& cube : f.cubes) out.cubes.push_back(cube_minus(cube, common));
  return out;
}

namespace {

void kernels_rec(const Cover& f, const Cube& co_kernel, Lit min_lit,
                 std::vector<std::pair<Cube, Cover>>& out) {
  // Count literal occurrences.
  std::map<Lit, int> freq;
  for (const auto& cube : f.cubes)
    for (const Lit l : cube.lits()) ++freq[l];

  bool maximal = true;
  for (const auto& [l, count] : freq) {
    if (count < 2) continue;
    if (l < min_lit) {
      // A smaller literal divides f: this branch is not a new kernel root,
      // but we still recurse on larger literals only (canonicity).
      maximal = false;
      continue;
    }
    Cube lit_cube({l});
    Cover q = divide_by_cube(f, lit_cube).quotient;
    const Cube extra = common_cube_of(q);
    Cover cube_free = make_cube_free(q);
    kernels_rec(cube_free, cube_times(cube_times(co_kernel, lit_cube), extra), l + 1, out);
  }
  (void)maximal;
  // f itself is a kernel when cube-free (always true here by construction).
  out.emplace_back(co_kernel, f);
}

}  // namespace

std::vector<std::pair<Cube, Cover>> kernels(const Cover& f) {
  std::vector<std::pair<Cube, Cover>> out;
  const Cube common = common_cube_of(f);
  kernels_rec(make_cube_free(f), common, 0, out);
  // Deduplicate kernels (same cover can arise through different paths).
  auto cube_less = [](const Cube& x, const Cube& y) { return x.lits() < y.lits(); };
  std::sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
    return std::lexicographical_compare(a.second.cubes.begin(), a.second.cubes.end(),
                                        b.second.cubes.begin(), b.second.cubes.end(),
                                        cube_less);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.second.cubes == b.second.cubes;
                        }),
            out.end());
  return out;
}

size_t ExtractionResult::total_literals() const {
  size_t total = 0;
  for (const auto& d : divisors) total += d.num_literals();
  for (const auto& f : functions) total += f.num_literals();
  return total;
}

ExtractionResult extract_shared(const std::vector<Cover>& functions, int max_divisors) {
  ExtractionResult result;
  result.functions = functions;
  result.num_original_vars = functions.empty() ? 0 : functions[0].num_vars;
  uint32_t next_var = result.num_original_vars;

  for (int round = 0; round < max_divisors; ++round) {
    // Candidate divisors: all two-cube kernels and all two-literal cubes.
    std::vector<Cover> candidates;
    {
      std::set<std::vector<std::vector<Lit>>> seen;
      auto consider = [&](Cover divisor) {
        std::vector<std::vector<Lit>> key;
        for (const auto& c : divisor.cubes) key.push_back(c.lits());
        std::sort(key.begin(), key.end());
        if (seen.insert(key).second) candidates.push_back(std::move(divisor));
      };
      for (const auto& f : result.functions) {
        for (const auto& [ck, kernel] : kernels(f)) {
          if (kernel.cubes.size() < 2) continue;
          // Every cube pair of a kernel is itself a (double-cube) divisor.
          for (size_t i = 0; i < kernel.cubes.size() && i < 6; ++i)
            for (size_t j = i + 1; j < kernel.cubes.size() && j < 6; ++j) {
              Cover d;
              d.num_vars = next_var;
              d.cubes = {kernel.cubes[i], kernel.cubes[j]};
              if (!d.cubes[0].empty() || !d.cubes[1].empty()) consider(std::move(d));
            }
        }
        // Two-literal single-cube divisors (common-cube sharing).
        std::map<std::pair<Lit, Lit>, int> pair_freq;
        for (const auto& cube : f.cubes) {
          const auto& lits = cube.lits();
          for (size_t i = 0; i < lits.size(); ++i)
            for (size_t j = i + 1; j < lits.size(); ++j)
              ++pair_freq[{lits[i], lits[j]}];
        }
        for (const auto& [pair, count] : pair_freq) {
          if (count < 2) continue;
          Cover d;
          d.num_vars = next_var;
          d.cubes = {Cube({pair.first, pair.second})};
          consider(std::move(d));
        }
      }
    }
    if (candidates.empty()) break;

    // Score each candidate by the total literal saving of extracting it.
    const Cover* best = nullptr;
    long best_saving = 0;
    std::vector<std::vector<DivisionResult>> divisions(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      long saving = -static_cast<long>(candidates[c].num_literals());  // definition cost
      divisions[c].reserve(result.functions.size());
      for (const auto& f : result.functions) {
        DivisionResult dr = algebraic_divide(f, candidates[c]);
        if (!dr.quotient.cubes.empty()) {
          const long before = static_cast<long>(f.num_literals());
          const long after = static_cast<long>(dr.quotient.num_literals() +
                                               dr.quotient.cubes.size() +  // the new literal
                                               dr.remainder.num_literals());
          saving += before - after;
        }
        divisions[c].push_back(std::move(dr));
      }
      if (saving > best_saving) {
        best_saving = saving;
        best = &candidates[c];
      }
    }
    if (best == nullptr) break;
    const size_t best_index = static_cast<size_t>(best - candidates.data());

    // Extract: introduce the new variable and rewrite every function.
    const Lit new_lit = lit_pos(next_var);
    for (size_t fi = 0; fi < result.functions.size(); ++fi) {
      DivisionResult& dr = divisions[best_index][fi];
      if (dr.quotient.cubes.empty()) {
        result.functions[fi].num_vars = next_var + 1;
        continue;
      }
      Cover rewritten;
      rewritten.num_vars = next_var + 1;
      for (const auto& q : dr.quotient.cubes) {
        std::vector<Lit> lits = q.lits();
        lits.push_back(new_lit);
        rewritten.cubes.push_back(Cube(std::move(lits)));
      }
      for (const auto& r : dr.remainder.cubes) rewritten.cubes.push_back(r);
      result.functions[fi] = std::move(rewritten);
    }
    Cover definition = candidates[best_index];
    definition.num_vars = next_var + 1;
    result.divisors.push_back(std::move(definition));
    ++next_var;
    // Keep the widths consistent for the next round.
    for (auto& d : result.divisors) d.num_vars = next_var;
    for (auto& f : result.functions) f.num_vars = next_var;
  }
  return result;
}

}  // namespace eco::sop
