#include "sop/cover.hpp"

#include <algorithm>

namespace eco::sop {

Cube::Cube(std::vector<Lit> lits) : lits_(std::move(lits)) {
  std::sort(lits_.begin(), lits_.end());
  lits_.erase(std::unique(lits_.begin(), lits_.end()), lits_.end());
}

bool Cube::contains(const Cube& other) const {
  return std::includes(other.lits_.begin(), other.lits_.end(), lits_.begin(), lits_.end());
}

bool Cube::contradictory() const {
  for (size_t i = 0; i + 1 < lits_.size(); ++i)
    if (lit_var(lits_[i]) == lit_var(lits_[i + 1])) return true;
  return false;
}

bool Cube::eval(const std::vector<bool>& assignment) const {
  for (const Lit l : lits_) {
    const bool v = assignment[lit_var(l)];
    if (v == lit_negated(l)) return false;
  }
  return true;
}

Cube Cube::without_var(uint32_t var) const {
  std::vector<Lit> out;
  out.reserve(lits_.size());
  for (const Lit l : lits_)
    if (lit_var(l) != var) out.push_back(l);
  Cube c;
  c.lits_ = std::move(out);
  return c;
}

std::string Cube::to_string() const {
  if (lits_.empty()) return "1";
  std::string out;
  for (const Lit l : lits_) {
    if (!out.empty()) out += ' ';
    if (lit_negated(l)) out += '!';
    out += 'x';
    out += std::to_string(lit_var(l));
  }
  return out;
}

bool Cover::eval(const std::vector<bool>& assignment) const {
  for (const auto& cube : cubes)
    if (cube.eval(assignment)) return true;
  return false;
}

size_t Cover::num_literals() const {
  size_t total = 0;
  for (const auto& cube : cubes) total += cube.num_lits();
  return total;
}

void Cover::remove_contained_cubes() {
  std::vector<Cube> kept;
  for (size_t i = 0; i < cubes.size(); ++i) {
    bool contained = false;
    for (size_t j = 0; j < cubes.size() && !contained; ++j) {
      if (i == j) continue;
      // Drop cube i if cube j contains it; break ties by index to keep one
      // of two equal cubes.
      if (cubes[j].contains(cubes[i]) && (!(cubes[i] == cubes[j]) || j < i))
        contained = true;
    }
    if (!contained) kept.push_back(cubes[i]);
  }
  cubes = std::move(kept);
}

std::string Cover::to_string() const {
  if (cubes.empty()) return "0";
  std::string out;
  for (const auto& cube : cubes) {
    if (!out.empty()) out += " + ";
    out += cube.to_string();
  }
  return out;
}

}  // namespace eco::sop
