#include "sop/factor.hpp"

#include <algorithm>
#include <unordered_map>

namespace eco::sop {

size_t FactorTree::num_leaves() const {
  if (kind == Kind::kLit) return 1;
  size_t total = 0;
  for (const auto& child : children) total += child->num_leaves();
  return total;
}

bool FactorTree::eval(const std::vector<bool>& assignment) const {
  switch (kind) {
    case Kind::kConst0: return false;
    case Kind::kConst1: return true;
    case Kind::kLit: return assignment[lit_var(lit)] != lit_negated(lit);
    case Kind::kAnd:
      for (const auto& child : children)
        if (!child->eval(assignment)) return false;
      return true;
    case Kind::kOr:
      for (const auto& child : children)
        if (child->eval(assignment)) return true;
      return false;
  }
  return false;
}

std::string FactorTree::to_string() const {
  switch (kind) {
    case Kind::kConst0: return "0";
    case Kind::kConst1: return "1";
    case Kind::kLit: {
      std::string out = lit_negated(lit) ? "!x" : "x";
      out += std::to_string(lit_var(lit));
      return out;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += kind == Kind::kAnd ? " " : " + ";
        out += children[i]->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

using TreePtr = std::unique_ptr<FactorTree>;

TreePtr product_of(const Cube& cube) {
  if (cube.empty()) return FactorTree::make(FactorTree::Kind::kConst1);
  if (cube.num_lits() == 1) return FactorTree::make_lit(cube.lits()[0]);
  auto node = FactorTree::make(FactorTree::Kind::kAnd);
  for (const Lit l : cube.lits()) node->children.push_back(FactorTree::make_lit(l));
  return node;
}

/// Largest common cube of all cubes (literal intersection).
Cube common_cube(const std::vector<Cube>& cubes) {
  std::vector<Lit> common = cubes.front().lits();
  for (size_t i = 1; i < cubes.size() && !common.empty(); ++i) {
    std::vector<Lit> next;
    std::set_intersection(common.begin(), common.end(), cubes[i].lits().begin(),
                          cubes[i].lits().end(), std::back_inserter(next));
    common = std::move(next);
  }
  Cube c(std::move(common));
  return c;
}

/// Removes the literals of \p divisor from \p cube (\pre divisor ⊆ cube).
Cube cube_quotient(const Cube& cube, const Cube& divisor) {
  std::vector<Lit> out;
  std::set_difference(cube.lits().begin(), cube.lits().end(), divisor.lits().begin(),
                      divisor.lits().end(), std::back_inserter(out));
  return Cube(std::move(out));
}

TreePtr factor_rec(std::vector<Cube> cubes) {
  if (cubes.empty()) return FactorTree::make(FactorTree::Kind::kConst0);
  // A tautology cube absorbs everything.
  for (const auto& cube : cubes)
    if (cube.empty()) return FactorTree::make(FactorTree::Kind::kConst1);
  if (cubes.size() == 1) return product_of(cubes[0]);

  // Step 1: pull out the largest common cube.
  const Cube common = common_cube(cubes);
  if (!common.empty()) {
    std::vector<Cube> quotient;
    quotient.reserve(cubes.size());
    for (const auto& cube : cubes) quotient.push_back(cube_quotient(cube, common));
    auto node = FactorTree::make(FactorTree::Kind::kAnd);
    for (const Lit l : common.lits()) node->children.push_back(FactorTree::make_lit(l));
    node->children.push_back(factor_rec(std::move(quotient)));
    return node;
  }

  // Step 2: divide by the most frequent literal.
  std::unordered_map<Lit, size_t> freq;
  for (const auto& cube : cubes)
    for (const Lit l : cube.lits()) ++freq[l];
  Lit best = 0;
  size_t best_count = 0;
  for (const auto& [l, count] : freq)
    if (count > best_count || (count == best_count && l < best)) {
      best = l;
      best_count = count;
    }

  if (best_count < 2) {
    // No sharing left: plain OR of products.
    auto node = FactorTree::make(FactorTree::Kind::kOr);
    for (const auto& cube : cubes) node->children.push_back(product_of(cube));
    return node;
  }

  std::vector<Cube> with_lit, rest;
  for (const auto& cube : cubes) {
    if (std::binary_search(cube.lits().begin(), cube.lits().end(), best))
      with_lit.push_back(cube.without_var(lit_var(best)));
    else
      rest.push_back(cube);
  }
  // Re-insert only the complementary-polarity literal if the cube had it.
  // (without_var removed both polarities; with sorted unique cubes only one
  // polarity can be present, so nothing is lost.)
  auto and_part = FactorTree::make(FactorTree::Kind::kAnd);
  and_part->children.push_back(FactorTree::make_lit(best));
  and_part->children.push_back(factor_rec(std::move(with_lit)));
  if (rest.empty()) return and_part;
  auto node = FactorTree::make(FactorTree::Kind::kOr);
  node->children.push_back(std::move(and_part));
  node->children.push_back(factor_rec(std::move(rest)));
  return node;
}

}  // namespace

std::unique_ptr<FactorTree> factor(const Cover& cover) {
  std::vector<Cube> cubes;
  cubes.reserve(cover.cubes.size());
  for (const auto& cube : cover.cubes)
    if (!cube.contradictory()) cubes.push_back(cube);
  return factor_rec(std::move(cubes));
}

}  // namespace eco::sop
