/// \file kernels.hpp
/// \brief Algebraic division, kernel computation, and shared-divisor
/// extraction across multiple covers (the "fx" step of multi-output
/// synthesis — paper §3.5 hands the factored SOPs to ABC, whose fast
/// extraction plays this role for multi-target patches).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sop/cover.hpp"

namespace eco::sop {

/// Result of weak (algebraic) division F = Q·D + R.
struct DivisionResult {
  Cover quotient;
  Cover remainder;
};

/// Weak division of \p f by the single cube \p d.
DivisionResult divide_by_cube(const Cover& f, const Cube& d);

/// Weak division of \p f by the multi-cube divisor \p divisor
/// (empty quotient when the division fails).
DivisionResult algebraic_divide(const Cover& f, const Cover& divisor);

/// The largest cube dividing every cube of \p f (its "common cube").
Cube common_cube_of(const Cover& f);

/// Makes \p f cube-free by dividing out its common cube.
Cover make_cube_free(const Cover& f);

/// All kernels of \p f with their co-kernels. A kernel is a cube-free
/// quotient of \p f by a cube; the trivial kernel (f itself, if cube-free)
/// is included. Intended for the small covers of patch functions.
std::vector<std::pair<Cube, Cover>> kernels(const Cover& f);

/// Shared-divisor extraction across several covers.
///
/// Repeatedly finds the divisor (two-cube kernel or two-literal cube) with
/// the best total literal saving over all functions, introduces a fresh
/// variable for it and divides every function. New variables are numbered
/// from \p functions' num_vars upward, in divisor order, and divisors may
/// use previously extracted variables.
struct ExtractionResult {
  uint32_t num_original_vars = 0;
  /// divisors[i] defines variable num_original_vars + i.
  std::vector<Cover> divisors;
  /// The rewritten functions over the extended variable space.
  std::vector<Cover> functions;

  /// Total literal count of functions + divisor definitions.
  size_t total_literals() const;
};

ExtractionResult extract_shared(const std::vector<Cover>& functions, int max_divisors = 64);

}  // namespace eco::sop
