#include "sop/synth.hpp"

#include <cassert>
#include <vector>

namespace eco::sop {

aig::Lit synthesize_tree(aig::Aig& g, const FactorTree& tree,
                         std::span<const aig::Lit> var_lits) {
  switch (tree.kind) {
    case FactorTree::Kind::kConst0: return aig::kLitFalse;
    case FactorTree::Kind::kConst1: return aig::kLitTrue;
    case FactorTree::Kind::kLit: {
      assert(lit_var(tree.lit) < var_lits.size());
      return aig::lit_notif(var_lits[lit_var(tree.lit)], lit_negated(tree.lit));
    }
    case FactorTree::Kind::kAnd:
    case FactorTree::Kind::kOr: {
      std::vector<aig::Lit> parts;
      parts.reserve(tree.children.size());
      for (const auto& child : tree.children)
        parts.push_back(synthesize_tree(g, *child, var_lits));
      return tree.kind == FactorTree::Kind::kAnd ? g.add_and_multi(parts)
                                                 : g.add_or_multi(parts);
    }
  }
  return aig::kLitFalse;
}

aig::Lit synthesize_cover(aig::Aig& g, const Cover& cover,
                          std::span<const aig::Lit> var_lits) {
  const auto tree = factor(cover);
  return synthesize_tree(g, *tree, var_lits);
}

aig::Lit synthesize_cover_flat(aig::Aig& g, const Cover& cover,
                               std::span<const aig::Lit> var_lits) {
  std::vector<aig::Lit> products;
  products.reserve(cover.cubes.size());
  for (const auto& cube : cover.cubes) {
    if (cube.contradictory()) continue;
    std::vector<aig::Lit> lits;
    lits.reserve(cube.num_lits());
    for (const Lit l : cube.lits()) {
      assert(lit_var(l) < var_lits.size());
      lits.push_back(aig::lit_notif(var_lits[lit_var(l)], lit_negated(l)));
    }
    products.push_back(g.add_and_multi(lits));
  }
  return g.add_or_multi(products);
}

}  // namespace eco::sop
