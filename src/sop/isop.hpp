/// \file isop.hpp
/// \brief Irredundant sum-of-products from truth tables (Minato–Morreale).
///
/// Complements the SAT-based cube enumeration of eco/patchfunc: for small
/// supports the patch function can be computed exhaustively, and the two
/// independent cover generators cross-check each other in the tests. The
/// don't-care-aware entry point computes a cover F with
/// on ⊆ F ⊆ on ∪ dc, each cube prime with respect to on ∪ dc.
#pragma once

#include <cstdint>
#include <vector>

#include "sop/cover.hpp"

namespace eco::sop {

/// A truth table over n <= 16 variables: bit m of word m/64 = value of
/// minterm m (variable i = bit i of m).
struct TruthTable {
  uint32_t num_vars = 0;
  std::vector<uint64_t> words;

  static TruthTable zeros(uint32_t num_vars);
  static TruthTable ones(uint32_t num_vars);
  /// Table of the single variable \p var.
  static TruthTable variable(uint32_t num_vars, uint32_t var);

  bool get(uint32_t minterm) const {
    return ((words[minterm / 64] >> (minterm % 64)) & 1ULL) != 0;
  }
  void set(uint32_t minterm, bool value);
  bool is_zero() const;

  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator~() const;
  bool operator==(const TruthTable&) const = default;

  /// Positive/negative cofactor with respect to \p var.
  TruthTable cofactor(uint32_t var, bool value) const;
};

/// Minato–Morreale ISOP of the incompletely specified function (on, on|dc).
/// \pre on & ~(on | dc) == 0 (i.e. dc may overlap on harmlessly).
Cover isop(const TruthTable& on, const TruthTable& dc);

/// Completely specified convenience overload.
Cover isop(const TruthTable& on);

/// Evaluates a cover into a truth table (for checking).
TruthTable cover_to_truth_table(const Cover& cover, uint32_t num_vars);

}  // namespace eco::sop
