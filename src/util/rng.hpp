/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All randomized components of the library (simulation patterns, benchmark
/// generators, property tests) draw from this generator so that every run is
/// reproducible from a seed. The implementation is xoshiro256** seeded via
/// SplitMix64 — fast, high quality, and independent of the standard
/// library's unspecified distributions.
#pragma once

#include <cstdint>

namespace eco {

/// The SplitMix64 sequence: a stateful stream of mixed 64-bit words.
///
/// This is the stream that seeds Rng; it is exposed on its own for consumers
/// that need many short, index-derived random sequences (one stream of
/// simulation pattern words per CEC round, the simulation bank's seed
/// patterns). Raw SplitMix64 states advance by the golden-ratio increment,
/// so two streams whose seeds differ by a small multiple of that increment
/// overlap after a shift; callers deriving stream seeds from consecutive
/// indices must decorrelate them through mix() first.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  /// Next word of the stream.
  uint64_t next() noexcept;

  /// The SplitMix64 finalizer: a bijective scramble of \p x. Passing an
  /// arbitrary seed through mix() before constructing a stream removes the
  /// lattice correlation between streams with nearby seeds.
  static uint64_t mix(uint64_t x) noexcept;

 private:
  uint64_t state_;
};

/// A small, fast, deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from \p seed via SplitMix64.
  void reseed(uint64_t seed) noexcept;

  /// Uniform 64-bit word.
  uint64_t next() noexcept;

  /// Uniform in [0, bound). \pre bound > 0.
  uint64_t below(uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. \pre lo <= hi.
  int64_t range(int64_t lo, int64_t hi) noexcept;

  /// Bernoulli draw: true with probability num/den. \pre den > 0.
  bool chance(uint64_t num, uint64_t den) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

 private:
  uint64_t state_[4] = {};
};

}  // namespace eco
