/// \file timer.hpp
/// \brief Wall-clock timing and deadline budgets.
#pragma once

#include <chrono>
#include <limits>

namespace eco {

/// Simple wall-clock stopwatch, started at construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock deadline. A non-positive budget means "no limit".
class Deadline {
 public:
  Deadline() noexcept = default;
  explicit Deadline(double budget_seconds) noexcept {
    if (budget_seconds > 0) {
      limited_ = true;
      end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(budget_seconds));
    }
  }

  /// True once the budget is exhausted (never for unlimited deadlines).
  bool expired() const noexcept { return limited_ && Clock::now() >= end_; }

  /// Remaining seconds; +infinity when unlimited.
  double remaining() const noexcept {
    if (!limited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point end_{};
};

}  // namespace eco
