/// \file telemetry.hpp
/// \brief Process-wide observability: counters, gauges, hierarchical phase
/// timers, and a Chrome trace_event recorder.
///
/// The engine's headline questions — where do time and conflicts go between
/// SAT_prune, CEGAR_min and the structural fallback? — need a substrate that
/// every layer (sat, qbf, cec, eco, tools, bench) can write to without
/// plumbing. This module provides it:
///
///  - **Counters / gauges**: named monotone counters and last/max gauges,
///    e.g. `qbf.iterations`, `satprune.separators`.
///  - **Phase timers**: RAII `ScopedPhase` pushes a frame onto a per-thread
///    stack; on exit the elapsed time is accumulated under the '/'-joined
///    hierarchical path (`engine/sat_path/support`) and a complete slice is
///    appended to the trace recorder. `ScopedTimer` is the flat,
///    non-hierarchical variant.
///  - **Trace recorder**: bounded in-memory buffer of slices, dumped as
///    Chrome `trace_event` JSON (the "catapult" format understood by
///    `chrome://tracing` and https://ui.perfetto.dev).
///  - **Snapshot**: all of the above plus the process-lifetime SAT solver
///    totals as a struct or as JSON (schema: docs/OBSERVABILITY.md).
///
/// Cost model: everything is compiled out when `ECO_TELEMETRY` is 0
/// (see the `ECOPATCH_TELEMETRY` CMake option); when compiled in, every
/// entry point first checks a relaxed atomic runtime flag (default **off**,
/// enabled by `set_enabled(true)` or the `ECO_TELEMETRY=1` environment
/// variable), so a disabled build-with-telemetry costs one predictable
/// branch per site. The SAT solver stats rollup (`add_solver_totals`) is the
/// one always-on path: a handful of atomic adds per solver *lifetime*, so
/// process totals stay meaningful even with recording off.
///
/// Thread safety: all registry operations are safe to call from any thread;
/// phase stacks are per-thread and slices carry a stable small thread id.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Compile-time master switch for the instrumentation macros below.
/// Define ECO_TELEMETRY=0 (CMake: -DECOPATCH_TELEMETRY=OFF) to compile all
/// instrumentation sites to nothing. The functions remain defined either
/// way so that tools can still link.
#ifndef ECO_TELEMETRY
#define ECO_TELEMETRY 1
#endif

namespace eco::telemetry {

// ---- Runtime switch -----------------------------------------------------

/// True when recording is active (relaxed atomic read).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Clears counters, gauges, timers, and the trace buffer (not the runtime
/// flag and not the process-lifetime solver totals).
void reset();

/// Fork-safety hooks. fork_prepare() acquires the registry lock so a child
/// forked while another thread bumps a counter cannot inherit it locked;
/// fork_release() must run in BOTH the parent and the child right after
/// fork(). Used by the service worker pool (service/worker.hpp).
void fork_prepare();
void fork_release();

// ---- Counters / gauges / timers ----------------------------------------

void counter_add(std::string_view name, uint64_t delta = 1);
void gauge_set(std::string_view name, int64_t value);
/// Keeps the maximum of all reported values.
void gauge_max(std::string_view name, int64_t value);
/// Accumulates \p seconds under \p name and bumps its invocation count.
void timer_add(std::string_view name, double seconds);

/// Reads (0 / zero-struct when absent or recording never happened).
uint64_t counter_value(std::string_view name);
int64_t gauge_value(std::string_view name);

struct TimerStat {
  uint64_t count = 0;
  double seconds = 0;
};
TimerStat timer_value(std::string_view name);

// ---- SAT solver rollup (always on) --------------------------------------

/// Process-lifetime totals over every sat::Solver ever destroyed.
struct SolverTotals {
  uint64_t solvers = 0;
  uint64_t solves = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_literals = 0;
  uint64_t db_reductions = 0;
  // Incremental fast path (assumption-prefix trail reuse, sat/solver.hpp).
  uint64_t prefix_reused_levels = 0;
  uint64_t propagations_saved = 0;
  uint64_t restarts_blocked = 0;
  // Learnt-clause tier admissions (core/tier2/local).
  uint64_t learnts_core = 0;
  uint64_t learnts_tier2 = 0;
  uint64_t learnts_local = 0;
  // Intra-query parallel SAT (sat/parsolve.hpp).
  uint64_t par_escalations = 0;       ///< solves that crossed the trigger
  uint64_t par_portfolio = 0;         ///< escalations resolved by portfolio
  uint64_t par_cube = 0;              ///< escalations resolved by cube split
  uint64_t par_wins = 0;              ///< escalations that returned definitive
  uint64_t par_clauses_imported = 0;  ///< learnt clauses imported via exchange
};

/// Called by sat::Solver's destructor; cheap unconditional atomic adds.
/// Besides the process-wide rollup, the totals are credited to the
/// innermost accumulator captured on the calling thread (see below).
void add_solver_totals(const SolverTotals& t) noexcept;
SolverTotals solver_totals() noexcept;

/// Per-run (or per-scope) solver-totals sink. Differencing the *process*
/// totals around a run misattributes solver work the moment two runs
/// overlap on different threads; instead, register an accumulator on every
/// thread working for the run (ScopedSolverCapture) and read `totals()` at
/// the end. Concurrency-safe: solvers may be destroyed on several captured
/// threads at once.
class SolverTotalsAccumulator {
 public:
  SolverTotalsAccumulator() noexcept = default;
  SolverTotalsAccumulator(const SolverTotalsAccumulator&) = delete;
  SolverTotalsAccumulator& operator=(const SolverTotalsAccumulator&) = delete;

  /// Adds \p t (relaxed atomics; called from Solver destructors).
  void add(const SolverTotals& t) noexcept;
  /// Sum of everything added so far.
  SolverTotals totals() const noexcept;

 private:
  std::atomic<uint64_t> solvers_{0}, solves_{0}, decisions_{0}, propagations_{0},
      conflicts_{0}, restarts_{0}, learnt_literals_{0}, db_reductions_{0},
      prefix_reused_levels_{0}, propagations_saved_{0}, restarts_blocked_{0},
      learnts_core_{0}, learnts_tier2_{0}, learnts_local_{0},
      par_escalations_{0}, par_portfolio_{0}, par_cube_{0}, par_wins_{0},
      par_clauses_imported_{0};
};

/// The accumulator of the innermost open ScopedSolverCapture on the calling
/// thread, or nullptr when none is open. The parallel SAT layer uses this to
/// re-open the coordinating run's capture on pool worker threads so clone
/// solvers destroyed there are credited to the right run.
SolverTotalsAccumulator* current_solver_capture() noexcept;

/// Attaches \p acc to the calling thread for this scope: every Solver
/// destroyed on this thread while the capture is open is credited to the
/// accumulator (in addition to the process totals). Captures nest with
/// innermost-wins semantics — a solver belongs to exactly one run, so when
/// a thread executes a task for another run (executor work stealing), that
/// task opens its own capture and the enclosing one is shadowed for the
/// duration. Open one on each worker thread that runs solver work for the
/// same logical run to get a complete per-run tally.
class ScopedSolverCapture {
 public:
  explicit ScopedSolverCapture(SolverTotalsAccumulator& acc) noexcept;
  ~ScopedSolverCapture();
  ScopedSolverCapture(const ScopedSolverCapture&) = delete;
  ScopedSolverCapture& operator=(const ScopedSolverCapture&) = delete;

 private:
  SolverTotalsAccumulator* acc_;
};

// ---- RAII scopes --------------------------------------------------------

/// Flat named timer; accumulates into `timer_value(name)` on destruction.
/// \p name must outlive the scope (pass a string literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
  bool active_;
};

/// Hierarchical phase frame. Nested phases accumulate under the '/'-joined
/// path of every open frame on this thread, and each frame emits one
/// complete trace slice. \p name must outlive the scope (string literal).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) noexcept;
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
  size_t prev_path_len_;
  bool active_;
};

// ---- Snapshot & export --------------------------------------------------

struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< name-sorted
  std::vector<std::pair<std::string, int64_t>> gauges;     ///< name-sorted
  std::vector<std::pair<std::string, TimerStat>> timers;   ///< path-sorted
  SolverTotals solver;
  size_t trace_events = 0;
  size_t dropped_trace_events = 0;
};
Snapshot snapshot();

/// Flat stats snapshot as JSON (schema `ecopatch-telemetry-v1`,
/// docs/OBSERVABILITY.md).
std::string snapshot_json();

/// The recorded slices as Chrome trace_event JSON ("catapult" format).
std::string trace_json();

/// Convenience file writers; return false on I/O failure.
bool write_snapshot_json(const std::string& path);
bool write_trace_json(const std::string& path);

/// Caps the in-memory trace buffer; further slices are counted as dropped.
/// Default: 1M events. **0 disables trace recording entirely**: slices are
/// discarded silently and `dropped_trace_events` does NOT grow (disabled is
/// not the same as overflowing). Shrinking below the current buffer size
/// trims the oldest events and counts the trimmed ones as dropped.
void set_trace_capacity(size_t max_events);

/// The calling thread's current '/'-joined phase path ("" when no frame is
/// open or recording is off). Consumed by the query ledger to attribute
/// records to phases.
std::string current_phase_path();

/// Logs the phase-time and counter summary through log_info (one line per
/// timer/counter), for `--verbose` front ends.
void log_summary();

}  // namespace eco::telemetry

// ---- Instrumentation macros ---------------------------------------------
//
// Use these, not the functions, at instrumentation sites: they vanish
// entirely when ECO_TELEMETRY is 0.

#define ECO_TELEMETRY_CAT2_(a, b) a##b
#define ECO_TELEMETRY_CAT_(a, b) ECO_TELEMETRY_CAT2_(a, b)

#if ECO_TELEMETRY
#define ECO_TELEMETRY_PHASE(name) \
  ::eco::telemetry::ScopedPhase ECO_TELEMETRY_CAT_(eco_tel_phase_, __LINE__){name}
#define ECO_TELEMETRY_TIMER(name) \
  ::eco::telemetry::ScopedTimer ECO_TELEMETRY_CAT_(eco_tel_timer_, __LINE__){name}
#define ECO_TELEMETRY_COUNT(...) ::eco::telemetry::counter_add(__VA_ARGS__)
#define ECO_TELEMETRY_GAUGE_SET(name, v) ::eco::telemetry::gauge_set(name, v)
#define ECO_TELEMETRY_GAUGE_MAX(name, v) ::eco::telemetry::gauge_max(name, v)
#else
#define ECO_TELEMETRY_PHASE(name) ((void)0)
#define ECO_TELEMETRY_TIMER(name) ((void)0)
#define ECO_TELEMETRY_COUNT(...) ((void)0)
#define ECO_TELEMETRY_GAUGE_SET(name, v) ((void)0)
#define ECO_TELEMETRY_GAUGE_MAX(name, v) ((void)0)
#endif
