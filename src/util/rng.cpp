#include "util/rng.hpp"

namespace eco {

namespace {
uint64_t rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64::mix(uint64_t x) noexcept {
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SplitMix64::next() noexcept {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix(state_);
}

void Rng::reseed(uint64_t seed) noexcept {
  SplitMix64 stream(seed);
  for (auto& word : state_) word = stream.next();
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::next() noexcept {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) noexcept {
  // Debiased multiply-shift (Lemire); bound > 0 per contract.
  for (;;) {
    const uint64_t x = next();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const uint64_t low = static_cast<uint64_t>(m);
    if (low >= bound || low >= static_cast<uint64_t>(-bound) % bound)
      return static_cast<uint64_t>(m >> 64);
  }
}

int64_t Rng::range(int64_t lo, int64_t hi) noexcept {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? next() : below(span));
}

bool Rng::chance(uint64_t num, uint64_t den) noexcept { return below(den) < num; }

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace eco
