/// \file ledger.hpp
/// \brief Per-query structured event ledger and crash flight recorder.
///
/// The telemetry layer (util/telemetry.hpp) answers "how much, in
/// aggregate"; the ledger answers "which query, and why": every SAT solve,
/// QBF expansion iteration, CEC check, simulation-bank hit, and strategy-
/// ladder attempt appends one fixed-size Record — purpose tag, instance
/// size, result, conflict/decision/propagation work, wall and thread-CPU
/// time, cancel reason, and the telemetry phase path — into a lock-light
/// per-thread ring buffer.
///
///  - **Purpose tagging**: call sites do not thread a tag through every
///    layer; instead they open a `ScopedPurpose` on the current thread
///    (innermost-wins, the `ScopedSolverCapture` pattern) and every record
///    appended underneath inherits it. Library-level scopes (cec, qbf) use
///    `ScopedPurpose::weak` so an engine-level tag (verify) is not
///    shadowed when it is already set.
///  - **Flight recorder**: the rings are bounded; `tail(n)` merges them and
///    returns the last n records in append order, which `run_eco` dumps
///    into the outcome JSON whenever an attempt ends in `kError` or an
///    armed fault fired — chaos failures become diagnosable post mortem.
///  - **JSONL export**: with a sink configured (`--ledger PATH` /
///    `ECO_LEDGER=PATH`), rings flush to the file as newline-delimited
///    JSON, one record per line, after one `ecopatch-ledger-v1` header
///    line. Rings flush before wrapping, so the export is lossless while
///    memory stays bounded.
///
/// Cost model: like telemetry, every entry point first checks a relaxed
/// atomic runtime flag (default **off**, enabled by `set_enabled(true)`,
/// a sink, or the `ECO_LEDGER` environment variable); the disabled path is
/// one predictable branch per query — far off the per-conflict hot path.
///
/// Thread safety: appends touch only the calling thread's buffer (one
/// uncontended mutex protecting it against concurrent merges); `collect`,
/// `tail`, `flush`, and `reset` are safe from any thread.
///
/// Schema and a worked example: docs/OBSERVABILITY.md, "Query ledger".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eco {
class JsonWriter;
}

namespace eco::ledger {

/// What a record accounts for. Stable lower_snake_case names via
/// purpose_name(); "unknown" marks an untagged call site (a gap worth
/// closing — `ecoprof report` totals the untagged share).
enum class Purpose : uint8_t {
  kUnknown = 0,
  kSupport,       ///< support feasibility / minimization queries (§3.4)
  kSatPrune,      ///< SAT_prune hitting-set feasibility queries (§3.5)
  kIrredundancy,  ///< cube irredundancy queries (§3.4.2)
  kPatchFunc,     ///< on/off-set cube enumeration and expansion (§3.1)
  kResub,         ///< functional resubstitution dependency checks (§3.6.3)
  kCegarMin,      ///< CEGAR_min counterexample refinements (§3.6)
  kCec,           ///< combinational equivalence checks outside verify
  kQbf,           ///< 2QBF CEGAR feasibility iterations (§3.2)
  kVerify,        ///< the final patched-vs-spec verification
  kLadder,        ///< one strategy-ladder attempt (docs/ROBUSTNESS.md)
  kSweep,         ///< SAT-sweeping class proofs (cec/sweep.hpp)
  kCount_,
};
const char* purpose_name(Purpose p) noexcept;

/// What kind of event the record is.
enum class Kind : uint8_t {
  kSolve = 0,      ///< one sat::Solver::solve() call
  kSimHit,         ///< a query answered by the simulation bank, no search
  kQbfIteration,   ///< one CEGAR iteration (two solves) of the 2QBF check
  kCecCheck,       ///< one cec::check_const0 top-level check
  kLadderAttempt,     ///< one engine attempt (primary or escalation rung)
  kPortfolioAttempt,  ///< one diversified clone raced by sat/parsolve
  kCubeSolve,         ///< one cube sub-instance solved by sat/parsolve
  kSweepChunk,        ///< one SAT-sweeping prove chunk (cec/sweep.cpp):
                      ///< whole-chunk solver totals; vars = classes proved.
                      ///< The cost signal behind adaptive chunk sizing.
  kCount_,
};
const char* kind_name(Kind k) noexcept;

/// How the recorded query ended.
enum class QueryResult : int8_t {
  kUnsat = -1,  ///< UNSAT / proven / equivalent / attempt failed cleanly
  kUndef = 0,   ///< budget or cancellation cut the query short
  kSat = 1,     ///< SAT / refuted / counterexample / attempt succeeded
};

/// Why the query stopped early (mirrors CancelReason plus the solver's own
/// conflict/propagation budgets). kNone for completed queries.
enum class CancelCause : uint8_t {
  kNone = 0,
  kStopped,   ///< external stop (signal, executor shutdown)
  kMemory,    ///< memory account exceeded
  kDeadline,  ///< wall-clock deadline expired
  kBudget,    ///< conflict/propagation/iteration budget exhausted
};
const char* cancel_cause_name(CancelCause c) noexcept;

/// One ledger entry. Fixed size, no heap: appends never allocate.
struct Record {
  uint64_t seq = 0;         ///< global append order (filled by append())
  uint64_t start_ns = 0;    ///< start time, ns since the ledger epoch
  double wall_seconds = 0;  ///< wall-clock duration
  double cpu_seconds = 0;   ///< thread-CPU duration (CLOCK_THREAD_CPUTIME_ID)
  uint64_t conflicts = 0;   ///< solver conflicts attributed to this query
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint32_t vars = 0;     ///< instance size: solver variables
  uint32_t clauses = 0;  ///< instance size: problem (non-learnt) clauses
  uint32_t thread = 0;   ///< stable small thread id (filled by append())
  Purpose purpose = Purpose::kUnknown;  ///< filled from the scope by append()
  Kind kind = Kind::kSolve;
  QueryResult result = QueryResult::kUndef;
  uint8_t sim_hit = 0;  ///< answered by the simulation bank, no SAT search
  CancelCause cancel = CancelCause::kNone;
  // Parallel SAT (kind kPortfolioAttempt / kCubeSolve; zero otherwise).
  uint32_t par_imported = 0;  ///< learnt clauses imported from siblings
  uint16_t par_rank = 0;      ///< clone rank or cube id within the escalation
  uint8_t par_winner = 0;     ///< 1 when this worker's result was adopted
  /// Telemetry phase path at append time ('/'-joined, truncated). Empty
  /// when telemetry recording is off.
  char phase[33] = {};
};
static_assert(sizeof(Record) <= 128, "Record must stay one cache-line pair");

// ---- Runtime switch -----------------------------------------------------

/// True when the ledger records (relaxed atomic read). Seeded from the
/// `ECO_LEDGER` environment variable: empty/"0" off, anything else is
/// treated as a sink path (and turns recording on).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// ---- Appending ----------------------------------------------------------

/// Appends \p r to the calling thread's ring. Fills seq, thread, purpose
/// (from the innermost ScopedPurpose when the record carries kUnknown), and
/// the phase path. No-op when disabled.
void append(Record r) noexcept;

/// Convenience: a Kind::kSimHit record for a bank-answered query.
void append_sim_hit(Purpose purpose, QueryResult result) noexcept;

/// The innermost purpose scope open on this thread (kUnknown when none).
Purpose current_purpose() noexcept;

/// Tags every record appended on this thread for this scope. Scopes nest
/// innermost-wins; a *weak* scope only applies when no purpose is set, so
/// a library entry point (cec) does not shadow an engine-level tag
/// (verify) that is already open.
class ScopedPurpose {
 public:
  explicit ScopedPurpose(Purpose p) noexcept;
  ~ScopedPurpose();
  ScopedPurpose(const ScopedPurpose&) = delete;
  ScopedPurpose& operator=(const ScopedPurpose&) = delete;

  /// A scope that applies only when no purpose is set (guaranteed-elision
  /// prvalue: no copy or move happens).
  static ScopedPurpose weak(Purpose p) noexcept { return ScopedPurpose(p, true); }

 private:
  ScopedPurpose(Purpose p, bool weak) noexcept;
  bool pushed_;
};

/// Thread-CPU clock (CLOCK_THREAD_CPUTIME_ID), seconds. Shared with the
/// bench harness; 0 when the clock is unavailable.
double thread_cpu_seconds() noexcept;

// ---- Rings, sink, snapshots ---------------------------------------------

/// Per-thread ring capacity (records). Applies to buffers created after the
/// call; default 4096. Capacity 0 is clamped to 1.
void set_ring_capacity(size_t records);

/// Opens \p path (truncating) as the JSONL sink and enables recording.
/// Returns false on open failure (recording is left untouched). The header
/// line (`schema ecopatch-ledger-v1`, git stamp) is written immediately, so
/// an unwritable path fails here, not at process exit.
bool set_sink(const std::string& path);

/// Flushes every thread's unflushed records to the sink (no-op without
/// one). Returns false if any write failed.
bool flush();

/// Flushes and closes the sink. Recording stays enabled.
bool close_sink();

/// Drops the sink without flushing or closing the file — for forked worker
/// children (service/worker.hpp) that inherited the parent's sink: the
/// FILE, its user-space buffer, and the underlying file offset belong to
/// the supervisor process. Recording stays enabled; the child's records are
/// ring-buffered and counted dropped when they wrap, never interleaved into
/// the parent's JSONL stream.
void abandon_sink() noexcept;

/// Fork-safety hooks. fork_prepare() acquires the global ledger lock and
/// every per-thread ring lock so a child forked while another thread is
/// mid-append cannot inherit a locked mutex; fork_release() must run in
/// BOTH the parent and the child immediately after fork().
void fork_prepare();
void fork_release();

/// All records currently held in the rings, in append (seq) order.
/// Records already flushed to a sink remain collectable until overwritten.
std::vector<Record> collect();

/// The last \p n records in append order (the flight-recorder dump).
std::vector<Record> tail(size_t n);

/// Records overwritten before reaching a sink (ring wrap with no sink, or
/// with one that failed).
uint64_t dropped() noexcept;

/// Clears every ring and the dropped counter (not the enabled flag, not
/// the sink).
void reset();

/// Serializes \p r as one JSON object (the JSONL line body) into \p w.
void write_record(JsonWriter& w, const Record& r);
/// One JSONL line (no trailing newline).
std::string record_json(const Record& r);

}  // namespace eco::ledger
