/// \file cancel.hpp
/// \brief Cooperative cancellation: stop flag + wall-clock deadline +
/// optional memory budget in one token threaded through every engine phase.
///
/// A `CancelToken` is the engine's single answer to "should this work
/// stop?". It bundles the three reasons work ever stops early:
///
///  - **external stop** — a CLI signal handler or an executor shutting down
///    calls `request_stop()`; the store is async-signal-safe,
///  - **deadline** — the wall-clock budget of the run (or of one ladder
///    rung) expired,
///  - **memory** — the cooperative allocation account exceeded its budget
///    (phases `charge_memory()` their large allocations).
///
/// Tokens are cheap shared handles (one `shared_ptr`); copies observe the
/// same state. `child(slice)` derives a token with its *own, tighter*
/// deadline that still observes the parent's stop flag and memory account —
/// this is how the driver slices the remaining budget across strategy-ladder
/// rungs and grace windows without losing external abort.
///
/// A default-constructed token is the "unlimited" token: never cancelled,
/// `request_stop()` is a no-op. It costs nothing and is the default for
/// every options struct. See docs/ROBUSTNESS.md for the cancellation
/// contract (who checks, how often, what they return).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/timer.hpp"

namespace eco {

/// Why a token reports cancelled() — checked in this priority order.
enum class CancelReason : uint8_t {
  kNone,      ///< not cancelled
  kStopped,   ///< request_stop() was called (signal, shutdown, user abort)
  kMemory,    ///< the memory account exceeded its budget
  kDeadline,  ///< the wall-clock deadline expired
};

const char* cancel_reason_name(CancelReason r) noexcept;

class CancelToken {
 public:
  /// The unlimited token: never cancelled, unstoppable, free to copy.
  CancelToken() noexcept = default;

  /// A real token. \p budget_seconds <= 0 means no deadline;
  /// \p memory_budget_bytes == 0 means no memory budget. Either way the
  /// token is stoppable via request_stop().
  explicit CancelToken(double budget_seconds, uint64_t memory_budget_bytes = 0);

  /// A stoppable token with no deadline and no memory budget.
  static CancelToken stoppable() { return CancelToken(0.0); }

  /// False for the default-constructed unlimited token.
  bool valid() const noexcept { return state_ != nullptr; }

  /// True once any stop condition holds (cheap: at most two relaxed atomic
  /// loads plus one clock read; safe to call at solver-conflict cadence).
  bool cancelled() const noexcept { return reason() != CancelReason::kNone; }

  /// The first stop condition that holds, kNone when none does.
  CancelReason reason() const noexcept;

  /// Requests cooperative stop. Async-signal-safe (one atomic store); no-op
  /// on the unlimited token. Propagates to every child of this token.
  void request_stop() noexcept;

  /// True if request_stop() was called on this token or an ancestor.
  bool stop_requested() const noexcept;

  /// Seconds until the deadline; +infinity when unlimited. Never negative.
  double remaining() const noexcept;

  /// This token's deadline (unlimited Deadline{} when none) — for code that
  /// still consumes a plain Deadline.
  Deadline deadline() const noexcept;

  /// Cooperative memory accounting. Charges are process-wide per token tree
  /// (children share the root's account). No-ops on the unlimited token.
  /// Const: the account lives in shared state, like the stop flag.
  void charge_memory(uint64_t bytes) const noexcept;
  void release_memory(uint64_t bytes) const noexcept;
  uint64_t memory_used() const noexcept;
  uint64_t memory_budget() const noexcept;

  /// Derives a token that shares this token's stop flag and memory account
  /// but carries its own deadline of min(\p slice_seconds, remaining()).
  /// On the unlimited token this simply creates a fresh token with the
  /// given budget (<= 0 for none).
  CancelToken child(double slice_seconds) const;

  /// Derives a *grace-window* token: its deadline is exactly \p seconds —
  /// NOT capped by this token's remaining time and not chained to ancestor
  /// deadlines — while the stop flag and memory account are still shared.
  /// Used by phases that deliberately run past the main deadline (the
  /// structural fallback, final verification) yet must stay abortable.
  CancelToken grace(double seconds) const;

 private:
  struct State {
    std::atomic<bool> stop{false};
    Deadline deadline{};
    /// Grace window: ancestor deadlines are ignored past this state (the
    /// stop flag and memory account still chain through).
    bool detach_deadline = false;
    // Memory account: root-owned; children alias the root's fields.
    std::atomic<uint64_t> memory_used{0};
    uint64_t memory_budget = 0;
    std::shared_ptr<State> parent;  ///< stop/memory chain (nullptr at root)
  };

  explicit CancelToken(std::shared_ptr<State> state) noexcept
      : state_(std::move(state)) {}

  State* root() const noexcept;

  std::shared_ptr<State> state_;
};

}  // namespace eco
