#include "util/jsonr.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eco {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = "offset " + std::to_string(pos) + ": " + msg;
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  bool expect(char c) {
    if (eof() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 200) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text.substr(pos, 4) != "true") return fail("bad literal");
        pos += 4;
        out = JsonValue(true);
        return true;
      case 'f':
        if (text.substr(pos, 5) != "false") return fail("bad literal");
        pos += 5;
        out = JsonValue(false);
        return true;
      case 'n':
        if (text.substr(pos, 4) != "null") return fail("bad literal");
        pos += 4;
        out = JsonValue();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos;  // '{'
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      out = JsonValue(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      obj.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        out = JsonValue(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos;  // '['
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      out = JsonValue(std::move(arr));
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        out = JsonValue(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<uint32_t>(c - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    pos += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos;  // '"'
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (eof()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            uint32_t cp = 0;
            if (!parse_hex4(cp)) return false;
            // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
                text[pos] == '\\' && text[pos + 1] == 'u') {
              pos += 2;
              uint32_t lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF)
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char in string");
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos;
    if (!eof() && peek() == '.') {
      ++pos;
      while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos;
    }
    if (pos == start) return fail("expected value");
    // strtod needs a NUL-terminated copy; numbers are short.
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return fail("bad number");
    }
    out = JsonValue(d);
    return true;
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(v, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.eof()) {
    p.fail("trailing content after document");
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  return v;
}

std::optional<JsonValue> json_parse_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error != nullptr) *error = "read error on " + path;
    return std::nullopt;
  }
  return json_parse(content, error);
}

}  // namespace eco
