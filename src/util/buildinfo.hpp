/// \file buildinfo.hpp
/// \brief Build provenance: the git commit this binary was built from.
///
/// Stamped at build time by cmake/gitversion.cmake (a custom target that
/// runs on every build and rewrites the generated header only when the
/// state changed). Every JSON emitter (outcome, bench table, ledger) adds
/// `git_commit` / `git_dirty` so `ecoprof diff` can label a perf trajectory
/// with the commits it compares.
#pragma once

namespace eco::build {

/// The full commit hash of HEAD at build time, or "unknown" when the build
/// happened outside a git checkout.
const char* git_commit() noexcept;

/// True when tracked files were modified at build time (the commit hash
/// alone does not identify the built code).
bool git_dirty() noexcept;

}  // namespace eco::build
