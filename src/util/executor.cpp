#include "util/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace eco::util {

int hardware_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_jobs() noexcept {
  const char* env = std::getenv("ECO_JOBS");
  if (env == nullptr || env[0] == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 1;  // malformed: stay serial
  if (v == 0) return hardware_jobs();
  return static_cast<int>(v);
}

Executor::Executor(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  // The caller of parallel_for participates, so jobs_ - 1 workers saturate
  // jobs_ cores; plain submit()-only usage still gets jobs_ - 1 runners.
  workers_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int i = 0; i + 1 < jobs_; ++i) workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  // Cooperative abort first: in-flight tasks observing shutdown_token()
  // wind down instead of pinning the joins below.
  shutdown_token_.request_stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

/// Marks the calling thread busy for the duration of one task execution or
/// one parallel_for participation. Exception-safe: the slot is returned even
/// when the task throws.
struct Executor::BusyScope {
  explicit BusyScope(Executor& ex) noexcept : ex_(ex) {
    ex_.busy_.fetch_add(1, std::memory_order_relaxed);
  }
  ~BusyScope() { ex_.busy_.fetch_sub(1, std::memory_order_relaxed); }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;
  Executor& ex_;
};

int Executor::try_reserve(int n) noexcept {
  if (n <= 0) return 0;
  int cur = busy_.load(std::memory_order_relaxed);
  for (;;) {
    const int avail = jobs_ - cur;
    if (avail <= 0) return 0;
    const int grant = std::min(n, avail);
    if (busy_.compare_exchange_weak(cur, cur + grant, std::memory_order_relaxed))
      return grant;
  }
}

void Executor::release(int n) noexcept {
  if (n > 0) busy_.fetch_sub(n, std::memory_order_relaxed);
}

void Executor::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    BusyScope busy(*this);
    task();  // serial mode: run inline, exceptions flow into the future
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool Executor::run_one_queued() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_head_ >= queue_.size()) return false;
    task = std::move(queue_[queue_head_++]);
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
    }
  }
  BusyScope busy(*this);
  task();
  return true;
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) return;  // stop_ and drained
      task = std::move(queue_[queue_head_++]);
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    BusyScope busy(*this);
    task();
  }
}

/// Shared state of one parallel_for call. Heap-allocated and reference-
/// counted because helper tasks may start (and immediately finish) after
/// the call already returned.
struct Executor::ForState {
  std::atomic<size_t> next{0};  ///< next unclaimed index
  std::atomic<size_t> done{0};  ///< completed iterations
  size_t n = 0;
  size_t participants = 0;  ///< helper tasks + the calling thread
  const std::function<void(size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  size_t exited = 0;          ///< participants that left drain(); guarded by mu
  std::exception_ptr error;   ///< first exception wins; guarded by mu

  /// Claims and runs iterations until the range is exhausted or an error
  /// cancels the remainder.
  void drain() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (error) break;
      }
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        break;
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
    std::lock_guard<std::mutex> lock(mu);
    ++exited;
    cv.notify_all();
  }

  /// True when the caller may safely return: either every iteration ran, or
  /// (after an error) no participant can still be touching fn — unstarted
  /// helper tasks see the error flag and exit without claiming an index.
  bool settled() {
    return done.load(std::memory_order_acquire) == n ||
           (error != nullptr && exited == participants);
  }
};

void Executor::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    BusyScope busy(*this);
    for (size_t i = 0; i < n; ++i) fn(i);  // exact serial execution
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  // One helper task per worker (bounded, not per index): each claims indices
  // from the shared counter until the range is exhausted.
  const size_t helpers = std::min(workers_.size(), n - 1);
  state->participants = helpers + 1;
  for (size_t h = 0; h < helpers; ++h) enqueue([state] { state->drain(); });

  // The caller participates — this is what makes nested parallel_for calls
  // deadlock-free: even with every worker busy, the caller finishes the
  // range itself.
  {
    BusyScope busy(*this);
    state->drain();
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->settled(); });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace eco::util
