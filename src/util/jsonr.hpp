/// \file jsonr.hpp
/// \brief Minimal JSON reader: recursive-descent parser into a small DOM.
///
/// The write side (util/jsonw.hpp) is stream-oriented and never needs a
/// tree; the read side exists for the tools that consume our own emitters —
/// `ecoprof` parsing `ecopatch-bench-table1-v1` files and
/// `ecopatch-ledger-v1` JSONL lines. It is a strict subset of JSON
/// sufficient for that: objects, arrays, strings (with \uXXXX escapes
/// decoded to UTF-8), doubles, bools, null. Numbers are held as double —
/// exact for the counters we emit up to 2^53, which is far beyond any
/// realistic conflict count.
///
/// Errors carry a byte offset; parse() returns std::nullopt and fills an
/// optional error string instead of throwing, so tools can print one clean
/// diagnostic line.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eco {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Ordered map: iteration order is key order, which keeps output stable.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), num_(d) {}
  explicit JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::kObject), obj_(std::make_shared<JsonObject>(std::move(o))) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed reads with a fallback (never throw, never assert).
  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const noexcept {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }
  const JsonArray& as_array() const noexcept {
    static const JsonArray empty;
    return is_array() ? *arr_ : empty;
  }
  const JsonObject& as_object() const noexcept {
    static const JsonObject empty;
    return is_object() ? *obj_ : empty;
  }

  /// Object member lookup; null JsonValue when absent or not an object.
  const JsonValue& operator[](std::string_view key) const noexcept {
    static const JsonValue null;
    if (!is_object()) return null;
    const auto it = obj_->find(key);
    return it == obj_->end() ? null : it->second;
  }
  bool contains(std::string_view key) const noexcept {
    return is_object() && obj_->count(key) != 0;
  }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  // shared_ptr keeps JsonValue copyable and cheap to pass around a DOM;
  // parsed documents are read-only so sharing is safe.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parses one JSON document (the whole of \p text up to trailing
/// whitespace). On failure returns std::nullopt and, when \p error is
/// non-null, fills it with "offset N: message".
std::optional<JsonValue> json_parse(std::string_view text, std::string* error = nullptr);

/// Reads and parses a whole file. Distinguishes I/O from syntax errors via
/// the \p error text ("cannot open ..." vs "offset N: ...").
std::optional<JsonValue> json_parse_file(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace eco
