#include "util/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/jsonw.hpp"
#include "util/log.hpp"

namespace eco::telemetry {

namespace {

// ---- clock --------------------------------------------------------------

/// Nanoseconds since the first telemetry use in this process. A stable
/// process-local epoch keeps trace timestamps small and monotone.
uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

/// Small stable per-thread id for trace slices.
uint32_t thread_id() noexcept {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---- registry -----------------------------------------------------------

struct TraceEvent {
  std::string name;   ///< leaf phase/timer name
  uint64_t start_ns;  ///< since process epoch
  uint64_t dur_ns;
  uint32_t tid;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, TimerStat, std::less<>> timers;
  std::vector<TraceEvent> trace;
  size_t trace_capacity = 1u << 20;
  size_t dropped_trace = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

bool initial_enabled() noexcept {
  const char* env = std::getenv("ECO_TELEMETRY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::atomic<bool> g_enabled{initial_enabled()};

// Always-on solver totals (atomic; see header).
struct AtomicSolverTotals {
  std::atomic<uint64_t> solvers{0}, solves{0}, decisions{0}, propagations{0}, conflicts{0},
      restarts{0}, learnt_literals{0}, db_reductions{0}, prefix_reused_levels{0},
      propagations_saved{0}, restarts_blocked{0}, learnts_core{0}, learnts_tier2{0},
      learnts_local{0}, par_escalations{0}, par_portfolio{0}, par_cube{0}, par_wins{0},
      par_clauses_imported{0};
};
AtomicSolverTotals g_solver;

/// Per-thread phase state: the '/'-joined path of the open frames.
thread_local std::string t_phase_path;

/// Per-thread stack of captured solver-totals accumulators (innermost last).
thread_local std::vector<SolverTotalsAccumulator*> t_solver_captures;

void record_slice(const char* leaf, uint64_t start_ns, uint64_t dur_ns) {
  Registry& r = registry();
  // Capacity 0 means "trace recording disabled": discard silently, without
  // inflating the dropped counter (dropped == lost to overflow, not "off").
  if (r.trace_capacity == 0) return;
  if (r.trace.size() >= r.trace_capacity) {
    ++r.dropped_trace;
    return;
  }
  r.trace.push_back(TraceEvent{leaf, start_ns, dur_ns, thread_id()});
}

}  // namespace

// ---- runtime switch -----------------------------------------------------

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters.clear();
  r.gauges.clear();
  r.timers.clear();
  r.trace.clear();
  r.dropped_trace = 0;
}

void fork_prepare() { registry().mu.lock(); }
void fork_release() { registry().mu.unlock(); }

// ---- counters / gauges / timers -----------------------------------------

void counter_add(std::string_view name, uint64_t delta) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    r.counters.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void gauge_set(std::string_view name, int64_t value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void gauge_max(std::string_view name, int64_t value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else if (value > it->second)
    it->second = value;
}

namespace {

// Unconditional variant for RAII destructors: a frame opened while recording
// was enabled closes fully even if recording was switched off in between.
void timer_add_unchecked(std::string_view name, double seconds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.timers.find(name);
  if (it == r.timers.end()) {
    r.timers.emplace(std::string(name), TimerStat{1, seconds});
  } else {
    ++it->second.count;
    it->second.seconds += seconds;
  }
}

}  // namespace

void timer_add(std::string_view name, double seconds) {
  if (!enabled()) return;
  timer_add_unchecked(name, seconds);
}

uint64_t counter_value(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

int64_t gauge_value(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.gauges.find(name);
  return it == r.gauges.end() ? 0 : it->second;
}

TimerStat timer_value(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.timers.find(name);
  return it == r.timers.end() ? TimerStat{} : it->second;
}

// ---- solver rollup ------------------------------------------------------

void SolverTotalsAccumulator::add(const SolverTotals& t) noexcept {
  solvers_.fetch_add(t.solvers, std::memory_order_relaxed);
  solves_.fetch_add(t.solves, std::memory_order_relaxed);
  decisions_.fetch_add(t.decisions, std::memory_order_relaxed);
  propagations_.fetch_add(t.propagations, std::memory_order_relaxed);
  conflicts_.fetch_add(t.conflicts, std::memory_order_relaxed);
  restarts_.fetch_add(t.restarts, std::memory_order_relaxed);
  learnt_literals_.fetch_add(t.learnt_literals, std::memory_order_relaxed);
  db_reductions_.fetch_add(t.db_reductions, std::memory_order_relaxed);
  prefix_reused_levels_.fetch_add(t.prefix_reused_levels, std::memory_order_relaxed);
  propagations_saved_.fetch_add(t.propagations_saved, std::memory_order_relaxed);
  restarts_blocked_.fetch_add(t.restarts_blocked, std::memory_order_relaxed);
  learnts_core_.fetch_add(t.learnts_core, std::memory_order_relaxed);
  learnts_tier2_.fetch_add(t.learnts_tier2, std::memory_order_relaxed);
  learnts_local_.fetch_add(t.learnts_local, std::memory_order_relaxed);
  par_escalations_.fetch_add(t.par_escalations, std::memory_order_relaxed);
  par_portfolio_.fetch_add(t.par_portfolio, std::memory_order_relaxed);
  par_cube_.fetch_add(t.par_cube, std::memory_order_relaxed);
  par_wins_.fetch_add(t.par_wins, std::memory_order_relaxed);
  par_clauses_imported_.fetch_add(t.par_clauses_imported, std::memory_order_relaxed);
}

SolverTotals SolverTotalsAccumulator::totals() const noexcept {
  SolverTotals t;
  t.solvers = solvers_.load(std::memory_order_relaxed);
  t.solves = solves_.load(std::memory_order_relaxed);
  t.decisions = decisions_.load(std::memory_order_relaxed);
  t.propagations = propagations_.load(std::memory_order_relaxed);
  t.conflicts = conflicts_.load(std::memory_order_relaxed);
  t.restarts = restarts_.load(std::memory_order_relaxed);
  t.learnt_literals = learnt_literals_.load(std::memory_order_relaxed);
  t.db_reductions = db_reductions_.load(std::memory_order_relaxed);
  t.prefix_reused_levels = prefix_reused_levels_.load(std::memory_order_relaxed);
  t.propagations_saved = propagations_saved_.load(std::memory_order_relaxed);
  t.restarts_blocked = restarts_blocked_.load(std::memory_order_relaxed);
  t.learnts_core = learnts_core_.load(std::memory_order_relaxed);
  t.learnts_tier2 = learnts_tier2_.load(std::memory_order_relaxed);
  t.learnts_local = learnts_local_.load(std::memory_order_relaxed);
  t.par_escalations = par_escalations_.load(std::memory_order_relaxed);
  t.par_portfolio = par_portfolio_.load(std::memory_order_relaxed);
  t.par_cube = par_cube_.load(std::memory_order_relaxed);
  t.par_wins = par_wins_.load(std::memory_order_relaxed);
  t.par_clauses_imported = par_clauses_imported_.load(std::memory_order_relaxed);
  return t;
}

ScopedSolverCapture::ScopedSolverCapture(SolverTotalsAccumulator& acc) noexcept : acc_(&acc) {
  t_solver_captures.push_back(acc_);
}

ScopedSolverCapture::~ScopedSolverCapture() {
  // Captures are strictly scoped, so this one is the innermost open frame.
  t_solver_captures.pop_back();
}

void add_solver_totals(const SolverTotals& t) noexcept {
  // Innermost capture wins: a solver belongs to exactly one run, and when a
  // pooled thread executes a task on behalf of another run (executor work
  // stealing), that task's own capture must not leak into the captures the
  // thread had open underneath it.
  if (!t_solver_captures.empty()) t_solver_captures.back()->add(t);
  g_solver.solvers.fetch_add(t.solvers, std::memory_order_relaxed);
  g_solver.solves.fetch_add(t.solves, std::memory_order_relaxed);
  g_solver.decisions.fetch_add(t.decisions, std::memory_order_relaxed);
  g_solver.propagations.fetch_add(t.propagations, std::memory_order_relaxed);
  g_solver.conflicts.fetch_add(t.conflicts, std::memory_order_relaxed);
  g_solver.restarts.fetch_add(t.restarts, std::memory_order_relaxed);
  g_solver.learnt_literals.fetch_add(t.learnt_literals, std::memory_order_relaxed);
  g_solver.db_reductions.fetch_add(t.db_reductions, std::memory_order_relaxed);
  g_solver.prefix_reused_levels.fetch_add(t.prefix_reused_levels, std::memory_order_relaxed);
  g_solver.propagations_saved.fetch_add(t.propagations_saved, std::memory_order_relaxed);
  g_solver.restarts_blocked.fetch_add(t.restarts_blocked, std::memory_order_relaxed);
  g_solver.learnts_core.fetch_add(t.learnts_core, std::memory_order_relaxed);
  g_solver.learnts_tier2.fetch_add(t.learnts_tier2, std::memory_order_relaxed);
  g_solver.learnts_local.fetch_add(t.learnts_local, std::memory_order_relaxed);
  g_solver.par_escalations.fetch_add(t.par_escalations, std::memory_order_relaxed);
  g_solver.par_portfolio.fetch_add(t.par_portfolio, std::memory_order_relaxed);
  g_solver.par_cube.fetch_add(t.par_cube, std::memory_order_relaxed);
  g_solver.par_wins.fetch_add(t.par_wins, std::memory_order_relaxed);
  g_solver.par_clauses_imported.fetch_add(t.par_clauses_imported, std::memory_order_relaxed);
}

SolverTotals solver_totals() noexcept {
  SolverTotals t;
  t.solvers = g_solver.solvers.load(std::memory_order_relaxed);
  t.solves = g_solver.solves.load(std::memory_order_relaxed);
  t.decisions = g_solver.decisions.load(std::memory_order_relaxed);
  t.propagations = g_solver.propagations.load(std::memory_order_relaxed);
  t.conflicts = g_solver.conflicts.load(std::memory_order_relaxed);
  t.restarts = g_solver.restarts.load(std::memory_order_relaxed);
  t.learnt_literals = g_solver.learnt_literals.load(std::memory_order_relaxed);
  t.db_reductions = g_solver.db_reductions.load(std::memory_order_relaxed);
  t.prefix_reused_levels = g_solver.prefix_reused_levels.load(std::memory_order_relaxed);
  t.propagations_saved = g_solver.propagations_saved.load(std::memory_order_relaxed);
  t.restarts_blocked = g_solver.restarts_blocked.load(std::memory_order_relaxed);
  t.learnts_core = g_solver.learnts_core.load(std::memory_order_relaxed);
  t.learnts_tier2 = g_solver.learnts_tier2.load(std::memory_order_relaxed);
  t.learnts_local = g_solver.learnts_local.load(std::memory_order_relaxed);
  t.par_escalations = g_solver.par_escalations.load(std::memory_order_relaxed);
  t.par_portfolio = g_solver.par_portfolio.load(std::memory_order_relaxed);
  t.par_cube = g_solver.par_cube.load(std::memory_order_relaxed);
  t.par_wins = g_solver.par_wins.load(std::memory_order_relaxed);
  t.par_clauses_imported = g_solver.par_clauses_imported.load(std::memory_order_relaxed);
  return t;
}

SolverTotalsAccumulator* current_solver_capture() noexcept {
  return t_solver_captures.empty() ? nullptr : t_solver_captures.back();
}

// ---- RAII scopes --------------------------------------------------------

ScopedTimer::ScopedTimer(const char* name) noexcept
    : name_(name), start_ns_(0), active_(enabled()) {
  if (active_) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const uint64_t end = now_ns();
  timer_add_unchecked(name_, static_cast<double>(end - start_ns_) * 1e-9);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  record_slice(name_, start_ns_, end - start_ns_);
}

ScopedPhase::ScopedPhase(const char* name) noexcept
    : name_(name), start_ns_(0), prev_path_len_(0), active_(enabled()) {
  if (!active_) return;
  prev_path_len_ = t_phase_path.size();
  if (!t_phase_path.empty()) t_phase_path += '/';
  t_phase_path += name_;
  start_ns_ = now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const uint64_t end = now_ns();
  // By destruction time every inner frame has been popped, so the thread
  // path is exactly this frame's hierarchical path.
  timer_add_unchecked(t_phase_path, static_cast<double>(end - start_ns_) * 1e-9);
  t_phase_path.resize(prev_path_len_);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  record_slice(name_, start_ns_, end - start_ns_);
}

// ---- snapshot & export --------------------------------------------------

Snapshot snapshot() {
  Snapshot s;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  s.counters.assign(r.counters.begin(), r.counters.end());
  s.gauges.assign(r.gauges.begin(), r.gauges.end());
  s.timers.assign(r.timers.begin(), r.timers.end());
  s.solver = solver_totals();
  s.trace_events = r.trace.size();
  s.dropped_trace_events = r.dropped_trace;
  return s;
}

std::string snapshot_json() {
  const Snapshot s = snapshot();
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "ecopatch-telemetry-v1");
  w.kv("enabled", enabled());
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : s.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : s.gauges) w.kv(name, v);
  w.end_object();
  w.key("timers");
  w.begin_object();
  for (const auto& [name, t] : s.timers) {
    w.key(name);
    w.begin_object();
    w.kv("count", t.count);
    w.kv("seconds", t.seconds);
    w.end_object();
  }
  w.end_object();
  w.key("sat");
  w.begin_object();
  w.kv("solvers", s.solver.solvers);
  w.kv("solves", s.solver.solves);
  w.kv("decisions", s.solver.decisions);
  w.kv("propagations", s.solver.propagations);
  w.kv("conflicts", s.solver.conflicts);
  w.kv("restarts", s.solver.restarts);
  w.kv("learnt_literals", s.solver.learnt_literals);
  w.kv("db_reductions", s.solver.db_reductions);
  w.kv("prefix_reused_levels", s.solver.prefix_reused_levels);
  w.kv("propagations_saved", s.solver.propagations_saved);
  w.kv("restarts_blocked", s.solver.restarts_blocked);
  w.kv("learnts_core", s.solver.learnts_core);
  w.kv("learnts_tier2", s.solver.learnts_tier2);
  w.kv("learnts_local", s.solver.learnts_local);
  w.kv("par_escalations", s.solver.par_escalations);
  w.kv("par_portfolio", s.solver.par_portfolio);
  w.kv("par_cube", s.solver.par_cube);
  w.kv("par_wins", s.solver.par_wins);
  w.kv("par_clauses_imported", s.solver.par_clauses_imported);
  w.end_object();
  w.kv("trace_events", static_cast<uint64_t>(s.trace_events));
  w.kv("dropped_trace_events", static_cast<uint64_t>(s.dropped_trace_events));
  w.end_object();
  return w.take();
}

std::string trace_json() {
  Registry& r = registry();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    events = r.trace;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", "phase");
    w.kv("ph", "X");
    // trace_event timestamps are microseconds.
    w.kv("ts", static_cast<double>(e.start_ns) * 1e-3);
    w.kv("dur", static_cast<double>(e.dur_ns) * 1e-3);
    w.kv("pid", 1);
    w.kv("tid", e.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}
}  // namespace

bool write_snapshot_json(const std::string& path) { return write_file(path, snapshot_json()); }
bool write_trace_json(const std::string& path) { return write_file(path, trace_json()); }

void set_trace_capacity(size_t max_events) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.trace_capacity = max_events;
  if (r.trace.size() > max_events) {
    // Shrinking below the buffered count evicts the oldest events; they were
    // recorded and lost, so they count as dropped (capacity 0 drops all).
    r.dropped_trace += r.trace.size() - max_events;
    r.trace.erase(r.trace.begin(),
                  r.trace.begin() + static_cast<long>(r.trace.size() - max_events));
  }
}

std::string current_phase_path() { return t_phase_path; }

void log_summary() {
  if (!log_enabled(LogLevel::kInfo)) return;
  const Snapshot s = snapshot();
  for (const auto& [name, t] : s.timers)
    log_info("telemetry: timer %-40s %8.3fs  (%llu calls)", name.c_str(), t.seconds,
             static_cast<unsigned long long>(t.count));
  for (const auto& [name, v] : s.counters)
    log_info("telemetry: count %-40s %llu", name.c_str(),
             static_cast<unsigned long long>(v));
  for (const auto& [name, v] : s.gauges)
    log_info("telemetry: gauge %-40s %lld", name.c_str(), static_cast<long long>(v));
  log_info("telemetry: sat totals: %llu solvers, %llu solves, %llu conflicts, "
           "%llu propagations, %llu decisions",
           static_cast<unsigned long long>(s.solver.solvers),
           static_cast<unsigned long long>(s.solver.solves),
           static_cast<unsigned long long>(s.solver.conflicts),
           static_cast<unsigned long long>(s.solver.propagations),
           static_cast<unsigned long long>(s.solver.decisions));
}

}  // namespace eco::telemetry
