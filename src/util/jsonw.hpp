/// \file jsonw.hpp
/// \brief Minimal streaming JSON writer.
///
/// Shared by the telemetry snapshot/trace emitters, the engine's outcome
/// serialization, and the benchmark JSON records, so every machine-readable
/// artifact the repo produces escapes strings and formats numbers the same
/// way. Emits compact, valid JSON; the caller is responsible for balanced
/// begin/end calls (checked with asserts in debug builds).
#pragma once

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace eco {

class JsonWriter {
 public:
  void begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(kFirst);
  }
  void end_object() {
    assert(!stack_.empty());
    stack_.pop_back();
    out_ += '}';
  }
  void begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(kFirst);
  }
  void end_array() {
    assert(!stack_.empty());
    stack_.pop_back();
    out_ += ']';
  }

  void key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    // The upcoming value must not emit a comma.
    stack_.push_back(kAfterKey);
  }

  void value(std::string_view v) {
    separate();
    append_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ += v ? "true" : "false";
  }
  void null() {
    separate();
    out_ += "null";
  }
  template <typename T, std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                                         int> = 0>
  void value(T v) {
    separate();
    char buf[48];
    if constexpr (std::is_floating_point_v<T>) {
      if (!std::isfinite(static_cast<double>(v))) {
        out_ += "null";  // JSON has no inf/nan
        return;
      }
      std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
    } else if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<int64_t>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%" PRIu64, static_cast<uint64_t>(v));
    }
    out_ += buf;
  }

  /// key + scalar value in one call.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  enum State : uint8_t { kFirst, kLater, kAfterKey };

  void separate() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == kAfterKey) {
      stack_.pop_back();  // value right after a key: no comma
      return;
    }
    if (s == kLater) out_ += ',';
    s = kLater;
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<State> stack_;
};

}  // namespace eco
