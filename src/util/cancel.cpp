#include "util/cancel.hpp"

#include <algorithm>
#include <limits>

namespace eco {

const char* cancel_reason_name(CancelReason r) noexcept {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kStopped: return "stopped";
    case CancelReason::kMemory: return "memory";
    case CancelReason::kDeadline: return "deadline";
  }
  return "none";
}

CancelToken::CancelToken(double budget_seconds, uint64_t memory_budget_bytes)
    : state_(std::make_shared<State>()) {
  state_->deadline = Deadline(budget_seconds);
  state_->memory_budget = memory_budget_bytes;
}

CancelToken::State* CancelToken::root() const noexcept {
  State* s = state_.get();
  while (s != nullptr && s->parent != nullptr) s = s->parent.get();
  return s;
}

CancelReason CancelToken::reason() const noexcept {
  if (state_ == nullptr) return CancelReason::kNone;
  // Stop wins over everything: it is the explicit external abort.
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    if (s->stop.load(std::memory_order_relaxed)) return CancelReason::kStopped;
  const State* r = root();
  if (r->memory_budget != 0 &&
      r->memory_used.load(std::memory_order_relaxed) > r->memory_budget)
    return CancelReason::kMemory;
  // Deadlines tighten down the chain: a child's own deadline is already the
  // min of its slice and the parent's remaining time at derivation, but the
  // parent may be consumed by sibling work, so check the whole chain — up
  // to a grace-window boundary, past which ancestor deadlines do not apply.
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->deadline.expired()) return CancelReason::kDeadline;
    if (s->detach_deadline) break;
  }
  return CancelReason::kNone;
}

void CancelToken::request_stop() noexcept {
  if (state_ != nullptr) state_->stop.store(true, std::memory_order_relaxed);
}

bool CancelToken::stop_requested() const noexcept {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    if (s->stop.load(std::memory_order_relaxed)) return true;
  return false;
}

double CancelToken::remaining() const noexcept {
  double rem = std::numeric_limits<double>::infinity();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    rem = std::min(rem, s->deadline.remaining());
    if (s->detach_deadline) break;
  }
  return rem < 0 ? 0 : rem;
}

Deadline CancelToken::deadline() const noexcept {
  return state_ == nullptr ? Deadline{} : state_->deadline;
}

void CancelToken::charge_memory(uint64_t bytes) const noexcept {
  State* r = root();
  if (r != nullptr) r->memory_used.fetch_add(bytes, std::memory_order_relaxed);
}

void CancelToken::release_memory(uint64_t bytes) const noexcept {
  State* r = root();
  if (r != nullptr) r->memory_used.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t CancelToken::memory_used() const noexcept {
  const State* r = root();
  return r == nullptr ? 0 : r->memory_used.load(std::memory_order_relaxed);
}

uint64_t CancelToken::memory_budget() const noexcept {
  const State* r = root();
  return r == nullptr ? 0 : r->memory_budget;
}

CancelToken CancelToken::grace(double seconds) const {
  auto state = std::make_shared<State>();
  state->deadline = Deadline(seconds);
  state->detach_deadline = true;
  state->parent = state_;  // stop/memory still chain; nullptr parent is fine
  return CancelToken(std::move(state));
}

CancelToken CancelToken::child(double slice_seconds) const {
  auto state = std::make_shared<State>();
  if (state_ != nullptr) {
    state->parent = state_;
    const double rem = remaining();
    const double slice =
        slice_seconds > 0 ? std::min(slice_seconds, rem)
                          : (rem == std::numeric_limits<double>::infinity() ? 0 : rem);
    state->deadline = Deadline(slice);
  } else {
    state->deadline = Deadline(slice_seconds);
  }
  return CancelToken(std::move(state));
}

}  // namespace eco
