#include "util/faultpoint.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace eco::fault {

namespace {

struct SiteState {
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> draws{0};
  std::atomic<uint64_t> fired{0};
  /// Fire when mix(seed ^ draw-index) / 2^64 < probability.
  uint64_t threshold = 0;  // probability mapped onto [0, 2^64)
  uint64_t seed = 1;
  uint64_t limit = 0;  ///< max fires; 0 = unlimited
};

std::atomic<bool> g_any_armed{false};
SiteState g_sites[kNumSites];
std::mutex g_config_mu;

constexpr const char* kSiteNames[kNumSites] = {
    "sat.budget",  "cnf.load",  "window.extract", "qbf.itercap",
    "verify.timeout", "net.parse", "alloc.guard",
    "worker.spawn", "worker.crash", "worker.hang",
};
constexpr const char* kFiredCounterNames[kNumSites] = {
    "fault.fired.sat.budget",  "fault.fired.cnf.load",
    "fault.fired.window.extract", "fault.fired.qbf.itercap",
    "fault.fired.verify.timeout", "fault.fired.net.parse",
    "fault.fired.alloc.guard", "fault.fired.worker.spawn",
    "fault.fired.worker.crash", "fault.fired.worker.hang",
};

void refresh_any_armed() noexcept {
  bool any = false;
  for (const SiteState& s : g_sites)
    if (s.armed.load(std::memory_order_relaxed)) any = true;
  g_any_armed.store(any, std::memory_order_relaxed);
}

bool parse_one(const std::string& entry, std::string* error) {
  // site[:prob[:seed[:limit]]]
  const size_t c1 = entry.find(':');
  const std::string name = entry.substr(0, c1);
  double prob = 1.0;
  uint64_t seed = 1;
  uint64_t limit = 0;
  if (c1 != std::string::npos) {
    const size_t c2 = entry.find(':', c1 + 1);
    const std::string prob_str =
        entry.substr(c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    errno = 0;
    char* end = nullptr;
    prob = std::strtod(prob_str.c_str(), &end);
    if (errno != 0 || end == prob_str.c_str() || *end != '\0' || prob < 0 || prob > 1) {
      if (error != nullptr) *error = "bad probability '" + prob_str + "' for '" + name + "'";
      return false;
    }
    if (c2 != std::string::npos) {
      const size_t c3 = entry.find(':', c2 + 1);
      const std::string seed_str =
          entry.substr(c2 + 1, c3 == std::string::npos ? std::string::npos : c3 - c2 - 1);
      errno = 0;
      seed = std::strtoull(seed_str.c_str(), &end, 10);
      if (errno != 0 || end == seed_str.c_str() || *end != '\0') {
        if (error != nullptr) *error = "bad seed '" + seed_str + "' for '" + name + "'";
        return false;
      }
      if (c3 != std::string::npos) {
        const std::string limit_str = entry.substr(c3 + 1);
        errno = 0;
        limit = std::strtoull(limit_str.c_str(), &end, 10);
        if (errno != 0 || end == limit_str.c_str() || *end != '\0') {
          if (error != nullptr) *error = "bad limit '" + limit_str + "' for '" + name + "'";
          return false;
        }
      }
    }
  }
  for (size_t i = 0; i < kNumSites; ++i) {
    if (name != kSiteNames[i]) continue;
    SiteState& s = g_sites[i];
    // Map prob onto the full 64-bit range; prob == 1 must always fire.
    s.threshold = prob >= 1.0 ? ~0ULL
                              : static_cast<uint64_t>(prob * 18446744073709551616.0);
    s.seed = SplitMix64::mix(seed + 0x9E3779B97F4A7C15ULL);
    s.limit = limit;
    s.draws.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
    s.armed.store(true, std::memory_order_relaxed);
    return true;
  }
  if (error != nullptr) *error = "unknown fault site '" + name + "'";
  return false;
}

/// Reads ECO_FAULT once before main-ish use (static initializer). A bad
/// spec in the environment must not crash the process that was asked to be
/// crash-proof: log and continue unarmed.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("ECO_FAULT");
    if (spec == nullptr || *spec == '\0') return;
    std::string error;
    if (!arm(spec, &error))
      log_warn("faultpoint: ignoring ECO_FAULT: %s", error.c_str());
  }
};
EnvInit g_env_init;

}  // namespace

const char* site_name(Site s) noexcept {
  return kSiteNames[static_cast<size_t>(s)];
}

bool arm(const std::string& spec, std::string* error) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!entry.empty() && !parse_one(entry, error)) {
      refresh_any_armed();
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  refresh_any_armed();
  return true;
}

void disarm_all() noexcept {
  std::lock_guard<std::mutex> lock(g_config_mu);
  for (SiteState& s : g_sites) {
    s.armed.store(false, std::memory_order_relaxed);
    s.draws.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
  g_any_armed.store(false, std::memory_order_relaxed);
}

bool armed() noexcept { return g_any_armed.load(std::memory_order_relaxed); }

bool should_fail(Site site) noexcept {
  SiteState& s = g_sites[static_cast<size_t>(site)];
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  // Deterministic per draw index, independent of thread interleaving: the
  // k-th draw at a site always sees the same value.
  const uint64_t index = s.draws.fetch_add(1, std::memory_order_relaxed);
  const uint64_t draw = SplitMix64::mix(s.seed ^ (index + 1));
  if (s.threshold != ~0ULL && draw >= s.threshold) return false;
  // Fire-limit: the (limit+1)-th would-be fire and beyond stand down. The
  // transient over-increment self-corrects, so fired_count() stays exact.
  const uint64_t prior = s.fired.fetch_add(1, std::memory_order_relaxed);
  if (s.limit != 0 && prior >= s.limit) {
    s.fired.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  ECO_TELEMETRY_COUNT(kFiredCounterNames[static_cast<size_t>(site)]);
  return true;
}

uint64_t fired_count(Site s) noexcept {
  return g_sites[static_cast<size_t>(s)].fired.load(std::memory_order_relaxed);
}

uint64_t total_fired() noexcept {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumSites; ++i)
    total += g_sites[i].fired.load(std::memory_order_relaxed);
  return total;
}

}  // namespace eco::fault
