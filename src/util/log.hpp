/// \file log.hpp
/// \brief Minimal leveled logging used across the library.
///
/// The library is a research artifact: logging is plain-text to stderr,
/// controlled by a global verbosity level. No dependency on external
/// logging frameworks is taken so the library stays self-contained.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace eco {

/// Verbosity levels, lower is more severe.
enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Returns the current global log level (default: kWarn).
LogLevel log_level() noexcept;

/// Sets the global log level.
void set_log_level(LogLevel level) noexcept;

/// True when messages at \p level would be emitted.
bool log_enabled(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);
std::string format_v(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

/// printf-style logging helpers. Cheap when the level is disabled.
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  if (log_enabled(LogLevel::kError))
    detail::log_line(LogLevel::kError, detail::format_v(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  if (log_enabled(LogLevel::kWarn))
    detail::log_line(LogLevel::kWarn, detail::format_v(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  if (log_enabled(LogLevel::kInfo))
    detail::log_line(LogLevel::kInfo, detail::format_v(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  if (log_enabled(LogLevel::kDebug))
    detail::log_line(LogLevel::kDebug, detail::format_v(fmt, std::forward<Args>(args)...));
}

}  // namespace eco
