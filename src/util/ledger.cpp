#include "util/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/buildinfo.hpp"
#include "util/jsonw.hpp"
#include "util/telemetry.hpp"

namespace eco::ledger {

namespace {

/// Nanoseconds since the first ledger use (stable process-local epoch).
uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

uint32_t thread_id() noexcept {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// One thread's bounded ring. Slots are overwritten oldest-first; with a
/// sink configured, unflushed slots are written out before being reused, so
/// the JSONL export is lossless. `mu` is uncontended on the append path
/// (only merges/flushes from other threads ever take it concurrently).
struct Buffer {
  std::mutex mu;
  std::vector<Record> slots;
  uint64_t count = 0;    ///< records ever appended to this buffer
  uint64_t flushed = 0;  ///< records already written to the sink
};

struct Global {
  std::mutex mu;                  ///< registry + sink + capacity
  std::vector<Buffer*> buffers;   ///< every thread's buffer (leaked, stable)
  std::FILE* sink = nullptr;
  bool sink_ok = true;
  size_t ring_capacity = 4096;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> dropped{0};
};

Global& global() {
  static Global* g = new Global();  // leaked: usable during static dtors
  return *g;
}

std::atomic<bool> g_enabled{false};

/// Seeds the runtime flag (and sink) from ECO_LEDGER on first use.
bool init_from_env() {
  const char* env = std::getenv("ECO_LEDGER");
  if (env == nullptr || env[0] == '\0' || (env[0] == '0' && env[1] == '\0')) return false;
  if (env[0] == '1' && env[1] == '\0') return true;  // enabled, no sink
  return set_sink(env);  // enables on success
}

/// Thread-local handle; the Buffer itself is owned by the global registry
/// and outlives the thread so its records stay collectable.
Buffer& local_buffer() {
  thread_local Buffer* buf = [] {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    auto* b = new Buffer();
    b->slots.reserve(std::min<size_t>(g.ring_capacity, 64));
    b->slots.resize(0);
    g.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Writes buffer records [b.flushed, b.count) to the sink. Callers hold
/// b.mu; takes g.mu for the sink. Returns false on a write failure.
bool flush_buffer_locked(Global& g, Buffer& b) {
  if (b.count == b.flushed) return true;
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.sink == nullptr) return true;
  const size_t cap = b.slots.size();
  bool ok = true;
  for (uint64_t i = b.flushed; i < b.count; ++i) {
    const std::string line = record_json(b.slots[i % cap]);
    if (std::fwrite(line.data(), 1, line.size(), g.sink) != line.size() ||
        std::fputc('\n', g.sink) == EOF)
      ok = false;
  }
  b.flushed = b.count;
  if (!ok) g.sink_ok = false;
  return ok;
}

const char* result_name(QueryResult r) noexcept {
  switch (r) {
    case QueryResult::kSat: return "sat";
    case QueryResult::kUnsat: return "unsat";
    case QueryResult::kUndef: return "undef";
  }
  return "undef";
}

}  // namespace

const char* purpose_name(Purpose p) noexcept {
  switch (p) {
    case Purpose::kUnknown: return "unknown";
    case Purpose::kSupport: return "support";
    case Purpose::kSatPrune: return "satprune";
    case Purpose::kIrredundancy: return "irredundancy";
    case Purpose::kPatchFunc: return "patchfunc";
    case Purpose::kResub: return "resub";
    case Purpose::kCegarMin: return "cegarmin";
    case Purpose::kCec: return "cec";
    case Purpose::kQbf: return "qbf";
    case Purpose::kVerify: return "verify";
    case Purpose::kLadder: return "ladder";
    case Purpose::kSweep: return "sweep";
    case Purpose::kCount_: break;
  }
  return "unknown";
}

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kSolve: return "solve";
    case Kind::kSimHit: return "sim_hit";
    case Kind::kQbfIteration: return "qbf_iteration";
    case Kind::kCecCheck: return "cec_check";
    case Kind::kLadderAttempt: return "ladder_attempt";
    case Kind::kPortfolioAttempt: return "portfolio_attempt";
    case Kind::kCubeSolve: return "cube_solve";
    case Kind::kSweepChunk: return "sweep_chunk";
    case Kind::kCount_: break;
  }
  return "solve";
}

const char* cancel_cause_name(CancelCause c) noexcept {
  switch (c) {
    case CancelCause::kNone: return "none";
    case CancelCause::kStopped: return "stopped";
    case CancelCause::kMemory: return "memory";
    case CancelCause::kDeadline: return "deadline";
    case CancelCause::kBudget: return "budget";
  }
  return "none";
}

// ---- runtime switch -----------------------------------------------------

bool enabled() noexcept {
  static const bool env_on = init_from_env();
  if (env_on && !g_enabled.load(std::memory_order_relaxed))
    g_enabled.store(true, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled();  // settle the env seed so it cannot re-enable later
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---- purpose scopes -----------------------------------------------------

namespace {
/// Innermost-wins purpose stack (the ScopedSolverCapture pattern).
thread_local std::vector<Purpose> t_purposes;
}  // namespace

Purpose current_purpose() noexcept {
  return t_purposes.empty() ? Purpose::kUnknown : t_purposes.back();
}

ScopedPurpose::ScopedPurpose(Purpose p) noexcept : ScopedPurpose(p, false) {}

ScopedPurpose::ScopedPurpose(Purpose p, bool weak) noexcept
    : pushed_(!weak || t_purposes.empty()) {
  if (pushed_) t_purposes.push_back(p);
}

ScopedPurpose::~ScopedPurpose() {
  if (pushed_) t_purposes.pop_back();
}

double thread_cpu_seconds() noexcept {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---- appending ----------------------------------------------------------

void append(Record r) noexcept {
  if (!enabled()) return;
  Global& g = global();
  r.seq = g.seq.fetch_add(1, std::memory_order_relaxed);
  r.thread = thread_id();
  if (r.purpose == Purpose::kUnknown) r.purpose = current_purpose();
  if (r.start_ns == 0) r.start_ns = now_ns();
  if (r.phase[0] == '\0') {
    const std::string path = telemetry::current_phase_path();
    std::strncpy(r.phase, path.c_str(), sizeof(r.phase) - 1);
    r.phase[sizeof(r.phase) - 1] = '\0';
  }

  Buffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  size_t cap;
  {
    std::lock_guard<std::mutex> glock(g.mu);
    cap = g.ring_capacity;
  }
  if (b.slots.size() < cap && b.slots.size() == b.count) {
    b.slots.push_back(r);
    ++b.count;
    return;
  }
  // Ring full (or capacity shrank): the oldest slot is about to go. Flush
  // it to the sink first, or count it dropped.
  const size_t size = b.slots.size();
  if (b.count >= b.flushed + size) {
    bool flushed = false;
    {
      std::lock_guard<std::mutex> glock(g.mu);
      if (g.sink != nullptr) flushed = true;
    }
    if (flushed) {
      flush_buffer_locked(g, b);
    } else {
      g.dropped.fetch_add(1, std::memory_order_relaxed);
      // Advancing the watermark keeps "unflushed" meaning "still live" if a
      // sink is attached later.
      b.flushed = b.count + 1 - size;
    }
  }
  b.slots[b.count % size] = r;
  ++b.count;
}

void append_sim_hit(Purpose purpose, QueryResult result) noexcept {
  if (!enabled()) return;
  Record r;
  r.kind = Kind::kSimHit;
  r.purpose = purpose;
  r.result = result;
  r.sim_hit = 1;
  append(r);
}

// ---- rings, sink, snapshots ---------------------------------------------

void set_ring_capacity(size_t records) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.ring_capacity = std::max<size_t>(records, 1);
}

bool set_sink(const std::string& path) {
  Global& g = global();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Header line: schema + provenance, so a ledger file is self-describing.
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "ecopatch-ledger-v1");
  w.kv("git_commit", build::git_commit());
  w.kv("git_dirty", build::git_dirty());
  w.end_object();
  const std::string header = w.take();
  const bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
                  std::fputc('\n', f) != EOF && std::fflush(f) == 0;
  if (!ok) {
    std::fclose(f);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.sink != nullptr) std::fclose(g.sink);
    g.sink = f;
    g.sink_ok = true;
  }
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

bool flush() {
  Global& g = global();
  std::vector<Buffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.sink == nullptr) return true;
    buffers = g.buffers;
  }
  bool ok = true;
  for (Buffer* b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    if (!flush_buffer_locked(g, *b)) ok = false;
  }
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.sink != nullptr && std::fflush(g.sink) != 0) ok = false;
  if (!ok) g.sink_ok = false;
  return ok && g.sink_ok;
}

bool close_sink() {
  const bool ok = flush();
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  bool close_ok = true;
  if (g.sink != nullptr) {
    close_ok = std::fclose(g.sink) == 0;
    g.sink = nullptr;
  }
  return ok && close_ok && g.sink_ok;
}

void abandon_sink() noexcept {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  // Deliberately not fclose'd: the FILE (and the offset of the fd under it)
  // belongs to the parent process; flushing or closing it here would write
  // duplicate bytes into — or truncate — the parent's stream.
  g.sink = nullptr;
  g.sink_ok = true;
}

namespace {
/// Buffers locked by fork_prepare(); mutated only under g.mu.
std::vector<Buffer*> g_fork_locked;
}  // namespace

void fork_prepare() {
  Global& g = global();
  g.mu.lock();
  g_fork_locked = g.buffers;
  for (Buffer* b : g_fork_locked) b->mu.lock();
}

void fork_release() {
  Global& g = global();
  for (auto it = g_fork_locked.rbegin(); it != g_fork_locked.rend(); ++it)
    (*it)->mu.unlock();
  g_fork_locked.clear();
  g.mu.unlock();
}

std::vector<Record> collect() {
  Global& g = global();
  std::vector<Buffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    buffers = g.buffers;
  }
  std::vector<Record> out;
  for (Buffer* b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    const size_t size = b->slots.size();
    if (size == 0) continue;
    const uint64_t live = std::min<uint64_t>(b->count, size);
    for (uint64_t i = b->count - live; i < b->count; ++i)
      out.push_back(b->slots[i % size]);
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return out;
}

std::vector<Record> tail(size_t n) {
  std::vector<Record> all = collect();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<long>(n));
  return all;
}

uint64_t dropped() noexcept { return global().dropped.load(std::memory_order_relaxed); }

void reset() {
  Global& g = global();
  std::vector<Buffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    buffers = g.buffers;
    g.dropped.store(0, std::memory_order_relaxed);
  }
  for (Buffer* b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->slots.clear();
    b->count = 0;
    b->flushed = 0;
  }
}

// ---- serialization ------------------------------------------------------

void write_record(JsonWriter& w, const Record& r) {
  w.begin_object();
  w.kv("seq", r.seq);
  w.kv("kind", kind_name(r.kind));
  w.kv("purpose", purpose_name(r.purpose));
  w.kv("result", result_name(r.result));
  w.kv("vars", r.vars);
  w.kv("clauses", r.clauses);
  w.kv("conflicts", r.conflicts);
  w.kv("decisions", r.decisions);
  w.kv("propagations", r.propagations);
  w.kv("sim_hit", r.sim_hit != 0);
  w.kv("wall_seconds", r.wall_seconds);
  w.kv("cpu_seconds", r.cpu_seconds);
  w.kv("cancel", cancel_cause_name(r.cancel));
  if (r.kind == Kind::kPortfolioAttempt || r.kind == Kind::kCubeSolve) {
    // Schema-additive: readers treat missing keys as 0/false.
    w.kv("par_rank", static_cast<uint64_t>(r.par_rank));
    w.kv("par_winner", r.par_winner != 0);
    w.kv("par_imported", static_cast<uint64_t>(r.par_imported));
  }
  w.kv("phase", std::string_view(r.phase));
  w.kv("thread", r.thread);
  w.kv("start_ns", r.start_ns);
  w.end_object();
}

std::string record_json(const Record& r) {
  JsonWriter w;
  write_record(w, r);
  return w.take();
}

}  // namespace eco::ledger
