#include "util/buildinfo.hpp"

#include "gitversion.h"  // generated into the build tree

namespace eco::build {

const char* git_commit() noexcept { return ECOPATCH_GIT_COMMIT; }
bool git_dirty() noexcept { return ECOPATCH_GIT_DIRTY != 0; }

}  // namespace eco::build
