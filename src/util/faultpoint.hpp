/// \file faultpoint.hpp
/// \brief Named, deterministic fault-injection sites for chaos testing.
///
/// Every seam where the engine can fail in production — solver budget
/// exhaustion, CNF loading, window extraction, the QBF iteration cap, the
/// verify timeout, netlist parsing, the allocation guard — carries a fault
/// point. Unarmed (the default), a site costs a single relaxed load of one
/// process-wide flag and a perfectly predicted branch; the sites are
/// compiled into every build so the chaos suite and CI exercise the exact
/// binaries that ship.
///
/// Arming: `ECO_FAULT="site[:prob[:seed[:limit]]]"` in the environment
/// (read once at process start) or `arm("spec")` programmatically (the
/// CLI's `--fault` flag). Multiple sites separated by commas. `prob` in
/// [0,1] (default 1); `seed` makes the per-call Bernoulli draws
/// deterministic (default 1); `limit` caps the number of fires (0, the
/// default, = unlimited) — `worker.crash:1:1:1` kills exactly one worker
/// and then stands down, the one-shot shape chaos CI needs. Draws are
/// indexed by a per-site atomic counter and hashed with SplitMix64, so a
/// run's k-th visit to a site always draws the same value regardless of
/// thread schedule.
///
/// A firing site takes its *natural* failure path — the solver reports
/// budget exhaustion, the parser throws its parse error, the allocation
/// guard throws `std::bad_alloc` — so chaos tests exercise the same code
/// the real failure would. The site catalog lives in docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <string>

namespace eco::fault {

/// The fault-site catalog. Keep site_name() and the docs in sync.
enum class Site : uint8_t {
  kSatBudget,      ///< sat.budget — solve() reports budget exhaustion (kUndef)
  kCnfLoad,        ///< cnf.load — CNF encoding fails with bad_alloc
  kWindowExtract,  ///< window.extract — structural pruning fails internally
  kQbfIterCap,     ///< qbf.itercap — the CEGAR loop gives up (kUnknown)
  kVerifyTimeout,  ///< verify.timeout — final CEC reports inconclusive
  kNetParse,       ///< net.parse — netlist parsing throws ParseError
  kAllocGuard,     ///< alloc.guard — the expansion allocation guard trips
  kWorkerSpawn,    ///< worker.spawn — spawning an isolated worker fails
  kWorkerCrash,    ///< worker.crash — a dispatched worker SIGKILLs itself
  kWorkerHang,     ///< worker.hang — a dispatched worker wedges forever
  kCount_,
};
inline constexpr size_t kNumSites = static_cast<size_t>(Site::kCount_);

const char* site_name(Site s) noexcept;

/// Arms sites from a spec: `site[:prob[:seed[:limit]]]` joined by commas,
/// e.g. `"sat.budget:0.5:7,net.parse,worker.crash:1:1:1"`. Returns false
/// (and fills \p error when non-null) on an unknown site or malformed
/// probability/seed/limit; previously armed sites are kept in that case.
/// Resets the fired/draw counters of the sites it arms.
bool arm(const std::string& spec, std::string* error = nullptr);

/// Disarms every site and clears all counters.
void disarm_all() noexcept;

/// True when at least one site is armed (one relaxed atomic load).
bool armed() noexcept;

/// Deterministic Bernoulli draw for \p s. Always false when the site is not
/// armed. Counts fires into `fired_count` and the `fault.fired.<site>`
/// telemetry counter.
bool should_fail(Site s) noexcept;

/// Number of times \p s fired since it was (re-)armed.
uint64_t fired_count(Site s) noexcept;

/// Total fires across every site — the flight-recorder trigger: a delta
/// over an engine attempt means an injected fault fired inside it.
uint64_t total_fired() noexcept;

}  // namespace eco::fault

/// Use this at injection sites: false (and nearly free) when unarmed.
#define ECO_FAULT_POINT(site) \
  (::eco::fault::armed() && ::eco::fault::should_fail(site))
