/// \file executor.hpp
/// \brief Fixed-size thread pool for sweeping independent jobs.
///
/// The ECO workloads are dominated by *independent* problems: the 60
/// (unit, configuration) runs of bench_table1, the random-simulation rounds
/// of a CEC screen, or a verification step that can overlap result
/// assembly. This module provides the one concurrency primitive they all
/// need — a fixed pool of worker threads with task futures and a
/// caller-participating `parallel_for` — plus the process-wide `ECO_JOBS` /
/// `--jobs N` convention for choosing the degree of parallelism.
///
/// Design rules:
///  - **Serial mode is exact.** An executor with `jobs() <= 1` never spawns
///    a thread: `submit` runs the task inline and `parallel_for` is a plain
///    loop in index order, so `--jobs 1` reproduces serial execution
///    bit-for-bit (and is the default when `ECO_JOBS` is unset).
///  - **`parallel_for` is deadlock-free under nesting.** The calling thread
///    participates: indices are claimed from a shared atomic counter by the
///    caller *and* by pool workers, so a `parallel_for` issued from inside a
///    pool task completes even when every worker is busy — the inner caller
///    just runs its own iterations inline.
///  - **Exceptions propagate.** The first exception thrown by any iteration
///    (or submitted task, via its future) is captured and rethrown to the
///    caller; remaining iterations are skipped (not interrupted).
///
/// Thread-count resolution: `default_jobs()` reads the `ECO_JOBS`
/// environment variable (positive integer; `0` means "all hardware
/// threads") and falls back to 1 — parallelism is strictly opt-in so that
/// library behaviour stays deterministic unless a front end asks otherwise.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/cancel.hpp"

namespace eco::util {

/// Number of hardware threads (at least 1).
int hardware_jobs() noexcept;

/// Resolves the process default: `ECO_JOBS` if set (0 = all hardware
/// threads), otherwise 1 (serial).
int default_jobs() noexcept;

/// Fixed-size thread pool. See the file comment for the semantics.
class Executor {
 public:
  /// \p jobs <= 1 selects the inline serial mode; otherwise `jobs - 1`
  /// worker threads are spawned (the caller of parallel_for is the jobs-th).
  explicit Executor(int jobs = default_jobs());
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The configured degree of parallelism (>= 1).
  int jobs() const noexcept { return jobs_; }

  /// A stoppable token tied to this executor's lifetime: `request_stop()`
  /// and the destructor both trip it. Long-running work dispatched on the
  /// pool (engine runs, bench sweeps) chains its CancelToken to this one —
  /// see CancelToken::child — so tearing down the executor cooperatively
  /// aborts in-flight jobs instead of blocking on them.
  const CancelToken& shutdown_token() const noexcept { return shutdown_token_; }

  /// Requests cooperative cancellation of everything observing
  /// shutdown_token(). Queued-but-unstarted tasks still run (they should
  /// observe the token and return early).
  void request_stop() noexcept { shutdown_token_.request_stop(); }

  // ---- Slot accounting (nested intra-task parallelism) -------------------
  // The pool has jobs() logical slots: jobs() - 1 workers plus the
  // participating caller of parallel_for. A task that wants to fan out
  // *within* itself (the parallel SAT layer, sat/parsolve.hpp) asks for
  // extra slots first; when the sweep already owns the pool the grant is 0
  // and the task stays serial instead of oversubscribing the machine.

  /// Slots currently busy: tasks executing on workers or the caller,
  /// parallel_for participants, and outstanding reservations. A thread
  /// helping from inside a task counts twice (conservative on purpose).
  int busy() const noexcept { return busy_.load(std::memory_order_relaxed); }

  /// Best-effort reservation: grants min(n, jobs() - busy()) slots (possibly
  /// 0, never negative) and returns the granted count. Pair every positive
  /// grant with release(grant).
  int try_reserve(int n) noexcept;

  /// Returns \p n slots from a previous try_reserve grant.
  void release(int n) noexcept;

  /// Schedules \p fn on the pool and returns its future. In serial mode the
  /// task runs inline before submit returns (its exception, if any, is
  /// delivered through the future either way).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `fn(0) ... fn(n-1)`, distributing indices over the pool and the
  /// calling thread. Returns when all iterations finished; rethrows the
  /// first exception. Serial mode runs the loop inline in index order.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  /// Pops and runs one queued task on the calling thread. Returns false when
  /// the queue was empty. The building block of `wait_helping`.
  bool run_one_queued();

  /// Waits for \p future while helping: queued tasks are drained on the
  /// calling thread until the future is ready. This makes a submit-then-wait
  /// sequence safe even from inside a pool task — if every worker is busy
  /// (or blocked in wait_helping itself), the waiter eventually pops the
  /// task it is waiting for and runs it inline, so progress is guaranteed.
  /// Rethrows the task's exception, like `future.get()`.
  template <typename T>
  T wait_helping(std::future<T>& future) {
    if (!workers_.empty()) {
      while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        if (!run_one_queued()) {
          // Queue drained: whatever resolves the future is already running
          // on some thread, so a plain wait is finite.
          future.wait();
        }
      }
    }
    return future.get();
  }

 private:
  struct ForState;
  struct BusyScope;

  void enqueue(std::function<void()> task);
  void worker_loop();

  int jobs_;
  CancelToken shutdown_token_ = CancelToken::stoppable();
  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;  // FIFO (front at index head_)
  size_t queue_head_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<int> busy_{0};  ///< executing tasks + participants + reservations
};

}  // namespace eco::util
