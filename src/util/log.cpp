#include "util/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace eco {

namespace {
LogLevel initial_level() {
  // Allow overriding the default level from the environment, so that tools
  // and benchmarks can be made chatty without a rebuild.
  const char* env = std::getenv("ECO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string value(env);
  if (value == "error") return LogLevel::kError;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "info") return LogLevel::kInfo;
  if (value == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}
LogLevel g_level = initial_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }
bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(g_level);
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[eco %s] %s\n", level_name(level), msg.c_str());
}

std::string format_v(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace eco
