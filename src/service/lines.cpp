#include "service/lines.hpp"

namespace eco::service {

bool LineSplitter::append(const char* data, size_t len,
                          const std::function<void(const std::string&)>& on_line) {
  if (overflowed_) return false;
  buf_.append(data, len);
  size_t start = 0;
  for (;;) {
    const size_t nl = buf_.find('\n', start);
    if (nl == std::string::npos) break;
    size_t end = nl;
    if (end > start && buf_[end - 1] == '\r') --end;
    if (end - start > max_line_) {
      overflowed_ = true;
      break;
    }
    if (end > start) {
      const std::string line = buf_.substr(start, end - start);
      on_line(line);
    }
    start = nl + 1;
  }
  buf_.erase(0, start);
  if (!overflowed_ && buf_.size() > max_line_) overflowed_ = true;
  if (overflowed_) buf_.clear();  // nothing past the poison line is kept
  return !overflowed_;
}

}  // namespace eco::service
