#include "service/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <exception>
#include <utility>

#include "util/jsonr.hpp"
#include "util/jsonw.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace eco::service {

namespace {

constexpr const char* kSchema = "ecopatch-service-v1";

/// Starts the service envelope shared by every response flavor.
JsonWriter begin_envelope(const std::string& id, bool ok) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("id", id);
  w.kv("ok", ok);
  return w;
}

}  // namespace

std::string error_response(const std::string& id, const std::string& code,
                           const std::string& message) {
  JsonWriter w = begin_envelope(id, false);
  w.key("error");
  w.begin_object();
  w.kv("code", code);
  w.kv("message", message);
  w.end_object();
  w.end_object();
  return w.take();
}

/// One admitted solve job: everything run_job needs, captured at admission
/// time so the submitting thread returns immediately.
struct Daemon::Job {
  std::string id;
  std::string impl_path, spec_path, weights_path;
  double budget_seconds = 0;
  core::Algorithm algorithm{};
  bool has_algorithm = false;
  Timer queued;  ///< started at admission; read when execution begins
  std::function<void(std::string)> respond;
  // worker_mode metadata forwarded by the supervisor (-1 = absent): the
  // parent's queue time and the dispatch retry/respawn counts, so the
  // response a client sees reports the whole journey, not the inner hop.
  double queue_offset = 0;
  int64_t meta_retries = -1;
  int64_t meta_respawns = -1;
};

Daemon::Daemon(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_budget_bytes),
      // Executor(n) keeps n-1 dedicated workers (the caller is the nth slot
      // in parallel_for, which the daemon never uses at the job level), so
      // jobs+1 yields exactly `jobs` threads pulling from the queue.
      exec_(std::max(1, options.jobs) + 1) {
  if (options_.worker.workers > 0 && !options_.worker_mode) {
    // Each worker child re-enters this same class through its own
    // single-job inner Daemon (worker_child_loop), so isolated and
    // in-process jobs run the exact same engine path — the basis of the
    // bit-identical-outcomes guarantee.
    ServiceOptions child = options_;
    pool_ = std::make_unique<WorkerPool>(
        options_.worker, [child](int fd) { worker_child_loop(fd, child); });
  }
}

Daemon::~Daemon() { drain(); }

DaemonCounters Daemon::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Daemon::submit_line(const std::string& line,
                         std::function<void(std::string)> respond) {
  std::string err;
  const auto doc = json_parse(line, &err);
  if (!doc || !doc->is_object()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.bad_requests;
    }
    respond(error_response("", "bad_request",
                           err.empty() ? "request is not a JSON object" : err));
    return;
  }
  const JsonValue& req = *doc;
  const std::string id = req["id"].as_string();
  const std::string op =
      req.contains("op") ? req["op"].as_string() : std::string("solve");

  if (op == "ping" || op == "stats" || op == "drain") {
    respond(control_response(op, id));
    return;
  }
  if (op != "solve") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.bad_requests;
    }
    respond(error_response(id, "bad_request", "unknown op: " + op));
    return;
  }

  auto job = std::make_shared<Job>();
  job->id = id;
  job->impl_path = req["impl"].as_string();
  job->spec_path = req["spec"].as_string();
  job->weights_path = req["weights"].as_string();
  job->respond = std::move(respond);
  if (job->impl_path.empty() || job->spec_path.empty() ||
      job->weights_path.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.bad_requests;
    }
    job->respond(error_response(
        id, "bad_request", "solve requires impl, spec, and weights paths"));
    return;
  }
  job->budget_seconds = req["budget"].as_number(options_.default_budget_seconds);
  if (options_.max_budget_seconds > 0)
    job->budget_seconds =
        std::min(job->budget_seconds, options_.max_budget_seconds);
  if (req.contains("algo")) {
    const std::string& algo = req["algo"].as_string();
    if (algo == "baseline") job->algorithm = core::Algorithm::kBaseline;
    else if (algo == "minimize") job->algorithm = core::Algorithm::kMinimize;
    else if (algo == "satprune") job->algorithm = core::Algorithm::kSatPruneCegarMin;
    else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.bad_requests;
      }
      job->respond(error_response(id, "bad_request", "unknown algo: " + algo));
      return;
    }
    job->has_algorithm = true;
  }
  if (options_.worker_mode) {
    job->queue_offset = req["_queue"].as_number(0);
    if (req.contains("_retries"))
      job->meta_retries = static_cast<int64_t>(req["_retries"].as_number(-1));
    if (req.contains("_respawns"))
      job->meta_respawns = static_cast<int64_t>(req["_respawns"].as_number(-1));
  }

  // Admission: draining beats queue_full, and the slot is taken before the
  // submit so in_flight() always covers queued + running.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.load(std::memory_order_acquire)) {
      ++counters_.rejected;
      job->respond(error_response(id, "draining", "daemon is draining"));
      return;
    }
    if (admitted_.load(std::memory_order_acquire) >= options_.queue_depth) {
      ++counters_.rejected;
      job->respond(error_response(
          id, "queue_full",
          "queue depth " + std::to_string(options_.queue_depth) + " reached"));
      return;
    }
    ++counters_.submitted;
    admitted_.fetch_add(1, std::memory_order_acq_rel);
  }
  job->queued.reset();
  exec_.submit([this, job] { run_job(job); });
}

void Daemon::run_job(std::shared_ptr<Job> job) {
  const double queue_seconds = job->queue_offset + job->queued.seconds();
  Timer exec_timer;
  std::string response;
  bool cancelled = false;
  bool handled = false;
  // Isolation path: hand the job to a forked worker. A degraded pool
  // (spawn circuit breaker) falls through to the in-process body below —
  // reduced isolation beats refusing service.
  if (pool_ != nullptr)
    handled = run_job_isolated(*job, queue_seconds, response, cancelled);
  if (!handled) try {
    const LoadedInputs in =
        load_inputs(cache_, job->impl_path, job->spec_path, job->weights_path);
    bool problem_hit = false;
    const auto problem = cache_.problem(*in.impl, *in.spec, *in.weights, &problem_hit);

    core::EngineOptions opts = options_.engine;
    if (job->has_algorithm) opts.algorithm = job->algorithm;
    opts.time_budget = job->budget_seconds;
    // The job's token is a child slice of the daemon root: its own deadline
    // plus the daemon-wide stop (drain past grace, SIGTERM escalation).
    opts.cancel = root_.child(job->budget_seconds);
    opts.executor = options_.engine_parallel ? &exec_ : nullptr;

    std::vector<std::vector<bool>> warm;
    if (options_.warm_patterns) warm = problem->warm_patterns();
    opts.warm_patterns = warm.empty() ? nullptr : &warm;

    const core::EcoOutcome outcome = core::run_eco(problem->problem, opts);
    cancelled = outcome.fail_reason == core::FailReason::kCancelled;

    size_t absorbed = 0;
    if (options_.warm_patterns)
      absorbed = problem->absorb_patterns(outcome.harvested_patterns,
                                          options_.warm_pattern_cap);

    JsonWriter w = begin_envelope(job->id, true);
    w.key("service");
    w.begin_object();
    w.kv("queue_seconds", queue_seconds);
    w.kv("exec_seconds", exec_timer.seconds());
    w.kv("session", hash_hex(problem->key));
    w.key("cache");
    w.begin_object();
    w.kv("impl_hit", in.impl_hit);
    w.kv("spec_hit", in.spec_hit);
    w.kv("weights_hit", in.weights_hit);
    w.kv("problem_hit", problem_hit);
    w.end_object();
    w.kv("warm_patterns_in", static_cast<uint64_t>(warm.size()));
    w.kv("warm_patterns_absorbed", static_cast<uint64_t>(absorbed));
    if (options_.worker_mode) {
      w.key("worker");
      w.begin_object();
      w.kv("pid", static_cast<int64_t>(::getpid()));
      w.kv("retries", job->meta_retries < 0 ? int64_t{0} : job->meta_retries);
      w.kv("respawns", job->meta_respawns < 0 ? int64_t{0} : job->meta_respawns);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    response = w.take();
    // Splice the full ecopatch-outcome-v1 object in as the last member —
    // the envelope adds service context, it never rewrites outcome fields.
    response.pop_back();  // trailing '}'
    response += ",\"outcome\":";
    response += core::outcome_to_json(outcome);
    response += '}';
  } catch (const net::ParseError& e) {
    response = error_response(job->id, "parse", e.what());
  } catch (const net::InputError& e) {
    response = error_response(job->id, "inconsistent_input", e.what());
  } catch (const std::exception& e) {
    response = error_response(job->id, "internal", e.what());
  } catch (...) {
    response = error_response(job->id, "internal", "unknown exception");
  }

  // Counters first, delivery second: once a client sees the response, the
  // daemon's own accounting (stats op, tests) already reflects the job.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.completed;
    if (cancelled) ++counters_.cancelled;
  }
  try {
    job->respond(response);
  } catch (const std::exception& e) {
    log_error("service: response delivery for job '%s' failed: %s",
              job->id.c_str(), e.what());
  }
  finish_job();
}

bool Daemon::run_job_isolated(const Job& job, double queue_seconds,
                              std::string& response, bool& cancelled) {
  // Rebuild the validated request for the worker (never echo raw client
  // bytes into a child) and carry the parent-side queue time across.
  JsonWriter req;
  req.begin_object();
  req.kv("op", "solve");
  req.kv("id", job.id);
  req.kv("impl", job.impl_path);
  req.kv("spec", job.spec_path);
  req.kv("weights", job.weights_path);
  req.kv("budget", job.budget_seconds);
  if (job.has_algorithm) {
    switch (job.algorithm) {
      case core::Algorithm::kBaseline: req.kv("algo", "baseline"); break;
      case core::Algorithm::kMinimize: req.kv("algo", "minimize"); break;
      case core::Algorithm::kSatPruneCegarMin: req.kv("algo", "satprune"); break;
    }
  }
  req.kv("_queue", queue_seconds);
  req.end_object();

  const DispatchResult r = pool_->execute(req.take(), job.budget_seconds, root_);
  if (r.degraded_fallback) return false;
  if (r.ok) {
    response = r.response;
    // The worker's inner daemon produced the complete response line; only
    // the parent's cancelled counter needs a peek at the outcome.
    const auto doc = json_parse(response);
    cancelled =
        doc && (*doc)["outcome"]["fail_reason"].as_string() == "cancelled";
    return true;
  }

  // Every attempt died. The crash cost this one job, not the daemon — that
  // is the whole point of the pool — and the client learns exactly how.
  std::string detail = "worker pid " + std::to_string(r.pid);
  if (r.watchdog_killed)
    detail += " hard-killed by the wall watchdog";
  else if (r.term_signal != 0)
    detail += " died on signal " + std::to_string(r.term_signal);
  else
    detail += " exited with status " + std::to_string(r.exit_code);
  if (r.retries_used > 0)
    detail += " (after " + std::to_string(r.retries_used) + " retries)";

  JsonWriter w = begin_envelope(job.id, false);
  w.key("error");
  w.begin_object();
  w.kv("code", "worker_crashed");
  w.kv("message", detail);
  w.kv("signal", r.term_signal);
  w.kv("exit_code", r.exit_code);
  w.kv("watchdog", r.watchdog_killed);
  w.end_object();
  w.key("service");
  w.begin_object();
  w.kv("queue_seconds", queue_seconds);
  w.key("worker");
  w.begin_object();
  w.kv("pid", static_cast<int64_t>(r.pid));
  w.kv("retries", r.retries_used);
  w.kv("respawns", r.respawns);
  w.end_object();
  w.end_object();
  w.end_object();
  response = w.take();
  return true;
}

void Daemon::finish_job() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  admitted_.fetch_sub(1, std::memory_order_acq_rel);
  idle_cv_.notify_all();
}

std::string Daemon::control_response(const std::string& op, const std::string& id) {
  if (op == "drain") {
    // Stops admission only; the front end owns the blocking drain() call
    // (it must keep pumping responses while jobs wind down).
    draining_.store(true, std::memory_order_release);
    JsonWriter w = begin_envelope(id, true);
    w.kv("op", "drain");
    w.kv("in_flight", static_cast<uint64_t>(in_flight()));
    w.end_object();
    return w.take();
  }
  JsonWriter w = begin_envelope(id, true);
  w.kv("op", op);
  if (op == "stats") {
    const DaemonCounters c = counters();
    const CacheStats cs = cache_.stats();
    w.key("counters");
    w.begin_object();
    w.kv("submitted", c.submitted);
    w.kv("completed", c.completed);
    w.kv("rejected", c.rejected);
    w.kv("bad_requests", c.bad_requests);
    w.kv("cancelled", c.cancelled);
    w.end_object();
    w.kv("in_flight", static_cast<uint64_t>(in_flight()));
    w.kv("draining", draining());
    w.key("cache");
    w.begin_object();
    w.kv("netlist_hits", cs.netlist_hits);
    w.kv("netlist_misses", cs.netlist_misses);
    w.kv("weights_hits", cs.weights_hits);
    w.kv("weights_misses", cs.weights_misses);
    w.kv("problem_hits", cs.problem_hits);
    w.kv("problem_misses", cs.problem_misses);
    w.kv("evictions", cs.evictions);
    w.kv("memory_used", cache_.memory_used());
    w.kv("entries", static_cast<uint64_t>(cache_.entries()));
    w.end_object();
    if (pool_ != nullptr) {
      const WorkerStats ws = pool_->stats();
      w.key("worker");
      w.begin_object();
      w.kv("workers", options_.worker.workers);
      w.kv("live", static_cast<uint64_t>(ws.live));
      w.kv("degraded", ws.degraded);
      w.kv("spawned", ws.spawned);
      w.kv("spawn_failures", ws.spawn_failures);
      w.kv("dispatched", ws.dispatched);
      w.kv("crashed", ws.crashed);
      w.kv("watchdog_kills", ws.watchdog_kills);
      w.kv("retries", ws.retries);
      w.kv("recycled", ws.recycled);
      w.kv("degraded_jobs", ws.degraded_jobs);
      w.end_object();
    }
  }
  w.end_object();
  return w.take();
}

std::string Daemon::submit_and_wait(const std::string& line) {
  std::mutex m;
  std::condition_variable cv;
  std::string out;
  bool done = false;
  submit_line(line, [&](std::string response) {
    std::lock_guard<std::mutex> lock(m);
    out = std::move(response);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  return out;
}

void Daemon::drain() {
  draining_.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto all_done = [this] {
      return admitted_.load(std::memory_order_acquire) == 0;
    };
    if (!idle_cv_.wait_for(
            lock, std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::duration<double>(
                          std::max(0.0, options_.drain_grace_seconds))),
            all_done)) {
      // Grace expired: cancel cooperatively and keep waiting. Every job
      // still delivers its (now cancelled) outcome before the slot frees.
      root_.request_stop();
      idle_cv_.wait(lock, all_done);
    }
  }
  // All outcomes delivered. Reap the worker processes BEFORE the ledger
  // flush: nothing service-owned outlives drain, and a wedged child must
  // not be able to sit between the last response and a durable ledger.
  if (pool_ != nullptr) pool_->shutdown();
  ledger::flush();
}

}  // namespace eco::service
