#include "service/artifacts.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/verilog.hpp"
#include "net/weights.hpp"

namespace eco::service {

namespace {

/// Reads the whole file; throws net::ParseError (the parser taxonomy) when
/// it cannot be opened, so a bad path fails the same way a bad file does.
std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw net::ParseError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Kind tags keep the three artifact namespaces apart in one map while the
/// content hash stays the visible session-key component.
constexpr uint64_t kKindNetlist = 0x1;
constexpr uint64_t kKindWeights = 0x2;
constexpr uint64_t kKindProblem = 0x3;

uint64_t kind_key(uint64_t kind, uint64_t hash) noexcept {
  // hash is FNV-mixed already; fold the kind into the top bits.
  return hash ^ (kind << 61);
}

/// Combines the three content hashes into the problem/session key.
uint64_t combine(uint64_t a, uint64_t b, uint64_t c) noexcept {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint64_t v : {a, b, c}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

uint64_t approx_network_bytes(const net::Network& n, size_t file_bytes) {
  // Names dominate: every gate stores its output and input names as
  // std::strings, roughly tripling the on-disk footprint.
  return static_cast<uint64_t>(file_bytes) * 3 + n.gates.size() * 64 + 1024;
}

uint64_t approx_problem_bytes(const core::EcoProblem& p) {
  // AIG nodes are two 32-bit literals plus hash-table share; divisors carry
  // a name each. Estimates only steer eviction, they need not be exact.
  uint64_t bytes = 4096;
  bytes += static_cast<uint64_t>(p.impl.num_nodes()) * 24;
  bytes += static_cast<uint64_t>(p.spec.num_nodes()) * 24;
  bytes += p.divisors.size() * 64;
  for (const auto& d : p.divisors) bytes += d.name.capacity();
  for (const auto& t : p.target_names) bytes += t.capacity() + 32;
  return bytes;
}

}  // namespace

uint64_t content_hash(const std::string& bytes) noexcept {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hash_hex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::vector<std::vector<bool>> ProblemArtifact::warm_patterns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return patterns_;
}

size_t ProblemArtifact::absorb_patterns(const std::vector<std::vector<bool>>& fresh,
                                        size_t cap) {
  if (fresh.empty() || cap == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t adopted = 0;
  for (const auto& p : fresh) {
    if (p.empty()) continue;
    if (std::find(patterns_.begin(), patterns_.end(), p) != patterns_.end()) continue;
    patterns_.push_back(p);
    ++adopted;
  }
  if (patterns_.size() > cap)
    patterns_.erase(patterns_.begin(),
                    patterns_.begin() + static_cast<ptrdiff_t>(patterns_.size() - cap));
  return adopted;
}

size_t ProblemArtifact::num_patterns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return patterns_.size();
}

SessionCache::SessionCache(uint64_t memory_budget_bytes)
    : budget_(memory_budget_bytes),
      account_(memory_budget_bytes > 0 ? CancelToken(0.0, memory_budget_bytes)
                                       : CancelToken()) {}

std::shared_ptr<void> SessionCache::lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  // Touch: move to the LRU front.
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void SessionCache::insert(uint64_t key, std::shared_ptr<void> value, uint64_t bytes) {
  if (budget_ == 0) return;  // caching disabled
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.find(key) != map_.end()) return;  // racing load: first insert wins
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(value), bytes, lru_.begin()});
  account_.charge_memory(bytes);
  evict_to_budget_locked();
}

void SessionCache::evict_to_budget_locked() {
  while (account_.memory_used() > account_.memory_budget() && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = map_.find(victim);
    if (it != map_.end()) {
      account_.release_memory(it->second.bytes);
      map_.erase(it);
      ++stats_.evictions;
    }
  }
}

std::shared_ptr<const NetlistArtifact> SessionCache::netlist(const std::string& path,
                                                             bool* hit) {
  const std::string bytes = read_file_bytes(path);
  const uint64_t h = content_hash(bytes);
  const uint64_t key = kind_key(kKindNetlist, h);
  if (auto cached = lookup(key)) {
    if (hit != nullptr) *hit = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.netlist_hits;
    }
    return std::static_pointer_cast<const NetlistArtifact>(cached);
  }
  if (hit != nullptr) *hit = false;
  auto artifact = std::make_shared<NetlistArtifact>();
  artifact->hash = h;
  // Parse the bytes that were hashed, not a second read of the file: an
  // edit-in-place between the two reads would otherwise cache the new
  // content under the old content hash.
  artifact->network = net::parse_verilog_string(bytes);
  artifact->approx_bytes = approx_network_bytes(artifact->network, bytes.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.netlist_misses;
  }
  insert(key, artifact, artifact->approx_bytes);
  return artifact;
}

std::shared_ptr<const WeightsArtifact> SessionCache::weights(const std::string& path,
                                                             bool* hit) {
  const std::string bytes = read_file_bytes(path);
  const uint64_t h = content_hash(bytes);
  const uint64_t key = kind_key(kKindWeights, h);
  if (auto cached = lookup(key)) {
    if (hit != nullptr) *hit = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.weights_hits;
    }
    return std::static_pointer_cast<const WeightsArtifact>(cached);
  }
  if (hit != nullptr) *hit = false;
  auto artifact = std::make_shared<WeightsArtifact>();
  artifact->hash = h;
  artifact->weights = net::parse_weights_string(bytes);
  artifact->approx_bytes = bytes.size() * 3 + 1024;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.weights_misses;
  }
  insert(key, artifact, artifact->approx_bytes);
  return artifact;
}

std::shared_ptr<ProblemArtifact> SessionCache::problem(const NetlistArtifact& impl,
                                                       const NetlistArtifact& spec,
                                                       const WeightsArtifact& weights,
                                                       bool* hit) {
  const uint64_t session = combine(impl.hash, spec.hash, weights.hash);
  const uint64_t key = kind_key(kKindProblem, session);
  if (auto cached = lookup(key)) {
    if (hit != nullptr) *hit = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.problem_hits;
    }
    return std::static_pointer_cast<ProblemArtifact>(cached);
  }
  if (hit != nullptr) *hit = false;
  auto artifact = std::make_shared<ProblemArtifact>();
  artifact->key = session;
  artifact->problem = core::make_problem(impl.network, spec.network, weights.weights);
  artifact->approx_bytes = approx_problem_bytes(artifact->problem);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.problem_misses;
  }
  insert(key, artifact, artifact->approx_bytes);
  return artifact;
}

CacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t SessionCache::memory_used() const noexcept { return account_.memory_used(); }

uint64_t SessionCache::memory_budget() const noexcept {
  return account_.memory_budget();
}

size_t SessionCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void SessionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : map_) account_.release_memory(entry.bytes);
  map_.clear();
  lru_.clear();
}

LoadedInputs load_inputs(SessionCache& cache, const std::string& impl_path,
                         const std::string& spec_path, const std::string& weights_path) {
  LoadedInputs out;
  out.impl = cache.netlist(impl_path, &out.impl_hit);
  out.spec = cache.netlist(spec_path, &out.spec_hit);
  out.weights = cache.weights(weights_path, &out.weights_hit);
  return out;
}

}  // namespace eco::service
