/// \file worker.hpp
/// \brief Process-isolated worker pool: crash containment for the patch
/// service.
///
/// The in-process Daemon contains every *cooperative* failure — exceptions,
/// injected faults, budget exhaustion — but a hard crash (segfault, OOM
/// kill, a wedged native loop that never checks its CancelToken) takes the
/// whole service down with the job. `WorkerPool` puts each job in a forked
/// worker process so the blast radius of the worst failure is one job:
///
///  - **Dispatch.** The supervisor (the daemon's executor threads) sends an
///    admitted job's request line to an idle worker over a `socketpair` and
///    reads back one response line — the same line-JSON protocol as every
///    other front end (docs/SERVICE.md).
///  - **Crash detection.** A worker that dies mid-job (EOF on its socket)
///    is reaped with `waitpid` and the signal / exit status is decoded into
///    a `worker_crashed` error response. The daemon keeps serving.
///  - **Watchdog.** A worker that stops answering is SIGKILLed at
///    `max(min_kill_seconds, budget × kill_factor)` — the hard backstop for
///    jobs that escape cooperative cancellation entirely.
///  - **Retry.** A crashed/killed job is retried in a fresh worker up to
///    `retries` times with exponential backoff before the error is
///    surfaced.
///  - **Recycling.** Workers are replaced after `recycle_jobs` jobs or when
///    their RSS exceeds `recycle_rss_bytes`, bounding leak accumulation.
///  - **Degradation.** After `spawn_failure_limit` consecutive spawn
///    failures the pool trips a circuit breaker: `execute` returns
///    `degraded_fallback` and the daemon runs jobs in-process — reduced
///    isolation beats refusing service.
///
/// Workers are forked *without* exec: the child inherits the armed fault
/// sites, options, and environment, then runs `worker_child_loop`, which
/// builds its own single-job inner Daemon. That makes isolation available
/// to every embedder of the library (ecopatchd, bench_service, the tests)
/// with no dependency on argv conventions. Fork safety for our global
/// state is handled by `telemetry::fork_prepare/fork_release` and
/// `ledger::fork_prepare/fork_release` around the fork, plus
/// `ledger::abandon_sink` in the child.
///
/// Chaos hooks (util/faultpoint.hpp): `worker.spawn` fails a spawn,
/// `worker.crash` / `worker.hang` are drawn *in the supervisor* at dispatch
/// time — so the deterministic draw counter survives worker turnover — and
/// forwarded to the child via a `"_fault"` request field it executes.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cancel.hpp"

namespace eco::service {

struct ServiceOptions;  // daemon.hpp (worker.cpp includes it)

struct WorkerOptions {
  /// Worker processes; 0 disables isolation (the in-process path,
  /// bit-identical outcomes by construction).
  int workers = 0;
  /// Hard-kill wall watchdog: SIGKILL at budget × kill_factor ...
  double kill_factor = 2.0;
  /// ... but never sooner than this (small budgets still need startup room).
  double min_kill_seconds = 5.0;
  /// After forwarding a stop (SIGTERM) to a busy worker, how long it gets
  /// to deliver its cancelled outcome before the SIGKILL.
  double term_grace_seconds = 5.0;
  /// Crash/watchdog retries per job, each in a fresh worker.
  int retries = 0;
  /// Backoff before retry k is base × 2^(k-1), interruptible by stop.
  double backoff_base_seconds = 0.25;
  /// Replace a worker after this many jobs (0 = never).
  uint64_t recycle_jobs = 0;
  /// Replace a worker whose RSS exceeds this (0 = never; Linux only).
  uint64_t recycle_rss_bytes = 0;
  /// Consecutive spawn failures that trip the degradation circuit breaker.
  int spawn_failure_limit = 3;
  /// Ready-handshake timeout for a freshly forked worker.
  double spawn_timeout_seconds = 10.0;
};

/// Monotone pool counters (snapshot via WorkerPool::stats; also exported as
/// `service.worker.*` telemetry counters).
struct WorkerStats {
  uint64_t spawned = 0;         ///< successful forks incl. replacements
  uint64_t spawn_failures = 0;  ///< fork/socketpair/handshake failures
  uint64_t dispatched = 0;      ///< job attempts sent to a worker
  uint64_t crashed = 0;         ///< workers that died mid-job on their own
  uint64_t watchdog_kills = 0;  ///< workers SIGKILLed by the wall watchdog
  uint64_t retries = 0;         ///< retry attempts after a crash/kill
  uint64_t recycled = 0;        ///< planned replacements (job count / RSS)
  uint64_t degraded_jobs = 0;   ///< jobs bounced to the in-process path
  bool degraded = false;        ///< circuit breaker tripped (latched)
  size_t live = 0;              ///< currently running worker processes
};

/// What one `execute` produced. Exactly one of {ok, degraded_fallback,
/// crash-detail} describes the terminal state:
///  - ok: `response` is the worker's complete response line.
///  - degraded_fallback: nothing ran; the caller must run the job itself.
///  - otherwise: every attempt died; pid/signal/exit describe the last one.
struct DispatchResult {
  bool ok = false;
  std::string response;
  bool degraded_fallback = false;
  bool watchdog_killed = false;  ///< last attempt was a watchdog SIGKILL
  int term_signal = 0;           ///< terminating signal of the last worker
  int exit_code = -1;            ///< exit status when it exited normally
  pid_t pid = -1;                ///< worker that produced the terminal state
  int retries_used = 0;
  int respawns = 0;  ///< pool-lifetime replacements at dispatch time
};

/// Runs in the forked child with its end of the socketpair; never returns.
using WorkerEntry = std::function<void(int fd)>;

class WorkerPool {
 public:
  /// Spawns the initial workers eagerly (failures feed the circuit breaker
  /// and are retried on later dispatches).
  WorkerPool(const WorkerOptions& options, WorkerEntry entry);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs one job to its terminal state: acquires an idle worker (blocking
  /// while all are busy), sends \p request_line (a JSON object), and owns
  /// the full failure lifecycle — watchdog, crash decode, retry with
  /// backoff in a fresh worker. `cancel.stop_requested()` is forwarded to
  /// the busy worker as SIGTERM so drains still deliver cancelled outcomes.
  /// Thread-safe; one call per admitted job.
  DispatchResult execute(const std::string& request_line,
                         double budget_seconds, const CancelToken& cancel);

  /// Closes every worker's socket (EOF = exit), reaps them all (SIGKILL
  /// after a bounded wait — shutdown never hangs on a wedged child).
  /// Idempotent; called by the destructor and by Daemon::drain before the
  /// ledger flush. Callers must have stopped dispatching first.
  void shutdown();

  WorkerStats stats() const;
  bool degraded() const;

 private:
  struct Worker;

  std::unique_ptr<Worker> spawn_locked();
  void ensure_workers_locked();
  Worker* acquire();
  void reap_locked(std::unique_ptr<Worker> w, bool watchdog, int* term_signal,
                   int* exit_code);

  WorkerOptions options_;
  WorkerEntry entry_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  WorkerStats stats_;
  int consecutive_spawn_failures_ = 0;
  bool degraded_ = false;
  bool shutdown_ = false;
};

/// The forked child's whole life: abandon the parent's ledger sink, build a
/// single-job inner Daemon (`worker_mode`, isolation off), answer request
/// lines from \p fd until EOF, then `_exit(0)`. SIGTERM requests stop on
/// the inner daemon (cancelled outcomes still delivered); the supervisor's
/// injected `"_fault"` field is executed here (crash = raise SIGKILL,
/// hang = pause forever).
[[noreturn]] void worker_child_loop(int fd, const ServiceOptions& options);

}  // namespace eco::service
