#include "service/worker.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "service/daemon.hpp"
#include "service/lines.hpp"
#include "util/faultpoint.hpp"
#include "util/jsonr.hpp"
#include "util/jsonw.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace eco::service {

namespace {

/// send() with MSG_NOSIGNAL: a worker that died between dispatch and write
/// must surface as a write error on this thread, not a process-wide SIGPIPE.
bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Resident set size of \p pid from /proc (0 when unreadable or non-Linux —
/// the RSS recycle ceiling simply never triggers there).
uint64_t rss_bytes(pid_t pid) {
#ifdef __linux__
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/statm", static_cast<int>(pid));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
#else
  (void)pid;
  return 0;
#endif
}

}  // namespace

// ---- WorkerPool ----------------------------------------------------------

struct WorkerPool::Worker {
  pid_t pid = -1;
  int fd = -1;
  uint64_t jobs_done = 0;
  bool busy = false;
};

WorkerPool::WorkerPool(const WorkerOptions& options, WorkerEntry entry)
    : options_(options), entry_(std::move(entry)) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_workers_locked();
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

WorkerStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerStats s = stats_;
  s.degraded = degraded_;
  s.live = workers_.size();
  return s;
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::spawn_locked() {
  if (ECO_FAULT_POINT(fault::Site::kWorkerSpawn)) {
    log_warn("worker: injected spawn failure (worker.spawn)");
    return nullptr;
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    log_warn("worker: socketpair failed: %s", std::strerror(errno));
    return nullptr;
  }
  // Pin our lock-guarded globals across the fork so the child cannot
  // inherit them mid-update from some other thread; glibc's own atfork
  // handlers cover malloc and stdio.
  telemetry::fork_prepare();
  ledger::fork_prepare();
  const pid_t pid = ::fork();
  if (pid == 0) {
    telemetry::fork_release();
    ledger::fork_release();
    ::close(sv[0]);
    entry_(sv[1]);
    ::_exit(0);  // entry_ never returns; backstop anyway
  }
  telemetry::fork_release();
  ledger::fork_release();
  ::close(sv[1]);
  if (pid < 0) {
    ::close(sv[0]);
    log_warn("worker: fork failed: %s", std::strerror(errno));
    return nullptr;
  }

  // Ready handshake: the child writes one line once its inner daemon is up.
  // A child that dies or wedges during startup is a spawn failure, not a
  // worker the pool would dispatch into a black hole.
  Timer t;
  std::string ready;
  bool ok = false;
  while (t.seconds() < options_.spawn_timeout_seconds) {
    struct pollfd p = {sv[0], POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    char tmp[256];
    const ssize_t n = ::read(sv[0], tmp, sizeof tmp);
    if (n <= 0) break;
    ready.append(tmp, static_cast<size_t>(n));
    if (ready.find('\n') != std::string::npos) {
      ok = true;
      break;
    }
  }
  if (!ok) {
    ::close(sv[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    log_warn("worker: pid %d failed the ready handshake", static_cast<int>(pid));
    return nullptr;
  }

  auto w = std::make_unique<Worker>();
  w->pid = pid;
  w->fd = sv[0];
  ++stats_.spawned;
  ECO_TELEMETRY_COUNT("service.worker.spawned");
  return w;
}

void WorkerPool::ensure_workers_locked() {
  while (!shutdown_ && !degraded_ &&
         workers_.size() < static_cast<size_t>(options_.workers)) {
    auto w = spawn_locked();
    if (w != nullptr) {
      consecutive_spawn_failures_ = 0;
      workers_.push_back(std::move(w));
      continue;
    }
    ++stats_.spawn_failures;
    ECO_TELEMETRY_COUNT("service.worker.spawn_fail");
    if (++consecutive_spawn_failures_ >= options_.spawn_failure_limit) {
      // Circuit breaker: reduced isolation beats refusing service. Latched
      // for the pool's lifetime — a host that cannot fork reliably will not
      // start forking reliably mid-run.
      degraded_ = true;
      ECO_TELEMETRY_COUNT("service.worker.degraded");
      log_warn(
          "worker: %d consecutive spawn failures -- degrading to in-process "
          "execution",
          consecutive_spawn_failures_);
    }
    break;  // one attempt per pass; the next acquire retries
  }
}

WorkerPool::Worker* WorkerPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_ || degraded_) return nullptr;
    ensure_workers_locked();
    if (degraded_) return nullptr;
    for (auto& w : workers_) {
      if (!w->busy) {
        w->busy = true;
        return w.get();
      }
    }
    idle_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void WorkerPool::reap_locked(std::unique_ptr<Worker> w, bool watchdog,
                             int* term_signal, int* exit_code) {
  ::close(w->fd);
  int status = 0;
  ::waitpid(w->pid, &status, 0);
  *term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (watchdog) {
    ++stats_.watchdog_kills;
    ECO_TELEMETRY_COUNT("service.worker.watchdog_kill");
    log_warn("worker: pid %d hard-killed by the wall watchdog",
             static_cast<int>(w->pid));
  } else {
    ++stats_.crashed;
    ECO_TELEMETRY_COUNT("service.worker.crashed");
    if (*term_signal != 0)
      log_warn("worker: pid %d died on signal %d", static_cast<int>(w->pid),
               *term_signal);
    else
      log_warn("worker: pid %d exited unexpectedly with status %d",
               static_cast<int>(w->pid), *exit_code);
  }
}

DispatchResult WorkerPool::execute(const std::string& request_line,
                                   double budget_seconds,
                                   const CancelToken& cancel) {
  DispatchResult out;
  const int max_attempts = 1 + std::max(0, options_.retries);

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      ECO_TELEMETRY_COUNT("service.worker.retry");
      // Exponential backoff, interruptible: a drain must not sit out the
      // full ladder before the job even re-dispatches.
      const double delay =
          options_.backoff_base_seconds * static_cast<double>(1u << (attempt - 1));
      Timer t;
      while (t.seconds() < delay && !cancel.stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    Worker* w = acquire();
    if (w == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_jobs;
      out.degraded_fallback = true;
      return out;
    }
    int pool_respawns = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dispatched;
      pool_respawns = static_cast<int>(stats_.crashed + stats_.watchdog_kills +
                                       stats_.recycled);
    }
    ECO_TELEMETRY_COUNT("service.worker.dispatched");

    // Chaos draws happen HERE, in the supervisor, so the per-site
    // deterministic counters survive worker turnover (a per-child counter
    // would restart at 0 in every fresh worker and retries could never see
    // a different draw). The child merely executes the verdict. Crash wins
    // when both fire on the same dispatch.
    const bool inject_crash = ECO_FAULT_POINT(fault::Site::kWorkerCrash);
    const bool inject_hang = ECO_FAULT_POINT(fault::Site::kWorkerHang);

    // Request lines are JSON objects by contract (the daemon builds them),
    // so per-attempt metadata splices in before the closing brace.
    std::string line = request_line;
    line.pop_back();
    line += ",\"_retries\":" + std::to_string(attempt);
    line += ",\"_respawns\":" + std::to_string(pool_respawns);
    if (inject_crash)
      line += ",\"_fault\":\"crash\"";
    else if (inject_hang)
      line += ",\"_fault\":\"hang\"";
    line += "}\n";

    out.pid = w->pid;
    out.retries_used = attempt;
    out.respawns = pool_respawns;
    out.watchdog_killed = false;
    out.term_signal = 0;
    out.exit_code = -1;

    bool dead = !write_all(w->fd, line.data(), line.size());
    bool watchdog = false;
    std::string rx;
    bool got = false;
    if (!dead) {
      double kill_deadline = std::max(options_.min_kill_seconds,
                                      budget_seconds * options_.kill_factor);
      bool term_sent = false;
      Timer t;
      for (;;) {
        if (!term_sent && cancel.stop_requested()) {
          // Forward the stop: the worker's inner daemon cancels the job
          // cooperatively and still answers with a cancelled outcome.
          ::kill(w->pid, SIGTERM);
          term_sent = true;
          kill_deadline = std::min(kill_deadline,
                                   t.seconds() + options_.term_grace_seconds);
        }
        if (t.seconds() >= kill_deadline) {
          ::kill(w->pid, SIGKILL);
          watchdog = true;
          dead = true;
          break;
        }
        struct pollfd p = {w->fd, POLLIN, 0};
        const int pr = ::poll(&p, 1, 50);
        if (pr < 0) {
          if (errno == EINTR) continue;
          dead = true;
          break;
        }
        if (pr == 0) continue;
        char tmp[4096];
        const ssize_t n = ::read(w->fd, tmp, sizeof tmp);
        if (n <= 0) {
          dead = true;
          break;
        }
        rx.append(tmp, static_cast<size_t>(n));
        const size_t nl = rx.find('\n');
        if (nl != std::string::npos) {
          out.response = rx.substr(0, nl);
          got = true;
          break;
        }
      }
    }

    if (got) {
      std::lock_guard<std::mutex> lock(mu_);
      ++w->jobs_done;
      bool recycle =
          options_.recycle_jobs != 0 && w->jobs_done >= options_.recycle_jobs;
      if (!recycle && options_.recycle_rss_bytes != 0 &&
          rss_bytes(w->pid) > options_.recycle_rss_bytes)
        recycle = true;
      if (recycle) {
        for (auto it = workers_.begin(); it != workers_.end(); ++it) {
          if (it->get() == w) {
            std::unique_ptr<Worker> doomed = std::move(*it);
            workers_.erase(it);
            ::close(doomed->fd);  // EOF: the child exits its read loop
            int status = 0;
            ::waitpid(doomed->pid, &status, 0);
            ++stats_.recycled;
            ECO_TELEMETRY_COUNT("service.worker.recycled");
            break;
          }
        }
      } else {
        w->busy = false;
      }
      idle_cv_.notify_all();
      out.ok = true;
      return out;
    }

    // The worker is gone (crash, watchdog kill, or a dead socket): remove
    // it from the pool, decode its fate, and retry in a fresh one.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = workers_.begin(); it != workers_.end(); ++it) {
        if (it->get() == w) {
          std::unique_ptr<Worker> doomed = std::move(*it);
          workers_.erase(it);
          reap_locked(std::move(doomed), watchdog, &out.term_signal,
                      &out.exit_code);
          break;
        }
      }
      idle_cv_.notify_all();
    }
    out.watchdog_killed = watchdog;
  }

  return out;  // ok=false: every attempt died; out carries the last fate
}

void WorkerPool::shutdown() {
  std::vector<std::unique_ptr<Worker>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    doomed.swap(workers_);
    idle_cv_.notify_all();
  }
  for (auto& w : doomed) ::close(w->fd);  // EOF: children exit their loops
  for (auto& w : doomed) {
    Timer t;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(w->pid, &status, WNOHANG);
      if (r == w->pid || (r < 0 && errno == ECHILD)) break;
      if (t.seconds() > 5.0) {
        // A wedged child must never hang shutdown (or drain's ledger flush).
        ::kill(w->pid, SIGKILL);
        ::waitpid(w->pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

// ---- worker_child_loop ---------------------------------------------------

namespace {

std::atomic<Daemon*> g_child_daemon{nullptr};

void child_sigterm(int) {
  Daemon* d = g_child_daemon.load(std::memory_order_acquire);
  if (d != nullptr) d->request_stop();  // async-signal-safe (atomic store)
}

}  // namespace

[[noreturn]] void worker_child_loop(int fd, const ServiceOptions& options) {
  // The inherited ledger sink FILE* (buffer and fd offset) belongs to the
  // parent; drop it without flushing or closing.
  ledger::abandon_sink();

  ServiceOptions child = options;
  child.jobs = 1;         // one dispatched job at a time per worker
  child.queue_depth = 1;  // the supervisor is the only client
  child.worker.workers = 0;  // no recursive pools
  child.worker_mode = true;

  Daemon daemon(child);
  g_child_daemon.store(&daemon, std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = child_sigterm;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGINT, SIG_IGN);   // the parent's Ctrl-C drain owns the policy
  ::signal(SIGPIPE, SIG_IGN);

  {
    JsonWriter w;
    w.begin_object();
    w.kv("op", "_ready");
    w.kv("pid", static_cast<int64_t>(::getpid()));
    w.end_object();
    std::string line = w.take();
    line += '\n';
    if (!write_all(fd, line.data(), line.size())) ::_exit(0);
  }

  LineSplitter split;
  char buf[4096];
  bool io_ok = true;
  while (io_ok) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // supervisor closed: recycle or shutdown
    const bool fed =
        split.append(buf, static_cast<size_t>(n), [&](const std::string& line) {
          // Execute a supervisor-injected fault verdict before the job runs:
          // the crash must look exactly like a real mid-job death.
          const auto doc = json_parse(line);
          if (doc && doc->contains("_fault")) {
            const std::string& f = (*doc)["_fault"].as_string();
            if (f == "crash") ::kill(::getpid(), SIGKILL);
            if (f == "hang")
              for (;;) ::pause();
          }
          std::string response = daemon.submit_and_wait(line);
          // submit_and_wait returns the moment the response is delivered,
          // which is just BEFORE the job's admission slot frees. Wait the
          // slot out so the next dispatch — which the supervisor may send
          // the instant it reads this response — can never bounce off
          // queue_full on our depth-1 queue.
          while (daemon.in_flight() != 0)
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          response += '\n';
          if (!write_all(fd, response.data(), response.size())) io_ok = false;
        });
    if (!fed) break;  // oversized line: the supervisor never does this
  }
  ::_exit(0);  // skip atexit/static destructors: this heap is a fork copy
}

}  // namespace eco::service
