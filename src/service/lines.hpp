/// \file lines.hpp
/// \brief Incremental line splitting with a hard per-line byte cap — the
/// receive-buffer discipline of every service front end.
///
/// `ecopatchd` peers (socket clients, the stdin pipe, worker socketpairs)
/// stream bytes that the front end must cut into protocol lines. Before
/// this class, a peer streaming bytes with *no* newline grew the receive
/// buffer without bound — a trivial memory DoS against a daemon meant to
/// survive anything. `LineSplitter` owns the partial-line buffer, strips
/// CR before LF (telnet-style CRLF peers just work), skips empty lines,
/// and latches an overflow the moment a line — complete or still partial —
/// exceeds the cap. A latched splitter emits nothing further; the caller
/// answers `bad_request` and closes the peer (docs/SERVICE.md).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace eco::service {

class LineSplitter {
 public:
  /// The service default: no legitimate request line approaches 1 MiB.
  static constexpr size_t kDefaultMaxLine = 1u << 20;

  explicit LineSplitter(size_t max_line_bytes = kDefaultMaxLine)
      : max_line_(max_line_bytes == 0 ? kDefaultMaxLine : max_line_bytes) {}

  /// Appends \p len bytes and invokes \p on_line once per complete line
  /// (newline excluded, trailing CR stripped, empty lines skipped), in
  /// order. Returns false — and latches overflowed() — when a line exceeds
  /// the cap; lines already complete before the oversized one are still
  /// delivered, nothing after it ever is.
  bool append(const char* data, size_t len,
              const std::function<void(const std::string&)>& on_line);

  /// True once any line exceeded the cap. Latched: append() is a no-op
  /// returning false from then on.
  bool overflowed() const noexcept { return overflowed_; }

  /// Bytes currently buffered as an incomplete line.
  size_t pending() const noexcept { return buf_.size(); }

  size_t max_line() const noexcept { return max_line_; }

 private:
  size_t max_line_;
  bool overflowed_ = false;
  std::string buf_;
};

}  // namespace eco::service
