/// \file artifacts.hpp
/// \brief Content-addressed input artifacts and the warm session cache of
/// the patch service (docs/SERVICE.md).
///
/// Every ecopatchd job names its inputs by file path, but the service keys
/// its warm state by *content*: the artifact of a netlist file is keyed by
/// the 64-bit FNV-1a hash of the file bytes, so jobs hit the cache whenever
/// the bytes match — across renames, re-submissions, and concurrent
/// sessions — and never read stale state after an edit-in-place.
///
/// Three artifact kinds, in dependency order:
///  - `NetlistArtifact` — one parsed `net::Network` (impl or spec file),
///  - `WeightsArtifact` — one parsed `net::WeightMap`,
///  - `ProblemArtifact` — the fully elaborated `core::EcoProblem` (both
///    AIGs, target list, divisor candidates) keyed by the (impl, spec,
///    weights) hash triple. This is the expensive one: elaboration plus
///    divisor construction dominates the cold-start cost of small queries.
///    Its key doubles as the *session key* reported in job responses. The
///    problem artifact also carries the warm pattern store: shared-PI
///    counterexample prefixes harvested from previous runs on the same
///    problem (`EcoOutcome::harvested_patterns`), fed to the next run via
///    `EngineOptions::warm_patterns` so verification starts from the
///    stimuli that mattered before.
///
/// `SessionCache` holds all three behind one LRU, budgeted by a
/// `CancelToken` memory account (util/cancel.hpp): every insert charges an
/// approximate byte size, and the least-recently-used entries are evicted
/// until the account fits its budget again. Entries are handed out as
/// `shared_ptr`s, so eviction never invalidates an artifact a running job
/// still uses — it only drops the cache's reference (the accounting is
/// released at eviction, so the account tracks cache-held state, not
/// job-pinned state). A budget of 0 disables caching entirely: every load
/// parses fresh and stores nothing, which is both the CLI's one-shot mode
/// and the cold baseline of bench_service.
///
/// Thread safety: all SessionCache methods are safe to call concurrently.
/// Parsing happens outside the cache lock, so two jobs missing on the same
/// key may parse twice; the second insert adopts the first's entry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eco/problem.hpp"
#include "net/network.hpp"
#include "util/cancel.hpp"

namespace eco::service {

/// 64-bit FNV-1a over \p bytes.
uint64_t content_hash(const std::string& bytes) noexcept;

/// Lower-hex rendering (16 digits) — the session-key wire format.
std::string hash_hex(uint64_t h);

/// One parsed netlist file, keyed by the content hash of its bytes.
struct NetlistArtifact {
  uint64_t hash = 0;
  net::Network network;
  uint64_t approx_bytes = 0;  ///< memory-account estimate
};

/// One parsed weight file.
struct WeightsArtifact {
  uint64_t hash = 0;
  net::WeightMap weights;
  uint64_t approx_bytes = 0;
};

/// A ready-to-solve problem plus the warm pattern store. The problem itself
/// is immutable after construction (jobs share it read-only); the pattern
/// store is internally locked.
class ProblemArtifact {
 public:
  uint64_t key = 0;  ///< combined (impl, spec, weights) hash — the session key
  core::EcoProblem problem;
  uint64_t approx_bytes = 0;

  /// Snapshot of the warm patterns (shared-PI prefixes), newest last.
  std::vector<std::vector<bool>> warm_patterns() const;

  /// Folds freshly harvested patterns in, deduplicated, keeping at most
  /// \p cap patterns (oldest dropped first). Returns the number adopted.
  size_t absorb_patterns(const std::vector<std::vector<bool>>& fresh, size_t cap);

  /// Patterns currently stored.
  size_t num_patterns() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<bool>> patterns_;
};

/// Cache hit/miss counters (cumulative since construction).
struct CacheStats {
  uint64_t netlist_hits = 0, netlist_misses = 0;
  uint64_t weights_hits = 0, weights_misses = 0;
  uint64_t problem_hits = 0, problem_misses = 0;
  uint64_t evictions = 0;
};

/// The keyed warm-state cache. See the file comment for semantics.
class SessionCache {
 public:
  /// \p memory_budget_bytes caps cache-held state via a CancelToken memory
  /// account; 0 disables caching (loads parse fresh, nothing is stored).
  explicit SessionCache(uint64_t memory_budget_bytes);

  /// Parses (or returns the cached) netlist at \p path. Throws
  /// net::ParseError on unreadable/malformed input, exactly like
  /// net::parse_verilog_file. \p hit, when non-null, reports cache hit.
  std::shared_ptr<const NetlistArtifact> netlist(const std::string& path,
                                                 bool* hit = nullptr);

  /// Parses (or returns the cached) weight map at \p path.
  std::shared_ptr<const WeightsArtifact> weights(const std::string& path,
                                                 bool* hit = nullptr);

  /// Builds (or returns the cached) elaborated problem for the artifact
  /// triple. Throws net::InputError on inconsistent interfaces, exactly
  /// like core::make_problem.
  std::shared_ptr<ProblemArtifact> problem(const NetlistArtifact& impl,
                                           const NetlistArtifact& spec,
                                           const WeightsArtifact& weights,
                                           bool* hit = nullptr);

  CacheStats stats() const;
  uint64_t memory_used() const noexcept;
  uint64_t memory_budget() const noexcept;
  /// Entries currently cached (all kinds).
  size_t entries() const;
  /// Drops every entry (running jobs keep their shared_ptrs).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<void> value;
    uint64_t bytes = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  std::shared_ptr<void> lookup(uint64_t kind_key);
  void insert(uint64_t kind_key, std::shared_ptr<void> value, uint64_t bytes);
  void evict_to_budget_locked();

  const uint64_t budget_;
  /// The memory account: a stoppable token whose budget is the cache cap.
  /// charge/release mirror insert/evict, so memory_used() is cache-held
  /// bytes and the LRU evicts exactly when the account would trip.
  CancelToken account_;

  mutable std::mutex mu_;
  // LRU list, most recent at the front; map values point into the list.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, Entry> map_;
  CacheStats stats_;
};

/// The artifacts of one job's three input files, loaded through \p cache
/// (or parsed fresh when \p cache is null / disabled). The shared front-end
/// path of the CLI `solve` command and the daemon: parse errors throw
/// net::ParseError / net::InputError for the caller's taxonomy mapping,
/// and no parse logic lives in tools/ anymore.
struct LoadedInputs {
  std::shared_ptr<const NetlistArtifact> impl;
  std::shared_ptr<const NetlistArtifact> spec;
  std::shared_ptr<const WeightsArtifact> weights;
  bool impl_hit = false, spec_hit = false, weights_hit = false;
};

LoadedInputs load_inputs(SessionCache& cache, const std::string& impl_path,
                         const std::string& spec_path, const std::string& weights_path);

}  // namespace eco::service
