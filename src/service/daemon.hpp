/// \file daemon.hpp
/// \brief The long-lived patch service: admission control, concurrent job
/// execution on the Executor, warm session caching, and graceful drain.
///
/// `Daemon` is the transport-independent core of `ecopatchd`
/// (tools/ecopatchd.cpp): front ends (stdin pipe, Unix socket, the
/// bench_service load generator, tests) feed it request *lines* and get
/// response *lines* back through a callback — one line-delimited JSON
/// object each way, the protocol of docs/SERVICE.md.
///
/// Request:  {"op":"solve","id":"j1","impl":"impl.v","spec":"spec.v",
///            "weights":"w.txt","budget":10,"algo":"minimize"}
/// Response: {"schema":"ecopatch-service-v1","id":"j1","ok":true,
///            "service":{queue/cache/session fields},"outcome":{...}}
///
/// Execution model:
///  - **Admission.** A bounded queue admits at most `queue_depth` jobs
///    (queued + running). Beyond that, submissions are rejected immediately
///    with error code `queue_full` — the documented back-pressure signal —
///    and nothing is enqueued. A draining daemon rejects with `draining`.
///  - **Concurrency.** Admitted jobs run on an internal Executor with
///    `jobs` worker threads; the submitting thread never blocks. Each job
///    gets its own `CancelToken::child` slice of the daemon root token
///    carrying the per-job deadline, so one runaway job can neither stall
///    the pool forever nor outlive a drain. Inside a job the engine runs
///    its normal crash-proof attempt boundary (eco/engine.cpp): any
///    exception or fault becomes a classified outcome, never a daemon
///    crash.
///  - **Warm state.** Inputs resolve through the SessionCache
///    (service/artifacts.hpp); each response reports per-artifact
///    hit/miss, the session key, and queue/execution timings. Harvested
///    simulation patterns are folded back into the session for the next
///    job (EngineOptions::warm_patterns).
///  - **Drain.** `drain()` (the SIGTERM/SIGINT path) stops admission,
///    waits up to `drain_grace_seconds` for in-flight jobs, then requests
///    cooperative cancellation and keeps waiting — every admitted job
///    still delivers its response (status `unknown`, fail_reason
///    `cancelled` if it was cut short), and the ledger sink is flushed
///    before drain() returns. No in-flight outcome is ever lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "eco/engine.hpp"
#include "service/artifacts.hpp"
#include "service/worker.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"

namespace eco::service {

struct ServiceOptions {
  /// Concurrent jobs (dedicated pool worker threads).
  int jobs = 2;
  /// Admission cap: queued + running jobs. Submissions beyond it are
  /// rejected with error code "queue_full".
  size_t queue_depth = 64;
  /// Per-job wall budget when the request carries none.
  double default_budget_seconds = 60;
  /// Ceiling for any requested budget (0 = no ceiling).
  double max_budget_seconds = 0;
  /// Session-cache budget (artifacts.hpp); 0 disables caching — every job
  /// parses cold, which is the bench_service baseline mode.
  uint64_t cache_budget_bytes = 256ull << 20;
  /// Feed harvested simulation patterns back into the session between jobs.
  bool warm_patterns = true;
  /// Cap on stored warm patterns per session.
  size_t warm_pattern_cap = 256;
  /// How long drain() lets in-flight jobs finish before cancelling them.
  double drain_grace_seconds = 30;
  /// Per-job engine template. cancel/executor/warm_patterns are overwritten
  /// per job; everything else (algorithm, budgets, sim bank, cec mode, ...)
  /// is the daemon-wide default a request can override.
  core::EngineOptions engine{};
  /// Hand each job the daemon pool for intra-job parallelism (overlapped
  /// verify, parallel sweeps). Off by default: pool slots equal whole jobs,
  /// which keeps per-job latency independent of neighbors.
  bool engine_parallel = false;
  /// Process isolation (service/worker.hpp). `worker.workers > 0` runs
  /// every admitted job in a forked worker process: crashes and hangs cost
  /// one job (`worker_crashed`), never the daemon. Default off — the
  /// in-process path, bit-identical outcomes by construction.
  WorkerOptions worker{};
  /// Internal: this daemon IS the inner daemon of a worker child. It
  /// renders the `service.worker` response block from the supervisor's
  /// `_queue`/`_retries`/`_respawns` request fields and never builds a
  /// pool of its own. Front ends never set this.
  bool worker_mode = false;
};

/// Cumulative daemon counters (monotone; snapshot via Daemon::counters).
struct DaemonCounters {
  uint64_t submitted = 0;   ///< well-formed solve requests seen
  uint64_t completed = 0;   ///< responses delivered for admitted jobs
  uint64_t rejected = 0;    ///< queue_full + draining rejections
  uint64_t bad_requests = 0;
  uint64_t cancelled = 0;   ///< jobs cut short by drain/stop
};

class Daemon {
 public:
  explicit Daemon(const ServiceOptions& options);
  /// Drains (idempotent) before tearing the pool down.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Handles one request line. \p respond is invoked exactly once with the
  /// response line (no trailing newline): inline for protocol errors,
  /// rejections, and control ops; from a worker thread for admitted solve
  /// jobs. \p respond must be thread-safe against other responses.
  void submit_line(const std::string& line,
                   std::function<void(std::string)> respond);

  /// Blocking convenience (tests, bench): submits and waits for the line.
  std::string submit_and_wait(const std::string& line);

  /// Stops admission, waits for in-flight jobs (cancelling after the
  /// grace), flushes the ledger sink. Safe to call repeatedly and from
  /// signal-driven front-end loops (not from the handler itself).
  void drain();

  /// Requests cooperative cancellation of every running job (drain still
  /// delivers their responses). Async-signal-safe.
  void request_stop() noexcept { root_.request_stop(); }

  bool draining() const noexcept { return draining_.load(std::memory_order_acquire); }
  /// Jobs admitted and not yet responded (queued + running).
  size_t in_flight() const noexcept { return admitted_.load(std::memory_order_acquire); }
  DaemonCounters counters() const;
  const SessionCache& cache() const noexcept { return cache_; }
  const ServiceOptions& options() const noexcept { return options_; }
  /// The isolation pool, or nullptr when running in-process.
  const WorkerPool* worker_pool() const noexcept { return pool_.get(); }

 private:
  struct Job;

  void run_job(std::shared_ptr<Job> job);
  /// Dispatches \p job to the worker pool. Returns false when the pool has
  /// degraded to the in-process path (the caller runs the job itself);
  /// otherwise fills response/cancelled — a worker response or a
  /// `worker_crashed` error.
  bool run_job_isolated(const Job& job, double queue_seconds,
                        std::string& response, bool& cancelled);
  std::string control_response(const std::string& op, const std::string& id);
  void finish_job() noexcept;

  ServiceOptions options_;
  CancelToken root_ = CancelToken::stoppable();
  SessionCache cache_;
  util::Executor exec_;
  std::unique_ptr<WorkerPool> pool_;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> admitted_{0};
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  DaemonCounters counters_;
};

/// Builds an error response line: {"schema":...,"id":id,"ok":false,
/// "error":{"code":code,"message":message}}. Codes: "bad_request",
/// "queue_full", "draining", "parse", "inconsistent_input", "internal",
/// "worker_crashed" (isolated worker died/was killed; retries exhausted).
std::string error_response(const std::string& id, const std::string& code,
                           const std::string& message);

}  // namespace eco::service
