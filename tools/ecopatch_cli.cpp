// ecopatch — command-line front end for the library.
//
//   ecopatch solve <impl.v> <spec.v> <weights.txt> [options]
//       Runs the ECO engine on a contest-style instance and writes the
//       patch. Options:
//         --algo baseline|minimize|satprune   (default minimize)
//         --budget SECONDS                    (default 60)
//         --patch FILE                        (default patch.v)
//         --patched FILE                      write the patched netlist
//         --force-structural
//         --stats-json FILE                   outcome + telemetry snapshot JSON
//         --trace FILE                        Chrome trace_event JSON
//         --ledger FILE                       per-query JSONL ledger
//                                             (ecopatch-ledger-v1; analyze
//                                             with `ecoprof report`)
//         --sim-bank 0|1                      counterexample simulation bank
//                                             (default: ECO_SIM_BANK, else on)
//         --jobs N                            thread pool for the run
//                                             (0 = all hardware threads;
//                                             default: ECO_JOBS, else 1)
//         --ladder 0|1                        strategy-ladder fallback
//                                             (default on; docs/ROBUSTNESS.md)
//         --par-sat off|on|racy               intra-query parallel SAT
//                                             (default: ECO_PAR_SAT, else off;
//                                             docs/PARALLEL_SAT.md)
//         --cec mono|sweep                    large-cone equivalence engine
//                                             (default: ECO_CEC, else mono;
//                                             docs/SWEEPING.md)
//   ecopatch gen <unit 1..20> <outdir> [--seed N] [--scale N]
//
// Global options (any command): -v/--verbose raises the log level to info,
// -vv to debug, and routes the telemetry phase/counter summary through the
// logger; --fault SPEC arms fault-injection sites (same syntax as ECO_FAULT,
// docs/ROBUSTNESS.md). See docs/OBSERVABILITY.md for the JSON schemas.
// SIGINT/SIGTERM request cooperative cancellation: the run winds down and
// reports status "unknown" with fail_reason "cancelled".
//       Materializes a synthetic suite unit as impl.v/spec.v/weights.txt.
//   ecopatch stats <circuit>
//       Parses a circuit (.v, .blif, .aag/.aig) and prints statistics.
//   ecopatch cec <a> <b>
//       Combinational equivalence check between two circuit files.
//   ecopatch convert <in> <out>
//       Converts between formats; both chosen by file extension.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "aig/aiger.hpp"
#include "aig/window.hpp"
#include "benchgen/suite.hpp"
#include "cec/cec.hpp"
#include "cec/sweep.hpp"
#include "eco/engine.hpp"
#include "net/aignet.hpp"
#include "net/blif.hpp"
#include "net/elaborate.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"
#include "sat/parsolve.hpp"
#include "service/artifacts.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"
#include "util/faultpoint.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace {

/// Tripped by SIGINT/SIGTERM; the engine observes it cooperatively and
/// winds down with FailReason::kCancelled instead of being killed mid-write.
eco::CancelToken g_stop = eco::CancelToken::stoppable();

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ecopatch solve <impl.v> <spec.v> <weights.txt> [--algo A] [--budget S]\n"
               "                 [--patch FILE] [--patched FILE] [--force-structural]\n"
               "                 [--stats-json FILE] [--trace FILE] [--ledger FILE]\n"
               "                 [--jobs N] [--sim-bank 0|1] [--ladder 0|1]\n"
               "                 [--par-sat off|on|racy] [--cec mono|sweep]\n"
               "  ecopatch gen <unit 1..20> <outdir> [--seed N] [--scale N]\n"
               "  ecopatch stats <circuit.{v,blif,aag,aig}>\n"
               "  ecopatch cec <a> <b> [--jobs N] [--cec mono|sweep]\n"
               "  ecopatch convert <in> <out>\n"
               "global options: -v/--verbose (info), -vv (debug),\n"
               "                --fault SITE[:PROB[:SEED]],... (inject faults)\n"
               "exit codes: 0 patched, 1 infeasible/not-equivalent, 2 usage,\n"
               "            3 unknown, 4 front-end error, 5 engine error,\n"
               "            6 observability output (--stats-json/--trace/--ledger)\n"
               "              could not be written (overrides a success exit)\n");
  return 2;
}

std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? "" : path.substr(dot + 1);
}

/// Parses a `--jobs` operand: non-negative integer, 0 = all hardware
/// threads. Returns -1 on a malformed operand.
int parse_jobs(const char* s) {
  if (s == nullptr || *s == '\0') return -1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0 || v > 4096) return -1;
  return v == 0 ? eco::util::hardware_jobs() : static_cast<int>(v);
}

/// Loads any supported circuit format as an AIG.
eco::aig::Aig load_circuit(const std::string& path) {
  const std::string ext = extension_of(path);
  if (ext == "v") return eco::net::elaborate(eco::net::parse_verilog_file(path)).aig;
  if (ext == "blif") return eco::net::parse_blif_file(path);
  if (ext == "aag" || ext == "aig") return eco::aig::read_aiger_file(path);
  throw std::runtime_error("unsupported circuit format: ." + ext);
}

void save_circuit(const std::string& path, const eco::aig::Aig& g) {
  const std::string ext = extension_of(path);
  if (ext == "v") {
    eco::net::write_verilog_file(path, eco::net::aig_to_network(g, "top"));
  } else if (ext == "blif") {
    eco::net::write_blif_file(path, g);
  } else if (ext == "aag" || ext == "aig") {
    eco::aig::write_aiger_file(path, g, /*binary=*/ext == "aig");
  } else {
    throw std::runtime_error("unsupported output format: ." + ext);
  }
}

int cmd_solve(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string impl_path = argv[2], spec_path = argv[3], weights_path = argv[4];
  eco::core::EngineOptions options;
  options.time_budget = 60;
  int jobs = eco::util::default_jobs();
  eco::sat::ParSolveOptions par_opts = eco::sat::ParSolveOptions::defaults();
  std::string patch_path = "patch.v", patched_path, stats_json_path, trace_path, ledger_path;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = parse_jobs(argv[++i]);
      if (jobs < 0) return usage();
    } else if (arg == "--algo" && i + 1 < argc) {
      const std::string algo = argv[++i];
      if (algo == "baseline") options.algorithm = eco::core::Algorithm::kBaseline;
      else if (algo == "minimize") options.algorithm = eco::core::Algorithm::kMinimize;
      else if (algo == "satprune") options.algorithm = eco::core::Algorithm::kSatPruneCegarMin;
      else return usage();
    } else if (arg == "--budget" && i + 1 < argc) {
      options.time_budget = std::atof(argv[++i]);
    } else if (arg == "--patch" && i + 1 < argc) {
      patch_path = argv[++i];
    } else if (arg == "--patched" && i + 1 < argc) {
      patched_path = argv[++i];
    } else if (arg == "--force-structural") {
      options.force_structural = true;
    } else if (arg == "--sim-bank" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v != "0" && v != "1") return usage();
      options.simfilter.enabled = v == "1";
    } else if (arg == "--ladder" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v != "0" && v != "1") return usage();
      options.ladder = v == "1";
    } else if (arg == "--par-sat" && i + 1 < argc) {
      if (!eco::sat::parse_par_mode(argv[++i], par_opts.mode)) return usage();
    } else if (arg == "--cec" && i + 1 < argc) {
      if (!eco::cec::parse_cec_mode(argv[++i], options.cec_mode)) return usage();
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--ledger" && i + 1 < argc) {
      ledger_path = argv[++i];
    } else {
      return usage();
    }
  }
  // Telemetry recording is off by default; any observability output (or an
  // explicit ECO_TELEMETRY=1 in the environment) turns it on for the run.
  if (!stats_json_path.empty() || !trace_path.empty()) eco::telemetry::set_enabled(true);
  // The ledger sink writes its header line on open, so an unwritable path
  // fails here — before the solve burns its budget — with exit code 6.
  if (!ledger_path.empty() && !eco::ledger::set_sink(ledger_path)) {
    std::fprintf(stderr, "ecopatch: cannot write %s: %s\n", ledger_path.c_str(),
                 std::strerror(errno));
    return 6;
  }

  // The shared front-end path of CLI and ecopatchd (service/artifacts.hpp);
  // budget 0 is the one-shot mode: parse fresh, cache nothing. Parse errors
  // propagate as net::ParseError to main's exit-4 mapping, unchanged.
  eco::service::SessionCache cache(0);
  const eco::service::LoadedInputs inputs =
      eco::service::load_inputs(cache, impl_path, spec_path, weights_path);
  const eco::net::Network& impl = inputs.impl->network;
  const eco::net::Network& spec = inputs.spec->network;
  const eco::net::WeightMap& weights = inputs.weights->weights;
  eco::util::Executor executor(jobs);
  options.executor = &executor;
  // run_eco registers the pool for intra-query parallel SAT; the mode knob
  // (default off, env ECO_PAR_SAT, flag --par-sat) decides whether it fires.
  eco::sat::ParSolveOptions::set_defaults(par_opts);
  options.cancel = g_stop;  // Ctrl-C / SIGTERM aborts the run cooperatively
  const eco::core::EcoOutcome outcome = eco::core::run_eco(impl, spec, weights, options);

  // Observability outputs are written for every status, including failures —
  // where the time went matters most when no patch came out.
  eco::log_info("solve: phases window %.2fs qbf %.2fs sat %.2fs structural %.2fs "
                "assemble %.2fs verify %.2fs | %llu sat conflicts in %llu solvers",
                outcome.stats.window_seconds, outcome.stats.qbf_seconds,
                outcome.stats.sat_path_seconds, outcome.stats.structural_seconds,
                outcome.stats.assemble_seconds, outcome.stats.verify_seconds,
                static_cast<unsigned long long>(outcome.stats.sat_conflicts),
                static_cast<unsigned long long>(outcome.stats.sat_solvers));
  eco::telemetry::log_summary();
  // A failed observability write is a hard error (exit 6), not a warning —
  // a monitoring pipeline must not read a truncated/absent file as success.
  bool io_error = false;
  if (!stats_json_path.empty()) {
    // One document: the outcome block plus the flat telemetry snapshot.
    std::string doc = "{\"outcome\":" + eco::core::outcome_to_json(outcome) +
                      ",\"telemetry\":" + eco::telemetry::snapshot_json() + "}";
    std::ofstream out(stats_json_path);
    out << doc << '\n';
    out.flush();
    if (!out) {
      std::fprintf(stderr, "ecopatch: cannot write %s: %s\n", stats_json_path.c_str(),
                   std::strerror(errno));
      io_error = true;
    } else {
      std::printf("stats written to %s\n", stats_json_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    if (!eco::telemetry::write_trace_json(trace_path)) {
      std::fprintf(stderr, "ecopatch: cannot write %s: %s\n", trace_path.c_str(),
                   std::strerror(errno));
      io_error = true;
    } else {
      std::printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }
  if (!ledger_path.empty()) {
    if (!eco::ledger::close_sink()) {
      std::fprintf(stderr, "ecopatch: cannot write %s: %s\n", ledger_path.c_str(),
                   std::strerror(errno));
      io_error = true;
    } else {
      std::printf("ledger written to %s (analyze with `ecoprof report`)\n",
                  ledger_path.c_str());
    }
  }

  using Status = eco::core::EcoOutcome::Status;
  if (outcome.stats.ladder.size() > 1) {
    std::printf("ladder: %zu attempts (", outcome.stats.ladder.size());
    for (size_t i = 0; i < outcome.stats.ladder.size(); ++i)
      std::printf("%s%s=%s", i ? ", " : "", outcome.stats.ladder[i].rung.c_str(),
                  outcome.stats.ladder[i].result.c_str());
    std::printf(")\n");
  }
  if (outcome.status == Status::kError) {
    std::fprintf(stderr, "ecopatch: engine error (%s): %s\n",
                 eco::core::fail_reason_name(outcome.fail_reason),
                 outcome.fail_detail.c_str());
    return 5;
  }
  if (outcome.status == Status::kInfeasible) {
    std::printf("INFEASIBLE: the targets cannot rectify the implementation (method %s)\n",
                outcome.method.c_str());
    return 1;
  }
  if (outcome.status == Status::kUnknown) {
    std::printf("UNKNOWN (%s): no answer within the budgets%s%s\n",
                eco::core::fail_reason_name(outcome.fail_reason),
                outcome.fail_detail.empty() ? "" : ": ",
                outcome.fail_detail.c_str());
    return 3;
  }
  const char* verification =
      outcome.verified ? "verified"
      : outcome.verification == eco::core::EcoOutcome::Verification::kInconclusive
          ? "verification inconclusive"
          : "VERIFICATION REFUTED";
  std::printf("PATCHED (%s) in %.2fs — method %s, cost %lld, %u gates\n", verification,
              outcome.seconds, outcome.method.c_str(),
              static_cast<long long>(outcome.total_cost), outcome.patch_gates);
  for (const auto& target : outcome.targets) {
    std::printf("  %-16s <= %s\n", target.target_name.c_str(),
                target.sop.empty() ? "(structural circuit)" : target.sop.c_str());
  }
  eco::net::write_verilog_file(patch_path,
                               eco::net::aig_to_network(outcome.patch_module, "patch"));
  std::printf("patch written to %s\n", patch_path.c_str());
  if (!patched_path.empty()) {
    save_circuit(patched_path, outcome.patched_impl);
    std::printf("patched implementation written to %s\n", patched_path.c_str());
  }
  return io_error ? 6 : 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) return usage();
  const int unit_index = std::atoi(argv[2]) - 1;
  const std::string outdir = argv[3];
  uint64_t seed = 20170912;
  int scale = 1;
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
      if (scale < 1 || scale > 1000) return usage();
    } else {
      return usage();
    }
  }
  const eco::benchgen::EcoUnit unit = eco::benchgen::make_unit(unit_index, seed, scale);
  std::filesystem::create_directories(outdir);
  eco::net::write_verilog_file(outdir + "/impl.v", unit.impl);
  eco::net::write_verilog_file(outdir + "/spec.v", unit.spec);
  eco::net::write_weights_file(outdir + "/weights.txt", unit.weights);
  std::printf("%s: %zu-gate impl, %zu-gate spec, %d target(s), weights %s -> %s/\n",
              unit.name.c_str(), unit.impl.num_gates(), unit.spec.num_gates(),
              unit.num_targets, eco::benchgen::weight_type_name(unit.weight_type),
              outdir.c_str());
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const eco::aig::Aig g = load_circuit(argv[2]);
  const auto levels = g.levels();
  uint32_t depth = 0;
  for (uint32_t o = 0; o < g.num_pos(); ++o)
    depth = std::max(depth, levels[eco::aig::lit_node(g.po_lit(o))]);
  std::printf("%s: %u PIs, %u POs, %u AND nodes, depth %u\n", argv[2], g.num_pis(),
              g.num_pos(), g.num_ands(), depth);
  return 0;
}

int cmd_cec(int argc, char** argv) {
  if (argc < 4) return usage();
  int jobs = eco::util::default_jobs();
  eco::cec::CecOptions cec_opts = eco::cec::CecOptions::defaults();
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs = parse_jobs(argv[++i]);
      if (jobs < 0) return usage();
    } else if (!std::strcmp(argv[i], "--cec") && i + 1 < argc) {
      if (!eco::cec::parse_cec_mode(argv[++i], cec_opts.mode)) return usage();
    } else {
      return usage();
    }
  }
  // check_equivalence reads the process defaults for its sweep escalation.
  eco::cec::CecOptions::set_defaults(cec_opts);
  const eco::aig::Aig a = load_circuit(argv[2]);
  const eco::aig::Aig b = load_circuit(argv[3]);
  eco::util::Executor executor(jobs);
  const auto result = eco::cec::check_equivalence(a, b, /*conflict_budget=*/-1,
                                                  /*sim_rounds=*/8, {}, &executor);
  switch (result.status) {
    case eco::cec::Status::kEquivalent:
      std::printf("EQUIVALENT\n");
      return 0;
    case eco::cec::Status::kNotEquivalent: {
      std::printf("NOT EQUIVALENT; counterexample:");
      for (uint32_t i = 0; i < a.num_pis(); ++i)
        std::printf(" %s=%d", a.pi_name(i).empty() ? ("i" + std::to_string(i)).c_str()
                                                   : a.pi_name(i).c_str(),
                    result.counterexample[i] ? 1 : 0);
      std::printf("\n");
      return 1;
    }
    case eco::cec::Status::kUnknown:
      std::printf("UNKNOWN (budget)\n");
      return 3;
  }
  return 3;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 4) return usage();
  save_circuit(argv[3], load_circuit(argv[2]).cleanup());
  std::printf("%s -> %s\n", argv[2], argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global flags (valid in any position) before dispatch.
  int verbosity = 0;
  int out_argc = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") {
      ++verbosity;
    } else if (arg == "-vv") {
      verbosity += 2;
    } else if (arg == "--fault" && i + 1 < argc) {
      std::string error;
      if (!eco::fault::arm(argv[++i], &error)) {
        std::fprintf(stderr, "ecopatch: --fault: %s\n", error.c_str());
        return 2;
      }
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (verbosity >= 2) eco::set_log_level(eco::LogLevel::kDebug);
  else if (verbosity == 1) eco::set_log_level(eco::LogLevel::kInfo);

  // Cooperative shutdown: the handler performs one atomic store; the engine
  // notices at its next cancellation poll.
  std::signal(SIGINT, [](int) { g_stop.request_stop(); });
  std::signal(SIGTERM, [](int) { g_stop.request_stop(); });

  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "solve") return cmd_solve(argc, argv);
    if (command == "gen") return cmd_gen(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "cec") return cmd_cec(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
  } catch (const eco::net::ParseError& e) {
    std::fprintf(stderr, "ecopatch: parse error: %s\n", e.what());
    return 4;
  } catch (const eco::net::InputError& e) {
    std::fprintf(stderr, "ecopatch: invalid input: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecopatch: %s\n", e.what());
    return 4;
  }
  return usage();
}
