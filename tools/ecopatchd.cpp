// ecopatchd — the long-lived patch service (docs/SERVICE.md).
//
//   ecopatchd [options]
//       Accepts line-delimited JSON job requests on stdin and writes one
//       JSON response line per request to stdout (responses may interleave
//       across jobs; match them by "id"). EOF drains and exits.
//   ecopatchd --socket PATH [options]
//       Same protocol over a local Unix stream socket: each connected
//       client sends request lines and receives its own responses.
//
// Options:
//   --jobs N           concurrent jobs (default 2)
//   --queue N          admission cap, queued + running (default 64)
//   --budget S         default per-job wall budget in seconds (default 60)
//   --max-budget S     ceiling for requested budgets (default: none)
//   --cache-mb MB      session-cache budget (default 256; 0 = cold mode)
//   --no-warm          do not feed harvested patterns back into sessions
//   --drain-grace S    drain: seconds to wait before cancelling (default 30)
//   --ledger FILE      per-query JSONL ledger sink (flushed on drain)
//   --par-engine       give jobs the pool for intra-job parallelism
//   --isolate N        run jobs in N forked worker processes (default 0 =
//                      in-process; see docs/SERVICE.md "Worker isolation")
//   --retries K        crash/watchdog retries per job, fresh worker each
//   --kill-factor F    watchdog SIGKILL at budget x F (default 2)
//   --recycle-jobs N   replace a worker after N jobs (default: never)
//   --recycle-rss-mb M replace a worker whose RSS exceeds M MiB
//
// Global flags: -v/--verbose, -vv, --fault SPEC (as in ecopatch).
//
// Each client's receive buffer is capped at 1 MiB per line: an overlong
// line answers `bad_request` and closes that client (stdin mode drains).
//
// SIGTERM/SIGINT trigger a graceful drain: admission stops, in-flight jobs
// get drain-grace seconds to finish, then cooperative cancellation; every
// admitted job still delivers its response, worker processes are reaped,
// the ledger is flushed, and the process exits 0. Exit codes: 0 clean
// drain, 2 usage (incl. malformed option values), 6 unusable socket or
// ledger path.

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/daemon.hpp"
#include "service/lines.hpp"
#include "util/faultpoint.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"

namespace {

/// Set by SIGTERM/SIGINT; the poll loops notice and start the drain.
volatile std::sig_atomic_t g_signal = 0;

int usage() {
  std::fprintf(stderr,
               "usage: ecopatchd [--socket PATH] [--jobs N] [--queue N]\n"
               "                 [--budget S] [--max-budget S] [--cache-mb MB]\n"
               "                 [--no-warm] [--drain-grace S] [--ledger FILE]\n"
               "                 [--par-engine] [--isolate N] [--retries K]\n"
               "                 [--kill-factor F] [--recycle-jobs N]\n"
               "                 [--recycle-rss-mb M] [-v|-vv] [--fault SPEC]\n");
  return 2;
}

// Strict option-value parsing: the old atoi/atof path silently read
// "--jobs 4x" as 4 and "--budget nan" as anything — a robustness daemon
// must reject a command line it does not fully understand. Trailing
// garbage, empty strings, out-of-range and sub-minimum values all fail.

bool parse_long(const char* s, long min_value, long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min_value) return false;
  *out = v;
  return true;
}

bool parse_seconds(const char* s, double min_value, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  // !(v >= min) also rejects NaN.
  if (errno != 0 || end == s || *end != '\0' || !(v >= min_value)) return false;
  *out = v;
  return true;
}

int bad_value(const std::string& flag, const char* value) {
  std::fprintf(stderr, "ecopatchd: %s: invalid value '%s'\n", flag.c_str(),
               value == nullptr ? "" : value);
  return usage();
}

/// One connected peer (a socket client, or stdout for the stdin mode).
/// Response writers run on daemon worker threads, so every write goes
/// through the per-client lock, and a closed client swallows writes instead
/// of touching a recycled descriptor.
struct Client {
  explicit Client(int fd) : fd(fd) {}
  std::mutex mu;
  int fd = -1;
  /// Capped partial-line receive buffer (poll thread only): a peer
  /// streaming an unbounded line costs at most kDefaultMaxLine bytes.
  eco::service::LineSplitter rx;

  void send_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (fd < 0) return;  // client already gone; the response is dropped
    std::string out = line;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        close_locked();
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  void close_now() {
    std::lock_guard<std::mutex> lock(mu);
    close_locked();
  }

  bool closed() {
    std::lock_guard<std::mutex> lock(mu);
    return fd < 0;
  }

 private:
  void close_locked() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

/// Feeds \p len received bytes through \p c's capped line splitter into the
/// daemon. Returns false when the client overflowed its 1 MiB line cap: the
/// overflow is answered with `bad_request` and the caller must drop the
/// client (lines completed before the oversized one were still submitted).
bool feed(eco::service::Daemon& daemon, const std::shared_ptr<Client>& c,
          const char* data, size_t len) {
  const bool ok = c->rx.append(data, len, [&](const std::string& line) {
    daemon.submit_line(line,
                       [c](std::string response) { c->send_line(response); });
  });
  if (!ok) {
    c->send_line(eco::service::error_response(
        "", "bad_request",
        "request line exceeds " + std::to_string(c->rx.max_line()) + " bytes"));
  }
  return ok;
}

int run_stdin(eco::service::Daemon& daemon) {
  // stdout is the shared response channel; Client serializes the writers.
  auto out = std::make_shared<Client>(STDOUT_FILENO);
  std::string buf(1 << 16, '\0');
  bool eof = false;
  // draining() covers the `drain` control op: in stdin mode there is no
  // other client to serve, so an acknowledged drain ends the read loop just
  // like EOF or a signal would.
  while (!eof && g_signal == 0 && !daemon.draining()) {
    struct pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (r < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_signal
      break;
    }
    if (r == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    // Responses go to out->fd (stdout); an oversized stdin line is answered
    // bad_request and treated like EOF — the stream is unparseable past it.
    if (!feed(daemon, out, buf.data(), static_cast<size_t>(n))) break;
  }
  if (g_signal != 0)
    eco::log_info("ecopatchd: signal %d, draining %zu in-flight job(s)",
                  static_cast<int>(g_signal), daemon.in_flight());
  daemon.drain();  // delivers every admitted response through `out`
  return 0;
}

int run_socket(eco::service::Daemon& daemon, const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "ecopatchd: socket: %s\n", std::strerror(errno));
    return 6;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ecopatchd: socket path too long: %s\n", path.c_str());
    ::close(listen_fd);
    return 6;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::fprintf(stderr, "ecopatchd: cannot listen on %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd);
    return 6;
  }
  eco::log_info("ecopatchd: listening on %s", path.c_str());

  std::vector<std::shared_ptr<Client>> clients;
  std::string buf(1 << 16, '\0');
  while (g_signal == 0 && !daemon.draining()) {
    // clients[i] pairs with pfds[i + 1] for this whole iteration: the count
    // is snapshotted before accept() can grow the vector, and removals are
    // deferred to a compaction pass so indices never shift mid-loop. A
    // freshly accepted client is first polled on the next iteration.
    const size_t polled = clients.size();
    std::vector<pollfd> pfds;
    pfds.reserve(polled + 1);
    pfds.push_back({listen_fd, POLLIN, 0});
    for (const auto& c : clients) pfds.push_back({c->fd, POLLIN, 0});
    const int r = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) clients.push_back(std::make_shared<Client>(fd));
    }
    for (size_t i = 0; i < polled; ++i) {
      const short ev = pfds[i + 1].revents;
      if (ev == 0) continue;
      auto& c = clients[i];
      bool gone = (ev & (POLLERR | POLLNVAL)) != 0;
      if (!gone && (ev & (POLLIN | POLLHUP)) != 0) {
        const ssize_t n = ::read(c->fd, buf.data(), buf.size());
        if (n > 0) {
          // Line-cap overflow: bad_request was sent; drop the client.
          if (!feed(daemon, c, buf.data(), static_cast<size_t>(n))) gone = true;
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          gone = true;
        }
      }
      if (gone) c->close_now();  // fd becomes -1; compacted below
    }
    clients.erase(std::remove_if(clients.begin(), clients.end(),
                                 [](const std::shared_ptr<Client>& c) {
                                   return c->closed();
                                 }),
                  clients.end());
  }
  if (g_signal != 0)
    eco::log_info("ecopatchd: signal %d, draining %zu in-flight job(s)",
                  static_cast<int>(g_signal), daemon.in_flight());
  // In-flight responses still flow to their (open) clients during drain.
  daemon.drain();
  for (const auto& c : clients) c->close_now();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int verbosity = 0;
  eco::service::ServiceOptions options;
  std::string socket_path;
  std::string ledger_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") ++verbosity;
    else if (arg == "-vv") verbosity += 2;
    else if (arg == "--fault" && i + 1 < argc) {
      std::string error;
      if (!eco::fault::arm(argv[++i], &error)) {
        std::fprintf(stderr, "ecopatchd: --fault: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
    else if (arg == "--no-warm") options.warm_patterns = false;
    else if (arg == "--par-engine") options.engine_parallel = true;
    else if (i + 1 < argc &&
             (arg == "--jobs" || arg == "--queue" || arg == "--budget" ||
              arg == "--max-budget" || arg == "--cache-mb" ||
              arg == "--drain-grace" || arg == "--ledger" ||
              arg == "--isolate" || arg == "--retries" ||
              arg == "--kill-factor" || arg == "--recycle-jobs" ||
              arg == "--recycle-rss-mb")) {
      const char* value = argv[++i];
      long n = 0;
      double s = 0;
      if (arg == "--ledger") ledger_path = value;
      else if (arg == "--jobs") {
        if (!parse_long(value, 1, &n)) return bad_value(arg, value);
        options.jobs = static_cast<int>(n);
      } else if (arg == "--queue") {
        if (!parse_long(value, 1, &n)) return bad_value(arg, value);
        options.queue_depth = static_cast<size_t>(n);
      } else if (arg == "--budget") {
        if (!parse_seconds(value, 0, &s)) return bad_value(arg, value);
        options.default_budget_seconds = s;
      } else if (arg == "--max-budget") {
        if (!parse_seconds(value, 0, &s)) return bad_value(arg, value);
        options.max_budget_seconds = s;
      } else if (arg == "--cache-mb") {
        if (!parse_long(value, 0, &n)) return bad_value(arg, value);
        options.cache_budget_bytes = static_cast<uint64_t>(n) << 20;
      } else if (arg == "--drain-grace") {
        if (!parse_seconds(value, 0, &s)) return bad_value(arg, value);
        options.drain_grace_seconds = s;
      } else if (arg == "--isolate") {
        if (!parse_long(value, 0, &n)) return bad_value(arg, value);
        options.worker.workers = static_cast<int>(n);
      } else if (arg == "--retries") {
        if (!parse_long(value, 0, &n)) return bad_value(arg, value);
        options.worker.retries = static_cast<int>(n);
      } else if (arg == "--kill-factor") {
        if (!parse_seconds(value, 1.0, &s)) return bad_value(arg, value);
        options.worker.kill_factor = s;
      } else if (arg == "--recycle-jobs") {
        if (!parse_long(value, 1, &n)) return bad_value(arg, value);
        options.worker.recycle_jobs = static_cast<uint64_t>(n);
      } else {  // --recycle-rss-mb
        if (!parse_long(value, 1, &n)) return bad_value(arg, value);
        options.worker.recycle_rss_bytes = static_cast<uint64_t>(n) << 20;
      }
    } else
      return usage();
  }
  if (verbosity >= 2) eco::set_log_level(eco::LogLevel::kDebug);
  else if (verbosity == 1) eco::set_log_level(eco::LogLevel::kInfo);

  if (!ledger_path.empty() && !eco::ledger::set_sink(ledger_path)) {
    std::fprintf(stderr, "ecopatchd: cannot write %s: %s\n", ledger_path.c_str(),
                 std::strerror(errno));
    return 6;
  }

  // One atomic store; the poll loop notices within its 200 ms tick and runs
  // the graceful drain (daemon.cpp). A second signal during the drain is
  // absorbed — drain already cancels after the grace.
  std::signal(SIGINT, [](int sig) { g_signal = sig; });
  std::signal(SIGTERM, [](int sig) { g_signal = sig; });
  std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors

  eco::service::Daemon daemon(options);
  const int rc = socket_path.empty() ? run_stdin(daemon)
                                     : run_socket(daemon, socket_path);
  eco::ledger::close_sink();
  return rc;
}
