// ecopatchd — the long-lived patch service (docs/SERVICE.md).
//
//   ecopatchd [options]
//       Accepts line-delimited JSON job requests on stdin and writes one
//       JSON response line per request to stdout (responses may interleave
//       across jobs; match them by "id"). EOF drains and exits.
//   ecopatchd --socket PATH [options]
//       Same protocol over a local Unix stream socket: each connected
//       client sends request lines and receives its own responses.
//
// Options:
//   --jobs N           concurrent jobs (default 2)
//   --queue N          admission cap, queued + running (default 64)
//   --budget S         default per-job wall budget in seconds (default 60)
//   --max-budget S     ceiling for requested budgets (default: none)
//   --cache-mb MB      session-cache budget (default 256; 0 = cold mode)
//   --no-warm          do not feed harvested patterns back into sessions
//   --drain-grace S    drain: seconds to wait before cancelling (default 30)
//   --ledger FILE      per-query JSONL ledger sink (flushed on drain)
//   --par-engine       give jobs the pool for intra-job parallelism
//
// Global flags: -v/--verbose, -vv, --fault SPEC (as in ecopatch).
//
// SIGTERM/SIGINT trigger a graceful drain: admission stops, in-flight jobs
// get drain-grace seconds to finish, then cooperative cancellation; every
// admitted job still delivers its response, the ledger is flushed, and the
// process exits 0. Exit codes: 0 clean drain, 2 usage, 6 unusable socket
// or ledger path.

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/daemon.hpp"
#include "util/faultpoint.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"

namespace {

/// Set by SIGTERM/SIGINT; the poll loops notice and start the drain.
volatile std::sig_atomic_t g_signal = 0;

int usage() {
  std::fprintf(stderr,
               "usage: ecopatchd [--socket PATH] [--jobs N] [--queue N]\n"
               "                 [--budget S] [--max-budget S] [--cache-mb MB]\n"
               "                 [--no-warm] [--drain-grace S] [--ledger FILE]\n"
               "                 [--par-engine] [-v|-vv] [--fault SPEC]\n");
  return 2;
}

/// One connected peer (a socket client, or stdout for the stdin mode).
/// Response writers run on daemon worker threads, so every write goes
/// through the per-client lock, and a closed client swallows writes instead
/// of touching a recycled descriptor.
struct Client {
  explicit Client(int fd) : fd(fd) {}
  std::mutex mu;
  int fd = -1;
  std::string rx;  ///< partial-line receive buffer (poll thread only)

  void send_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (fd < 0) return;  // client already gone; the response is dropped
    std::string out = line;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        close_locked();
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  void close_now() {
    std::lock_guard<std::mutex> lock(mu);
    close_locked();
  }

  bool closed() {
    std::lock_guard<std::mutex> lock(mu);
    return fd < 0;
  }

 private:
  void close_locked() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

/// Splits complete lines out of \p c's receive buffer into the daemon.
void feed(eco::service::Daemon& daemon, const std::shared_ptr<Client>& c) {
  size_t start = 0;
  for (;;) {
    const size_t nl = c->rx.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = c->rx.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    daemon.submit_line(line, [c](std::string response) { c->send_line(response); });
  }
  c->rx.erase(0, start);
}

int run_stdin(eco::service::Daemon& daemon) {
  // stdout is the shared response channel; Client serializes the writers.
  auto out = std::make_shared<Client>(STDOUT_FILENO);
  std::string buf(1 << 16, '\0');
  bool eof = false;
  while (!eof && g_signal == 0) {
    struct pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (r < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_signal
      break;
    }
    if (r == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    out->rx.append(buf.data(), static_cast<size_t>(n));
    // Reuse Client::rx as the stdin line buffer; responses go to out->fd.
    feed(daemon, out);
  }
  if (g_signal != 0)
    eco::log_info("ecopatchd: signal %d, draining %zu in-flight job(s)",
                  static_cast<int>(g_signal), daemon.in_flight());
  daemon.drain();  // delivers every admitted response through `out`
  return 0;
}

int run_socket(eco::service::Daemon& daemon, const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "ecopatchd: socket: %s\n", std::strerror(errno));
    return 6;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ecopatchd: socket path too long: %s\n", path.c_str());
    ::close(listen_fd);
    return 6;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::fprintf(stderr, "ecopatchd: cannot listen on %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd);
    return 6;
  }
  eco::log_info("ecopatchd: listening on %s", path.c_str());

  std::vector<std::shared_ptr<Client>> clients;
  std::string buf(1 << 16, '\0');
  while (g_signal == 0 && !daemon.draining()) {
    // clients[i] pairs with pfds[i + 1] for this whole iteration: the count
    // is snapshotted before accept() can grow the vector, and removals are
    // deferred to a compaction pass so indices never shift mid-loop. A
    // freshly accepted client is first polled on the next iteration.
    const size_t polled = clients.size();
    std::vector<pollfd> pfds;
    pfds.reserve(polled + 1);
    pfds.push_back({listen_fd, POLLIN, 0});
    for (const auto& c : clients) pfds.push_back({c->fd, POLLIN, 0});
    const int r = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) clients.push_back(std::make_shared<Client>(fd));
    }
    for (size_t i = 0; i < polled; ++i) {
      const short ev = pfds[i + 1].revents;
      if (ev == 0) continue;
      auto& c = clients[i];
      bool gone = (ev & (POLLERR | POLLNVAL)) != 0;
      if (!gone && (ev & (POLLIN | POLLHUP)) != 0) {
        const ssize_t n = ::read(c->fd, buf.data(), buf.size());
        if (n > 0) {
          c->rx.append(buf.data(), static_cast<size_t>(n));
          feed(daemon, c);
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          gone = true;
        }
      }
      if (gone) c->close_now();  // fd becomes -1; compacted below
    }
    clients.erase(std::remove_if(clients.begin(), clients.end(),
                                 [](const std::shared_ptr<Client>& c) {
                                   return c->closed();
                                 }),
                  clients.end());
  }
  if (g_signal != 0)
    eco::log_info("ecopatchd: signal %d, draining %zu in-flight job(s)",
                  static_cast<int>(g_signal), daemon.in_flight());
  // In-flight responses still flow to their (open) clients during drain.
  daemon.drain();
  for (const auto& c : clients) c->close_now();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int verbosity = 0;
  eco::service::ServiceOptions options;
  std::string socket_path;
  std::string ledger_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") ++verbosity;
    else if (arg == "-vv") verbosity += 2;
    else if (arg == "--fault" && i + 1 < argc) {
      std::string error;
      if (!eco::fault::arm(argv[++i], &error)) {
        std::fprintf(stderr, "ecopatchd: --fault: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
    else if (arg == "--jobs" && i + 1 < argc) options.jobs = std::atoi(argv[++i]);
    else if (arg == "--queue" && i + 1 < argc)
      options.queue_depth = static_cast<size_t>(std::atoll(argv[++i]));
    else if (arg == "--budget" && i + 1 < argc)
      options.default_budget_seconds = std::atof(argv[++i]);
    else if (arg == "--max-budget" && i + 1 < argc)
      options.max_budget_seconds = std::atof(argv[++i]);
    else if (arg == "--cache-mb" && i + 1 < argc)
      options.cache_budget_bytes = static_cast<uint64_t>(std::atoll(argv[++i])) << 20;
    else if (arg == "--no-warm") options.warm_patterns = false;
    else if (arg == "--drain-grace" && i + 1 < argc)
      options.drain_grace_seconds = std::atof(argv[++i]);
    else if (arg == "--ledger" && i + 1 < argc) ledger_path = argv[++i];
    else if (arg == "--par-engine") options.engine_parallel = true;
    else return usage();
  }
  if (options.jobs < 1 || options.queue_depth < 1) return usage();
  if (verbosity >= 2) eco::set_log_level(eco::LogLevel::kDebug);
  else if (verbosity == 1) eco::set_log_level(eco::LogLevel::kInfo);

  if (!ledger_path.empty() && !eco::ledger::set_sink(ledger_path)) {
    std::fprintf(stderr, "ecopatchd: cannot write %s: %s\n", ledger_path.c_str(),
                 std::strerror(errno));
    return 6;
  }

  // One atomic store; the poll loop notices within its 200 ms tick and runs
  // the graceful drain (daemon.cpp). A second signal during the drain is
  // absorbed — drain already cancels after the grace.
  std::signal(SIGINT, [](int sig) { g_signal = sig; });
  std::signal(SIGTERM, [](int sig) { g_signal = sig; });
  std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors

  eco::service::Daemon daemon(options);
  const int rc = socket_path.empty() ? run_stdin(daemon)
                                     : run_socket(daemon, socket_path);
  eco::ledger::close_sink();
  return rc;
}
