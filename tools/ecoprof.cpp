/// \file ecoprof.cpp
/// \brief Hotspot and regression analyzer over the observability artifacts.
///
/// Two subcommands:
///
///   ecoprof report <ledger.jsonl> [--top K]
///     Reads an `ecopatch-ledger-v1` query ledger and prints a hotspot
///     table by purpose, a phase breakdown, log-bucketed latency
///     histograms, and the top-K slowest queries with their instance
///     fingerprints. Exit 0 on success, 2 on unreadable/invalid input.
///
///   ecoprof diff <old.json> <new.json> [--warn-only] [--threshold M=F]
///     Noise-aware comparison of two bench files (`ecopatch-bench-table1-v1`,
///     `ecopatch-bench-cec-v1`, or `ecopatch-bench-service-v1`).
///     Runs are matched by (unit, weights, algorithm); exact metrics
///     (ok/verified/method/cost/gates) regress on any change for the worse,
///     timing and counter metrics regress past per-metric relative
///     thresholds with absolute floors that discard measurement noise.
///     Exit 0 when clean (or --warn-only), 1 on regression, 2 on a
///     schema/usage error.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/jsonr.hpp"
#include "util/ledger.hpp"

namespace {

using eco::JsonValue;

int usage() {
  std::fprintf(stderr,
               "usage: ecoprof report <ledger.jsonl> [--top K]\n"
               "       ecoprof diff <old.json> <new.json> [--warn-only]\n"
               "                    [--threshold METRIC=FRACTION]...\n"
               "\n"
               "report: hotspot table, latency histograms, and slowest queries\n"
               "        from an ecopatch-ledger-v1 JSONL file.\n"
               "diff:   noise-aware regression check between two\n"
               "        ecopatch-bench-table1-v1, ecopatch-bench-cec-v1, or\n"
               "        ecopatch-bench-service-v1 files (old = baseline;\n"
               "        both sides one schema).\n"
               "        Exits 1 on regression, 2 on schema/usage errors.\n"
               "        Tunable metrics: seconds cpu_seconds conflicts\n"
               "        decisions propagations p50_ms p95_ms p99_ms\n"
               "        throughput_jps (regresses downward)\n");
  return 2;
}

// ---- report -------------------------------------------------------------

struct LedgerRow {
  std::string kind, purpose, result, phase, cancel;
  double wall = 0, cpu = 0;
  uint64_t conflicts = 0, decisions = 0, propagations = 0;
  uint64_t vars = 0, clauses = 0, seq = 0;
  bool sim_hit = false;
  // portfolio_attempt / cube_solve rows only (sat/parsolve.hpp workers).
  uint64_t par_imported = 0;
  bool par_winner = false;
};

struct Agg {
  uint64_t count = 0;
  uint64_t sim_hits = 0;
  double wall = 0, cpu = 0;
  uint64_t conflicts = 0;
  double max_wall = 0;
};

/// Power-of-10 latency bucket index for \p seconds: 0 = <1us, then one per
/// decade up to >=10s.
constexpr int kNumBuckets = 9;
const char* const kBucketLabels[kNumBuckets] = {
    "   <1us", "1-10us", "10-100us", "0.1-1ms", "1-10ms",
    "10-100ms", "0.1-1s", "1-10s", "  >=10s"};

int bucket_of(double seconds) {
  if (seconds < 1e-6) return 0;
  const int b = static_cast<int>(std::floor(std::log10(seconds))) + 7;  // 1e-6 -> 1
  return std::min(std::max(b, 1), kNumBuckets - 1);
}

int cmd_report(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "ecoprof: unknown report option '%s'\n", argv[i]);
      return usage();
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "ecoprof: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::vector<LedgerRow> rows;
  std::string git_commit = "unknown";
  bool git_dirty = false;
  bool saw_header = false;
  size_t pos = 0, lineno = 0;
  while (pos < content.size()) {
    size_t end = content.find('\n', pos);
    if (end == std::string::npos) end = content.size();
    const std::string_view line(content.data() + pos, end - pos);
    pos = end + 1;
    ++lineno;
    if (line.empty()) continue;
    std::string err;
    const std::optional<JsonValue> v = eco::json_parse(line, &err);
    if (!v) {
      std::fprintf(stderr, "ecoprof: %s:%zu: %s\n", path.c_str(), lineno, err.c_str());
      return 2;
    }
    if (!saw_header) {
      saw_header = true;
      const std::string& schema = (*v)["schema"].as_string();
      if (schema != "ecopatch-ledger-v1") {
        std::fprintf(stderr, "ecoprof: %s: expected schema ecopatch-ledger-v1, got '%s'\n",
                     path.c_str(), schema.c_str());
        return 2;
      }
      if (v->contains("git_commit")) git_commit = (*v)["git_commit"].as_string();
      git_dirty = (*v)["git_dirty"].as_bool();
      continue;
    }
    LedgerRow r;
    r.kind = (*v)["kind"].as_string();
    r.purpose = (*v)["purpose"].as_string();
    r.result = (*v)["result"].as_string();
    r.phase = (*v)["phase"].as_string();
    r.cancel = (*v)["cancel"].as_string();
    r.wall = (*v)["wall_seconds"].as_number();
    r.cpu = (*v)["cpu_seconds"].as_number();
    r.conflicts = static_cast<uint64_t>((*v)["conflicts"].as_number());
    r.decisions = static_cast<uint64_t>((*v)["decisions"].as_number());
    r.propagations = static_cast<uint64_t>((*v)["propagations"].as_number());
    r.vars = static_cast<uint64_t>((*v)["vars"].as_number());
    r.clauses = static_cast<uint64_t>((*v)["clauses"].as_number());
    r.seq = static_cast<uint64_t>((*v)["seq"].as_number());
    r.sim_hit = (*v)["sim_hit"].as_bool();
    if (v->contains("par_imported"))
      r.par_imported = static_cast<uint64_t>((*v)["par_imported"].as_number());
    if (v->contains("par_winner")) r.par_winner = (*v)["par_winner"].as_bool();
    rows.push_back(std::move(r));
  }
  if (!saw_header) {
    std::fprintf(stderr, "ecoprof: %s: empty ledger (no header line)\n", path.c_str());
    return 2;
  }

  // Attribution totals come from solve records only: iteration/check records
  // aggregate the same underlying solves and would double-count.
  double solve_wall = 0, tagged_wall = 0;
  uint64_t solves = 0;
  std::map<std::string, Agg> by_purpose;
  std::map<std::string, Agg> by_phase;
  std::vector<const LedgerRow*> solve_rows;
  uint64_t buckets[kNumBuckets] = {};
  // Parallel-SAT worker rows aggregate separately: a portfolio_attempt /
  // cube_solve row is speculative CPU burned alongside the solve record its
  // escalation belongs to, so folding it into the solve attribution would
  // double-count the query's wall time.
  struct ParAgg {
    uint64_t count = 0, winners = 0, imported = 0, conflicts = 0;
    double wall = 0, cpu = 0;
  };
  std::map<std::string, ParAgg> par_kinds;
  for (const LedgerRow& r : rows) {
    if (r.kind == "sim_hit") {
      Agg& a = by_purpose[r.purpose];
      ++a.count;
      ++a.sim_hits;
      continue;
    }
    if (r.kind == "portfolio_attempt" || r.kind == "cube_solve") {
      ParAgg& a = par_kinds[r.kind];
      ++a.count;
      a.winners += r.par_winner ? 1 : 0;
      a.imported += r.par_imported;
      a.conflicts += r.conflicts;
      a.wall += r.wall;
      a.cpu += r.cpu;
      continue;
    }
    if (r.kind != "solve") continue;
    ++solves;
    solve_wall += r.wall;
    if (r.purpose != "unknown") tagged_wall += r.wall;
    Agg& a = by_purpose[r.purpose];
    ++a.count;
    a.wall += r.wall;
    a.cpu += r.cpu;
    a.conflicts += r.conflicts;
    a.max_wall = std::max(a.max_wall, r.wall);
    Agg& p = by_phase[r.phase.empty() ? "(none)" : r.phase];
    ++p.count;
    p.wall += r.wall;
    p.conflicts += r.conflicts;
    ++buckets[bucket_of(r.wall)];
    solve_rows.push_back(&r);
  }

  std::printf("ledger: %s\n", path.c_str());
  std::printf("built from commit %s%s\n", git_commit.c_str(), git_dirty ? " (dirty)" : "");
  std::printf("%zu records, %" PRIu64 " solves, %.3fs total solver wall time\n\n",
              rows.size(), solves, solve_wall);

  // Hotspot table by purpose, heaviest first.
  std::vector<std::pair<std::string, Agg>> purposes(by_purpose.begin(), by_purpose.end());
  std::sort(purposes.begin(), purposes.end(),
            [](const auto& a, const auto& b) { return a.second.wall > b.second.wall; });
  std::printf("%-14s %8s %8s %10s %10s %12s %10s %7s\n", "purpose", "queries", "sim_hits",
              "wall_s", "cpu_s", "conflicts", "max_s", "wall%");
  for (const auto& [name, a] : purposes) {
    std::printf("%-14s %8" PRIu64 " %8" PRIu64 " %10.3f %10.3f %12" PRIu64 " %10.3f %6.1f%%\n",
                name.c_str(), a.count, a.sim_hits, a.wall, a.cpu, a.conflicts, a.max_wall,
                solve_wall > 0 ? 100.0 * a.wall / solve_wall : 0.0);
  }
  std::printf("\ntagged attribution: %.1f%% of solver wall time\n",
              solve_wall > 0 ? 100.0 * tagged_wall / solve_wall : 100.0);

  // Parallel-SAT workers (speculative CPU, excluded from the tables above).
  if (!par_kinds.empty()) {
    std::printf("\nparallel SAT workers (not counted in solve attribution):\n");
    std::printf("%-18s %8s %8s %10s %10s %12s %9s\n", "kind", "workers", "winners",
                "wall_s", "cpu_s", "conflicts", "imported");
    for (const auto& [name, a] : par_kinds)
      std::printf("%-18s %8" PRIu64 " %8" PRIu64 " %10.3f %10.3f %12" PRIu64 " %9" PRIu64
                  "\n",
                  name.c_str(), a.count, a.winners, a.wall, a.cpu, a.conflicts, a.imported);
  }

  // Phase breakdown (top 12 by wall time).
  std::vector<std::pair<std::string, Agg>> phases(by_phase.begin(), by_phase.end());
  std::sort(phases.begin(), phases.end(),
            [](const auto& a, const auto& b) { return a.second.wall > b.second.wall; });
  std::printf("\n%-40s %8s %10s %12s\n", "phase path", "solves", "wall_s", "conflicts");
  for (size_t i = 0; i < phases.size() && i < 12; ++i)
    std::printf("%-40s %8" PRIu64 " %10.3f %12" PRIu64 "\n", phases[i].first.c_str(),
                phases[i].second.count, phases[i].second.wall, phases[i].second.conflicts);

  // Log-bucketed latency histogram.
  std::printf("\nsolve latency histogram:\n");
  uint64_t max_count = 1;
  for (const uint64_t c : buckets) max_count = std::max(max_count, c);
  for (int b = 0; b < kNumBuckets; ++b) {
    const int bar = static_cast<int>(50.0 * static_cast<double>(buckets[b]) /
                                     static_cast<double>(max_count));
    std::printf("  %-9s %8" PRIu64 " %.*s\n", kBucketLabels[b], buckets[b], bar,
                "##################################################");
  }

  // Top-K slowest queries with instance fingerprints.
  std::sort(solve_rows.begin(), solve_rows.end(),
            [](const LedgerRow* a, const LedgerRow* b) { return a->wall > b->wall; });
  std::printf("\ntop %zu slowest queries:\n", std::min(top_k, solve_rows.size()));
  std::printf("  %8s %-14s %10s %8s %8s %10s %-6s %s\n", "seq", "purpose", "wall_s", "vars",
              "clauses", "conflicts", "result", "phase");
  for (size_t i = 0; i < solve_rows.size() && i < top_k; ++i) {
    const LedgerRow& r = *solve_rows[i];
    std::printf("  %8" PRIu64 " %-14s %10.4f %8" PRIu64 " %8" PRIu64 " %10" PRIu64
                " %-6s %s%s\n",
                r.seq, r.purpose.c_str(), r.wall, r.vars, r.clauses, r.conflicts,
                r.result.c_str(), r.phase.c_str(),
                r.cancel != "none" ? (" [" + r.cancel + "]").c_str() : "");
  }
  return 0;
}

// ---- diff ---------------------------------------------------------------

/// Relative threshold + noise floors for one noisy metric. A new value
/// regresses when it exceeds baseline * (1 + rel) AND the baseline is above
/// `min_base` (tiny baselines are pure noise) AND the absolute growth is
/// above `min_delta`.
struct NoisePolicy {
  double rel;
  double min_base;
  double min_delta;
  /// Throughput-style metric: shrinking is the regression direction.
  bool lower_is_worse = false;
};

std::map<std::string, NoisePolicy> default_policies() {
  return {
      {"seconds", {0.15, 0.5, 0.1}},
      {"cpu_seconds", {0.15, 0.5, 0.1}},
      {"conflicts", {0.10, 1000, 200}},
      {"decisions", {0.10, 5000, 1000}},
      {"propagations", {0.10, 50000, 10000}},
      // ecopatch-bench-service-v1 latency/throughput rows (bench_service).
      // Wider thresholds than the solver counters: scheduling jitter under
      // concurrent load is real, and the tails especially so. Absent on
      // table1/cec rows, so they simply never match there.
      {"p50_ms", {0.25, 1.0, 1.0}},
      {"p95_ms", {0.30, 1.0, 2.0}},
      {"p99_ms", {0.35, 1.0, 5.0}},
      {"throughput_jps", {0.20, 0.5, 0.1, /*lower_is_worse=*/true}},
  };
}

struct DiffStats {
  int regressions = 0;
  int improvements = 0;
  int compared = 0;
};

void report_regression(DiffStats& st, const std::string& run, const char* metric,
                       const std::string& from, const std::string& to) {
  ++st.regressions;
  std::printf("REGRESSION %-28s %-12s %s -> %s\n", run.c_str(), metric, from.c_str(),
              to.c_str());
}

std::string fmt_num(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15)
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  else
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string old_path = argv[0];
  const std::string new_path = argv[1];
  bool warn_only = false;
  std::map<std::string, NoisePolicy> policies = default_policies();
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "ecoprof: bad --threshold '%s' (want METRIC=FRACTION)\n",
                     spec.c_str());
        return 2;
      }
      const std::string metric = spec.substr(0, eq);
      const auto it = policies.find(metric);
      if (it == policies.end()) {
        std::fprintf(stderr, "ecoprof: unknown metric '%s' in --threshold\n", metric.c_str());
        return 2;
      }
      char* end = nullptr;
      const double frac = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == nullptr || *end != '\0' || frac < 0) {
        std::fprintf(stderr, "ecoprof: bad fraction in --threshold '%s'\n", spec.c_str());
        return 2;
      }
      it->second.rel = frac;
    } else {
      std::fprintf(stderr, "ecoprof: unknown diff option '%s'\n", argv[i]);
      return usage();
    }
  }

  const auto load = [](const std::string& p) -> std::optional<JsonValue> {
    std::string err;
    const std::optional<JsonValue> v = eco::json_parse_file(p, &err);
    if (!v) {
      std::fprintf(stderr, "ecoprof: %s: %s\n", p.c_str(), err.c_str());
      return std::nullopt;
    }
    const std::string& schema = (*v)["schema"].as_string();
    if (schema != "ecopatch-bench-table1-v1" && schema != "ecopatch-bench-cec-v1" &&
        schema != "ecopatch-bench-service-v1") {
      std::fprintf(stderr,
                   "ecoprof: %s: expected schema ecopatch-bench-table1-v1, "
                   "ecopatch-bench-cec-v1, or ecopatch-bench-service-v1, got '%s'\n",
                   p.c_str(), schema.c_str());
      return std::nullopt;
    }
    return v;
  };
  const std::optional<JsonValue> old_doc = load(old_path);
  const std::optional<JsonValue> new_doc = load(new_path);
  if (!old_doc || !new_doc) return 2;
  // Both documents must speak the same schema; the record key and metric
  // fields line up within a schema, not across them.
  if ((*old_doc)["schema"].as_string() != (*new_doc)["schema"].as_string()) {
    std::fprintf(stderr, "ecoprof: %s (%s) and %s (%s) use different schemas\n", old_path.c_str(),
                 (*old_doc)["schema"].as_string().c_str(), new_path.c_str(),
                 (*new_doc)["schema"].as_string().c_str());
    return 2;
  }

  const auto label = [](const JsonValue& doc) {
    std::string s = doc.contains("git_commit") ? doc["git_commit"].as_string() : "unknown";
    if (s.size() > 12) s.resize(12);
    if (doc["git_dirty"].as_bool()) s += "+dirty";
    return s;
  };
  std::printf("diff: %s (%s) -> %s (%s)\n", old_path.c_str(), label(*old_doc).c_str(),
              new_path.c_str(), label(*new_doc).c_str());

  // Index runs by (unit, weights, algorithm); only the intersection is
  // compared, so subset regeneration diffs cleanly against the full table.
  const auto key_of = [](const JsonValue& run) {
    return run["unit"].as_string() + "/" + run["weights"].as_string() + "/" +
           run["algorithm"].as_string();
  };
  std::map<std::string, const JsonValue*> old_runs;
  for (const JsonValue& run : (*old_doc)["runs"].as_array()) old_runs[key_of(run)] = &run;

  DiffStats st;
  size_t matched = 0, unmatched = 0;
  for (const JsonValue& nr : (*new_doc)["runs"].as_array()) {
    const std::string key = key_of(nr);
    const auto it = old_runs.find(key);
    if (it == old_runs.end()) {
      ++unmatched;
      continue;
    }
    ++matched;
    const JsonValue& orun = *it->second;

    // Exact metrics: verdict-level drift is a correctness change, not noise.
    const bool ok_old = orun["ok"].as_bool(), ok_new = nr["ok"].as_bool();
    if (ok_old && !ok_new) report_regression(st, key, "ok", "true", "false");
    if (!ok_old && ok_new) ++st.improvements;
    const bool v_old = orun["verified"].as_bool(), v_new = nr["verified"].as_bool();
    if (v_old && !v_new) report_regression(st, key, "verified", "true", "false");
    if (!v_old && v_new) ++st.improvements;
    if (orun["method"].as_string() != nr["method"].as_string())
      std::printf("note       %-28s method       %s -> %s\n", key.c_str(),
                  orun["method"].as_string().c_str(), nr["method"].as_string().c_str());
    // Cost and gates: only meaningful between two successful runs.
    if (ok_old && ok_new) {
      const double c_old = orun["cost"].as_number(), c_new = nr["cost"].as_number();
      if (c_new > c_old)
        report_regression(st, key, "cost", fmt_num(c_old), fmt_num(c_new));
      else if (c_new < c_old)
        ++st.improvements;
      const double g_old = orun["gates"].as_number(), g_new = nr["gates"].as_number();
      if (g_new > g_old) report_regression(st, key, "gates", fmt_num(g_old), fmt_num(g_new));
    }

    // Noisy metrics, relative thresholds with floors.
    for (const auto& [metric, pol] : policies) {
      const bool nested = metric == "conflicts" || metric == "decisions" ||
                          metric == "propagations";
      const JsonValue& ov = nested ? orun["sat"][metric] : orun[metric];
      const JsonValue& nv = nested ? nr["sat"][metric] : nr[metric];
      if (!ov.is_number() || !nv.is_number()) continue;
      ++st.compared;
      const double o = ov.as_number(), nw = nv.as_number();
      if (o < pol.min_base) continue;  // too small to measure reliably
      if (pol.lower_is_worse) {
        if (nw < o * (1.0 - pol.rel) && o - nw > pol.min_delta)
          report_regression(st, key, metric.c_str(), fmt_num(o), fmt_num(nw));
      } else if (nw > o * (1.0 + pol.rel) && nw - o > pol.min_delta) {
        report_regression(st, key, metric.c_str(), fmt_num(o), fmt_num(nw));
      }
    }
  }

  std::printf("%zu run(s) compared, %zu new-only skipped, %d metric value(s) checked\n",
              matched, unmatched, st.compared);
  if (matched == 0) {
    std::fprintf(stderr, "ecoprof: no runs matched between the two files\n");
    return 2;
  }
  if (st.regressions > 0) {
    std::printf("%d regression(s), %d improvement(s)%s\n", st.regressions, st.improvements,
                warn_only ? " [warn-only]" : "");
    return warn_only ? 0 : 1;
  }
  std::printf("no regressions, %d improvement(s)\n", st.improvements);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "report") == 0) return cmd_report(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "diff") == 0) return cmd_diff(argc - 2, argv + 2);
  std::fprintf(stderr, "ecoprof: unknown subcommand '%s'\n", argv[1]);
  return usage();
}
