# Empty compiler generated dependencies file for ecopatch.
# This may be replaced when dependencies are built.
