file(REMOVE_RECURSE
  "libecopatch.a"
)
