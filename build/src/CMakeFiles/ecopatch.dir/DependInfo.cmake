
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "src/CMakeFiles/ecopatch.dir/aig/aig.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/aig/aig.cpp.o.d"
  "/root/repo/src/aig/aiger.cpp" "src/CMakeFiles/ecopatch.dir/aig/aiger.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/aig/aiger.cpp.o.d"
  "/root/repo/src/aig/ops.cpp" "src/CMakeFiles/ecopatch.dir/aig/ops.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/aig/ops.cpp.o.d"
  "/root/repo/src/aig/sim.cpp" "src/CMakeFiles/ecopatch.dir/aig/sim.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/aig/sim.cpp.o.d"
  "/root/repo/src/aig/window.cpp" "src/CMakeFiles/ecopatch.dir/aig/window.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/aig/window.cpp.o.d"
  "/root/repo/src/benchgen/circuits.cpp" "src/CMakeFiles/ecopatch.dir/benchgen/circuits.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/benchgen/circuits.cpp.o.d"
  "/root/repo/src/benchgen/mutate.cpp" "src/CMakeFiles/ecopatch.dir/benchgen/mutate.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/benchgen/mutate.cpp.o.d"
  "/root/repo/src/benchgen/suite.cpp" "src/CMakeFiles/ecopatch.dir/benchgen/suite.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/benchgen/suite.cpp.o.d"
  "/root/repo/src/benchgen/weightgen.cpp" "src/CMakeFiles/ecopatch.dir/benchgen/weightgen.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/benchgen/weightgen.cpp.o.d"
  "/root/repo/src/cec/cec.cpp" "src/CMakeFiles/ecopatch.dir/cec/cec.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/cec/cec.cpp.o.d"
  "/root/repo/src/cnf/tseitin.cpp" "src/CMakeFiles/ecopatch.dir/cnf/tseitin.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/cnf/tseitin.cpp.o.d"
  "/root/repo/src/eco/cegarmin.cpp" "src/CMakeFiles/ecopatch.dir/eco/cegarmin.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/cegarmin.cpp.o.d"
  "/root/repo/src/eco/engine.cpp" "src/CMakeFiles/ecopatch.dir/eco/engine.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/engine.cpp.o.d"
  "/root/repo/src/eco/miter.cpp" "src/CMakeFiles/ecopatch.dir/eco/miter.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/miter.cpp.o.d"
  "/root/repo/src/eco/patchfunc.cpp" "src/CMakeFiles/ecopatch.dir/eco/patchfunc.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/patchfunc.cpp.o.d"
  "/root/repo/src/eco/problem.cpp" "src/CMakeFiles/ecopatch.dir/eco/problem.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/problem.cpp.o.d"
  "/root/repo/src/eco/resub.cpp" "src/CMakeFiles/ecopatch.dir/eco/resub.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/resub.cpp.o.d"
  "/root/repo/src/eco/satprune.cpp" "src/CMakeFiles/ecopatch.dir/eco/satprune.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/satprune.cpp.o.d"
  "/root/repo/src/eco/structural.cpp" "src/CMakeFiles/ecopatch.dir/eco/structural.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/structural.cpp.o.d"
  "/root/repo/src/eco/support.cpp" "src/CMakeFiles/ecopatch.dir/eco/support.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/support.cpp.o.d"
  "/root/repo/src/eco/window.cpp" "src/CMakeFiles/ecopatch.dir/eco/window.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/eco/window.cpp.o.d"
  "/root/repo/src/flow/maxflow.cpp" "src/CMakeFiles/ecopatch.dir/flow/maxflow.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/flow/maxflow.cpp.o.d"
  "/root/repo/src/net/aignet.cpp" "src/CMakeFiles/ecopatch.dir/net/aignet.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/aignet.cpp.o.d"
  "/root/repo/src/net/blif.cpp" "src/CMakeFiles/ecopatch.dir/net/blif.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/blif.cpp.o.d"
  "/root/repo/src/net/elaborate.cpp" "src/CMakeFiles/ecopatch.dir/net/elaborate.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/elaborate.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/ecopatch.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/network.cpp.o.d"
  "/root/repo/src/net/verilog.cpp" "src/CMakeFiles/ecopatch.dir/net/verilog.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/verilog.cpp.o.d"
  "/root/repo/src/net/weights.cpp" "src/CMakeFiles/ecopatch.dir/net/weights.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/net/weights.cpp.o.d"
  "/root/repo/src/qbf/qbf2.cpp" "src/CMakeFiles/ecopatch.dir/qbf/qbf2.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/qbf/qbf2.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/ecopatch.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/minimize.cpp" "src/CMakeFiles/ecopatch.dir/sat/minimize.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sat/minimize.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/ecopatch.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sop/cover.cpp" "src/CMakeFiles/ecopatch.dir/sop/cover.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sop/cover.cpp.o.d"
  "/root/repo/src/sop/factor.cpp" "src/CMakeFiles/ecopatch.dir/sop/factor.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sop/factor.cpp.o.d"
  "/root/repo/src/sop/isop.cpp" "src/CMakeFiles/ecopatch.dir/sop/isop.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sop/isop.cpp.o.d"
  "/root/repo/src/sop/kernels.cpp" "src/CMakeFiles/ecopatch.dir/sop/kernels.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sop/kernels.cpp.o.d"
  "/root/repo/src/sop/synth.cpp" "src/CMakeFiles/ecopatch.dir/sop/synth.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/sop/synth.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/ecopatch.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ecopatch.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ecopatch.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
