file(REMOVE_RECURSE
  "CMakeFiles/test_satprune_property.dir/test_satprune_property.cpp.o"
  "CMakeFiles/test_satprune_property.dir/test_satprune_property.cpp.o.d"
  "test_satprune_property"
  "test_satprune_property.pdb"
  "test_satprune_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_satprune_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
