# Empty dependencies file for test_satprune_property.
# This may be replaced when dependencies are built.
