# Empty dependencies file for test_aignet.
# This may be replaced when dependencies are built.
