file(REMOVE_RECURSE
  "CMakeFiles/test_aignet.dir/test_aignet.cpp.o"
  "CMakeFiles/test_aignet.dir/test_aignet.cpp.o.d"
  "test_aignet"
  "test_aignet.pdb"
  "test_aignet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aignet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
