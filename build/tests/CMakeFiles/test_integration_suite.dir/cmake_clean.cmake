file(REMOVE_RECURSE
  "CMakeFiles/test_integration_suite.dir/test_integration_suite.cpp.o"
  "CMakeFiles/test_integration_suite.dir/test_integration_suite.cpp.o.d"
  "test_integration_suite"
  "test_integration_suite.pdb"
  "test_integration_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
