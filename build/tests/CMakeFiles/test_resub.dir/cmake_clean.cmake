file(REMOVE_RECURSE
  "CMakeFiles/test_resub.dir/test_resub.cpp.o"
  "CMakeFiles/test_resub.dir/test_resub.cpp.o.d"
  "test_resub"
  "test_resub.pdb"
  "test_resub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
