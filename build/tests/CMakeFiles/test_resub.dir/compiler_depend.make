# Empty compiler generated dependencies file for test_resub.
# This may be replaced when dependencies are built.
