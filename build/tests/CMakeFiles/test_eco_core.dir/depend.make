# Empty dependencies file for test_eco_core.
# This may be replaced when dependencies are built.
