file(REMOVE_RECURSE
  "CMakeFiles/test_eco_core.dir/test_eco_core.cpp.o"
  "CMakeFiles/test_eco_core.dir/test_eco_core.cpp.o.d"
  "test_eco_core"
  "test_eco_core.pdb"
  "test_eco_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
