file(REMOVE_RECURSE
  "CMakeFiles/test_aiger.dir/test_aiger.cpp.o"
  "CMakeFiles/test_aiger.dir/test_aiger.cpp.o.d"
  "test_aiger"
  "test_aiger.pdb"
  "test_aiger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
