# Empty dependencies file for test_cegarmin.
# This may be replaced when dependencies are built.
