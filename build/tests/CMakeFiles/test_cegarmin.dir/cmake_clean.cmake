file(REMOVE_RECURSE
  "CMakeFiles/test_cegarmin.dir/test_cegarmin.cpp.o"
  "CMakeFiles/test_cegarmin.dir/test_cegarmin.cpp.o.d"
  "test_cegarmin"
  "test_cegarmin.pdb"
  "test_cegarmin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cegarmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
