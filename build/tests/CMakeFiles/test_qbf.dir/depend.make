# Empty dependencies file for test_qbf.
# This may be replaced when dependencies are built.
