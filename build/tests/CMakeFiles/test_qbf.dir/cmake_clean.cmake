file(REMOVE_RECURSE
  "CMakeFiles/test_qbf.dir/test_qbf.cpp.o"
  "CMakeFiles/test_qbf.dir/test_qbf.cpp.o.d"
  "test_qbf"
  "test_qbf.pdb"
  "test_qbf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
