# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_aig[1]_include.cmake")
include("/root/repo/build/tests/test_cnf[1]_include.cmake")
include("/root/repo/build/tests/test_cec[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sop[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_qbf[1]_include.cmake")
include("/root/repo/build/tests/test_eco_core[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_benchgen[1]_include.cmake")
include("/root/repo/build/tests/test_aignet[1]_include.cmake")
include("/root/repo/build/tests/test_cegarmin[1]_include.cmake")
include("/root/repo/build/tests/test_satprune_property[1]_include.cmake")
include("/root/repo/build/tests/test_resub[1]_include.cmake")
include("/root/repo/build/tests/test_integration_suite[1]_include.cmake")
include("/root/repo/build/tests/test_aiger[1]_include.cmake")
include("/root/repo/build/tests/test_isop[1]_include.cmake")
include("/root/repo/build/tests/test_blif[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
