file(REMOVE_RECURSE
  "CMakeFiles/resource_aware.dir/resource_aware.cpp.o"
  "CMakeFiles/resource_aware.dir/resource_aware.cpp.o.d"
  "resource_aware"
  "resource_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
