# Empty compiler generated dependencies file for resource_aware.
# This may be replaced when dependencies are built.
