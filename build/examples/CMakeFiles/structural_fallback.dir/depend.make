# Empty dependencies file for structural_fallback.
# This may be replaced when dependencies are built.
