file(REMOVE_RECURSE
  "CMakeFiles/structural_fallback.dir/structural_fallback.cpp.o"
  "CMakeFiles/structural_fallback.dir/structural_fallback.cpp.o.d"
  "structural_fallback"
  "structural_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
