file(REMOVE_RECURSE
  "CMakeFiles/multi_target_eco.dir/multi_target_eco.cpp.o"
  "CMakeFiles/multi_target_eco.dir/multi_target_eco.cpp.o.d"
  "multi_target_eco"
  "multi_target_eco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_target_eco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
