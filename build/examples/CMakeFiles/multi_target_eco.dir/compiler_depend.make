# Empty compiler generated dependencies file for multi_target_eco.
# This may be replaced when dependencies are built.
