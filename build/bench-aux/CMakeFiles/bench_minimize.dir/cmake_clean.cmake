file(REMOVE_RECURSE
  "../bench/bench_minimize"
  "../bench/bench_minimize.pdb"
  "CMakeFiles/bench_minimize.dir/bench_minimize.cpp.o"
  "CMakeFiles/bench_minimize.dir/bench_minimize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
