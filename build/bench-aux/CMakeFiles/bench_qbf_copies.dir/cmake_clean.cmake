file(REMOVE_RECURSE
  "../bench/bench_qbf_copies"
  "../bench/bench_qbf_copies.pdb"
  "CMakeFiles/bench_qbf_copies.dir/bench_qbf_copies.cpp.o"
  "CMakeFiles/bench_qbf_copies.dir/bench_qbf_copies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qbf_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
