# Empty dependencies file for bench_qbf_copies.
# This may be replaced when dependencies are built.
