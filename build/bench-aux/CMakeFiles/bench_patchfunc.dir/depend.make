# Empty dependencies file for bench_patchfunc.
# This may be replaced when dependencies are built.
