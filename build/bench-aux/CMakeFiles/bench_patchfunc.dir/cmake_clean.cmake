file(REMOVE_RECURSE
  "../bench/bench_patchfunc"
  "../bench/bench_patchfunc.pdb"
  "CMakeFiles/bench_patchfunc.dir/bench_patchfunc.cpp.o"
  "CMakeFiles/bench_patchfunc.dir/bench_patchfunc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patchfunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
