#include <gtest/gtest.h>

#include <sstream>

#include "aig/sim.hpp"
#include "cec/cec.hpp"
#include "net/elaborate.hpp"
#include "net/network.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"

namespace eco::net {
namespace {

const char* kFullAdder = R"(
// 1-bit full adder, contest style.
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire t1, t2, t3;
  xor g1 (t1, a, b);
  xor g2 (sum, t1, cin);
  and g3 (t2, a, b);
  and g4 (t3, t1, cin);
  or  g5 (cout, t2, t3);
endmodule
)";

TEST(Verilog, ParsesFullAdder) {
  const Network net = parse_verilog_string(kFullAdder);
  EXPECT_EQ(net.name, "fa");
  EXPECT_EQ(net.inputs, (std::vector<std::string>{"a", "b", "cin"}));
  EXPECT_EQ(net.outputs, (std::vector<std::string>{"sum", "cout"}));
  EXPECT_EQ(net.num_gates(), 5u);
  EXPECT_EQ(net.gates[0].type, GateType::kXor);
  EXPECT_EQ(net.gates[0].output, "t1");
  EXPECT_EQ(net.gates[0].inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(net.gates[0].instance_name, "g1");
}

TEST(Verilog, FullAdderFunction) {
  const auto elab = elaborate(parse_verilog_string(kFullAdder));
  for (uint32_t m = 0; m < 8; ++m) {
    const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const auto out = aig::eval(elab.aig, in);
    const int total = static_cast<int>(in[0]) + in[1] + in[2];
    EXPECT_EQ(out[0], (total % 2) == 1) << "sum at minterm " << m;
    EXPECT_EQ(out[1], total >= 2) << "cout at minterm " << m;
  }
}

TEST(Verilog, GatesWithoutInstanceNames) {
  const Network net = parse_verilog_string(
      "module m (a, y); input a; output y; not (y, a); endmodule");
  ASSERT_EQ(net.num_gates(), 1u);
  EXPECT_TRUE(net.gates[0].instance_name.empty());
}

TEST(Verilog, MultiInputPrimitives) {
  const Network net = parse_verilog_string(
      "module m (a, b, c, d, y); input a, b, c, d; output y;"
      "nand g (y, a, b, c, d); endmodule");
  const auto elab = elaborate(net);
  for (uint32_t m = 0; m < 16; ++m) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back(((m >> i) & 1) != 0);
    EXPECT_EQ(aig::eval(elab.aig, in)[0], m != 15);
  }
}

TEST(Verilog, AssignExpressions) {
  const Network net = parse_verilog_string(
      "module m (a, b, c, y); input a, b, c; output y;"
      "assign y = ~(a & b) ^ (b | ~c); endmodule");
  const auto elab = elaborate(net);
  for (uint32_t m = 0; m < 8; ++m) {
    const bool a = m & 1, b = m & 2, c = m & 4;
    const bool expected = !(a && b) != (b || !c);
    EXPECT_EQ(aig::eval(elab.aig, {a, b, c})[0], expected) << "minterm " << m;
  }
}

TEST(Verilog, AssignConstants) {
  const Network net = parse_verilog_string(
      "module m (a, y0, y1); input a; output y0, y1;"
      "assign y0 = 1'b0; assign y1 = 1'b1; endmodule");
  const auto elab = elaborate(net);
  const auto out = aig::eval(elab.aig, {true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Verilog, CommentsAndWhitespace) {
  const Network net = parse_verilog_string(
      "/* header */ module m (a, y); // ports\n"
      "input a; /* multi\nline */ output y;\n"
      "buf (y, a); // done\nendmodule\n");
  EXPECT_EQ(net.num_gates(), 1u);
}

TEST(Verilog, RoundTripPreservesFunction) {
  const Network net = parse_verilog_string(kFullAdder);
  std::ostringstream out;
  write_verilog(out, net);
  const Network again = parse_verilog_string(out.str());
  const auto a = elaborate(net);
  const auto b = elaborate(again);
  EXPECT_EQ(cec::check_equivalence(a.aig, b.aig).status, cec::Status::kEquivalent);
}

TEST(Verilog, ErrorsCarryLineNumbers) {
  try {
    parse_verilog_string("module m (a);\ninput a;\nfrob (x, a);\nendmodule");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("verilog:3"), std::string::npos) << e.what();
  }
}

TEST(Verilog, RejectsMissingEndmodule) {
  EXPECT_THROW(parse_verilog_string("module m (a); input a;"), std::runtime_error);
}

TEST(Verilog, RejectsWideLiterals) {
  EXPECT_THROW(parse_verilog_string("module m (y); output y; assign y = 2'b10; endmodule"),
               std::runtime_error);
}

TEST(Network, ValidateRejectsMultipleDrivers) {
  Network net;
  net.inputs = {"a"};
  net.outputs = {"y"};
  net.gates.push_back({GateType::kBuf, "y", {"a"}, ""});
  net.gates.push_back({GateType::kNot, "y", {"a"}, ""});
  EXPECT_THROW(net.validate(), std::runtime_error);
}

TEST(Network, ValidateRejectsUndrivenUse) {
  Network net;
  net.inputs = {"a"};
  net.outputs = {"y"};
  net.gates.push_back({GateType::kAnd, "y", {"a", "ghost"}, ""});
  EXPECT_THROW(net.validate(), std::runtime_error);
}

TEST(Network, ValidateRejectsBadArity) {
  Network net;
  net.inputs = {"a", "b"};
  net.outputs = {"y"};
  net.gates.push_back({GateType::kNot, "y", {"a", "b"}, ""});
  EXPECT_THROW(net.validate(), std::runtime_error);
}

TEST(Network, AllSignalsDeduplicated) {
  const Network net = parse_verilog_string(kFullAdder);
  const auto signals = net.all_signals();
  EXPECT_EQ(signals.size(), 8u);  // 3 inputs + 5 gate outputs
}

TEST(Elaborate, DanglingGatesStillNamed) {
  const Network net = parse_verilog_string(
      "module m (a, b, y); input a, b; output y;"
      "and (y, a, b); or (unused, a, b); endmodule");
  const auto elab = elaborate(net);
  EXPECT_TRUE(elab.signal_lits.count("unused"));
  EXPECT_EQ(elab.aig.num_pos(), 1u);
}

TEST(Elaborate, DetectsCycle) {
  Network net;
  net.name = "cyc";
  net.inputs = {"a"};
  net.outputs = {"y"};
  net.gates.push_back({GateType::kAnd, "y", {"a", "z"}, ""});
  net.gates.push_back({GateType::kAnd, "z", {"a", "y"}, ""});
  EXPECT_THROW(elaborate(net), std::runtime_error);
}

TEST(Elaborate, GateOrderIndependent) {
  // Gates listed in reverse topological order must elaborate fine.
  const Network net = parse_verilog_string(
      "module m (a, b, y); input a, b; output y;"
      "or (y, t2, t1); and (t2, t1, b); xor (t1, a, b); endmodule");
  const auto elab = elaborate(net);
  for (uint32_t m = 0; m < 4; ++m) {
    const bool a = m & 1, b = m & 2;
    const bool t1 = a != b;
    const bool expected = (t1 && b) || t1;
    EXPECT_EQ(aig::eval(elab.aig, {a, b})[0], expected);
  }
}

TEST(Weights, ParseAndLookup) {
  const WeightMap wm = parse_weights_string("# comment\nn1 10\nn2 3\n\nn3 0\n");
  EXPECT_EQ(wm.weight_of("n1"), 10);
  EXPECT_EQ(wm.weight_of("n2"), 3);
  EXPECT_EQ(wm.weight_of("n3"), 0);
  EXPECT_EQ(wm.weight_of("missing"), 1);
}

TEST(Weights, RejectsMalformedAndDuplicates) {
  EXPECT_THROW(parse_weights_string("n1\n"), std::runtime_error);
  EXPECT_THROW(parse_weights_string("n1 2 3\n"), std::runtime_error);
  EXPECT_THROW(parse_weights_string("n1 1\nn1 2\n"), std::runtime_error);
}

TEST(Weights, RoundTrip) {
  WeightMap wm;
  wm.weights = {{"b", 2}, {"a", 7}};
  std::ostringstream out;
  write_weights(out, wm);
  EXPECT_EQ(out.str(), "a 7\nb 2\n");
  const WeightMap again = parse_weights_string(out.str());
  EXPECT_EQ(again.weights, wm.weights);
}

}  // namespace
}  // namespace eco::net
