#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig.hpp"
#include "aig/aiger.hpp"
#include "aig/sim.hpp"
#include "cec/cec.hpp"
#include "util/rng.hpp"

namespace eco::aig {
namespace {

Aig sample_circuit() {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit c = g.add_pi("c");
  g.add_po(g.add_xor(g.add_and(a, b), c), "f");
  g.add_po(g.add_or(a, lit_not(c)), "h");
  return g;
}

TEST(Aiger, AsciiRoundTrip) {
  const Aig g = sample_circuit();
  std::ostringstream out;
  write_aiger(out, g, /*binary=*/false);
  const Aig back = read_aiger_string(out.str());
  EXPECT_EQ(back.num_pis(), g.num_pis());
  EXPECT_EQ(back.num_pos(), g.num_pos());
  EXPECT_EQ(cec::check_equivalence(g, back).status, cec::Status::kEquivalent);
  EXPECT_EQ(back.pi_name(0), "a");
  EXPECT_EQ(back.po_name(1), "h");
}

TEST(Aiger, BinaryRoundTrip) {
  const Aig g = sample_circuit();
  std::ostringstream out;
  write_aiger(out, g, /*binary=*/true);
  const Aig back = read_aiger_string(out.str());
  EXPECT_EQ(cec::check_equivalence(g, back).status, cec::Status::kEquivalent);
}

TEST(Aiger, ParsesKnownAsciiExample) {
  // The classic AND example from the AIGER spec.
  const std::string text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
  const Aig g = read_aiger_string(text);
  EXPECT_EQ(g.num_pis(), 2u);
  EXPECT_EQ(g.num_pos(), 1u);
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_EQ(truth_table(g, g.po_lit(0))[0] & 0xFu, 0b1000u);
}

TEST(Aiger, HandlesComplementedOutputsAndConstants) {
  const std::string text = "aag 1 1 0 3 0\n2\n3\n0\n1\n";  // !a, const0, const1
  const Aig g = read_aiger_string(text);
  ASSERT_EQ(g.num_pos(), 3u);
  const auto out0 = eval(g, {true});
  EXPECT_FALSE(out0[0]);
  EXPECT_FALSE(out0[1]);
  EXPECT_TRUE(out0[2]);
}

TEST(Aiger, AcceptsOutOfOrderAndDefinitions) {
  // f = (a & b) & c written with the inner AND defined second.
  const std::string text = "aag 5 3 0 1 2\n2\n4\n6\n10\n10 8 6\n8 2 4\n";
  const Aig g = read_aiger_string(text);
  const auto tt = truth_table(g, g.po_lit(0));
  EXPECT_EQ(tt[0] & 0xFFu, 0x80u);  // only minterm a=b=c=1
}

TEST(Aiger, RejectsMalformedInput) {
  EXPECT_THROW(read_aiger_string("xyz 1 1 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger_string("aag 2 1 1 0 0\n2\n4 2\n"), std::runtime_error);  // latch
  EXPECT_THROW(read_aiger_string("aag 2 1 0 1 1\n2\n4\n4 6 2\n"), std::runtime_error);
  EXPECT_THROW(read_aiger_string("aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n"),
               std::runtime_error);  // cyclic
}

TEST(Aiger, RandomRoundTripsBothFormats) {
  Rng rng(99);
  for (int iter = 0; iter < 6; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 30; ++i) {
      const Lit x = pool[rng.below(pool.size())];
      const Lit y = pool[rng.below(pool.size())];
      pool.push_back(g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
    }
    for (int i = 0; i < 3; ++i)
      g.add_po(lit_notif(pool[rng.below(pool.size())], rng.chance(1, 2)));
    const Aig clean = g.cleanup();
    for (const bool binary : {false, true}) {
      std::ostringstream out;
      write_aiger(out, clean, binary);
      const Aig back = read_aiger_string(out.str());
      EXPECT_EQ(cec::check_equivalence(clean, back).status, cec::Status::kEquivalent)
          << (binary ? "binary" : "ascii") << " iter " << iter;
    }
  }
}

}  // namespace
}  // namespace eco::aig
