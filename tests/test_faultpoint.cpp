#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/faultpoint.hpp"

namespace eco::fault {
namespace {

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultPointTest, UnarmedNeverFires) {
  EXPECT_FALSE(armed());
  for (size_t i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    EXPECT_FALSE(should_fail(s)) << site_name(s);
    EXPECT_FALSE(ECO_FAULT_POINT(s)) << site_name(s);
    EXPECT_EQ(fired_count(s), 0u) << site_name(s);
  }
}

TEST_F(FaultPointTest, SiteNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (size_t i = 0; i < kNumSites; ++i)
    names.emplace_back(site_name(static_cast<Site>(i)));
  EXPECT_EQ(names[0], "sat.budget");
  EXPECT_EQ(names[static_cast<size_t>(Site::kNetParse)], "net.parse");
  for (size_t i = 0; i < names.size(); ++i)
    for (size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
}

TEST_F(FaultPointTest, ArmProbabilityOneAlwaysFires) {
  ASSERT_TRUE(arm("sat.budget"));
  EXPECT_TRUE(armed());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(ECO_FAULT_POINT(Site::kSatBudget));
  EXPECT_EQ(fired_count(Site::kSatBudget), 20u);
  // Other sites stay unarmed.
  EXPECT_FALSE(ECO_FAULT_POINT(Site::kNetParse));
}

TEST_F(FaultPointTest, ArmMultipleSites) {
  ASSERT_TRUE(arm("net.parse,verify.timeout"));
  EXPECT_TRUE(ECO_FAULT_POINT(Site::kNetParse));
  EXPECT_TRUE(ECO_FAULT_POINT(Site::kVerifyTimeout));
  EXPECT_FALSE(ECO_FAULT_POINT(Site::kCnfLoad));
}

TEST_F(FaultPointTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(arm("cnf.load:0"));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(ECO_FAULT_POINT(Site::kCnfLoad));
  EXPECT_EQ(fired_count(Site::kCnfLoad), 0u);
}

TEST_F(FaultPointTest, DrawsAreDeterministicPerSeed) {
  const auto draw_sequence = [](const char* spec) {
    disarm_all();
    EXPECT_TRUE(arm(spec));
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(should_fail(Site::kWindowExtract));
    return fires;
  };
  const auto a = draw_sequence("window.extract:0.5:7");
  const auto b = draw_sequence("window.extract:0.5:7");
  EXPECT_EQ(a, b);  // same seed: identical k-th draws
  const auto c = draw_sequence("window.extract:0.5:8");
  EXPECT_NE(a, c);  // different seed: different sequence
  // Roughly half fire at prob 0.5 (wide tolerance, deterministic anyway).
  int fired = 0;
  for (const bool f : a) fired += f;
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST_F(FaultPointTest, RearmResetsCounters) {
  ASSERT_TRUE(arm("qbf.itercap"));
  (void)should_fail(Site::kQbfIterCap);
  EXPECT_EQ(fired_count(Site::kQbfIterCap), 1u);
  ASSERT_TRUE(arm("qbf.itercap"));
  EXPECT_EQ(fired_count(Site::kQbfIterCap), 0u);
}

TEST_F(FaultPointTest, DisarmAllClearsEverything) {
  ASSERT_TRUE(arm("alloc.guard"));
  EXPECT_TRUE(ECO_FAULT_POINT(Site::kAllocGuard));
  disarm_all();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(ECO_FAULT_POINT(Site::kAllocGuard));
  EXPECT_EQ(fired_count(Site::kAllocGuard), 0u);
}

TEST_F(FaultPointTest, MalformedSpecsAreRejected) {
  std::string error;
  EXPECT_FALSE(arm("no.such.site", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(arm("sat.budget:notanumber", &error));
  EXPECT_FALSE(arm("sat.budget:1.5", &error));  // prob out of [0,1]
  EXPECT_FALSE(arm("sat.budget:-0.1", &error));
  EXPECT_TRUE(arm("", &error));  // empty spec: accepted no-op
  // A rejected spec must not arm anything as a side effect.
  EXPECT_FALSE(armed());
}

TEST_F(FaultPointTest, RejectedSpecKeepsExistingArming) {
  ASSERT_TRUE(arm("net.parse"));
  EXPECT_FALSE(arm("no.such.site"));
  EXPECT_TRUE(ECO_FAULT_POINT(Site::kNetParse));
}

}  // namespace
}  // namespace eco::fault
