// Tests for the patch service layer (src/service/): the content-addressed
// session cache with LRU eviction under its memory account, and the daemon's
// admission control, concurrent execution, error taxonomy, warm-pattern
// flow, and graceful drain. Suite names carry the Service prefix so the TSan
// CI job picks the concurrency tests up.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"
#include "service/artifacts.hpp"
#include "service/daemon.hpp"
#include "util/jsonr.hpp"
#include "util/ledger.hpp"

namespace eco::service {
namespace {

namespace fs = std::filesystem;

/// Materializes one suite unit under a fresh subdirectory of the gtest temp
/// dir; returns {impl, spec, weights} paths.
std::array<std::string, 3> write_unit(const std::string& tag, int index, int scale = 1) {
  const fs::path dir = fs::path(testing::TempDir()) / ("svc_" + tag);
  fs::create_directories(dir);
  const benchgen::EcoUnit unit = benchgen::make_unit(index, 20170912, scale);
  std::array<std::string, 3> files = {(dir / "impl.v").string(),
                                      (dir / "spec.v").string(),
                                      (dir / "weights.txt").string()};
  net::write_verilog_file(files[0], unit.impl);
  net::write_verilog_file(files[1], unit.spec);
  net::write_weights_file(files[2], unit.weights);
  return files;
}

std::string solve_request(const std::string& id, const std::array<std::string, 3>& f,
                          double budget = 20) {
  return "{\"op\":\"solve\",\"id\":\"" + id + "\",\"impl\":\"" + f[0] +
         "\",\"spec\":\"" + f[1] + "\",\"weights\":\"" + f[2] +
         "\",\"budget\":" + std::to_string(budget) + "}";
}

JsonValue parse_response(const std::string& line) {
  std::string err;
  const auto doc = json_parse(line, &err);
  EXPECT_TRUE(doc.has_value()) << err << " in: " << line;
  return doc ? *doc : JsonValue();
}

// ---- SessionCache -------------------------------------------------------

TEST(ServiceCache, HitThenEvictThenReparse) {
  const auto a = write_unit("evict_a", 1);
  const auto b = write_unit("evict_b", 2);
  // Measure what one netlist artifact charges, then budget the cache under
  // test to hold one comfortably but not two: loading `b` must evict `a`.
  uint64_t one_netlist = 0;
  {
    SessionCache probe(1ull << 30);
    probe.netlist(a[0]);
    one_netlist = probe.memory_used();
  }
  ASSERT_GT(one_netlist, 0u);
  SessionCache small(one_netlist + one_netlist / 2);
  bool hit = true;
  const auto first = small.netlist(a[0], &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  small.netlist(a[0], &hit);
  EXPECT_TRUE(hit) << "second load of identical bytes must hit";
  // Crowd the cache until `a` (now the LRU entry) is evicted...
  small.netlist(b[0], &hit);
  EXPECT_FALSE(hit);
  EXPECT_GT(small.stats().evictions, 0u);
  EXPECT_LE(small.memory_used(), small.memory_budget());
  // ... so the next load re-parses instead of serving stale state. The
  // shared_ptr from before eviction stays valid throughout.
  small.netlist(a[0], &hit);
  EXPECT_FALSE(hit) << "evicted entry must be re-parsed";
  EXPECT_FALSE(first->network.gates.empty());
}

TEST(ServiceCache, ContentKeyedAcrossPaths) {
  const auto a = write_unit("content", 1);
  // A byte-identical copy under a different name must hit: keys are content
  // hashes, not paths.
  const std::string copy = a[0] + ".copy.v";
  fs::copy_file(a[0], copy, fs::copy_options::overwrite_existing);
  SessionCache cache(64ull << 20);
  bool hit = true;
  cache.netlist(a[0], &hit);
  EXPECT_FALSE(hit);
  cache.netlist(copy, &hit);
  EXPECT_TRUE(hit);
  // And an edit-in-place must miss: the bytes changed, so the key changed.
  std::ofstream(a[0], std::ios::app) << "\n// trailing comment\n";
  cache.netlist(a[0], &hit);
  EXPECT_FALSE(hit);
}

TEST(ServiceCache, BudgetZeroDisablesCaching) {
  const auto a = write_unit("disabled", 1);
  SessionCache off(0);
  bool hit = true;
  off.netlist(a[0], &hit);
  EXPECT_FALSE(hit);
  off.netlist(a[0], &hit);
  EXPECT_FALSE(hit) << "budget 0 must never cache";
  EXPECT_EQ(off.entries(), 0u);
  EXPECT_EQ(off.memory_used(), 0u);
}

TEST(ServiceCache, ProblemArtifactAndSessionKey) {
  const auto a = write_unit("problem", 1);
  SessionCache cache(64ull << 20);
  const LoadedInputs in = load_inputs(cache, a[0], a[1], a[2]);
  bool hit = true;
  const auto p1 = cache.problem(*in.impl, *in.spec, *in.weights, &hit);
  EXPECT_FALSE(hit);
  const auto p2 = cache.problem(*in.impl, *in.spec, *in.weights, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(p1->key, p2->key);
  // The warm-pattern store deduplicates and honors its cap.
  const std::vector<std::vector<bool>> fresh = {{true, false}, {false, true}, {true, false}};
  EXPECT_EQ(p1->absorb_patterns(fresh, 16), 2u);
  EXPECT_EQ(p1->absorb_patterns(fresh, 16), 0u);
  EXPECT_EQ(p1->num_patterns(), 2u);
  EXPECT_EQ(p1->absorb_patterns({{false, false}}, 2), 1u);
  EXPECT_EQ(p1->num_patterns(), 2u) << "cap evicts oldest";
}

TEST(ServiceCache, MissingFileThrowsParseError) {
  SessionCache cache(0);
  EXPECT_THROW(cache.netlist("/nonexistent/impl.v"), net::ParseError);
}

// ---- Daemon -------------------------------------------------------------

TEST(ServiceDaemon, SolveThenCacheHitSameSession) {
  const auto f = write_unit("daemon_basic", 1);
  ServiceOptions opts;
  opts.jobs = 1;
  Daemon daemon(opts);
  const JsonValue r1 = parse_response(daemon.submit_and_wait(solve_request("j1", f)));
  EXPECT_TRUE(r1["ok"].as_bool());
  EXPECT_EQ(r1["outcome"]["status"].as_string(), "patched");
  EXPECT_EQ(r1["outcome"]["verification"].as_string(), "verified");
  EXPECT_FALSE(r1["service"]["cache"]["problem_hit"].as_bool());
  const JsonValue r2 = parse_response(daemon.submit_and_wait(solve_request("j2", f)));
  EXPECT_TRUE(r2["service"]["cache"]["impl_hit"].as_bool());
  EXPECT_TRUE(r2["service"]["cache"]["spec_hit"].as_bool());
  EXPECT_TRUE(r2["service"]["cache"]["weights_hit"].as_bool());
  EXPECT_TRUE(r2["service"]["cache"]["problem_hit"].as_bool());
  EXPECT_EQ(r1["service"]["session"].as_string(), r2["service"]["session"].as_string());
  // Identical outcome either way: the cache changes performance only.
  EXPECT_EQ(r1["outcome"]["total_cost"].as_number(),
            r2["outcome"]["total_cost"].as_number());
  EXPECT_EQ(r1["id"].as_string(), "j1");
  EXPECT_EQ(r2["id"].as_string(), "j2");
}

TEST(ServiceDaemon, BadRequestsAreRejectedInline) {
  ServiceOptions opts;
  opts.jobs = 1;
  Daemon daemon(opts);
  const auto code = [&](const std::string& line) {
    return parse_response(daemon.submit_and_wait(line))["error"]["code"].as_string();
  };
  EXPECT_EQ(code("this is not json"), "bad_request");
  EXPECT_EQ(code("[1,2,3]"), "bad_request");
  EXPECT_EQ(code("{\"op\":\"explode\",\"id\":\"x\"}"), "bad_request");
  EXPECT_EQ(code("{\"op\":\"solve\",\"id\":\"x\"}"), "bad_request");  // no paths
  EXPECT_EQ(code("{\"op\":\"solve\",\"id\":\"x\",\"impl\":\"a\",\"spec\":\"b\","
                 "\"weights\":\"c\",\"algo\":\"quantum\"}"),
            "bad_request");
  EXPECT_EQ(daemon.counters().bad_requests, 5u);
  EXPECT_EQ(daemon.counters().submitted, 0u);
}

TEST(ServiceDaemon, MissingInputFileYieldsParseErrorResponse) {
  ServiceOptions opts;
  opts.jobs = 1;
  Daemon daemon(opts);
  const std::array<std::string, 3> bogus = {"/nonexistent/impl.v", "/nonexistent/spec.v",
                                            "/nonexistent/weights.txt"};
  const JsonValue r = parse_response(daemon.submit_and_wait(solve_request("bad", bogus)));
  EXPECT_FALSE(r["ok"].as_bool());
  EXPECT_EQ(r["error"]["code"].as_string(), "parse");
  // The fault stayed inside the job: the daemon keeps serving.
  const JsonValue ping = parse_response(daemon.submit_and_wait("{\"op\":\"ping\",\"id\":\"p\"}"));
  EXPECT_TRUE(ping["ok"].as_bool());
}

TEST(ServiceDaemon, QueueFullRejectionWhenSaturated) {
  // Scale 8 makes each job's parse+solve far slower than a submit_line
  // call, so with one worker and queue depth 1 the later submissions always
  // find the slot taken.
  const auto f = write_unit("queue_full", 1, /*scale=*/8);
  ServiceOptions opts;
  opts.jobs = 1;
  opts.queue_depth = 1;
  Daemon daemon(opts);
  std::mutex mu;
  std::vector<std::string> async_responses;
  daemon.submit_line(solve_request("slow", f), [&](std::string line) {
    std::lock_guard<std::mutex> lock(mu);
    async_responses.push_back(std::move(line));
  });
  const JsonValue rejected = parse_response(daemon.submit_and_wait(solve_request("r1", f)));
  EXPECT_EQ(rejected["error"]["code"].as_string(), "queue_full");
  EXPECT_GE(daemon.counters().rejected, 1u);
  daemon.drain();
  ASSERT_EQ(async_responses.size(), 1u);
  EXPECT_EQ(parse_response(async_responses[0])["outcome"]["status"].as_string(), "patched");
}

TEST(ServiceDaemon, ConcurrentJobsWithMixedDeadlines) {
  const auto fast = write_unit("mixed_fast", 1);
  const auto big = write_unit("mixed_big", 1, /*scale=*/4);
  ServiceOptions opts;
  opts.jobs = 4;
  Daemon daemon(opts);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> responses;
  const int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    // Every third job gets a microscopic budget. Its deadline is expired on
    // arrival, so it must either fail with a budget taxonomy or degrade to
    // the grace-windowed structural fallback (docs/ROBUSTNESS.md) — while
    // neighbors with sane budgets run the same problems to completion.
    const bool doomed = i % 3 == 2;
    daemon.submit_line(solve_request("m" + std::to_string(i), doomed ? big : fast,
                                     doomed ? 1e-6 : 20),
                       [&](std::string line) {
                         std::lock_guard<std::mutex> lock(mu);
                         responses.push_back(std::move(line));
                         cv.notify_all();
                       });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() == kJobs; });
  }
  int sane_patched = 0, doomed_degraded = 0, doomed_failed = 0;
  std::vector<double> sane_costs;
  for (const std::string& line : responses) {
    const JsonValue r = parse_response(line);
    ASSERT_TRUE(r["ok"].as_bool()) << line;
    const std::string& id = r["id"].as_string();
    ASSERT_GE(id.size(), 2u);
    const bool doomed = (std::stoi(id.substr(1)) % 3) == 2;
    const std::string& status = r["outcome"]["status"].as_string();
    if (!doomed) {
      EXPECT_EQ(status, "patched") << line;
      EXPECT_EQ(r["outcome"]["verification"].as_string(), "verified");
      sane_costs.push_back(r["outcome"]["total_cost"].as_number());
      ++sane_patched;
    } else if (status == "patched") {
      // Starved but rescued: only the structural fallback runs on an
      // already-expired deadline (its grace window is deliberate).
      EXPECT_EQ(r["outcome"]["method"].as_string(), "structural") << line;
      ++doomed_degraded;
    } else {
      const std::string& reason = r["outcome"]["fail_reason"].as_string();
      EXPECT_TRUE(reason == "budget" || reason == "cancelled") << line;
      ++doomed_failed;
    }
  }
  EXPECT_EQ(sane_patched, 8) << "every sane-budget job must complete";
  EXPECT_EQ(doomed_degraded + doomed_failed, 4);
  // Same problem, same budget, concurrent execution: identical cost.
  for (const double c : sane_costs) EXPECT_EQ(c, sane_costs.front());
  EXPECT_EQ(daemon.counters().completed, static_cast<uint64_t>(kJobs));
}

TEST(ServiceDaemon, DrainDeliversEveryAdmittedOutcomeAndFlushesLedger) {
  const auto f = write_unit("drain", 1, /*scale=*/4);
  const fs::path ledger_path = fs::path(testing::TempDir()) / "svc_drain_ledger.jsonl";
  fs::remove(ledger_path);
  ASSERT_TRUE(ledger::set_sink(ledger_path.string()));
  std::atomic<int> delivered{0};
  {
    ServiceOptions opts;
    opts.jobs = 2;
    opts.drain_grace_seconds = 30;
    Daemon daemon(opts);
    for (int i = 0; i < 6; ++i)
      daemon.submit_line(solve_request("d" + std::to_string(i), f),
                         [&](std::string) { delivered.fetch_add(1); });
    daemon.drain();  // under load: jobs are still queued/running here
    EXPECT_EQ(delivered.load(), 6) << "no admitted outcome may be lost";
    EXPECT_EQ(daemon.in_flight(), 0u);
    // Post-drain admission is rejected, but control ops still answer.
    const JsonValue late = parse_response(daemon.submit_and_wait(solve_request("late", f)));
    EXPECT_EQ(late["error"]["code"].as_string(), "draining");
    EXPECT_TRUE(daemon.draining());
  }
  ASSERT_TRUE(ledger::close_sink());
  // drain() flushed before returning, so the sink already holds the story
  // of every job (close_sink above only finalizes).
  std::ifstream in(ledger_path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_GT(lines, 6u) << "ledger must hold header + per-query records";
}

TEST(ServiceDaemon, WarmPatternsReachLaterJobs) {
  const auto f = write_unit("warm", 2);
  ServiceOptions opts;
  opts.jobs = 1;
  Daemon daemon(opts);
  const JsonValue r1 = parse_response(daemon.submit_and_wait(solve_request("w1", f)));
  const JsonValue r2 = parse_response(daemon.submit_and_wait(solve_request("w2", f)));
  ASSERT_TRUE(r1["ok"].as_bool());
  ASSERT_TRUE(r2["ok"].as_bool());
  EXPECT_EQ(r1["service"]["warm_patterns_in"].as_number(), 0.0);
  // Whatever job 1 harvested is on job 2's plate; identical verdict.
  EXPECT_GE(r2["service"]["warm_patterns_in"].as_number(),
            r1["service"]["warm_patterns_absorbed"].as_number());
  EXPECT_EQ(r1["outcome"]["status"].as_string(), r2["outcome"]["status"].as_string());
  EXPECT_EQ(r1["outcome"]["total_cost"].as_number(),
            r2["outcome"]["total_cost"].as_number());
}

TEST(ServiceDaemon, StatsAndDrainControlOps) {
  const auto f = write_unit("stats", 1);
  ServiceOptions opts;
  opts.jobs = 1;
  Daemon daemon(opts);
  parse_response(daemon.submit_and_wait(solve_request("s1", f)));
  const JsonValue stats = parse_response(daemon.submit_and_wait("{\"op\":\"stats\",\"id\":\"st\"}"));
  EXPECT_TRUE(stats["ok"].as_bool());
  EXPECT_EQ(stats["counters"]["submitted"].as_number(), 1.0);
  EXPECT_EQ(stats["counters"]["completed"].as_number(), 1.0);
  EXPECT_GE(stats["cache"]["entries"].as_number(), 1.0);
  const JsonValue drain = parse_response(daemon.submit_and_wait("{\"op\":\"drain\",\"id\":\"dr\"}"));
  EXPECT_TRUE(drain["ok"].as_bool());
  EXPECT_TRUE(daemon.draining());
  const JsonValue rejected = parse_response(daemon.submit_and_wait(solve_request("s2", f)));
  EXPECT_EQ(rejected["error"]["code"].as_string(), "draining");
}

}  // namespace
}  // namespace eco::service
