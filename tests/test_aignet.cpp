#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig.hpp"
#include "cec/cec.hpp"
#include "net/aignet.hpp"
#include "net/elaborate.hpp"
#include "net/verilog.hpp"
#include "util/rng.hpp"

namespace eco::net {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;

TEST(AigNet, SimpleExportRoundTrip) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  g.add_po(g.add_xor(a, b), "f");
  const Network net = aig_to_network(g, "m");
  net.validate();
  EXPECT_EQ(net.name, "m");
  EXPECT_EQ(net.inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(net.outputs, (std::vector<std::string>{"f"}));
  const auto elab = elaborate(net);
  EXPECT_EQ(cec::check_equivalence(g, elab.aig).status, cec::Status::kEquivalent);
}

TEST(AigNet, ConstantsAndComplements) {
  Aig g;
  const Lit a = g.add_pi("a");
  g.add_po(aig::kLitFalse, "zero");
  g.add_po(aig::kLitTrue, "one");
  g.add_po(lit_not(a), "na");
  const Network net = aig_to_network(g);
  net.validate();
  const auto elab = elaborate(net);
  EXPECT_EQ(cec::check_equivalence(g, elab.aig).status, cec::Status::kEquivalent);
}

TEST(AigNet, UnnamedSignalsGetGeneratedNames) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.add_and(a, b));
  const Network net = aig_to_network(g);
  net.validate();
  EXPECT_EQ(net.inputs.size(), 2u);
  EXPECT_FALSE(net.inputs[0].empty());
}

TEST(AigNet, NameCollisionsResolved) {
  Aig g;
  const Lit a = g.add_pi("x");
  const Lit b = g.add_pi("x");  // duplicate name on purpose
  g.add_po(g.add_or(a, b), "x");
  const Network net = aig_to_network(g);
  net.validate();  // must not declare duplicate drivers
}

TEST(AigNet, SharedInverterEmittedOnce) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit c = g.add_pi("c");
  g.add_po(g.add_and(lit_not(a), b), "f");
  g.add_po(g.add_and(lit_not(a), c), "h");
  const Network net = aig_to_network(g);
  int inverters = 0;
  for (const auto& gate : net.gates)
    if (gate.type == GateType::kNot) ++inverters;
  EXPECT_EQ(inverters, 1);
}

TEST(AigNet, RandomAigsRoundTripThroughVerilog) {
  Rng rng(31);
  for (int iter = 0; iter < 8; ++iter) {
    Aig g;
    std::vector<Lit> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < 40; ++i) {
      const Lit x = pool[rng.below(pool.size())];
      const Lit y = pool[rng.below(pool.size())];
      pool.push_back(g.add_and(aig::lit_notif(x, rng.chance(1, 2)),
                               aig::lit_notif(y, rng.chance(1, 2))));
    }
    for (int i = 0; i < 3; ++i)
      g.add_po(aig::lit_notif(pool[rng.below(pool.size())], rng.chance(1, 2)));
    const Aig clean = g.cleanup();
    std::ostringstream text;
    write_verilog(text, aig_to_network(clean, "rt"));
    const auto back = elaborate(parse_verilog_string(text.str()));
    EXPECT_EQ(cec::check_equivalence(clean, back.aig).status, cec::Status::kEquivalent);
  }
}

}  // namespace
}  // namespace eco::net
