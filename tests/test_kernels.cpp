#include <gtest/gtest.h>

#include <algorithm>

#include "sop/kernels.hpp"
#include "util/rng.hpp"

namespace eco::sop {
namespace {

Cube cube(std::initializer_list<Lit> lits) { return Cube(std::vector<Lit>(lits)); }

Cover cover_of(uint32_t num_vars, std::initializer_list<Cube> cubes) {
  Cover f;
  f.num_vars = num_vars;
  f.cubes = cubes;
  return f;
}

// Variables a..g = 0..6.
constexpr Lit a = lit_pos(0), b = lit_pos(1), c = lit_pos(2), d = lit_pos(3),
              e = lit_pos(4), f_ = lit_pos(5), g_ = lit_pos(6);

TEST(Division, DivideByCube) {
  // F = abc + abd + e;  F / ab = c + d, remainder e.
  const Cover f = cover_of(7, {cube({a, b, c}), cube({a, b, d}), cube({e})});
  const auto r = divide_by_cube(f, cube({a, b}));
  ASSERT_EQ(r.quotient.cubes.size(), 2u);
  EXPECT_EQ(r.quotient.cubes[0], cube({c}));
  EXPECT_EQ(r.quotient.cubes[1], cube({d}));
  ASSERT_EQ(r.remainder.cubes.size(), 1u);
  EXPECT_EQ(r.remainder.cubes[0], cube({e}));
}

TEST(Division, AlgebraicDivide) {
  // F = ac + ad + bc + bd + e;  F / (c + d) = a + b, remainder e.
  const Cover f = cover_of(7, {cube({a, c}), cube({a, d}), cube({b, c}),
                               cube({b, d}), cube({e})});
  const Cover divisor = cover_of(7, {cube({c}), cube({d})});
  const auto r = algebraic_divide(f, divisor);
  std::vector<Cube> q = r.quotient.cubes;
  std::sort(q.begin(), q.end(), [](const Cube& x, const Cube& y) { return x.lits() < y.lits(); });
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0], cube({a}));
  EXPECT_EQ(q[1], cube({b}));
  ASSERT_EQ(r.remainder.cubes.size(), 1u);
  EXPECT_EQ(r.remainder.cubes[0], cube({e}));
}

TEST(Division, FailsWhenNoCommonQuotient) {
  // F = ac + bd cannot be divided by (c + d): quotient empty.
  const Cover f = cover_of(7, {cube({a, c}), cube({b, d})});
  const Cover divisor = cover_of(7, {cube({c}), cube({d})});
  const auto r = algebraic_divide(f, divisor);
  EXPECT_TRUE(r.quotient.cubes.empty());
  EXPECT_EQ(r.remainder.cubes.size(), 2u);
}

TEST(Division, QuotientTimesDivisorPlusRemainderEqualsF) {
  Rng rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    Cover f;
    f.num_vars = 6;
    const int n = 3 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n; ++i) {
      std::vector<Lit> lits;
      for (uint32_t v = 0; v < 6; ++v) {
        const uint64_t r3 = rng.below(3);
        if (r3 == 0) lits.push_back(lit_pos(v));
        if (r3 == 1) lits.push_back(lit_neg(v));
      }
      f.cubes.push_back(Cube(std::move(lits)));
    }
    f.remove_contained_cubes();
    Cover divisor;
    divisor.num_vars = 6;
    divisor.cubes = {cube({lit_pos(static_cast<uint32_t>(rng.below(6)))}),
                     cube({lit_neg(static_cast<uint32_t>(rng.below(6)))})};
    const auto r = algebraic_divide(f, divisor);
    // Check Q*D + R == F as sets of cubes.
    std::vector<std::vector<Lit>> rebuilt;
    for (const auto& q : r.quotient.cubes)
      for (const auto& dc : divisor.cubes) {
        std::vector<Lit> lits = q.lits();
        lits.insert(lits.end(), dc.lits().begin(), dc.lits().end());
        rebuilt.push_back(Cube(std::move(lits)).lits());
      }
    for (const auto& rc : r.remainder.cubes) rebuilt.push_back(rc.lits());
    std::vector<std::vector<Lit>> original;
    for (const auto& fc : f.cubes) original.push_back(fc.lits());
    std::sort(rebuilt.begin(), rebuilt.end());
    std::sort(original.begin(), original.end());
    EXPECT_EQ(rebuilt, original);
  }
}

TEST(Kernels, CommonCubeAndCubeFree) {
  const Cover f = cover_of(7, {cube({a, b, c}), cube({a, b, d})});
  EXPECT_EQ(common_cube_of(f), cube({a, b}));
  const Cover free = make_cube_free(f);
  EXPECT_EQ(free.cubes[0], cube({c}));
  EXPECT_EQ(free.cubes[1], cube({d}));
}

TEST(Kernels, FindsClassicKernels) {
  // F = adf + aef + bdf + bef + cdf + cef + g = ((a+b+c)(d+e))f + g.
  const Cover f = cover_of(7, {cube({a, d, f_}), cube({a, e, f_}), cube({b, d, f_}),
                               cube({b, e, f_}), cube({c, d, f_}), cube({c, e, f_}),
                               cube({g_})});
  const auto ks = kernels(f);
  auto has_kernel = [&](std::initializer_list<Cube> expect) {
    std::vector<Cube> want(expect);
    std::sort(want.begin(), want.end(),
              [](const Cube& x, const Cube& y) { return x.lits() < y.lits(); });
    for (const auto& [ck, kernel] : ks) {
      std::vector<Cube> got = kernel.cubes;
      std::sort(got.begin(), got.end(),
                [](const Cube& x, const Cube& y) { return x.lits() < y.lits(); });
      if (got == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_kernel({cube({a}), cube({b}), cube({c})}));
  EXPECT_TRUE(has_kernel({cube({d}), cube({e})}));
}

TEST(Kernels, KernelsAreCubeFree) {
  Rng rng(23);
  for (int iter = 0; iter < 10; ++iter) {
    Cover f;
    f.num_vars = 6;
    for (int i = 0; i < 6; ++i) {
      std::vector<Lit> lits;
      for (uint32_t v = 0; v < 6; ++v)
        if (rng.chance(1, 2)) lits.push_back(lit_pos(v));
      if (lits.empty()) lits.push_back(lit_pos(0));
      f.cubes.push_back(Cube(std::move(lits)));
    }
    f.remove_contained_cubes();
    for (const auto& [ck, kernel] : kernels(f)) {
      if (kernel.cubes.size() < 2) continue;
      EXPECT_TRUE(common_cube_of(kernel).empty())
          << "kernel not cube-free: " << kernel.to_string();
    }
  }
}

/// Evaluates an extraction result under an assignment of the original vars
/// (extracted variables are computed in definition order).
bool eval_extraction(const ExtractionResult& ex, size_t function_index,
                     const std::vector<bool>& original) {
  std::vector<bool> full = original;
  for (const auto& divisor : ex.divisors) full.push_back(divisor.eval(full));
  return ex.functions[function_index].eval(full);
}

TEST(Extract, PreservesFunctionsAndSavesLiterals) {
  // Two functions sharing (c + d): f1 = ac + ad, f2 = bc + bd + e.
  const Cover f1 = cover_of(5, {cube({a, c}), cube({a, d})});
  const Cover f2 = cover_of(5, {cube({b, c}), cube({b, d}), cube({e})});
  const size_t before = f1.num_literals() + f2.num_literals();
  const auto ex = extract_shared({f1, f2});
  EXPECT_LE(ex.total_literals(), before);
  for (uint32_t m = 0; m < 32; ++m) {
    std::vector<bool> assignment;
    for (int i = 0; i < 5; ++i) assignment.push_back(((m >> i) & 1) != 0);
    EXPECT_EQ(eval_extraction(ex, 0, assignment), f1.eval(assignment)) << "f1 at " << m;
    EXPECT_EQ(eval_extraction(ex, 1, assignment), f2.eval(assignment)) << "f2 at " << m;
  }
}

TEST(Extract, NoCandidatesNoChange) {
  const Cover f1 = cover_of(4, {cube({a})});
  const auto ex = extract_shared({f1});
  EXPECT_TRUE(ex.divisors.empty());
  EXPECT_EQ(ex.functions[0].cubes, f1.cubes);
}

class ExtractRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtractRandomTest, RandomMultiOutputCoversPreserved) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  for (int iter = 0; iter < 5; ++iter) {
    const uint32_t num_vars = 6;
    std::vector<Cover> functions;
    for (int fi = 0; fi < 3; ++fi) {
      Cover f;
      f.num_vars = num_vars;
      const int n = 2 + static_cast<int>(rng.below(6));
      for (int i = 0; i < n; ++i) {
        std::vector<Lit> lits;
        for (uint32_t v = 0; v < num_vars; ++v) {
          const uint64_t r3 = rng.below(3);
          if (r3 == 0) lits.push_back(lit_pos(v));
          if (r3 == 1) lits.push_back(lit_neg(v));
        }
        f.cubes.push_back(Cube(std::move(lits)));
      }
      f.remove_contained_cubes();
      functions.push_back(std::move(f));
    }
    size_t before = 0;
    for (const auto& f : functions) before += f.num_literals();
    const auto ex = extract_shared(functions);
    EXPECT_LE(ex.total_literals(), before);
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
      std::vector<bool> assignment;
      for (uint32_t i = 0; i < num_vars; ++i) assignment.push_back(((m >> i) & 1) != 0);
      for (size_t fi = 0; fi < functions.size(); ++fi)
        ASSERT_EQ(eval_extraction(ex, fi, assignment), functions[fi].eval(assignment))
            << "function " << fi << " minterm " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractRandomTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace eco::sop
