// Front-end hardening: truncated / garbage netlist, BLIF, and weight files
// must produce a net::ParseError with a one-line diagnostic — never a crash,
// an uncaught std::exception, or a silently empty network. The corpus lives
// in tests/data/malformed/ (ECOPATCH_TEST_DATA_DIR).

#include <gtest/gtest.h>

#include <string>

#include "net/blif.hpp"
#include "net/network.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"

namespace eco::net {
namespace {

std::string data_path(const std::string& name) {
  return std::string(ECOPATCH_TEST_DATA_DIR) + "/malformed/" + name;
}

/// A diagnostic is one line: non-empty, no embedded newline — what the CLI
/// prints verbatim before exiting nonzero.
void expect_one_line(const ParseError& e) {
  const std::string msg = e.what();
  EXPECT_FALSE(msg.empty());
  EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
}

TEST(NetMalformed, TruncatedVerilogThrowsParseError) {
  try {
    parse_verilog_file(data_path("truncated.v"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, GarbageVerilogThrowsParseError) {
  try {
    parse_verilog_file(data_path("garbage.v"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, UnknownGateVerilogThrowsParseError) {
  try {
    parse_verilog_file(data_path("bad_gate.v"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, TruncatedBlifThrowsParseError) {
  try {
    parse_blif_file(data_path("truncated.blif"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, GarbageBlifThrowsParseError) {
  try {
    parse_blif_file(data_path("garbage.blif"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, BadWeightsThrowsParseError) {
  try {
    parse_weights_file(data_path("bad_weights.txt"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    expect_one_line(e);
  }
}

TEST(NetMalformed, MissingFileThrowsParseError) {
  EXPECT_THROW(parse_verilog_file(data_path("does_not_exist.v")), ParseError);
  EXPECT_THROW(parse_blif_file(data_path("does_not_exist.blif")), ParseError);
  EXPECT_THROW(parse_weights_file(data_path("does_not_exist.txt")), ParseError);
}

TEST(NetMalformed, ParseErrorIsARuntimeError) {
  // The taxonomy contract: ParseError and InputError remain catchable as
  // std::runtime_error so pre-taxonomy call sites keep working.
  try {
    parse_weights_string("x not_a_number\n");
    FAIL() << "expected ParseError";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("weights"), std::string::npos);
  }
}

}  // namespace
}  // namespace eco::net
