#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace eco::sat {
namespace {

/// Builds a solver where assuming all of `selectors` makes it UNSAT, with
/// known minimal cores. Each "requirement" clause (OR of selector negations)
/// encodes that at least one selector of the group must be dropped.
struct SelectorProblem {
  Solver solver;
  LitVec selectors;
};

TEST(Minimize, SingleNeededAssumption) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_unit(mk_lit(a, true)));  // a must be false
  LitVec assumps = {mk_lit(a)};
  ASSERT_TRUE(s.solve(assumps).is_false());
  EXPECT_EQ(minimize_assumptions(s, assumps), 1);
  EXPECT_EQ(assumps[0], mk_lit(a));
}

TEST(Minimize, SingleUnneededAssumption) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_unit(mk_lit(a, true)));
  LitVec ctx = {mk_lit(a)};                // the context alone is UNSAT
  LitVec assumps = {mk_lit(b)};
  ASSERT_TRUE(s.solve({mk_lit(a), mk_lit(b)}).is_false());
  EXPECT_EQ(minimize_assumptions(s, assumps, ctx), 0);
}

TEST(Minimize, DropsIrrelevantAssumptions) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  std::vector<Var> junk;
  for (int i = 0; i < 10; ++i) junk.push_back(s.new_var());
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(b, true)));
  LitVec assumps;
  assumps.push_back(mk_lit(a));
  for (const Var v : junk) assumps.push_back(mk_lit(v));
  assumps.push_back(mk_lit(b));
  ASSERT_TRUE(s.solve(assumps).is_false());
  const int kept = minimize_assumptions(s, assumps);
  EXPECT_EQ(kept, 2);
  const std::set<Lit> kept_set(assumps.begin(), assumps.begin() + kept);
  EXPECT_TRUE(kept_set.count(mk_lit(a)));
  EXPECT_TRUE(kept_set.count(mk_lit(b)));
}

TEST(Minimize, PrefersLowIndexEntriesWhenInterchangeable) {
  // Any single one of the four selectors is enough for UNSAT:
  // clauses force s_i -> false for each i. Minimization should keep exactly
  // one, and with the low-first strategy it should be the first entry.
  Solver s;
  LitVec sel;
  for (int i = 0; i < 4; ++i) {
    const Var v = s.new_var();
    ASSERT_TRUE(s.add_unit(mk_lit(v, true)));
    sel.push_back(mk_lit(v));
  }
  ASSERT_TRUE(s.solve(sel).is_false());
  LitVec assumps = sel;
  const int kept = minimize_assumptions(s, assumps);
  EXPECT_EQ(kept, 1);
  EXPECT_EQ(assumps[0], sel[0]);
}

/// Property: the kept prefix is (a) still UNSAT and (b) minimal — removing
/// any single kept assumption makes the problem SAT.
void check_minimality(Solver& s, const LitVec& kept) {
  ASSERT_TRUE(s.solve(kept).is_false());
  for (size_t i = 0; i < kept.size(); ++i) {
    LitVec sub;
    for (size_t j = 0; j < kept.size(); ++j)
      if (j != i) sub.push_back(kept[j]);
    EXPECT_TRUE(s.solve(sub).is_true())
        << "kept assumption " << i << " is redundant: subset not minimal";
  }
}

class MinimizeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeRandomTest, ProducesMinimalUnsatSubsets) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 3);
  for (int iter = 0; iter < 15; ++iter) {
    Solver s;
    const int n = 6 + static_cast<int>(rng.below(10));
    LitVec sel;
    for (int i = 0; i < n; ++i) sel.push_back(mk_lit(s.new_var()));
    // Random "requirement" clauses over negated selectors; plus one clause
    // that guarantees overall UNSAT when all selectors are assumed.
    const int groups = 1 + static_cast<int>(rng.below(4));
    for (int g = 0; g < groups; ++g) {
      LitVec clause;
      const int width = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < width; ++k)
        clause.push_back(~sel[rng.below(static_cast<uint64_t>(n))]);
      ASSERT_TRUE(s.add_clause(clause));
    }
    if (!s.solve(sel).is_false()) continue;  // all selectors assumable: skip
    LitVec assumps = sel;
    MinimizeStats stats;
    const int kept = minimize_assumptions(s, assumps, &stats);
    ASSERT_GE(kept, 1);
    LitVec prefix(assumps.begin(), assumps.begin() + kept);
    check_minimality(s, prefix);
    EXPECT_GT(stats.sat_calls, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeRandomTest, ::testing::Range(0, 10));

TEST(Minimize, NaiveAgreesOnMinimality) {
  Rng rng(991);
  for (int iter = 0; iter < 10; ++iter) {
    Solver s;
    const int n = 8;
    LitVec sel;
    for (int i = 0; i < n; ++i) sel.push_back(mk_lit(s.new_var()));
    for (int g = 0; g < 3; ++g) {
      LitVec clause;
      for (int k = 0; k < 2; ++k)
        clause.push_back(~sel[rng.below(static_cast<uint64_t>(n))]);
      ASSERT_TRUE(s.add_clause(clause));
    }
    if (!s.solve(sel).is_false()) continue;
    LitVec a1 = sel, a2 = sel;
    LitVec ctx1, ctx2;
    const int k1 = minimize_assumptions(s, a1, ctx1);
    const int k2 = minimize_assumptions_naive(s, a2, ctx2);
    LitVec p1(a1.begin(), a1.begin() + k1);
    LitVec p2(a2.begin(), a2.begin() + k2);
    check_minimality(s, p1);
    check_minimality(s, p2);
  }
}

TEST(Minimize, DivideAndConquerUsesFewCallsOnSparseCore) {
  // 64 selectors, only one needed: Algorithm 1 should stay near log2(N)
  // calls, far below the naive N calls.
  Solver s;
  LitVec sel;
  for (int i = 0; i < 64; ++i) sel.push_back(mk_lit(s.new_var()));
  ASSERT_TRUE(s.add_unit(~sel[0]));
  ASSERT_TRUE(s.solve(sel).is_false());
  LitVec assumps = sel;
  LitVec ctx;
  MinimizeStats fast;
  const int kept = minimize_assumptions(s, assumps, ctx, &fast);
  EXPECT_EQ(kept, 1);
  EXPECT_LE(fast.sat_calls, 16);  // ~2*log2(64) with slack

  LitVec assumps2 = sel;
  LitVec ctx2;
  MinimizeStats slow;
  minimize_assumptions_naive(s, assumps2, ctx2, &slow);
  EXPECT_GE(slow.sat_calls, 64);
  EXPECT_LT(fast.sat_calls, slow.sat_calls);
}

TEST(Minimize, ContextIsRestoredAfterCall) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(mk_lit(a, true), mk_lit(b, true)));
  LitVec ctx = {mk_lit(a)};
  LitVec assumps = {mk_lit(b)};
  ASSERT_TRUE(s.solve({mk_lit(a), mk_lit(b)}).is_false());
  minimize_assumptions(s, assumps, ctx);
  ASSERT_EQ(ctx.size(), 1u);
  EXPECT_EQ(ctx[0], mk_lit(a));
}

}  // namespace
}  // namespace eco::sat
