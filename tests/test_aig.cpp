#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig.hpp"
#include "aig/ops.hpp"
#include "aig/sim.hpp"
#include "aig/window.hpp"
#include "util/rng.hpp"

namespace eco::aig {
namespace {

TEST(AigLit, Helpers) {
  EXPECT_EQ(lit_node(kLitFalse), 0u);
  EXPECT_FALSE(lit_compl(kLitFalse));
  EXPECT_TRUE(lit_compl(kLitTrue));
  EXPECT_EQ(lit_not(kLitFalse), kLitTrue);
  EXPECT_EQ(lit_make(3, true), 7u);
  EXPECT_EQ(lit_notif(lit_make(3), true), lit_make(3, true));
  EXPECT_EQ(lit_notif(lit_make(3), false), lit_make(3));
}

TEST(Aig, ConstantSimplifications) {
  Aig g;
  const Lit a = g.add_pi("a");
  EXPECT_EQ(g.add_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.add_and(kLitFalse, a), kLitFalse);
  EXPECT_EQ(g.add_and(a, kLitTrue), a);
  EXPECT_EQ(g.add_and(kLitTrue, a), a);
  EXPECT_EQ(g.add_and(a, a), a);
  EXPECT_EQ(g.add_and(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  const Lit z = g.add_and(lit_not(a), b);
  EXPECT_NE(x, z);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(Aig, DerivedGatesTruthTables) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  g.add_po(g.add_and(a, b), "and");
  g.add_po(g.add_or(a, b), "or");
  g.add_po(g.add_xor(a, b), "xor");
  g.add_po(g.add_nand(a, b), "nand");
  g.add_po(g.add_nor(a, b), "nor");
  g.add_po(g.add_xnor(a, b), "xnor");
  const auto tts = po_truth_tables(g);
  EXPECT_EQ(tts[0][0], 0b1000u);
  EXPECT_EQ(tts[1][0], 0b1110u);
  EXPECT_EQ(tts[2][0], 0b0110u);
  EXPECT_EQ(tts[3][0], 0b0111u);
  EXPECT_EQ(tts[4][0], 0b0001u);
  EXPECT_EQ(tts[5][0], 0b1001u);
}

TEST(Aig, MuxTruthTable) {
  Aig g;
  const Lit s = g.add_pi("s");
  const Lit t = g.add_pi("t");
  const Lit e = g.add_pi("e");
  g.add_po(g.add_mux(s, t, e), "mux");
  // Minterm order: s is PI0 (bit0), t PI1, e PI2.
  const auto tt = truth_table(g, g.po_lit(0));
  for (uint32_t m = 0; m < 8; ++m) {
    const bool sv = m & 1, tv = m & 2, ev = m & 4;
    const bool expected = sv ? tv : ev;
    EXPECT_EQ(((tt[0] >> m) & 1) != 0, expected) << "minterm " << m;
  }
}

TEST(Aig, MultiInputGates) {
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(g.add_pi());
  g.add_po(g.add_and_multi(ins), "and5");
  g.add_po(g.add_or_multi(ins), "or5");
  g.add_po(g.add_xor_multi(ins), "xor5");
  const auto tts = po_truth_tables(g);
  for (uint32_t m = 0; m < 32; ++m) {
    const int ones = __builtin_popcount(m);
    EXPECT_EQ(((tts[0][0] >> m) & 1) != 0, ones == 5);
    EXPECT_EQ(((tts[1][0] >> m) & 1) != 0, ones > 0);
    EXPECT_EQ(((tts[2][0] >> m) & 1) != 0, (ones % 2) == 1);
  }
}

TEST(Aig, EmptyMultiGates) {
  Aig g;
  EXPECT_EQ(g.add_and_multi({}), kLitTrue);
  EXPECT_EQ(g.add_or_multi({}), kLitFalse);
  EXPECT_EQ(g.add_xor_multi({}), kLitFalse);
}

TEST(Aig, LevelsAreMonotone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, lit_not(a));
  g.add_po(y);
  const auto levels = g.levels();
  EXPECT_EQ(levels[lit_node(a)], 0u);
  EXPECT_EQ(levels[lit_node(x)], 1u);
  EXPECT_EQ(levels[lit_node(y)], 2u);
}

TEST(Aig, CleanupRemovesDanglingNodes) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit used = g.add_and(a, b);
  g.add_and(lit_not(a), lit_not(b));  // dangling
  g.add_po(used, "f");
  EXPECT_EQ(g.num_ands(), 2u);
  const Aig clean = g.cleanup();
  EXPECT_EQ(clean.num_ands(), 1u);
  EXPECT_EQ(clean.num_pis(), 2u);
  EXPECT_EQ(clean.num_pos(), 1u);
  EXPECT_EQ(clean.pi_name(0), "a");
  EXPECT_EQ(clean.po_name(0), "f");
  EXPECT_EQ(truth_table(clean, clean.po_lit(0))[0], truth_table(g, g.po_lit(0))[0]);
}

TEST(Aig, ConeSizeCountsSharedNodesOnce) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, lit_not(b));
  const Lit z = g.add_and(x, b);
  const Lit roots[] = {y, z};
  EXPECT_EQ(g.cone_size(roots), 3u);
}

TEST(AigOps, AppendPreservesFunction) {
  Aig src;
  const Lit a = src.add_pi("a");
  const Lit b = src.add_pi("b");
  src.add_po(src.add_xor(a, b), "x");

  Aig dst;
  const Lit p = dst.add_pi("p");
  const Lit q = dst.add_pi("q");
  const std::vector<Lit> pi_map = {p, q};
  const auto outs = append(src, dst, pi_map);
  dst.add_po(outs[0], "x");
  EXPECT_EQ(truth_table(dst, dst.po_lit(0))[0], 0b0110u);
}

TEST(AigOps, AppendWithInvertedAndConstantInputs) {
  Aig src;
  const Lit a = src.add_pi("a");
  const Lit b = src.add_pi("b");
  src.add_po(src.add_and(a, b), "f");

  Aig dst;
  const Lit p = dst.add_pi("p");
  dst.add_pi("q");
  const std::vector<Lit> pi_map = {lit_not(p), kLitTrue};  // f = !p & 1 = !p
  const auto outs = append(src, dst, pi_map);
  dst.add_po(outs[0], "f");
  const auto tt = truth_table(dst, dst.po_lit(0));
  EXPECT_EQ(tt[0] & 0xFu, 0b0101u);
}

TEST(AigOps, CofactorPis) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit c = g.add_pi("c");
  g.add_po(g.add_mux(a, b, c), "f");
  const std::pair<uint32_t, bool> fix1[] = {{0u, true}};  // a=1 -> f=b
  const Aig pos_cof = cofactor_pis(g, fix1);
  EXPECT_EQ(pos_cof.num_pis(), 3u);
  const auto tt = truth_table(pos_cof, pos_cof.po_lit(0));
  for (uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(((tt[0] >> m) & 1) != 0, (m & 2) != 0);
  const std::pair<uint32_t, bool> fix0[] = {{0u, false}};  // a=0 -> f=c
  const Aig neg_cof = cofactor_pis(g, fix0);
  const auto tt0 = truth_table(neg_cof, neg_cof.po_lit(0));
  for (uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(((tt0[0] >> m) & 1) != 0, (m & 4) != 0);
}

TEST(AigOps, ComposePiSubstitutesFunction) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit c = g.add_pi("c");
  g.add_po(g.add_and(a, b), "f");
  // Replace a by (b xor c): f = (b xor c) & b = b & !c.
  const Lit bxc = g.add_xor(b, c);
  const Aig composed = compose_pi(g, 0, bxc);
  const auto tt = truth_table(composed, composed.po_lit(0));
  for (uint32_t m = 0; m < 8; ++m) {
    const bool bv = m & 2, cv = m & 4;
    EXPECT_EQ(((tt[0] >> m) & 1) != 0, bv && !cv);
  }
}

TEST(AigOps, TransferThrowsOnUnmappedPi) {
  Aig src;
  const Lit a = src.add_pi("a");
  src.add_po(a, "f");
  Aig dst;
  std::vector<Lit> map;  // no PI mapping provided
  const Lit roots[] = {src.po_lit(0)};
  EXPECT_THROW(transfer(src, dst, roots, map), std::invalid_argument);
}

TEST(AigOps, ExtractConeKeepsInterface) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit c = g.add_pi("c");
  (void)c;
  const Lit f = g.add_or(a, b);
  const Aig cone = extract_cone(g, f);
  EXPECT_EQ(cone.num_pis(), 3u);
  EXPECT_EQ(cone.num_pos(), 1u);
  const auto tt = truth_table(cone, cone.po_lit(0));
  for (uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(((tt[0] >> m) & 1) != 0, (m & 1) || (m & 2));
}

TEST(AigSim, SimulateMatchesEval) {
  Rng rng(5);
  Aig g;
  std::vector<Lit> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(g.add_pi());
  std::vector<Lit> pool = pis;
  for (int i = 0; i < 40; ++i) {
    const Lit x = pool[rng.below(pool.size())];
    const Lit y = pool[rng.below(pool.size())];
    pool.push_back(g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
  }
  for (int i = 0; i < 4; ++i) g.add_po(pool[pool.size() - 1 - static_cast<size_t>(i)]);

  const std::vector<uint64_t> pi_words = random_pi_words(g, rng);
  const auto words = simulate(g, pi_words);
  for (int bit = 0; bit < 8; ++bit) {
    std::vector<bool> pattern(g.num_pis());
    for (uint32_t i = 0; i < g.num_pis(); ++i)
      pattern[i] = ((pi_words[i] >> bit) & 1ULL) != 0;
    const auto po_values = eval(g, pattern);
    for (uint32_t i = 0; i < g.num_pos(); ++i)
      EXPECT_EQ(po_values[i], ((sim_value(words, g.po_lit(i)) >> bit) & 1ULL) != 0);
  }
}

TEST(AigSim, TruthTableRejectsWidePis) {
  Aig g;
  for (int i = 0; i < 17; ++i) g.add_pi();
  g.add_po(kLitTrue);
  EXPECT_THROW(truth_table(g, kLitTrue), std::invalid_argument);
}

TEST(AigWindow, TfiMarksExactCone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(b, c);
  g.add_po(x);
  g.add_po(y);
  const Node roots[] = {lit_node(x)};
  const auto mark = tfi_mark(g, roots);
  EXPECT_TRUE(mark[lit_node(x)]);
  EXPECT_TRUE(mark[lit_node(a)]);
  EXPECT_TRUE(mark[lit_node(b)]);
  EXPECT_FALSE(mark[lit_node(c)]);
  EXPECT_FALSE(mark[lit_node(y)]);
}

TEST(AigWindow, TfoMarksDownstream) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, c);
  const Lit z = g.add_and(b, c);
  g.add_po(y);
  g.add_po(z);
  const Node seeds[] = {lit_node(x)};
  const auto mark = tfo_mark(g, seeds);
  EXPECT_TRUE(mark[lit_node(x)]);
  EXPECT_TRUE(mark[lit_node(y)]);
  EXPECT_FALSE(mark[lit_node(z)]);
  const auto pos = tfo_pos(g, seeds);
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], 0u);
}

TEST(AigWindow, SupportPis) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  (void)a;
  const Lit y = g.add_and(b, c);
  g.add_po(y);
  const Lit roots[] = {y};
  const auto support = support_pis(g, roots);
  EXPECT_EQ(support, (std::vector<uint32_t>{1, 2}));
}

// Property: random AIG, cleanup preserves all PO functions.
class AigRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AigRandomTest, CleanupPreservesFunctions) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  Aig g;
  std::vector<Lit> pool;
  const int num_pis = 4 + static_cast<int>(rng.below(6));
  for (int i = 0; i < num_pis; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < 60; ++i) {
    const Lit x = pool[rng.below(pool.size())];
    const Lit y = pool[rng.below(pool.size())];
    pool.push_back(g.add_and(lit_notif(x, rng.chance(1, 2)), lit_notif(y, rng.chance(1, 2))));
  }
  for (int i = 0; i < 3; ++i)
    g.add_po(lit_notif(pool[rng.below(pool.size())], rng.chance(1, 2)));
  const Aig clean = g.cleanup();
  EXPECT_LE(clean.num_ands(), g.num_ands());
  const auto tts_before = po_truth_tables(g);
  const auto tts_after = po_truth_tables(clean);
  EXPECT_EQ(tts_before, tts_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace eco::aig
