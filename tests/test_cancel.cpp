#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace eco {
namespace {

TEST(Deadline, ZeroBudgetIsUnlimited) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, NegativeBudgetIsUnlimited) {
  Deadline d(-5.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining(), 0.0);
}

// The engine classifies a token as "limited" with `remaining() < 1e17`:
// unlimited deadlines report +infinity, and any representable finite budget
// stays well below the sentinel (steady_clock durations cap out around
// 2.9e11 seconds). Pin both sides of that boundary.
TEST(Deadline, RemainingSentinelBoundary) {
  EXPECT_GE(Deadline{}.remaining(), 1e17);
  EXPECT_GE(Deadline(0.0).remaining(), 1e17);
  Deadline large(1e9);  // ~31 years: huge but representable
  EXPECT_LT(large.remaining(), 1e17);
  EXPECT_GT(large.remaining(), 0.9e9);
}

TEST(CancelToken, DefaultIsUnlimited) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kNone);
  EXPECT_TRUE(std::isinf(t.remaining()));
  t.request_stop();  // no-op, must not crash
  EXPECT_FALSE(t.stop_requested());
  t.charge_memory(1 << 20);  // no-op
  EXPECT_EQ(t.memory_used(), 0u);
}

TEST(CancelToken, StoppableObservesRequestStop) {
  CancelToken t = CancelToken::stoppable();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancelled());
  CancelToken copy = t;  // copies share state
  copy.request_stop();
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kStopped);
  EXPECT_TRUE(t.stop_requested());
}

TEST(CancelToken, DeadlineExpiryCancels) {
  CancelToken t(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kDeadline);
  EXPECT_EQ(t.remaining(), 0.0);  // clamped, never negative
}

TEST(CancelToken, ZeroBudgetTokenHasNoDeadline) {
  CancelToken t(0.0);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancelled());
  EXPECT_TRUE(std::isinf(t.remaining()));
}

TEST(CancelToken, MemoryBudgetCancels) {
  CancelToken t(0.0, /*memory_budget_bytes=*/1000);
  t.charge_memory(600);
  EXPECT_FALSE(t.cancelled());
  t.charge_memory(600);
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), CancelReason::kMemory);
  t.release_memory(600);
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, StopWinsOverDeadline) {
  CancelToken t(1e-9);
  t.request_stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(t.reason(), CancelReason::kStopped);
}

TEST(CancelToken, ChildCapsSliceByParentRemaining) {
  CancelToken parent(1000.0);
  CancelToken child = parent.child(5.0);
  EXPECT_TRUE(child.valid());
  EXPECT_LE(child.remaining(), 5.0);
  // A slice larger than the parent's remaining time is capped by it.
  CancelToken wide = parent.child(1e6);
  EXPECT_LE(wide.remaining(), 1000.0);
}

TEST(CancelToken, ChildObservesParentStop) {
  CancelToken parent = CancelToken::stoppable();
  CancelToken child = parent.child(60.0);
  EXPECT_FALSE(child.cancelled());
  parent.request_stop();
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), CancelReason::kStopped);
}

TEST(CancelToken, ChildObservesParentDeadline) {
  CancelToken parent(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  CancelToken child = parent.child(60.0);
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), CancelReason::kDeadline);
}

TEST(CancelToken, ChildSharesMemoryAccountWithRoot) {
  CancelToken parent(0.0, /*memory_budget_bytes=*/1000);
  CancelToken child = parent.child(60.0);
  child.charge_memory(1500);
  EXPECT_EQ(parent.memory_used(), 1500u);
  EXPECT_TRUE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), CancelReason::kMemory);
}

TEST(CancelToken, ChildOfUnlimitedTokenIsPlainBudget) {
  CancelToken t;
  CancelToken child = t.child(60.0);
  EXPECT_TRUE(child.valid());
  EXPECT_FALSE(child.cancelled());
  EXPECT_LE(child.remaining(), 60.0);
}

TEST(CancelToken, GraceDetachesFromExpiredDeadline) {
  CancelToken parent(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(parent.cancelled());
  // A child would inherit the expired deadline; a grace window must not.
  CancelToken g = parent.grace(60.0);
  EXPECT_FALSE(g.cancelled());
  EXPECT_LE(g.remaining(), 60.0);
  EXPECT_GT(g.remaining(), 1.0);
}

TEST(CancelToken, GraceStillObservesStopAndMemory) {
  CancelToken parent(0.0, /*memory_budget_bytes=*/1000);
  CancelToken g = parent.grace(60.0);
  EXPECT_FALSE(g.cancelled());
  g.charge_memory(2000);
  EXPECT_EQ(g.reason(), CancelReason::kMemory);
  g.release_memory(2000);
  parent.request_stop();
  EXPECT_EQ(g.reason(), CancelReason::kStopped);
}

TEST(CancelToken, GraceOfUnlimitedTokenWorks) {
  CancelToken t;
  CancelToken g = t.grace(30.0);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(g.cancelled());
  EXPECT_LE(g.remaining(), 30.0);
}

TEST(CancelToken, ReasonNames) {
  EXPECT_STREQ(cancel_reason_name(CancelReason::kNone), "none");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kStopped), "stopped");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kMemory), "memory");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kDeadline), "deadline");
}

}  // namespace
}  // namespace eco
