// Compiled with ECO_TELEMETRY forced to 0 for this translation unit: proves
// the instrumentation macros expand to no-ops that still compile, and that
// nothing reaches the registry. Linked into test_telemetry, which asserts on
// the result (CompileTimeDisabledMacrosAreZeroCost).

#define ECO_TELEMETRY 0
#include "util/telemetry.hpp"

#include <cstdint>

static_assert(ECO_TELEMETRY == 0, "this TU must build with telemetry compiled out");

uint64_t run_compiled_out_instrumentation() {
  // All of these must vanish; none may touch the registry even while the
  // runtime flag is enabled (the test enables it before calling us).
  ECO_TELEMETRY_PHASE("disabled.phase");
  ECO_TELEMETRY_COUNT("disabled.count");
  ECO_TELEMETRY_COUNT("disabled.count", 41);
  ECO_TELEMETRY_GAUGE_SET("disabled.gauge", 7);
  ECO_TELEMETRY_GAUGE_MAX("disabled.gauge", 9);
  ECO_TELEMETRY_TIMER("disabled.timer");
  // The registry API itself is still available (library code may call it
  // directly); only the macros are compiled out.
  return eco::telemetry::counter_value("disabled.count");
}
