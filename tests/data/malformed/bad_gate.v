module bad (a, y);
  input a;
  output y;
  frobnicate g1 (y, a);
endmodule
