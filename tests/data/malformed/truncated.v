module broken (a, b, y);
  input a, b;
  output y;
  and g1 (y, a, b
