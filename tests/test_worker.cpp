// Tests for process isolation (src/service/worker.*) and the service front
// end's line discipline (src/service/lines.*): crash containment, watchdog
// hard-kills, retry with backoff, recycling, spawn-failure degradation, and
// the capped line splitter. Suite names deliberately avoid the TSan CI
// job's -R filter (Service/Executor/...): these tests fork from a
// multithreaded process, which TSan's runtime refuses to follow; the
// ASan/UBSan job runs them.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/suite.hpp"
#include "net/verilog.hpp"
#include "net/weights.hpp"
#include "service/daemon.hpp"
#include "service/lines.hpp"
#include "util/faultpoint.hpp"
#include "util/jsonr.hpp"

namespace eco::service {
namespace {

namespace fs = std::filesystem;

std::array<std::string, 3> write_unit(const std::string& tag, int index,
                                      int scale = 1) {
  const fs::path dir = fs::path(testing::TempDir()) / ("wrk_" + tag);
  fs::create_directories(dir);
  const benchgen::EcoUnit unit = benchgen::make_unit(index, 20170912, scale);
  std::array<std::string, 3> files = {(dir / "impl.v").string(),
                                      (dir / "spec.v").string(),
                                      (dir / "weights.txt").string()};
  net::write_verilog_file(files[0], unit.impl);
  net::write_verilog_file(files[1], unit.spec);
  net::write_weights_file(files[2], unit.weights);
  return files;
}

std::string solve_request(const std::string& id, const std::array<std::string, 3>& f,
                          double budget = 20) {
  return "{\"op\":\"solve\",\"id\":\"" + id + "\",\"impl\":\"" + f[0] +
         "\",\"spec\":\"" + f[1] + "\",\"weights\":\"" + f[2] +
         "\",\"budget\":" + std::to_string(budget) + "}";
}

JsonValue parse_response(const std::string& line) {
  std::string err;
  const auto doc = json_parse(line, &err);
  EXPECT_TRUE(doc.has_value()) << err << " in: " << line;
  return doc ? *doc : JsonValue();
}

/// Disarms every fault site when a test body exits, pass or fail.
struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

ServiceOptions isolated_options(int workers) {
  ServiceOptions o;
  o.jobs = 1;
  o.worker.workers = workers;
  // Keep chaos tests fast: a wedged worker is reaped within ~1s.
  o.worker.min_kill_seconds = 1.0;
  o.worker.kill_factor = 1.0;
  o.worker.backoff_base_seconds = 0.05;
  return o;
}

// ---- LineSplitter -------------------------------------------------------

TEST(LineSplit, FragmentedCrlfAndEmptyLines) {
  LineSplitter split;
  std::vector<std::string> lines;
  const auto sink = [&](const std::string& l) { lines.push_back(l); };
  // One logical stream delivered in awkward fragments: a line split across
  // three appends, a CRLF line, empty and CR-only lines to skip.
  EXPECT_TRUE(split.append("hel", 3, sink));
  EXPECT_TRUE(split.append("lo wor", 6, sink));
  EXPECT_EQ(lines.size(), 0u);
  EXPECT_EQ(split.pending(), 9u);
  EXPECT_TRUE(split.append("ld\nsecond\r\n\n\r\nthi", 17, sink));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello world");
  EXPECT_EQ(lines[1], "second");
  EXPECT_TRUE(split.append("rd\n", 3, sink));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "third");
  EXPECT_EQ(split.pending(), 0u);
  EXPECT_FALSE(split.overflowed());
}

TEST(LineSplit, OversizedCompleteLineLatches) {
  LineSplitter split(8);
  std::vector<std::string> lines;
  const auto sink = [&](const std::string& l) { lines.push_back(l); };
  // The line before the oversized one is still delivered; nothing after.
  const std::string data = "ok\n0123456789ab\nafter\n";
  EXPECT_FALSE(split.append(data.data(), data.size(), sink));
  EXPECT_TRUE(split.overflowed());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
  // Latched: further appends are no-ops.
  EXPECT_FALSE(split.append("more\n", 5, sink));
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(split.pending(), 0u);
}

TEST(LineSplit, OversizedPartialLineLatches) {
  LineSplitter split(16);
  std::vector<std::string> lines;
  const auto sink = [&](const std::string& l) { lines.push_back(l); };
  // A newline-free stream must latch once the partial exceeds the cap —
  // this is the unbounded-receive-buffer DoS the cap exists for.
  const std::string chunk(10, 'x');
  EXPECT_TRUE(split.append(chunk.data(), chunk.size(), sink));
  EXPECT_FALSE(split.append(chunk.data(), chunk.size(), sink));
  EXPECT_TRUE(split.overflowed());
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(split.pending(), 0u) << "latched splitter must not hold bytes";
}

// ---- Fault-spec limit field ---------------------------------------------

TEST(FaultLimit, LimitCapsFiresThenStandsDown) {
  FaultGuard guard;
  ASSERT_TRUE(fault::arm("worker.crash:1:1:2"));
  EXPECT_TRUE(fault::should_fail(fault::Site::kWorkerCrash));
  EXPECT_TRUE(fault::should_fail(fault::Site::kWorkerCrash));
  // Third and later draws: the limit is reached, the site stands down.
  EXPECT_FALSE(fault::should_fail(fault::Site::kWorkerCrash));
  EXPECT_FALSE(fault::should_fail(fault::Site::kWorkerCrash));
  EXPECT_EQ(fault::fired_count(fault::Site::kWorkerCrash), 2u);
}

TEST(FaultLimit, MalformedLimitRejected) {
  FaultGuard guard;
  std::string error;
  EXPECT_FALSE(fault::arm("worker.crash:1:1:x", &error));
  EXPECT_NE(error.find("limit"), std::string::npos) << error;
  EXPECT_FALSE(fault::arm("worker.crash:1:1:", &error));
}

// ---- Process isolation --------------------------------------------------

TEST(WorkerIsolation, OutcomeBitIdenticalToInProcess) {
  const auto files = write_unit("identical", 1);
  std::string inproc, isolated;
  {
    ServiceOptions o;
    o.jobs = 1;
    Daemon daemon(o);
    inproc = daemon.submit_and_wait(solve_request("j", files));
  }
  {
    Daemon daemon(isolated_options(1));
    isolated = daemon.submit_and_wait(solve_request("j", files));
  }
  const JsonValue a = parse_response(inproc);
  const JsonValue b = parse_response(isolated);
  ASSERT_TRUE(a["ok"].as_bool()) << inproc;
  ASSERT_TRUE(b["ok"].as_bool()) << isolated;
  // The outcome fields that define the patch must match exactly; timings
  // naturally differ. The isolated response additionally reports its
  // worker.
  for (const char* key : {"status", "verification", "method"})
    EXPECT_EQ(a["outcome"][key].as_string(), b["outcome"][key].as_string()) << key;
  EXPECT_EQ(a["outcome"]["total_cost"].as_number(),
            b["outcome"]["total_cost"].as_number());
  EXPECT_EQ(a["outcome"]["patch_gates"].as_number(),
            b["outcome"]["patch_gates"].as_number());
  EXPECT_FALSE(a["service"].contains("worker"));
  EXPECT_GT(b["service"]["worker"]["pid"].as_number(), 0);
}

TEST(WorkerIsolation, CrashContainedAndNextJobServed) {
  FaultGuard guard;
  const auto files = write_unit("crash", 1);
  Daemon daemon(isolated_options(1));
  ASSERT_TRUE(fault::arm("worker.crash:1:1:1"));  // exactly one kill

  const JsonValue crashed = parse_response(
      daemon.submit_and_wait(solve_request("c1", files)));
  EXPECT_FALSE(crashed["ok"].as_bool());
  EXPECT_EQ(crashed["error"]["code"].as_string(), "worker_crashed");
  EXPECT_EQ(crashed["error"]["signal"].as_number(), 9);  // SIGKILL'd itself
  EXPECT_FALSE(crashed["error"]["watchdog"].as_bool());

  // The daemon survived its worker: the next job respawns and succeeds.
  const JsonValue ok = parse_response(
      daemon.submit_and_wait(solve_request("c2", files)));
  EXPECT_TRUE(ok["ok"].as_bool());
  EXPECT_EQ(ok["outcome"]["status"].as_string(), "patched");
  EXPECT_EQ(ok["service"]["worker"]["respawns"].as_number(), 1);
}

TEST(WorkerIsolation, RetryRunsCrashedJobInFreshWorker) {
  FaultGuard guard;
  const auto files = write_unit("retry", 1);
  ServiceOptions o = isolated_options(1);
  o.worker.retries = 2;
  Daemon daemon(o);
  ASSERT_TRUE(fault::arm("worker.crash:1:1:1"));

  // The first dispatch dies; the retry draws past the one-shot fault and
  // the job still answers with a real outcome.
  const JsonValue r = parse_response(
      daemon.submit_and_wait(solve_request("r1", files)));
  EXPECT_TRUE(r["ok"].as_bool());
  EXPECT_EQ(r["outcome"]["status"].as_string(), "patched");
  EXPECT_EQ(r["service"]["worker"]["retries"].as_number(), 1);
  EXPECT_EQ(r["service"]["worker"]["respawns"].as_number(), 1);
}

TEST(WorkerIsolation, WatchdogReapsHungWorker) {
  FaultGuard guard;
  const auto files = write_unit("hang", 1);
  Daemon daemon(isolated_options(1));
  ASSERT_TRUE(fault::arm("worker.hang:1:1:1"));

  // Budget 0.5s, min_kill 1s: the wedged worker is SIGKILLed at ~1s. A
  // hang never checks any CancelToken — only the hard watchdog gets it.
  const JsonValue hung = parse_response(
      daemon.submit_and_wait(solve_request("h1", files, 0.5)));
  EXPECT_FALSE(hung["ok"].as_bool());
  EXPECT_EQ(hung["error"]["code"].as_string(), "worker_crashed");
  EXPECT_TRUE(hung["error"]["watchdog"].as_bool());

  const JsonValue ok = parse_response(
      daemon.submit_and_wait(solve_request("h2", files)));
  EXPECT_TRUE(ok["ok"].as_bool());
}

TEST(WorkerIsolation, SpawnFailureDegradesToInProcess) {
  FaultGuard guard;
  const auto files = write_unit("degrade", 1);
  ASSERT_TRUE(fault::arm("worker.spawn"));  // every spawn fails
  Daemon daemon(isolated_options(2));

  // The circuit breaker trips after the consecutive-failure limit and jobs
  // fall back to the in-process path: served, without a worker block.
  const JsonValue r = parse_response(
      daemon.submit_and_wait(solve_request("d1", files)));
  EXPECT_TRUE(r["ok"].as_bool());
  EXPECT_EQ(r["outcome"]["status"].as_string(), "patched");
  EXPECT_FALSE(r["service"].contains("worker"));
  ASSERT_NE(daemon.worker_pool(), nullptr);
  EXPECT_TRUE(daemon.worker_pool()->degraded());
  EXPECT_GE(daemon.worker_pool()->stats().degraded_jobs, 1u);
}

TEST(WorkerIsolation, RecycleReplacesWorkerAfterJobLimit) {
  const auto files = write_unit("recycle", 1);
  ServiceOptions o = isolated_options(1);
  o.worker.recycle_jobs = 1;  // every job gets a fresh process
  Daemon daemon(o);

  const JsonValue a = parse_response(
      daemon.submit_and_wait(solve_request("a", files)));
  const JsonValue b = parse_response(
      daemon.submit_and_wait(solve_request("b", files)));
  ASSERT_TRUE(a["ok"].as_bool());
  ASSERT_TRUE(b["ok"].as_bool());
  EXPECT_NE(a["service"]["worker"]["pid"].as_number(),
            b["service"]["worker"]["pid"].as_number());
  EXPECT_GE(daemon.worker_pool()->stats().recycled, 1u);
}

TEST(WorkerIsolation, StatsOpReportsWorkerBlock) {
  const auto files = write_unit("stats", 1);
  Daemon daemon(isolated_options(2));
  ASSERT_TRUE(parse_response(
      daemon.submit_and_wait(solve_request("s1", files)))["ok"].as_bool());
  const JsonValue stats = parse_response(
      daemon.submit_and_wait("{\"op\":\"stats\",\"id\":\"st\"}"));
  const JsonValue& w = stats["worker"];
  ASSERT_TRUE(w.is_object()) << "stats must report the pool under isolation";
  EXPECT_EQ(w["workers"].as_number(), 2);
  EXPECT_EQ(w["live"].as_number(), 2);
  EXPECT_GE(w["dispatched"].as_number(), 1);
  EXPECT_FALSE(w["degraded"].as_bool());
}

TEST(WorkerIsolation, DrainDeliversEveryAdmittedJob) {
  const auto files = write_unit("drain", 1);
  ServiceOptions o = isolated_options(2);
  o.jobs = 2;
  o.drain_grace_seconds = 30;
  Daemon daemon(o);

  std::atomic<int> responded{0};
  for (int i = 0; i < 4; ++i)
    daemon.submit_line(solve_request("d" + std::to_string(i), files),
                       [&](std::string line) {
                         parse_response(line);
                         responded.fetch_add(1);
                       });
  daemon.drain();
  EXPECT_EQ(responded.load(), 4) << "drain must answer every admitted job";
  // Drain reaps the pool: no live workers remain afterwards.
  ASSERT_NE(daemon.worker_pool(), nullptr);
  EXPECT_EQ(daemon.worker_pool()->stats().live, 0u);
}

// ---- Daemon edge cases (transport-independent) --------------------------

TEST(DaemonEdge, SubmitDuringDrainAnswersOrRejects) {
  const auto files = write_unit("race", 1);
  ServiceOptions o;
  o.jobs = 2;
  o.drain_grace_seconds = 30;
  Daemon daemon(o);

  // One slow-ish job in flight, then a drain and a submit racing each
  // other from two threads. The racing submit must ALWAYS get a response —
  // either "draining" or a real outcome — never silence.
  std::atomic<int> responded{0};
  daemon.submit_line(solve_request("base", files),
                     [&](std::string) { responded.fetch_add(1); });
  std::atomic<bool> got_race{false};
  std::string race_response;
  std::thread drainer([&] { daemon.drain(); });
  std::thread racer([&] {
    daemon.submit_line(solve_request("race", files), [&](std::string line) {
      race_response = line;
      got_race.store(true);
      responded.fetch_add(1);
    });
  });
  racer.join();
  drainer.join();
  ASSERT_TRUE(got_race.load()) << "submit-during-drain was never answered";
  const JsonValue r = parse_response(race_response);
  if (r["ok"].as_bool()) {
    EXPECT_TRUE(r.contains("outcome"));
  } else {
    EXPECT_EQ(r["error"]["code"].as_string(), "draining");
  }
  EXPECT_EQ(responded.load(), 2);
}

}  // namespace
}  // namespace eco::service
