/// \file test_sat_incremental.cpp
/// \brief Randomized differential harness for the incremental-solve fast
/// path (assumption-prefix trail reuse, learnt-clause tiering, EMA
/// restarts).
///
/// Each random *sequence* interleaves clause additions with assumption
/// solves, mirroring the many-query minimize_assumptions workload. The same
/// sequence is replayed simultaneously on three long-lived solvers — trail
/// reuse on (Luby), trail reuse off (Luby), and trail reuse on (EMA
/// restarts) — and every query is cross-checked against a fresh-solver
/// oracle built from scratch over the mirror clause list. Verdicts must be
/// identical everywhere (no budgets, so they are semantic); UNSAT cores may
/// differ between configurations but each must itself be unsatisfiable when
/// re-solved by a fresh oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sat/minimize.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace eco::sat {
namespace {

using Clauses = std::vector<LitVec>;

/// Fresh-solver oracle: loads \p clauses over \p num_vars and solves under
/// \p assumps. No budgets, so the verdict is exact.
LBool oracle_solve(const Clauses& clauses, int num_vars, const LitVec& assumps) {
  Solver s;  // default options; the oracle never reuses anything
  for (int i = 0; i < num_vars; ++i) s.new_var();
  for (const LitVec& c : clauses)
    if (!s.add_clause(c)) return kFalse;  // clause set already contradictory
  return s.solve(assumps);
}

Lit random_lit(Rng& rng, int num_vars) {
  return mk_lit(static_cast<Var>(rng.below(static_cast<uint64_t>(num_vars))),
                rng.chance(1, 2));
}

LitVec random_clause(Rng& rng, int num_vars) {
  const int len = rng.chance(1, 10) ? 2 : 3;  // mostly ternary, some binary
  LitVec c;
  for (int i = 0; i < len; ++i) c.push_back(random_lit(rng, num_vars));
  return c;
}

/// One long-lived solver under test plus its configuration label.
struct Incremental {
  const char* label;
  Solver solver;
  explicit Incremental(const char* l, const SolverOptions& opts) : label(l), solver(opts) {}
};

/// Replays one random interleaved add/solve sequence on every configuration
/// and cross-checks each query against the oracle. Returns false (after
/// recording a failure) as soon as a divergence is seen so the caller can
/// stop and report the sequence seed.
void run_sequence(uint64_t seed) {
  Rng rng(seed);
  const int num_vars = static_cast<int>(rng.range(6, 14));

  SolverOptions reuse_on;  // library defaults, but explicit & env-independent
  SolverOptions reuse_off = reuse_on;
  reuse_off.trail_reuse = false;
  SolverOptions reuse_ema = reuse_on;
  reuse_ema.restart = RestartPolicy::kEma;
  // Tiny maintenance intervals so even these short sequences cross tier
  // boundaries and run reductions.
  for (SolverOptions* o : {&reuse_on, &reuse_off, &reuse_ema}) {
    o->local_reduce_interval = 40;
    o->tier2_shrink_interval = 30;
    o->tier2_unused_demote = 60;
  }

  Incremental configs[] = {
      Incremental("reuse-on/luby", reuse_on),
      Incremental("reuse-off/luby", reuse_off),
      Incremental("reuse-on/ema", reuse_ema),
  };
  for (auto& c : configs)
    for (int i = 0; i < num_vars; ++i) c.solver.new_var();

  Clauses mirror;
  const auto add_random_clauses = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const LitVec cl = random_clause(rng, num_vars);
      mirror.push_back(cl);
      // Return values may legitimately differ across configurations (a
      // solver that learned more top-level units can detect contradiction
      // earlier), so they are not compared; verdict agreement below is the
      // semantic check.
      for (auto& c : configs) c.solver.add_clause(cl);
    }
  };

  // Persistent context: queries assume a shared prefix plus a fresh suffix,
  // the pattern trail reuse is designed for.
  LitVec context;
  const auto mutate_context = [&] {
    if (!context.empty() && rng.chance(1, 3)) context.pop_back();
    while (context.size() < 4 && rng.chance(1, 2))
      context.push_back(random_lit(rng, num_vars));
  };

  add_random_clauses(static_cast<int>(rng.range(2 * num_vars, 4 * num_vars)));
  mutate_context();

  const int num_queries = static_cast<int>(rng.range(3, 6));
  for (int q = 0; q < num_queries; ++q) {
    LitVec assumps = context;
    const int extra = static_cast<int>(rng.range(0, 3));
    for (int i = 0; i < extra; ++i) assumps.push_back(random_lit(rng, num_vars));

    const LBool expected = oracle_solve(mirror, num_vars, assumps);
    ASSERT_FALSE(expected.is_undef());

    for (auto& c : configs) {
      const LBool got = c.solver.solve(assumps);
      ASSERT_EQ(expected.raw(), got.raw())
          << "verdict divergence (" << c.label << "), seed=" << seed << " query=" << q;
      if (got.is_true()) {
        // The model must satisfy every mirror clause and every assumption.
        for (const Lit a : assumps)
          ASSERT_TRUE(c.solver.model_value(a))
              << "model violates assumption (" << c.label << "), seed=" << seed;
        for (const LitVec& cl : mirror)
          ASSERT_TRUE(std::any_of(cl.begin(), cl.end(),
                                  [&](Lit l) { return c.solver.model_value(l); }))
              << "model violates clause (" << c.label << "), seed=" << seed;
      } else {
        // The final-conflict core must itself be unsatisfiable. Cores of
        // different configurations need not be identical (different search
        // trajectories find different conflicts) — equivalence here means
        // "each is a valid UNSAT witness over the same clause set".
        LitVec core;
        for (const Lit a : assumps)
          if (c.solver.in_core(a)) core.push_back(a);
        ASSERT_TRUE(oracle_solve(mirror, num_vars, core).is_false())
            << "core is not an UNSAT witness (" << c.label << "), seed=" << seed;
      }
    }

    // Occasionally minimize an UNSAT assumption set on each configuration
    // and check the kept prefix is still an UNSAT witness.
    if (expected.is_false() && !assumps.empty() && rng.chance(1, 4)) {
      for (auto& c : configs) {
        LitVec work = assumps;
        LitVec ctx;
        const int kept = sat::minimize_assumptions(c.solver, work, ctx);
        LitVec prefix(work.begin(), work.begin() + kept);
        ASSERT_TRUE(oracle_solve(mirror, num_vars, prefix).is_false())
            << "minimized core is not an UNSAT witness (" << c.label
            << "), seed=" << seed;
      }
    }

    // Interleave growth: new clauses (invalidates reuse via add_clause) and
    // occasional context churn (exercises partial-prefix retention).
    if (rng.chance(1, 3)) add_random_clauses(static_cast<int>(rng.range(1, 3)));
    if (rng.chance(1, 2)) mutate_context();
  }

  // Sanity on the counters: the reuse-off configuration must never report
  // reused levels, and reuse-on must never *lose* propagations.
  EXPECT_EQ(configs[1].solver.stats().prefix_reused_levels, 0u);
  EXPECT_EQ(configs[1].solver.stats().propagations_saved, 0u);
}

TEST(SatIncremental, RandomizedDifferential) {
  // >= 10k sequences, each replayed on three configurations against a
  // fresh-solver oracle. Sequence i is fully reproducible from its seed.
  constexpr uint64_t kSequences = 10000;
  for (uint64_t i = 0; i < kSequences; ++i) {
    run_sequence(0xECD1234500000000ULL + i);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "stopping after first divergent sequence, seed offset " << i;
      break;
    }
  }
}

TEST(SatIncremental, PrefixReuseSavesPropagations) {
  // A chain x0 -> x1 -> ... -> x_{n-1}: assuming x0 propagates the whole
  // chain. Re-solving with the same leading assumption must keep that work.
  Solver s;  // default options: trail_reuse on
  constexpr int kChain = 50;
  for (int i = 0; i < kChain; ++i) s.new_var();
  for (int i = 0; i + 1 < kChain; ++i)
    ASSERT_TRUE(s.add_binary(~mk_lit(static_cast<Var>(i)), mk_lit(static_cast<Var>(i + 1))));

  const Lit head = mk_lit(0);
  ASSERT_TRUE(s.solve({head}).is_true());
  EXPECT_EQ(s.stats().prefix_reused_levels, 0u);

  ASSERT_TRUE(s.solve({head, mk_lit(static_cast<Var>(kChain - 1))}).is_true());
  EXPECT_GE(s.stats().prefix_reused_levels, 1u);
  EXPECT_GE(s.stats().propagations_saved, static_cast<uint64_t>(kChain - 1));

  // Adding a clause must invalidate the retained trail: the next solve
  // starts from scratch (counters unchanged) yet stays correct.
  const uint64_t reused_before = s.stats().prefix_reused_levels;
  ASSERT_TRUE(s.add_binary(~head, mk_lit(static_cast<Var>(kChain - 1))));
  ASSERT_TRUE(s.solve({head}).is_true());
  EXPECT_EQ(s.stats().prefix_reused_levels, reused_before);
}

TEST(SatIncremental, ReuseDisabledViaOptions) {
  SolverOptions opts;
  opts.trail_reuse = false;
  Solver s(opts);
  for (int i = 0; i < 8; ++i) s.new_var();
  for (int i = 0; i + 1 < 8; ++i)
    ASSERT_TRUE(s.add_binary(~mk_lit(static_cast<Var>(i)), mk_lit(static_cast<Var>(i + 1))));
  ASSERT_TRUE(s.solve({mk_lit(0)}).is_true());
  ASSERT_TRUE(s.solve({mk_lit(0), mk_lit(3)}).is_true());
  EXPECT_EQ(s.stats().prefix_reused_levels, 0u);
  EXPECT_EQ(s.stats().propagations_saved, 0u);
}

}  // namespace
}  // namespace eco::sat
